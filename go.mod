module botmeter

go 1.22
