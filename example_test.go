package botmeter_test

import (
	"fmt"

	"botmeter"
	"botmeter/internal/botnet"
	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
)

// Example runs the complete pipeline: simulate a newGoZ botnet behind a
// caching local DNS server, then estimate its population from the
// cache-filtered border view.
func Example() {
	const seed = 42
	family, _ := botmeter.LookupFamily("newgoz")

	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
	})
	runner, _ := botnet.NewRunner(botnet.Config{
		Spec:          family,
		Seed:          seed,
		BotsPerServer: map[string]int{"local-00": 64},
	}, net)
	day := botmeter.Window{Start: 0, End: botmeter.Day}
	truth, _ := runner.Run(day)

	bm, _ := botmeter.New(botmeter.Config{Family: family, Seed: seed})
	landscape, _ := bm.Analyze(net.Border.Observed(), day)

	fmt.Printf("model %s, estimator %s\n", landscape.Model, landscape.Estimator)
	fmt.Printf("actual %d, estimated %.0f\n",
		truth.ActiveBots["local-00"][0], landscape.Estimate("local-00"))
	// Output:
	// model AR, estimator MB
	// actual 64, estimated 70
}

// ExampleForModel shows the taxonomy-driven estimator pairing.
func ExampleForModel() {
	for _, name := range []string{"murofet", "newgoz", "conficker.c", "pushdo"} {
		spec, _ := botmeter.LookupFamily(name)
		fmt.Printf("%-12s %-28s → %s\n", spec.Name, spec.ModelName(), botmeter.ForModel(spec).Name())
	}
	// Output:
	// Murofet      AU                           → MP
	// newGoZ       AR                           → MB
	// Conficker.C  AS                           → MT
	// PushDo       sliding-window/uniform       → MP
}
