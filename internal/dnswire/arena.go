package dnswire

import (
	"encoding/binary"
	"fmt"
	"sync"
	"unsafe"
)

// Arena is the reusable backing store of the zero-copy decode fast path
// (DESIGN.md §19). DecodeInto parses domain names into the arena's byte
// buffer and the question/answer sections into arena-owned slices, so a
// steady-state decode performs no heap allocations at all: every buffer is
// grown once to the high-water mark of the traffic and then recycled.
//
// Lifetime rules — the arena trades allocation for aliasing, and the
// aliasing has sharp edges:
//
//   - Every string and byte slice in a Message decoded with DecodeInto
//     aliases arena memory. The next DecodeInto (or Reset) on the same
//     arena INVALIDATES all of them in place.
//   - Anything that must outlive the current packet — a cache key, a trace
//     record, a string sent down a channel — must be copied first
//     (strings.Clone, or interned through a symtab.Table, which stores the
//     copy once and hands back the same stable string forever after).
//   - An Arena is single-goroutine state: one arena per socket worker,
//     never shared.
//
// The zero value is ready to use.
type Arena struct {
	// LowerASCII, when set, lowercases ASCII label bytes ('A'–'Z') as they
	// are copied into the arena, so decoded names arrive already in the
	// canonical form the caches and the zone use. DNS case-insensitivity is
	// ASCII-only (RFC 4343), so this is exact for any name that can appear
	// in a query; bytes ≥ 0x80 are copied verbatim. Leave it unset when
	// byte-for-byte agreement with Decode is required (the differential
	// fuzz target runs with it off).
	LowerASCII bool

	names []byte // decoded presentation-form name bytes, all sections
	data  []byte // answer rdata bytes
	q     []Question
	rr    []ResourceRecord
	spans []span // scratch offsets, resolved after parsing (backing arrays may move)
}

// span is a region of the arena's names or data buffer recorded during
// parsing. Offsets are resolved into strings/slices only after the whole
// message has been parsed, because append growth may move the backing
// arrays mid-parse.
type span struct {
	off, n int32
}

// Reset discards the previous message, invalidating every string and slice
// it handed out, and readies the arena for the next DecodeInto. DecodeInto
// calls it implicitly.
func (a *Arena) Reset() {
	a.names = a.names[:0]
	a.data = a.data[:0]
	a.q = a.q[:0]
	a.rr = a.rr[:0]
	a.spans = a.spans[:0]
}

// arenaString views a region of the arena as a string without copying.
// The string is valid only until the arena's next Reset/DecodeInto.
func arenaString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// DecodeInto parses a wire-format message into msg using a's storage,
// following compression pointers. It accepts and rejects exactly the same
// inputs as Decode and produces field-for-field identical messages (a
// contract enforced by FuzzDecodeIntoMatchesDecode), but performs zero heap
// allocations once the arena has grown to the traffic's working set. On
// error msg and the arena hold unspecified partial state; the next
// DecodeInto starts clean.
func DecodeInto(b []byte, msg *Message, a *Arena) error {
	a.Reset()
	if len(b) < 12 {
		return fmt.Errorf("dnswire: message too short (%d bytes)", len(b))
	}
	msg.Header.ID = binary.BigEndian.Uint16(b[0:2])
	flags := binary.BigEndian.Uint16(b[2:4])
	msg.Header.QR = flags&(1<<15) != 0
	msg.Header.Opcode = uint8(flags >> 11 & 0xF)
	msg.Header.AA = flags&(1<<10) != 0
	msg.Header.TC = flags&(1<<9) != 0
	msg.Header.RD = flags&(1<<8) != 0
	msg.Header.RA = flags&(1<<7) != 0
	msg.Header.Rcode = uint8(flags & 0xF)
	msg.Header.QDCount = binary.BigEndian.Uint16(b[4:6])
	msg.Header.ANCount = binary.BigEndian.Uint16(b[6:8])
	msg.Header.NSCount = binary.BigEndian.Uint16(b[8:10])
	msg.Header.ARCount = binary.BigEndian.Uint16(b[10:12])

	off := 12
	for i := 0; i < int(msg.Header.QDCount); i++ {
		nameSpan, next, err := a.decodeName(b, off)
		if err != nil {
			return err
		}
		if next+4 > len(b) {
			return fmt.Errorf("dnswire: truncated question")
		}
		a.q = append(a.q, Question{
			Type:  binary.BigEndian.Uint16(b[next : next+2]),
			Class: binary.BigEndian.Uint16(b[next+2 : next+4]),
		})
		a.spans = append(a.spans, nameSpan)
		off = next + 4
	}
	for i := 0; i < int(msg.Header.ANCount); i++ {
		nameSpan, next, err := a.decodeName(b, off)
		if err != nil {
			return err
		}
		if next+10 > len(b) {
			return fmt.Errorf("dnswire: truncated resource record")
		}
		rr := ResourceRecord{
			Type:  binary.BigEndian.Uint16(b[next : next+2]),
			Class: binary.BigEndian.Uint16(b[next+2 : next+4]),
			TTL:   binary.BigEndian.Uint32(b[next+4 : next+8]),
		}
		rdlen := int(binary.BigEndian.Uint16(b[next+8 : next+10]))
		next += 10
		if next+rdlen > len(b) {
			return fmt.Errorf("dnswire: truncated rdata")
		}
		dataOff := int32(len(a.data))
		a.data = append(a.data, b[next:next+rdlen]...)
		a.rr = append(a.rr, rr)
		a.spans = append(a.spans, nameSpan, span{off: dataOff, n: int32(rdlen)})
		off = next + rdlen
	}
	// Authority and additional sections are skipped structurally (as in
	// Decode).

	// Fix-up pass: the names/data backing arrays can no longer move, so the
	// recorded spans can safely be materialised as aliasing strings/slices.
	si := 0
	for i := range a.q {
		s := a.spans[si]
		a.q[i].Name = arenaString(a.names[s.off : s.off+s.n])
		si++
	}
	for i := range a.rr {
		s := a.spans[si]
		a.rr[i].Name = arenaString(a.names[s.off : s.off+s.n])
		d := a.spans[si+1]
		if d.n > 0 {
			a.rr[i].Data = a.data[d.off : d.off+d.n : d.off+d.n]
		} else {
			// Decode's append([]byte(nil), ...) yields nil for empty rdata;
			// match it so the messages compare field-for-field equal.
			a.rr[i].Data = nil
		}
		si += 2
	}
	msg.Questions = a.q
	msg.Answers = a.rr
	if len(a.q) == 0 {
		msg.Questions = nil
	}
	if len(a.rr) == 0 {
		msg.Answers = nil
	}
	return nil
}

// decodeName is decodeName's arena twin: it follows the identical parse
// (same limits, same rejections — see FuzzDecodeIntoMatchesDecode) but
// appends the presentation-form bytes into a.names instead of building a
// []string and joining it.
func (a *Arena) decodeName(b []byte, off int) (span, int, error) {
	start := len(a.names)
	labels := 0
	jumped := false
	next := off
	hops := 0
	for {
		if off >= len(b) {
			return span{}, 0, fmt.Errorf("dnswire: name runs past message end")
		}
		l := int(b[off])
		switch {
		case l == 0:
			if !jumped {
				next = off + 1
			}
			n := len(a.names) - start
			if n > maxNameLen {
				return span{}, 0, fmt.Errorf("dnswire: decoded name too long")
			}
			return span{off: int32(start), n: int32(n)}, next, nil
		case l&0xC0 == 0xC0:
			if off+1 >= len(b) {
				return span{}, 0, fmt.Errorf("dnswire: truncated compression pointer")
			}
			ptr := int(binary.BigEndian.Uint16(b[off:off+2]) & 0x3FFF)
			if !jumped {
				next = off + 2
			}
			jumped = true
			hops++
			if hops > 32 || ptr >= len(b) {
				return span{}, 0, fmt.Errorf("dnswire: compression pointer loop")
			}
			off = ptr
		case l&0xC0 != 0:
			return span{}, 0, fmt.Errorf("dnswire: reserved label type 0x%02x", l)
		default:
			if off+1+l > len(b) {
				return span{}, 0, fmt.Errorf("dnswire: truncated label")
			}
			if labels > 0 {
				a.names = append(a.names, '.')
			}
			at := len(a.names)
			a.names = append(a.names, b[off+1:off+1+l]...)
			for i := at; i < len(a.names); i++ {
				c := a.names[i]
				// Same presentation-ambiguity rejection as decodeName: a raw
				// '.' inside a label would re-encode as a different name.
				if c == '.' {
					return span{}, 0, fmt.Errorf("dnswire: label contains '.'")
				}
				if a.LowerASCII && c >= 'A' && c <= 'Z' {
					a.names[i] = c + ('a' - 'A')
				}
			}
			labels++
			if labels > 128 {
				return span{}, 0, fmt.Errorf("dnswire: too many labels")
			}
			off += 1 + l
		}
	}
}

// bufPool recycles encode buffers for transient wire images — response
// paths that build a packet, write it to a socket and drop it. Steady-state
// per-worker paths should prefer a worker-owned buffer reused via
// AppendEncode; the pool serves the shared slow paths where no single owner
// exists.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// GetBuf returns a pooled byte slice with zero length and at least 512
// bytes capacity. Release it with PutBuf when the bytes are no longer
// referenced.
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuf returns a buffer obtained from GetBuf to the pool. The caller must
// not retain any view of it.
func PutBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}
