package dnswire

import (
	"net"
	"testing"
)

// BenchmarkWireDecode measures the arena fast path against the allocating
// decoder on the two packet shapes the daemons handle per query: the client
// query and the positive response. The fast variants must report
// 0 allocs/op (gated by TestDecodeIntoZeroAllocs and the CI bench smoke).
func BenchmarkWireDecode(b *testing.B) {
	query, _ := NewQuery(0x4242, "xk3jq9vmz27a1.pool-domain.example.com").Encode()
	resp, _ := NewResponse(NewQuery(7, "xk3jq9vmz27a1.pool-domain.example.com"), net.ParseIP("192.0.2.1"), 300).Encode()
	shapes := []struct {
		name string
		pkt  []byte
	}{
		{"query", query},
		{"response", resp},
	}
	for _, s := range shapes {
		b.Run(s.name+"/alloc", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(s.pkt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(s.name+"/arena", func(b *testing.B) {
			var arena Arena
			var msg Message
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := DecodeInto(s.pkt, &msg, &arena); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireEncode measures response encoding: the fresh-buffer Encode
// against AppendEncode into a reused worker buffer (0 allocs/op).
func BenchmarkWireEncode(b *testing.B) {
	msg := NewResponse(NewQuery(7, "xk3jq9vmz27a1.pool-domain.example.com"), net.ParseIP("192.0.2.1"), 300)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := msg.Encode(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("append", func(b *testing.B) {
		buf := make([]byte, 0, 512)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = msg.AppendEncode(buf[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
