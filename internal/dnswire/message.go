// Package dnswire implements the subset of the RFC 1035 DNS wire format
// that a vantage-point tap needs: encoding and decoding of query and
// response messages with QUESTION sections, A/AAAA answers and NXDOMAIN
// response codes, including domain-name compression on decode. It lets the
// cmd/vantage daemon parse real forwarded queries off the wire and turn
// them into trace.Observed records, closing the loop between the simulator
// and an actual deployment.
package dnswire

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
)

// Record types used by the tap.
const (
	TypeA     uint16 = 1
	TypeNS    uint16 = 2
	TypeCNAME uint16 = 5
	TypeTXT   uint16 = 16
	TypeAAAA  uint16 = 28
)

// ClassIN is the Internet class.
const ClassIN uint16 = 1

// Response codes.
const (
	RcodeNoError  = 0
	RcodeFormErr  = 1
	RcodeServFail = 2
	RcodeNXDomain = 3
)

// Header is the fixed 12-byte DNS message header.
type Header struct {
	ID      uint16
	QR      bool // response flag
	Opcode  uint8
	AA      bool
	TC      bool
	RD      bool
	RA      bool
	Rcode   uint8
	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// Question is one entry of the QUESTION section.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// ResourceRecord is one answer/authority/additional record.
type ResourceRecord struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte
}

// Message is a decoded DNS message (answers only; authority/additional are
// decoded structurally but not interpreted).
type Message struct {
	Header    Header
	Questions []Question
	Answers   []ResourceRecord
}

// maxNameLen bounds a presentation-format domain name.
const maxNameLen = 255

// Encode serialises the message into a fresh buffer. Name compression is
// not emitted (it is optional for senders); names must be valid
// presentation-format FQDNs.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendEncode(make([]byte, 0, 64))
}

// AppendEncode serialises the message, appending the wire image to buf and
// returning the extended slice — the zero-allocation twin of Encode for
// callers that own a reusable buffer (socket workers, the loadgen's packet
// factory) or rent one from GetBuf. On error the returned slice's contents
// past the original length are unspecified; callers reusing a buffer
// re-slice it to [:0] anyway.
func (m *Message) AppendEncode(buf []byte) ([]byte, error) {
	flags := uint16(0)
	if m.Header.QR {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.Opcode&0xF) << 11
	if m.Header.AA {
		flags |= 1 << 10
	}
	if m.Header.TC {
		flags |= 1 << 9
	}
	if m.Header.RD {
		flags |= 1 << 8
	}
	if m.Header.RA {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.Rcode & 0xF)

	buf = binary.BigEndian.AppendUint16(buf, m.Header.ID)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf = binary.BigEndian.AppendUint16(buf, 0)

	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, q.Type)
		buf = binary.BigEndian.AppendUint16(buf, q.Class)
	}
	for _, rr := range m.Answers {
		if buf, err = appendName(buf, rr.Name); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, rr.Type)
		buf = binary.BigEndian.AppendUint16(buf, rr.Class)
		buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
		if len(rr.Data) > 0xFFFF {
			return nil, fmt.Errorf("dnswire: rdata too long (%d)", len(rr.Data))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(rr.Data)))
		buf = append(buf, rr.Data...)
	}
	return buf, nil
}

// appendName writes a presentation-format name as length-prefixed labels.
// Labels are sliced out in place (no strings.Split) so encoding a valid
// name allocates nothing beyond buffer growth.
func appendName(buf []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if len(name) > maxNameLen {
		return nil, fmt.Errorf("dnswire: name too long: %q", name)
	}
	if name == "" {
		return append(buf, 0), nil
	}
	start := 0
	for i := 0; i <= len(name); i++ {
		if i < len(name) && name[i] != '.' {
			continue
		}
		label := name[start:i]
		if label == "" {
			return nil, fmt.Errorf("dnswire: empty label in %q", name)
		}
		if len(label) > 63 {
			return nil, fmt.Errorf("dnswire: label too long in %q", name)
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
		start = i + 1
	}
	return append(buf, 0), nil
}

// CanonicalLower lowercases a domain name for cache/zone keying. The common
// case — a name that is already all-lowercase ASCII, which is every name a
// well-behaved client or the DGA families emit — returns the input string
// unchanged with no allocation. Mixed-case ASCII lowercases just the ASCII
// letters (DNS case-insensitivity is ASCII-only, RFC 4343); any non-ASCII
// byte falls back to strings.ToLower for exact compatibility with the
// previous behaviour of the daemons' slow paths.
func CanonicalLower(s string) string {
	i := 0
	for ; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			return strings.ToLower(s)
		}
		if c >= 'A' && c <= 'Z' {
			break
		}
	}
	if i == len(s) {
		return s // already canonical: the hot-path exit, zero allocations
	}
	b := []byte(s)
	for ; i < len(b); i++ {
		c := b[i]
		if c >= 0x80 {
			return strings.ToLower(s)
		}
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}

// Decode parses a wire-format message, following compression pointers.
func Decode(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("dnswire: message too short (%d bytes)", len(b))
	}
	var m Message
	m.Header.ID = binary.BigEndian.Uint16(b[0:2])
	flags := binary.BigEndian.Uint16(b[2:4])
	m.Header.QR = flags&(1<<15) != 0
	m.Header.Opcode = uint8(flags >> 11 & 0xF)
	m.Header.AA = flags&(1<<10) != 0
	m.Header.TC = flags&(1<<9) != 0
	m.Header.RD = flags&(1<<8) != 0
	m.Header.RA = flags&(1<<7) != 0
	m.Header.Rcode = uint8(flags & 0xF)
	m.Header.QDCount = binary.BigEndian.Uint16(b[4:6])
	m.Header.ANCount = binary.BigEndian.Uint16(b[6:8])
	m.Header.NSCount = binary.BigEndian.Uint16(b[8:10])
	m.Header.ARCount = binary.BigEndian.Uint16(b[10:12])

	off := 12
	for i := 0; i < int(m.Header.QDCount); i++ {
		name, next, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		if next+4 > len(b) {
			return nil, fmt.Errorf("dnswire: truncated question")
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[next : next+2]),
			Class: binary.BigEndian.Uint16(b[next+2 : next+4]),
		})
		off = next + 4
	}
	for i := 0; i < int(m.Header.ANCount); i++ {
		rr, next, err := decodeRR(b, off)
		if err != nil {
			return nil, err
		}
		m.Answers = append(m.Answers, rr)
		off = next
	}
	// Authority and additional sections are skipped structurally.
	return &m, nil
}

func decodeRR(b []byte, off int) (ResourceRecord, int, error) {
	name, next, err := decodeName(b, off)
	if err != nil {
		return ResourceRecord{}, 0, err
	}
	if next+10 > len(b) {
		return ResourceRecord{}, 0, fmt.Errorf("dnswire: truncated resource record")
	}
	rr := ResourceRecord{
		Name:  name,
		Type:  binary.BigEndian.Uint16(b[next : next+2]),
		Class: binary.BigEndian.Uint16(b[next+2 : next+4]),
		TTL:   binary.BigEndian.Uint32(b[next+4 : next+8]),
	}
	rdlen := int(binary.BigEndian.Uint16(b[next+8 : next+10]))
	next += 10
	if next+rdlen > len(b) {
		return ResourceRecord{}, 0, fmt.Errorf("dnswire: truncated rdata")
	}
	rr.Data = append([]byte(nil), b[next:next+rdlen]...)
	return rr, next + rdlen, nil
}

// decodeName reads a (possibly compressed) name starting at off and returns
// it with the offset just past its in-place encoding.
func decodeName(b []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	next := off
	hops := 0
	for {
		if off >= len(b) {
			return "", 0, fmt.Errorf("dnswire: name runs past message end")
		}
		l := int(b[off])
		switch {
		case l == 0:
			if !jumped {
				next = off + 1
			}
			name := strings.Join(labels, ".")
			if len(name) > maxNameLen {
				return "", 0, fmt.Errorf("dnswire: decoded name too long")
			}
			return name, next, nil
		case l&0xC0 == 0xC0:
			if off+1 >= len(b) {
				return "", 0, fmt.Errorf("dnswire: truncated compression pointer")
			}
			ptr := int(binary.BigEndian.Uint16(b[off:off+2]) & 0x3FFF)
			if !jumped {
				next = off + 2
			}
			jumped = true
			hops++
			if hops > 32 || ptr >= len(b) {
				return "", 0, fmt.Errorf("dnswire: compression pointer loop")
			}
			off = ptr
		case l&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", l)
		default:
			if off+1+l > len(b) {
				return "", 0, fmt.Errorf("dnswire: truncated label")
			}
			label := string(b[off+1 : off+1+l])
			// A raw '.' inside a label has no unambiguous presentation
			// form in this non-escaping codec: "a." would re-encode as
			// the label "a" (found by FuzzDecodeMessage). DGA domains
			// never contain one; reject instead of silently mangling.
			if strings.Contains(label, ".") {
				return "", 0, fmt.Errorf("dnswire: label contains '.'")
			}
			labels = append(labels, label)
			if len(labels) > 128 {
				return "", 0, fmt.Errorf("dnswire: too many labels")
			}
			off += 1 + l
		}
	}
}

// NewQuery builds a standard recursive A query for a domain.
func NewQuery(id uint16, domain string) *Message {
	return &Message{
		Header:    Header{ID: id, RD: true},
		Questions: []Question{{Name: domain, Type: TypeA, Class: ClassIN}},
	}
}

// NewResponse builds a response to q. If ip is nil the response is
// NXDOMAIN; otherwise it carries one A (or AAAA) answer with the given TTL.
func NewResponse(q *Message, ip net.IP, ttl uint32) *Message {
	resp := &Message{
		Header: Header{
			ID: q.Header.ID, QR: true, RD: q.Header.RD, RA: true, AA: true,
		},
		Questions: q.Questions,
	}
	if ip == nil {
		resp.Header.Rcode = RcodeNXDomain
		return resp
	}
	if len(q.Questions) == 0 {
		return resp
	}
	typ := TypeA
	data := ip.To4()
	if data == nil {
		typ = TypeAAAA
		data = ip.To16()
	}
	resp.Answers = []ResourceRecord{{
		Name: q.Questions[0].Name, Type: typ, Class: ClassIN, TTL: ttl, Data: data,
	}}
	return resp
}
