package dnswire

import (
	"bytes"
	"net"
	"strings"
	"testing"
)

// messagesEqual compares two decoded messages field for field (the
// differential contract between Decode and DecodeInto).
func messagesEqual(a, b *Message) bool {
	if a.Header != b.Header {
		return false
	}
	if len(a.Questions) != len(b.Questions) || len(a.Answers) != len(b.Answers) {
		return false
	}
	for i := range a.Questions {
		if a.Questions[i] != b.Questions[i] {
			return false
		}
	}
	for i := range a.Answers {
		x, y := a.Answers[i], b.Answers[i]
		if x.Name != y.Name || x.Type != y.Type || x.Class != y.Class || x.TTL != y.TTL || !bytes.Equal(x.Data, y.Data) {
			return false
		}
	}
	return true
}

// wireCorpus builds the packets the arena decoder must agree with Decode
// on: queries, positive/negative/AAAA responses, compression pointers,
// empty names, and assorted malformed inputs.
func wireCorpus(t testing.TB) [][]byte {
	t.Helper()
	var corpus [][]byte
	add := func(b []byte, err error) {
		if err != nil {
			t.Fatalf("corpus encode: %v", err)
		}
		corpus = append(corpus, b)
	}
	add(NewQuery(1, "seed.example.com").Encode())
	add(NewQuery(0xFFFF, "a.b.c.d.e.f.g").Encode())
	add(NewResponse(NewQuery(2, "pool-domain.biz"), net.ParseIP("192.0.2.1"), 300).Encode())
	add(NewResponse(NewQuery(3, "v6.example"), net.ParseIP("2001:db8::1"), 60).Encode())
	add(NewResponse(NewQuery(4, "nxd.example"), nil, 0).Encode())
	// Root-name query (empty name) and a multi-question message.
	multi := &Message{
		Header: Header{ID: 9, RD: true},
		Questions: []Question{
			{Name: "one.example", Type: TypeA, Class: ClassIN},
			{Name: "two.example", Type: TypeAAAA, Class: ClassIN},
		},
	}
	add(multi.Encode())
	add((&Message{Header: Header{ID: 10}, Questions: []Question{{Name: "", Type: TypeNS, Class: ClassIN}}}).Encode())
	// Compressed response: answer name points back at the question name.
	corpus = append(corpus, []byte{
		0x00, 0x05, 0x80, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
		0x01, 'a', 0x02, 'b', 'c', 0x00, 0x00, 0x01, 0x00, 0x01,
		0xC0, 0x0C, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x3C, 0x00, 0x04, 192, 0, 2, 1,
	})
	// Malformed: short header, truncated question, pointer loop, reserved
	// label type, '.' inside a label, truncated rdata.
	corpus = append(corpus,
		[]byte{},
		[]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 3, 'a', 'b'},
		[]byte{0xC0, 0x0C},
		[]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1},
		[]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0x80, 'x', 0, 0, 1, 0, 1},
		[]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0x02, 'a', '.', 0, 0, 1, 0, 1},
		[]byte{
			0x00, 0x05, 0x80, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
			0x01, 'a', 0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x3C, 0x00, 0x10, 1, 2,
		},
	)
	return corpus
}

func TestDecodeIntoMatchesDecodeCorpus(t *testing.T) {
	var arena Arena
	var msg Message
	for i, pkt := range wireCorpus(t) {
		want, wantErr := Decode(pkt)
		gotErr := DecodeInto(pkt, &msg, &arena)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("packet %d: Decode err=%v, DecodeInto err=%v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if !messagesEqual(want, &msg) {
			t.Fatalf("packet %d:\nDecode     %+v\nDecodeInto %+v", i, want, &msg)
		}
	}
}

// TestDecodeIntoReuseInvalidates pins the arena lifetime rule: decoding a
// second message invalidates the first message's strings in place.
func TestDecodeIntoReuseInvalidates(t *testing.T) {
	var arena Arena
	var msg Message
	q1, _ := NewQuery(1, "first.example.com").Encode()
	q2, _ := NewQuery(2, "second-name.example.org").Encode()
	if err := DecodeInto(q1, &msg, &arena); err != nil {
		t.Fatal(err)
	}
	name1 := msg.Questions[0].Name
	if name1 != "first.example.com" {
		t.Fatalf("first decode name = %q", name1)
	}
	stable := strings.Clone(name1)
	if err := DecodeInto(q2, &msg, &arena); err != nil {
		t.Fatal(err)
	}
	if msg.Questions[0].Name != "second-name.example.org" {
		t.Fatalf("second decode name = %q", msg.Questions[0].Name)
	}
	// name1 aliases arena memory that the second decode overwrote; only the
	// explicit copy is still trustworthy.
	if stable != "first.example.com" {
		t.Fatalf("cloned name corrupted: %q", stable)
	}
}

func TestDecodeIntoLowerASCII(t *testing.T) {
	var arena Arena
	arena.LowerASCII = true
	var msg Message
	pkt, _ := NewQuery(7, "MiXeD.ExAmPlE.CoM").Encode()
	if err := DecodeInto(pkt, &msg, &arena); err != nil {
		t.Fatal(err)
	}
	if got := msg.Questions[0].Name; got != "mixed.example.com" {
		t.Fatalf("LowerASCII name = %q, want %q", got, "mixed.example.com")
	}
}

// TestDecodeIntoZeroAllocs is the steady-state allocation gate of the wire
// fast path: once the arena has grown to the working set, DecodeInto must
// not touch the heap.
func TestDecodeIntoZeroAllocs(t *testing.T) {
	query, _ := NewQuery(1, "alloc-test.pool-domain.example.com").Encode()
	resp, _ := NewResponse(NewQuery(2, "answer.example.net"), net.ParseIP("192.0.2.7"), 60).Encode()
	var arena Arena
	var msg Message
	for _, pkt := range [][]byte{query, resp} {
		pkt := pkt
		// Warm the arena to its high-water mark.
		if err := DecodeInto(pkt, &msg, &arena); err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			if err := DecodeInto(pkt, &msg, &arena); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Fatalf("DecodeInto allocates %.1f allocs/op steady-state, want 0", allocs)
		}
	}
}

// TestAppendEncodeZeroAllocs gates the encode side: appending into a
// warmed caller-owned buffer must not allocate.
func TestAppendEncodeZeroAllocs(t *testing.T) {
	msg := NewResponse(NewQuery(3, "enc.example.com"), net.ParseIP("192.0.2.9"), 300)
	buf := make([]byte, 0, 512)
	if allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = msg.AppendEncode(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("AppendEncode allocates %.1f allocs/op steady-state, want 0", allocs)
	}
	// The appended image must equal what Encode produces.
	want, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("AppendEncode image differs from Encode:\n%x\n%x", buf, want)
	}
}

func TestCanonicalLower(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"already.lower.example", "already.lower.example"},
		{"MiXeD.CaSe.ExAmPle", "mixed.case.example"},
		{"UPPER.EXAMPLE", "upper.example"},
		{"digits-123.ok", "digits-123.ok"},
		// Non-ASCII falls back to strings.ToLower semantics.
		{"ÜBER.example", strings.ToLower("ÜBER.example")},
		{"mixedÜ.example", strings.ToLower("mixedÜ.example")},
		{"Aü.example", strings.ToLower("Aü.example")},
	}
	for _, c := range cases {
		if got := CanonicalLower(c.in); got != c.want {
			t.Errorf("CanonicalLower(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestCanonicalLowerNoAllocFastPath pins the whole point of the helper: an
// already-lowercase name must come back without touching the heap (the old
// strings.ToLower path allocated a copy unconditionally).
func TestCanonicalLowerNoAllocFastPath(t *testing.T) {
	name := "xyz123abc.pool-domain.example.com"
	if got := CanonicalLower(name); got != name {
		t.Fatalf("CanonicalLower(%q) = %q", name, got)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_ = CanonicalLower(name)
	}); allocs != 0 {
		t.Fatalf("CanonicalLower allocates %.1f allocs/op on lowercase input, want 0", allocs)
	}
}

func TestGetPutBuf(t *testing.T) {
	b := GetBuf()
	if len(*b) != 0 || cap(*b) < 512 {
		t.Fatalf("GetBuf: len=%d cap=%d", len(*b), cap(*b))
	}
	*b = append(*b, "payload"...)
	PutBuf(b)
	b2 := GetBuf()
	if len(*b2) != 0 {
		t.Fatalf("pooled buffer not reset: len=%d", len(*b2))
	}
	PutBuf(b2)
}
