package dnswire

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0xBEEF, "evil-dga-domain.com")
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.ID != 0xBEEF || back.Header.QR || !back.Header.RD {
		t.Errorf("header = %+v", back.Header)
	}
	if len(back.Questions) != 1 {
		t.Fatalf("questions = %d", len(back.Questions))
	}
	got := back.Questions[0]
	if got.Name != "evil-dga-domain.com" || got.Type != TypeA || got.Class != ClassIN {
		t.Errorf("question = %+v", got)
	}
}

func TestResponseRoundTripPositive(t *testing.T) {
	q := NewQuery(7, "c2.example.net")
	resp := NewResponse(q, net.ParseIP("192.0.2.33"), 3600)
	wire, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Header.QR || back.Header.Rcode != RcodeNoError {
		t.Errorf("header = %+v", back.Header)
	}
	if len(back.Answers) != 1 {
		t.Fatalf("answers = %d", len(back.Answers))
	}
	a := back.Answers[0]
	if a.Type != TypeA || a.TTL != 3600 || !bytes.Equal(a.Data, net.ParseIP("192.0.2.33").To4()) {
		t.Errorf("answer = %+v", a)
	}
}

func TestResponseNXDomain(t *testing.T) {
	q := NewQuery(9, "nxd.example.org")
	resp := NewResponse(q, nil, 0)
	wire, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.Rcode != RcodeNXDomain || len(back.Answers) != 0 {
		t.Errorf("NXDOMAIN response = %+v", back)
	}
	if len(back.Questions) != 1 || back.Questions[0].Name != "nxd.example.org" {
		t.Errorf("question echo = %+v", back.Questions)
	}
}

func TestResponseAAAA(t *testing.T) {
	q := NewQuery(10, "v6.example.com")
	resp := NewResponse(q, net.ParseIP("2001:db8::1"), 60)
	wire, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Answers[0].Type != TypeAAAA || len(back.Answers[0].Data) != 16 {
		t.Errorf("AAAA answer = %+v", back.Answers[0])
	}
}

func TestDecodeCompressedName(t *testing.T) {
	// Hand-built message: one question "a.example.com", one answer whose
	// name is a compression pointer back to the question name.
	var b []byte
	b = binary.BigEndian.AppendUint16(b, 1)     // ID
	b = binary.BigEndian.AppendUint16(b, 1<<15) // QR
	b = binary.BigEndian.AppendUint16(b, 1)     // QD
	b = binary.BigEndian.AppendUint16(b, 1)     // AN
	b = binary.BigEndian.AppendUint16(b, 0)     // NS
	b = binary.BigEndian.AppendUint16(b, 0)     // AR
	nameOff := len(b)
	b = append(b, 1, 'a', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0)
	b = binary.BigEndian.AppendUint16(b, TypeA)
	b = binary.BigEndian.AppendUint16(b, ClassIN)
	// Answer with pointer name.
	b = append(b, 0xC0|byte(nameOff>>8), byte(nameOff))
	b = binary.BigEndian.AppendUint16(b, TypeA)
	b = binary.BigEndian.AppendUint16(b, ClassIN)
	b = binary.BigEndian.AppendUint32(b, 300)
	b = binary.BigEndian.AppendUint16(b, 4)
	b = append(b, 192, 0, 2, 1)

	m, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Questions[0].Name != "a.example.com" {
		t.Errorf("question = %q", m.Questions[0].Name)
	}
	if m.Answers[0].Name != "a.example.com" {
		t.Errorf("compressed answer name = %q", m.Answers[0].Name)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty": {},
		"short": {0, 1, 2},
		"bad label": func() []byte {
			b := make([]byte, 12)
			binary.BigEndian.PutUint16(b[4:6], 1) // one question
			return append(b, 0x80, 'x')           // reserved label type
		}(),
		"pointer loop": func() []byte {
			b := make([]byte, 12)
			binary.BigEndian.PutUint16(b[4:6], 1) // one question
			return append(b, 0xC0, 12)            // points at itself
		}(),
		"truncated question": func() []byte {
			b := make([]byte, 12)
			binary.BigEndian.PutUint16(b[4:6], 1)
			return append(b, 1, 'a', 0) // name ok, but no type/class
		}(),
		// Found by FuzzDecodeMessage: a raw '.' inside a label has no
		// unambiguous presentation form ("a." re-encoded as "a").
		"dot inside label": func() []byte {
			b := make([]byte, 12)
			binary.BigEndian.PutUint16(b[4:6], 1)
			return append(b, 2, 'a', '.', 0, 0, 1, 0, 1)
		}(),
	}
	for name, wire := range cases {
		if _, err := Decode(wire); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

func TestEncodeRejectsBadNames(t *testing.T) {
	for _, bad := range []string{
		"a..b.com",
		string(make([]byte, 300)) + ".com",
		"spaces are fine actually but this label is way way way way way way way too long to fit in sixty three bytes which is the limit.com",
	} {
		q := NewQuery(1, bad)
		if _, err := q.Encode(); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	f := func(labelsRaw []uint8) bool {
		labels := make([]string, 0, len(labelsRaw)%4+1)
		for i := 0; i <= len(labelsRaw)%4; i++ {
			n := 1
			if i < len(labelsRaw) {
				n = int(labelsRaw[i])%20 + 1
			}
			label := make([]byte, n)
			for j := range label {
				label[j] = byte('a' + (i+j)%26)
			}
			labels = append(labels, string(label))
		}
		name := ""
		for i, l := range labels {
			if i > 0 {
				name += "."
			}
			name += l
		}
		q := NewQuery(1, name)
		wire, err := q.Encode()
		if err != nil {
			return true // name exceeded limits; fine
		}
		back, err := Decode(wire)
		if err != nil {
			return false
		}
		return back.Questions[0].Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeDoesNotPanicProperty(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) // must never panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
