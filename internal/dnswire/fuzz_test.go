package dnswire

import (
	"bytes"
	"net"
	"testing"
)

// FuzzDecode hardens the wire parser against adversarial datagrams — a
// vantage point ingests packets from the open network, so Decode must
// never panic and every successfully decoded query must re-encode.
func FuzzDecode(f *testing.F) {
	seed1, _ := NewQuery(1, "seed.example.com").Encode()
	f.Add(seed1)
	seed2, _ := NewResponse(NewQuery(2, "x.org"), net.ParseIP("192.0.2.1"), 60).Encode()
	f.Add(seed2)
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0x0C})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// A decoded message must re-encode without panicking; names that
		// survive decoding are within wire limits so encoding can only
		// fail on label syntax quirks (empty labels via crafted input).
		_, _ = m.Encode()
	})
}

// FuzzNameRoundTrip checks encode→decode identity over arbitrary label
// bytes that pass encoding validation.
func FuzzNameRoundTrip(f *testing.F) {
	f.Add("example.com")
	f.Add("a.b.c.d.e")
	f.Add("xn--bcher-kva.example")
	f.Fuzz(func(t *testing.T, name string) {
		q := NewQuery(7, name)
		wire, err := q.Encode()
		if err != nil {
			return // invalid name; rejection is the contract
		}
		back, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode of self-encoded %q failed: %v", name, err)
		}
		want := name
		for len(want) > 0 && want[len(want)-1] == '.' {
			want = want[:len(want)-1]
		}
		if back.Questions[0].Name != want {
			t.Fatalf("round trip %q → %q", name, back.Questions[0].Name)
		}
	})
}

// FuzzDecodeIntoMatchesDecode is the differential fuzzer for the zero-copy
// fast path: the arena decoder must agree with the allocating decoder on
// every input — same accept/reject decision and, on accept, the same header,
// questions and answers field for field. It also re-decodes into the SAME
// arena a second time to prove reuse does not leak state between packets.
func FuzzDecodeIntoMatchesDecode(f *testing.F) {
	q, _ := NewQuery(0x1234, "seed.example.com").Encode()
	f.Add(q)
	resp, _ := NewResponse(NewQuery(2, "pool-domain.biz"), net.ParseIP("192.0.2.1"), 300).Encode()
	f.Add(resp)
	resp6, _ := NewResponse(NewQuery(3, "v6.example"), net.ParseIP("2001:db8::1"), 60).Encode()
	f.Add(resp6)
	nx, _ := NewResponse(NewQuery(4, "nxd.example"), nil, 0).Encode()
	f.Add(nx)
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0x0C})
	// Compressed response: answer name points back at the question name.
	f.Add([]byte{
		0x00, 0x05, 0x80, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
		0x01, 'a', 0x02, 'b', 'c', 0x00, 0x00, 0x01, 0x00, 0x01,
		0xC0, 0x0C, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x3C, 0x00, 0x04, 192, 0, 2, 1,
	})
	// Presentation-ambiguous label ('.' inside a label): both must reject.
	f.Add([]byte{
		0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x02, 'a', '.', 0x00, 0x00, 0x01, 0x00, 0x01,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := Decode(data)
		var arena Arena
		var msg Message
		gotErr := DecodeInto(data, &msg, &arena)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("accept/reject disagreement: Decode err=%v, DecodeInto err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		assertSameMessage(t, "first decode", want, &msg)
		// Arena reuse: decoding the same packet again into the same arena
		// must reproduce the message (stale state from the previous decode
		// must not bleed through).
		if err := DecodeInto(data, &msg, &arena); err != nil {
			t.Fatalf("second DecodeInto rejected an accepted packet: %v", err)
		}
		assertSameMessage(t, "arena reuse", want, &msg)
	})
}

// assertSameMessage fails the test when two decoded messages differ in any
// field the codec preserves.
func assertSameMessage(t *testing.T, stage string, want, got *Message) {
	t.Helper()
	if want.Header != got.Header {
		t.Fatalf("%s: header\nDecode     %+v\nDecodeInto %+v", stage, want.Header, got.Header)
	}
	if len(want.Questions) != len(got.Questions) {
		t.Fatalf("%s: question count %d vs %d", stage, len(want.Questions), len(got.Questions))
	}
	for i := range want.Questions {
		if want.Questions[i] != got.Questions[i] {
			t.Fatalf("%s: question %d\nDecode     %+v\nDecodeInto %+v", stage, i, want.Questions[i], got.Questions[i])
		}
	}
	if len(want.Answers) != len(got.Answers) {
		t.Fatalf("%s: answer count %d vs %d", stage, len(want.Answers), len(got.Answers))
	}
	for i := range want.Answers {
		a, b := want.Answers[i], got.Answers[i]
		if a.Name != b.Name || a.Type != b.Type || a.Class != b.Class || a.TTL != b.TTL || !bytes.Equal(a.Data, b.Data) {
			t.Fatalf("%s: answer %d\nDecode     %+v\nDecodeInto %+v", stage, i, a, b)
		}
	}
}

// FuzzDecodeMessage is the full message round-trip fuzzer: any datagram
// that Decode accepts must re-encode and decode again into the SAME
// message — header flags, questions and answers all preserved. (Sections
// the codec deliberately drops — authority/additional counts, name
// compression — are normalised by the first decode, so the identity is
// checked between first and second decode, not against the raw input.)
func FuzzDecodeMessage(f *testing.F) {
	q, _ := NewQuery(0x1234, "seed.example.com").Encode()
	f.Add(q)
	resp, _ := NewResponse(NewQuery(2, "pool-domain.biz"), net.ParseIP("192.0.2.1"), 300).Encode()
	f.Add(resp)
	resp6, _ := NewResponse(NewQuery(3, "v6.example"), net.ParseIP("2001:db8::1"), 60).Encode()
	f.Add(resp6)
	nx, _ := NewResponse(NewQuery(4, "nxd.example"), nil, 0).Encode()
	f.Add(nx)
	// Compressed response: answer name points back at the question name.
	f.Add([]byte{
		0x00, 0x05, 0x80, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
		0x01, 'a', 0x02, 'b', 'c', 0x00, 0x00, 0x01, 0x00, 0x01,
		0xC0, 0x0C, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x3C, 0x00, 0x04, 192, 0, 2, 1,
	})
	// Regression: a raw '.' inside a wire label ("a.") used to decode into
	// a name that re-encoded as a different name ("a"); Decode now rejects
	// presentation-ambiguous labels.
	f.Add([]byte{
		0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x02, 'a', '.', 0x00, 0x00, 0x01, 0x00, 0x01,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		m1, err := Decode(data)
		if err != nil {
			return
		}
		wire, err := m1.Encode()
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v\n%+v", err, m1)
		}
		m2, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		// Counts of dropped sections are normalised away by Encode.
		h1, h2 := m1.Header, m2.Header
		h1.NSCount, h1.ARCount, h1.QDCount, h1.ANCount = 0, 0, 0, 0
		h2.NSCount, h2.ARCount, h2.QDCount, h2.ANCount = 0, 0, 0, 0
		if h1 != h2 {
			t.Fatalf("header not preserved:\n first %+v\nsecond %+v", h1, h2)
		}
		if len(m1.Questions) != len(m2.Questions) {
			t.Fatalf("question count %d → %d", len(m1.Questions), len(m2.Questions))
		}
		for i := range m1.Questions {
			if m1.Questions[i] != m2.Questions[i] {
				t.Fatalf("question %d not preserved: %+v → %+v", i, m1.Questions[i], m2.Questions[i])
			}
		}
		if len(m1.Answers) != len(m2.Answers) {
			t.Fatalf("answer count %d → %d", len(m1.Answers), len(m2.Answers))
		}
		for i := range m1.Answers {
			a, b := m1.Answers[i], m2.Answers[i]
			if a.Name != b.Name || a.Type != b.Type || a.Class != b.Class || a.TTL != b.TTL || !bytes.Equal(a.Data, b.Data) {
				t.Fatalf("answer %d not preserved: %+v → %+v", i, a, b)
			}
		}
	})
}
