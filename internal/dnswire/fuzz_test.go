package dnswire

import (
	"net"
	"testing"
)

// FuzzDecode hardens the wire parser against adversarial datagrams — a
// vantage point ingests packets from the open network, so Decode must
// never panic and every successfully decoded query must re-encode.
func FuzzDecode(f *testing.F) {
	seed1, _ := NewQuery(1, "seed.example.com").Encode()
	f.Add(seed1)
	seed2, _ := NewResponse(NewQuery(2, "x.org"), net.ParseIP("192.0.2.1"), 60).Encode()
	f.Add(seed2)
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0x0C})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// A decoded message must re-encode without panicking; names that
		// survive decoding are within wire limits so encoding can only
		// fail on label syntax quirks (empty labels via crafted input).
		_, _ = m.Encode()
	})
}

// FuzzNameRoundTrip checks encode→decode identity over arbitrary label
// bytes that pass encoding validation.
func FuzzNameRoundTrip(f *testing.F) {
	f.Add("example.com")
	f.Add("a.b.c.d.e")
	f.Add("xn--bcher-kva.example")
	f.Fuzz(func(t *testing.T, name string) {
		q := NewQuery(7, name)
		wire, err := q.Encode()
		if err != nil {
			return // invalid name; rejection is the contract
		}
		back, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode of self-encoded %q failed: %v", name, err)
		}
		want := name
		for len(want) > 0 && want[len(want)-1] == '.' {
			want = want[:len(want)-1]
		}
		if back.Questions[0].Name != want {
			t.Fatalf("round trip %q → %q", name, back.Questions[0].Name)
		}
	})
}
