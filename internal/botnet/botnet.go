// Package botnet simulates DGA-infected bot populations against the
// dnssim hierarchy. Each epoch the botmaster registers the pool's C2
// domains; each bot activates once (Poisson-scheduled per the paper's §V-A
// workload model) and walks its query barrel through its local DNS server —
// pausing δi between lookups — until it resolves a C2 domain or exhausts θq
// attempts. The runner produces both datasets of the paper: the raw
// client-level trace (ground truth) and the cache-filtered observable trace
// at the border vantage point.
package botnet

import (
	"fmt"
	"sort"

	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
	"botmeter/internal/symtab"
)

// Config describes one botnet simulation.
type Config struct {
	// Spec is the DGA family to simulate.
	Spec dga.Spec
	// Seed drives every random choice (pools, barrels, activations).
	Seed uint64
	// EpochLen is δe; the default (0) means one day.
	EpochLen sim.Time
	// Activation selects constant (Sigma 0) or dynamic activation rates.
	Activation sim.ActivationModel
	// BotsPerServer maps local server IDs to resident bot counts.
	BotsPerServer map[string]int
	// ReactivateEvery, when positive, makes a bot that failed to reach a
	// C2 server retry its activation — re-querying the same barrel — after
	// this back-off (plus an exponential jitter of the same scale). Real
	// crimeware loops persistently until it reaches its botmaster; the
	// paper's workload model activates once per epoch, so this knob
	// defaults to off and is exercised by the extension experiments.
	ReactivateEvery sim.Time
	// MaxActivations bounds the per-epoch attempts when ReactivateEvery is
	// set (default 4).
	MaxActivations int
	// Pools, when non-nil, supplies the trial-shared (typically symbolized)
	// pool cache, letting the simulator, the matcher and the estimators all
	// reuse one pool object per epoch and letting bot queries carry interned
	// domain IDs end-to-end. It must wrap the same (Spec.Pool, Seed) pair as
	// this config; nil makes the runner build a private cache over a fresh
	// pooled intern table (released on Close).
	Pools *dga.PoolCache
}

// Result captures a completed run.
type Result struct {
	// Epochs are the epoch windows overlapping the run window.
	Epochs []sim.Window
	// ActiveBots[server][e] is the ground-truth count of bots behind
	// server that activated during epoch e within the run window.
	ActiveBots map[string][]int
	// QueriesIssued counts client-level DGA lookups.
	QueriesIssued int
	// C2Contacts counts activations that successfully resolved a C2
	// domain.
	C2Contacts int
}

// TotalActive sums ground-truth activations for a server across epochs.
func (r *Result) TotalActive(server string) int {
	var total int
	for _, c := range r.ActiveBots[server] {
		total += c
	}
	return total
}

// Runner executes botnet workloads on a network.
type Runner struct {
	cfg Config
	net *dnssim.Network

	pools *dga.PoolCache
	// ownTable is the intern table the runner created when no shared pool
	// cache was supplied; Close returns it to the symtab pool.
	ownTable *symtab.Table
	// ids reports whether this runner's traffic may carry interned IDs:
	// true only when the pool cache is symbolized AND the network's ID
	// space is bound to the same table (Network.BindTable — first runner
	// wins). A runner whose table lost the bind is demoted to the string
	// paths wholesale, because its IDs would collide with the bound
	// table's in the shared registry bitset and caches.
	ids bool

	poolValid    map[int][]string
	poolValidIDs map[int][]symtab.ID
	// uniformBarrels caches the one barrel a Uniform model produces per
	// epoch. Uniform bots all query the identical generation-order prefix
	// and the model ignores its RNG, so sharing one positions slice across
	// the whole population changes nothing observable while cutting the
	// per-bot θq-sized allocation — the dominant botnet-side allocation for
	// AU families.
	uniformBarrels map[int][]int
	// permScratch is the pool-sized permutation buffer BarrelWithScratch
	// reuses across bot activations (Run is single-engine sequential, so one
	// buffer per runner suffices).
	permScratch []int
}

// NewRunner validates the configuration and binds it to a network.
func NewRunner(cfg Config, net *dnssim.Network) (*Runner, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("botnet: %w", err)
	}
	if net == nil {
		return nil, fmt.Errorf("botnet: nil network")
	}
	if cfg.EpochLen <= 0 {
		cfg.EpochLen = sim.Day
	}
	if cfg.ReactivateEvery > 0 && cfg.MaxActivations <= 0 {
		cfg.MaxActivations = 4
	}
	for server, n := range cfg.BotsPerServer {
		if _, ok := net.Local(server); !ok {
			return nil, fmt.Errorf("botnet: unknown local server %q", server)
		}
		if n < 0 {
			return nil, fmt.Errorf("botnet: negative population for %q", server)
		}
	}
	r := &Runner{
		cfg:            cfg,
		net:            net,
		pools:          cfg.Pools,
		poolValid:      make(map[int][]string),
		poolValidIDs:   make(map[int][]symtab.ID),
		uniformBarrels: make(map[int][]int),
	}
	if r.pools == nil {
		r.ownTable = symtab.Get()
		r.pools = dga.NewPoolCache(cfg.Spec.Pool, cfg.Seed, r.ownTable)
	}
	// The network's ID space admits exactly one intern table (IDs are only
	// unique per table); if another runner already bound a different table,
	// this runner is demoted to the string paths end-to-end.
	r.ids = net.BindTable(r.pools.Table())
	return r, nil
}

// Close releases the runner's privately-owned intern table back to the
// symtab pool (no-op when a shared pool cache was supplied via Config.Pools
// — its owner releases the table). The runner must not be used afterwards.
func (r *Runner) Close() {
	if r.ownTable != nil {
		r.ownTable.Release()
		r.ownTable = nil
		r.pools = nil
	}
}

// barrelFor draws one activation's intended positions, sharing the
// epoch-wide slice for Uniform models (see uniformBarrels).
func (r *Runner) barrelFor(epoch int, pool *dga.Pool, rng *sim.RNG) []int {
	spec := r.cfg.Spec
	if _, uniform := spec.Barrel.(dga.Uniform); !uniform {
		return dga.BarrelWithScratch(spec.Barrel, pool, spec.ThetaQ, rng, &r.permScratch)
	}
	if b, ok := r.uniformBarrels[epoch]; ok {
		return b
	}
	b := spec.Barrel.Barrel(pool, spec.ThetaQ, rng)
	r.uniformBarrels[epoch] = b
	return b
}

// Pool returns the (cached) pool for an epoch index.
func (r *Runner) Pool(epoch int) *dga.Pool {
	p := r.pools.For(epoch)
	if _, ok := r.poolValid[epoch]; !ok {
		valid := make([]string, 0, len(p.ValidPositions))
		validIDs := make([]symtab.ID, 0, len(p.ValidPositions))
		for _, pos := range p.ValidPositions {
			valid = append(valid, p.Domains[pos])
			if p.IDs != nil {
				validIDs = append(validIDs, p.IDs[pos])
			} else {
				validIDs = append(validIDs, symtab.None)
			}
		}
		r.poolValid[epoch] = valid
		r.poolValidIDs[epoch] = validIDs
	}
	return p
}

// Run simulates the window w and returns the ground truth. Observable and
// raw traces accumulate on the bound network (call net.ResetTraces between
// runs).
func (r *Runner) Run(w sim.Window) (*Result, error) {
	if w.Len() <= 0 {
		return nil, fmt.Errorf("botnet: empty window %+v", w)
	}
	engine := sim.NewEngine()
	epochLen := r.cfg.EpochLen

	servers := make([]string, 0, len(r.cfg.BotsPerServer))
	for s := range r.cfg.BotsPerServer {
		servers = append(servers, s)
	}
	sort.Strings(servers)

	res := &Result{ActiveBots: make(map[string][]int, len(servers))}
	firstEpoch := int(w.Start / epochLen)
	lastEpoch := int((w.End - 1) / epochLen)
	numEpochs := lastEpoch - firstEpoch + 1
	for e := firstEpoch; e <= lastEpoch; e++ {
		res.Epochs = append(res.Epochs, sim.Window{
			Start: sim.Time(e) * epochLen,
			End:   sim.Time(e+1) * epochLen,
		})
	}
	for _, s := range servers {
		res.ActiveBots[s] = make([]int, numEpochs)
	}

	// Epoch rollover: the botmaster (de)registers C2 domains at epoch
	// boundaries. Scheduled first at each boundary (engine preserves
	// scheduling order for simultaneous events).
	for ei, ew := range res.Epochs {
		epoch := firstEpoch + ei
		start := ew.Start
		if start < w.Start {
			start = w.Start
		}
		engine.Schedule(start, func(*sim.Engine) {
			r.rollRegistry(epoch)
		})
	}

	// Schedule activations per server per epoch.
	for _, server := range servers {
		n := r.cfg.BotsPerServer[server]
		if n == 0 {
			continue
		}
		for ei := range res.Epochs {
			epoch := firstEpoch + ei
			actRNG := sim.SplitFrom(r.cfg.Seed, hashLabels(uint64(epoch), hashString(server), 0xa11))
			times := r.cfg.Activation.EpochActivations(actRNG, n, res.Epochs[ei].Start, epochLen)
			for bi, at := range times {
				if !w.Contains(at) {
					continue
				}
				res.ActiveBots[server][ei]++
				client := fmt.Sprintf("%s/bot-%04d", server, bi)
				if err := r.net.AssignClient(client, server); err != nil {
					return nil, fmt.Errorf("botnet: homing %s: %w", client, err)
				}
				bot := botRun{
					runner: r,
					server: server,
					client: client,
					epoch:  epoch,
					rng:    sim.SplitFrom(r.cfg.Seed, hashLabels(uint64(epoch), hashString(server), uint64(bi))),
					result: res,
				}
				engine.Schedule(at, bot.start)
			}
		}
	}

	engine.Run(w.End)
	return res, nil
}

// rollRegistry replaces the registered C2 set with the given epoch's.
func (r *Runner) rollRegistry(epoch int) {
	if prev, ok := r.poolValid[epoch-1]; ok {
		r.net.Registry.Unregister(prev...)
	}
	r.Pool(epoch) // ensures poolValid[epoch] is materialised
	if r.ids {
		r.net.Registry.RegisterIDs(r.poolValidIDs[epoch], r.poolValid[epoch])
	} else {
		r.net.Registry.Register(r.poolValid[epoch]...)
	}
}

// botRun drives one bot's activation(s) through the DNS hierarchy.
type botRun struct {
	runner *Runner
	server string
	client string
	epoch  int
	rng    *sim.RNG
	result *Result

	positions   []int
	pool        *dga.Pool
	step        int
	activations int

	// queryFn and startFn are the bot's methods pre-bound once per bot:
	// every ScheduleAfter(b.query) retry used to materialise a fresh
	// method-value closure, which was ~30% of all simulation allocations.
	queryFn func(*sim.Engine)
	startFn func(*sim.Engine)
}

func (b *botRun) start(e *sim.Engine) {
	if b.queryFn == nil {
		b.queryFn = b.query
		b.startFn = b.start
	}
	if b.pool == nil {
		// The pool is resolved once per bot: a bot's activations all live in
		// one epoch, so re-asking the cache per query (mutex + map lookup on
		// the hottest simulation path) bought nothing.
		b.pool = b.runner.Pool(b.epoch)
	}
	b.activations++
	if b.positions == nil {
		// The barrel is drawn once: the DGA is seeded by the date, so a
		// retry walks the same list (§III).
		b.positions = b.runner.barrelFor(b.epoch, b.pool, b.rng)
	}
	b.step = 0
	b.query(e)
}

func (b *botRun) query(e *sim.Engine) {
	if b.step >= len(b.positions) {
		b.maybeReactivate(e) // aborted after θq attempts without C2 contact
		return
	}
	pool := b.pool
	pos := b.positions[b.step]
	domain := pool.Domains[pos]
	var id symtab.ID
	if b.runner.ids && pool.IDs != nil {
		id = pool.IDs[pos]
	}
	ans, err := b.runner.net.ClientQueryID(e.Now(), b.client, domain, id)
	if err != nil {
		return
	}
	b.result.QueriesIssued++
	b.step++
	if ans.ServFail {
		// Resolution failure (injected fault or upstream outage): the bot
		// cannot tell SERVFAIL from NXDomain success-wise and walks on to
		// the next domain, like real crimeware under packet loss.
		e.ScheduleAfter(b.runner.cfg.Spec.Interval(b.rng), b.queryFn)
		return
	}
	if !ans.NX {
		b.result.C2Contacts++
		return // rendezvous established; activation ends
	}
	e.ScheduleAfter(b.runner.cfg.Spec.Interval(b.rng), b.queryFn)
}

// maybeReactivate schedules a retry of the same barrel after the back-off,
// staying within the bot's epoch.
func (b *botRun) maybeReactivate(e *sim.Engine) {
	cfg := b.runner.cfg
	if cfg.ReactivateEvery <= 0 || b.activations >= cfg.MaxActivations {
		return
	}
	delay := cfg.ReactivateEvery + b.rng.Exp(1/float64(cfg.ReactivateEvery))
	at := e.Now() + delay
	epochEnd := sim.Time(b.epoch+1) * cfg.EpochLen
	if at >= epochEnd {
		return
	}
	e.Schedule(at, b.startFn)
}

// hashString folds a string into a uint64 label for RNG splitting.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// hashLabels mixes labels into a single RNG-split label.
func hashLabels(parts ...uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, p := range parts {
		h ^= p
		h *= 1099511628211
		h ^= h >> 29
	}
	return h
}
