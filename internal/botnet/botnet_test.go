package botnet

import (
	"strings"
	"testing"

	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
	"botmeter/internal/symtab"
)

func testNetwork() *dnssim.Network {
	return dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 2,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		RecordRaw:    true,
	})
}

func smallSpec() dga.Spec {
	return dga.Spec{
		Name:          "TestDGA",
		Pool:          dga.DrainReplenish{NX: 30, C2: 2, Gen: dga.DefaultGenerator},
		Barrel:        dga.Uniform{},
		ThetaQ:        32,
		QueryInterval: 500 * sim.Millisecond,
	}
}

func TestRunnerValidation(t *testing.T) {
	net := testNetwork()
	if _, err := NewRunner(Config{Spec: dga.Spec{}, BotsPerServer: nil}, net); err == nil {
		t.Error("invalid spec should fail")
	}
	if _, err := NewRunner(Config{Spec: smallSpec()}, nil); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := NewRunner(Config{Spec: smallSpec(), BotsPerServer: map[string]int{"nope": 1}}, net); err == nil {
		t.Error("unknown server should fail")
	}
	if _, err := NewRunner(Config{Spec: smallSpec(), BotsPerServer: map[string]int{"local-00": -1}}, net); err == nil {
		t.Error("negative population should fail")
	}
}

func TestRunProducesGroundTruthAndTraces(t *testing.T) {
	net := testNetwork()
	r, err := NewRunner(Config{
		Spec:          smallSpec(),
		Seed:          7,
		BotsPerServer: map[string]int{"local-00": 20, "local-01": 10},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(sim.Window{Start: 0, End: sim.Day})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 1 {
		t.Fatalf("epochs = %d, want 1", len(res.Epochs))
	}
	a0 := res.ActiveBots["local-00"][0]
	a1 := res.ActiveBots["local-01"][0]
	if a0 <= 0 || a0 > 20 || a1 <= 0 || a1 > 10 {
		t.Errorf("active bots: local-00=%d local-01=%d", a0, a1)
	}
	if res.QueriesIssued == 0 {
		t.Error("no queries issued")
	}
	if len(net.Raw()) != res.QueriesIssued {
		t.Errorf("raw records %d != queries %d", len(net.Raw()), res.QueriesIssued)
	}
	if len(net.Border.Observed()) == 0 {
		t.Error("border saw nothing")
	}
	if len(net.Border.Observed()) > len(net.Raw()) {
		t.Error("observed exceeds raw")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	run := func() (int, int) {
		net := testNetwork()
		r, err := NewRunner(Config{
			Spec:          smallSpec(),
			Seed:          99,
			BotsPerServer: map[string]int{"local-00": 15},
		}, net)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(sim.Window{Start: 0, End: sim.Day})
		if err != nil {
			t.Fatal(err)
		}
		return res.QueriesIssued, len(net.Border.Observed())
	}
	q1, o1 := run()
	q2, o2 := run()
	if q1 != q2 || o1 != o2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", q1, o1, q2, o2)
	}
}

func TestBotsStopAtC2(t *testing.T) {
	// With C2 at early uniform positions, bots resolve quickly: every
	// activation should make at most pool-size queries and at least one C2
	// contact should occur across the population.
	net := testNetwork()
	r, err := NewRunner(Config{
		Spec:          smallSpec(),
		Seed:          3,
		BotsPerServer: map[string]int{"local-00": 10},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(sim.Window{Start: 0, End: sim.Day})
	if err != nil {
		t.Fatal(err)
	}
	if res.C2Contacts == 0 {
		t.Error("uniform barrel over a pool with registered C2 should produce contacts")
	}
	// Uniform barrel: every bot walks the same prefix; with caching, the
	// prefix is cached after the first activation, so raw queries per bot
	// are bounded by first-valid-position+1.
	pool := r.Pool(0)
	stop := len(pool.Domains)
	for i, pos := range (dga.Uniform{}).Barrel(pool, 32, sim.NewRNG(0)) {
		if pool.ValidAt(pos) {
			stop = i + 1
			break
		}
	}
	perBot := make(map[string]int)
	for _, rec := range net.Raw() {
		perBot[rec.Client]++
	}
	for bot, q := range perBot {
		if q > stop {
			t.Errorf("bot %s issued %d queries, expected at most %d", bot, q, stop)
		}
	}
}

func TestMultiEpochRegistryRollover(t *testing.T) {
	net := testNetwork()
	r, err := NewRunner(Config{
		Spec:          smallSpec(),
		Seed:          5,
		BotsPerServer: map[string]int{"local-00": 8},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(sim.Window{Start: 0, End: 3 * sim.Day})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("epochs = %d, want 3", len(res.Epochs))
	}
	// After the run the registry holds only the final epoch's C2 set.
	if got := net.Registry.Size(); got != 2 {
		t.Errorf("registry size = %d, want 2 (θ∃)", got)
	}
	// Ground truth exists for each epoch.
	if got := len(res.ActiveBots["local-00"]); got != 3 {
		t.Errorf("per-epoch ground truth length %d, want 3", got)
	}
	if res.TotalActive("local-00") == 0 {
		t.Error("no activity in 3 epochs")
	}
}

func TestQueriesRespectQueryInterval(t *testing.T) {
	net := testNetwork()
	spec := smallSpec()
	r, err := NewRunner(Config{
		Spec:          spec,
		Seed:          11,
		BotsPerServer: map[string]int{"local-00": 3},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(sim.Window{Start: 0, End: sim.Day}); err != nil {
		t.Fatal(err)
	}
	// Within one bot's activation, consecutive raw lookups are spaced by
	// exactly δi.
	perBot := make(map[string][]sim.Time)
	for _, rec := range net.Raw() {
		perBot[rec.Client] = append(perBot[rec.Client], rec.T)
	}
	for bot, times := range perBot {
		for i := 1; i < len(times); i++ {
			if times[i]-times[i-1] != spec.QueryInterval {
				t.Fatalf("bot %s: gap %v, want %v", bot, times[i]-times[i-1], spec.QueryInterval)
			}
		}
	}
}

func TestUniformBarrelCachingMasksLaterBots(t *testing.T) {
	// The AU phenomenon behind the Poisson estimator: bots activating
	// within the negative TTL of an earlier bot are fully absorbed by the
	// cache — their lookups never reach the border.
	net := testNetwork()
	spec := smallSpec()
	r, err := NewRunner(Config{
		Spec:          spec,
		Seed:          21,
		BotsPerServer: map[string]int{"local-00": 50},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(sim.Window{Start: 0, End: sim.Day})
	if err != nil {
		t.Fatal(err)
	}
	obs := net.Border.Observed()
	active := res.ActiveBots["local-00"][0]
	// 50 bots × identical barrels with 2 h negative caching: far fewer
	// distinct forwarded lookups than raw ones.
	if len(obs) >= res.QueriesIssued {
		t.Errorf("caching should mask lookups: observed %d, raw %d", len(obs), res.QueriesIssued)
	}
	if active < 20 {
		t.Errorf("active bots = %d, unexpectedly low", active)
	}
}

func TestClientNamingEmbedsServer(t *testing.T) {
	net := testNetwork()
	r, err := NewRunner(Config{
		Spec:          smallSpec(),
		Seed:          13,
		BotsPerServer: map[string]int{"local-01": 4},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(sim.Window{Start: 0, End: sim.Day}); err != nil {
		t.Fatal(err)
	}
	for _, rec := range net.Raw() {
		if !strings.HasPrefix(rec.Client, "local-01/bot-") {
			t.Fatalf("client %q not scoped to its server", rec.Client)
		}
		if rec.Server != "local-01" {
			t.Fatalf("bot homed on %q, want local-01", rec.Server)
		}
	}
}

func TestEmptyWindowRejected(t *testing.T) {
	net := testNetwork()
	r, err := NewRunner(Config{Spec: smallSpec(), BotsPerServer: map[string]int{"local-00": 1}}, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(sim.Window{Start: 5, End: 5}); err == nil {
		t.Error("empty window should error")
	}
}

// TestSecondTableDemotedToStrings is the regression for the multi-family
// ID-collision bug: two runners with private intern tables sharing one
// network must not both use the ID fast paths — dense symtab IDs are only
// unique per table, so the second runner's IDs would collide with the
// first's in the shared registry bitset and caches (false C2 contacts,
// false cache hits). The network binds to the first table; the second
// runner is demoted to the string paths and its observed records carry
// ID == symtab.None.
func TestSecondTableDemotedToStrings(t *testing.T) {
	net := testNetwork()
	specA := smallSpec()
	specB := smallSpec()
	specB.Name = "TestDGA-B"
	specB.Pool = dga.DrainReplenish{NX: 40, C2: 2, Gen: dga.DefaultGenerator}

	ra, err := NewRunner(Config{Spec: specA, Seed: 31, BotsPerServer: map[string]int{"local-00": 5}}, net)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRunner(Config{Spec: specB, Seed: 32, BotsPerServer: map[string]int{"local-00": 5}}, net)
	if err != nil {
		t.Fatal(err)
	}
	if !ra.ids {
		t.Fatal("first runner should own the network's ID space")
	}
	if rb.ids {
		t.Fatal("second runner (different intern table) must be demoted to string paths")
	}
	if net.Table() != ra.pools.Table() {
		t.Fatal("network bound to the wrong table")
	}
	if _, err := ra.Run(sim.Window{Start: 0, End: sim.Day}); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Run(sim.Window{Start: 0, End: sim.Day}); err != nil {
		t.Fatal(err)
	}
	// Every observed record's ID, when set, must resolve (in the bound
	// table) to exactly the domain string on the record: the demoted
	// runner's traffic therefore carries symtab.None.
	tab := net.Table()
	var withID, withoutID int
	for _, rec := range net.Border.Observed() {
		if rec.ID == 0 {
			withoutID++
			continue
		}
		withID++
		if got := tab.Resolve(rec.ID); got != rec.Domain {
			t.Fatalf("record ID %d resolves to %q, record says %q", rec.ID, got, rec.Domain)
		}
	}
	if withID == 0 || withoutID == 0 {
		t.Fatalf("expected both ID-carrying and demoted records, got %d/%d", withID, withoutID)
	}
}

// TestSharedTableKeepsIDs: two runners sharing one pool-cache table both
// keep the ID fast path.
func TestSharedTableKeepsIDs(t *testing.T) {
	net := testNetwork()
	tab := symtab.Get()
	defer tab.Release()
	specA := smallSpec()
	specB := smallSpec()
	specB.Name = "TestDGA-B"
	ra, err := NewRunner(Config{
		Spec: specA, Seed: 41, BotsPerServer: map[string]int{"local-00": 3},
		Pools: dga.NewPoolCache(specA.Pool, 41, tab),
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRunner(Config{
		Spec: specB, Seed: 42, BotsPerServer: map[string]int{"local-00": 3},
		Pools: dga.NewPoolCache(specB.Pool, 42, tab),
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	if !ra.ids || !rb.ids {
		t.Fatalf("runners sharing one table should both keep IDs (got %v, %v)", ra.ids, rb.ids)
	}
}
