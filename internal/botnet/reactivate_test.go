package botnet

import (
	"testing"

	"botmeter/internal/dga"
	"botmeter/internal/sim"
)

// reactivationSpec has NO registered domains, so every activation aborts
// and (with the knob on) retries.
func reactivationSpec() dga.Spec {
	return dga.Spec{
		Name:          "NoC2",
		Pool:          dga.DrainReplenish{NX: 20, C2: 0, Gen: dga.DefaultGenerator},
		Barrel:        dga.RandomCut{},
		ThetaQ:        10,
		QueryInterval: 500 * sim.Millisecond,
	}
}

func TestReactivationIssuesMoreQueries(t *testing.T) {
	run := func(every sim.Time) (int, int) {
		net := testNetwork()
		r, err := NewRunner(Config{
			Spec:            reactivationSpec(),
			Seed:            3,
			BotsPerServer:   map[string]int{"local-00": 5},
			ReactivateEvery: every,
		}, net)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(sim.Window{Start: 0, End: sim.Day})
		if err != nil {
			t.Fatal(err)
		}
		return res.QueriesIssued, res.ActiveBots["local-00"][0]
	}
	qOff, activeOff := run(0)
	qOn, activeOn := run(2 * sim.Hour)
	if qOn <= qOff {
		t.Errorf("re-activation should issue more queries: %d vs %d", qOn, qOff)
	}
	// Ground truth counts distinct bots, not activations: unchanged.
	if activeOn != activeOff {
		t.Errorf("ground truth changed with re-activation: %d vs %d", activeOn, activeOff)
	}
	// Same barrel each retry: the distinct query set per bot is unchanged,
	// so total queries are bounded by attempts × barrel size.
	if qOn > 4*qOff+5*10 {
		t.Errorf("re-activation issued %d queries, beyond the 4-attempt bound (single pass %d)", qOn, qOff)
	}
}

func TestReactivationStopsAfterC2Contact(t *testing.T) {
	spec := reactivationSpec()
	spec.Pool = dga.DrainReplenish{NX: 19, C2: 1, Gen: dga.DefaultGenerator}
	net := testNetwork()
	r, err := NewRunner(Config{
		Spec:            spec,
		Seed:            4,
		BotsPerServer:   map[string]int{"local-00": 3},
		ReactivateEvery: sim.Hour,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(sim.Window{Start: 0, End: sim.Day})
	if err != nil {
		t.Fatal(err)
	}
	// RandomCut over 20 domains with one C2: each activation has a decent
	// chance of contact; contacted bots must not retry, so C2 contacts are
	// bounded by... every bot eventually succeeds at most once per
	// activation chain. Sanity: contacts ≤ bots × MaxActivations.
	if res.C2Contacts == 0 {
		t.Error("no C2 contacts with a registered domain")
	}
	if res.C2Contacts > 3*4 {
		t.Errorf("C2 contacts %d exceed attempt budget", res.C2Contacts)
	}
}
