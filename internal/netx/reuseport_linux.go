//go:build linux

package netx

import "syscall"

// soReusePort is SO_REUSEPORT on Linux (asm-generic/socket.h). The stdlib
// syscall package does not export the constant (it postdates the package
// freeze), so it is spelled here rather than pulling in golang.org/x/sys.
const soReusePort = 0xf

// reusePortSupported reports whether this platform can shard one UDP port
// across sockets (Linux ≥ 3.9; the setsockopt itself is the runtime check).
const reusePortSupported = true

func setReusePort(fd uintptr) error {
	return syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
}
