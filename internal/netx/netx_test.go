package netx

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestListenUDPSingle(t *testing.T) {
	conns, reuse, err := ListenUDP(context.Background(), "127.0.0.1:0", 1)
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer closeAll(conns)
	if len(conns) != 1 {
		t.Fatalf("count=1 returned %d sockets", len(conns))
	}
	if reuse {
		t.Fatalf("count=1 must not claim reuseport")
	}
}

func TestListenUDPCountFloor(t *testing.T) {
	conns, _, err := ListenUDP(context.Background(), "127.0.0.1:0", 0)
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer closeAll(conns)
	if len(conns) != 1 {
		t.Fatalf("count=0 returned %d sockets, want 1", len(conns))
	}
}

// TestListenUDPSharded binds four sockets to one ephemeral port and proves
// the kernel delivers every datagram exactly once across the group. The
// distribution itself is a kernel policy (flow-hash), so the test asserts
// conservation, and only asserts spread when reuseport was actually active.
func TestListenUDPSharded(t *testing.T) {
	const sockets = 4
	conns, reuse, err := ListenUDP(context.Background(), "127.0.0.1:0", sockets)
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer closeAll(conns)
	if !reuse {
		t.Logf("SO_REUSEPORT unavailable; fallback returned %d socket(s)", len(conns))
		if len(conns) != 1 {
			t.Fatalf("fallback must return exactly one socket, got %d", len(conns))
		}
		return
	}
	if len(conns) != sockets {
		t.Fatalf("got %d sockets, want %d", len(conns), sockets)
	}
	addr := conns[0].LocalAddr().String()
	for i, c := range conns {
		if c.LocalAddr().String() != addr {
			t.Fatalf("socket %d bound to %s, want %s", i, c.LocalAddr(), addr)
		}
	}

	perSocket := make([]atomic.Int64, sockets)
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c net.PacketConn) {
			defer wg.Done()
			buf := make([]byte, 64)
			for {
				n, _, err := c.ReadFrom(buf)
				if err != nil {
					return
				}
				if n > 0 {
					perSocket[i].Add(1)
				}
			}
		}(i, c)
	}

	// Many distinct source ports, so the flow hash has entropy to spread.
	const senders, perSender = 32, 8
	for s := 0; s < senders; s++ {
		src, err := net.Dial("udp", addr)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < perSender; p++ {
			if _, err := src.Write([]byte{byte(s), byte(p)}); err != nil {
				t.Fatal(err)
			}
		}
		src.Close()
	}

	want := int64(senders * perSender)
	deadline := time.Now().Add(5 * time.Second)
	for {
		var total int64
		for i := range perSocket {
			total += perSocket[i].Load()
		}
		if total == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d datagrams before deadline", total, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	hit := 0
	for i := range perSocket {
		if perSocket[i].Load() > 0 {
			hit++
		}
	}
	// 32 distinct 4-tuples across 4 sockets: all landing on one socket
	// would mean the option did not take effect.
	if hit < 2 {
		counts := make([]int64, sockets)
		for i := range perSocket {
			counts[i] = perSocket[i].Load()
		}
		t.Fatalf("kernel did not shard: per-socket counts %v", counts)
	}
	closeAll(conns)
	wg.Wait()
}
