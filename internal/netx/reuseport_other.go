//go:build !linux

package netx

// Non-Linux platforms take the graceful single-socket fallback: the wire
// fast path still runs, with one shard. (Darwin and the BSDs do have
// SO_REUSEPORT, but with different load-balancing semantics; the production
// target is Linux, so everything else gets the conservative shape.)
const reusePortSupported = false

func setReusePort(fd uintptr) error { return nil }
