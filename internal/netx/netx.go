// Package netx provides the multi-socket UDP ingestion substrate of the
// wire fast path (DESIGN.md §19): N listener sockets bound to the same
// address via SO_REUSEPORT, so the kernel shards incoming datagrams by
// flow hash across N independent reader goroutines — no accept mutex, no
// shared ring, each socket a private pipeline. On platforms (or kernels)
// where SO_REUSEPORT is unavailable the listen degrades gracefully to a
// single socket, and callers run the same worker code with one shard.
//
// The implementation stays stdlib-only: the socket option is applied
// through net.ListenConfig.Control with a raw syscall, not golang.org/x/sys.
package netx

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// ListenUDP opens count UDP sockets bound to addr. When count > 1 the
// sockets are bound with SO_REUSEPORT so the kernel distributes datagrams
// across them by flow hash. The first socket resolves the address (so
// ":0" picks one ephemeral port shared by every subsequent socket).
//
// Fallback contract: if the platform rejects SO_REUSEPORT, ListenUDP
// returns a single plainly-bound socket and reuseport=false rather than an
// error — the caller's worker pool simply runs with one shard. Any other
// bind failure closes the sockets opened so far and returns the error.
func ListenUDP(ctx context.Context, addr string, count int) (conns []net.PacketConn, reuseport bool, err error) {
	if count < 1 {
		count = 1
	}
	if count == 1 || !reusePortSupported {
		c, err := net.ListenPacket("udp", addr)
		if err != nil {
			return nil, false, err
		}
		return []net.PacketConn{c}, false, nil
	}
	lc := net.ListenConfig{Control: controlReusePort}
	first, err := lc.ListenPacket(ctx, "udp", addr)
	if err != nil {
		// The kernel refused the socket option (or the bind): degrade to the
		// single-socket slow shape instead of failing the daemon.
		c, perr := net.ListenPacket("udp", addr)
		if perr != nil {
			return nil, false, fmt.Errorf("netx: listen %s: %w", addr, perr)
		}
		return []net.PacketConn{c}, false, nil
	}
	conns = append(conns, first)
	// Subsequent sockets bind the RESOLVED address of the first, so an
	// ephemeral-port request lands every socket on the same port.
	resolved := first.LocalAddr().String()
	for len(conns) < count {
		c, err := lc.ListenPacket(ctx, "udp", resolved)
		if err != nil {
			closeAll(conns)
			return nil, false, fmt.Errorf("netx: listen %s (socket %d of %d): %w", resolved, len(conns)+1, count, err)
		}
		conns = append(conns, c)
	}
	return conns, true, nil
}

// closeAll closes every socket in conns (best effort).
func closeAll(conns []net.PacketConn) {
	for _, c := range conns {
		c.Close()
	}
}

// controlReusePort applies SO_REUSEPORT to the socket before bind.
func controlReusePort(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) { serr = setReusePort(fd) }); err != nil {
		return err
	}
	return serr
}
