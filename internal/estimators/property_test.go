package estimators

import (
	"math"
	"testing"
	"testing/quick"

	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// TestTimingBoundsProperty: MT's estimate is always between 1 and the
// number of lookups for a non-empty stream (each lookup either joins an
// entry or creates one).
func TestTimingBoundsProperty(t *testing.T) {
	cfg := defaultCfg(auSpec())
	mt := NewTiming()
	f := func(ts []uint32, domIdx []uint8) bool {
		if len(ts) == 0 {
			return true
		}
		obs := make(trace.Observed, 0, len(ts))
		for i, tv := range ts {
			d := "x.com"
			if i < len(domIdx) {
				d = string(rune('a'+domIdx[i]%26)) + ".com"
			}
			obs = append(obs, trace.ObservedRecord{
				T: sim.Time(tv) % sim.Day, Domain: d,
			})
		}
		got, err := mt.EstimateEpoch(obs, 0, cfg)
		if err != nil {
			return false
		}
		return got >= 1 && got <= float64(len(obs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTimingOrderInsensitiveProperty: Algorithm 1 sorts its input, so
// permuting the record order must not change the estimate.
func TestTimingOrderInsensitiveProperty(t *testing.T) {
	cfg := defaultCfg(auSpec())
	mt := NewTiming()
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 20 + rng.IntN(30)
		obs := make(trace.Observed, 0, n)
		for i := 0; i < n; i++ {
			obs = append(obs, trace.ObservedRecord{
				T:      sim.Time(rng.Int64N(int64(sim.Hour))),
				Domain: string(rune('a'+rng.IntN(26))) + ".com",
			})
		}
		a, err := mt.EstimateEpoch(obs, 0, cfg)
		if err != nil {
			return false
		}
		shuffled := make(trace.Observed, n)
		copy(shuffled, obs)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b, err := mt.EstimateEpoch(shuffled, 0, cfg)
		if err != nil {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPoissonAtLeastVisibleProperty: Equation 1's correction only ever adds
// hidden activations — the estimate is at least the number of genuinely
// visible activation waves (lookups pairwise separated by the negative
// TTL; bursts closer than δl are folded into one wave by construction).
func TestPoissonAtLeastVisibleProperty(t *testing.T) {
	cfg := defaultCfg(auSpec())
	mp := NewPoisson()
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 1 + rng.IntN(20)
		obs := make(trace.Observed, 0, n)
		for i := 0; i < n; i++ {
			obs = append(obs, trace.ObservedRecord{
				T:      sim.Time(rng.Int64N(int64(sim.Day))),
				Domain: "d.com",
			})
		}
		got, err := mp.EstimateEpoch(obs, 0, cfg)
		if err != nil {
			return false
		}
		// Greedy count of δl-separated lookups = visible waves.
		sorted := make(trace.Observed, len(obs))
		copy(sorted, obs)
		sorted.Sort()
		waves := 0
		last := sim.Time(-1) << 40
		for _, rec := range sorted {
			if rec.T >= last+cfg.NegativeTTL {
				waves++
				last = rec.T
			}
		}
		return got >= float64(waves)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSegmentsPartitionProperty: segments tile the observed positions —
// lengths sum to the number of observed NXD positions and segments do not
// overlap.
func TestSegmentsPartitionProperty(t *testing.T) {
	pool := segPool(60, 10, 30, 45)
	view := newCircleView(pool, nil)
	f := func(raw []uint8) bool {
		observed := make(map[int]struct{})
		count := 0
		for _, r := range raw {
			p := int(r) % 60
			if p == 10 || p == 30 || p == 45 {
				continue // valid positions are not NXDs
			}
			if _, dup := observed[p]; !dup {
				observed[p] = struct{}{}
				count++
			}
		}
		segs := extractSegments(view, observed, 0)
		total := 0
		covered := make(map[int]struct{})
		for _, s := range segs {
			total += s.length
			for k := 0; k < s.length; k++ {
				idx := mod(s.start+k, view.size())
				if _, dup := covered[idx]; dup {
					return false // overlap
				}
				covered[idx] = struct{}{}
			}
		}
		return total == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBernoulliAtLeastOnePerSegmentProperty: every segment was produced by
// at least one bot.
func TestBernoulliAtLeastOnePerSegmentProperty(t *testing.T) {
	mb := NewBernoulli()
	f := func(lRaw, qRaw uint8, boundary bool) bool {
		l := int(lRaw%80) + 1
		thetaQ := int(qRaw%30) + 1
		got := mb.computeExpectedBots(l, thetaQ, boundary)
		return got >= 1-1e-9 && !math.IsNaN(got) && !math.IsInf(got, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestEstimatorsRobustToGarbage: streams with out-of-epoch timestamps,
// duplicates and unknown domains must not error or produce NaN.
func TestEstimatorsRobustToGarbage(t *testing.T) {
	cfgAU := defaultCfg(auSpec())
	cfgAR := defaultCfg(arSpec(95, 5, 10))
	garbage := trace.Observed{
		{T: -5 * sim.Day, Domain: "??", Server: "s"},
		{T: 100 * sim.Day, Domain: "", Server: "s"},
		{T: 0, Domain: "a.com", Server: "s"},
		{T: 0, Domain: "a.com", Server: "s"},
		{T: 1, Domain: "not-in-any-pool.io", Server: "s"},
	}
	ests := []struct {
		e   Estimator
		cfg Config
	}{
		{NewTiming(), cfgAU},
		{NewPoisson(), cfgAU},
		{NewNaive(), cfgAU},
		{NewBernoulli(), cfgAR},
		{NewCoverage(), cfgAR},
	}
	for _, tc := range ests {
		got, err := tc.e.EstimateEpoch(garbage, 0, tc.cfg)
		if err != nil {
			t.Errorf("%s errored on garbage: %v", tc.e.Name(), err)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Errorf("%s produced %v on garbage", tc.e.Name(), got)
		}
	}
}

// TestEstimateWindowConsistentWithSingleEpoch: a one-epoch window equals a
// direct EstimateEpoch call.
func TestEstimateWindowConsistentWithSingleEpoch(t *testing.T) {
	cfg := defaultCfg(arSpec(95, 5, 10))
	pool := cfg.Spec.Pool.PoolFor(cfg.Seed, 0)
	domains := simulateAR(pool, 6, cfg.Spec.ThetaQ, sim.NewRNG(3))
	obs := make(trace.Observed, 0, len(domains))
	for i, d := range domains {
		obs = append(obs, trace.ObservedRecord{T: sim.Time(i), Domain: d})
	}
	mb := NewBernoulli()
	direct, err := mb.EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := EstimateWindow(mb, obs, sim.Window{Start: 0, End: sim.Day}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct != windowed {
		t.Errorf("single-epoch window (%v) != direct (%v)", windowed, direct)
	}
}
