package estimators

import (
	"testing"

	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// observeNXPositions feeds the stream one record per distinct NX position
// (the first `distinct` of the epoch-0 pool), repeating each record
// 1+dups times, and returns how many distinct positions were fed.
func observeNXPositions(es EpochStream, cfg Config, distinct, dups int) int {
	pool := cfg.poolFor(0)
	fed := 0
	for pos := 0; pos < pool.Size() && fed < distinct; pos++ {
		if pool.ValidAt(pos) {
			continue
		}
		rec := trace.ObservedRecord{T: sim.Time(fed) * sim.Second, Domain: pool.Domains[pos]}
		for k := 0; k <= dups; k++ {
			es.Observe(rec)
		}
		fed++
	}
	return fed
}

// segmentWorkFor runs one streaming MB epoch over `distinct` changed pool
// positions (each record duplicated dups extra times) against a pool of nx
// NX domains, and reports the segment pipeline's (bucket, position) work.
func segmentWorkFor(t *testing.T, nx, distinct, dups int) uint64 {
	t.Helper()
	mb := NewBernoulli()
	cfg, err := defaultCfg(arSpec(nx, 2, 10)).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	es := mb.OpenEpoch(0, cfg)
	if fed := observeNXPositions(es, cfg, distinct, dups); fed != distinct {
		t.Fatalf("pool too small: fed %d of %d distinct NX positions", fed, distinct)
	}
	if got := es.Estimate(); got <= 0 {
		t.Fatalf("estimate = %v, want > 0", got)
	}
	if r, ok := es.(Releasable); ok {
		r.Release()
	}
	return mb.SegmentWork()
}

// TestEpochCloseWorkScalesWithChanged is the tentpole's O(changed) contract
// made observable: streaming MB's epoch close processes the distinct
// (bucket, position) pairs the epoch actually touched — its cost is
// invariant both to pool size (a 20× larger pool with the same activity
// does the same work) and to record volume (duplicate lookups of an
// already-seen position are absorbed at ingest and add nothing to close).
func TestEpochCloseWorkScalesWithChanged(t *testing.T) {
	const distinct = 64
	small := segmentWorkFor(t, 200, distinct, 0)
	large := segmentWorkFor(t, 4000, distinct, 0)
	dup := segmentWorkFor(t, 200, distinct, 3)
	if small == 0 {
		t.Fatal("segment pipeline reported zero work")
	}
	if large != small {
		t.Errorf("epoch-close work grew with pool size: %d (nx=200) vs %d (nx=4000)", small, large)
	}
	if dup != small {
		t.Errorf("epoch-close work grew with duplicate records: %d (1×) vs %d (4×)", small, dup)
	}
}

// benchEpochClose measures one full streaming epoch cycle — open, ingest
// the prepared records, close (final Estimate), release — for any
// StreamCapable estimator.
func benchEpochClose(b *testing.B, sc StreamCapable, cfg Config, recs trace.Observed) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es := sc.OpenEpoch(0, cfg)
		for _, rec := range recs {
			es.Observe(rec)
		}
		if es.Estimate() < 0 {
			b.Fatal("negative estimate")
		}
		if r, ok := es.(Releasable); ok {
			r.Release()
		}
	}
}

// nxRecords materialises records over the first `distinct` NX positions of
// cfg's epoch-0 pool, each repeated 1+dups times.
func nxRecords(b *testing.B, cfg Config, distinct, dups int) trace.Observed {
	b.Helper()
	pool := cfg.poolFor(0)
	var recs trace.Observed
	fed := 0
	for pos := 0; pos < pool.Size() && fed < distinct; pos++ {
		if pool.ValidAt(pos) {
			continue
		}
		rec := trace.ObservedRecord{T: sim.Time(fed) * sim.Second, Domain: pool.Domains[pos]}
		for k := 0; k <= dups; k++ {
			recs = append(recs, rec)
		}
		fed++
	}
	if fed != distinct {
		b.Fatalf("pool too small: fed %d of %d distinct NX positions", fed, distinct)
	}
	return recs
}

func BenchmarkEpochCloseMB(b *testing.B) {
	cfg, err := defaultCfg(arSpec(2000, 2, 10)).Normalized()
	if err != nil {
		b.Fatal(err)
	}
	benchEpochClose(b, NewBernoulli(), cfg, nxRecords(b, cfg, 256, 3))
}

func BenchmarkEpochCloseMP(b *testing.B) {
	cfg, err := defaultCfg(arSpec(2000, 2, 10)).Normalized()
	if err != nil {
		b.Fatal(err)
	}
	benchEpochClose(b, NewPoisson(), cfg, nxRecords(b, cfg, 256, 3))
}

func BenchmarkEpochCloseMT(b *testing.B) {
	cfg, err := defaultCfg(auSpec()).Normalized()
	if err != nil {
		b.Fatal(err)
	}
	benchEpochClose(b, NewTiming(), cfg, nxRecords(b, cfg, 90, 3))
}
