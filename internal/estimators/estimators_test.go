package estimators

import (
	"fmt"
	"math"
	"testing"

	"botmeter/internal/dga"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
	"botmeter/internal/trace"
)

func arSpec(nx, c2, thetaQ int) dga.Spec {
	return dga.Spec{
		Name:          "test-AR",
		Pool:          dga.DrainReplenish{NX: nx, C2: c2, Gen: dga.DefaultGenerator},
		Barrel:        dga.RandomCut{},
		ThetaQ:        thetaQ,
		QueryInterval: sim.Second,
	}
}

func auSpec() dga.Spec {
	return dga.Spec{
		Name:          "test-AU",
		Pool:          dga.DrainReplenish{NX: 98, C2: 2, Gen: dga.DefaultGenerator},
		Barrel:        dga.Uniform{},
		ThetaQ:        100,
		QueryInterval: 500 * sim.Millisecond,
	}
}

func defaultCfg(spec dga.Spec) Config {
	return Config{
		Spec:        spec,
		Seed:        42,
		EpochLen:    sim.Day,
		NegativeTTL: 2 * sim.Hour,
	}
}

// --- Timing (Algorithm 1) ---

func TestTimingEmpty(t *testing.T) {
	got, err := NewTiming().EstimateEpoch(nil, 0, defaultCfg(auSpec()))
	if err != nil || got != 0 {
		t.Errorf("empty estimate = %v, %v", got, err)
	}
}

func TestTimingHandComputed(t *testing.T) {
	spec := auSpec()
	spec.ThetaQ = 4 // max duration 2 s
	cfg := defaultCfg(spec)
	obs := trace.Observed{
		// Bot A: phase 0, domains a, b, c.
		{T: 0, Domain: "a.com"},
		{T: 500, Domain: "b.com"},
		{T: 1000, Domain: "c.com"},
		// Bot B: phase 250 — heuristic #3 separates it.
		{T: 250, Domain: "a.com"},
		{T: 750, Domain: "b.com"},
	}
	got, err := NewTiming().EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("MT = %v, want 2", got)
	}
}

func TestTimingHeuristic1SameDomain(t *testing.T) {
	spec := auSpec()
	spec.ThetaQ = 1000
	cfg := defaultCfg(spec)
	// Same domain twice within the duration and in phase: heuristic #1
	// forces a second entry.
	obs := trace.Observed{
		{T: 0, Domain: "a.com"},
		{T: 1000, Domain: "a.com"},
	}
	got, err := NewTiming().EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("MT = %v, want 2 (same NXD twice = two bots)", got)
	}
}

func TestTimingHeuristic2MaxDuration(t *testing.T) {
	spec := auSpec()
	spec.ThetaQ = 2 // max duration 1 s
	cfg := defaultCfg(spec)
	obs := trace.Observed{
		{T: 0, Domain: "a.com"},
		{T: 5000, Domain: "b.com"}, // far beyond one activation
	}
	got, err := NewTiming().EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("MT = %v, want 2 (beyond max duration)", got)
	}
}

func TestTimingSkipsModuloWhenGranularityCoarse(t *testing.T) {
	spec := auSpec() // δi = 500 ms
	cfg := defaultCfg(spec)
	cfg.Granularity = sim.Second // coarser than δi: heuristic #3 unusable
	obs := trace.Observed{
		{T: 0, Domain: "a.com"},
		{T: 1000, Domain: "b.com"}, // would be out of phase at 500 ms... but
		// timestamps are second-truncated, so phase carries no signal.
	}
	got, err := NewTiming().EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("MT = %v, want 1 (modulo heuristic disabled)", got)
	}
}

func TestTimingIrregularPacing(t *testing.T) {
	spec := dga.Ramnit() // no fixed δi
	cfg := defaultCfg(spec)
	obs := trace.Observed{
		{T: 0, Domain: "a.com"},
		{T: 777, Domain: "b.com"},
	}
	got, err := NewTiming().EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("MT = %v, want 1 (no modulo heuristic without fixed δi)", got)
	}
}

// --- Poisson (Equation 1) ---

func TestPoissonEmpty(t *testing.T) {
	got, err := NewPoisson().EstimateEpoch(nil, 0, defaultCfg(auSpec()))
	if err != nil || got != 0 {
		t.Errorf("empty estimate = %v, %v", got, err)
	}
}

func TestPoissonHandComputed(t *testing.T) {
	cfg := defaultCfg(auSpec()) // δl = 2 h
	// Three visible activations at 1 h, 4 h, 8 h (single lookups).
	obs := trace.Observed{
		{T: 1 * sim.Hour, Domain: "a.com"},
		{T: 4 * sim.Hour, Domain: "a.com"},
		{T: 8 * sim.Hour, Domain: "a.com"},
	}
	// Δ₁=1h, Δ₂=4h−3h=1h, Δ₃=8h−6h=2h, ΣΔ=4h.
	// E(N) = 3 + 9·2h/4h = 7.5.
	got, err := NewPoisson().EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-7.5) > 1e-9 {
		t.Errorf("MP = %v, want 7.5", got)
	}
}

func TestPoissonClustersBurstsAsOneActivation(t *testing.T) {
	cfg := defaultCfg(auSpec())
	// One activation: a train of δi-spaced lookups — one cluster.
	var obs trace.Observed
	for i := 0; i < 10; i++ {
		obs = append(obs, trace.ObservedRecord{
			T:      sim.Hour + sim.Time(i)*500*sim.Millisecond,
			Domain: fmt.Sprintf("d%d.com", i),
		})
	}
	got, err := NewPoisson().EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// n=1, Δ₁=1h: E(N) = 1 + 1·2h/1h = 3.
	if math.Abs(got-3) > 1e-9 {
		t.Errorf("MP = %v, want 3", got)
	}
}

func TestPoissonZeroGapFallback(t *testing.T) {
	cfg := defaultCfg(auSpec())
	// A single activation exactly at the window start: ΣΔ = 0.
	obs := trace.Observed{{T: 0, Domain: "a.com"}}
	got, err := NewPoisson().EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fallback: n · δe/δl = 1 · 24h/2h = 12.
	if math.Abs(got-12) > 1e-9 {
		t.Errorf("MP fallback = %v, want 12", got)
	}
}

func TestNaiveCountsClusters(t *testing.T) {
	cfg := defaultCfg(auSpec())
	obs := trace.Observed{
		{T: sim.Hour, Domain: "a.com"},
		{T: 4 * sim.Hour, Domain: "a.com"},
	}
	got, err := NewNaive().EstimateEpoch(obs, 0, cfg)
	if err != nil || got != 2 {
		t.Errorf("NC = %v, %v; want 2", got, err)
	}
}

// --- Segments ---

func segPool(size int, valid ...int) *dga.Pool {
	domains := make([]string, size)
	for i := range domains {
		domains[i] = fmt.Sprintf("p%03d.com", i)
	}
	return dga.NewPool(domains, valid)
}

func posSet(positions ...int) map[int]struct{} {
	out := make(map[int]struct{}, len(positions))
	for _, p := range positions {
		out[p] = struct{}{}
	}
	return out
}

func TestExtractSegmentsBasic(t *testing.T) {
	pool := segPool(20, 5, 15)
	view := newCircleView(pool, nil)
	// Contracted circle drops positions 5 and 15. Run 2..4 ends at valid 5
	// → b-segment; run 8..9 ends at unobserved NXD 10 → m-segment.
	segs := extractSegments(view, posSet(2, 3, 4, 8, 9), 0)
	if len(segs) != 2 {
		t.Fatalf("segments = %+v", segs)
	}
	byStart := map[int]segment{}
	for _, s := range segs {
		byStart[view.orig[s.start]] = s
	}
	if s := byStart[2]; s.length != 3 || !s.boundary {
		t.Errorf("segment at 2: %+v, want length 3 b-segment", s)
	}
	if s := byStart[8]; s.length != 2 || s.boundary {
		t.Errorf("segment at 8: %+v, want length 2 m-segment", s)
	}
}

func TestExtractSegmentsWrapAround(t *testing.T) {
	pool := segPool(10, 5)
	view := newCircleView(pool, nil)
	// Run 8, 9, 0, 1 wraps the circle end (no boundary at the wrap).
	segs := extractSegments(view, posSet(8, 9, 0, 1), 0)
	if len(segs) != 1 {
		t.Fatalf("segments = %+v, want one wrapped run", segs)
	}
	if view.orig[segs[0].start] != 8 || segs[0].length != 4 || segs[0].boundary {
		t.Errorf("wrapped segment = %+v", segs[0])
	}
}

func TestExtractSegmentsValidSplits(t *testing.T) {
	pool := segPool(10, 3)
	view := newCircleView(pool, nil)
	// Position 3 is valid: it splits 2 and 4 into separate segments.
	segs := extractSegments(view, posSet(2, 3, 4), 0)
	if len(segs) != 2 {
		t.Fatalf("segments = %+v, want 2 (valid position splits)", segs)
	}
	for _, s := range segs {
		if s.length != 1 {
			t.Errorf("segment %+v, want length 1", s)
		}
		if view.orig[s.start] == 2 && !s.boundary {
			t.Error("segment before a valid position must be a b-segment")
		}
	}
}

func TestExtractSegmentsEmpty(t *testing.T) {
	pool := segPool(5, 1)
	view := newCircleView(pool, nil)
	if segs := extractSegments(view, nil, 0); segs != nil {
		t.Errorf("empty observations → %+v", segs)
	}
	if segs := extractSegments(view, posSet(1), 0); segs != nil {
		t.Errorf("valid-only observations → %+v", segs)
	}
}

func TestExtractSegmentsFullCircleNoBoundaries(t *testing.T) {
	pool := segPool(6) // no valid positions at all
	view := newCircleView(pool, nil)
	segs := extractSegments(view, posSet(0, 1, 2, 3, 4, 5), 0)
	if len(segs) != 1 || segs[0].length != 6 || segs[0].boundary {
		t.Errorf("full circle = %+v, want one 6-long m-run", segs)
	}
}

func TestExtractSegmentsGapTolerance(t *testing.T) {
	pool := segPool(30, 25)
	view := newCircleView(pool, nil)
	// Run 2..10 with holes at 5 and 8 (lost records).
	observed := posSet(2, 3, 4, 6, 7, 9, 10)
	// Strict adjacency: three fragments.
	if segs := extractSegments(view, observed, 0); len(segs) != 3 {
		t.Errorf("strict segments = %+v, want 3", segs)
	}
	// Tolerance 1 bridges single-position holes into one run whose length
	// counts the holes as covered.
	segs := extractSegments(view, observed, 1)
	if len(segs) != 1 {
		t.Fatalf("tolerant segments = %+v, want 1", segs)
	}
	if segs[0].length != 9 {
		t.Errorf("tolerant length = %d, want 9 (holes counted)", segs[0].length)
	}
	// Tolerance never bridges across an arc boundary.
	pool2 := segPool(30, 5)
	view2 := newCircleView(pool2, nil)
	segs = extractSegments(view2, posSet(3, 4, 6, 7), 2)
	if len(segs) != 2 {
		t.Errorf("boundary-bridging segments = %+v, want 2", segs)
	}
}

func TestBernoulliGapToleranceUnderRecordLoss(t *testing.T) {
	spec := arSpec(995, 5, 50)
	cfg := defaultCfg(spec)
	pool := spec.Pool.PoolFor(cfg.Seed, 0)
	const trueN = 16
	rng := sim.NewRNG(88)
	domains := simulateAR(pool, trueN, spec.ThetaQ, rng)
	// Drop 20% of the distinct observations.
	var obs trace.Observed
	for i, d := range domains {
		if rng.Float64() < 0.2 {
			continue
		}
		obs = append(obs, trace.ObservedRecord{T: sim.Time(i), Domain: d})
	}
	strict := NewBernoulli()
	sGot, err := strict.EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tolerant := NewBernoulli()
	tolerant.GapTolerance = 2
	tGot, err := tolerant.EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tolerant.Name() != "MB+g2" {
		t.Errorf("tolerant name = %q", tolerant.Name())
	}
	sARE := stats.ARE(sGot, trueN)
	tARE := stats.ARE(tGot, trueN)
	if tARE >= sARE {
		t.Errorf("gap tolerance did not help: strict ARE %.2f, tolerant ARE %.2f", sARE, tARE)
	}
	if tARE > 0.5 {
		t.Errorf("tolerant ARE %.2f too high under 20%% record loss", tARE)
	}
}

func TestCircleViewContraction(t *testing.T) {
	pool := segPool(10, 4)
	// Detector sees only even positions (4 is valid, excluded anyway).
	view := newCircleView(pool, []int{0, 2, 4, 6, 8})
	if view.size() != 4 {
		t.Fatalf("contracted size = %d, want 4", view.size())
	}
	// A run over detected positions 2 and 6 must NOT be split by the
	// undetected 3 and 5... except that valid position 4 lies between
	// them: boundary split expected.
	segs := extractSegments(view, posSet(2, 6), 0)
	if len(segs) != 2 {
		t.Fatalf("segments = %+v", segs)
	}
	// Positions 6 and 8 are contracted-adjacent with no boundary: one run.
	segs = extractSegments(view, posSet(6, 8), 0)
	if len(segs) != 1 || segs[0].length != 2 {
		t.Errorf("contracted adjacency failed: %+v", segs)
	}
}

// --- Bernoulli numerics ---

// TestOccupancyMatchesStirling cross-validates the occupancy recurrence
// used by MB against the paper's literal Stirling form
// Pₙ(m) = C(l̃,m)·m!·S(n,m)/l̃ⁿ.
func TestOccupancyMatchesStirling(t *testing.T) {
	st := stats.NewStirlingTable()
	for _, lt := range []int{2, 3, 5, 8} {
		p := make([]float64, lt+1)
		p[0] = 1
		for n := 1; n <= 12; n++ {
			for m := minInt(n, lt); m >= 1; m-- {
				p[m] = p[m]*float64(m)/float64(lt) + p[m-1]*float64(lt-m+1)/float64(lt)
			}
			p[0] = 0
			for m := 1; m <= minInt(n, lt); m++ {
				want := math.Exp(stats.LogBinomial(lt, m) + stats.LogFactorial(m) +
					st.Log(n, m) - float64(n)*math.Log(float64(lt)))
				if math.Abs(p[m]-want) > 1e-9 {
					t.Fatalf("P_%d(%d) over %d bins: recurrence %v, Stirling %v", n, m, lt, p[m], want)
				}
			}
		}
	}
}

func TestGapProbabilitiesProperties(t *testing.T) {
	for _, tc := range []struct{ lt, thetaQ int }{{5, 2}, {10, 3}, {20, 6}, {50, 10}} {
		g := gapProbabilities(tc.lt, tc.thetaQ)
		if g == nil {
			t.Fatalf("g(%d,%d) degenerated", tc.lt, tc.thetaQ)
		}
		if math.Abs(g[tc.lt]-1) > 1e-9 {
			t.Errorf("g(l̃,l̃) = %v, want 1", g[tc.lt])
		}
		for m := 0; m <= tc.lt; m++ {
			if g[m] < 0 || g[m] > 1 {
				t.Errorf("g(%d,%d)[%d] = %v outside [0,1]", tc.lt, tc.thetaQ, m, g[m])
			}
		}
		// Fewer start positions than needed to bridge θq gaps → g ≈ 0.
		minPts := (tc.lt-2)/tc.thetaQ + 2 - 1
		if minPts > 2 && g[2] > 1e-9 && tc.lt-2 >= tc.thetaQ {
			t.Errorf("g[2] = %v should vanish when two endpoints cannot bridge l̃=%d with θq=%d", g[2], tc.lt, tc.thetaQ)
		}
	}
}

func TestBernoulliSingleBotSegment(t *testing.T) {
	mb := NewBernoulli()
	// An m-segment of exactly θq: l̃ = 1 → exactly one bot.
	if got := mb.computeExpectedBots(10, 10, false); math.Abs(got-1) > 1e-9 {
		t.Errorf("E[N] for l=θq m-segment = %v, want 1", got)
	}
	// Very short b-segment: at least (and about) one bot.
	if got := mb.computeExpectedBots(3, 10, true); got < 1 {
		t.Errorf("E[N] for short b-segment = %v, want ≥ 1", got)
	}
}

func TestBernoulliMonotoneInLength(t *testing.T) {
	mb := NewBernoulli()
	prev := 0.0
	for _, l := range []int{10, 15, 25, 40} {
		got := mb.computeExpectedBots(l, 10, false)
		if got < prev {
			t.Errorf("E[N] not monotone: l=%d gives %v < %v", l, got, prev)
		}
		prev = got
	}
}

func TestBernoulliCacheStability(t *testing.T) {
	mb := NewBernoulli()
	a := mb.expectedBots(segment{start: 0, length: 25, boundary: false}, 10)
	b := mb.expectedBots(segment{start: 99, length: 25, boundary: false}, 10)
	if a != b {
		t.Errorf("cache miss on identical (length, type): %v vs %v", a, b)
	}
}

// simulateAR draws the randomcut generative model directly: n bots with
// uniform starts on a pool circle, each covering up to θq consecutive
// positions, stopping at valid positions. Returns the distinct queried NXD
// domains.
func simulateAR(pool *dga.Pool, n, thetaQ int, rng *sim.RNG) []string {
	seen := make(map[string]struct{})
	for b := 0; b < n; b++ {
		barrel := (dga.RandomCut{}).Barrel(pool, thetaQ, rng)
		for _, pos := range dga.ExecuteBarrel(pool, barrel) {
			if !pool.ValidAt(pos) {
				seen[pool.Domains[pos]] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	return out
}

func TestBernoulliRecoversPopulationGeneratively(t *testing.T) {
	spec := arSpec(995, 5, 50)
	cfg := defaultCfg(spec)
	pool := spec.Pool.PoolFor(cfg.Seed, 0)
	mb := NewBernoulli()
	const trueN = 24
	var errs []float64
	for trial := 0; trial < 20; trial++ {
		rng := sim.NewRNG(uint64(1000 + trial))
		domains := simulateAR(pool, trueN, spec.ThetaQ, rng)
		obs := make(trace.Observed, 0, len(domains))
		for i, d := range domains {
			obs = append(obs, trace.ObservedRecord{T: sim.Time(i), Domain: d})
		}
		got, err := mb.EstimateEpoch(obs, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, stats.ARE(got, trueN))
	}
	if med := stats.Median(errs); med > 0.35 {
		t.Errorf("MB median ARE = %v over generative AR trials, want ≤ 0.35", med)
	}
}

func TestCoverageRecoversPopulationGeneratively(t *testing.T) {
	spec := arSpec(995, 5, 50)
	cfg := defaultCfg(spec)
	pool := spec.Pool.PoolFor(cfg.Seed, 0)
	ce := NewCoverage()
	const trueN = 24
	var errs []float64
	for trial := 0; trial < 20; trial++ {
		rng := sim.NewRNG(uint64(2000 + trial))
		domains := simulateAR(pool, trueN, spec.ThetaQ, rng)
		obs := make(trace.Observed, 0, len(domains))
		for i, d := range domains {
			obs = append(obs, trace.ObservedRecord{T: sim.Time(i), Domain: d})
		}
		got, err := ce.EstimateEpoch(obs, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, stats.ARE(got, trueN))
	}
	if med := stats.Median(errs); med > 0.35 {
		t.Errorf("MB-C median ARE = %v, want ≤ 0.35", med)
	}
}

func TestBernoulliCacheImmunity(t *testing.T) {
	// Duplicate observations (as longer TTLs would remove, or shorter TTLs
	// would add) must not change MB's estimate: it uses the distinct set.
	spec := arSpec(95, 5, 10)
	cfg := defaultCfg(spec)
	pool := spec.Pool.PoolFor(cfg.Seed, 0)
	domains := simulateAR(pool, 8, spec.ThetaQ, sim.NewRNG(7))
	var once, thrice trace.Observed
	for i, d := range domains {
		once = append(once, trace.ObservedRecord{T: sim.Time(i), Domain: d})
		for rep := 0; rep < 3; rep++ {
			thrice = append(thrice, trace.ObservedRecord{T: sim.Time(i*10 + rep), Domain: d})
		}
	}
	mb := NewBernoulli()
	a, err := mb.EstimateEpoch(once, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mb.EstimateEpoch(thrice, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("MB sensitive to duplicates: %v vs %v", a, b)
	}
}

// --- Window averaging and model selection ---

type constEstimator struct{ v float64 }

func (constEstimator) Name() string { return "const" }
func (c constEstimator) EstimateEpoch(trace.Observed, int, Config) (float64, error) {
	return c.v, nil
}

func TestEstimateWindowAverages(t *testing.T) {
	cfg := defaultCfg(auSpec())
	got, err := EstimateWindow(constEstimator{v: 10}, nil, sim.Window{Start: 0, End: 4 * sim.Day}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("averaged estimate = %v, want 10", got)
	}
	if _, err := EstimateWindow(constEstimator{}, nil, sim.Window{}, cfg); err == nil {
		t.Error("empty window should error")
	}
}

func TestEstimateWindowSplitsEpochs(t *testing.T) {
	// An estimator that reports the number of records it was handed: the
	// window splitter must partition records across epochs.
	counter := estimatorFunc(func(obs trace.Observed, _ int, _ Config) (float64, error) {
		return float64(len(obs)), nil
	})
	obs := trace.Observed{
		{T: sim.Hour, Domain: "a.com"},
		{T: sim.Day + sim.Hour, Domain: "b.com"},
		{T: sim.Day + 2*sim.Hour, Domain: "c.com"},
	}
	cfg := defaultCfg(auSpec())
	got, err := EstimateWindow(counter, obs, sim.Window{Start: 0, End: 2 * sim.Day}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.5 { // (1 + 2) / 2 epochs
		t.Errorf("averaged = %v, want 1.5", got)
	}
}

type estimatorFunc func(trace.Observed, int, Config) (float64, error)

func (estimatorFunc) Name() string { return "func" }
func (f estimatorFunc) EstimateEpoch(o trace.Observed, e int, c Config) (float64, error) {
	return f(o, e, c)
}

func TestForModel(t *testing.T) {
	tests := []struct {
		spec dga.Spec
		want string
	}{
		{dga.Murofet(), "MP"},
		{dga.NewGoZ(), "MB"},
		{dga.ConfickerC(), "MT"},
		{dga.Necurs(), "MT"},
		{dga.Ranbyus(), "MT"}, // permutation barrel
		{dga.Pykspa(), "MP"},  // uniform barrel over a mixture pool
		{dga.PushDo(), "MP"},  // uniform barrel over a sliding window
	}
	for _, tt := range tests {
		if got := ForModel(tt.spec).Name(); got != tt.want {
			t.Errorf("ForModel(%s) = %s, want %s", tt.spec.Name, got, tt.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := defaultCfg(auSpec())
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	bad := cfg
	bad.NegativeTTL = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative TTL should fail validation")
	}
	bad = cfg
	bad.Spec = dga.Spec{}
	if err := bad.Validate(); err == nil {
		t.Error("invalid spec should fail validation")
	}
}
