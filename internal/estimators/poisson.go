package estimators

import (
	"sort"

	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// Poisson is MP, the paper's §IV-C estimator for uniform-barrel DGAs (AU).
//
// Because every AU bot issues the identical query barrel, a bot activating
// within the negative-cache TTL δl of a predecessor is completely absorbed
// by the cache: only the first activation per TTL window is visible at the
// vantage point. MP models activations as a Poisson process, measures the
// inter-TTL gaps Δᵢ between the end of one TTL window and the next visible
// activation, estimates the rate E(λ) = n / ΣΔᵢ, and corrects for the
// hidden activations:
//
//	E(N) = E(λ)·Σ(Δᵢ + δl) = n + n²·δl / ΣΔᵢ     (Equation 1)
//
// where n is the number of visible activations and Δ₁ is measured from the
// start of the observation window.
type Poisson struct {
	clusterer clusterer
}

// NewPoisson builds MP.
func NewPoisson() *Poisson { return &Poisson{} }

// Name implements Estimator.
func (*Poisson) Name() string { return "MP" }

// EstimateEpoch implements Estimator.
func (mp *Poisson) EstimateEpoch(obs trace.Observed, epoch int, cfg Config) (float64, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(obs) == 0 {
		return 0, nil
	}
	windowStart := sim.Time(epoch) * cfg.EpochLen
	clusters := mp.clusterer.clusters(obs, cfg)
	if len(clusters) == 0 {
		return 0, nil
	}
	deltaL := cfg.NegativeTTL
	// Equation 1's own premise: a second activation becoming visible
	// requires the previous one's negative-cache entries to have expired,
	// so two genuine visible activations cannot start within δl of each
	// other. Bursts violating that are partial re-queries of the same wave
	// (staggered per-domain expiry, detector holes) — fold them into the
	// wave rather than letting them shrink ΣΔ towards zero and blow up the
	// n²·δl/ΣΔ correction.
	merged := clusters[:1]
	for _, c := range clusters[1:] {
		last := &merged[len(merged)-1]
		if c.start < last.start+deltaL {
			last.end = c.end
			last.count += c.count
			continue
		}
		merged = append(merged, c)
	}
	clusters = merged
	n := len(clusters)

	var sumGaps sim.Time
	prevTTLEnd := windowStart // Δ₁ counts from the window start
	for i, c := range clusters {
		gap := c.start - prevTTLEnd
		if gap < 0 {
			gap = 0
		}
		sumGaps += gap
		_ = i
		prevTTLEnd = c.start + deltaL
	}
	if sumGaps <= 0 {
		// Every visible activation was back-to-back with a TTL window: the
		// rate is effectively unresolvable upward; report the visible
		// count plus the maximal correction the window admits.
		return float64(n) * (float64(cfg.EpochLen) / float64(deltaL)), nil
	}
	nf := float64(n)
	return nf + nf*nf*float64(deltaL)/float64(sumGaps), nil
}

// cluster is a visible activation: a burst of forwarded lookups.
type cluster struct {
	start sim.Time
	end   sim.Time
	count int
}

// clusterer groups a forwarded-lookup stream into visible activations.
//
// For uniform-barrel DGAs, distinct visible activations are separated by at
// least the negative-cache TTL (everything in between is absorbed by the
// cache), while one activation's lookups all fall within the maximum
// activation duration θq·δi of its first lookup. Clustering therefore
// merges every lookup within the activation-duration window of the current
// cluster's start — robust to internal gaps from D³ misses or partially
// cached sweeps, which would otherwise shatter one activation into many
// bogus clusters and blow up Equation 1's n²/ΣΔ correction. The merge
// window is capped at half the TTL so adjacent TTL waves can never fuse.
type clusterer struct{}

func (clusterer) clusters(obs trace.Observed, cfg Config) []cluster {
	if len(obs) == 0 {
		return nil
	}
	s := make(trace.Observed, len(obs))
	copy(s, obs)
	sort.SliceStable(s, func(i, j int) bool { return s[i].T < s[j].T })

	step := cfg.Spec.QueryInterval
	if step == 0 {
		step = cfg.Spec.MaxJitter
	}
	if step <= 0 {
		step = sim.Second
	}
	mergeWindow := cfg.Spec.MaxDuration()
	if half := cfg.NegativeTTL / 2; cfg.NegativeTTL > 0 && mergeWindow > half {
		mergeWindow = half
	}
	if floor := 2 * step; mergeWindow < floor {
		mergeWindow = floor
	}
	if floor := 2 * cfg.Granularity; mergeWindow < floor {
		mergeWindow = floor
	}

	var out []cluster
	cur := cluster{start: s[0].T, end: s[0].T, count: 1}
	for _, rec := range s[1:] {
		if rec.T-cur.start <= mergeWindow {
			cur.end = rec.T
			cur.count++
			continue
		}
		out = append(out, cur)
		cur = cluster{start: rec.T, end: rec.T, count: 1}
	}
	out = append(out, cur)
	return out
}
