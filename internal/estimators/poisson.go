package estimators

import (
	"sort"
	"sync"

	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// Poisson is MP, the paper's §IV-C estimator for uniform-barrel DGAs (AU).
//
// Because every AU bot issues the identical query barrel, a bot activating
// within the negative-cache TTL δl of a predecessor is completely absorbed
// by the cache: only the first activation per TTL window is visible at the
// vantage point. MP models activations as a Poisson process, measures the
// inter-TTL gaps Δᵢ between the end of one TTL window and the next visible
// activation, estimates the rate E(λ) = n / ΣΔᵢ, and corrects for the
// hidden activations:
//
//	E(N) = E(λ)·Σ(Δᵢ + δl) = n + n²·δl / ΣΔᵢ     (Equation 1)
//
// where n is the number of visible activations and Δ₁ is measured from the
// start of the observation window.
type Poisson struct {
	clusterer clusterer
}

// NewPoisson builds MP.
func NewPoisson() *Poisson { return &Poisson{} }

// Name implements Estimator.
func (*Poisson) Name() string { return "MP" }

// EstimateEpoch implements Estimator.
func (mp *Poisson) EstimateEpoch(obs trace.Observed, epoch int, cfg Config) (float64, error) {
	if !cfg.normalized {
		cfg = cfg.withDefaults()
		if err := cfg.Validate(); err != nil {
			return 0, err
		}
	}
	if len(obs) == 0 {
		return 0, nil
	}
	windowStart := sim.Time(epoch) * cfg.EpochLen
	clusters := mp.clusterer.clusters(obs, cfg)
	if len(clusters) == 0 {
		return 0, nil
	}
	est := poissonEquation1(clusters, windowStart, cfg.NegativeTTL, cfg.EpochLen)
	putClusterScratch(clusters)
	return est, nil
}

// poissonEquation1 evaluates Equation 1 over time-ordered visible clusters.
// It never mutates its input, so the streaming path can hand it a snapshot
// of live state for provisional estimates.
//
// TTL folding happens inline: Equation 1's own premise is that a second
// activation becoming visible requires the previous one's negative-cache
// entries to have expired, so two genuine visible activations cannot start
// within δl of each other. Bursts violating that are partial re-queries of
// the same wave (staggered per-domain expiry, detector holes) — fold them
// into the wave rather than letting them shrink ΣΔ towards zero and blow up
// the n²·δl/ΣΔ correction.
func poissonEquation1(clusters []cluster, windowStart, deltaL, epochLen sim.Time) float64 {
	n := 0
	var sumGaps sim.Time
	prevTTLEnd := windowStart // Δ₁ counts from the window start
	var lastStart sim.Time
	for _, c := range clusters {
		if n > 0 && c.start < lastStart+deltaL {
			continue // folded into the previous visible wave
		}
		gap := c.start - prevTTLEnd
		if gap < 0 {
			gap = 0
		}
		sumGaps += gap
		prevTTLEnd = c.start + deltaL
		lastStart = c.start
		n++
	}
	if sumGaps <= 0 {
		// Every visible activation was back-to-back with a TTL window: the
		// rate is effectively unresolvable upward; report the visible
		// count plus the maximal correction the window admits.
		return float64(n) * (float64(epochLen) / float64(deltaL))
	}
	nf := float64(n)
	return nf + nf*nf*float64(deltaL)/float64(sumGaps)
}

// cluster is a visible activation: a burst of forwarded lookups.
type cluster struct {
	start sim.Time
	end   sim.Time
	count int
}

// clusterer groups a forwarded-lookup stream into visible activations.
//
// For uniform-barrel DGAs, distinct visible activations are separated by at
// least the negative-cache TTL (everything in between is absorbed by the
// cache), while one activation's lookups all fall within the maximum
// activation duration θq·δi of its first lookup. Clustering therefore
// merges every lookup within the activation-duration window of the current
// cluster's start — robust to internal gaps from D³ misses or partially
// cached sweeps, which would otherwise shatter one activation into many
// bogus clusters and blow up Equation 1's n²/ΣΔ correction. The merge
// window is capped at half the TTL so adjacent TTL waves can never fuse.
type clusterer struct{}

// mergeWindowFor derives the clustering merge window from the family spec
// and DNS parameters — shared by the batch clusterer and the incremental
// cluster stream.
func mergeWindowFor(cfg Config) sim.Time {
	step := cfg.Spec.QueryInterval
	if step == 0 {
		step = cfg.Spec.MaxJitter
	}
	if step <= 0 {
		step = sim.Second
	}
	mergeWindow := cfg.Spec.MaxDuration()
	if half := cfg.NegativeTTL / 2; cfg.NegativeTTL > 0 && mergeWindow > half {
		mergeWindow = half
	}
	if floor := 2 * step; mergeWindow < floor {
		mergeWindow = floor
	}
	if floor := 2 * cfg.Granularity; mergeWindow < floor {
		mergeWindow = floor
	}
	return mergeWindow
}

// Pools recycling the clusterer's per-call scratch: the timestamp-sorted
// record copy and the output cluster slice. Before pooling, MP's epoch
// close allocated both per (server, epoch).
var (
	recScratchPool     = sync.Pool{New: func() any { return new([]trace.ObservedRecord) }}
	clusterScratchPool = sync.Pool{New: func() any { return new([]cluster) }}
)

// putClusterScratch returns a cluster slice obtained from clusters() to the
// pool. nil (the empty-observation result) is ignored.
func putClusterScratch(cs []cluster) {
	if cs == nil {
		return
	}
	cs = cs[:0]
	clusterScratchPool.Put(&cs)
}

func (clusterer) clusters(obs trace.Observed, cfg Config) []cluster {
	if len(obs) == 0 {
		return nil
	}
	s := obs
	sorted := true
	for i := 1; i < len(obs); i++ {
		if obs[i].T < obs[i-1].T {
			sorted = false
			break
		}
	}
	// Already-ordered input — every engine-emitted or Sort-normalised trace
	// — skips the copy entirely: clustering only reads timestamps, and a
	// stable sort of a sorted slice is the identity.
	var buf *[]trace.ObservedRecord
	if !sorted {
		buf = recScratchPool.Get().(*[]trace.ObservedRecord)
		if cap(*buf) < len(obs) {
			*buf = make([]trace.ObservedRecord, len(obs))
		}
		*buf = (*buf)[:len(obs)]
		copy(*buf, obs)
		sort.SliceStable(*buf, func(i, j int) bool { return (*buf)[i].T < (*buf)[j].T })
		s = *buf
	}

	mergeWindow := mergeWindowFor(cfg)
	outp := clusterScratchPool.Get().(*[]cluster)
	out := (*outp)[:0]
	cur := cluster{start: s[0].T, end: s[0].T, count: 1}
	for _, rec := range s[1:] {
		if rec.T-cur.start <= mergeWindow {
			cur.end = rec.T
			cur.count++
			continue
		}
		out = append(out, cur)
		cur = cluster{start: rec.T, end: rec.T, count: 1}
	}
	out = append(out, cur)
	if buf != nil {
		// Drop the record copies' string references before pooling.
		clear(*buf)
		recScratchPool.Put(buf)
	}
	// Ownership of the backing array moves to the caller, who hands it back
	// through putClusterScratch; the Get'd box is not re-used (re-pooling it
	// here would alias the returned slice with a future Get).
	*outp = nil
	clusterScratchPool.Put(outp)
	return out
}
