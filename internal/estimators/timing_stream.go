package estimators

import (
	"sort"

	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// StreamCapable is implemented by estimators that can consume one epoch's
// matched lookups incrementally, in non-decreasing timestamp order, while
// holding only bounded state. The streaming landscape engine
// (internal/stream) uses this to avoid retaining an epoch's records for
// such estimators; everything else is re-estimated from a windowed
// micro-batch on epoch close.
type StreamCapable interface {
	Estimator
	// OpenEpoch starts incremental estimation for one (server, epoch)
	// cell. cfg is normalised by the caller once per engine.
	OpenEpoch(epoch int, cfg Config) EpochStream
}

// EpochStream is the per-(server, epoch) incremental state of a
// StreamCapable estimator.
type EpochStream interface {
	// Observe folds one matched lookup in. Records MUST arrive in
	// non-decreasing timestamp order (the engine's reorder buffer
	// guarantees this).
	Observe(rec trace.ObservedRecord)
	// Advance tells the stream that no future record will carry a
	// timestamp below watermark, letting it expire state that can no
	// longer influence the estimate.
	Advance(watermark sim.Time)
	// Estimate returns the estimate over everything observed so far. It
	// is valid mid-epoch (provisional) and after the last record (final).
	Estimate() float64
}

// TimingStream is Algorithm 1 in online form: the batch loop of
// Timing.EstimateEpoch re-expressed as an Observe API over a
// timestamp-ordered stream, with candidate-entry expiry so memory is
// bounded by the number of SIMULTANEOUSLY active candidates rather than
// the epoch's record count.
//
// Equivalence with the batch form: batch MT stable-sorts the epoch's
// records and scans candidates in creation order. Streaming feeds records
// in the same order (the engine emits in non-decreasing T, stable for
// ties), and candidates are created in emission order, so their `first`
// fields — and hence their expiry times first+θq·δi — are non-decreasing.
// An entry expired against the current record's timestamp (heuristic #2:
// first+maxDuration ≤ t) can never absorb that record or any later one,
// so counting it and freeing its domain set changes nothing. The count at
// epoch end therefore equals batch MT exactly for identically ordered
// input; only the ordering of equal-timestamp records (which the batch
// stable sort pins to insertion order) can differ after a mid-window
// shuffle, which is the documented MT tolerance of the batch↔stream
// contract.
type TimingStream struct {
	deltaI      sim.Time
	useModulo   bool
	maxDuration sim.Time

	// active candidates in creation order; `first` is non-decreasing, so
	// expiry always pops a prefix.
	active []*timingEntry
	// expired counts candidates whose absorption window has passed and
	// whose domain sets have been freed.
	expired int
}

// OpenEpoch implements StreamCapable.
func (*Timing) OpenEpoch(_ int, cfg Config) EpochStream {
	cfg = cfg.withDefaults()
	deltaI := cfg.Spec.QueryInterval
	return &TimingStream{
		deltaI:      deltaI,
		useModulo:   deltaI > 0 && (cfg.Granularity == 0 || cfg.Granularity <= deltaI),
		maxDuration: cfg.Spec.MaxDuration(),
	}
}

// Observe implements EpochStream.
func (s *TimingStream) Observe(rec trace.ObservedRecord) {
	// Expire candidates that can no longer absorb rec or anything after
	// it (timestamps are non-decreasing from here on).
	s.Advance(rec.T)
	for _, entry := range s.active {
		// Heuristic #1: domain already attributed to this bot.
		if _, seen := entry.domains[rec.Domain]; seen {
			continue
		}
		// Heuristic #2: beyond the maximum activation duration. Active
		// entries are only pre-expired against rec.T, which uses the
		// same condition, so this re-check is for entries that survived.
		if entry.first+s.maxDuration <= rec.T {
			continue
		}
		// Heuristic #3: offset must be a multiple of δi.
		if s.useModulo && (rec.T-entry.first)%s.deltaI != 0 {
			continue
		}
		entry.domains[rec.Domain] = struct{}{}
		return
	}
	s.active = append(s.active, &timingEntry{
		first:   rec.T,
		domains: map[string]struct{}{rec.Domain: {}},
	})
}

// Advance implements EpochStream: candidates whose absorption window ends
// at or before watermark are folded into the expired count and their
// domain sets freed.
func (s *TimingStream) Advance(watermark sim.Time) {
	n := 0
	for n < len(s.active) && s.active[n].first+s.maxDuration <= watermark {
		s.active[n] = nil // release the entry (and its domain map)
		n++
	}
	if n > 0 {
		s.expired += n
		s.active = s.active[n:]
	}
}

// Estimate implements EpochStream: the candidate count so far.
func (s *TimingStream) Estimate() float64 {
	return float64(s.expired + len(s.active))
}

// ActiveCandidates reports how many candidates still hold domain state —
// the stream's memory footprint, exposed for bounded-memory assertions.
func (s *TimingStream) ActiveCandidates() int { return len(s.active) }

// TimingState is the serializable state of one TimingStream — everything a
// checkpoint must persist to resume incremental MT estimation exactly where
// it stopped. Candidate order is significant (Observe scans candidates in
// creation order), so Active is a slice, not a set; the domain sets inside
// each candidate are order-insensitive and exported sorted for stable
// checkpoint bytes.
type TimingState struct {
	Expired int               `json:"expired"`
	Active  []TimingCandidate `json:"active,omitempty"`
}

// TimingCandidate is one still-absorbing candidate bot.
type TimingCandidate struct {
	First   sim.Time `json:"first"`
	Domains []string `json:"domains"`
}

// ExportState snapshots the stream for checkpointing. The stream remains
// usable; the returned state shares nothing with it.
func (s *TimingStream) ExportState() TimingState {
	st := TimingState{Expired: s.expired}
	if len(s.active) > 0 {
		st.Active = make([]TimingCandidate, len(s.active))
	}
	for i, entry := range s.active {
		domains := make([]string, 0, len(entry.domains))
		for d := range entry.domains {
			domains = append(domains, d)
		}
		sort.Strings(domains)
		st.Active[i] = TimingCandidate{First: entry.first, Domains: domains}
	}
	return st
}

// RestoreState replaces the stream's state with a previously exported one.
// The stream's configuration (δi, max duration) is NOT part of the state —
// it is re-derived from the engine config at OpenEpoch, which checkpoint
// recovery validates via the config fingerprint.
func (s *TimingStream) RestoreState(st TimingState) {
	s.expired = st.Expired
	s.active = s.active[:0]
	for _, cand := range st.Active {
		domains := make(map[string]struct{}, len(cand.Domains))
		for _, d := range cand.Domains {
			domains[d] = struct{}{}
		}
		s.active = append(s.active, &timingEntry{first: cand.First, domains: domains})
	}
}
