package estimators

import (
	"sort"
	"sync"

	"botmeter/internal/sim"
	"botmeter/internal/symtab"
	"botmeter/internal/trace"
)

// timingEntryPool recycles candidate entries (struct + attribution maps)
// across streams and epochs. Per-candidate map allocation was the dominant
// MT allocation site (one map per bot activation per epoch); recycled maps
// keep their buckets, so a steady-state workload allocates no candidate
// state at all. Entries are returned on expiry (Advance) and at Release; the
// maps come back cleared.
var timingEntryPool = sync.Pool{
	New: func() any {
		return &timingEntry{
			domains: make(map[string]struct{}, 8),
			ids:     make(map[symtab.ID]struct{}, 8),
		}
	},
}

func getTimingEntry(first sim.Time) *timingEntry {
	e := timingEntryPool.Get().(*timingEntry)
	e.first = first
	return e
}

func putTimingEntry(e *timingEntry) {
	clear(e.domains)
	clear(e.ids)
	timingEntryPool.Put(e)
}

// StreamCapable is implemented by estimators that can consume one epoch's
// matched lookups incrementally, in non-decreasing timestamp order, while
// holding only bounded state. The streaming landscape engine
// (internal/stream) uses this to avoid retaining an epoch's records for
// such estimators; everything else is re-estimated from a windowed
// micro-batch on epoch close.
type StreamCapable interface {
	Estimator
	// OpenEpoch starts incremental estimation for one (server, epoch)
	// cell. cfg is normalised by the caller once per engine.
	OpenEpoch(epoch int, cfg Config) EpochStream
}

// EpochStream is the per-(server, epoch) incremental state of a
// StreamCapable estimator.
type EpochStream interface {
	// Observe folds one matched lookup in. Records MUST arrive in
	// non-decreasing timestamp order (the engine's reorder buffer
	// guarantees this).
	Observe(rec trace.ObservedRecord)
	// Advance tells the stream that no future record will carry a
	// timestamp below watermark, letting it expire state that can no
	// longer influence the estimate.
	Advance(watermark sim.Time)
	// Estimate returns the estimate over everything observed so far. It
	// is valid mid-epoch (provisional) and after the last record (final).
	Estimate() float64
}

// TimingStream is Algorithm 1 in online form: the batch loop of
// Timing.EstimateEpoch re-expressed as an Observe API over a
// timestamp-ordered stream, with candidate-entry expiry so memory is
// bounded by the number of SIMULTANEOUSLY active candidates rather than
// the epoch's record count.
//
// Equivalence with the batch form: batch MT stable-sorts the epoch's
// records and scans candidates in creation order. Streaming feeds records
// in the same order (the engine emits in non-decreasing T, stable for
// ties), and candidates are created in emission order, so their `first`
// fields — and hence their expiry times first+θq·δi — are non-decreasing.
// An entry expired against the current record's timestamp (heuristic #2:
// first+maxDuration ≤ t) can never absorb that record or any later one,
// so counting it and freeing its domain set changes nothing. The count at
// epoch end therefore equals batch MT exactly for identically ordered
// input; only the ordering of equal-timestamp records (which the batch
// stable sort pins to insertion order) can differ after a mid-window
// shuffle, which is the documented MT tolerance of the batch↔stream
// contract.
type TimingStream struct {
	deltaI      sim.Time
	useModulo   bool
	maxDuration sim.Time

	// tab, when non-nil, puts the stream in ID mode: heuristic #1's
	// domain-membership sets are keyed by interned domain ID (integer
	// hashing) instead of by string. ID ↔ domain is a bijection within one
	// intern table, so the absorption decisions — and hence the candidate
	// count — are identical to string mode. The first record that arrives
	// WITHOUT an ID demotes the whole stream to string mode (sets resolved
	// through tab), so mixed traces degrade gracefully rather than wrongly.
	tab *symtab.Table

	// active candidates in creation order; `first` is non-decreasing, so
	// expiry always pops a prefix.
	active []*timingEntry
	// expired counts candidates whose absorption window has passed and
	// whose domain sets have been freed.
	expired int
}

// OpenEpoch implements StreamCapable.
func (*Timing) OpenEpoch(_ int, cfg Config) EpochStream {
	if !cfg.normalized {
		cfg = cfg.withDefaults()
	}
	deltaI := cfg.Spec.QueryInterval
	s := &TimingStream{
		deltaI:      deltaI,
		useModulo:   deltaI > 0 && (cfg.Granularity == 0 || cfg.Granularity <= deltaI),
		maxDuration: cfg.Spec.MaxDuration(),
	}
	if cfg.Pools != nil {
		// Records carrying an ID are, by the ObservedRecord contract,
		// interned in the analysis pools' table (matching already relies on
		// this), so that table resolves IDs back to strings on demotion and
		// export.
		s.tab = cfg.Pools.Table()
	}
	return s
}

// Observe implements EpochStream.
func (s *TimingStream) Observe(rec trace.ObservedRecord) {
	// Expire candidates that can no longer absorb rec or anything after
	// it (timestamps are non-decreasing from here on).
	s.Advance(rec.T)
	if s.tab != nil {
		if rec.ID == symtab.None {
			s.demote()
		} else {
			for _, entry := range s.active {
				// Heuristic #1: domain already attributed to this bot.
				if _, seen := entry.ids[rec.ID]; seen {
					continue
				}
				// Heuristics #2 and #3 — see the string path below.
				if entry.first+s.maxDuration <= rec.T {
					continue
				}
				if s.useModulo && (rec.T-entry.first)%s.deltaI != 0 {
					continue
				}
				entry.ids[rec.ID] = struct{}{}
				return
			}
			entry := getTimingEntry(rec.T)
			entry.ids[rec.ID] = struct{}{}
			s.active = append(s.active, entry)
			return
		}
	}
	for _, entry := range s.active {
		// Heuristic #1: domain already attributed to this bot.
		if _, seen := entry.domains[rec.Domain]; seen {
			continue
		}
		// Heuristic #2: beyond the maximum activation duration. Active
		// entries are only pre-expired against rec.T, which uses the
		// same condition, so this re-check is for entries that survived.
		if entry.first+s.maxDuration <= rec.T {
			continue
		}
		// Heuristic #3: offset must be a multiple of δi.
		if s.useModulo && (rec.T-entry.first)%s.deltaI != 0 {
			continue
		}
		entry.domains[rec.Domain] = struct{}{}
		return
	}
	entry := getTimingEntry(rec.T)
	entry.domains[rec.Domain] = struct{}{}
	s.active = append(s.active, entry)
}

// demote switches the stream from ID mode to string mode, resolving every
// active candidate's ID set into its string set. Candidate order, `first`
// times and set contents (under the ID ↔ domain bijection) are unchanged, so
// all subsequent absorption decisions match a stream that ran in string mode
// from the start.
func (s *TimingStream) demote() {
	for _, entry := range s.active {
		for id := range entry.ids {
			entry.domains[s.tab.Resolve(id)] = struct{}{}
		}
		clear(entry.ids)
	}
	s.tab = nil
}

// Advance implements EpochStream: candidates whose absorption window ends
// at or before watermark are folded into the expired count and their
// domain sets freed.
func (s *TimingStream) Advance(watermark sim.Time) {
	n := 0
	for n < len(s.active) && s.active[n].first+s.maxDuration <= watermark {
		putTimingEntry(s.active[n]) // recycle the entry and its domain map
		s.active[n] = nil
		n++
	}
	if n > 0 {
		s.expired += n
		s.active = s.active[n:]
	}
}

// Estimate implements EpochStream: the candidate count so far.
func (s *TimingStream) Estimate() float64 {
	return float64(s.expired + len(s.active))
}

// ActiveCandidates reports how many candidates still hold domain state —
// the stream's memory footprint, exposed for bounded-memory assertions.
func (s *TimingStream) ActiveCandidates() int { return len(s.active) }

// Release implements Releasable: it recycles every still-active candidate
// entry. Called after the final Estimate of an epoch (batch MT does this
// internally; the streaming engine calls it at epoch close). The stream must
// not Observe afterwards.
func (s *TimingStream) Release() {
	for i, entry := range s.active {
		putTimingEntry(entry)
		s.active[i] = nil
	}
	s.expired += len(s.active)
	s.active = s.active[:0]
}

// TimingState is the serializable state of one TimingStream — everything a
// checkpoint must persist to resume incremental MT estimation exactly where
// it stopped. Candidate order is significant (Observe scans candidates in
// creation order), so Active is a slice, not a set; the domain sets inside
// each candidate are order-insensitive and exported sorted for stable
// checkpoint bytes.
type TimingState struct {
	Expired int               `json:"expired"`
	Active  []TimingCandidate `json:"active,omitempty"`
}

// TimingCandidate is one still-absorbing candidate bot.
type TimingCandidate struct {
	First   sim.Time `json:"first"`
	Domains []string `json:"domains"`
}

// ExportState snapshots the stream for checkpointing. The stream remains
// usable; the returned state shares nothing with it. An ID-mode stream
// exports the same bytes as a string-mode one: candidate sets are resolved
// to domain strings and sorted, so checkpoint contents are independent of
// which attribution representation the stream happened to be running.
func (s *TimingStream) ExportState() TimingState {
	st := TimingState{Expired: s.expired}
	if len(s.active) > 0 {
		st.Active = make([]TimingCandidate, len(s.active))
	}
	for i, entry := range s.active {
		domains := make([]string, 0, len(entry.domains)+len(entry.ids))
		for d := range entry.domains {
			domains = append(domains, d)
		}
		for id := range entry.ids {
			domains = append(domains, s.tab.Resolve(id))
		}
		sort.Strings(domains)
		st.Active[i] = TimingCandidate{First: entry.first, Domains: domains}
	}
	return st
}

// RestoreState replaces the stream's state with a previously exported one.
// The stream's configuration (δi, max duration) is NOT part of the state —
// it is re-derived from the engine config at OpenEpoch, which checkpoint
// recovery validates via the config fingerprint. Restored candidate sets
// are strings, so the stream continues in string mode regardless of how it
// was opened; estimates are unaffected (the two modes are equivalent) and
// subsequent exports are byte-identical either way.
func (s *TimingStream) RestoreState(st TimingState) {
	for i, entry := range s.active {
		putTimingEntry(entry)
		s.active[i] = nil
	}
	s.tab = nil
	s.expired = st.Expired
	s.active = s.active[:0]
	for _, cand := range st.Active {
		entry := getTimingEntry(cand.First)
		for _, d := range cand.Domains {
			entry.domains[d] = struct{}{}
		}
		s.active = append(s.active, entry)
	}
}
