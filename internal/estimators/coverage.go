package estimators

import (
	"math"

	"botmeter/internal/dga"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// Coverage is a coverage-inversion estimator over the distinct-NXD set: it
// computes, per NXD position x in the pool, the probability p_x that a
// single random bot's activation queries x, giving the expected number of
// distinct observed NXDs under n bots
//
//	E[D | n] = Σ_x (1 − (1 − p_x)ⁿ),
//
// which is strictly increasing in n; the estimate inverts it at the
// observed distinct-NXD count. Like MB it is immune to caching, timestamp
// granularity and activation dynamics.
//
// Supported barrel classes:
//
//   - randomcut (AR): p_x follows the circle geometry — a bot covers x iff
//     its start lies within min(θq, distance-past-the-previous-boundary)
//     predecessors of x. This is MB's engineering fallback and ablation
//     partner.
//   - sampling (AS): p_x is uniform — E[#NXDs drawn before the first
//     registered domain, capped at θq] / pool size. This extends the
//     paper's estimator library to the Conficker.C cell with a set-based
//     model (paper §VII, future direction 1: combining temporal and
//     semantic traits), where the paper itself only evaluates MT.
//
// Like MB, Coverage evaluates per negative-TTL sub-window and sums, so the
// distinct-NXD signal stays unsaturated for large populations.
type Coverage struct{}

// NewCoverage builds the estimator.
func NewCoverage() *Coverage { return &Coverage{} }

// Name implements Estimator.
func (*Coverage) Name() string { return "MB-C" }

// EstimateEpoch implements Estimator.
func (ce *Coverage) EstimateEpoch(obs trace.Observed, epoch int, cfg Config) (float64, error) {
	if !cfg.normalized {
		cfg = cfg.withDefaults()
		if err := cfg.Validate(); err != nil {
			return 0, err
		}
	}
	if len(obs) == 0 {
		return 0, nil
	}
	pool := cfg.poolFor(epoch)
	probs := ce.coverProbabilities(pool, cfg.Spec)
	if len(probs) == 0 {
		return 0, nil
	}

	// Partition the epoch into TTL-aligned buckets of distinct positions,
	// deduplicated through the pooled pair set instead of per-bucket map
	// churn. (Within one pool, domain ↔ position is a bijection, so
	// deduplicating by position is exactly deduplicating by domain — without
	// hashing the string when the record carries an interned ID.)
	numBuckets := ttlBuckets(cfg, true)
	epochStart := sim.Time(epoch) * cfg.EpochLen
	ps := getPairSet()
	defer putPairSet(ps)
	for _, rec := range obs {
		pos, ok := position(pool, rec)
		if !ok || pool.ValidAt(pos) {
			continue
		}
		ps.add(ttlBucketOf(rec.T, epochStart, cfg, numBuckets), pos)
	}
	// Only the per-bucket distinct counts matter; the sorted pair log walks
	// as contiguous bucket groups.
	var total float64
	pairs := ps.sorted()
	for i := 0; i < len(pairs); {
		b := pairBucket(pairs[i])
		j := i
		for j < len(pairs) && pairBucket(pairs[j]) == b {
			j++
		}
		total += invertCoverage(probs, float64(j-i))
		i = j
	}
	return total, nil
}

// coverProbabilities returns p_x for every NXD position under the spec's
// barrel class; nil for unsupported classes.
func (ce *Coverage) coverProbabilities(pool *dga.Pool, spec dga.Spec) []float64 {
	switch spec.Barrel.Class() {
	case dga.RandomCutBarrel:
		return randomCutProbabilities(pool, spec.ThetaQ)
	case dga.SamplingBarrel, dga.PermutationBarrel:
		// A permutation barrel is a sampling barrel with θq = pool size.
		p := samplingCoverProbability(pool.NXCount(), len(pool.ValidPositions), spec.ThetaQ)
		probs := make([]float64, pool.NXCount())
		for i := range probs {
			probs[i] = p
		}
		return probs
	default:
		return nil
	}
}

// randomCutProbabilities returns p_x for the circle geometry: a bot
// starting at a uniformly random position covers x iff its start lies
// within the min(θq, distance-past-the-previous-boundary) predecessors of
// x with no registered domain in between.
func randomCutProbabilities(pool *dga.Pool, thetaQ int) []float64 {
	size := pool.Size()
	if size == 0 {
		return nil
	}
	probs := make([]float64, 0, size)
	hasValid := len(pool.ValidPositions) > 0
	dist := make([]int, size)
	if hasValid {
		// One pass around the circle starting just after a valid position,
		// so wrap-around distances come out right.
		anchor := pool.ValidPositions[len(pool.ValidPositions)-1]
		d := 0
		for i := 1; i <= size; i++ {
			x := (anchor + i) % size
			if pool.ValidAt(x) {
				d = 0
				continue
			}
			d++
			dist[x] = d
		}
	} else {
		for x := range dist {
			dist[x] = size
		}
	}
	for x := 0; x < size; x++ {
		if pool.ValidAt(x) {
			continue
		}
		starts := dist[x]
		if starts > thetaQ {
			starts = thetaQ
		}
		probs = append(probs, float64(starts)/float64(size))
	}
	return probs
}

// samplingCoverProbability returns the probability that one activation of
// a sampling-barrel bot queries a given NXD: E[#NXDs drawn before the
// first registered domain, capped at θq] / θ∅, with the draw-without-
// replacement survival Π (θ∅−j)/(θ∅+θ∃−j).
func samplingCoverProbability(nx, c2, thetaQ int) float64 {
	if nx <= 0 {
		return 0
	}
	if thetaQ > nx {
		thetaQ = nx
	}
	expected := 0.0
	survive := 1.0
	for k := 1; k <= thetaQ; k++ {
		// survive becomes P(first k draws are all NXDs); the bot queries at
		// least k NXDs exactly when that holds, so E[#NXDs] = Σ_k P(≥ k).
		survive *= float64(nx-(k-1)) / float64(nx+c2-(k-1))
		expected += survive
	}
	return expected / float64(nx)
}

// invertCoverage finds n with E[D|n] = target by bisection on the
// continuous relaxation, returning a fractional population.
func invertCoverage(probs []float64, target float64) float64 {
	expected := func(n float64) float64 {
		var e float64
		for _, p := range probs {
			if p <= 0 {
				continue
			}
			e += 1 - math.Pow(1-p, n)
		}
		return e
	}
	maxCover := 0.0
	for _, p := range probs {
		if p > 0 {
			maxCover++
		}
	}
	if target >= maxCover {
		// Saturated: every coverable position seen; return the n at which
		// the expected shortfall drops below one position.
		lo, hi := 1.0, 1e7
		for i := 0; i < 200; i++ {
			mid := (lo + hi) / 2
			if maxCover-expected(mid) > 1 {
				lo = mid
			} else {
				hi = mid
			}
		}
		return hi
	}
	lo, hi := 0.0, 1.0
	for expected(hi) < target && hi < 1e9 {
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if expected(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
