package estimators

import (
	"math"
	"testing"

	"botmeter/internal/dga"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
	"botmeter/internal/trace"
)

func asSpec(nx, c2, thetaQ int) dga.Spec {
	return dga.Spec{
		Name:          "test-AS",
		Pool:          dga.DrainReplenish{NX: nx, C2: c2, Gen: dga.DefaultGenerator},
		Barrel:        dga.Sampling{},
		ThetaQ:        thetaQ,
		QueryInterval: sim.Second,
	}
}

// simulateAS draws the sampling generative model: n bots each sample a θq
// barrel and query until the first registered domain.
func simulateAS(pool *dga.Pool, n, thetaQ int, rng *sim.RNG) []string {
	seen := make(map[string]struct{})
	for b := 0; b < n; b++ {
		barrel := (dga.Sampling{}).Barrel(pool, thetaQ, rng)
		for _, pos := range dga.ExecuteBarrel(pool, barrel) {
			if !pool.ValidAt(pos) {
				seen[pool.Domains[pos]] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	return out
}

func TestSamplingCoverProbability(t *testing.T) {
	// With no registered domains the bot always queries θq distinct NXDs:
	// p = θq/θ∅.
	if got, want := samplingCoverProbability(100, 0, 20), 0.2; math.Abs(got-want) > 1e-12 {
		t.Errorf("no-C2 probability = %v, want %v", got, want)
	}
	// Full-permutation barrel: E[#NXDs before first valid] = θ∅/(θ∃+1).
	if got, want := samplingCoverProbability(99, 1, 99), 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("permutation probability = %v, want %v", got, want)
	}
	if samplingCoverProbability(0, 5, 10) != 0 {
		t.Error("zero NXDs should give 0")
	}
	// θq larger than pool clamps.
	if got := samplingCoverProbability(10, 0, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("clamped probability = %v, want 1", got)
	}
}

func TestCoverageRecoversSamplingPopulation(t *testing.T) {
	spec := asSpec(1995, 5, 100)
	cfg := defaultCfg(spec)
	pool := spec.Pool.PoolFor(cfg.Seed, 0)
	ce := NewCoverage()
	const trueN = 32
	var errs []float64
	for trial := 0; trial < 15; trial++ {
		rng := sim.NewRNG(uint64(3000 + trial))
		domains := simulateAS(pool, trueN, spec.ThetaQ, rng)
		obs := make(trace.Observed, 0, len(domains))
		for i, d := range domains {
			obs = append(obs, trace.ObservedRecord{T: sim.Time(i), Domain: d})
		}
		got, err := ce.EstimateEpoch(obs, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, stats.ARE(got, trueN))
	}
	if med := stats.Median(errs); med > 0.35 {
		t.Errorf("MB-C median ARE on AS = %v, want ≤ 0.35", med)
	}
}

func TestCoverageRecoversPermutationPopulation(t *testing.T) {
	// Beyond the paper's pairing (AP → MT): the coverage model treats a
	// permutation barrel as sampling with θq = pool size.
	spec := dga.Spec{
		Name:          "test-AP",
		Pool:          dga.DrainReplenish{NX: 1022, C2: 2, Gen: dga.DefaultGenerator},
		Barrel:        dga.Permutation{},
		ThetaQ:        1024,
		QueryInterval: sim.Second,
	}
	cfg := defaultCfg(spec)
	pool := spec.Pool.PoolFor(cfg.Seed, 0)
	ce := NewCoverage()
	const trueN = 12
	var errs []float64
	for trial := 0; trial < 15; trial++ {
		rng := sim.NewRNG(uint64(5000 + trial))
		seen := make(map[string]struct{})
		for b := 0; b < trueN; b++ {
			barrel := (dga.Permutation{}).Barrel(pool, spec.ThetaQ, rng)
			for _, pos := range dga.ExecuteBarrel(pool, barrel) {
				if !pool.ValidAt(pos) {
					seen[pool.Domains[pos]] = struct{}{}
				}
			}
		}
		obs := make(trace.Observed, 0, len(seen))
		i := 0
		for d := range seen {
			obs = append(obs, trace.ObservedRecord{T: sim.Time(i), Domain: d})
			i++
		}
		got, err := ce.EstimateEpoch(obs, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, stats.ARE(got, trueN))
	}
	if med := stats.Median(errs); med > 0.5 {
		t.Errorf("MB-C median ARE on AP = %v, want ≤ 0.5", med)
	}
}

func TestCoverageUnsupportedBarrel(t *testing.T) {
	// Uniform barrels have no meaningful coverage inversion; the estimator
	// returns 0 rather than a misleading figure.
	cfg := defaultCfg(auSpec())
	got, err := NewCoverage().EstimateEpoch(trace.Observed{{T: 0, Domain: "x.com"}}, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("uniform barrel coverage estimate = %v, want 0", got)
	}
}

func TestCoverageTTLPartitionSums(t *testing.T) {
	// Observations in two different TTL windows are estimated separately
	// and summed: the same distinct set twice across buckets roughly
	// doubles the estimate.
	spec := arSpec(995, 5, 50)
	cfg := defaultCfg(spec)
	pool := spec.Pool.PoolFor(cfg.Seed, 0)
	domains := simulateAR(pool, 10, spec.ThetaQ, sim.NewRNG(8))
	var oneBucket, twoBuckets trace.Observed
	for i, d := range domains {
		oneBucket = append(oneBucket, trace.ObservedRecord{T: sim.Time(i), Domain: d})
		twoBuckets = append(twoBuckets, trace.ObservedRecord{T: sim.Time(i), Domain: d})
		twoBuckets = append(twoBuckets, trace.ObservedRecord{T: 3*sim.Hour + sim.Time(i), Domain: d})
	}
	ce := NewCoverage()
	a, err := ce.EstimateEpoch(oneBucket, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ce.EstimateEpoch(twoBuckets, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b < 1.8*a || b > 2.2*a {
		t.Errorf("two-bucket estimate %v, want ≈ 2× single-bucket %v", b, a)
	}
}
