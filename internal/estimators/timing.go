package estimators

import (
	"slices"

	"botmeter/internal/sim"
	"botmeter/internal/symtab"
	"botmeter/internal/trace"
)

// Timing is MT, the paper's Algorithm 1: it partitions observed lookups
// into per-bot groups using three temporal heuristics and reports the
// number of groups.
//
//	#1 — a bot never looks up the same NXD twice in one epoch, so a lookup
//	     for a domain already attributed to a candidate bot cannot be
//	     absorbed by it;
//	#2 — an activation lasts at most θq·δi, so a lookup later than that
//	     after a candidate's first lookup belongs to someone else;
//	#3 — lookups within one activation are spaced by exact multiples of δi,
//	     so an offset that is not ≡ 0 (mod δi) indicates a different bot.
//
// Heuristic #3 is only meaningful when the family has a fixed query
// interval AND the vantage point's timestamp granularity is at least as
// fine as δi; otherwise it is skipped (this is exactly why MT collapses on
// the paper's real traces, where granularity is 1 s and δi ≤ 1 s — see
// Table II).
type Timing struct{}

// NewTiming builds MT.
func NewTiming() *Timing { return &Timing{} }

// Name implements Estimator.
func (*Timing) Name() string { return "MT" }

// timingEntry is one candidate bot: its first lookup time and the domains
// attributed to it. While the owning stream runs in ID mode (every record so
// far carried an interned domain ID) attribution lives in ids and domains is
// empty; a string-mode stream uses domains only. Exactly one of the two sets
// is populated at any time.
type timingEntry struct {
	first   sim.Time
	domains map[string]struct{}
	ids     map[symtab.ID]struct{}
}

// EstimateEpoch implements Estimator (Algorithm 1). The batch form is the
// streaming form (TimingStream) fed with the stable-sorted epoch: one
// implementation serves both paths, which is what makes the batch↔stream
// equivalence contract (internal/stream) checkable rather than aspirational.
func (mt *Timing) EstimateEpoch(obs trace.Observed, epoch int, cfg Config) (float64, error) {
	if !cfg.normalized {
		cfg = cfg.withDefaults()
		if err := cfg.Validate(); err != nil {
			return 0, err
		}
	}
	if len(obs) == 0 {
		return 0, nil
	}
	// Epoch slices from the analysis pipeline arrive already time-sorted
	// (windowed views of a sorted trace), so the defensive copy+stable-sort
	// only runs when a caller hands over genuinely unordered records. A
	// stable sort's output is input-determined, so the generic sort is
	// order-identical to the reflect-based sort.SliceStable it replaced.
	s := obs
	if !obs.IsSorted() {
		s = make(trace.Observed, len(obs))
		copy(s, obs)
		slices.SortStableFunc(s, func(a, b trace.ObservedRecord) int {
			switch {
			case a.T < b.T:
				return -1
			case a.T > b.T:
				return 1
			}
			return 0
		})
	}

	stream := mt.OpenEpoch(epoch, cfg)
	for _, rec := range s {
		stream.Observe(rec)
	}
	v := stream.Estimate()
	if r, ok := stream.(Releasable); ok {
		r.Release()
	}
	return v, nil
}
