package estimators

import (
	"sort"

	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// Timing is MT, the paper's Algorithm 1: it partitions observed lookups
// into per-bot groups using three temporal heuristics and reports the
// number of groups.
//
//	#1 — a bot never looks up the same NXD twice in one epoch, so a lookup
//	     for a domain already attributed to a candidate bot cannot be
//	     absorbed by it;
//	#2 — an activation lasts at most θq·δi, so a lookup later than that
//	     after a candidate's first lookup belongs to someone else;
//	#3 — lookups within one activation are spaced by exact multiples of δi,
//	     so an offset that is not ≡ 0 (mod δi) indicates a different bot.
//
// Heuristic #3 is only meaningful when the family has a fixed query
// interval AND the vantage point's timestamp granularity is at least as
// fine as δi; otherwise it is skipped (this is exactly why MT collapses on
// the paper's real traces, where granularity is 1 s and δi ≤ 1 s — see
// Table II).
type Timing struct{}

// NewTiming builds MT.
func NewTiming() *Timing { return &Timing{} }

// Name implements Estimator.
func (*Timing) Name() string { return "MT" }

// timingEntry is one candidate bot: its first lookup time and the domains
// attributed to it.
type timingEntry struct {
	first   sim.Time
	domains map[string]struct{}
}

// EstimateEpoch implements Estimator (Algorithm 1).
func (mt *Timing) EstimateEpoch(obs trace.Observed, _ int, cfg Config) (float64, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(obs) == 0 {
		return 0, nil
	}
	s := make(trace.Observed, len(obs))
	copy(s, obs)
	sort.SliceStable(s, func(i, j int) bool { return s[i].T < s[j].T })

	deltaI := cfg.Spec.QueryInterval
	useModulo := deltaI > 0 && (cfg.Granularity == 0 || cfg.Granularity <= deltaI)
	maxDuration := cfg.Spec.MaxDuration()

	var list []*timingEntry
	for _, rec := range s {
		absorbed := false
		for _, entry := range list {
			// Heuristic #1: domain already attributed to this bot.
			if _, seen := entry.domains[rec.Domain]; seen {
				continue
			}
			// Heuristic #2: beyond the maximum activation duration.
			if entry.first+maxDuration <= rec.T {
				continue
			}
			// Heuristic #3: offset must be a multiple of δi.
			if useModulo && (rec.T-entry.first)%deltaI != 0 {
				continue
			}
			entry.domains[rec.Domain] = struct{}{}
			absorbed = true
			break
		}
		if !absorbed {
			list = append(list, &timingEntry{
				first:   rec.T,
				domains: map[string]struct{}{rec.Domain: {}},
			})
		}
	}
	return float64(len(list)), nil
}
