package estimators

import (
	"sort"

	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// Timing is MT, the paper's Algorithm 1: it partitions observed lookups
// into per-bot groups using three temporal heuristics and reports the
// number of groups.
//
//	#1 — a bot never looks up the same NXD twice in one epoch, so a lookup
//	     for a domain already attributed to a candidate bot cannot be
//	     absorbed by it;
//	#2 — an activation lasts at most θq·δi, so a lookup later than that
//	     after a candidate's first lookup belongs to someone else;
//	#3 — lookups within one activation are spaced by exact multiples of δi,
//	     so an offset that is not ≡ 0 (mod δi) indicates a different bot.
//
// Heuristic #3 is only meaningful when the family has a fixed query
// interval AND the vantage point's timestamp granularity is at least as
// fine as δi; otherwise it is skipped (this is exactly why MT collapses on
// the paper's real traces, where granularity is 1 s and δi ≤ 1 s — see
// Table II).
type Timing struct{}

// NewTiming builds MT.
func NewTiming() *Timing { return &Timing{} }

// Name implements Estimator.
func (*Timing) Name() string { return "MT" }

// timingEntry is one candidate bot: its first lookup time and the domains
// attributed to it.
type timingEntry struct {
	first   sim.Time
	domains map[string]struct{}
}

// EstimateEpoch implements Estimator (Algorithm 1). The batch form is the
// streaming form (TimingStream) fed with the stable-sorted epoch: one
// implementation serves both paths, which is what makes the batch↔stream
// equivalence contract (internal/stream) checkable rather than aspirational.
func (mt *Timing) EstimateEpoch(obs trace.Observed, epoch int, cfg Config) (float64, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(obs) == 0 {
		return 0, nil
	}
	s := make(trace.Observed, len(obs))
	copy(s, obs)
	sort.SliceStable(s, func(i, j int) bool { return s[i].T < s[j].T })

	stream := mt.OpenEpoch(epoch, cfg)
	for _, rec := range s {
		stream.Observe(rec)
	}
	return stream.Estimate(), nil
}
