package estimators

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"botmeter/internal/dga"
	"botmeter/internal/sim"
	"botmeter/internal/symtab"
	"botmeter/internal/trace"
)

// The merge-algebra property suite (DESIGN.md §18): states built by real
// streams over random record partitions must combine associatively,
// commutatively, with the empty state as identity — and MB exactly, under
// ANY partition. Each family runs with and without the symtab ID kernel;
// the two modes must export and merge to identical bytes.

func stateJSON(tb testing.TB, v any) string {
	tb.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		tb.Fatalf("marshal state: %v", err)
	}
	return string(b)
}

// nxdRecords draws n matched NXD lookups (random pool positions, random
// non-decreasing timestamps inside epoch 0) against cfg's pool.
func nxdRecords(tb testing.TB, cfg Config, rng *sim.RNG, n int) trace.Observed {
	tb.Helper()
	pool := cfg.poolFor(0)
	nxd := make([]int, 0, len(pool.Domains))
	for pos := range pool.Domains {
		if !pool.ValidAt(pos) {
			nxd = append(nxd, pos)
		}
	}
	if len(nxd) == 0 {
		tb.Fatal("pool has no NXD positions")
	}
	obs := make(trace.Observed, 0, n)
	t := sim.Time(0)
	for i := 0; i < n; i++ {
		t += sim.Time(rng.Int64N(int64(sim.Minute)))
		obs = append(obs, trace.ObservedRecord{T: t, Domain: pool.Domains[nxd[rng.IntN(len(nxd))]]})
	}
	return obs
}

// mtRecords draws n lookups over a small domain alphabet in non-decreasing
// time order (the EpochStream contract).
func mtRecords(rng *sim.RNG, n int) trace.Observed {
	obs := make(trace.Observed, 0, n)
	t := sim.Time(0)
	for i := 0; i < n; i++ {
		t += sim.Time(rng.Int64N(int64(2 * sim.Second)))
		obs = append(obs, trace.ObservedRecord{T: t, Domain: string(rune('a'+rng.IntN(26))) + ".com"})
	}
	return obs
}

// partition splits obs into k subsequences by random assignment. Each part
// preserves the original (non-decreasing) time order.
func partition(obs trace.Observed, k int, rng *sim.RNG) []trace.Observed {
	parts := make([]trace.Observed, k)
	for _, rec := range obs {
		i := rng.IntN(k)
		parts[i] = append(parts[i], rec)
	}
	return parts
}

func runEpochStream(sc StreamCapable, cfg Config, obs trace.Observed) EpochStream {
	es := sc.OpenEpoch(0, cfg)
	for _, rec := range obs {
		es.Observe(rec)
	}
	return es
}

func mbStateOf(cfg Config, obs trace.Observed) BernoulliState {
	s := runEpochStream(NewBernoulli(), cfg, obs).(*BernoulliStream)
	st := s.ExportState()
	s.Release()
	return st
}

func clusterStateOf(cfg Config, obs trace.Observed) ClusterStreamState {
	return runEpochStream(NewPoisson(), cfg, obs).(*PoissonStream).ExportState()
}

func naiveStateOf(cfg Config, obs trace.Observed) ClusterStreamState {
	return runEpochStream(NewNaive(), cfg, obs).(*NaiveStream).ExportState()
}

func mtStateOf(cfg Config, obs trace.Observed) TimingState {
	s := runEpochStream(NewTiming(), cfg, obs).(*TimingStream)
	st := s.ExportState()
	s.Release()
	return st
}

// withIDs returns cfg in symtab ID mode (pools interned into tab) and a
// copy of obs with every record carrying its interned ID.
func withIDs(cfg Config, tab *symtab.Table, obs trace.Observed) (Config, trace.Observed) {
	cfg.Pools = dga.NewPoolCache(cfg.Spec.Pool, cfg.Seed, tab)
	out := make(trace.Observed, len(obs))
	for i, rec := range obs {
		rec.ID = tab.Intern(rec.Domain)
		out[i] = rec
	}
	return cfg, out
}

// TestMergeBernoulliPartitionExact: MB's pair-set state merged over ANY
// random partition of the records is byte-identical to the state of one
// stream that saw them all — in string mode and in symtab ID mode, whose
// exported states must themselves be byte-identical.
func TestMergeBernoulliPartitionExact(t *testing.T) {
	cfg := defaultCfg(arSpec(180, 20, 25)).withDefaults()
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		obs := nxdRecords(t, cfg, rng, 40+rng.IntN(120))
		full := mbStateOf(cfg, obs)

		k := 2 + rng.IntN(3)
		parts := partition(obs, k, rng)
		merged := BernoulliState{}
		for _, part := range parts {
			merged = merged.Merge(mbStateOf(cfg, part))
		}
		if stateJSON(t, merged) != stateJSON(t, BernoulliState{}.Merge(full)) {
			t.Logf("seed %d: merged partition state != full state", seed)
			return false
		}

		tab := symtab.Get()
		defer tab.Release()
		idCfg, idObs := withIDs(cfg, tab, obs)
		if stateJSON(t, mbStateOf(idCfg, idObs)) != stateJSON(t, full) {
			t.Logf("seed %d: ID-mode export differs from string mode", seed)
			return false
		}
		idParts := partition(idObs, k, sim.NewRNG(seed))
		idMerged := BernoulliState{}
		for _, part := range idParts {
			idMerged = idMerged.Merge(mbStateOf(idCfg, part))
		}
		return stateJSON(t, idMerged) == stateJSON(t, merged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// mergeCase adapts one family's state type to a uniform merge/JSON view so
// the algebra checks below run identically across MB/MP/NC/MT.
type mergeCase struct {
	name   string
	states func(t *testing.T, seed uint64, idMode bool) [3]string // canonical JSON of a, b, c
	merge  func(aJSON, bJSON string) string                       // Merge via the JSON forms
	empty  string
}

func mergeJSONVia[S any](mergeFn func(S, S) S) func(string, string) string {
	return func(aJSON, bJSON string) string {
		var a, b S
		if err := json.Unmarshal([]byte(aJSON), &a); err != nil {
			panic(err)
		}
		if err := json.Unmarshal([]byte(bJSON), &b); err != nil {
			panic(err)
		}
		out, err := json.Marshal(mergeFn(a, b))
		if err != nil {
			panic(err)
		}
		return string(out)
	}
}

func mergeCases() []mergeCase {
	mbCfg := defaultCfg(arSpec(180, 20, 25)).withDefaults()
	mtCfg := defaultCfg(auSpec()).withDefaults()
	threeStates := func(t *testing.T, seed uint64, idMode bool, stateOf func(Config, trace.Observed) string, cfg Config, recs func(*sim.RNG) trace.Observed) [3]string {
		rng := sim.NewRNG(seed)
		obs := recs(rng)
		if idMode {
			tab := symtab.Get()
			defer tab.Release()
			cfg, obs = withIDs(cfg, tab, obs)
			parts := partition(obs, 3, rng)
			return [3]string{stateOf(cfg, parts[0]), stateOf(cfg, parts[1]), stateOf(cfg, parts[2])}
		}
		parts := partition(obs, 3, rng)
		return [3]string{stateOf(cfg, parts[0]), stateOf(cfg, parts[1]), stateOf(cfg, parts[2])}
	}
	return []mergeCase{
		{
			name: "MB",
			states: func(t *testing.T, seed uint64, idMode bool) [3]string {
				return threeStates(t, seed, idMode, func(cfg Config, obs trace.Observed) string {
					return stateJSON(t, mbStateOf(cfg, obs))
				}, mbCfg, func(rng *sim.RNG) trace.Observed { return nxdRecords(t, mbCfg, rng, 60+rng.IntN(60)) })
			},
			merge: mergeJSONVia(BernoulliState.Merge),
			empty: `{}`,
		},
		{
			name: "MP",
			states: func(t *testing.T, seed uint64, idMode bool) [3]string {
				return threeStates(t, seed, idMode, func(cfg Config, obs trace.Observed) string {
					return stateJSON(t, clusterStateOf(cfg, obs))
				}, mtCfg, func(rng *sim.RNG) trace.Observed { return mtRecords(rng, 30+rng.IntN(60)) })
			},
			merge: mergeJSONVia(ClusterStreamState.Merge),
			empty: `{}`,
		},
		{
			name: "NC",
			states: func(t *testing.T, seed uint64, idMode bool) [3]string {
				return threeStates(t, seed, idMode, func(cfg Config, obs trace.Observed) string {
					return stateJSON(t, naiveStateOf(cfg, obs))
				}, mtCfg, func(rng *sim.RNG) trace.Observed { return mtRecords(rng, 30+rng.IntN(60)) })
			},
			merge: mergeJSONVia(ClusterStreamState.Merge),
			empty: `{}`,
		},
		{
			name: "MT",
			states: func(t *testing.T, seed uint64, idMode bool) [3]string {
				return threeStates(t, seed, idMode, func(cfg Config, obs trace.Observed) string {
					return stateJSON(t, mtStateOf(cfg, obs))
				}, mtCfg, func(rng *sim.RNG) trace.Observed { return mtRecords(rng, 30+rng.IntN(60)) })
			},
			merge: mergeJSONVia(TimingState.Merge),
			empty: `{"expired":0}`,
		},
	}
}

// TestMergeAlgebraProperties: for every family, states built from random
// record partitions obey Merge(a, Merge(b, c)) == Merge(Merge(a, b), c) ==
// every permutation's fold, and the empty state is an identity on
// canonicalized states — with and without symtab ID mode.
func TestMergeAlgebraProperties(t *testing.T) {
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, mc := range mergeCases() {
		mc := mc
		for _, idMode := range []bool{false, true} {
			idMode := idMode
			name := mc.name + "/string"
			if idMode {
				name = mc.name + "/id"
			}
			t.Run(name, func(t *testing.T) {
				f := func(seed uint64) bool {
					s := mc.states(t, seed, idMode)
					a, b, c := s[0], s[1], s[2]
					left := mc.merge(a, mc.merge(b, c))
					right := mc.merge(mc.merge(a, b), c)
					if left != right {
						t.Logf("seed %d: associativity broken", seed)
						return false
					}
					for _, p := range perms {
						if got := mc.merge(mc.merge(s[p[0]], s[p[1]]), s[p[2]]); got != left {
							t.Logf("seed %d: permutation %v gave different state", seed, p)
							return false
						}
					}
					// Identity on canonical states: exported states are already
					// canonical, so one empty-merge must be a fixed point.
					canon := mc.merge(mc.empty, a)
					if canon != a || mc.merge(canon, mc.empty) != canon {
						t.Logf("seed %d: empty state is not an identity", seed)
						return false
					}
					return true
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestMergeSelfMerge pins the self-merge contract: MB is idempotent (its
// state is a set), while the multiset families MP/NC/MT double their atoms
// — which is exactly why stream.MergeStates rejects merging two snapshots
// that claim the same vantage rather than relying on state-level checks.
func TestMergeSelfMerge(t *testing.T) {
	rng := sim.NewRNG(7)
	mbCfg := defaultCfg(arSpec(180, 20, 25)).withDefaults()
	mtCfg := defaultCfg(auSpec()).withDefaults()

	mb := mbStateOf(mbCfg, nxdRecords(t, mbCfg, rng, 80))
	if got, want := stateJSON(t, mb.Merge(mb)), stateJSON(t, mb); got != want {
		t.Errorf("MB self-merge not idempotent:\n got %s\nwant %s", got, want)
	}

	obs := mtRecords(rng, 60)
	mp := clusterStateOf(mtCfg, obs)
	if got, want := clusterStateCount(mp.Merge(mp)), 2*clusterStateCount(mp); got != want {
		t.Errorf("MP self-merge cluster count = %d, want doubled %d", got, want)
	}

	mt := mtStateOf(mtCfg, obs)
	doubled := mt.Merge(mt)
	if doubled.Expired != 2*mt.Expired || len(doubled.Active) != 2*len(mt.Active) {
		t.Errorf("MT self-merge = {expired %d, active %d}, want {%d, %d}",
			doubled.Expired, len(doubled.Active), 2*mt.Expired, 2*len(mt.Active))
	}
}

func clusterStateCount(st ClusterStreamState) int {
	n := len(st.Done)
	if st.Cur != nil {
		n++
	}
	return n
}

// TestMergeTimingIDModeMatchesStringMode: merging states exported by
// ID-mode streams is byte-identical to merging the same partitions run in
// string mode — the export already demotes IDs to sorted domain strings,
// so no table translation can leak into the merged bytes.
func TestMergeTimingIDModeMatchesStringMode(t *testing.T) {
	cfg := defaultCfg(auSpec()).withDefaults()
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		obs := mtRecords(rng, 40+rng.IntN(60))
		parts := partition(obs, 2, rng)
		strMerged := mtStateOf(cfg, parts[0]).Merge(mtStateOf(cfg, parts[1]))

		tabA, tabB := symtab.Get(), symtab.Get()
		defer tabA.Release()
		defer tabB.Release()
		// Two DIFFERENT intern tables — the vantage reality — whose ID
		// spaces need not agree.
		cfgA, obsA := withIDs(cfg, tabA, parts[0])
		cfgB, obsB := withIDs(cfg, tabB, parts[1])
		idMerged := mtStateOf(cfgA, obsA).Merge(mtStateOf(cfgB, obsB))
		return stateJSON(t, idMerged) == stateJSON(t, strMerged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
