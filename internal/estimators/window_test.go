package estimators

import (
	"testing"

	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// TestEstimateWindowEpochSlicing pins EstimateWindow's epoch-grid slicing:
// which epochs a window touches, how records are partitioned onto them, and
// how the per-epoch sub-windows are clipped at partial first/last epochs.
// The streaming engine's batch↔stream contract leans on exactly these
// boundary conventions (epochs are half-open, T = k·δe opens epoch k), so
// they are pinned here as a table.
func TestEstimateWindowEpochSlicing(t *testing.T) {
	cfg := defaultCfg(auSpec())
	obs := trace.Observed{
		{T: 0, Domain: "r0.com"},
		{T: 6 * sim.Hour, Domain: "r1.com"},
		{T: sim.Day - 1, Domain: "r2.com"},
		{T: sim.Day, Domain: "r3.com"},
		{T: sim.Day + 6*sim.Hour, Domain: "r4.com"},
		{T: 2*sim.Day - 1, Domain: "r5.com"},
		{T: 2 * sim.Day, Domain: "r6.com"},
	}
	cases := []struct {
		name       string
		w          sim.Window
		wantEpochs []int // epoch indices handed to the estimator, in order
		wantCounts []int // record count per handed epoch
		wantErr    bool
	}{
		{
			name:       "aligned two epochs",
			w:          sim.Window{Start: 0, End: 2 * sim.Day},
			wantEpochs: []int{0, 1},
			wantCounts: []int{3, 3}, // r6 sits at the excluded End instant
		},
		{
			name:       "partial first epoch",
			w:          sim.Window{Start: 6 * sim.Hour, End: 2 * sim.Day},
			wantEpochs: []int{0, 1},
			wantCounts: []int{2, 3}, // r0 clipped; r1 at Start is included (half-open)
		},
		{
			name:       "partial last epoch",
			w:          sim.Window{Start: 0, End: sim.Day + 6*sim.Hour},
			wantEpochs: []int{0, 1},
			wantCounts: []int{3, 1}, // r4 at End is excluded; epoch 1 keeps only r3
		},
		{
			name:       "window inside one epoch",
			w:          sim.Window{Start: 6 * sim.Hour, End: 12 * sim.Hour},
			wantEpochs: []int{0},
			wantCounts: []int{1}, // r1 only
		},
		{
			name:       "offset start epoch indices",
			w:          sim.Window{Start: sim.Day, End: 3 * sim.Day},
			wantEpochs: []int{1, 2},
			wantCounts: []int{3, 1}, // r3..r5 in epoch 1; r6 opens epoch 2
		},
		{
			name:       "trailing empty epoch",
			w:          sim.Window{Start: 0, End: 4 * sim.Day},
			wantEpochs: []int{0, 1, 2, 3},
			wantCounts: []int{3, 3, 1, 0}, // empty epochs still visit the estimator
		},
		{
			name:    "zero-length window",
			w:       sim.Window{Start: sim.Day, End: sim.Day},
			wantErr: true,
		},
		{
			name:    "negative window",
			w:       sim.Window{Start: sim.Day, End: 0},
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var gotEpochs, gotCounts []int
			recorder := estimatorFunc(func(o trace.Observed, ep int, _ Config) (float64, error) {
				gotEpochs = append(gotEpochs, ep)
				gotCounts = append(gotCounts, len(o))
				return float64(len(o)), nil
			})
			avg, err := EstimateWindow(recorder, obs, tc.w, cfg)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got avg %v", avg)
				}
				return
			}
			if err != nil {
				t.Fatalf("EstimateWindow: %v", err)
			}
			if !equalInts(gotEpochs, tc.wantEpochs) {
				t.Errorf("epochs visited: %v, want %v", gotEpochs, tc.wantEpochs)
			}
			if !equalInts(gotCounts, tc.wantCounts) {
				t.Errorf("records per epoch: %v, want %v", gotCounts, tc.wantCounts)
			}
			var sum int
			for _, c := range tc.wantCounts {
				sum += c
			}
			want := float64(sum) / float64(len(tc.wantCounts))
			if avg != want {
				t.Errorf("average = %v, want %v", avg, want)
			}
		})
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
