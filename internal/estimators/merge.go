package estimators

import "sort"

// This file defines the merge algebra on the exported sufficient-statistics
// types (ROADMAP item 1, DESIGN.md §18): the states BernoulliStream,
// PoissonStream/NaiveStream and TimingStream serialize are combinable, so N
// independently-streaming vantage engines can be folded into one landscape
// by internal/stream's MergeStates.
//
// The algebra every Merge obeys (enforced by TestMergeAlgebra*):
//
//   - Associative and commutative: Merge(a, Merge(b, c)) equals
//     Merge(Merge(a, b), c) equals any permutation. Each Merge computes a
//     CANONICAL function of the multiset union of its inputs' atoms —
//     (bucket, position) pairs for MB, activation clusters for MP/NC,
//     candidate entries for MT — so grouping and order cannot matter.
//   - Empty-state identity: merging with a zero state canonicalises the
//     other operand and changes nothing else. States exported by a real
//     stream are already canonical (sorted, deduplicated where the
//     semantics are set-like), so on exported states the identity is exact.
//   - Exactness: MB's state is the distinct (TTL-bucket, pool-position)
//     SET, so the merge of any partition of an epoch's records equals the
//     state of a single stream that saw them all — under ANY partition.
//     MP/NC collapse timestamps into clusters and MT's candidate creation
//     is order-sensitive, so their merges are exact only under
//     server-disjoint partitions (each forwarding server feeds exactly one
//     vantage — the paper's deployment shape), where the same (server,
//     epoch) cell never has two partial states to combine.
//   - Self-merge: MB is idempotent (set union). MP/NC/MT are multiset
//     unions and double their counts under self-merge; rejecting an
//     accidental re-merge of the same vantage snapshot is the engine
//     layer's job (stream.MergeStates' vantage identity check).
//
// Symtab IDs never appear in any of these states (the PR 5 contract:
// BernoulliState holds pool positions, TimingState resolves ID-mode
// candidate sets to sorted domain strings at export), so merging states
// from processes with different intern tables needs no ID translation —
// the string keys ARE the demoted, table-independent form.

// Merge returns the canonical union of two MB pair sets: the distinct
// (TTL-bucket, pool-position) pairs of both states, sorted and regrouped
// per bucket. Exact under any record partition and idempotent (a ∪ a = a).
// The result shares no memory with either input.
func (a BernoulliState) Merge(b BernoulliState) BernoulliState {
	type pair struct{ bucket, pos int }
	pairs := make([]pair, 0, pairCount(a)+pairCount(b))
	for _, st := range []BernoulliState{a, b} {
		for _, bk := range st.Buckets {
			for _, pos := range bk.Positions {
				pairs = append(pairs, pair{bk.Bucket, pos})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].bucket != pairs[j].bucket {
			return pairs[i].bucket < pairs[j].bucket
		}
		return pairs[i].pos < pairs[j].pos
	})
	out := BernoulliState{}
	for i := 0; i < len(pairs); i++ {
		if i > 0 && pairs[i] == pairs[i-1] {
			continue // set semantics: duplicates collapse
		}
		n := len(out.Buckets)
		if n == 0 || out.Buckets[n-1].Bucket != pairs[i].bucket {
			out.Buckets = append(out.Buckets, BernoulliBucket{Bucket: pairs[i].bucket})
			n++
		}
		out.Buckets[n-1].Positions = append(out.Buckets[n-1].Positions, pairs[i].pos)
	}
	return out
}

func pairCount(st BernoulliState) int {
	n := 0
	for _, bk := range st.Buckets {
		n += len(bk.Positions)
	}
	return n
}

// Merge returns the canonical union of two cluster states: the multiset of
// atomic activation clusters of both, sorted by (start, end, count). The
// greatest cluster becomes Cur, the rest Done — the shape restoreState and
// Equation 1 expect (clusters in time order).
//
// Clusters are deliberately NOT re-coalesced across states: threshold
// coalescing is not associative (with merge window 10, pairwise-merging
// clusters at t=0, 8, 12 yields (0..12) or {(0..8), (12)} depending on
// grouping), whereas the sorted multiset union is a canonical function of
// the inputs' atoms. Under server-disjoint vantage partitions no two
// inputs ever hold clusters for the same (server, epoch) cell, so the
// question never arises in an exact deployment; under overlap the merged
// state keeps every observed activation, erring toward over-counting
// visible activity rather than silently fusing distinct activations.
func (a ClusterStreamState) Merge(b ClusterStreamState) ClusterStreamState {
	clusters := make([]ClusterState, 0, clusterCount(a)+clusterCount(b))
	for _, st := range []ClusterStreamState{a, b} {
		clusters = append(clusters, st.Done...)
		if st.Cur != nil {
			clusters = append(clusters, *st.Cur)
		}
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].Start != clusters[j].Start {
			return clusters[i].Start < clusters[j].Start
		}
		if clusters[i].End != clusters[j].End {
			return clusters[i].End < clusters[j].End
		}
		return clusters[i].Count < clusters[j].Count
	})
	out := ClusterStreamState{}
	if n := len(clusters); n > 0 {
		cur := clusters[n-1]
		out.Cur = &cur
		if n > 1 {
			out.Done = append([]ClusterState(nil), clusters[:n-1]...)
		}
	}
	return out
}

func clusterCount(st ClusterStreamState) int {
	n := len(st.Done)
	if st.Cur != nil {
		n++
	}
	return n
}

// Merge returns the canonical union of two MT candidate states: expired
// counts sum, and the still-active candidates of both are combined sorted
// by (first-lookup time, then domain set lexicographically) with each
// candidate's domain set re-sorted. A real stream creates candidates in
// non-decreasing `first` order, so the canonical order preserves the
// expiry-is-a-prefix invariant Advance relies on; the domain-set
// tie-break pins a total order for byte-stable serialization.
func (a TimingState) Merge(b TimingState) TimingState {
	out := TimingState{Expired: a.Expired + b.Expired}
	if n := len(a.Active) + len(b.Active); n > 0 {
		out.Active = make([]TimingCandidate, 0, n)
	}
	for _, st := range []TimingState{a, b} {
		for _, cand := range st.Active {
			domains := append([]string(nil), cand.Domains...)
			sort.Strings(domains)
			out.Active = append(out.Active, TimingCandidate{First: cand.First, Domains: domains})
		}
	}
	sort.Slice(out.Active, func(i, j int) bool {
		ci, cj := out.Active[i], out.Active[j]
		if ci.First != cj.First {
			return ci.First < cj.First
		}
		for k := 0; k < len(ci.Domains) && k < len(cj.Domains); k++ {
			if ci.Domains[k] != cj.Domains[k] {
				return ci.Domains[k] < cj.Domains[k]
			}
		}
		return len(ci.Domains) < len(cj.Domains)
	})
	return out
}
