package estimators

import (
	"reflect"
	"testing"

	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// streamOf builds a fresh TimingStream for cfg.
func streamOf(cfg Config) *TimingStream {
	return NewTiming().OpenEpoch(0, cfg).(*TimingStream)
}

// TestTimingStreamMatchesBatch: feeding timestamp-ordered records through
// the incremental form must reproduce the batch estimate exactly.
func TestTimingStreamMatchesBatch(t *testing.T) {
	spec := auSpec()
	spec.ThetaQ = 4
	cfg := defaultCfg(spec)
	obs := trace.Observed{
		{T: 0, Domain: "a.com"},
		{T: 250, Domain: "a.com"},
		{T: 500, Domain: "b.com"},
		{T: 750, Domain: "b.com"},
		{T: 1000, Domain: "c.com"},
		// A third bot well past the first two's absorption windows.
		{T: 10_000, Domain: "a.com"},
		{T: 10_500, Domain: "b.com"},
	}
	want, err := NewTiming().EstimateEpoch(obs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := streamOf(cfg)
	for _, rec := range obs {
		s.Observe(rec)
	}
	if got := s.Estimate(); got != want {
		t.Errorf("stream estimate = %v, batch = %v", got, want)
	}
}

// TestTimingStreamAdvanceExpires: candidates past first+θq·δi are folded
// into the expired count and their domain sets freed, so ActiveCandidates
// tracks only the simultaneously-live window.
func TestTimingStreamAdvanceExpires(t *testing.T) {
	spec := auSpec()
	spec.ThetaQ = 4 // max duration 2 s
	s := streamOf(defaultCfg(spec))
	s.Observe(trace.ObservedRecord{T: 0, Domain: "a.com"})
	s.Observe(trace.ObservedRecord{T: 500, Domain: "b.com"})
	if got := s.ActiveCandidates(); got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}
	s.Advance(10 * sim.Second)
	if got := s.ActiveCandidates(); got != 0 {
		t.Errorf("active after expiry = %d, want 0", got)
	}
	if got := s.Estimate(); got != 1 {
		t.Errorf("estimate after expiry = %v, want 1 (expired candidates still count)", got)
	}
}

// TestTimingStreamExportRestore: an exported state restored into a fresh
// stream must continue exactly like the original — same estimates, same
// memory accounting — and the export must share nothing with the live
// stream (mutating the original must not change the snapshot).
func TestTimingStreamExportRestore(t *testing.T) {
	spec := auSpec()
	spec.ThetaQ = 4
	cfg := defaultCfg(spec)
	head := trace.Observed{
		{T: 0, Domain: "a.com"},
		{T: 250, Domain: "a.com"},
		{T: 500, Domain: "b.com"},
		{T: 10_000, Domain: "c.com"}, // expires the first two candidates
	}
	tail := trace.Observed{
		{T: 10_500, Domain: "d.com"},
		{T: 10_750, Domain: "d.com"},
		{T: 11_000, Domain: "e.com"},
	}
	orig := streamOf(cfg)
	for _, rec := range head {
		orig.Observe(rec)
	}
	st := orig.ExportState()
	if st.Expired != 2 || len(st.Active) != 1 {
		t.Fatalf("exported state = %+v, want 2 expired / 1 active", st)
	}
	// Aliasing check: the export is a deep copy.
	orig.Observe(trace.ObservedRecord{T: 10_100, Domain: "x.com"})
	if reflect.DeepEqual(st, orig.ExportState()) {
		t.Fatal("export should have diverged from the mutated stream")
	}
	if got := st.Active[0].Domains; len(got) != 1 || got[0] != "c.com" {
		t.Fatalf("snapshot mutated by later Observe: %v", got)
	}

	// Fresh run over head for a clean reference, then a restored twin.
	ref := streamOf(cfg)
	for _, rec := range head {
		ref.Observe(rec)
	}
	twin := streamOf(cfg)
	twin.RestoreState(st)
	if twin.Estimate() != ref.Estimate() || twin.ActiveCandidates() != ref.ActiveCandidates() {
		t.Fatalf("restored stream diverges immediately: est %v vs %v, active %d vs %d",
			twin.Estimate(), ref.Estimate(), twin.ActiveCandidates(), ref.ActiveCandidates())
	}
	for _, rec := range tail {
		ref.Observe(rec)
		twin.Observe(rec)
	}
	if twin.Estimate() != ref.Estimate() {
		t.Errorf("restored stream final estimate = %v, reference = %v", twin.Estimate(), ref.Estimate())
	}
	if !reflect.DeepEqual(twin.ExportState(), ref.ExportState()) {
		t.Errorf("restored stream state diverged:\n twin %+v\n ref  %+v", twin.ExportState(), ref.ExportState())
	}
}

// TestTimingStreamExportEmpty: a virgin stream exports the zero state and
// restoring it into a used stream resets it.
func TestTimingStreamExportEmpty(t *testing.T) {
	cfg := defaultCfg(auSpec())
	empty := streamOf(cfg).ExportState()
	if empty.Expired != 0 || empty.Active != nil {
		t.Fatalf("zero state = %+v", empty)
	}
	used := streamOf(cfg)
	used.Observe(trace.ObservedRecord{T: 0, Domain: "a.com"})
	used.RestoreState(empty)
	if used.Estimate() != 0 || used.ActiveCandidates() != 0 {
		t.Errorf("restore of the zero state did not reset: est %v, active %d",
			used.Estimate(), used.ActiveCandidates())
	}
}
