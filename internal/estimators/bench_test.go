package estimators

import (
	"fmt"
	"testing"

	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

func syntheticObservations(n int, spacing sim.Time) trace.Observed {
	obs := make(trace.Observed, 0, n)
	for i := 0; i < n; i++ {
		obs = append(obs, trace.ObservedRecord{
			T:      sim.Time(i) * spacing,
			Domain: fmt.Sprintf("bench-%05d.com", i%500),
		})
	}
	return obs
}

func BenchmarkTimingEstimator(b *testing.B) {
	cfg := defaultCfg(auSpec())
	obs := syntheticObservations(2000, 500*sim.Millisecond)
	mt := NewTiming()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mt.EstimateEpoch(obs, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoissonEstimator(b *testing.B) {
	cfg := defaultCfg(auSpec())
	obs := syntheticObservations(5000, sim.Minute/4)
	mp := NewPoisson()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mp.EstimateEpoch(obs, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBernoulliEstimator(b *testing.B) {
	spec := arSpec(9995, 5, 500)
	cfg := defaultCfg(spec)
	pool := spec.Pool.PoolFor(cfg.Seed, 0)
	domains := simulateAR(pool, 64, spec.ThetaQ, sim.NewRNG(1))
	obs := make(trace.Observed, 0, len(domains))
	for i, d := range domains {
		obs = append(obs, trace.ObservedRecord{T: sim.Time(i) * sim.Minute / 4, Domain: d})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh instance each iteration: measure uncached analysis.
		mb := NewBernoulli()
		if _, err := mb.EstimateEpoch(obs, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBernoulliEstimatorCached(b *testing.B) {
	spec := arSpec(9995, 5, 500)
	cfg := defaultCfg(spec)
	pool := spec.Pool.PoolFor(cfg.Seed, 0)
	domains := simulateAR(pool, 64, spec.ThetaQ, sim.NewRNG(1))
	obs := make(trace.Observed, 0, len(domains))
	for i, d := range domains {
		obs = append(obs, trace.ObservedRecord{T: sim.Time(i) * sim.Minute / 4, Domain: d})
	}
	mb := NewBernoulli()
	if _, err := mb.EstimateEpoch(obs, 0, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mb.EstimateEpoch(obs, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverageEstimator(b *testing.B) {
	spec := arSpec(9995, 5, 500)
	cfg := defaultCfg(spec)
	pool := spec.Pool.PoolFor(cfg.Seed, 0)
	domains := simulateAR(pool, 64, spec.ThetaQ, sim.NewRNG(1))
	obs := make(trace.Observed, 0, len(domains))
	for i, d := range domains {
		obs = append(obs, trace.ObservedRecord{T: sim.Time(i) * sim.Minute / 4, Domain: d})
	}
	ce := NewCoverage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ce.EstimateEpoch(obs, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGapProbabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if g := gapProbabilities(1000, 500); g == nil {
			b.Fatal("degenerate")
		}
	}
}
