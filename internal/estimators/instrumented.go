package estimators

import (
	"time"

	"botmeter/internal/obs"
	"botmeter/internal/trace"
)

// Instrumented wraps an estimator so every EstimateEpoch call is recorded
// as a stage named "estimate:<Name>" on the given StageSet — the timers
// behind `botmeter -verbose` and `benchgen -timings`. A nil stage set
// returns e unchanged, so uninstrumented pipelines pay nothing.
//
// Only wall time is recorded per call: estimator calls run concurrently
// across servers (core.Analyze's worker pool) and per-call
// runtime.ReadMemStats deltas would both misattribute allocations and
// serialise the workers.
func Instrumented(e Estimator, stages *obs.StageSet) Estimator {
	if stages == nil || e == nil {
		return e
	}
	w := &instrumented{inner: e, stages: stages}
	if sc, ok := e.(StreamCapable); ok {
		// Preserve the streaming capability: the engine type-asserts the
		// estimator it is handed, and a wrapper hiding OpenEpoch would
		// silently demote an incremental estimator to micro-batch.
		return &instrumentedStream{instrumented: *w, sc: sc}
	}
	return w
}

type instrumented struct {
	inner  Estimator
	stages *obs.StageSet
}

// instrumentedStream additionally forwards OpenEpoch, so wrapping a
// StreamCapable estimator keeps it StreamCapable. The per-record Observe
// path is deliberately not timed — a timer per record would dwarf the work
// being measured.
type instrumentedStream struct {
	instrumented
	sc StreamCapable
}

// OpenEpoch implements StreamCapable.
func (i *instrumentedStream) OpenEpoch(epoch int, cfg Config) EpochStream {
	return i.sc.OpenEpoch(epoch, cfg)
}

// Name implements Estimator, delegating to the wrapped estimator so model
// selection and reporting are unchanged.
func (i *instrumented) Name() string { return i.inner.Name() }

// EstimateEpoch implements Estimator.
func (i *instrumented) EstimateEpoch(obsData trace.Observed, epoch int, cfg Config) (float64, error) {
	t0 := time.Now()
	est, err := i.inner.EstimateEpoch(obsData, epoch, cfg)
	i.stages.Observe("estimate:"+i.inner.Name(), time.Since(t0), 0)
	return est, err
}
