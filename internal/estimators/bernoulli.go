package estimators

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"botmeter/internal/dga"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
	"botmeter/internal/trace"
)

// Bernoulli is MB, the paper's §IV-D estimator for randomcut-barrel DGAs
// (AR). It relies only on the SET of distinct NXDs observed in an epoch —
// never on timing — which makes it immune to caching (the first lookup of
// each distinct NXD always reaches the vantage point) and to timestamp
// granularity.
//
// The observed NXDs decompose into segments of consecutive pool positions.
// Per segment of length l, Theorem 1 gives the expected number of covering
// bots
//
//	E(N_L) = Σₙ n Σ_{l̃=ll}^{lu} h(l̃, n),   h(l̃, n) = Σ_m f(l̃,n,m)·g(l̃,m)
//
// with ll = l−θq+1, lu = ll for m-segments and l for b-segments.
//
// Numerical strategy: the paper's f(l̃,n,m) = m!/l̃ⁿ·C(l̃,m)·(S(n,m) −
// l̃·S(n−1,m)) is, term for term, the increment Pₙ(m) − Pₙ₋₁(m) of the
// classical occupancy distribution Pₙ(m) = P(n uniform draws over l̃ bins
// occupy exactly m bins) — the identity Pₙ(m) = C(l̃,m)·m!·S(n,m)/l̃ⁿ. We
// therefore evaluate h through the occupancy recurrence
//
//	Pₙ(m) = Pₙ₋₁(m)·m/l̃ + Pₙ₋₁(m−1)·(l̃−m+1)/l̃
//
// entirely in [0,1]-range float64, instead of multiplying astronomically
// large Stirling numbers and binomials. (TestOccupancyMatchesStirling
// cross-validates the two forms.) Since Σₙ h(l̃,n) = g(l̃,l̃) = 1, h is a
// probability distribution over n for each l̃; for b-segments, whose lu >
// ll, we average E(N) over the admissible l̃ (sub-sampled to at most
// maxLTildeSamples grid points — an ablation bench quantifies the effect).
//
// When the closed form degenerates (pathological segment shapes produce
// g outside [0,1] beyond tolerance), MB falls back to the coverage-
// inversion estimator for the affected segment.
type Bernoulli struct {
	mu        sync.Mutex
	viewCache map[viewKey]*circleView

	// work counts the (bucket, position) pairs processed by segment
	// pipeline runs — the O(changed) cost driver of an epoch close. It is
	// what the large-pool/sparse-activity test asserts scales with observed
	// activity, not pool size.
	work atomic.Uint64

	// maxN bounds the n summation (the distribution has geometric tails;
	// the bound is a safety net, not a tuning knob).
	maxN int
	// maxLTildeSamples bounds the l̃ grid for b-segments.
	maxLTildeSamples int
	// DisableTTLPartition turns off the per-TTL-window evaluation (used by
	// the ablation bench; see below). Production runs leave it false.
	DisableTTLPartition bool
	// DisableDetectionAwareness makes MB skip the effective-θq correction
	// under an imperfect D³ front end. Segments are still built on the
	// detected sub-circle (splitting them at every undetected position
	// would shatter one sweep into hundreds of fragments), but sweep
	// lengths — measured in detected positions, hence shrunk by the
	// coverage — are compared against the raw θq, so the estimator
	// undercounts progressively as the detection window narrows. This is
	// the gradual degradation the paper reports for its MB in Figure 6(e);
	// the default (false) additionally rescales θq by the realised
	// coverage, which removes the bias.
	DisableDetectionAwareness bool
	// GapTolerance lets segments stride over up to this many consecutive
	// unobserved positions, making MB robust to records lost AT THE
	// VANTAGE POINT (collector drops) — losses the estimator, unlike D³
	// misses, cannot enumerate. 0 (default) is the paper's strict
	// adjacency; 2 recovers accuracy under double-digit drop rates (see
	// the missing-observations extension experiment).
	GapTolerance int
	// AdaptiveGapTolerance sizes the tolerance from the data: a probe pass
	// measures the stridden-hole fraction r̂ (the implied record-loss
	// rate), and the final pass uses the smallest G with θq·r̂^(G+1) < ½ —
	// under half an expected false split per sweep. Striding over a true
	// inter-bot gap is benign: the merged run's length still implies the
	// right number of covering bots, so aggressive tolerance trades a tiny
	// length overcount for immunity to record loss.
	AdaptiveGapTolerance bool
}

// segKey keys the process-global expected-bots cache. The numerical bounds
// are part of the key so instances with non-default bounds (ablations)
// never alias default-bound entries.
type segKey struct {
	length     int
	thetaQ     int
	boundary   bool
	maxN       int
	maxSamples int
}

// segExpCache memoises computeExpectedBots across every Bernoulli instance:
// the value is a pure function of its key, so sharing it across servers,
// trials and stream shards is sound — a segment length evaluated for one
// trial is a cache hit for every later one. (Concurrent misses may compute
// the value twice; both writers store the identical float64.)
var segExpCache sync.Map // segKey -> float64

type viewKey struct {
	seed     uint64
	epoch    int
	aware    bool
	missRate float64
	detSeed  uint64
}

// NewBernoulli builds MB with default numerical bounds.
func NewBernoulli() *Bernoulli {
	return &Bernoulli{
		viewCache:        make(map[viewKey]*circleView),
		maxN:             4096,
		maxLTildeSamples: 16,
	}
}

// SegmentWork reports the cumulative number of (bucket, position) pairs the
// segment pipeline has processed — the observable behind the O(changed)
// epoch-close assertion.
func (mb *Bernoulli) SegmentWork() uint64 { return mb.work.Load() }

// Name implements Estimator. The paper-faithful detection-unaware variant
// reports as "MB*" so evaluation tables can show both.
func (mb *Bernoulli) Name() string {
	name := "MB"
	if mb.DisableDetectionAwareness {
		name = "MB*"
	}
	if mb.AdaptiveGapTolerance {
		return name + "+ga"
	}
	if mb.GapTolerance > 0 {
		name = fmt.Sprintf("%s+g%d", name, mb.GapTolerance)
	}
	return name
}

// EstimateEpoch implements Estimator.
//
// Within an epoch, lookups are evaluated per negative-TTL sub-window and
// the per-window expectations are summed. Activations are short (θq·δi ≪
// δl) and occur once per bot per epoch, so each bot's sweep lands in one
// sub-window (straddlers are re-joined by the continuation merge below);
// meanwhile the circle's coverage *within* one sub-window stays far from
// saturation even for large populations, which keeps Theorem 1 informative
// — summing sub-window estimates is what lets MB track populations whose
// full-epoch footprint covers the entire pool.
func (mb *Bernoulli) EstimateEpoch(obs trace.Observed, epoch int, cfg Config) (float64, error) {
	if !cfg.normalized {
		cfg = cfg.withDefaults()
		if err := cfg.Validate(); err != nil {
			return 0, err
		}
	}
	if len(obs) == 0 {
		return 0, nil
	}
	pool := cfg.poolFor(epoch)
	view, thetaQ := mb.viewFor(pool, epoch, cfg)
	if view.size() == 0 {
		return 0, nil
	}

	// Partition the epoch's records into TTL-aligned (bucket, position)
	// pairs — the same sufficient statistic the streaming path accumulates
	// on ingest, so batch and stream run the identical kernel below.
	numBuckets := ttlBuckets(cfg, !mb.DisableTTLPartition)
	epochStart := sim.Time(epoch) * cfg.EpochLen
	ps := getPairSet()
	defer putPairSet(ps)
	for _, rec := range obs {
		pos, ok := position(pool, rec)
		if !ok || pool.ValidAt(pos) {
			continue
		}
		ps.add(ttlBucketOf(rec.T, epochStart, cfg, numBuckets), pos)
	}
	return mb.estimatePairs(view, ps.sorted(), thetaQ), nil
}

// estimatePairs runs the segment pipeline over the sorted pair log — the
// shared back half of the batch and streaming paths.
func (mb *Bernoulli) estimatePairs(view *circleView, pairs []uint64, thetaQ int) float64 {
	gapTol := mb.GapTolerance
	if mb.AdaptiveGapTolerance {
		gapTol = mb.adaptTolerance(view, pairs, thetaQ)
	}
	total, _, _ := mb.sumSegments(view, pairs, thetaQ, gapTol)
	return total
}

// sumSegments runs the bucket pipeline at a given gap tolerance and
// returns the total expectation plus the covered-length and distinct-
// position tallies the adaptive mode needs. pairs is the sorted (bucket,
// position) log: bucket-major ascending, positions ascending inside each
// bucket. Cost is O(len(pairs)) set-up plus segment evaluation — never a
// function of the pool size — which is what makes watermark-driven epoch
// close O(changed positions).
func (mb *Bernoulli) sumSegments(view *circleView, pairs []uint64, thetaQ, gapTol int) (total float64, covered, distinct int) {
	mb.work.Add(uint64(len(pairs)))
	circle := view.size()
	sc := getSegScratch()
	defer putSegScratch(sc)
	sc.ensureBits(circle)
	pending := make(map[int]segment)      // keyed by continuation (end) index
	counted := make(map[segment]struct{}) // segments already attributed this epoch
	finalize := func(s segment) {
		// A segment recurring with the exact same extent later in the
		// epoch is a re-activation replay: a persistent bot retrying the
		// same barrel re-forwards precisely its original run once the
		// negative TTL lapses, whereas an unrelated bot reproducing both
		// endpoints exactly is a ~1/pool² coincidence. Count each extent
		// once per epoch.
		if _, dup := counted[s]; dup {
			return
		}
		counted[s] = struct{}{}
		total += mb.expectedBots(s, thetaQ)
	}
	// Finalize in deterministic (sorted-key) order: float addition is not
	// associative, so map-order accumulation would perturb the last ulp of
	// the total from run to run and break the engine's byte-identical
	// replay guarantees.
	flush := func(m map[int]segment) {
		keys := make([]int, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			finalize(m[k])
		}
	}
	prevBucket := -1
	for i := 0; i < len(pairs); {
		b := pairBucket(pairs[i])
		j := i
		for j < len(pairs) && pairBucket(pairs[j]) == b {
			j++
		}
		group := pairs[i:j]
		i = j
		distinct += len(group)
		// An empty bucket between groups flushes the pending continuations
		// (nothing can straddle it), exactly as the historical dense loop
		// did by iterating every bucket index.
		if b > prevBucket+1 && len(pending) > 0 {
			flush(pending)
			clear(pending)
		}
		prevBucket = b
		// Contract the group's pool positions onto the circle. Positions
		// ascend within the group and the contraction is monotone, so the
		// contracted indices come out sorted — no per-bucket sort.
		sc.idxs = sc.idxs[:0]
		for _, key := range group {
			if ci, ok := view.indexOf(pairPos(key)); ok {
				sc.idxs = append(sc.idxs, int32(ci))
				sc.bits[ci>>6] |= 1 << (uint(ci) & 63)
			}
		}
		segs := extractSegmentsSorted(view, sc.idxs, gapTol, sc.bits, sc.segs[:0])
		sc.segs = segs
		sc.clearBits()
		next := make(map[int]segment, len(segs))
		for _, s := range segs {
			covered += s.length
			// A segment starting exactly where a previous bucket's
			// non-boundary segment ended is the same activation split by
			// the bucket edge: re-join it.
			if prev, ok := pending[s.start]; ok && !prev.boundary {
				delete(pending, s.start)
				s = segment{start: prev.start, length: prev.length + s.length, boundary: s.boundary}
			}
			next[s.end(circle)] = s
		}
		flush(pending)
		pending = next
	}
	flush(pending)
	return total, covered, distinct
}

// adaptTolerance probes at G=2, derives the implied record-loss rate from
// the stridden-hole fraction, and returns the smallest G with under half
// an expected false split per θq-sweep.
func (mb *Bernoulli) adaptTolerance(view *circleView, pairs []uint64, thetaQ int) int {
	const probeG = 2
	_, covered, distinct := mb.sumSegments(view, pairs, thetaQ, probeG)
	if covered <= 0 || distinct >= covered {
		return probeG
	}
	rate := 1 - float64(distinct)/float64(covered)
	g := probeG
	for ; g < 16; g++ {
		expectedSplits := float64(thetaQ) * math.Pow(rate, float64(g+1))
		if expectedSplits < 0.5 {
			break
		}
	}
	return g
}

// viewFor returns the (cached) contracted circle for an epoch and the
// effective θq on it.
func (mb *Bernoulli) viewFor(pool *dga.Pool, epoch int, cfg Config) (*circleView, int) {
	thetaQ := cfg.Spec.ThetaQ
	detected := cfg.Detection != nil
	key := viewKey{seed: cfg.Seed, epoch: epoch, aware: detected}
	if detected {
		key.missRate = cfg.Detection.MissRate
		key.detSeed = cfg.Detection.Seed
	}
	mb.mu.Lock()
	view, ok := mb.viewCache[key]
	mb.mu.Unlock()
	if !ok {
		if detected {
			rep := cfg.Detection.Detect(epoch, pool)
			view = newCircleView(pool, rep.DetectedPositions)
		} else {
			view = newCircleView(pool, nil)
		}
		mb.mu.Lock()
		mb.viewCache[key] = view
		mb.mu.Unlock()
	}
	if detected && !mb.DisableDetectionAwareness {
		// A bot's θq-sweep contains Binomial(θq, coverage) detectable
		// positions. Use the mean plus two standard deviations as the
		// effective θq: segments produced by a single bot then map to
		// l̃ = 1 (one bot) even when that bot's sweep got luckier-than-
		// average detection, instead of spuriously implying several bots.
		cov := 1 - cfg.Detection.MissRate
		mean := float64(thetaQ) * cov
		scaled := int(math.Round(mean + 2*math.Sqrt(mean*(1-cov))))
		if scaled < 1 {
			scaled = 1
		}
		if scaled > thetaQ {
			scaled = thetaQ
		}
		thetaQ = scaled
	}
	return view, thetaQ
}

// expectedBots returns E(N_L) for one segment, memoised process-globally.
func (mb *Bernoulli) expectedBots(s segment, thetaQ int) float64 {
	key := segKey{
		length: s.length, thetaQ: thetaQ, boundary: s.boundary,
		maxN: mb.maxN, maxSamples: mb.maxLTildeSamples,
	}
	if v, ok := segExpCache.Load(key); ok {
		return v.(float64)
	}
	v := mb.computeExpectedBots(s.length, thetaQ, s.boundary)
	segExpCache.Store(key, v)
	return v
}

func (mb *Bernoulli) computeExpectedBots(l, thetaQ int, boundary bool) float64 {
	if l <= 0 {
		return 0
	}
	ll := l - thetaQ + 1
	if ll < 1 {
		ll = 1
	}
	lu := ll
	if boundary {
		lu = l
	}
	// Sub-sample the l̃ grid for wide b-segment ranges.
	lts := sampleGrid(ll, lu, mb.maxLTildeSamples)
	var sum float64
	valid := 0
	for _, lt := range lts {
		e, ok := mb.expectationForLTilde(lt, thetaQ)
		if !ok {
			continue
		}
		sum += e
		valid++
	}
	if valid == 0 {
		// Closed form degenerated everywhere: coverage fallback for this
		// segment — invert the expected union length of n random θq-runs.
		return coverageFallbackSegment(l, thetaQ)
	}
	return sum / float64(valid)
}

// expectationForLTilde computes Σₙ n·h(l̃,n) via the occupancy recurrence.
// The boolean reports whether the computation stayed numerically sane.
func (mb *Bernoulli) expectationForLTilde(lt, thetaQ int) (float64, bool) {
	if lt == 1 {
		return 1, true // a single admissible start: exactly one bot profile
	}
	g := gapProbabilities(lt, thetaQ)
	if g == nil {
		return 0, false
	}
	// Occupancy distribution over m = number of occupied start positions.
	p := make([]float64, lt+1) // p[m] = Pₙ(m)
	p[0] = 1                   // n = 0: zero bins occupied
	prevEg := 0.0              // E₀[g] = 0 (g[0] treated as 0)
	var expectation, mass float64
	const tailTol = 1e-9
	for n := 1; n <= mb.maxN; n++ {
		// One draw: update occupancy distribution in place (descending m).
		for m := minInt(n, lt); m >= 1; m-- {
			p[m] = p[m]*float64(m)/float64(lt) + p[m-1]*float64(lt-m+1)/float64(lt)
		}
		p[0] = 0
		// E_n[g].
		var eg float64
		for m := 1; m <= minInt(n, lt); m++ {
			eg += p[m] * g[m]
		}
		h := eg - prevEg
		prevEg = eg
		if h < 0 {
			if h < -1e-6 {
				return 0, false // numerically degenerate
			}
			h = 0
		}
		expectation += float64(n) * h
		mass += h
		if 1-mass < tailTol && n >= 2 {
			break
		}
	}
	if mass <= 0 {
		return 0, false
	}
	return expectation / mass, true
}

// gapProbabilities returns g(l̃, m) for m = 0..l̃: the probability that m
// uniformly chosen distinct start positions among l̃ — conditioned to
// include both endpoints — leave no gap of θq or more (paper Eq. 3's g). It
// returns nil if the alternating sum degenerates.
func gapProbabilities(lt, thetaQ int) []float64 {
	g := make([]float64, lt+1)
	g[0] = 0
	if lt == 1 {
		g[1] = 1
		return g
	}
	g[1] = 0 // a single start cannot include both distinct endpoints
	// Binomial terms come from the shared LogCombTable: bit-identical to
	// the scalar stats.LogBinomial (pinned by TestLogCombTableBitIdentical),
	// with the Lgamma calls amortised across every server, trial and shard.
	comb := stats.Comb
	for m := 2; m <= lt; m++ {
		den := comb.LogBinomial(lt-2, m-2)
		if math.IsInf(den, -1) {
			g[m] = 0
			continue
		}
		sum := stats.SignedZero
		for k := 0; ; k++ {
			top := lt - k*thetaQ - 2
			if top < m-2 {
				break
			}
			term := stats.SignedFromLog(
				comb.LogBinomial(m-1, k) + comb.LogBinomial(top, m-2) - den)
			if k%2 == 1 {
				term = term.Neg()
			}
			sum = sum.Add(term)
		}
		v := sum.Float()
		if math.IsNaN(v) || v < -1e-6 || v > 1+1e-6 {
			return nil
		}
		g[m] = clamp01(v)
	}
	return g
}

// coverageFallbackSegment inverts the expected contiguous-union length of n
// uniform θq-runs to the n producing an expected length closest to l.
func coverageFallbackSegment(l, thetaQ int) float64 {
	if l <= thetaQ {
		return 1
	}
	// n runs with union contiguous of length L: E[L] ≈ θq + (n−1)·θq/2 for
	// sparse overlap; solve and clamp.
	n := 1 + 2*float64(l-thetaQ)/float64(thetaQ)
	if n < 1 {
		n = 1
	}
	return n
}

// sampleGrid returns at most k integers evenly spanning [lo, hi].
func sampleGrid(lo, hi, k int) []int {
	if hi < lo {
		hi = lo
	}
	n := hi - lo + 1
	if k <= 0 || n <= k {
		out := make([]int, 0, n)
		for v := lo; v <= hi; v++ {
			out = append(out, v)
		}
		return out
	}
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		v := lo + int(math.Round(float64(i)*float64(n-1)/float64(k-1)))
		if len(out) > 0 && out[len(out)-1] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
