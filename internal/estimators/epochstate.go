package estimators

import (
	"slices"
	"sync"

	"botmeter/internal/sim"
)

// This file holds the structure-of-arrays epoch state behind the MB and
// Coverage kernels (DESIGN.md §17): instead of per-bucket map[int]struct{}
// churn, an epoch's distinct (TTL-bucket, pool-position) observations live
// in one open-addressed pair set whose item array, once sorted, walks as
// flat per-bucket groups. The sets and the per-bucket extraction scratch
// are sync.Pool-recycled, so steady-state epoch closes allocate nothing.

// pairKey packs (bucket, position) into the set's uint64 key. Sorting keys
// ascending therefore groups by bucket, positions ascending inside each
// group — exactly the iteration order the segment pipeline needs.
func pairKey(bucket, pos int) uint64 {
	return uint64(uint32(bucket))<<32 | uint64(uint32(pos))
}

func pairBucket(key uint64) int { return int(key >> 32) }
func pairPos(key uint64) int    { return int(uint32(key)) }

// pairSet is an open-addressed set of pairKeys with an insertion log. The
// table stores key+1 (0 = empty slot); items holds every distinct key ever
// added, unordered until sorted() is called.
type pairSet struct {
	table []uint64
	items []uint64
}

const pairSetMinSlots = 64

// reset prepares the set for reuse (called by the pool on Get).
func (ps *pairSet) reset() {
	if ps.table == nil {
		ps.table = make([]uint64, pairSetMinSlots)
	}
	ps.items = ps.items[:0]
}

// add inserts the (bucket, pos) pair, reporting whether it was new.
func (ps *pairSet) add(bucket, pos int) bool {
	if len(ps.items)*4 >= len(ps.table)*3 {
		ps.grow()
	}
	key := pairKey(bucket, pos)
	mask := uint64(len(ps.table) - 1)
	// Fibonacci hashing spreads the packed keys across the table.
	i := (key * 0x9e3779b97f4a7c15) >> 32 & mask
	for {
		slot := ps.table[i]
		if slot == 0 {
			ps.table[i] = key + 1
			ps.items = append(ps.items, key)
			return true
		}
		if slot == key+1 {
			return false
		}
		i = (i + 1) & mask
	}
}

// len reports the number of distinct pairs.
func (ps *pairSet) len() int { return len(ps.items) }

// sorted orders the item log ascending (bucket-major, then position) in
// place and returns it. Safe to call repeatedly; the set stays usable.
func (ps *pairSet) sorted() []uint64 {
	slices.Sort(ps.items)
	return ps.items
}

// grow doubles the table and re-inserts the items.
func (ps *pairSet) grow() {
	next := make([]uint64, len(ps.table)*2)
	mask := uint64(len(next) - 1)
	for _, key := range ps.items {
		i := (key * 0x9e3779b97f4a7c15) >> 32 & mask
		for next[i] != 0 {
			i = (i + 1) & mask
		}
		next[i] = key + 1
	}
	ps.table = next
}

var pairSetPool = sync.Pool{New: func() any { return new(pairSet) }}

func getPairSet() *pairSet {
	ps := pairSetPool.Get().(*pairSet)
	ps.reset()
	return ps
}

func putPairSet(ps *pairSet) {
	if ps == nil {
		return
	}
	// Zero only the occupied slots: for the sparse-activity workloads the
	// incremental path exists for, clearing tracked keys beats memclr of
	// the whole table. (Re-probing each key touches exactly the slots add
	// filled, since deletion never happens.)
	if len(ps.items)*8 >= len(ps.table) {
		clear(ps.table)
	} else {
		mask := uint64(len(ps.table) - 1)
		for _, key := range ps.items {
			i := (key * 0x9e3779b97f4a7c15) >> 32 & mask
			for ps.table[i] != key+1 {
				i = (i + 1) & mask
			}
			ps.table[i] = 0
		}
	}
	ps.items = ps.items[:0]
	pairSetPool.Put(ps)
}

// segScratch is the per-close extraction scratch: the current bucket's
// contracted indices, the membership bitset over the contracted circle, and
// the reusable segment output buffer.
type segScratch struct {
	idxs []int32
	bits []uint64
	segs []segment
}

func (sc *segScratch) ensureBits(circle int) {
	words := (circle + 63) / 64
	if cap(sc.bits) < words {
		sc.bits = make([]uint64, words)
	}
	sc.bits = sc.bits[:words]
}

// clearBits zeroes exactly the bits set for the current bucket's indices.
func (sc *segScratch) clearBits() {
	for _, i := range sc.idxs {
		sc.bits[i>>6] &^= 1 << (uint(i) & 63)
	}
}

var segScratchPool = sync.Pool{New: func() any { return new(segScratch) }}

func getSegScratch() *segScratch   { return segScratchPool.Get().(*segScratch) }
func putSegScratch(sc *segScratch) { segScratchPool.Put(sc) }

// ttlBuckets returns the number of negative-TTL sub-windows per epoch (1
// when partitioning is off or the TTL spans the epoch).
func ttlBuckets(cfg Config, partition bool) int {
	if partition && cfg.NegativeTTL < cfg.EpochLen {
		return int((cfg.EpochLen + cfg.NegativeTTL - 1) / cfg.NegativeTTL)
	}
	return 1
}

// ttlBucketOf places a record time in its TTL bucket, clamped to the valid
// range exactly like the historical per-record arithmetic.
func ttlBucketOf(t, epochStart sim.Time, cfg Config, numBuckets int) int {
	if numBuckets <= 1 {
		return 0
	}
	b := int((t - epochStart) / cfg.NegativeTTL)
	if b < 0 {
		b = 0
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// Releasable is implemented by EpochStreams holding pooled state; the
// streaming engine calls Release exactly once, when the epoch cell is
// finally closed, returning the state to its pool.
type Releasable interface {
	Release()
}
