// Package estimators implements BotMeter's analytical model library (paper
// §IV): the Timing estimator MT (Algorithm 1), the Poisson estimator MP
// (Equation 1) for uniform-barrel DGAs, and the Bernoulli estimator MB
// (Theorem 1) for randomcut-barrel DGAs, plus a coverage-inversion
// estimator used as MB's numerical fallback and a naive cluster-count
// baseline.
//
// Every estimator consumes the cache-filtered, already-matched DNS lookups
// of ONE local server and estimates the number of bots of the target DGA
// active behind that server.
package estimators

import (
	"fmt"

	"botmeter/internal/d3"
	"botmeter/internal/dga"
	"botmeter/internal/sim"
	"botmeter/internal/symtab"
	"botmeter/internal/trace"
)

// Config carries everything an estimator may need beyond the observations
// themselves: the target DGA's spec (θ parameters, pacing), the seed that
// reconstructs its pools, and the DNS infrastructure parameters the
// analyst configures through BotMeter's interface (paper Figure 2, step 6).
type Config struct {
	// Spec is the target DGA family.
	Spec dga.Spec
	// Seed reconstructs the family's pools (position information for MB).
	Seed uint64
	// EpochLen is δe (default one day).
	EpochLen sim.Time
	// NegativeTTL is δl, the local servers' negative-cache TTL.
	NegativeTTL sim.Time
	// Granularity is the vantage point's timestamp granularity (0 = full
	// fidelity); MT consults it to decide whether heuristic #3 is usable.
	Granularity sim.Time
	// Detection describes the D³ front end's coverage when known; the
	// Bernoulli estimator uses it to reason on the detected sub-circle
	// (undetectable positions must not split segments) and to scale θq by
	// the realised coverage. Nil means the full pool is detectable.
	Detection *d3.Window
	// Pools, when non-nil, supplies the shared (typically symbolized)
	// per-trial pool cache. Position-aware estimators (MB, Coverage) then
	// reuse one pool object per epoch instead of regenerating it from
	// (Spec, Seed) per call, and resolve pool positions of ID-carrying
	// records with an O(1) array read instead of a string map lookup.
	// Results are identical with or without it.
	Pools *dga.PoolCache

	// normalized records that withDefaults (and the caller's Validate) has
	// already run on this value, letting the per-epoch EstimateEpoch hot
	// path skip re-normalising per (server, epoch). Set by withDefaults;
	// window- and engine-level callers normalise once and fan the flagged
	// config out.
	normalized bool
}

// poolFor materialises the pool for one epoch, through the shared cache
// when available.
func (c Config) poolFor(epoch int) *dga.Pool {
	if c.Pools != nil {
		return c.Pools.For(epoch)
	}
	return c.Spec.Pool.PoolFor(c.Seed, epoch)
}

// position resolves one record's pool position: ID-carrying records use the
// O(1) array read, everything else falls back to the string index.
func position(pool *dga.Pool, rec trace.ObservedRecord) (int, bool) {
	if rec.ID != symtab.None && pool.IDs != nil {
		return pool.PositionID(rec.ID)
	}
	return pool.Position(rec.Domain)
}

// withDefaults normalises zero fields and marks the config normalized.
func (c Config) withDefaults() Config {
	if c.EpochLen <= 0 {
		c.EpochLen = sim.Day
	}
	if c.NegativeTTL <= 0 {
		c.NegativeTTL = 2 * sim.Hour
	}
	c.normalized = true
	return c
}

// Normalized applies defaults, validates once, and returns a config the
// per-epoch estimator paths accept without re-normalising. Engine-level
// callers (core.Analyze, the streaming engine) call this once and reuse the
// result for every (server, epoch) cell.
func (c Config) Normalized() (Config, error) {
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return fmt.Errorf("estimators: %w", err)
	}
	if c.EpochLen < 0 || c.NegativeTTL < 0 || c.Granularity < 0 {
		return fmt.Errorf("estimators: negative duration in config")
	}
	return nil
}

// Estimator estimates a bot population from one epoch of observations.
type Estimator interface {
	// Name returns the estimator's short name (MT, MP, MB, …).
	Name() string
	// EstimateEpoch estimates the active bot population behind one local
	// server during epoch (index into the epoch grid), given the matched,
	// cache-filtered lookups observed in that epoch.
	EstimateEpoch(obs trace.Observed, epoch int, cfg Config) (float64, error)
}

// EstimateWindow applies an estimator across a multi-epoch window and
// averages the per-epoch estimates — the procedure behind the paper's
// Figure 6(b) ("average the estimates over the number of epochs").
func EstimateWindow(e Estimator, obs trace.Observed, w sim.Window, cfg Config) (float64, error) {
	// Normalise once; the flagged config short-circuits the per-epoch
	// withDefaults/Validate inside every EstimateEpoch call below.
	cfg, err := cfg.Normalized()
	if err != nil {
		return 0, err
	}
	if w.Len() <= 0 {
		return 0, fmt.Errorf("estimators: empty window")
	}
	firstEpoch := int(w.Start / cfg.EpochLen)
	lastEpoch := int((w.End - 1) / cfg.EpochLen)
	// One sortedness pass up front lets every per-epoch slice below come
	// from the binary-search fast path instead of re-scanning obs per epoch.
	sorted := obs.IsSorted()
	var total float64
	epochs := 0
	for ep := firstEpoch; ep <= lastEpoch; ep++ {
		ew := sim.Window{Start: sim.Time(ep) * cfg.EpochLen, End: sim.Time(ep+1) * cfg.EpochLen}
		if ew.Start < w.Start {
			ew.Start = w.Start
		}
		if ew.End > w.End {
			ew.End = w.End
		}
		var epochObs trace.Observed
		if sorted {
			epochObs = obs.WindowSorted(ew)
		} else {
			epochObs = obs.Window(ew)
		}
		est, err := e.EstimateEpoch(epochObs, ep, cfg)
		if err != nil {
			return 0, fmt.Errorf("estimators: epoch %d: %w", ep, err)
		}
		total += est
		epochs++
	}
	if epochs == 0 {
		return 0, nil
	}
	return total / float64(epochs), nil
}

// ForModel returns the estimator matching a DGA's taxonomy cell. The paper
// pairs MP with AU and MB with AR (both drain-and-replenish); the pairing
// extends to every pool model because the premises attach to the barrel
// alone — MP needs identical per-bot query sequences (any uniform barrel,
// e.g. PushDo's sliding window or Pykspa's mixture) and MB needs the
// circular-cut geometry, which PoolFor reconstructs per epoch for any pool
// class. Everything else falls back to MT.
func ForModel(spec dga.Spec) Estimator {
	switch spec.Barrel.Class() {
	case dga.UniformBarrel:
		return NewPoisson()
	case dga.RandomCutBarrel:
		return NewBernoulli()
	default:
		return NewTiming()
	}
}

// Naive counts visible activation clusters without correcting for caching —
// the uncorrected baseline MP improves upon. Its name in reports is NC.
type Naive struct {
	clusterer clusterer
}

// NewNaive builds the baseline estimator.
func NewNaive() *Naive { return &Naive{} }

// Name implements Estimator.
func (*Naive) Name() string { return "NC" }

// EstimateEpoch implements Estimator.
func (n *Naive) EstimateEpoch(obs trace.Observed, _ int, cfg Config) (float64, error) {
	if !cfg.normalized {
		cfg = cfg.withDefaults()
	}
	clusters := n.clusterer.clusters(obs, cfg)
	defer putClusterScratch(clusters)
	return float64(len(clusters)), nil
}
