package estimators

import (
	"botmeter/internal/dga"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// This file makes MP, NC and MB truly incremental (DESIGN.md §17): their
// sufficient statistics — visible-activation clusters for MP/NC, the
// distinct (TTL-bucket, pool-position) set for MB — are folded in on
// ingest, so the streaming engine's watermark-driven epoch close is O(1)
// for MP/NC and O(changed positions) for MB instead of a re-scan of the
// epoch's retained records. Estimate() runs the SAME kernels as the batch
// paths (poissonEquation1, Bernoulli.estimatePairs), which is what keeps
// batch↔stream byte-identical at any shard count.

// clusterStream folds a non-decreasing timestamp stream into visible
// activation clusters — the incremental form of clusterer.clusters, whose
// batch loop it reproduces exactly because clustering decisions depend only
// on timestamps (never on tie order).
type clusterStream struct {
	mergeWindow sim.Time
	done        []cluster
	cur         cluster
	started     bool
}

func (cs *clusterStream) observe(t sim.Time) {
	if !cs.started {
		cs.cur = cluster{start: t, end: t, count: 1}
		cs.started = true
		return
	}
	if t-cs.cur.start <= cs.mergeWindow {
		cs.cur.end = t
		cs.cur.count++
		return
	}
	cs.done = append(cs.done, cs.cur)
	cs.cur = cluster{start: t, end: t, count: 1}
}

// snapshot appends the live clusters (done plus the open one) to buf.
func (cs *clusterStream) snapshot(buf []cluster) []cluster {
	buf = append(buf, cs.done...)
	if cs.started {
		buf = append(buf, cs.cur)
	}
	return buf
}

func (cs *clusterStream) count() int {
	n := len(cs.done)
	if cs.started {
		n++
	}
	return n
}

// ClusterState is one serialized activation cluster.
type ClusterState struct {
	Start sim.Time `json:"start"`
	End   sim.Time `json:"end"`
	Count int      `json:"count"`
}

// ClusterStreamState is the serializable state of an incremental MP/NC
// epoch: the closed clusters in time order plus the still-open one.
type ClusterStreamState struct {
	Done []ClusterState `json:"done,omitempty"`
	Cur  *ClusterState  `json:"cur,omitempty"`
}

func (cs *clusterStream) exportState() ClusterStreamState {
	st := ClusterStreamState{}
	if len(cs.done) > 0 {
		st.Done = make([]ClusterState, len(cs.done))
		for i, c := range cs.done {
			st.Done[i] = ClusterState{Start: c.start, End: c.end, Count: c.count}
		}
	}
	if cs.started {
		st.Cur = &ClusterState{Start: cs.cur.start, End: cs.cur.end, Count: cs.cur.count}
	}
	return st
}

func (cs *clusterStream) restoreState(st ClusterStreamState) {
	cs.done = cs.done[:0]
	for _, c := range st.Done {
		cs.done = append(cs.done, cluster{start: c.Start, end: c.End, count: c.Count})
	}
	if st.Cur != nil {
		cs.cur = cluster{start: st.Cur.Start, end: st.Cur.End, count: st.Cur.Count}
		cs.started = true
	} else {
		cs.cur = cluster{}
		cs.started = false
	}
}

// PoissonStream is MP's per-(server, epoch) incremental state: clusters
// accumulate on ingest, and epoch close is one pass of Equation 1 over
// them — cost proportional to the visible activations, independent of the
// record count or pool size.
type PoissonStream struct {
	cs          clusterStream
	windowStart sim.Time
	deltaL      sim.Time
	epochLen    sim.Time
}

// OpenEpoch implements StreamCapable.
func (*Poisson) OpenEpoch(epoch int, cfg Config) EpochStream {
	if !cfg.normalized {
		cfg = cfg.withDefaults()
	}
	return &PoissonStream{
		cs:          clusterStream{mergeWindow: mergeWindowFor(cfg)},
		windowStart: sim.Time(epoch) * cfg.EpochLen,
		deltaL:      cfg.NegativeTTL,
		epochLen:    cfg.EpochLen,
	}
}

// Observe implements EpochStream.
func (s *PoissonStream) Observe(rec trace.ObservedRecord) { s.cs.observe(rec.T) }

// Advance implements EpochStream. Cluster state is already bounded by the
// number of visible activations; nothing expires early.
func (s *PoissonStream) Advance(sim.Time) {}

// Estimate implements EpochStream: Equation 1 over a snapshot of the live
// clusters. Valid mid-epoch (provisional) and at close (final, identical
// to the batch path on the same records).
func (s *PoissonStream) Estimate() float64 {
	if s.cs.count() == 0 {
		return 0
	}
	buf := s.cs.snapshot(make([]cluster, 0, s.cs.count()))
	return poissonEquation1(buf, s.windowStart, s.deltaL, s.epochLen)
}

// ExportState / RestoreState are the checkpoint codec.
func (s *PoissonStream) ExportState() ClusterStreamState    { return s.cs.exportState() }
func (s *PoissonStream) RestoreState(st ClusterStreamState) { s.cs.restoreState(st) }

// NaiveStream is NC's incremental state: the visible-cluster count.
type NaiveStream struct {
	cs clusterStream
}

// OpenEpoch implements StreamCapable.
func (*Naive) OpenEpoch(_ int, cfg Config) EpochStream {
	if !cfg.normalized {
		cfg = cfg.withDefaults()
	}
	return &NaiveStream{cs: clusterStream{mergeWindow: mergeWindowFor(cfg)}}
}

// Observe implements EpochStream.
func (s *NaiveStream) Observe(rec trace.ObservedRecord) { s.cs.observe(rec.T) }

// Advance implements EpochStream.
func (s *NaiveStream) Advance(sim.Time) {}

// Estimate implements EpochStream.
func (s *NaiveStream) Estimate() float64 { return float64(s.cs.count()) }

// ExportState / RestoreState are the checkpoint codec.
func (s *NaiveStream) ExportState() ClusterStreamState    { return s.cs.exportState() }
func (s *NaiveStream) RestoreState(st ClusterStreamState) { s.cs.restoreState(st) }

// BernoulliStream is MB's per-(server, epoch) incremental state: the
// distinct (TTL-bucket, pool-position) pair set, updated in O(1) per
// record on ingest. Epoch close sorts the pair log and runs the same
// segment pipeline as the batch path — O(changed positions), not O(pool).
type BernoulliStream struct {
	mb         *Bernoulli
	cfg        Config
	epoch      int
	epochStart sim.Time
	numBuckets int
	pool       *dga.Pool
	ps         *pairSet
}

// OpenEpoch implements StreamCapable.
func (mb *Bernoulli) OpenEpoch(epoch int, cfg Config) EpochStream {
	if !cfg.normalized {
		cfg = cfg.withDefaults()
	}
	return &BernoulliStream{
		mb:         mb,
		cfg:        cfg,
		epoch:      epoch,
		epochStart: sim.Time(epoch) * cfg.EpochLen,
		numBuckets: ttlBuckets(cfg, !mb.DisableTTLPartition),
		pool:       cfg.poolFor(epoch),
		ps:         getPairSet(),
	}
}

// Observe implements EpochStream: resolve the record's pool position and
// fold the (bucket, position) pair into the set. Duplicates — the common
// case once a position has been seen in a TTL window — cost one probe.
func (s *BernoulliStream) Observe(rec trace.ObservedRecord) {
	pos, ok := position(s.pool, rec)
	if !ok || s.pool.ValidAt(pos) {
		return
	}
	s.ps.add(ttlBucketOf(rec.T, s.epochStart, s.cfg, s.numBuckets), pos)
}

// Advance implements EpochStream. The pair set is already a sufficient
// statistic; nothing expires.
func (s *BernoulliStream) Advance(sim.Time) {}

// Estimate implements EpochStream: the batch segment pipeline over the
// sorted pair log. Sorting in place is safe — the set's semantics are
// order-free — so provisional mid-epoch estimates and the final close run
// the identical code path.
func (s *BernoulliStream) Estimate() float64 {
	if s.ps.len() == 0 {
		return 0
	}
	view, thetaQ := s.mb.viewFor(s.pool, s.epoch, s.cfg)
	if view.size() == 0 {
		return 0
	}
	return s.mb.estimatePairs(view, s.ps.sorted(), thetaQ)
}

// Release implements Releasable: the engine calls it when the epoch cell
// closes for good, returning the pair set to the pool.
func (s *BernoulliStream) Release() {
	putPairSet(s.ps)
	s.ps = getPairSetReleased()
}

// getPairSetReleased returns a fresh empty set so a (buggy) post-Release
// Observe cannot corrupt pooled state; it is intentionally not pooled.
func getPairSetReleased() *pairSet {
	ps := new(pairSet)
	ps.reset()
	return ps
}

// BernoulliBucket is one TTL sub-window's distinct observed pool positions,
// ascending.
type BernoulliBucket struct {
	Bucket    int   `json:"bucket"`
	Positions []int `json:"positions"`
}

// BernoulliState is the serializable state of an incremental MB epoch. Pool
// positions — not process-local symtab IDs — make the state stable across
// processes; buckets and positions are sorted so identical state always
// serialises to identical bytes.
type BernoulliState struct {
	Buckets []BernoulliBucket `json:"buckets,omitempty"`
}

// ExportState is the checkpoint codec: the sorted pair log re-grouped per
// bucket.
func (s *BernoulliStream) ExportState() BernoulliState {
	st := BernoulliState{}
	pairs := s.ps.sorted()
	for i := 0; i < len(pairs); {
		b := pairBucket(pairs[i])
		j := i
		for j < len(pairs) && pairBucket(pairs[j]) == b {
			j++
		}
		bucket := BernoulliBucket{Bucket: b, Positions: make([]int, 0, j-i)}
		for ; i < j; i++ {
			bucket.Positions = append(bucket.Positions, pairPos(pairs[i]))
		}
		st.Buckets = append(st.Buckets, bucket)
	}
	return st
}

// RestoreState replaces the stream's pair set with a previously exported
// one.
func (s *BernoulliStream) RestoreState(st BernoulliState) {
	s.ps.reset()
	for _, bucket := range st.Buckets {
		for _, pos := range bucket.Positions {
			s.ps.add(bucket.Bucket, pos)
		}
	}
}
