package estimators

import (
	"sort"

	"botmeter/internal/dga"
)

// circleView is the estimator's working geometry for a randomcut pool: the
// circle of OBSERVABLE NXD positions, in pool order. With a perfect D³
// front end this is every NXD position; with a detection window it is the
// detected subset — positions the analyst can possibly see. Contracting the
// circle this way keeps segments contiguous across detector misses (an
// unobservable position must not split a bot's run), which is what lets MB
// degrade gracefully rather than catastrophically as the detection window
// shrinks (paper Figure 6(e)).
type circleView struct {
	orig []int // contracted index -> original pool position
	// index maps original pool position -> contracted index, as a dense
	// array over the pool (-1 = not on the circle). The kernels resolve one
	// position per observed pair, so this lookup must be an array read, not
	// a map probe.
	index         []int32
	boundaryAfter []bool // a registered domain lies between orig[i] and orig[i+1]
}

// indexOf resolves an original pool position to its contracted index.
func (v *circleView) indexOf(p int) (int, bool) {
	if p < 0 || p >= len(v.index) {
		return 0, false
	}
	if ci := v.index[p]; ci >= 0 {
		return int(ci), true
	}
	return 0, false
}

// newCircleView builds the view. detected lists the observable pool
// positions (nil = all); valid positions are always excluded from the
// circle and induce arc boundaries.
func newCircleView(pool *dga.Pool, detected []int) *circleView {
	size := pool.Size()
	var nxd []int
	if detected == nil {
		nxd = make([]int, 0, size)
		for p := 0; p < size; p++ {
			if !pool.ValidAt(p) {
				nxd = append(nxd, p)
			}
		}
	} else {
		nxd = make([]int, 0, len(detected))
		for _, p := range detected {
			if p >= 0 && p < size && !pool.ValidAt(p) {
				nxd = append(nxd, p)
			}
		}
		sort.Ints(nxd)
	}
	v := &circleView{
		orig:          nxd,
		index:         make([]int32, size),
		boundaryAfter: make([]bool, len(nxd)),
	}
	for i := range v.index {
		v.index[i] = -1
	}
	for i, p := range nxd {
		v.index[p] = int32(i)
	}
	// boundaryAfter[i]: any valid position in the open original interval
	// (orig[i], orig[i+1 mod n]) going clockwise.
	n := len(nxd)
	if n == 0 {
		return v
	}
	validSorted := append([]int(nil), pool.ValidPositions...)
	for i := 0; i < n; i++ {
		from := nxd[i]
		to := nxd[(i+1)%n]
		v.boundaryAfter[i] = validInGap(validSorted, from, to, size)
	}
	return v
}

// validInGap reports whether any of the sorted valid positions lies in the
// clockwise open interval (from, to) on a circle of the given size.
func validInGap(valid []int, from, to, size int) bool {
	if len(valid) == 0 {
		return false
	}
	gap := to - from
	if gap <= 0 {
		gap += size
	}
	for off := 1; off < gap; off++ {
		p := (from + off) % size
		i := sort.SearchInts(valid, p)
		if i < len(valid) && valid[i] == p {
			return true
		}
	}
	// Wide gaps: the scan above is O(gap); for very large gaps fall back to
	// the (already-covered) result. Gap widths in practice are bounded by
	// detector miss runs, which are geometrically short.
	return false
}

// size returns the contracted circle length.
func (v *circleView) size() int { return len(v.orig) }

// segment is a maximal observed run on the contracted circle (paper §IV-D,
// Figure 5). Boundary marks a b-segment: the run's clockwise end abuts a
// registered domain.
type segment struct {
	start    int // contracted index of the first observed position
	length   int // run length in contracted positions
	boundary bool
}

// end returns the contracted index just past the run (mod circle size).
func (s segment) end(circle int) int { return (s.start + s.length) % circle }

// extractSegments decomposes a set of observed original pool positions into
// contiguous runs on the view's contracted circle, splitting at arc
// boundaries and merging wrap-around.
//
// gapTol is the number of consecutive UNOBSERVED contracted positions a
// run may stride over without breaking: 0 demands strict adjacency (the
// paper's model, correct when the vantage point is lossless), while small
// positive values make segments robust to records lost at the collector —
// a bot's sweep punched by uniform record drops leaves short in-run holes,
// whereas true segment boundaries come with long unobserved stretches.
// Strided-over holes count toward the run's length (the bot did cover
// them; only the records were lost).
func extractSegments(view *circleView, observed map[int]struct{}, gapTol int) []segment {
	n := view.size()
	if n == 0 || len(observed) == 0 {
		return nil
	}
	idxs := make([]int32, 0, len(observed))
	for p := range observed {
		if i, ok := view.indexOf(p); ok {
			idxs = append(idxs, int32(i))
		}
	}
	if len(idxs) == 0 {
		return nil
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	bits := make([]uint64, (n+63)/64)
	for _, i := range idxs {
		bits[i>>6] |= 1 << (uint(i) & 63)
	}
	return extractSegmentsSorted(view, idxs, gapTol, bits, nil)
}

// extractSegmentsSorted is the flat-array kernel behind extractSegments:
// the observed contracted indices arrive pre-sorted (ascending) with a
// matching membership bitset over the contracted circle, and segments are
// appended to segs (callers recycle the backing array across buckets). The
// caller owns bits and must clear the set positions afterwards.
func extractSegmentsSorted(view *circleView, idxs []int32, gapTol int, bits []uint64, segs []segment) []segment {
	n := view.size()
	if n == 0 || len(idxs) == 0 {
		return segs
	}
	if gapTol < 0 {
		gapTol = 0
	}
	has := func(i int) bool {
		i = mod(i, n)
		return bits[i>>6]&(1<<(uint(i)&63)) != 0
	}
	// boundaryBetween reports whether extending from contracted index j by
	// k steps crosses an arc boundary.
	boundaryBetween := func(j, k int) bool {
		for s := 0; s < k; s++ {
			if view.boundaryAfter[mod(j+s, n)] {
				return true
			}
		}
		return false
	}

	base := len(segs)
	for _, i32 := range idxs {
		i := int(i32)
		// A run starts where no observed position within the tolerance
		// window precedes it on the same arc.
		isStart := true
		for k := 1; k <= gapTol+1 && k < n; k++ {
			if has(i-k) && !boundaryBetween(mod(i-k, n), k) {
				isStart = false
				break
			}
		}
		if !isStart {
			continue
		}
		length := 1
		j := i
		for length < n {
			if view.boundaryAfter[mod(j, n)] {
				break // run ends at an arc boundary
			}
			step := 0
			for k := 1; k <= gapTol+1 && length+k <= n; k++ {
				if boundaryBetween(j, k) {
					break
				}
				if has(j + k) {
					step = k
					break
				}
			}
			if step == 0 {
				break
			}
			length += step
			j += step
		}
		segs = append(segs, segment{
			start:    i,
			length:   length,
			boundary: view.boundaryAfter[mod(i+length-1, n)],
		})
	}
	if len(segs) == base {
		// Fully observed circle with no arc boundaries: one wrapped run.
		segs = append(segs, segment{start: int(idxs[0]), length: len(idxs)})
	}
	return segs
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
