package estimators

import (
	"sort"

	"botmeter/internal/dga"
)

// circleView is the estimator's working geometry for a randomcut pool: the
// circle of OBSERVABLE NXD positions, in pool order. With a perfect D³
// front end this is every NXD position; with a detection window it is the
// detected subset — positions the analyst can possibly see. Contracting the
// circle this way keeps segments contiguous across detector misses (an
// unobservable position must not split a bot's run), which is what lets MB
// degrade gracefully rather than catastrophically as the detection window
// shrinks (paper Figure 6(e)).
type circleView struct {
	orig          []int       // contracted index -> original pool position
	index         map[int]int // original pool position -> contracted index
	boundaryAfter []bool      // a registered domain lies between orig[i] and orig[i+1]
}

// newCircleView builds the view. detected lists the observable pool
// positions (nil = all); valid positions are always excluded from the
// circle and induce arc boundaries.
func newCircleView(pool *dga.Pool, detected []int) *circleView {
	size := pool.Size()
	var nxd []int
	if detected == nil {
		nxd = make([]int, 0, size)
		for p := 0; p < size; p++ {
			if !pool.ValidAt(p) {
				nxd = append(nxd, p)
			}
		}
	} else {
		nxd = make([]int, 0, len(detected))
		for _, p := range detected {
			if p >= 0 && p < size && !pool.ValidAt(p) {
				nxd = append(nxd, p)
			}
		}
		sort.Ints(nxd)
	}
	v := &circleView{
		orig:          nxd,
		index:         make(map[int]int, len(nxd)),
		boundaryAfter: make([]bool, len(nxd)),
	}
	for i, p := range nxd {
		v.index[p] = i
	}
	// boundaryAfter[i]: any valid position in the open original interval
	// (orig[i], orig[i+1 mod n]) going clockwise.
	n := len(nxd)
	if n == 0 {
		return v
	}
	validSorted := append([]int(nil), pool.ValidPositions...)
	for i := 0; i < n; i++ {
		from := nxd[i]
		to := nxd[(i+1)%n]
		v.boundaryAfter[i] = validInGap(validSorted, from, to, size)
	}
	return v
}

// validInGap reports whether any of the sorted valid positions lies in the
// clockwise open interval (from, to) on a circle of the given size.
func validInGap(valid []int, from, to, size int) bool {
	if len(valid) == 0 {
		return false
	}
	gap := to - from
	if gap <= 0 {
		gap += size
	}
	for off := 1; off < gap; off++ {
		p := (from + off) % size
		i := sort.SearchInts(valid, p)
		if i < len(valid) && valid[i] == p {
			return true
		}
	}
	// Wide gaps: the scan above is O(gap); for very large gaps fall back to
	// the (already-covered) result. Gap widths in practice are bounded by
	// detector miss runs, which are geometrically short.
	return false
}

// size returns the contracted circle length.
func (v *circleView) size() int { return len(v.orig) }

// segment is a maximal observed run on the contracted circle (paper §IV-D,
// Figure 5). Boundary marks a b-segment: the run's clockwise end abuts a
// registered domain.
type segment struct {
	start    int // contracted index of the first observed position
	length   int // run length in contracted positions
	boundary bool
}

// end returns the contracted index just past the run (mod circle size).
func (s segment) end(circle int) int { return (s.start + s.length) % circle }

// extractSegments decomposes a set of observed original pool positions into
// contiguous runs on the view's contracted circle, splitting at arc
// boundaries and merging wrap-around.
//
// gapTol is the number of consecutive UNOBSERVED contracted positions a
// run may stride over without breaking: 0 demands strict adjacency (the
// paper's model, correct when the vantage point is lossless), while small
// positive values make segments robust to records lost at the collector —
// a bot's sweep punched by uniform record drops leaves short in-run holes,
// whereas true segment boundaries come with long unobserved stretches.
// Strided-over holes count toward the run's length (the bot did cover
// them; only the records were lost).
func extractSegments(view *circleView, observed map[int]struct{}, gapTol int) []segment {
	n := view.size()
	if n == 0 || len(observed) == 0 {
		return nil
	}
	if gapTol < 0 {
		gapTol = 0
	}
	idxSet := make(map[int]struct{}, len(observed))
	for p := range observed {
		if i, ok := view.index[p]; ok {
			idxSet[i] = struct{}{}
		}
	}
	if len(idxSet) == 0 {
		return nil
	}
	has := func(i int) bool {
		_, ok := idxSet[mod(i, n)]
		return ok
	}
	// boundaryBetween reports whether extending from contracted index j by
	// k steps crosses an arc boundary.
	boundaryBetween := func(j, k int) bool {
		for s := 0; s < k; s++ {
			if view.boundaryAfter[mod(j+s, n)] {
				return true
			}
		}
		return false
	}
	indices := make([]int, 0, len(idxSet))
	for i := range idxSet {
		indices = append(indices, i)
	}
	sort.Ints(indices)

	var segs []segment
	for _, i := range indices {
		// A run starts where no observed position within the tolerance
		// window precedes it on the same arc.
		isStart := true
		for k := 1; k <= gapTol+1 && k < n; k++ {
			if has(i-k) && !boundaryBetween(mod(i-k, n), k) {
				isStart = false
				break
			}
		}
		if !isStart {
			continue
		}
		length := 1
		j := i
		for length < n {
			if view.boundaryAfter[mod(j, n)] {
				break // run ends at an arc boundary
			}
			step := 0
			for k := 1; k <= gapTol+1 && length+k <= n; k++ {
				if boundaryBetween(j, k) {
					break
				}
				if has(j + k) {
					step = k
					break
				}
			}
			if step == 0 {
				break
			}
			length += step
			j += step
		}
		segs = append(segs, segment{
			start:    i,
			length:   length,
			boundary: view.boundaryAfter[mod(i+length-1, n)],
		})
	}
	if len(segs) == 0 {
		// Fully observed circle with no arc boundaries: one wrapped run.
		segs = append(segs, segment{start: indices[0], length: len(indices)})
	}
	return segs
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
