package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

// TestMapOrdering checks that results land in input order for every worker
// count, even when late items finish first.
func TestMapOrdering(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 3, 8, 64, 200} {
		got, err := Map(context.Background(), n, workers, func(_ context.Context, i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Duration(i%3) * time.Millisecond)
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 0, 4, func(context.Context, int) (int, error) {
		t.Fatal("fn must not run for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

// TestMapFirstErrorCancels verifies that an error stops new work and that
// the canonical (lowest-index, non-cancellation) error is reported.
func TestMapFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	_, err := Map(context.Background(), 1000, 4, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, fmt.Errorf("item %d: %w", i, boom)
		}
		// Give the cancellation a moment to propagate.
		select {
		case <-ctx.Done():
		case <-time.After(200 * time.Microsecond):
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if s := started.Load(); s == 1000 {
		t.Error("cancellation did not stop the remaining items")
	}
}

// TestMapErrorCanonical: with two failing items, the lowest index wins no
// matter which goroutine hit its error first.
func TestMapErrorCanonical(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), 8, 8, func(_ context.Context, i int) (int, error) {
			switch i {
			case 2:
				time.Sleep(time.Millisecond)
				return 0, errors.New("error at 2")
			case 5:
				return 0, errors.New("error at 5")
			}
			return i, nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if got := err.Error(); got != "error at 2" {
			t.Fatalf("trial %d: canonical error = %q, want lowest index", trial, got)
		}
	}
}

func TestMapSequentialStopsAtFirstError(t *testing.T) {
	var calls int
	_, err := Map(context.Background(), 10, 1, func(_ context.Context, i int) (int, error) {
		calls++
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil || calls != 3 {
		t.Fatalf("calls = %d, err = %v; want 3 calls and an error", calls, err)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := Map(ctx, 16, workers, func(_ context.Context, i int) (int, error) {
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 100, 8, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
}

// TestMapDeterministicAggregation is the engine-level version of the
// experiments' byte-identical contract: a seeded computation aggregated in
// result order must be identical at workers 1 and 8.
func TestMapDeterministicAggregation(t *testing.T) {
	run := func(workers int) string {
		vals, err := Map(context.Background(), 32, workers, func(_ context.Context, i int) (uint64, error) {
			seed := uint64(i+1) * 0x9e3779b97f4a7c15
			seed ^= seed >> 29
			return seed, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(vals)
	}
	if a, b := run(1), run(8); a != b {
		t.Fatalf("aggregation differs:\n%s\n%s", a, b)
	}
}

func BenchmarkMapInline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Map(context.Background(), 16, 1, func(_ context.Context, i int) (int, error) {
			return i, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapWorkers4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Map(context.Background(), 16, 4, func(_ context.Context, i int) (int, error) {
			return i, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
