// Package parallel is the stdlib-only bounded worker-pool engine behind
// every Monte-Carlo trial loop in internal/experiments and the per-server
// estimation fan-out in internal/core. Its single contract is *determinism
// under parallelism*: Map returns results in input order regardless of the
// worker count, so any computation whose per-item work is a pure function
// of the item index (the experiments derive per-trial seeds independently,
// see DESIGN.md §12) produces byte-identical artifacts at workers=1 and
// workers=N.
//
// Design points:
//
//   - workers <= 0 resolves to runtime.GOMAXPROCS(0), so `go test -cpu 1,4`
//     and production GOMAXPROCS tuning drive the pool size directly;
//   - workers == 1 (or n == 1) runs inline on the calling goroutine — no
//     goroutines, channels or atomics — so the sequential path has zero
//     engine overhead (bounded by BenchmarkParallelMapOverhead);
//   - the first error cancels the shared context; workers drain without
//     starting new items, and the error reported is the non-cancellation
//     error with the lowest item index — a canonical choice that keeps
//     error output reproducible too.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values <= 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// and returns the n results in input order. workers is resolved through
// Workers and clamped to n. The context passed to fn is cancelled as soon
// as any invocation fails (or the parent ctx is cancelled); items not yet
// started are then skipped. On failure Map returns the lowest-index
// non-cancellation error (falling back to the lowest-index error of any
// kind), so the reported error does not depend on goroutine scheduling.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers <= 1 {
		// Inline fast path: behaves exactly like the pre-engine
		// sequential loops (stops at the first error).
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue // record cancellation, keep draining indices
				}
				v, err := fn(ctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// ForEach is Map for side-effecting work: fn(ctx, i) runs for every i in
// [0, n) with the same ordering, cancellation and error-selection rules.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// firstError picks the canonical error from a per-index error slice: the
// lowest-index error that is not a bare context cancellation, falling back
// to the lowest-index error of any kind.
func firstError(errs []error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}
