package dnssim

import (
	"testing"
	"testing/quick"

	"botmeter/internal/sim"
)

// referenceCache is a trivially-correct model: it stores every answer with
// its expiry and never sweeps.
type referenceCache struct {
	posTTL, negTTL sim.Time
	entries        map[string]cacheEntry
}

func newReferenceCache(pos, neg sim.Time) *referenceCache {
	return &referenceCache{posTTL: pos, negTTL: neg, entries: make(map[string]cacheEntry)}
}

func (r *referenceCache) lookup(now sim.Time, d string) (Answer, bool) {
	e, ok := r.entries[d]
	if !ok || now >= e.expires {
		return Answer{}, false
	}
	return Answer{NX: e.nx, CacheHit: true}, true
}

func (r *referenceCache) store(now sim.Time, d string, nx bool) {
	ttl := r.posTTL
	if nx {
		ttl = r.negTTL
	}
	if ttl <= 0 {
		return
	}
	r.entries[d] = cacheEntry{expires: now + ttl, nx: nx}
}

// TestCacheMatchesReferenceModel drives random operation sequences (with
// monotonically advancing time, as the simulator guarantees) through both
// implementations and requires identical answers.
func TestCacheMatchesReferenceModel(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		rng := sim.NewRNG(seed)
		c := NewCache(sim.Day, 2*sim.Hour)
		c.sweepEvery = 8 // exercise sweeping aggressively
		ref := newReferenceCache(sim.Day, 2*sim.Hour)
		now := sim.Time(0)
		for _, op := range ops {
			now += sim.Time(op % 4096 * uint16(sim.Minute/64))
			domain := string(rune('a'+int(op)%7)) + ".com"
			switch {
			case op%3 == 0:
				nx := op%2 == 0
				c.Store(now, domain, nx)
				ref.store(now, domain, nx)
			default:
				got, gotOK := c.Lookup(now, domain)
				want, wantOK := ref.lookup(now, domain)
				if gotOK != wantOK || got != want {
					return false
				}
			}
			_ = rng
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNetworkObservedNeverExceedsIssuedProperty: the cache can only remove
// visibility, never add it, regardless of query pattern.
func TestNetworkObservedNeverExceedsIssuedProperty(t *testing.T) {
	f := func(pattern []uint8, seed uint64) bool {
		net := NewNetwork(NetworkConfig{
			LocalServers: 2,
			PositiveTTL:  sim.Day,
			NegativeTTL:  sim.Hour,
			RecordRaw:    true,
		})
		net.Registry.Register("v0.com", "v1.com")
		now := sim.Time(0)
		for _, p := range pattern {
			now += sim.Time(p) * sim.Minute
			client := string(rune('a' + p%5))
			domain := string(rune('a'+p%9)) + ".com"
			if p%9 < 2 {
				domain = "v" + string(rune('0'+p%2)) + ".com"
			}
			if _, err := net.ClientQuery(now, client, domain); err != nil {
				return false
			}
		}
		return len(net.Border.Observed()) <= len(net.Raw())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
