package dnssim

import (
	"testing"

	"botmeter/internal/sim"
)

func TestCacheMissHitExpiry(t *testing.T) {
	c := NewCache(sim.Day, 2*sim.Hour)
	if _, ok := c.Lookup(0, "a.com"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Store(0, "a.com", true) // negative answer
	ans, ok := c.Lookup(sim.Hour, "a.com")
	if !ok || !ans.NX || !ans.CacheHit {
		t.Fatalf("expected negative hit, got %+v ok=%v", ans, ok)
	}
	if _, ok := c.Lookup(2*sim.Hour, "a.com"); ok {
		t.Fatal("negative entry should expire at TTL boundary")
	}
	c.Store(0, "b.com", false) // positive answer
	if _, ok := c.Lookup(23*sim.Hour, "b.com"); !ok {
		t.Fatal("positive entry should live for a day")
	}
	if _, ok := c.Lookup(sim.Day, "b.com"); ok {
		t.Fatal("positive entry should expire after a day")
	}
}

func TestCacheDisabledTTL(t *testing.T) {
	c := NewCache(0, sim.Hour)
	c.Store(0, "a.com", false)
	if _, ok := c.Lookup(1, "a.com"); ok {
		t.Error("positive caching disabled: should miss")
	}
	c.Store(0, "nx.com", true)
	if _, ok := c.Lookup(1, "nx.com"); !ok {
		t.Error("negative caching still enabled: should hit")
	}
}

func TestCacheHitRate(t *testing.T) {
	c := NewCache(sim.Day, sim.Day)
	c.Store(0, "a.com", false)
	c.Lookup(1, "a.com")
	c.Lookup(1, "b.com")
	if got := c.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestCacheSweep(t *testing.T) {
	c := NewCache(sim.Second, sim.Second)
	c.sweepEvery = 4
	for i := 0; i < 3; i++ {
		c.Store(0, string(rune('a'+i))+".com", true)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	// Advance past expiry and trigger the sweep with lookups.
	for i := 0; i < 10; i++ {
		c.Lookup(10*sim.Second, "zz.com")
	}
	if c.Len() != 0 {
		t.Errorf("sweep left %d entries", c.Len())
	}
}

func newTestNetwork(locals int) *Network {
	return NewNetwork(NetworkConfig{
		LocalServers: locals,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		RecordRaw:    true,
	})
}

func TestCachingMasksRepeatLookups(t *testing.T) {
	n := newTestNetwork(1)
	n.Registry.Register("valid.com")
	if err := n.AssignClient("c1", "local-00"); err != nil {
		t.Fatal(err)
	}
	if err := n.AssignClient("c2", "local-00"); err != nil {
		t.Fatal(err)
	}
	// First lookup forwarded, second (other client, same domain) absorbed.
	if _, err := n.ClientQuery(0, "c1", "nx.com"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.ClientQuery(sim.Minute, "c2", "nx.com"); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Border.Observed()); got != 1 {
		t.Fatalf("border saw %d lookups, want 1 (second cached)", got)
	}
	// After negative TTL the domain is queried upstream again.
	if _, err := n.ClientQuery(3*sim.Hour, "c1", "nx.com"); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Border.Observed()); got != 2 {
		t.Fatalf("border saw %d lookups, want 2 after TTL expiry", got)
	}
}

func TestAnswerCorrectness(t *testing.T) {
	n := newTestNetwork(1)
	n.Registry.Register("valid.com")
	ans, err := n.ClientQuery(0, "c1", "valid.com")
	if err != nil || ans.NX {
		t.Fatalf("valid domain should resolve: %+v, %v", ans, err)
	}
	ans, err = n.ClientQuery(0, "c1", "invalid.com")
	if err != nil || !ans.NX {
		t.Fatalf("unregistered domain should be NX: %+v, %v", ans, err)
	}
	// Cached answers preserve the NX flag.
	ans, _ = n.ClientQuery(1, "c1", "invalid.com")
	if !ans.NX {
		t.Error("cached NX answer lost its flag")
	}
}

func TestDistinctNXDsAlwaysReachBorder(t *testing.T) {
	// The Bernoulli estimator's cache-immunity rests on this invariant:
	// the FIRST lookup of each distinct domain in a window is always
	// forwarded, regardless of caching.
	n := newTestNetwork(1)
	for i := 0; i < 50; i++ {
		d := string(rune('a'+i%26)) + string(rune('a'+i/26)) + ".com"
		if _, err := n.ClientQuery(sim.Time(i)*sim.Second, "c1", d); err != nil {
			t.Fatal(err)
		}
		if _, err := n.ClientQuery(sim.Time(i)*sim.Second+1, "c2", d); err != nil {
			t.Fatal(err)
		}
	}
	domains := n.Border.Observed().Domains()
	if len(domains) != 50 {
		t.Errorf("border saw %d distinct domains, want 50", len(domains))
	}
}

func TestObservedIsCacheFilteredSubsetOfRaw(t *testing.T) {
	n := newTestNetwork(2)
	n.Registry.Register("good.com")
	domains := []string{"good.com", "bad1.com", "bad2.com", "bad1.com", "good.com"}
	clients := []string{"c1", "c2", "c3", "c1", "c2"}
	for i := range domains {
		if _, err := n.ClientQuery(sim.Time(i)*sim.Second, clients[i], domains[i]); err != nil {
			t.Fatal(err)
		}
	}
	raw := n.Raw()
	obs := n.Border.Observed()
	if len(obs) > len(raw) {
		t.Fatalf("observed (%d) cannot exceed raw (%d)", len(obs), len(raw))
	}
	// Every observed record corresponds to a raw record at the same time
	// for the same domain.
	type key struct {
		t sim.Time
		d string
	}
	rawSet := make(map[key]bool)
	for _, r := range raw {
		rawSet[key{r.T, r.Domain}] = true
	}
	for _, o := range obs {
		if !rawSet[key{o.T, o.Domain}] {
			t.Errorf("observed record %+v has no raw counterpart", o)
		}
	}
}

func TestClientHomingDeterministic(t *testing.T) {
	n1 := newTestNetwork(4)
	n2 := newTestNetwork(4)
	for _, c := range []string{"10.0.0.1", "10.0.0.2", "10.9.9.9"} {
		if _, err := n1.ClientQuery(0, c, "x.com"); err != nil {
			t.Fatal(err)
		}
		if _, err := n2.ClientQuery(0, c, "x.com"); err != nil {
			t.Fatal(err)
		}
		h1, _ := n1.HomeOf(c)
		h2, _ := n2.HomeOf(c)
		if h1 != h2 {
			t.Errorf("client %s homed differently: %s vs %s", c, h1, h2)
		}
	}
}

func TestAssignClientValidation(t *testing.T) {
	n := newTestNetwork(1)
	if err := n.AssignClient("c", "local-99"); err == nil {
		t.Error("assigning to unknown server should error")
	}
	if err := n.AssignClient("c", "local-00"); err != nil {
		t.Error(err)
	}
	if home, ok := n.HomeOf("c"); !ok || home != "local-00" {
		t.Errorf("HomeOf = %q, %v", home, ok)
	}
}

func TestSeparateLocalServerCaches(t *testing.T) {
	n := newTestNetwork(2)
	if err := n.AssignClient("c1", "local-00"); err != nil {
		t.Fatal(err)
	}
	if err := n.AssignClient("c2", "local-01"); err != nil {
		t.Fatal(err)
	}
	n.ClientQuery(0, "c1", "nx.com")
	n.ClientQuery(1, "c2", "nx.com")
	// Different local caches: both lookups reach the border.
	if got := len(n.Border.Observed()); got != 2 {
		t.Errorf("border saw %d lookups, want 2 (separate caches)", got)
	}
	byServer := n.Border.Observed().ByServer()
	if len(byServer["local-00"]) != 1 || len(byServer["local-01"]) != 1 {
		t.Errorf("per-server attribution wrong: %v", byServer)
	}
}

func TestMidTierHierarchy(t *testing.T) {
	n := NewNetwork(NetworkConfig{
		LocalServers: 4,
		MidTierFanIn: 2,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
	})
	if err := n.AssignClient("c1", "local-00"); err != nil {
		t.Fatal(err)
	}
	if err := n.AssignClient("c2", "local-01"); err != nil {
		t.Fatal(err)
	}
	// local-00 and local-01 share mid-00; the second lookup of the same
	// domain through a different local server is absorbed by the mid-tier.
	n.ClientQuery(0, "c1", "nx.com")
	n.ClientQuery(1, "c2", "nx.com")
	obs := n.Border.Observed()
	if len(obs) != 1 {
		t.Fatalf("border saw %d lookups, want 1 (mid-tier absorbs)", len(obs))
	}
	// The border records the mid-tier as the forwarder.
	if obs[0].Server != "mid-00" {
		t.Errorf("forwarder = %q, want mid-00", obs[0].Server)
	}
}

func TestBorderGranularity(t *testing.T) {
	n := NewNetwork(NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  sim.Hour,
		Granularity:  sim.Second,
	})
	n.ClientQuery(1234, "c1", "nx.com")
	obs := n.Border.Observed()
	if len(obs) != 1 || obs[0].T != 1000 {
		t.Errorf("granularity truncation failed: %+v", obs)
	}
}

func TestRegistryUnregister(t *testing.T) {
	r := NewRegistry()
	r.Register("a.com", "b.com")
	if r.Size() != 2 || !r.Resolves("a.com") {
		t.Fatal("register failed")
	}
	r.Unregister("a.com")
	if r.Resolves("a.com") || !r.Resolves("b.com") {
		t.Error("unregister failed")
	}
}

func TestResetTraces(t *testing.T) {
	n := newTestNetwork(1)
	n.ClientQuery(0, "c1", "nx.com")
	n.ResetTraces()
	if len(n.Raw()) != 0 || len(n.Border.Observed()) != 0 {
		t.Error("ResetTraces should clear both datasets")
	}
}

func TestServerStats(t *testing.T) {
	n := newTestNetwork(1)
	n.ClientQuery(0, "c1", "nx.com")
	n.ClientQuery(1, "c1", "nx.com")
	srv, _ := n.Local("local-00")
	q, f := srv.Stats()
	if q != 2 || f != 1 {
		t.Errorf("stats = %d queries, %d forwarded; want 2, 1", q, f)
	}
	if srv.CacheHitRate() != 0.5 {
		t.Errorf("hit rate = %v", srv.CacheHitRate())
	}
}
