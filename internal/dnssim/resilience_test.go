package dnssim

import (
	"testing"

	"botmeter/internal/sim"
)

// flakyUpstream fails (ServFail) while failing is true, otherwise answers
// NX for unregistered names, counting every resolve it sees.
type flakyUpstream struct {
	failing    bool
	failsLeft  int // when > 0, fail this many resolves then recover
	registered map[string]bool
	resolves   int
}

func (u *flakyUpstream) Resolve(now sim.Time, forwarder, domain string) Answer {
	u.resolves++
	if u.failsLeft > 0 {
		u.failsLeft--
		return Answer{ServFail: true}
	}
	if u.failing {
		return Answer{ServFail: true}
	}
	return Answer{NX: !u.registered[domain]}
}

func TestServerRetriesAbsorbTransientFailure(t *testing.T) {
	up := &flakyUpstream{failsLeft: 2, registered: map[string]bool{"c2.example": true}}
	s := NewServer("local-00", sim.Day, sim.Hour, up)
	s.MaxRetries = 3

	ans := s.Query(0, "c2.example")
	if ans.ServFail || ans.NX {
		t.Fatalf("answer = %+v, want recovered positive", ans)
	}
	if up.resolves != 3 {
		t.Errorf("upstream saw %d resolves, want 3 (1 + 2 retries)", up.resolves)
	}
	retried, servfails, _ := s.ResilienceStats()
	if retried != 2 || servfails != 0 {
		t.Errorf("retried=%d servfails=%d, want 2, 0", retried, servfails)
	}
	// The recovered answer must have been cached.
	if ans := s.Query(1, "c2.example"); !ans.CacheHit {
		t.Errorf("recovered answer not cached: %+v", ans)
	}
}

func TestServerExhaustedRetriesServFailUncached(t *testing.T) {
	up := &flakyUpstream{failing: true}
	s := NewServer("local-00", sim.Day, sim.Hour, up)
	s.MaxRetries = 2

	if ans := s.Query(0, "gone.example"); !ans.ServFail {
		t.Fatalf("answer = %+v, want ServFail", ans)
	}
	if up.resolves != 3 {
		t.Errorf("upstream saw %d resolves, want 3", up.resolves)
	}
	_, servfails, _ := s.ResilienceStats()
	if servfails != 1 {
		t.Errorf("servfails = %d, want 1", servfails)
	}
	// A ServFail must never be cached: the next query forwards again.
	up.failing = false
	if ans := s.Query(1, "gone.example"); ans.ServFail || ans.CacheHit {
		t.Errorf("post-recovery answer = %+v, want fresh resolve", ans)
	}
}

func TestServerServeStale(t *testing.T) {
	up := &flakyUpstream{registered: map[string]bool{"c2.example": true}}
	s := NewServer("local-00", sim.Second, sim.Second, up)
	s.ServeStale = true
	s.cache.StaleTTL = sim.Hour

	// Prime, then let the entry expire and kill the upstream.
	if ans := s.Query(0, "c2.example"); ans.ServFail {
		t.Fatalf("priming failed: %+v", ans)
	}
	up.failing = true
	ans := s.Query(2*sim.Second, "c2.example")
	if ans.ServFail || !ans.Stale || !ans.CacheHit || ans.NX {
		t.Fatalf("stale answer = %+v, want Stale positive CacheHit", ans)
	}
	_, servfails, staleServed := s.ResilienceStats()
	if staleServed != 1 || servfails != 0 {
		t.Errorf("staleServed=%d servfails=%d, want 1, 0", staleServed, servfails)
	}

	// Beyond the stale horizon even RFC 8767 gives up.
	if ans := s.Query(2*sim.Second+2*sim.Hour, "c2.example"); !ans.ServFail {
		t.Errorf("past StaleTTL: %+v, want ServFail", ans)
	}

	// With serve-stale off, the same expiry surfaces the failure at once.
	s2 := NewServer("local-01", sim.Second, sim.Second, up)
	up.failing = false
	s2.Query(0, "c2.example")
	up.failing = true
	if ans := s2.Query(2*sim.Second, "c2.example"); !ans.ServFail {
		t.Errorf("without serve-stale: %+v, want ServFail", ans)
	}
}

func TestCacheLookupStale(t *testing.T) {
	c := NewCache(sim.Second, sim.Second)
	c.StaleTTL = sim.Minute
	c.Store(0, "a.example", false)
	c.Store(0, "nx.example", true)

	// Fresh: normal lookup wins, not stale.
	if ans, ok := c.Lookup(500*sim.Millisecond, "a.example"); !ok || ans.Stale {
		t.Errorf("fresh lookup = %+v, %v", ans, ok)
	}
	// Expired but within StaleTTL: Lookup misses, LookupStale hits.
	if _, ok := c.Lookup(2*sim.Second, "a.example"); ok {
		t.Error("expired entry served as fresh")
	}
	ans, ok := c.LookupStale(2*sim.Second, "a.example")
	if !ok || !ans.Stale || !ans.CacheHit || ans.NX {
		t.Errorf("stale positive = %+v, %v", ans, ok)
	}
	if ans, ok := c.LookupStale(2*sim.Second, "nx.example"); !ok || !ans.NX {
		t.Errorf("stale negative = %+v, %v", ans, ok)
	}
	// Beyond the stale horizon: gone.
	if _, ok := c.LookupStale(2*sim.Minute, "a.example"); ok {
		t.Error("entry served beyond StaleTTL")
	}
	// Unknown domain: no stale answer.
	if _, ok := c.LookupStale(0, "never.example"); ok {
		t.Error("stale answer for a domain never stored")
	}
}

// TestNetworkResilienceConfig verifies NewNetwork plumbs the knobs into
// every tier and that WrapUpstream sees the border exactly once.
func TestNetworkResilienceConfig(t *testing.T) {
	var wrapped int
	n := NewNetwork(NetworkConfig{
		LocalServers: 4,
		MidTierFanIn: 2,
		PositiveTTL:  sim.Hour,
		NegativeTTL:  sim.Hour,
		MaxRetries:   3,
		ServeStale:   true,
		StaleTTL:     sim.Day,
		WrapUpstream: func(u Upstream) Upstream {
			wrapped++
			return u
		},
	})
	if wrapped != 1 {
		t.Errorf("WrapUpstream called %d times, want 1", wrapped)
	}
	for _, id := range n.LocalIDs() {
		s, ok := n.Local(id)
		if !ok {
			t.Fatalf("missing local %s", id)
		}
		if s.MaxRetries != 3 || !s.ServeStale || s.Cache().StaleTTL != sim.Day {
			t.Errorf("%s not hardened: retries=%d stale=%v ttl=%v", id, s.MaxRetries, s.ServeStale, s.Cache().StaleTTL)
		}
	}
}
