// Package dnssim models the hierarchical DNS infrastructure of a large
// network (paper §II, Figure 1): clients query local caching-and-forwarding
// DNS servers; cache misses are forwarded upward (optionally through
// mid-tier servers) to a border DNS server, which is the only point where
// traffic is observable. Positive answers and NXDomain answers are cached
// with independent TTLs (RFC 1912 operational guidance: positive TTLs of a
// day, negative TTLs of minutes to hours).
package dnssim

import (
	"botmeter/internal/sim"
)

// Answer is the outcome of a DNS resolution.
type Answer struct {
	// NX reports a non-existent domain (NXDomain).
	NX bool
	// CacheHit reports that the answer was served from the local cache
	// without any upward forwarding (i.e. invisible at the vantage point).
	CacheHit bool
}

// Cache is a DNS answer cache with separate positive and negative TTLs.
// The zero value is unusable; construct with NewCache. Entries are expired
// lazily on lookup, with an occasional sweep to bound memory.
type Cache struct {
	positiveTTL sim.Time
	negativeTTL sim.Time
	entries     map[string]cacheEntry

	lookups    int
	hits       int
	sweepEvery int
	opsSince   int
	lastSweep  sim.Time
}

type cacheEntry struct {
	expires sim.Time
	nx      bool
}

// NewCache builds a cache with the given TTLs. Non-positive TTLs disable
// caching for that answer class.
func NewCache(positiveTTL, negativeTTL sim.Time) *Cache {
	return &Cache{
		positiveTTL: positiveTTL,
		negativeTTL: negativeTTL,
		entries:     make(map[string]cacheEntry),
		sweepEvery:  1 << 14,
	}
}

// Lookup consults the cache at virtual time now. On a hit it returns the
// cached answer.
func (c *Cache) Lookup(now sim.Time, domain string) (Answer, bool) {
	c.lookups++
	c.maybeSweep(now)
	e, ok := c.entries[domain]
	if !ok {
		return Answer{}, false
	}
	if now >= e.expires {
		delete(c.entries, domain)
		return Answer{}, false
	}
	c.hits++
	return Answer{NX: e.nx, CacheHit: true}, true
}

// Store records an answer at virtual time now, using the TTL matching its
// class. Answers whose class has caching disabled are not stored.
func (c *Cache) Store(now sim.Time, domain string, nx bool) {
	ttl := c.positiveTTL
	if nx {
		ttl = c.negativeTTL
	}
	if ttl <= 0 {
		return
	}
	c.entries[domain] = cacheEntry{expires: now + ttl, nx: nx}
}

// Len returns the number of cached entries including not-yet-swept expired
// ones.
func (c *Cache) Len() int { return len(c.entries) }

// HitRate returns the fraction of lookups served from cache.
func (c *Cache) HitRate() float64 {
	if c.lookups == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.lookups)
}

// maybeSweep drops expired entries periodically so long simulations do not
// accumulate unbounded state.
func (c *Cache) maybeSweep(now sim.Time) {
	c.opsSince++
	if c.opsSince < c.sweepEvery {
		return
	}
	c.opsSince = 0
	if now == c.lastSweep {
		return
	}
	c.lastSweep = now
	for d, e := range c.entries {
		if now >= e.expires {
			delete(c.entries, d)
		}
	}
}
