// Package dnssim models the hierarchical DNS infrastructure of a large
// network (paper §II, Figure 1): clients query local caching-and-forwarding
// DNS servers; cache misses are forwarded upward (optionally through
// mid-tier servers) to a border DNS server, which is the only point where
// traffic is observable. Positive answers and NXDomain answers are cached
// with independent TTLs (RFC 1912 operational guidance: positive TTLs of a
// day, negative TTLs of minutes to hours).
package dnssim

import (
	"sync"

	"botmeter/internal/sim"
)

// Answer is the outcome of a DNS resolution.
type Answer struct {
	// NX reports a non-existent domain (NXDomain).
	NX bool
	// CacheHit reports that the answer was served from the local cache
	// without any upward forwarding (i.e. invisible at the vantage point).
	CacheHit bool
	// ServFail reports a resolution failure (lost datagram, upstream
	// blackout, or an upstream SERVFAIL) after any configured retries.
	// ServFail answers are never cached.
	ServFail bool
	// Stale reports the answer was served from an expired cache entry
	// under RFC 8767-style graceful degradation while the upstream was
	// unreachable. Implies CacheHit.
	Stale bool
}

// Cache is a DNS answer cache with separate positive and negative TTLs.
// The zero value is unusable; construct with NewCache. Entries are expired
// lazily on lookup, with an occasional sweep to bound memory.
type Cache struct {
	positiveTTL sim.Time
	negativeTTL sim.Time
	entries     map[string]cacheEntry

	// StaleTTL, when positive, keeps expired entries around for that long
	// past their expiry so LookupStale can serve them while the upstream
	// is unreachable (RFC 8767 serve-stale). Zero disables retention.
	StaleTTL sim.Time

	lookups    int
	hits       int
	staleHits  int
	sweepEvery int
	opsSince   int
	lastSweep  sim.Time

	// m holds the optional obs instruments (see Instrument); the zero
	// value is disabled and costs one branch per event.
	m cacheMetrics
}

type cacheEntry struct {
	expires sim.Time
	nx      bool
}

// entryMaps recycles the cache's entry maps across simulations. Experiment
// sweeps build thousands of short-lived hierarchies, and re-growing each
// cache map from scratch dominated the allocator profile; maps returned
// via Release keep their buckets and are handed to the next NewCache
// already sized for a day of traffic.
var entryMaps = sync.Pool{
	New: func() any { return make(map[string]cacheEntry, 1024) },
}

// NewCache builds a cache with the given TTLs. Non-positive TTLs disable
// caching for that answer class.
func NewCache(positiveTTL, negativeTTL sim.Time) *Cache {
	return &Cache{
		positiveTTL: positiveTTL,
		negativeTTL: negativeTTL,
		entries:     entryMaps.Get().(map[string]cacheEntry),
		sweepEvery:  1 << 14,
	}
}

// Release returns the cache's entry map to the shared pool and leaves the
// cache empty but usable. Call it when a simulated hierarchy is done (see
// Network.ReleaseCaches); a cache that was never stored into keeps its map,
// so double releases do not churn the pool.
func (c *Cache) Release() {
	if c.entries == nil || len(c.entries) == 0 {
		return
	}
	m := c.entries
	clear(m)
	entryMaps.Put(m)
	c.entries = make(map[string]cacheEntry) // small; the released map is gone
}

// Lookup consults the cache at virtual time now. On a hit it returns the
// cached answer. Expired entries miss; when StaleTTL is positive they are
// retained (for LookupStale) until the stale horizon passes.
func (c *Cache) Lookup(now sim.Time, domain string) (Answer, bool) {
	c.lookups++
	c.m.lookups.Inc()
	c.maybeSweep(now)
	e, ok := c.entries[domain]
	if !ok {
		c.m.misses.Inc()
		return Answer{}, false
	}
	if now >= e.expires {
		if c.StaleTTL <= 0 || now >= e.expires+c.StaleTTL {
			delete(c.entries, domain)
			c.m.evictions.Inc()
		}
		c.m.misses.Inc()
		return Answer{}, false
	}
	c.hits++
	c.m.hits.Inc()
	return Answer{NX: e.nx, CacheHit: true}, true
}

// LookupStale serves an expired-but-retained entry — the graceful
// degradation path taken when the upstream is unreachable (RFC 8767). It
// returns ok only for entries past their TTL but within StaleTTL of it;
// fresh entries are Lookup's job.
func (c *Cache) LookupStale(now sim.Time, domain string) (Answer, bool) {
	if c.StaleTTL <= 0 {
		return Answer{}, false
	}
	e, ok := c.entries[domain]
	if !ok || now < e.expires || now >= e.expires+c.StaleTTL {
		return Answer{}, false
	}
	c.staleHits++
	c.m.staleHits.Inc()
	return Answer{NX: e.nx, CacheHit: true, Stale: true}, true
}

// StaleHits returns the number of answers served past their TTL.
func (c *Cache) StaleHits() int { return c.staleHits }

// Store records an answer at virtual time now, using the TTL matching its
// class. Answers whose class has caching disabled are not stored.
func (c *Cache) Store(now sim.Time, domain string, nx bool) {
	ttl := c.positiveTTL
	if nx {
		ttl = c.negativeTTL
	}
	if ttl <= 0 {
		return
	}
	c.entries[domain] = cacheEntry{expires: now + ttl, nx: nx}
	if c.m.stores != nil {
		c.m.stores.Inc()
		c.m.entries.Set(float64(len(c.entries)))
	}
}

// Len returns the number of cached entries including not-yet-swept expired
// ones.
func (c *Cache) Len() int { return len(c.entries) }

// HitRate returns the fraction of lookups served from cache.
func (c *Cache) HitRate() float64 {
	if c.lookups == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.lookups)
}

// maybeSweep drops expired entries periodically so long simulations do not
// accumulate unbounded state.
func (c *Cache) maybeSweep(now sim.Time) {
	c.opsSince++
	if c.opsSince < c.sweepEvery {
		return
	}
	c.opsSince = 0
	if now == c.lastSweep {
		return
	}
	c.lastSweep = now
	for d, e := range c.entries {
		if now >= e.expires+c.StaleTTL {
			delete(c.entries, d)
			c.m.evictions.Inc()
		}
	}
	if c.m.entries != nil {
		c.m.entries.Set(float64(len(c.entries)))
	}
}
