// Package dnssim models the hierarchical DNS infrastructure of a large
// network (paper §II, Figure 1): clients query local caching-and-forwarding
// DNS servers; cache misses are forwarded upward (optionally through
// mid-tier servers) to a border DNS server, which is the only point where
// traffic is observable. Positive answers and NXDomain answers are cached
// with independent TTLs (RFC 1912 operational guidance: positive TTLs of a
// day, negative TTLs of minutes to hours).
package dnssim

import (
	"sync"

	"botmeter/internal/sim"
	"botmeter/internal/symtab"
)

// Answer is the outcome of a DNS resolution.
type Answer struct {
	// NX reports a non-existent domain (NXDomain).
	NX bool
	// CacheHit reports that the answer was served from the local cache
	// without any upward forwarding (i.e. invisible at the vantage point).
	CacheHit bool
	// ServFail reports a resolution failure (lost datagram, upstream
	// blackout, or an upstream SERVFAIL) after any configured retries.
	// ServFail answers are never cached.
	ServFail bool
	// Stale reports the answer was served from an expired cache entry
	// under RFC 8767-style graceful degradation while the upstream was
	// unreachable. Implies CacheHit.
	Stale bool
}

// Cache is a DNS answer cache with separate positive and negative TTLs.
// The zero value is unusable; construct with NewCache. Entries are expired
// lazily on lookup, with an occasional sweep to bound memory.
type Cache struct {
	positiveTTL sim.Time
	negativeTTL sim.Time
	entries     map[string]cacheEntry

	// ids is the flat open-addressed fast path for domains that carry an
	// interned symtab ID (in-process simulated traffic). Externally-injected
	// names (ID == symtab.None) use the string map above. A given domain is
	// always queried via the same path within one hierarchy because IDs come
	// from the single per-trial intern table.
	ids idTable

	// pooled records whether entries/ids slots came from the shared pools;
	// after Release the cache keeps working with fresh unpooled storage.
	pooled bool

	// StaleTTL, when positive, keeps expired entries around for that long
	// past their expiry so LookupStale can serve them while the upstream
	// is unreachable (RFC 8767 serve-stale). Zero disables retention.
	StaleTTL sim.Time

	lookups    int
	hits       int
	staleHits  int
	sweepEvery int
	opsSince   int
	lastSweep  sim.Time

	// m holds the optional obs instruments (see Instrument); the zero
	// value is disabled and costs one branch per event.
	m cacheMetrics
}

type cacheEntry struct {
	expires sim.Time
	nx      bool
}

// entryMaps recycles the cache's entry maps across simulations. Experiment
// sweeps build thousands of short-lived hierarchies, and re-growing each
// cache map from scratch dominated the allocator profile; maps returned
// via Release keep their buckets and are handed to the next NewCache
// already sized for a day of traffic.
var entryMaps = sync.Pool{
	New: func() any { return make(map[string]cacheEntry, 1024) },
}

// idSlots recycles the ID fast path's slot arrays across simulations, for
// the same reason entryMaps exists: slot arrays grown for a day of traffic
// are handed to the next NewCache instead of being re-grown from scratch.
var idSlots = sync.Pool{
	New: func() any { return make([]idEntry, 1024) },
}

// NewCache builds a cache with the given TTLs. Non-positive TTLs disable
// caching for that answer class.
func NewCache(positiveTTL, negativeTTL sim.Time) *Cache {
	c := &Cache{
		positiveTTL: positiveTTL,
		negativeTTL: negativeTTL,
		entries:     entryMaps.Get().(map[string]cacheEntry),
		sweepEvery:  1 << 14,
		pooled:      true,
	}
	c.ids.adopt(idSlots.Get().([]idEntry))
	return c
}

// Release returns the cache's pooled storage (entry map and ID slots) to the
// shared pools. Release is idempotent: the first call donates the storage,
// later calls are no-ops. The cache stays usable after Release — lookups
// miss and stores lazily allocate fresh (unpooled) storage — so a stray
// query after Network.ReleaseCaches is safe and never pollutes the pools
// with small replacement maps.
func (c *Cache) Release() {
	if !c.pooled {
		return
	}
	c.pooled = false
	if c.entries != nil {
		m := c.entries
		clear(m)
		entryMaps.Put(m)
		c.entries = nil
	}
	if slots := c.ids.surrender(); slots != nil {
		idSlots.Put(slots)
	}
}

// Lookup consults the cache at virtual time now. On a hit it returns the
// cached answer. Expired entries miss; when StaleTTL is positive they are
// retained (for LookupStale) until the stale horizon passes.
func (c *Cache) Lookup(now sim.Time, domain string) (Answer, bool) {
	c.lookups++
	c.m.lookups.Inc()
	c.maybeSweep(now)
	e, ok := c.entries[domain]
	if !ok {
		c.m.misses.Inc()
		return Answer{}, false
	}
	if now >= e.expires {
		if c.StaleTTL <= 0 || now >= e.expires+c.StaleTTL {
			delete(c.entries, domain)
			c.m.evictions.Inc()
		}
		c.m.misses.Inc()
		return Answer{}, false
	}
	c.hits++
	c.m.hits.Inc()
	return Answer{NX: e.nx, CacheHit: true}, true
}

// LookupStale serves an expired-but-retained entry — the graceful
// degradation path taken when the upstream is unreachable (RFC 8767). It
// returns ok only for entries past their TTL but within StaleTTL of it;
// fresh entries are Lookup's job.
func (c *Cache) LookupStale(now sim.Time, domain string) (Answer, bool) {
	if c.StaleTTL <= 0 {
		return Answer{}, false
	}
	e, ok := c.entries[domain]
	if !ok || now < e.expires || now >= e.expires+c.StaleTTL {
		return Answer{}, false
	}
	c.staleHits++
	c.m.staleHits.Inc()
	return Answer{NX: e.nx, CacheHit: true, Stale: true}, true
}

// StaleHits returns the number of answers served past their TTL.
func (c *Cache) StaleHits() int { return c.staleHits }

// Store records an answer at virtual time now, using the TTL matching its
// class. Answers whose class has caching disabled are not stored.
func (c *Cache) Store(now sim.Time, domain string, nx bool) {
	ttl := c.positiveTTL
	if nx {
		ttl = c.negativeTTL
	}
	if ttl <= 0 {
		return
	}
	if c.entries == nil {
		// Post-Release use: re-allocate unpooled storage (never returned to
		// the pool, see Release).
		c.entries = make(map[string]cacheEntry, 64)
	}
	c.entries[domain] = cacheEntry{expires: now + ttl, nx: nx}
	if c.m.stores != nil {
		c.m.stores.Inc()
		c.m.entries.Set(float64(len(c.entries)))
	}
}

// LookupID is the ID fast path of Lookup for domains carrying an interned
// symtab ID. Answer semantics are identical to Lookup (same expiry formula,
// same stale horizon); expired entries are simply skipped rather than
// deleted, since the ID key space is bounded by the trial's intern table.
func (c *Cache) LookupID(now sim.Time, id symtab.ID) (Answer, bool) {
	c.lookups++
	c.m.lookups.Inc()
	c.maybeSweep(now)
	e, ok := c.ids.get(id)
	if !ok || now >= e.expires {
		c.m.misses.Inc()
		return Answer{}, false
	}
	c.hits++
	c.m.hits.Inc()
	return Answer{NX: e.nx, CacheHit: true}, true
}

// LookupStaleID is the ID fast path of LookupStale.
func (c *Cache) LookupStaleID(now sim.Time, id symtab.ID) (Answer, bool) {
	if c.StaleTTL <= 0 {
		return Answer{}, false
	}
	e, ok := c.ids.get(id)
	if !ok || now < e.expires || now >= e.expires+c.StaleTTL {
		return Answer{}, false
	}
	c.staleHits++
	c.m.staleHits.Inc()
	return Answer{NX: e.nx, CacheHit: true, Stale: true}, true
}

// StoreID is the ID fast path of Store.
func (c *Cache) StoreID(now sim.Time, id symtab.ID, nx bool) {
	ttl := c.positiveTTL
	if nx {
		ttl = c.negativeTTL
	}
	if ttl <= 0 {
		return
	}
	c.ids.put(id, idEntry{id: id, nx: nx, expires: now + ttl})
	if c.m.stores != nil {
		c.m.stores.Inc()
		c.m.entries.Set(float64(c.Len()))
	}
}

// Len returns the number of cached entries including not-yet-swept expired
// ones, across both the string map and the ID fast path.
func (c *Cache) Len() int { return len(c.entries) + c.ids.used }

// HitRate returns the fraction of lookups served from cache.
func (c *Cache) HitRate() float64 {
	if c.lookups == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.lookups)
}

// maybeSweep drops expired entries periodically so long simulations do not
// accumulate unbounded state.
func (c *Cache) maybeSweep(now sim.Time) {
	c.opsSince++
	if c.opsSince < c.sweepEvery {
		return
	}
	c.opsSince = 0
	if now == c.lastSweep {
		return
	}
	c.lastSweep = now
	for d, e := range c.entries {
		if now >= e.expires+c.StaleTTL {
			delete(c.entries, d)
			c.m.evictions.Inc()
		}
	}
	if c.m.entries != nil {
		c.m.entries.Set(float64(len(c.entries)))
	}
}

// idEntry is one slot of the ID fast path: a cached answer keyed by interned
// domain ID. id == symtab.None marks an empty slot.
type idEntry struct {
	id      symtab.ID
	nx      bool
	expires sim.Time
}

// idTable is a flat open-addressed (linear probing, power-of-two sized)
// answer table keyed by symtab.ID. It never deletes: overwrites reuse the
// slot, expired entries are skipped on read, and the key space is bounded by
// the trial's intern table, so memory stays bounded without tombstones.
type idTable struct {
	slots []idEntry
	mask  uint32
	used  int
}

// adopt installs a (zeroed, power-of-two sized) slot array.
func (t *idTable) adopt(slots []idEntry) {
	t.slots = slots
	t.mask = uint32(len(slots) - 1)
	t.used = 0
}

// surrender clears and detaches the slot array for return to a pool.
func (t *idTable) surrender() []idEntry {
	s := t.slots
	for i := range s {
		s[i] = idEntry{}
	}
	t.slots, t.mask, t.used = nil, 0, 0
	return s
}

// idHash spreads sequential dense IDs across slots (Fibonacci hashing).
func idHash(id symtab.ID) uint32 { return uint32(id) * 0x9e3779b1 }

func (t *idTable) get(id symtab.ID) (idEntry, bool) {
	if t.slots == nil || id == symtab.None {
		return idEntry{}, false
	}
	slot := idHash(id) & t.mask
	for {
		e := t.slots[slot]
		if e.id == symtab.None {
			return idEntry{}, false
		}
		if e.id == id {
			return e, true
		}
		slot = (slot + 1) & t.mask
	}
}

func (t *idTable) put(id symtab.ID, e idEntry) {
	if id == symtab.None {
		return
	}
	if t.slots == nil {
		// Post-Release use: fresh unpooled storage (see Cache.Release).
		t.adopt(make([]idEntry, 1024))
	}
	slot := idHash(id) & t.mask
	for {
		cur := &t.slots[slot]
		if cur.id == symtab.None {
			*cur = e
			t.used++
			if t.used*4 > len(t.slots)*3 {
				t.grow()
			}
			return
		}
		if cur.id == id {
			*cur = e
			return
		}
		slot = (slot + 1) & t.mask
	}
}

func (t *idTable) grow() {
	old := t.slots
	t.slots = make([]idEntry, len(old)*2)
	t.mask = uint32(len(t.slots) - 1)
	for _, e := range old {
		if e.id == symtab.None {
			continue
		}
		slot := idHash(e.id) & t.mask
		for t.slots[slot].id != symtab.None {
			slot = (slot + 1) & t.mask
		}
		t.slots[slot] = e
	}
}
