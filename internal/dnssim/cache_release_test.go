package dnssim

import (
	"testing"

	"botmeter/internal/sim"
	"botmeter/internal/symtab"
)

// Regression tests for the Release path: Release used to replace the pooled
// entry map with a fresh unpooled one, so every Release/Store cycle churned
// the shared pool with small maps. Release is now idempotent and leaves the
// cache usable-but-unpooled.

func TestCacheDoubleRelease(t *testing.T) {
	c := NewCache(100, 10)
	c.Store(0, "a.example", false)
	c.StoreID(0, 7, false)
	c.Release()
	if c.Len() != 0 {
		t.Fatalf("Len after Release = %d, want 0", c.Len())
	}
	// Second (and third) Release must be no-ops, not pool pollution.
	c.Release()
	c.Release()
	if c.Len() != 0 {
		t.Fatalf("Len after double Release = %d, want 0", c.Len())
	}
}

func TestCacheUseAfterRelease(t *testing.T) {
	c := NewCache(100, 10)
	c.Store(0, "a.example", false)
	c.StoreID(0, symtab.ID(9), true)
	c.Release()

	// Lookups after Release miss safely on both paths.
	if _, ok := c.Lookup(1, "a.example"); ok {
		t.Fatal("string lookup hit after Release")
	}
	if _, ok := c.LookupID(1, 9); ok {
		t.Fatal("ID lookup hit after Release")
	}

	// Stores after Release lazily re-allocate unpooled storage and the
	// cache behaves normally again.
	c.Store(2, "b.example", false)
	if ans, ok := c.Lookup(3, "b.example"); !ok || ans.NX {
		t.Fatalf("string path unusable after Release: ok=%v ans=%+v", ok, ans)
	}
	c.StoreID(2, 11, true)
	if ans, ok := c.LookupID(3, 11); !ok || !ans.NX {
		t.Fatalf("ID path unusable after Release: ok=%v ans=%+v", ok, ans)
	}

	// Releasing again keeps the unpooled storage out of the shared pools
	// and stays safe.
	c.Release()
	if ans, ok := c.Lookup(4, "b.example"); !ok || ans.NX {
		t.Fatalf("post-Release storage dropped by second Release: ok=%v ans=%+v", ok, ans)
	}
}

func TestCacheReleaseReturnsCleanStorage(t *testing.T) {
	// A released map handed to the next cache must not leak entries.
	c1 := NewCache(100, 10)
	for i := 0; i < 100; i++ {
		c1.Store(0, "leak.example", false)
		c1.StoreID(0, symtab.ID(i+1), false)
	}
	c1.Release()

	c2 := NewCache(100, 10)
	if _, ok := c2.Lookup(1, "leak.example"); ok {
		t.Fatal("recycled map leaked a string entry")
	}
	if _, ok := c2.LookupID(1, 5); ok {
		t.Fatal("recycled slots leaked an ID entry")
	}
	c2.Release()
}

// TestCacheIDStringParity drives both key paths through the same
// store/expiry/stale schedule and asserts identical answers.
func TestCacheIDStringParity(t *testing.T) {
	cs := NewCache(100, 10)
	ci := NewCache(100, 10)
	cs.StaleTTL = 50
	ci.StaleTTL = 50
	const d = "parity.example"
	const id = symtab.ID(3)

	type step struct {
		at    int64
		store bool
		nx    bool
		stale bool
	}
	steps := []step{
		{at: 0, store: true, nx: false},
		{at: 10},               // hit
		{at: 99},               // hit, about to expire
		{at: 100},              // expired -> miss
		{at: 120, stale: true}, // within StaleTTL -> stale hit
		{at: 151, stale: true}, // past stale horizon -> miss
		{at: 200, store: true, nx: true},
		{at: 205}, // negative hit
		{at: 211}, // negative expired -> miss
	}
	for i, st := range steps {
		now := sim.Time(st.at)
		if st.store {
			cs.Store(now, d, st.nx)
			ci.StoreID(now, id, st.nx)
			continue
		}
		var as, ai Answer
		var oks, oki bool
		if st.stale {
			as, oks = cs.LookupStale(now, d)
			ai, oki = ci.LookupStaleID(now, id)
		} else {
			as, oks = cs.Lookup(now, d)
			ai, oki = ci.LookupID(now, id)
		}
		if oks != oki || as != ai {
			t.Fatalf("step %d (t=%d): string path (%+v,%v) != ID path (%+v,%v)", i, st.at, as, oks, ai, oki)
		}
	}
}

func TestIDTableGrowth(t *testing.T) {
	c := NewCache(1000000, 1000000)
	const n = 5000 // forces several doublings past the pooled 1024 slots
	for i := 1; i <= n; i++ {
		c.StoreID(0, symtab.ID(i), i%3 == 0)
	}
	for i := 1; i <= n; i++ {
		ans, ok := c.LookupID(1, symtab.ID(i))
		if !ok {
			t.Fatalf("id %d lost after growth", i)
		}
		if ans.NX != (i%3 == 0) {
			t.Fatalf("id %d answer corrupted after growth", i)
		}
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	c.Release()
}
