package dnssim

import (
	"time"

	"botmeter/internal/obs"
)

// Metric families exported by the DNS hierarchy. Levels are "local", "mid"
// and "border" (one aggregated series per level, not per server — the
// hierarchy can hold thousands of locals).
const (
	MetricQueries     = "dnssim_queries_total"
	MetricForwarded   = "dnssim_forwarded_total"
	MetricRetries     = "dnssim_retries_total"
	MetricServFails   = "dnssim_servfails_total"
	MetricStaleServed = "dnssim_stale_served_total"
	MetricQuerySecs   = "dnssim_query_seconds"

	MetricCacheLookups   = "dnssim_cache_lookups_total"
	MetricCacheHits      = "dnssim_cache_hits_total"
	MetricCacheMisses    = "dnssim_cache_misses_total"
	MetricCacheStaleHits = "dnssim_cache_stale_hits_total"
	MetricCacheStores    = "dnssim_cache_stores_total"
	MetricCacheEvictions = "dnssim_cache_evictions_total"
	MetricCacheEntries   = "dnssim_cache_entries"

	MetricBorderObserved = "dnssim_border_observed_total"
)

// cacheMetrics carries the cache's pre-resolved instruments. The zero value
// (all nil) is the disabled state: obs instruments are nil-safe, so each
// uninstrumented increment is a single predictable branch.
type cacheMetrics struct {
	lookups   *obs.Counter
	hits      *obs.Counter
	misses    *obs.Counter
	staleHits *obs.Counter
	stores    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Gauge
}

// Instrument registers the cache's counters on reg under the given
// alternating label key/value pairs (typically "level", <tier>). A nil
// registry disables instrumentation. Safe to call before serving; not
// synchronised against concurrent cache use.
func (c *Cache) Instrument(reg *obs.Registry, labels ...string) {
	reg.Help(MetricCacheLookups, "Cache lookups, by hierarchy level.")
	reg.Help(MetricCacheHits, "Cache hits (fresh entries).")
	reg.Help(MetricCacheMisses, "Cache misses, including expired entries.")
	reg.Help(MetricCacheStaleHits, "Answers served from expired entries (RFC 8767 serve-stale).")
	reg.Help(MetricCacheStores, "Answers written to the cache.")
	reg.Help(MetricCacheEvictions, "Entries removed by expiry or sweep.")
	reg.Help(MetricCacheEntries, "Current cached entries, including not-yet-swept expired ones.")
	c.m = cacheMetrics{
		lookups:   reg.Counter(MetricCacheLookups, labels...),
		hits:      reg.Counter(MetricCacheHits, labels...),
		misses:    reg.Counter(MetricCacheMisses, labels...),
		staleHits: reg.Counter(MetricCacheStaleHits, labels...),
		stores:    reg.Counter(MetricCacheStores, labels...),
		evictions: reg.Counter(MetricCacheEvictions, labels...),
		entries:   reg.Gauge(MetricCacheEntries, labels...),
	}
}

// serverMetrics carries a caching server's pre-resolved instruments. Zero
// value = disabled. The latency histogram is guarded by an explicit nil
// check at the call site so the uninstrumented hot path never reads the
// wall clock.
type serverMetrics struct {
	queries     *obs.Counter
	forwarded   *obs.Counter
	retried     *obs.Counter
	servfails   *obs.Counter
	staleServed *obs.Counter
	latency     *obs.Histogram
}

// Instrument registers the server's counters and per-query wall-latency
// histogram on reg, labelled level=<level>. A nil registry disables
// instrumentation.
func (s *Server) Instrument(reg *obs.Registry, level string) {
	reg.Help(MetricQueries, "Client queries handled, by hierarchy level.")
	reg.Help(MetricForwarded, "Cache misses forwarded upstream.")
	reg.Help(MetricRetries, "Upstream retransmissions after failed attempts.")
	reg.Help(MetricServFails, "Client-visible SERVFAILs after retry exhaustion.")
	reg.Help(MetricStaleServed, "Stale answers served while the upstream was unreachable.")
	reg.Help(MetricQuerySecs, "Wall-clock seconds spent handling one query.")
	s.m = serverMetrics{
		queries:     reg.Counter(MetricQueries, "level", level),
		forwarded:   reg.Counter(MetricForwarded, "level", level),
		retried:     reg.Counter(MetricRetries, "level", level),
		servfails:   reg.Counter(MetricServFails, "level", level),
		staleServed: reg.Counter(MetricStaleServed, "level", level),
		latency:     reg.Histogram(MetricQuerySecs, obs.LatencyBuckets, "level", level),
	}
	s.cache.Instrument(reg, "level", level)
}

// observeLatency records one query's wall time; split out so the hot path
// stays branch-only when disabled.
func (m *serverMetrics) observeLatency(t0 time.Time) {
	m.latency.Observe(time.Since(t0).Seconds())
}

// Instrument registers the border's observed-lookup counter on reg. A nil
// registry disables instrumentation.
func (b *Border) Instrument(reg *obs.Registry) {
	reg.Help(MetricBorderObserved, "Forwarded lookups recorded at the border vantage point.")
	b.observedCtr = reg.Counter(MetricBorderObserved)
}
