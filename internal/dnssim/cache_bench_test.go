package dnssim

import (
	"fmt"
	"testing"

	"botmeter/internal/sim"
	"botmeter/internal/symtab"
)

// BenchmarkCacheLookupHitID vs BenchmarkCacheLookupHitString isolate what
// the ID kernel buys on the cache hot path: a steady-state hit via the flat
// open-addressed ID table against the same hit through the string map
// (per-lookup FNV over ~20-byte domain names plus map probing).

const benchCacheEntries = 4096

func benchDomains() []string {
	ds := make([]string, benchCacheEntries)
	for i := range ds {
		ds[i] = fmt.Sprintf("d%05x.dga.example.com", i)
	}
	return ds
}

func BenchmarkCacheLookupHitID(b *testing.B) {
	c := NewCache(1<<30, 1<<30)
	for i := 1; i <= benchCacheEntries; i++ {
		c.StoreID(0, symtab.ID(i), i%2 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := symtab.ID(i%benchCacheEntries + 1)
		if _, ok := c.LookupID(1, id); !ok {
			b.Fatal("unexpected miss")
		}
	}
	b.StopTimer()
	c.Release()
}

func BenchmarkCacheLookupHitString(b *testing.B) {
	c := NewCache(1<<30, 1<<30)
	ds := benchDomains()
	for i, d := range ds {
		c.Store(0, d, i%2 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup(1, ds[i%len(ds)]); !ok {
			b.Fatal("unexpected miss")
		}
	}
	b.StopTimer()
	c.Release()
}

func BenchmarkCacheStoreID(b *testing.B) {
	c := NewCache(1<<30, 1<<30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.StoreID(sim.Time(i), symtab.ID(i%benchCacheEntries+1), false)
	}
	b.StopTimer()
	c.Release()
}

func BenchmarkCacheStoreString(b *testing.B) {
	c := NewCache(1<<30, 1<<30)
	ds := benchDomains()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Store(sim.Time(i), ds[i%len(ds)], false)
	}
	b.StopTimer()
	c.Release()
}
