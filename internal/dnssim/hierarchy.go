package dnssim

import (
	"fmt"
	"sort"
	"time"

	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/symtab"
	"botmeter/internal/trace"
)

// Registry is the authoritative name space: the set of domains that
// currently resolve (registered C2 domains plus the benign zone). Everything
// else returns NXDomain.
//
// Domains registered with an interned symtab ID (RegisterIDs) are
// additionally tracked in a bitset so the hierarchy's ID fast path answers
// ResolvesID without hashing the domain string. String-only registrations
// (benign zones, external test names) keep full string-map semantics; the ID
// path falls back to the map only while such entries exist.
type Registry struct {
	// valid maps each registered domain to its interned ID (symtab.None for
	// string-only registrations).
	valid map[string]symtab.ID
	// bits is a growable bitset indexed by symtab ID.
	bits []uint64
	// stringOnly counts registrations without an ID; while zero, a bitset
	// miss on the ID path is authoritative.
	stringOnly int
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{valid: make(map[string]symtab.ID)}
}

// Register marks domains as resolving (string-only path).
func (r *Registry) Register(domains ...string) {
	for _, d := range domains {
		if _, ok := r.valid[d]; ok {
			continue // keep an existing (possibly ID-carrying) entry
		}
		r.valid[d] = symtab.None
		r.stringOnly++
	}
}

// RegisterIDs marks domains as resolving with their interned IDs. ids and
// domains are parallel; the string map is kept in sync so string-path
// lookups (Resolves) see the same zone.
func (r *Registry) RegisterIDs(ids []symtab.ID, domains []string) {
	for i, d := range domains {
		id := ids[i]
		if id == symtab.None {
			r.Register(d)
			continue
		}
		if prev, ok := r.valid[d]; ok && prev == symtab.None {
			r.stringOnly--
		}
		r.valid[d] = id
		r.setBit(id)
	}
}

// Unregister removes domains (a takedown or expiry).
func (r *Registry) Unregister(domains ...string) {
	for _, d := range domains {
		id, ok := r.valid[d]
		if !ok {
			continue
		}
		if id == symtab.None {
			r.stringOnly--
		} else {
			r.clearBit(id)
		}
		delete(r.valid, d)
	}
}

// Resolves reports whether domain currently resolves.
func (r *Registry) Resolves(domain string) bool {
	_, ok := r.valid[domain]
	return ok
}

// ResolvesID is the ID fast path of Resolves. id == symtab.None (an
// external / uninterned name) always defers to the string map; otherwise a
// bitset hit is authoritative, and a miss only consults the map while
// string-only registrations exist.
func (r *Registry) ResolvesID(id symtab.ID, domain string) bool {
	if id != symtab.None {
		if r.bit(id) {
			return true
		}
		if r.stringOnly == 0 {
			return false
		}
	}
	return r.Resolves(domain)
}

func (r *Registry) setBit(id symtab.ID) {
	w := int(id >> 6)
	for len(r.bits) <= w {
		r.bits = append(r.bits, 0)
	}
	r.bits[w] |= 1 << (id & 63)
}

func (r *Registry) clearBit(id symtab.ID) {
	w := int(id >> 6)
	if w < len(r.bits) {
		r.bits[w] &^= 1 << (id & 63)
	}
}

func (r *Registry) bit(id symtab.ID) bool {
	w := int(id >> 6)
	return w < len(r.bits) && r.bits[w]&(1<<(id&63)) != 0
}

// Size returns the number of registered domains.
func (r *Registry) Size() int { return len(r.valid) }

// Upstream resolves queries forwarded by a downstream server. The forwarder
// argument names the immediate child doing the forwarding, which is what a
// vantage point records.
type Upstream interface {
	Resolve(now sim.Time, forwarder, domain string) Answer
}

// UpstreamID is the ID fast path of Upstream: the query carries both the
// domain string (for trace emission — the vantage point always records real
// names) and its interned symtab ID (for O(1) registry/cache work).
// id == symtab.None must behave exactly like Resolve. Border, Server and
// faults.FaultyUpstream all implement it; a wrapper that doesn't simply
// drops the fast path back to strings.
type UpstreamID interface {
	Upstream
	ResolveID(now sim.Time, forwarder, domain string, id symtab.ID) Answer
}

// Border is the border DNS server and vantage point: it answers from the
// registry and records every forwarded lookup it receives as the observable
// dataset. Timestamps are coarsened to Granularity (0 = full fidelity).
type Border struct {
	ID          string
	Granularity sim.Time

	registry *Registry
	// The observable dataset accumulates in fixed-size chunks
	// (trace.Builder) rather than one append-grown slice: at multi-million-
	// record scale, slice growth re-copies the whole prefix repeatedly and
	// leaves the stale arrays to the GC. Observed flattens once on demand
	// and caches the result until the next record arrives.
	observed     trace.Builder
	observedFlat trace.Observed // cached flatten; nil after any append
	observedCtr  *obs.Counter
}

// NewBorder builds a border server over the given registry.
func NewBorder(id string, registry *Registry) *Border {
	return &Border{ID: id, registry: registry}
}

// Resolve implements Upstream: record, then answer authoritatively.
func (b *Border) Resolve(now sim.Time, forwarder, domain string) Answer {
	return b.ResolveID(now, forwarder, domain, symtab.None)
}

// ResolveID implements UpstreamID: the observed record keeps the real domain
// string (traces and artifacts are byte-identical with or without IDs) and
// additionally carries the ID for in-process consumers.
func (b *Border) ResolveID(now sim.Time, forwarder, domain string, id symtab.ID) Answer {
	b.observedCtr.Inc()
	b.observed.Append(trace.ObservedRecord{
		T:      now.Truncate(b.Granularity),
		Server: forwarder,
		Domain: domain,
		ID:     id,
	})
	b.observedFlat = nil
	return Answer{NX: !b.registry.ResolvesID(id, domain)}
}

// Observed returns the vantage-point dataset collected so far as one
// contiguous slice (flattened once and cached; records keep their emission
// order). Callers must treat the result as read-only up to its length —
// appending to it is safe, mutating elements would corrupt the cache.
func (b *Border) Observed() trace.Observed {
	if b.observedFlat == nil && b.observed.Len() > 0 {
		b.observedFlat = b.observed.Build()
	}
	return b.observedFlat
}

// ResetObserved clears the collected dataset (between experiment trials).
func (b *Border) ResetObserved() {
	b.observed, b.observedFlat = trace.Builder{}, nil
}

// Server is a caching-and-forwarding DNS server. It serves answers from its
// cache and forwards misses to its upstream — a Border or another Server
// (mid-tier), enabling arbitrary-depth hierarchies. Resilience knobs
// (MaxRetries, ServeStale) govern how it degrades when the upstream fails;
// by default a failed resolve is surfaced as a ServFail answer, uncached.
type Server struct {
	ID string

	// MaxRetries is how many times a ServFail resolve is re-attempted
	// before giving up (0 = single attempt, the pre-hardening behaviour).
	MaxRetries int
	// ServeStale answers from expired cache entries (within the cache's
	// StaleTTL) when every attempt fails — RFC 8767 graceful degradation.
	ServeStale bool

	cache    *Cache
	upstream Upstream
	// upID is upstream's ID fast path when it offers one (cached type
	// assertion; nil otherwise).
	upID UpstreamID

	queries     int
	forwarded   int
	retried     int
	servfails   int
	staleServed int

	// m holds the optional obs instruments (see Instrument); the zero
	// value is disabled and costs one branch per event.
	m serverMetrics
}

// NewServer builds a caching server with the given TTLs and upstream.
func NewServer(id string, positiveTTL, negativeTTL sim.Time, upstream Upstream) *Server {
	s := &Server{ID: id, cache: NewCache(positiveTTL, negativeTTL), upstream: upstream}
	s.upID, _ = upstream.(UpstreamID)
	return s
}

// Cache exposes the server's cache (to configure StaleTTL, inspect hit
// rates, …).
func (s *Server) Cache() *Cache { return s.cache }

// Query handles a client lookup at virtual time now and returns the answer
// the client sees.
func (s *Server) Query(now sim.Time, domain string) Answer {
	return s.QueryID(now, domain, symtab.None)
}

// QueryID is the ID fast path of Query: when id carries an interned symtab
// ID the cache consults its flat ID table and the upstream (when it
// implements UpstreamID) receives the (domain, id) pair, so the whole
// simulate→cache path does no string hashing. id == symtab.None takes
// exactly the string paths of Query.
func (s *Server) QueryID(now sim.Time, domain string, id symtab.ID) Answer {
	s.queries++
	s.m.queries.Inc()
	// The latency histogram is the one instrument that would make the
	// disabled path pay for a clock read, so it is guarded explicitly.
	if s.m.latency != nil {
		defer s.m.observeLatency(time.Now())
	}
	useID := id != symtab.None
	if useID {
		if ans, ok := s.cache.LookupID(now, id); ok {
			return ans
		}
	} else if ans, ok := s.cache.Lookup(now, domain); ok {
		return ans
	}
	s.forwarded++
	s.m.forwarded.Inc()
	ans := s.resolveUpstream(now, domain, id)
	for attempt := 0; ans.ServFail && attempt < s.MaxRetries; attempt++ {
		s.retried++
		s.m.retried.Inc()
		ans = s.resolveUpstream(now, domain, id)
	}
	if ans.ServFail {
		if s.ServeStale {
			var stale Answer
			var ok bool
			if useID {
				stale, ok = s.cache.LookupStaleID(now, id)
			} else {
				stale, ok = s.cache.LookupStale(now, domain)
			}
			if ok {
				s.staleServed++
				s.m.staleServed.Inc()
				return stale
			}
		}
		s.servfails++
		s.m.servfails.Inc()
		return Answer{ServFail: true}
	}
	if useID {
		s.cache.StoreID(now, id, ans.NX)
	} else {
		s.cache.Store(now, domain, ans.NX)
	}
	return Answer{NX: ans.NX}
}

// resolveUpstream forwards one attempt, preferring the upstream's ID fast
// path when both sides can use it.
func (s *Server) resolveUpstream(now sim.Time, domain string, id symtab.ID) Answer {
	if id != symtab.None && s.upID != nil {
		return s.upID.ResolveID(now, s.ID, domain, id)
	}
	return s.upstream.Resolve(now, s.ID, domain)
}

// Resolve implements Upstream so a Server can act as a mid-tier: a miss is
// forwarded upward under this server's own identity.
func (s *Server) Resolve(now sim.Time, _ string, domain string) Answer {
	ans := s.Query(now, domain)
	ans.CacheHit = false
	return ans
}

// ResolveID implements UpstreamID for mid-tier servers: the (domain, id)
// pair is forwarded upward under this server's own identity.
func (s *Server) ResolveID(now sim.Time, _ string, domain string, id symtab.ID) Answer {
	ans := s.QueryID(now, domain, id)
	ans.CacheHit = false
	return ans
}

// Stats reports query and forward counters.
func (s *Server) Stats() (queries, forwarded int) { return s.queries, s.forwarded }

// ResilienceStats reports the degradation counters: upstream retries,
// client-visible SERVFAILs and stale answers served.
func (s *Server) ResilienceStats() (retried, servfails, staleServed int) {
	return s.retried, s.servfails, s.staleServed
}

// CacheHitRate exposes the underlying cache hit rate.
func (s *Server) CacheHitRate() float64 { return s.cache.HitRate() }

// Network wires a complete two- or three-level hierarchy: a border server
// plus a set of local servers (optionally behind mid-tier servers) and a
// client→local-server assignment.
type Network struct {
	Border   *Border
	Registry *Registry

	locals      map[string]*Server
	localOrder  []string
	mids        []*Server
	clientHome  map[string]string
	rawRecorder trace.Raw
	recordRaw   bool

	// idTable is the intern table this network's ID space is bound to (see
	// BindTable). symtab IDs are only unique within one table, so the
	// registry bitset and every tier's ID-keyed cache are coherent only for
	// IDs drawn from a single table.
	idTable *symtab.Table
}

// NetworkConfig sizes a simulated network.
type NetworkConfig struct {
	// LocalServers is the number of local DNS servers.
	LocalServers int
	// MidTierFanIn, when > 0, inserts one mid-tier caching server per
	// MidTierFanIn local servers (three-level hierarchy).
	MidTierFanIn int
	// PositiveTTL and NegativeTTL configure every cache in the hierarchy.
	PositiveTTL, NegativeTTL sim.Time
	// Granularity coarsens vantage-point timestamps (0 = none).
	Granularity sim.Time
	// RecordRaw captures the client-level raw dataset (ground truth).
	RecordRaw bool
	// WrapUpstream, when set, decorates the border before wiring it to the
	// downstream tiers — the hook through which faults.NewFaultyUpstream
	// injects a degraded local→border link without dnssim depending on the
	// faults package.
	WrapUpstream func(Upstream) Upstream
	// MaxRetries / ServeStale / StaleTTL configure every caching server's
	// resilience policy (see Server and Cache.StaleTTL).
	MaxRetries int
	ServeStale bool
	StaleTTL   sim.Time
	// Obs, when non-nil, instruments every tier of the hierarchy on the
	// registry: per-level query/cache/degradation counters, per-level
	// wall-latency histograms and the border's observed-lookup counter.
	// Nil (the default) keeps the query hot path instrument-free.
	Obs *obs.Registry
}

// NewNetwork builds the hierarchy. Local servers are named "local-00",
// "local-01", …; mid-tiers "mid-00", ….
func NewNetwork(cfg NetworkConfig) *Network {
	if cfg.LocalServers <= 0 {
		cfg.LocalServers = 1
	}
	registry := NewRegistry()
	border := NewBorder("border", registry)
	border.Granularity = cfg.Granularity
	if cfg.Obs != nil {
		border.Instrument(cfg.Obs)
	}
	n := &Network{
		Border:     border,
		Registry:   registry,
		locals:     make(map[string]*Server, cfg.LocalServers),
		clientHome: make(map[string]string),
		recordRaw:  cfg.RecordRaw,
	}
	var upstreamBorder Upstream = border
	if cfg.WrapUpstream != nil {
		upstreamBorder = cfg.WrapUpstream(border)
	}
	harden := func(s *Server) *Server {
		s.MaxRetries = cfg.MaxRetries
		s.ServeStale = cfg.ServeStale
		s.cache.StaleTTL = cfg.StaleTTL
		return s
	}
	var mids []*Server
	if cfg.MidTierFanIn > 0 {
		numMid := (cfg.LocalServers + cfg.MidTierFanIn - 1) / cfg.MidTierFanIn
		for i := 0; i < numMid; i++ {
			mid := harden(NewServer(fmt.Sprintf("mid-%02d", i), cfg.PositiveTTL, cfg.NegativeTTL, upstreamBorder))
			if cfg.Obs != nil {
				mid.Instrument(cfg.Obs, "mid")
			}
			mids = append(mids, mid)
		}
	}
	n.mids = mids
	for i := 0; i < cfg.LocalServers; i++ {
		id := fmt.Sprintf("local-%02d", i)
		up := upstreamBorder
		if len(mids) > 0 {
			up = mids[i/cfg.MidTierFanIn]
		}
		local := harden(NewServer(id, cfg.PositiveTTL, cfg.NegativeTTL, up))
		if cfg.Obs != nil {
			local.Instrument(cfg.Obs, "local")
		}
		n.locals[id] = local
		n.localOrder = append(n.localOrder, id)
	}
	return n
}

// BindTable claims the network's ID space for tab. Dense symtab IDs are
// only unique within one intern table, so all ID-carrying traffic into one
// hierarchy (registry registrations, cache keys, client queries) must come
// from a single table — otherwise two families' unrelated domains could
// collide on the same uint32 and falsely share cache entries or registry
// bits. The first bound table wins: BindTable reports true when tab is now
// (or already was) the network's table, false when a different table is
// already bound, in which case the caller must take the string paths
// (pass symtab.None) for all its traffic on this network.
func (n *Network) BindTable(tab *symtab.Table) bool {
	if tab == nil {
		return false
	}
	if n.idTable == nil {
		n.idTable = tab
		return true
	}
	return n.idTable == tab
}

// Table returns the intern table the network's ID space is bound to (nil
// until the first successful BindTable).
func (n *Network) Table() *symtab.Table { return n.idTable }

// LocalIDs returns the local server names in creation order.
func (n *Network) LocalIDs() []string {
	out := make([]string, len(n.localOrder))
	copy(out, n.localOrder)
	return out
}

// Local returns the named local server.
func (n *Network) Local(id string) (*Server, bool) {
	s, ok := n.locals[id]
	return s, ok
}

// AssignClient homes a client on a local server; subsequent ClientQuery
// calls for that client go through it.
func (n *Network) AssignClient(client, localID string) error {
	if _, ok := n.locals[localID]; !ok {
		return fmt.Errorf("dnssim: unknown local server %q", localID)
	}
	n.clientHome[client] = localID
	return nil
}

// HomeOf returns the local server a client is assigned to.
func (n *Network) HomeOf(client string) (string, bool) {
	id, ok := n.clientHome[client]
	return id, ok
}

// ClientQuery issues a lookup from a client through its home local server.
// Unassigned clients are homed deterministically by hash.
func (n *Network) ClientQuery(now sim.Time, client, domain string) (Answer, error) {
	return n.ClientQueryID(now, client, domain, symtab.None)
}

// ClientQueryID is the ID fast path of ClientQuery: the (domain, id) pair
// fans out through the home local server so every tier can use its ID-keyed
// cache and the border's registry bitset. id == symtab.None behaves exactly
// like ClientQuery.
func (n *Network) ClientQueryID(now sim.Time, client, domain string, id symtab.ID) (Answer, error) {
	home, ok := n.clientHome[client]
	if !ok {
		home = n.localOrder[fnv32(client)%uint32(len(n.localOrder))]
		n.clientHome[client] = home
	}
	srv := n.locals[home]
	ans := srv.QueryID(now, domain, id)
	if n.recordRaw {
		n.rawRecorder = append(n.rawRecorder, trace.RawRecord{
			T: now, Client: client, Server: home, Domain: domain, NX: ans.NX,
		})
	}
	return ans, nil
}

// Raw returns the recorded client-level dataset (empty unless RecordRaw).
func (n *Network) Raw() trace.Raw { return n.rawRecorder }

// ResetTraces clears both raw and observed datasets.
func (n *Network) ResetTraces() {
	n.rawRecorder = nil
	n.Border.ResetObserved()
}

// ReleaseCaches returns every tier's cache-entry map to the shared pool.
// Call it once a simulation is done and the hierarchy will not answer
// further queries (the servers stay usable, but their caches start cold).
// Experiment trials call this after capturing Border.Observed() so the
// next trial's hierarchy reuses the grown maps instead of reallocating.
func (n *Network) ReleaseCaches() {
	for _, id := range n.localOrder {
		n.locals[id].cache.Release()
	}
	for _, mid := range n.mids {
		mid.cache.Release()
	}
}

// SortedClientHomes returns clients sorted by name with their home servers,
// for deterministic reporting.
func (n *Network) SortedClientHomes() []ClientHome {
	out := make([]ClientHome, 0, len(n.clientHome))
	for c, h := range n.clientHome {
		out = append(out, ClientHome{Client: c, Server: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// ClientHome pairs a client with its home local server.
type ClientHome struct {
	Client, Server string
}

// fnv32 is a small deterministic hash for default client homing.
func fnv32(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}
