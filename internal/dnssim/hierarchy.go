package dnssim

import (
	"fmt"
	"sort"
	"time"

	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// Registry is the authoritative name space: the set of domains that
// currently resolve (registered C2 domains plus the benign zone). Everything
// else returns NXDomain.
type Registry struct {
	valid map[string]struct{}
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{valid: make(map[string]struct{})}
}

// Register marks domains as resolving.
func (r *Registry) Register(domains ...string) {
	for _, d := range domains {
		r.valid[d] = struct{}{}
	}
}

// Unregister removes domains (a takedown or expiry).
func (r *Registry) Unregister(domains ...string) {
	for _, d := range domains {
		delete(r.valid, d)
	}
}

// Resolves reports whether domain currently resolves.
func (r *Registry) Resolves(domain string) bool {
	_, ok := r.valid[domain]
	return ok
}

// Size returns the number of registered domains.
func (r *Registry) Size() int { return len(r.valid) }

// Upstream resolves queries forwarded by a downstream server. The forwarder
// argument names the immediate child doing the forwarding, which is what a
// vantage point records.
type Upstream interface {
	Resolve(now sim.Time, forwarder, domain string) Answer
}

// Border is the border DNS server and vantage point: it answers from the
// registry and records every forwarded lookup it receives as the observable
// dataset. Timestamps are coarsened to Granularity (0 = full fidelity).
type Border struct {
	ID          string
	Granularity sim.Time

	registry    *Registry
	observed    trace.Observed
	observedCtr *obs.Counter
}

// NewBorder builds a border server over the given registry.
func NewBorder(id string, registry *Registry) *Border {
	return &Border{ID: id, registry: registry}
}

// Resolve implements Upstream: record, then answer authoritatively.
func (b *Border) Resolve(now sim.Time, forwarder, domain string) Answer {
	b.observedCtr.Inc()
	b.observed = append(b.observed, trace.ObservedRecord{
		T:      now.Truncate(b.Granularity),
		Server: forwarder,
		Domain: domain,
	})
	return Answer{NX: !b.registry.Resolves(domain)}
}

// Observed returns the vantage-point dataset collected so far.
func (b *Border) Observed() trace.Observed { return b.observed }

// ResetObserved clears the collected dataset (between experiment trials).
func (b *Border) ResetObserved() { b.observed = nil }

// Server is a caching-and-forwarding DNS server. It serves answers from its
// cache and forwards misses to its upstream — a Border or another Server
// (mid-tier), enabling arbitrary-depth hierarchies. Resilience knobs
// (MaxRetries, ServeStale) govern how it degrades when the upstream fails;
// by default a failed resolve is surfaced as a ServFail answer, uncached.
type Server struct {
	ID string

	// MaxRetries is how many times a ServFail resolve is re-attempted
	// before giving up (0 = single attempt, the pre-hardening behaviour).
	MaxRetries int
	// ServeStale answers from expired cache entries (within the cache's
	// StaleTTL) when every attempt fails — RFC 8767 graceful degradation.
	ServeStale bool

	cache    *Cache
	upstream Upstream

	queries     int
	forwarded   int
	retried     int
	servfails   int
	staleServed int

	// m holds the optional obs instruments (see Instrument); the zero
	// value is disabled and costs one branch per event.
	m serverMetrics
}

// NewServer builds a caching server with the given TTLs and upstream.
func NewServer(id string, positiveTTL, negativeTTL sim.Time, upstream Upstream) *Server {
	return &Server{ID: id, cache: NewCache(positiveTTL, negativeTTL), upstream: upstream}
}

// Cache exposes the server's cache (to configure StaleTTL, inspect hit
// rates, …).
func (s *Server) Cache() *Cache { return s.cache }

// Query handles a client lookup at virtual time now and returns the answer
// the client sees.
func (s *Server) Query(now sim.Time, domain string) Answer {
	s.queries++
	s.m.queries.Inc()
	// The latency histogram is the one instrument that would make the
	// disabled path pay for a clock read, so it is guarded explicitly.
	if s.m.latency != nil {
		defer s.m.observeLatency(time.Now())
	}
	if ans, ok := s.cache.Lookup(now, domain); ok {
		return ans
	}
	s.forwarded++
	s.m.forwarded.Inc()
	ans := s.upstream.Resolve(now, s.ID, domain)
	for attempt := 0; ans.ServFail && attempt < s.MaxRetries; attempt++ {
		s.retried++
		s.m.retried.Inc()
		ans = s.upstream.Resolve(now, s.ID, domain)
	}
	if ans.ServFail {
		if s.ServeStale {
			if stale, ok := s.cache.LookupStale(now, domain); ok {
				s.staleServed++
				s.m.staleServed.Inc()
				return stale
			}
		}
		s.servfails++
		s.m.servfails.Inc()
		return Answer{ServFail: true}
	}
	s.cache.Store(now, domain, ans.NX)
	return Answer{NX: ans.NX}
}

// Resolve implements Upstream so a Server can act as a mid-tier: a miss is
// forwarded upward under this server's own identity.
func (s *Server) Resolve(now sim.Time, _ string, domain string) Answer {
	ans := s.Query(now, domain)
	ans.CacheHit = false
	return ans
}

// Stats reports query and forward counters.
func (s *Server) Stats() (queries, forwarded int) { return s.queries, s.forwarded }

// ResilienceStats reports the degradation counters: upstream retries,
// client-visible SERVFAILs and stale answers served.
func (s *Server) ResilienceStats() (retried, servfails, staleServed int) {
	return s.retried, s.servfails, s.staleServed
}

// CacheHitRate exposes the underlying cache hit rate.
func (s *Server) CacheHitRate() float64 { return s.cache.HitRate() }

// Network wires a complete two- or three-level hierarchy: a border server
// plus a set of local servers (optionally behind mid-tier servers) and a
// client→local-server assignment.
type Network struct {
	Border   *Border
	Registry *Registry

	locals      map[string]*Server
	localOrder  []string
	mids        []*Server
	clientHome  map[string]string
	rawRecorder trace.Raw
	recordRaw   bool
}

// NetworkConfig sizes a simulated network.
type NetworkConfig struct {
	// LocalServers is the number of local DNS servers.
	LocalServers int
	// MidTierFanIn, when > 0, inserts one mid-tier caching server per
	// MidTierFanIn local servers (three-level hierarchy).
	MidTierFanIn int
	// PositiveTTL and NegativeTTL configure every cache in the hierarchy.
	PositiveTTL, NegativeTTL sim.Time
	// Granularity coarsens vantage-point timestamps (0 = none).
	Granularity sim.Time
	// RecordRaw captures the client-level raw dataset (ground truth).
	RecordRaw bool
	// WrapUpstream, when set, decorates the border before wiring it to the
	// downstream tiers — the hook through which faults.NewFaultyUpstream
	// injects a degraded local→border link without dnssim depending on the
	// faults package.
	WrapUpstream func(Upstream) Upstream
	// MaxRetries / ServeStale / StaleTTL configure every caching server's
	// resilience policy (see Server and Cache.StaleTTL).
	MaxRetries int
	ServeStale bool
	StaleTTL   sim.Time
	// Obs, when non-nil, instruments every tier of the hierarchy on the
	// registry: per-level query/cache/degradation counters, per-level
	// wall-latency histograms and the border's observed-lookup counter.
	// Nil (the default) keeps the query hot path instrument-free.
	Obs *obs.Registry
}

// NewNetwork builds the hierarchy. Local servers are named "local-00",
// "local-01", …; mid-tiers "mid-00", ….
func NewNetwork(cfg NetworkConfig) *Network {
	if cfg.LocalServers <= 0 {
		cfg.LocalServers = 1
	}
	registry := NewRegistry()
	border := NewBorder("border", registry)
	border.Granularity = cfg.Granularity
	if cfg.Obs != nil {
		border.Instrument(cfg.Obs)
	}
	n := &Network{
		Border:     border,
		Registry:   registry,
		locals:     make(map[string]*Server, cfg.LocalServers),
		clientHome: make(map[string]string),
		recordRaw:  cfg.RecordRaw,
	}
	var upstreamBorder Upstream = border
	if cfg.WrapUpstream != nil {
		upstreamBorder = cfg.WrapUpstream(border)
	}
	harden := func(s *Server) *Server {
		s.MaxRetries = cfg.MaxRetries
		s.ServeStale = cfg.ServeStale
		s.cache.StaleTTL = cfg.StaleTTL
		return s
	}
	var mids []*Server
	if cfg.MidTierFanIn > 0 {
		numMid := (cfg.LocalServers + cfg.MidTierFanIn - 1) / cfg.MidTierFanIn
		for i := 0; i < numMid; i++ {
			mid := harden(NewServer(fmt.Sprintf("mid-%02d", i), cfg.PositiveTTL, cfg.NegativeTTL, upstreamBorder))
			if cfg.Obs != nil {
				mid.Instrument(cfg.Obs, "mid")
			}
			mids = append(mids, mid)
		}
	}
	n.mids = mids
	for i := 0; i < cfg.LocalServers; i++ {
		id := fmt.Sprintf("local-%02d", i)
		up := upstreamBorder
		if len(mids) > 0 {
			up = mids[i/cfg.MidTierFanIn]
		}
		local := harden(NewServer(id, cfg.PositiveTTL, cfg.NegativeTTL, up))
		if cfg.Obs != nil {
			local.Instrument(cfg.Obs, "local")
		}
		n.locals[id] = local
		n.localOrder = append(n.localOrder, id)
	}
	return n
}

// LocalIDs returns the local server names in creation order.
func (n *Network) LocalIDs() []string {
	out := make([]string, len(n.localOrder))
	copy(out, n.localOrder)
	return out
}

// Local returns the named local server.
func (n *Network) Local(id string) (*Server, bool) {
	s, ok := n.locals[id]
	return s, ok
}

// AssignClient homes a client on a local server; subsequent ClientQuery
// calls for that client go through it.
func (n *Network) AssignClient(client, localID string) error {
	if _, ok := n.locals[localID]; !ok {
		return fmt.Errorf("dnssim: unknown local server %q", localID)
	}
	n.clientHome[client] = localID
	return nil
}

// HomeOf returns the local server a client is assigned to.
func (n *Network) HomeOf(client string) (string, bool) {
	id, ok := n.clientHome[client]
	return id, ok
}

// ClientQuery issues a lookup from a client through its home local server.
// Unassigned clients are homed deterministically by hash.
func (n *Network) ClientQuery(now sim.Time, client, domain string) (Answer, error) {
	home, ok := n.clientHome[client]
	if !ok {
		home = n.localOrder[fnv32(client)%uint32(len(n.localOrder))]
		n.clientHome[client] = home
	}
	srv := n.locals[home]
	ans := srv.Query(now, domain)
	if n.recordRaw {
		n.rawRecorder = append(n.rawRecorder, trace.RawRecord{
			T: now, Client: client, Server: home, Domain: domain, NX: ans.NX,
		})
	}
	return ans, nil
}

// Raw returns the recorded client-level dataset (empty unless RecordRaw).
func (n *Network) Raw() trace.Raw { return n.rawRecorder }

// ResetTraces clears both raw and observed datasets.
func (n *Network) ResetTraces() {
	n.rawRecorder = nil
	n.Border.ResetObserved()
}

// ReleaseCaches returns every tier's cache-entry map to the shared pool.
// Call it once a simulation is done and the hierarchy will not answer
// further queries (the servers stay usable, but their caches start cold).
// Experiment trials call this after capturing Border.Observed() so the
// next trial's hierarchy reuses the grown maps instead of reallocating.
func (n *Network) ReleaseCaches() {
	for _, id := range n.localOrder {
		n.locals[id].cache.Release()
	}
	for _, mid := range n.mids {
		mid.cache.Release()
	}
}

// SortedClientHomes returns clients sorted by name with their home servers,
// for deterministic reporting.
func (n *Network) SortedClientHomes() []ClientHome {
	out := make([]ClientHome, 0, len(n.clientHome))
	for c, h := range n.clientHome {
		out = append(out, ClientHome{Client: c, Server: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// ClientHome pairs a client with its home local server.
type ClientHome struct {
	Client, Server string
}

// fnv32 is a small deterministic hash for default client homing.
func fnv32(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}
