package dnssim

import (
	"fmt"
	"testing"

	"botmeter/internal/sim"
)

func BenchmarkCacheLookupHit(b *testing.B) {
	c := NewCache(sim.Day, 2*sim.Hour)
	for i := 0; i < 1000; i++ {
		c.Store(0, fmt.Sprintf("d%04d.com", i), true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(sim.Hour, fmt.Sprintf("d%04d.com", i%1000))
	}
}

func BenchmarkCacheLookupMiss(b *testing.B) {
	c := NewCache(sim.Day, 2*sim.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(sim.Hour, "absent.com")
	}
}

func BenchmarkClientQueryThroughHierarchy(b *testing.B) {
	n := NewNetwork(NetworkConfig{
		LocalServers: 8,
		MidTierFanIn: 4,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client := fmt.Sprintf("10.0.0.%d", i%200)
		domain := fmt.Sprintf("q%05d.com", i%5000)
		if _, err := n.ClientQuery(sim.Time(i), client, domain); err != nil {
			b.Fatal(err)
		}
	}
}
