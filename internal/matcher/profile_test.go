package matcher

import (
	"testing"

	"botmeter/internal/dga"
	"botmeter/internal/sim"
)

func TestFromSpecMatchesOwnFamilyOutput(t *testing.T) {
	for _, name := range dga.FamilyNames() {
		spec, err := dga.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := FromSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pool := spec.Pool.PoolFor(7, 0)
		misses := 0
		for _, d := range pool.Domains[:min(200, len(pool.Domains))] {
			if !p.Match(d) {
				misses++
			}
		}
		if misses > 0 {
			t.Errorf("%s: structural matcher missed %d of its own domains", name, misses)
		}
	}
}

func TestProfilesDistinguishFamilies(t *testing.T) {
	// A Ranbyus structural matcher (fixed length 14, ccTLDs) must reject
	// Conficker output (4–10 chars, gTLDs) entirely.
	ranbyus, err := FromSpec(dga.Ranbyus())
	if err != nil {
		t.Fatal(err)
	}
	pool := dga.ConfickerC().Pool.PoolFor(1, 0)
	for _, d := range pool.Domains[:500] {
		if ranbyus.Match(d) {
			t.Fatalf("Ranbyus profile matched Conficker domain %q", d)
		}
	}
}

func TestFromGeneratorDefaults(t *testing.T) {
	p, err := FromGenerator("zero", dga.Generator{})
	if err != nil {
		t.Fatal(err)
	}
	var zero dga.Generator
	for i := 0; i < 50; i++ {
		d := zero.Generate(sim.NewRNG(uint64(i)))
		if !p.Match(d) {
			t.Errorf("zero-value profile should match zero-value generator output %q", d)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
