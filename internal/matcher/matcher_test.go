package matcher

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSetMatcher(t *testing.T) {
	m := NewSet("fam", []string{"Evil.COM", "bad.net."})
	tests := []struct {
		domain string
		want   bool
	}{
		{"evil.com", true},
		{"EVIL.com", true},
		{"evil.com.", true},
		{"bad.net", true},
		{"good.com", false},
		{"", false},
	}
	for _, tt := range tests {
		if got := m.Match(tt.domain); got != tt.want {
			t.Errorf("Match(%q) = %v, want %v", tt.domain, got, tt.want)
		}
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
	m.Add("new.org")
	if !m.Match("new.org") || m.Len() != 3 {
		t.Error("Add failed")
	}
	if m.Name() != "fam" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestPatternMatcher(t *testing.T) {
	p, err := NewPattern("fam", "abcdef", 4, 8, []string{"com", "NET"})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		domain string
		want   bool
	}{
		{"abcd.com", true},
		{"abcdef.net", true},
		{"ABCD.COM", true},
		{"abc.com", false},       // too short
		{"abcdefabc.com", false}, // too long
		{"abcz.com", false},      // z outside charset
		{"abcd.org", false},      // TLD not allowed
		{"abcd", false},          // no TLD
		{".com", false},          // empty name
	}
	for _, tt := range tests {
		if got := p.Match(tt.domain); got != tt.want {
			t.Errorf("Match(%q) = %v, want %v", tt.domain, got, tt.want)
		}
	}
}

func TestPatternValidation(t *testing.T) {
	if _, err := NewPattern("x", "", 1, 2, nil); err == nil {
		t.Error("empty charset should fail")
	}
	if _, err := NewPattern("x", "ab", 0, 2, nil); err == nil {
		t.Error("zero min length should fail")
	}
	if _, err := NewPattern("x", "ab", 5, 2, nil); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestPatternNoTLDRestriction(t *testing.T) {
	p, err := NewPattern("x", "ab", 2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Match("abab.unusual") {
		t.Error("empty TLD list should accept any TLD")
	}
}

func TestMultiMatcher(t *testing.T) {
	m := NewMulti()
	m.Register(NewSet("alpha", []string{"a.com"}))
	m.Register(NewSet("beta", []string{"b.com"}))
	if fam, ok := m.MatchAny("a.com"); !ok || fam != "alpha" {
		t.Errorf("MatchAny(a.com) = %q, %v", fam, ok)
	}
	if fam, ok := m.MatchAny("b.com"); !ok || fam != "beta" {
		t.Errorf("MatchAny(b.com) = %q, %v", fam, ok)
	}
	if _, ok := m.MatchAny("c.com"); ok {
		t.Error("unmatched domain should return false")
	}
	fams := m.Families()
	if len(fams) != 2 || fams[0] != "alpha" || fams[1] != "beta" {
		t.Errorf("Families = %v", fams)
	}
	if _, ok := m.Get("alpha"); !ok {
		t.Error("Get(alpha) failed")
	}
	// Re-registering replaces without duplicating.
	m.Register(NewSet("alpha", []string{"a2.com"}))
	if len(m.Families()) != 2 {
		t.Error("re-registration duplicated family")
	}
	if fam, ok := m.MatchAny("a2.com"); !ok || fam != "alpha" {
		t.Error("replacement matcher not in effect")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	domains := make([]string, 2000)
	for i := range domains {
		domains[i] = fmt.Sprintf("domain-%06d.com", i)
	}
	b, err := NewBloom("fam", domains, len(domains), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range domains {
		if !b.Match(d) {
			t.Fatalf("false negative for %q", d)
		}
	}
	if b.Count() != len(domains) {
		t.Errorf("Count = %d", b.Count())
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	domains := make([]string, 5000)
	for i := range domains {
		domains[i] = fmt.Sprintf("in-%06d.net", i)
	}
	b, err := NewBloom("fam", domains, len(domains), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if b.Match(fmt.Sprintf("out-%06d.org", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Errorf("false positive rate %v, want ≤ 0.03 for 1%% target", rate)
	}
	if est := b.EstimatedFPRate(); est <= 0 || est > 0.05 {
		t.Errorf("estimated fp rate %v implausible", est)
	}
}

func TestBloomValidation(t *testing.T) {
	if _, err := NewBloom("x", nil, 10, 0); err == nil {
		t.Error("fp rate 0 should fail")
	}
	if _, err := NewBloom("x", nil, 10, 1); err == nil {
		t.Error("fp rate 1 should fail")
	}
	// Zero expected with no domains defaults sanely.
	b, err := NewBloom("x", nil, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b.Add("later.com")
	if !b.Match("later.com") {
		t.Error("post-construction Add should be matchable")
	}
}

func TestBloomMembershipProperty(t *testing.T) {
	f := func(names []string) bool {
		domains := make([]string, 0, len(names))
		for i := range names {
			domains = append(domains, fmt.Sprintf("p-%d.com", i))
		}
		if len(domains) == 0 {
			return true
		}
		b, err := NewBloom("x", domains, len(domains), 0.01)
		if err != nil {
			return false
		}
		for _, d := range domains {
			if !b.Match(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
