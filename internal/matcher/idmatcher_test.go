package matcher

import (
	"fmt"
	"testing"

	"botmeter/internal/symtab"
)

// TestIDMatcherAgreesWithSet interns a pool-like domain list and asserts the
// bitset matcher answers exactly like the exact string set for every
// interned domain plus a band of foreign IDs.
func TestIDMatcherAgreesWithSet(t *testing.T) {
	tab := symtab.New()
	// Intern some unrelated names first so pool IDs don't start at 1.
	for i := 0; i < 100; i++ {
		tab.Intern(fmt.Sprintf("pre%02d.example", i))
	}
	domains := make([]string, 500)
	ids := make([]symtab.ID, 500)
	for i := range domains {
		domains[i] = fmt.Sprintf("pool%03d.dga.example", i)
		ids[i] = tab.Intern(domains[i])
	}
	// Hold out every 7th domain from the matched set (simulating D³
	// detecting only a subset).
	var matchedIDs []symtab.ID
	var matchedDomains []string
	for i := range domains {
		if i%7 == 0 {
			continue
		}
		matchedIDs = append(matchedIDs, ids[i])
		matchedDomains = append(matchedDomains, domains[i])
	}
	set := NewSet("fam", matchedDomains)
	idm := NewIDMatcher("fam", matchedIDs)
	if idm.Name() != "fam" {
		t.Fatalf("Name = %q", idm.Name())
	}
	if idm.Len() != len(matchedIDs) {
		t.Fatalf("Len = %d, want %d", idm.Len(), len(matchedIDs))
	}
	for i, d := range domains {
		if got, want := idm.MatchID(ids[i]), set.Match(d); got != want {
			t.Fatalf("disagreement on %q (id %d): id=%v set=%v", d, ids[i], got, want)
		}
	}
	// Foreign IDs (pre-interned names and unseen band) never match.
	for id := symtab.ID(1); id <= 100; id++ {
		if idm.MatchID(id) {
			t.Fatalf("foreign low ID %d matched", id)
		}
	}
	for id := ids[len(ids)-1] + 1; id < ids[len(ids)-1]+100; id++ {
		if idm.MatchID(id) {
			t.Fatalf("foreign high ID %d matched", id)
		}
	}
	if idm.MatchID(symtab.None) {
		t.Fatal("None matched")
	}
}

func TestIDMatcherEmpty(t *testing.T) {
	idm := NewIDMatcher("empty", nil)
	if idm.Len() != 0 {
		t.Fatalf("Len = %d", idm.Len())
	}
	for _, id := range []symtab.ID{0, 1, 2, 1 << 20} {
		if idm.MatchID(id) {
			t.Fatalf("empty matcher matched %d", id)
		}
	}
	// None entries are ignored, not stored.
	idm = NewIDMatcher("nones", []symtab.ID{symtab.None, symtab.None})
	if idm.Len() != 0 || idm.MatchID(symtab.None) {
		t.Fatal("None entries should be ignored")
	}
}

func TestIDMatcherDuplicates(t *testing.T) {
	idm := NewIDMatcher("dup", []symtab.ID{5, 5, 5, 9})
	if idm.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dedup)", idm.Len())
	}
	if !idm.MatchID(5) || !idm.MatchID(9) || idm.MatchID(6) {
		t.Fatal("membership wrong")
	}
}
