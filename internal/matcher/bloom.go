package matcher

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Bloom is a Bloom-filter matcher for very large pools (Conficker.C emits
// 50K domains per day; a year of pools is 18M entries). False positives are
// possible at the configured rate; false negatives are not, so it never
// misses a true DGA lookup.
type Bloom struct {
	name   string
	bits   []uint64
	nbits  uint64
	hashes int
	count  int
}

// NewBloom sizes a filter for the expected number of domains and target
// false-positive rate, then inserts the given domains.
func NewBloom(name string, domains []string, expected int, fpRate float64) (*Bloom, error) {
	if expected <= 0 {
		expected = len(domains)
	}
	if expected <= 0 {
		expected = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		return nil, fmt.Errorf("matcher: false-positive rate %v outside (0,1)", fpRate)
	}
	// Standard sizing: m = -n·ln(p)/(ln 2)², k = (m/n)·ln 2.
	m := uint64(math.Ceil(-float64(expected) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(expected) * math.Ln2))
	if k < 1 {
		k = 1
	}
	b := &Bloom{name: name, bits: make([]uint64, (m+63)/64), nbits: m, hashes: k}
	for _, d := range domains {
		b.Add(d)
	}
	return b, nil
}

// Add inserts a domain.
func (b *Bloom) Add(domain string) {
	h1, h2 := b.hashPair(normalize(domain))
	for i := 0; i < b.hashes; i++ {
		b.setBit((h1 + uint64(i)*h2) % b.nbits)
	}
	b.count++
}

// Match implements Matcher. It may return false positives at the configured
// rate but never false negatives.
func (b *Bloom) Match(domain string) bool {
	h1, h2 := b.hashPair(normalize(domain))
	for i := 0; i < b.hashes; i++ {
		if !b.getBit((h1 + uint64(i)*h2) % b.nbits) {
			return false
		}
	}
	return true
}

// Name implements Matcher.
func (b *Bloom) Name() string { return b.name }

// Count returns the number of inserted domains.
func (b *Bloom) Count() int { return b.count }

// EstimatedFPRate returns the theoretical false-positive rate at the
// current fill.
func (b *Bloom) EstimatedFPRate() float64 {
	k := float64(b.hashes)
	n := float64(b.count)
	m := float64(b.nbits)
	return math.Pow(1-math.Exp(-k*n/m), k)
}

func (b *Bloom) setBit(i uint64) { b.bits[i/64] |= 1 << (i % 64) }
func (b *Bloom) getBit(i uint64) bool {
	return b.bits[i/64]&(1<<(i%64)) != 0
}

// hashPair derives two independent 64-bit hashes for double hashing.
func (b *Bloom) hashPair(s string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	h1 := h.Sum64()
	h.Write([]byte{0xff})
	h2 := h.Sum64() | 1 // odd, so strides cycle the full table
	return h1, h2
}
