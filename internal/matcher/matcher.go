// Package matcher implements BotMeter's DGA-domain matching stage (paper
// Figure 2, steps 2–4): analysts supply either plain domain lists or
// algorithmic patterns, and incoming DNS lookups are matched against them.
// Three implementations cover the practical trade-offs: an exact set, a
// structural pattern (charset/length/TLD) and a Bloom filter for pools too
// large to hold exactly at line rate.
package matcher

import (
	"fmt"
	"sort"
	"strings"
)

// Matcher decides whether a domain belongs to a target DGA.
type Matcher interface {
	// Match reports whether the domain is attributed to the DGA.
	Match(domain string) bool
	// Name identifies the matcher for reports.
	Name() string
}

// Set matches against an exact domain list — the "plain list" input mode.
type Set struct {
	name    string
	domains map[string]struct{}
}

// NewSet builds an exact matcher over the given domains.
func NewSet(name string, domains []string) *Set {
	m := &Set{name: name, domains: make(map[string]struct{}, len(domains))}
	for _, d := range domains {
		m.domains[normalize(d)] = struct{}{}
	}
	return m
}

// Match implements Matcher.
func (m *Set) Match(domain string) bool {
	_, ok := m.domains[normalize(domain)]
	return ok
}

// Name implements Matcher.
func (m *Set) Name() string { return m.name }

// Len returns the number of domains in the set.
func (m *Set) Len() int { return len(m.domains) }

// Add extends the set (e.g. as D³ reports new detections).
func (m *Set) Add(domains ...string) {
	for _, d := range domains {
		m.domains[normalize(d)] = struct{}{}
	}
}

// Pattern matches on the structural profile of a DGA's output: permitted
// characters, name-length range and TLDs — the "algorithmic pattern" input
// mode. It trades exactness for zero per-domain state.
type Pattern struct {
	name    string
	charset map[byte]struct{}
	minLen  int
	maxLen  int
	tlds    map[string]struct{}
}

// NewPattern builds a structural matcher.
func NewPattern(name, charset string, minLen, maxLen int, tlds []string) (*Pattern, error) {
	if charset == "" {
		return nil, fmt.Errorf("matcher: empty charset")
	}
	if minLen <= 0 || maxLen < minLen {
		return nil, fmt.Errorf("matcher: bad length range [%d, %d]", minLen, maxLen)
	}
	p := &Pattern{
		name:    name,
		charset: make(map[byte]struct{}, len(charset)),
		minLen:  minLen,
		maxLen:  maxLen,
		tlds:    make(map[string]struct{}, len(tlds)),
	}
	for i := 0; i < len(charset); i++ {
		p.charset[charset[i]] = struct{}{}
	}
	for _, t := range tlds {
		p.tlds[normalize(t)] = struct{}{}
	}
	return p, nil
}

// Match implements Matcher.
func (p *Pattern) Match(domain string) bool {
	domain = normalize(domain)
	dot := strings.LastIndexByte(domain, '.')
	if dot <= 0 {
		return false
	}
	name, tld := domain[:dot], domain[dot+1:]
	if len(p.tlds) > 0 {
		if _, ok := p.tlds[tld]; !ok {
			return false
		}
	}
	if len(name) < p.minLen || len(name) > p.maxLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		if _, ok := p.charset[name[i]]; !ok {
			return false
		}
	}
	return true
}

// Name implements Matcher.
func (p *Pattern) Name() string { return p.name }

// Multi dispatches a domain across several family matchers.
type Multi struct {
	order    []string
	matchers map[string]Matcher
}

// NewMulti builds an empty multi-matcher.
func NewMulti() *Multi {
	return &Multi{matchers: make(map[string]Matcher)}
}

// Register adds a family matcher. Later registrations with the same name
// replace earlier ones.
func (m *Multi) Register(matcher Matcher) {
	name := matcher.Name()
	if _, exists := m.matchers[name]; !exists {
		m.order = append(m.order, name)
	}
	m.matchers[name] = matcher
}

// MatchAny returns the first registered family that matches, in
// registration order.
func (m *Multi) MatchAny(domain string) (string, bool) {
	for _, name := range m.order {
		if m.matchers[name].Match(domain) {
			return name, true
		}
	}
	return "", false
}

// Families returns the registered family names sorted.
func (m *Multi) Families() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	sort.Strings(out)
	return out
}

// Get returns a registered matcher.
func (m *Multi) Get(name string) (Matcher, bool) {
	match, ok := m.matchers[name]
	return match, ok
}

// normalize canonicalises a domain: strips one trailing dot and lowers
// ASCII letters. The single scan up front returns already-canonical
// domains (the overwhelmingly common case on the hot Match path — the
// simulator emits lowercase, dot-free names) unchanged without
// allocating; only domains that actually need rewriting pay for a copy.
func normalize(d string) string {
	canonical := true
	for i := 0; i < len(d); i++ {
		c := d[i]
		if ('A' <= c && c <= 'Z') || c >= 0x80 || (c == '.' && i == len(d)-1) {
			// Uppercase ASCII, any non-ASCII byte (Unicode case folding
			// may apply) or a trailing dot: fall through to the slow path.
			canonical = false
			break
		}
	}
	if canonical {
		return d
	}
	d = strings.TrimSuffix(d, ".")
	return strings.ToLower(d)
}
