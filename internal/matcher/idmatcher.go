package matcher

import "botmeter/internal/symtab"

// IDMatcher answers membership for domains that carry interned symtab IDs —
// the fast path of Set for records that originated in-process. It is a
// bitset over the (dense, near-contiguous) IDs of one epoch's pool slice,
// with a [lo, hi] range pre-check so the common out-of-pool ID rejects in
// two compares.
//
// An IDMatcher never sees strings: records with ID == symtab.None (traces
// read from disk, external injections) must be routed to a string Matcher by
// the caller (see core.EpochMatcher).
type IDMatcher struct {
	name string
	lo   symtab.ID
	hi   symtab.ID // inclusive
	bits []uint64  // bit (id - lo) set ⇔ id matched
	n    int
}

// NewIDMatcher builds a bitset matcher over ids. symtab.None entries are
// ignored.
func NewIDMatcher(name string, ids []symtab.ID) *IDMatcher {
	m := &IDMatcher{name: name}
	var lo, hi symtab.ID
	for _, id := range ids {
		if id == symtab.None {
			continue
		}
		if lo == 0 || id < lo {
			lo = id
		}
		if id > hi {
			hi = id
		}
	}
	if lo == 0 {
		return m // empty
	}
	m.lo, m.hi = lo, hi
	m.bits = make([]uint64, (uint64(hi-lo)>>6)+1)
	for _, id := range ids {
		if id == symtab.None {
			continue
		}
		w := uint64(id-lo) >> 6
		b := uint64(1) << ((id - lo) & 63)
		if m.bits[w]&b == 0 {
			m.bits[w] |= b
			m.n++
		}
	}
	return m
}

// MatchID reports whether id is in the matched set. symtab.None never
// matches.
func (m *IDMatcher) MatchID(id symtab.ID) bool {
	if id < m.lo || id > m.hi || m.lo == 0 {
		return false
	}
	return m.bits[uint64(id-m.lo)>>6]&(1<<((id-m.lo)&63)) != 0
}

// Name identifies the matcher for reports.
func (m *IDMatcher) Name() string { return m.name }

// Len returns the number of distinct IDs in the set.
func (m *IDMatcher) Len() int { return m.n }
