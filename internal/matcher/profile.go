package matcher

import (
	"fmt"

	"botmeter/internal/dga"
)

// FromGenerator derives a structural Pattern matcher from a family's
// lexical profile — the "algorithmic pattern" input mode of the paper's
// Figure 2 (step 2), usable when the analyst knows a family's output shape
// but cannot enumerate its pools (e.g. the seed is unknown).
func FromGenerator(name string, g dga.Generator) (*Pattern, error) {
	charset := g.Charset
	if charset == "" {
		charset = dga.DefaultGenerator.Charset
	}
	minLen, maxLen := g.MinLen, g.MaxLen
	if minLen <= 0 {
		minLen = dga.DefaultGenerator.MinLen
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	tlds := g.TLDs
	if len(tlds) == 0 {
		tlds = dga.DefaultGenerator.TLDs
	}
	p, err := NewPattern(name, charset, minLen, maxLen, tlds)
	if err != nil {
		return nil, fmt.Errorf("matcher: profile for %s: %w", name, err)
	}
	return p, nil
}

// FromSpec derives the structural matcher for a family preset, when its
// pool model exposes a generator profile.
func FromSpec(spec dga.Spec) (*Pattern, error) {
	var gen dga.Generator
	switch pool := spec.Pool.(type) {
	case dga.DrainReplenish:
		gen = pool.Gen
	case dga.SlidingWindow:
		gen = pool.Gen
	case dga.MultipleMixture:
		gen = pool.Gen
	default:
		return nil, fmt.Errorf("matcher: no generator profile on pool model %T", spec.Pool)
	}
	return FromGenerator(spec.Name, gen)
}
