package dga

import (
	"testing"

	"botmeter/internal/sim"
)

func BenchmarkConfickerPoolGeneration(b *testing.B) {
	m := ConfickerC().Pool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := m.PoolFor(uint64(i), i)
		if p.Size() != 50000 {
			b.Fatalf("pool size %d", p.Size())
		}
	}
}

func BenchmarkNewGoZBarrel(b *testing.B) {
	spec := NewGoZ()
	pool := spec.Pool.PoolFor(1, 0)
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		barrel := spec.Barrel.Barrel(pool, spec.ThetaQ, rng)
		ExecuteBarrel(pool, barrel)
	}
}

func BenchmarkSlidingWindowPool(b *testing.B) {
	m := PushDo().Pool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PoolFor(1, i)
	}
}

func BenchmarkDomainGeneration(b *testing.B) {
	rng := sim.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DefaultGenerator.Generate(rng)
	}
}
