package dga

import (
	"fmt"
	"sort"

	"botmeter/internal/sim"
)

// Spec fully describes a DGA family: its pool model, barrel model, barrel
// size θq and query interval δi. A Spec plus a seed is everything needed to
// simulate the family or to reconstruct its pools for estimation.
type Spec struct {
	Name   string
	Pool   PoolModel
	Barrel BarrelModel
	// ThetaQ is the maximum number of lookups per activation (θq).
	ThetaQ int
	// QueryInterval is δi, the fixed gap between consecutive lookups in an
	// activation. Zero means the family paces lookups irregularly (the
	// "none" entries of Table II); the simulator then jitters intervals
	// uniformly in [MinJitter, MaxJitter].
	QueryInterval sim.Time
	// MinJitter/MaxJitter bound irregular pacing when QueryInterval is 0.
	MinJitter, MaxJitter sim.Time
	// Notes documents provenance of the parameters.
	Notes string
}

// Validate checks internal consistency of the spec.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("dga: spec missing name")
	case s.Pool == nil:
		return fmt.Errorf("dga %s: missing pool model", s.Name)
	case s.Barrel == nil:
		return fmt.Errorf("dga %s: missing barrel model", s.Name)
	case s.ThetaQ <= 0:
		return fmt.Errorf("dga %s: θq must be positive, got %d", s.Name, s.ThetaQ)
	case s.QueryInterval < 0:
		return fmt.Errorf("dga %s: negative query interval", s.Name)
	case s.QueryInterval == 0 && (s.MinJitter <= 0 || s.MaxJitter < s.MinJitter):
		return fmt.Errorf("dga %s: irregular pacing needs 0 < MinJitter <= MaxJitter", s.Name)
	}
	return nil
}

// Interval returns the gap to use before the i-th lookup of an activation,
// drawing jitter from rng when the family has no fixed interval.
func (s Spec) Interval(rng *sim.RNG) sim.Time {
	if s.QueryInterval > 0 {
		return s.QueryInterval
	}
	span := int64(s.MaxJitter - s.MinJitter)
	if span <= 0 {
		return s.MinJitter
	}
	return s.MinJitter + sim.Time(rng.Int64N(span+1))
}

// MaxDuration bounds the duration δd of one activation: θq lookups at the
// slowest pacing.
func (s Spec) MaxDuration() sim.Time {
	step := s.QueryInterval
	if step == 0 {
		step = s.MaxJitter
	}
	return step * sim.Time(s.ThetaQ)
}

// Classify returns the taxonomy cell of the spec.
func (s Spec) Classify() (PoolClass, BarrelClass) {
	return s.Pool.Class(), s.Barrel.Class()
}

// ModelName returns the paper's A-shorthand (AU/AS/AR/AP) when the pool is
// drain-and-replenish, or pool/barrel names otherwise.
func (s Spec) ModelName() string {
	pc, bc := s.Classify()
	if pc == DrainReplenishPool {
		return Model(bc)
	}
	return fmt.Sprintf("%s/%s", pc, bc)
}

// Family presets. Parameters for Murofet, Conficker.C, newGoZ and Necurs
// are the paper's Table I; Ranbyus, PushDo and Pykspa follow the §III-A
// text; Ramnit and Qakbot ("none" query interval) follow Table II plus
// public malware analyses; Srizbi and Torpig sizes are representative of
// published reports and are used only in examples, never in reproduced
// experiments.
// Per-family lexical profiles. These approximate the published output
// shapes of each family's generator (charset, length band, TLD set); the
// estimators never read domain bytes, but distinct profiles exercise the
// structural matcher and make multi-family traces realistic.
var (
	murofetGen   = Generator{Charset: "abcdefghijklmnopqrstuvwxyz", MinLen: 12, MaxLen: 25, TLDs: []string{"biz", "info", "org", "net", "com", "ru"}}
	confickerGen = Generator{Charset: "abcdefghijklmnopqrstuvwxyz", MinLen: 4, MaxLen: 10, TLDs: []string{"com", "net", "org", "info", "biz"}}
	newGoZGen    = Generator{Charset: "abcdefghijklmnopqrstuvwxyz0123456789", MinLen: 20, MaxLen: 28, TLDs: []string{"com", "net", "org", "biz"}}
	necursGen    = Generator{Charset: "abcdefghijklmnopqrstuvwxyz", MinLen: 7, MaxLen: 21, TLDs: []string{"bit", "pw", "bid", "xyz", "top"}}
	ranbyusGen   = Generator{Charset: "abcdefghijklmnopqrstuvwxyz", MinLen: 14, MaxLen: 14, TLDs: []string{"in", "me", "cc", "su", "tw"}}
	pushdoGen    = Generator{Charset: "abcdefghijklmnopqrstuvwxyz", MinLen: 7, MaxLen: 12, TLDs: []string{"kz", "com"}}
	pykspaGen    = Generator{Charset: "abcdefghijklmnopqrstuvwxyz", MinLen: 6, MaxLen: 12, TLDs: []string{"com", "net", "org", "info"}}
	ramnitGen    = Generator{Charset: "abcdefghijklmnopqrstuvwxyz", MinLen: 8, MaxLen: 19, TLDs: []string{"com"}}
	qakbotGen    = Generator{Charset: "abcdefghijklmnopqrstuvwxyz", MinLen: 8, MaxLen: 25, TLDs: []string{"com", "net", "org", "info", "biz"}}
)

func Murofet() Spec {
	return Spec{
		Name:          "Murofet",
		Pool:          DrainReplenish{NX: 798, C2: 2, Gen: murofetGen},
		Barrel:        Uniform{},
		ThetaQ:        798,
		QueryInterval: 500 * sim.Millisecond,
		Notes:         "Table I row AU",
	}
}

// ConfickerC is the paper's AS prototype: 500 random picks from a 50K pool.
func ConfickerC() Spec {
	return Spec{
		Name:          "Conficker.C",
		Pool:          DrainReplenish{NX: 49995, C2: 5, Gen: confickerGen},
		Barrel:        Sampling{},
		ThetaQ:        500,
		QueryInterval: sim.Second,
		Notes:         "Table I row AS",
	}
}

// NewGoZ is the paper's AR prototype: 500 consecutive domains from a random
// start in a 10K circle.
func NewGoZ() Spec {
	return Spec{
		Name:          "newGoZ",
		Pool:          DrainReplenish{NX: 9995, C2: 5, Gen: newGoZGen},
		Barrel:        RandomCut{},
		ThetaQ:        500,
		QueryInterval: sim.Second,
		Notes:         "Table I row AR",
	}
}

// Necurs is the paper's AP prototype: a 2048-domain pool regenerated every
// four days, queried in a fresh random permutation daily.
func Necurs() Spec {
	return Spec{
		Name:          "Necurs",
		Pool:          DrainReplenish{NX: 2046, C2: 2, Period: 4, Gen: necursGen},
		Barrel:        Permutation{},
		ThetaQ:        2046,
		QueryInterval: 500 * sim.Millisecond,
		Notes:         "Table I row AP; §III-B: pool period 4 days",
	}
}

// Ranbyus: sliding window of 40 fresh domains/day over the past 30 days
// (1240-domain pool), permutation barrel.
func Ranbyus() Spec {
	return Spec{
		Name:          "Ranbyus",
		Pool:          SlidingWindow{PerDay: 40, Back: 30, Forward: 0, C2: 3, Gen: ranbyusGen},
		Barrel:        Permutation{},
		ThetaQ:        40 * 31,
		QueryInterval: 500 * sim.Millisecond,
		Notes:         "§III-A sliding-window example (40/day × 31 days = 1240)",
	}
}

// PushDo: sliding window of -30..+15 days × 30 domains/day (1380-domain
// pool), uniform barrel.
func PushDo() Spec {
	return Spec{
		Name:      "PushDo",
		Pool:      SlidingWindow{PerDay: 30, Back: 30, Forward: 15, C2: 2, Gen: pushdoGen},
		Barrel:    Uniform{},
		ThetaQ:    30 * 46,
		MinJitter: 200 * sim.Millisecond,
		MaxJitter: 2 * sim.Second,
		Notes:     "§III-A sliding-window example (30/day × 46 days = 1380)",
	}
}

// Pykspa: two interleaved DGA instances — 200 useful domains and 16K noisy
// ones — uniform barrel over the mixture.
func Pykspa() Spec {
	return Spec{
		Name:          "Pykspa",
		Pool:          MultipleMixture{UsefulNX: 198, UsefulC2: 2, NoiseSizes: []int{16000}, Gen: pykspaGen},
		Barrel:        Uniform{},
		ThetaQ:        1000,
		QueryInterval: 500 * sim.Millisecond,
		Notes:         "§III-A multiple-mixture example",
	}
}

// Ramnit: uniform barrel, no fixed query interval (Table II "none").
func Ramnit() Spec {
	return Spec{
		Name:      "Ramnit",
		Pool:      DrainReplenish{NX: 298, C2: 2, Gen: ramnitGen},
		Barrel:    Uniform{},
		ThetaQ:    300,
		MinJitter: 100 * sim.Millisecond,
		MaxJitter: 3 * sim.Second,
		Notes:     "Table II row; irregular pacing",
	}
}

// Qakbot: uniform barrel, no fixed query interval (Table II "none").
func Qakbot() Spec {
	return Spec{
		Name:      "Qakbot",
		Pool:      DrainReplenish{NX: 2045, C2: 3, Gen: qakbotGen},
		Barrel:    Uniform{},
		ThetaQ:    2048,
		MinJitter: 100 * sim.Millisecond,
		MaxJitter: 3 * sim.Second,
		Notes:     "Table II row; irregular pacing",
	}
}

// Srizbi: small daily uniform pool (illustrative preset for examples).
func Srizbi() Spec {
	return Spec{
		Name:          "Srizbi",
		Pool:          DrainReplenish{NX: 14, C2: 2, Gen: Generator{Charset: "qwerty", MinLen: 7, MaxLen: 10, TLDs: []string{"com"}}},
		Barrel:        Uniform{},
		ThetaQ:        16,
		QueryInterval: 500 * sim.Millisecond,
		Notes:         "illustrative preset",
	}
}

// Torpig: weekly-flavoured uniform pool (illustrative preset for examples).
func Torpig() Spec {
	return Spec{
		Name:          "Torpig",
		Pool:          DrainReplenish{NX: 27, C2: 3, Gen: DefaultGenerator},
		Barrel:        Uniform{},
		ThetaQ:        30,
		QueryInterval: 500 * sim.Millisecond,
		Notes:         "illustrative preset",
	}
}

// Adaptive is the §VII "future work, attacker's perspective" family: it
// randomises the query interval per lookup and samples its barrel, evading
// both the timing heuristics of MT and the identical-barrel premise of MP.
// BotMeter's library includes it so defenders can quantify the estimation
// gap such a design would open (see examples/takedown).
func Adaptive() Spec {
	return Spec{
		Name:      "Adaptive",
		Pool:      DrainReplenish{NX: 9995, C2: 5, Gen: DefaultGenerator},
		Barrel:    Sampling{},
		ThetaQ:    500,
		MinJitter: 50 * sim.Millisecond,
		MaxJitter: 10 * sim.Second,
		Notes:     "§VII direction 3: estimation-evading design",
	}
}

// Families returns every preset keyed by lower-case name.
func Families() map[string]Spec {
	specs := []Spec{
		Murofet(), ConfickerC(), NewGoZ(), Necurs(),
		Ranbyus(), PushDo(), Pykspa(),
		Ramnit(), Qakbot(), Srizbi(), Torpig(), Adaptive(),
	}
	out := make(map[string]Spec, len(specs))
	for _, s := range specs {
		out[lower(s.Name)] = s
	}
	return out
}

// FamilyNames returns the preset names in sorted order.
func FamilyNames() []string {
	fams := Families()
	names := make([]string, 0, len(fams))
	for _, s := range fams {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// Lookup finds a preset by case-insensitive name.
func Lookup(name string) (Spec, error) {
	if s, ok := Families()[lower(name)]; ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("dga: unknown family %q (known: %v)", name, FamilyNames())
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}
