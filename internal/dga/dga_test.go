package dga

import (
	"strings"
	"testing"
	"testing/quick"

	"botmeter/internal/sim"
)

func TestGeneratorProfile(t *testing.T) {
	g := Generator{Charset: "abc", MinLen: 5, MaxLen: 8, TLDs: []string{"com", "net"}}
	rng := sim.NewRNG(1)
	for i := 0; i < 200; i++ {
		d := g.Generate(rng)
		dot := strings.LastIndexByte(d, '.')
		if dot < 0 {
			t.Fatalf("domain %q missing TLD", d)
		}
		name, tld := d[:dot], d[dot+1:]
		if len(name) < 5 || len(name) > 8 {
			t.Errorf("name %q length out of range", name)
		}
		if tld != "com" && tld != "net" {
			t.Errorf("unexpected TLD %q", tld)
		}
		for _, c := range name {
			if !strings.ContainsRune("abc", c) {
				t.Errorf("character %q outside charset", c)
			}
		}
	}
}

func TestGeneratorDefaults(t *testing.T) {
	var g Generator // zero value falls back to DefaultGenerator profile
	d := g.Generate(sim.NewRNG(2))
	if len(d) < DefaultGenerator.MinLen {
		t.Errorf("domain %q shorter than default minimum", d)
	}
}

func TestGenerateUnique(t *testing.T) {
	g := Generator{Charset: "ab", MinLen: 4, MaxLen: 4, TLDs: []string{"com"}}
	// Only 16 possible names; ask for 10 with 4 excluded.
	rng := sim.NewRNG(3)
	first := g.GenerateUnique(rng, 4, nil)
	exclude := make(map[string]struct{})
	for _, d := range first {
		exclude[d] = struct{}{}
	}
	rest := g.GenerateUnique(rng, 10, exclude)
	seen := make(map[string]struct{})
	for _, d := range rest {
		if _, dup := seen[d]; dup {
			t.Fatalf("duplicate %q", d)
		}
		if _, dup := exclude[d]; dup {
			t.Fatalf("excluded domain %q regenerated", d)
		}
		seen[d] = struct{}{}
	}
	if len(rest) != 10 {
		t.Fatalf("got %d domains, want 10", len(rest))
	}
}

func TestDrainReplenishDeterminism(t *testing.T) {
	m := DrainReplenish{NX: 50, C2: 3, Gen: DefaultGenerator}
	a := m.PoolFor(42, 7)
	b := m.PoolFor(42, 7)
	if len(a.Domains) != len(b.Domains) {
		t.Fatal("sizes differ")
	}
	for i := range a.Domains {
		if a.Domains[i] != b.Domains[i] {
			t.Fatal("same (seed, epoch) must give identical pools")
		}
	}
	c := m.PoolFor(42, 8)
	same := true
	for i := range a.Domains {
		if i < len(c.Domains) && a.Domains[i] != c.Domains[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different epochs should give different pools")
	}
	if err := validatePool(a, 3); err != nil {
		t.Error(err)
	}
}

func TestDrainReplenishPeriod(t *testing.T) {
	m := DrainReplenish{NX: 20, C2: 2, Period: 4, Gen: DefaultGenerator}
	day0 := m.PoolFor(1, 0)
	day3 := m.PoolFor(1, 3)
	day4 := m.PoolFor(1, 4)
	if day0.Domains[0] != day3.Domains[0] {
		t.Error("epochs 0 and 3 share a pool period and must match")
	}
	if day0.Domains[0] == day4.Domains[0] {
		t.Error("epoch 4 starts a new pool period")
	}
}

func TestSlidingWindowOverlap(t *testing.T) {
	m := SlidingWindow{PerDay: 10, Back: 3, Forward: 1, C2: 2, Gen: DefaultGenerator}
	p5 := m.PoolFor(9, 5)
	p6 := m.PoolFor(9, 6)
	if got, want := p5.Size(), 10*5; got != want {
		t.Fatalf("pool size %d, want %d", got, want)
	}
	set6 := make(map[string]struct{}, p6.Size())
	for _, d := range p6.Domains {
		set6[d] = struct{}{}
	}
	shared := 0
	for _, d := range p5.Domains {
		if _, ok := set6[d]; ok {
			shared++
		}
	}
	// Consecutive epochs share all but one day-block: 4 of 5 blocks.
	if shared != 40 {
		t.Errorf("consecutive pools share %d domains, want 40", shared)
	}
	if err := validatePool(p5, 2); err != nil {
		t.Error(err)
	}
}

func TestMultipleMixtureValidOnlyFromUseful(t *testing.T) {
	m := MultipleMixture{UsefulNX: 18, UsefulC2: 2, NoiseSizes: []int{50, 30}, Gen: DefaultGenerator}
	p := m.PoolFor(4, 2)
	if got, want := p.Size(), 18+2+50+30; got != want {
		t.Fatalf("pool size %d, want %d", got, want)
	}
	if err := validatePool(p, 2); err != nil {
		t.Fatal(err)
	}
	// Rebuild the useful set to confirm valid positions come from it.
	useful := make(map[string]struct{})
	for i, d := range p.Domains {
		if p.ValidAt(i) {
			useful[d] = struct{}{}
		}
	}
	if len(useful) != 2 {
		t.Fatalf("expected 2 valid domains, got %d", len(useful))
	}
}

func TestPoolLookupMethods(t *testing.T) {
	p := NewPool([]string{"a.com", "b.com", "c.com"}, []int{1})
	if p.Size() != 3 || p.NXCount() != 2 {
		t.Errorf("size=%d nx=%d", p.Size(), p.NXCount())
	}
	if pos, ok := p.Position("b.com"); !ok || pos != 1 {
		t.Errorf("Position(b.com) = %d,%v", pos, ok)
	}
	if _, ok := p.Position("zz.com"); ok {
		t.Error("unknown domain should not resolve")
	}
	if !p.IsValidDomain("b.com") || p.IsValidDomain("a.com") {
		t.Error("validity flags wrong")
	}
	if !p.Contains("c.com") || p.Contains("zz.com") {
		t.Error("Contains wrong")
	}
}

func TestNewPoolIgnoresBadPositions(t *testing.T) {
	p := NewPool([]string{"a.com"}, []int{-1, 5, 0, 0})
	if len(p.ValidPositions) != 1 || p.ValidPositions[0] != 0 {
		t.Errorf("ValidPositions = %v, want [0]", p.ValidPositions)
	}
}

func testPool(n, c2 int) *Pool {
	domains := make([]string, n)
	for i := range domains {
		domains[i] = strings.Repeat("x", 3) + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676)) + ".com"
	}
	valid := make([]int, c2)
	for i := range valid {
		valid[i] = i * (n / max(c2, 1))
	}
	return NewPool(domains, valid)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestUniformBarrelOrder(t *testing.T) {
	p := testPool(30, 0)
	b := Uniform{}.Barrel(p, 10, sim.NewRNG(1))
	if len(b) != 10 {
		t.Fatalf("barrel length %d, want 10", len(b))
	}
	for i, pos := range b {
		if pos != i {
			t.Fatalf("uniform barrel must follow pool order, got %v", b)
		}
	}
	// θq beyond pool size clamps.
	if got := len(Uniform{}.Barrel(p, 100, sim.NewRNG(1))); got != 30 {
		t.Errorf("clamped barrel length %d, want 30", got)
	}
}

func TestSamplingBarrelDistinct(t *testing.T) {
	p := testPool(100, 0)
	b := Sampling{}.Barrel(p, 40, sim.NewRNG(2))
	seen := make(map[int]struct{})
	for _, pos := range b {
		if pos < 0 || pos >= 100 {
			t.Fatalf("position %d out of range", pos)
		}
		if _, dup := seen[pos]; dup {
			t.Fatalf("duplicate position %d", pos)
		}
		seen[pos] = struct{}{}
	}
	if len(b) != 40 {
		t.Fatalf("barrel length %d, want 40", len(b))
	}
	// Two bots should (overwhelmingly) sample different barrels.
	b2 := Sampling{}.Barrel(p, 40, sim.NewRNG(3))
	same := true
	for i := range b {
		if b[i] != b2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("independent sampling barrels should differ")
	}
}

func TestRandomCutBarrelConsecutive(t *testing.T) {
	p := testPool(50, 0)
	b := RandomCut{}.Barrel(p, 20, sim.NewRNG(4))
	if len(b) != 20 {
		t.Fatalf("barrel length %d, want 20", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] != (b[i-1]+1)%50 {
			t.Fatalf("randomcut positions must be consecutive mod size: %v", b)
		}
	}
}

func TestRandomCutWrapsProperty(t *testing.T) {
	p := testPool(17, 0)
	f := func(seed uint64) bool {
		b := RandomCut{}.Barrel(p, 17, sim.NewRNG(seed))
		seen := make(map[int]struct{})
		for _, pos := range b {
			seen[pos] = struct{}{}
		}
		return len(seen) == 17 // a full wrap covers every position exactly once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPermutationBarrelIsPermutation(t *testing.T) {
	p := testPool(25, 0)
	b := Permutation{}.Barrel(p, 25, sim.NewRNG(5))
	seen := make(map[int]struct{})
	for _, pos := range b {
		seen[pos] = struct{}{}
	}
	if len(seen) != 25 {
		t.Fatalf("permutation barrel must cover the pool once: %v", b)
	}
}

func TestExecuteBarrelStopsAtValid(t *testing.T) {
	p := NewPool([]string{"a.com", "b.com", "c.com", "d.com"}, []int{2})
	full := []int{0, 1, 2, 3}
	got := ExecuteBarrel(p, full)
	if len(got) != 3 || got[2] != 2 {
		t.Errorf("ExecuteBarrel = %v, want stop at position 2 inclusive", got)
	}
	// No valid position: whole barrel.
	noHit := []int{0, 1, 3}
	if got := ExecuteBarrel(p, noHit); len(got) != 3 {
		t.Errorf("ExecuteBarrel without hit = %v, want full barrel", got)
	}
}

func TestFamiliesValidate(t *testing.T) {
	for name, spec := range Families() {
		if err := spec.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
}

func TestTableIParameters(t *testing.T) {
	tests := []struct {
		spec   Spec
		nx, c2 int
		thetaQ int
		deltaI sim.Time
		barrel BarrelClass
	}{
		{Murofet(), 798, 2, 798, 500 * sim.Millisecond, UniformBarrel},
		{ConfickerC(), 49995, 5, 500, sim.Second, SamplingBarrel},
		{NewGoZ(), 9995, 5, 500, sim.Second, RandomCutBarrel},
		{Necurs(), 2046, 2, 2046, 500 * sim.Millisecond, PermutationBarrel},
	}
	for _, tt := range tests {
		t.Run(tt.spec.Name, func(t *testing.T) {
			if got := tt.spec.Pool.NXDomains(); got != tt.nx {
				t.Errorf("θ∅ = %d, want %d", got, tt.nx)
			}
			if got := tt.spec.Pool.C2Domains(); got != tt.c2 {
				t.Errorf("θ∃ = %d, want %d", got, tt.c2)
			}
			if tt.spec.ThetaQ != tt.thetaQ {
				t.Errorf("θq = %d, want %d", tt.spec.ThetaQ, tt.thetaQ)
			}
			if tt.spec.QueryInterval != tt.deltaI {
				t.Errorf("δi = %v, want %v", tt.spec.QueryInterval, tt.deltaI)
			}
			if got := tt.spec.Barrel.Class(); got != tt.barrel {
				t.Errorf("barrel = %v, want %v", got, tt.barrel)
			}
		})
	}
}

func TestSlidingWindowPoolSizes(t *testing.T) {
	// §III-A: Ranbyus pool = 1240 domains; PushDo pool = 1380 domains.
	if got := Ranbyus().Pool.(SlidingWindow); got.PerDay*(got.Back+got.Forward+1) != 1240 {
		t.Errorf("Ranbyus pool = %d, want 1240", got.PerDay*(got.Back+got.Forward+1))
	}
	if got := PushDo().Pool.(SlidingWindow); got.PerDay*(got.Back+got.Forward+1) != 1380 {
		t.Errorf("PushDo pool = %d, want 1380", got.PerDay*(got.Back+got.Forward+1))
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("newgoz")
	if err != nil || s.Name != "newGoZ" {
		t.Errorf("Lookup(newgoz) = %v, %v", s.Name, err)
	}
	if _, err := Lookup("unknown-family"); err == nil {
		t.Error("unknown family should error")
	}
}

func TestModelNames(t *testing.T) {
	tests := []struct {
		spec Spec
		want string
	}{
		{Murofet(), "AU"},
		{ConfickerC(), "AS"},
		{NewGoZ(), "AR"},
		{Necurs(), "AP"},
		{Ranbyus(), "sliding-window/permutation"},
		{Pykspa(), "multiple-mixture/uniform"},
	}
	for _, tt := range tests {
		if got := tt.spec.ModelName(); got != tt.want {
			t.Errorf("%s.ModelName() = %q, want %q", tt.spec.Name, got, tt.want)
		}
	}
}

func TestSpecIntervalJitterBounds(t *testing.T) {
	s := Ramnit()
	rng := sim.NewRNG(6)
	for i := 0; i < 100; i++ {
		iv := s.Interval(rng)
		if iv < s.MinJitter || iv > s.MaxJitter {
			t.Fatalf("jittered interval %v outside [%v, %v]", iv, s.MinJitter, s.MaxJitter)
		}
	}
	fixed := Murofet()
	if got := fixed.Interval(rng); got != 500*sim.Millisecond {
		t.Errorf("fixed interval = %v", got)
	}
}

func TestValidPositionsAreSortedProperty(t *testing.T) {
	f := func(seed uint64, epochRaw uint8) bool {
		m := DrainReplenish{NX: 40, C2: 5, Gen: DefaultGenerator}
		p := m.PoolFor(seed, int(epochRaw))
		for i := 1; i < len(p.ValidPositions); i++ {
			if p.ValidPositions[i] <= p.ValidPositions[i-1] {
				return false
			}
		}
		return len(p.ValidPositions) == 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
