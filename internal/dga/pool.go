package dga

import (
	"fmt"
	"sync"

	"botmeter/internal/sim"
	"botmeter/internal/symtab"
)

// Pool is the ordered set of domains a DGA emits for one epoch. Order
// matters: the uniform barrel queries positions in order and the randomcut
// barrel treats positions as a circle. ValidPositions marks the θ∃ domains
// the botmaster registered as C2 rendezvous points; every other domain is an
// NXD.
//
// A pool can additionally be symbolized against a symtab.Table (see Intern):
// IDs then holds the dense interned ID of each domain, PositionID answers
// membership in O(1) via an offset array, and ValidAt is an O(1) bool-slice
// read. The string index map is built lazily, only if a string Position /
// Contains lookup actually happens — all-ID trials never pay for it.
type Pool struct {
	Domains        []string
	ValidPositions []int // sorted positions of registered (C2) domains

	// IDs is parallel to Domains once Intern has run; nil otherwise.
	IDs []symtab.ID

	valid []bool // valid[i] == position i holds a registered domain

	indexOnce sync.Once
	index     map[string]int

	// ID→position offset table: byID[id-baseID] stores pos+1 (0 = absent).
	baseID symtab.ID
	byID   []int32
}

// NewPool builds a pool from an ordered domain list and the positions of
// the registered domains. Positions out of range are ignored.
func NewPool(domains []string, validPositions []int) *Pool {
	p := &Pool{
		Domains: domains,
		valid:   make([]bool, len(domains)),
	}
	for _, v := range validPositions {
		if v >= 0 && v < len(domains) {
			if !p.valid[v] {
				p.valid[v] = true
				p.ValidPositions = append(p.ValidPositions, v)
			}
		}
	}
	sortInts(p.ValidPositions)
	return p
}

// ensureIndex lazily builds the string→position map. Pools on the ID fast
// path never call this, so symbolized trials skip the map entirely.
func (p *Pool) ensureIndex() {
	p.indexOnce.Do(func() {
		idx := make(map[string]int, len(p.Domains))
		for i, d := range p.Domains {
			idx[d] = i
		}
		p.index = idx
	})
}

// Intern symbolizes the pool against tab: every domain is interned (idempotent
// — the same string always yields the same ID) and the ID→position offset
// table is built so PositionID is an O(1) array read. Safe to call once per
// pool; PoolCache does this automatically.
func (p *Pool) Intern(tab *symtab.Table) {
	if tab == nil || p.IDs != nil {
		return
	}
	ids := make([]symtab.ID, len(p.Domains))
	var lo, hi symtab.ID
	for i, d := range p.Domains {
		id := tab.Intern(d)
		ids[i] = id
		if i == 0 || id < lo {
			lo = id
		}
		if id > hi {
			hi = id
		}
	}
	p.IDs = ids
	if len(ids) == 0 {
		return
	}
	p.baseID = lo
	p.byID = make([]int32, hi-lo+1)
	for i, id := range ids {
		p.byID[id-lo] = int32(i) + 1
	}
}

// PositionID returns the pool position of the domain with interned ID id.
// It is an O(1) array read; id==symtab.None or an ID outside this pool
// returns false. Valid only after Intern.
func (p *Pool) PositionID(id symtab.ID) (int, bool) {
	if id < p.baseID || int(id-p.baseID) >= len(p.byID) {
		return 0, false
	}
	v := p.byID[id-p.baseID]
	return int(v) - 1, v != 0
}

// ContainsID reports whether the domain with interned ID id belongs to the
// pool. Valid only after Intern.
func (p *Pool) ContainsID(id symtab.ID) bool {
	_, ok := p.PositionID(id)
	return ok
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Size returns the total pool size θ∃ + θ∅.
func (p *Pool) Size() int { return len(p.Domains) }

// NXCount returns θ∅, the number of unregistered domains.
func (p *Pool) NXCount() int { return len(p.Domains) - len(p.ValidPositions) }

// Position returns the pool position of domain d.
func (p *Pool) Position(d string) (int, bool) {
	p.ensureIndex()
	i, ok := p.index[d]
	return i, ok
}

// Contains reports whether d belongs to the pool.
func (p *Pool) Contains(d string) bool {
	p.ensureIndex()
	_, ok := p.index[d]
	return ok
}

// ValidAt reports whether position i holds a registered (resolving) domain.
func (p *Pool) ValidAt(i int) bool {
	return i >= 0 && i < len(p.valid) && p.valid[i]
}

// IsValidDomain reports whether d is a registered domain of this pool.
func (p *Pool) IsValidDomain(d string) bool {
	i, ok := p.Position(d)
	if !ok {
		return false
	}
	return p.ValidAt(i)
}

// PoolModel deterministically produces the pool for a given epoch. The same
// (seed, epoch) always yields the same pool — the property that lets both
// the botmaster and every bot (and BotMeter's matcher) agree on the domain
// set.
type PoolModel interface {
	// Class reports the taxonomy cell of this model.
	Class() PoolClass
	// PoolFor materialises the epoch's pool.
	PoolFor(seed uint64, epoch int) *Pool
	// NXDomains returns θ∅ for sizing estimator parameters.
	NXDomains() int
	// C2Domains returns θ∃.
	C2Domains() int
}

// DrainReplenish regenerates the full pool every Period epochs (Period 1 =
// daily, the paper's default; Necurs uses Period 4).
type DrainReplenish struct {
	NX     int // θ∅
	C2     int // θ∃
	Period int // epochs between regenerations; 0 or 1 = every epoch
	Gen    Generator
}

// Class implements PoolModel.
func (m DrainReplenish) Class() PoolClass { return DrainReplenishPool }

// NXDomains implements PoolModel.
func (m DrainReplenish) NXDomains() int { return m.NX }

// C2Domains implements PoolModel.
func (m DrainReplenish) C2Domains() int { return m.C2 }

// PoolFor implements PoolModel.
func (m DrainReplenish) PoolFor(seed uint64, epoch int) *Pool {
	period := m.Period
	if period < 1 {
		period = 1
	}
	gen := epoch / period
	rng := sim.SplitFrom(seed, uint64(gen)*2654435761+1)
	domains := m.Gen.GenerateUnique(rng, m.NX+m.C2, nil)
	valid := rng.Perm(len(domains))[:m.C2]
	return NewPool(domains, valid)
}

// SlidingWindow keeps a window of daily blocks: at epoch e the pool is the
// concatenation of the blocks for epochs [e-Back, e+Forward], each holding
// PerDay fresh domains (paper §III-A; Ranbyus: Back=29, Forward=0,
// PerDay=40; PushDo: Back=30, Forward=15, PerDay=30).
type SlidingWindow struct {
	PerDay  int
	Back    int // days of history retained
	Forward int // days of future domains pre-generated
	C2      int // registered domains per epoch's pool
	Gen     Generator
}

// Class implements PoolModel.
func (m SlidingWindow) Class() PoolClass { return SlidingWindowPool }

// NXDomains implements PoolModel.
func (m SlidingWindow) NXDomains() int {
	return m.PerDay*(m.Back+m.Forward+1) - m.C2
}

// C2Domains implements PoolModel.
func (m SlidingWindow) C2Domains() int { return m.C2 }

// PoolFor implements PoolModel.
func (m SlidingWindow) PoolFor(seed uint64, epoch int) *Pool {
	domains := make([]string, 0, m.PerDay*(m.Back+m.Forward+1))
	for day := epoch - m.Back; day <= epoch+m.Forward; day++ {
		domains = append(domains, m.block(seed, day)...)
	}
	// The botmaster registers C2 domains deterministically per epoch,
	// preferring the freshest block (real operators register new domains as
	// old ones are sinkholed).
	rng := sim.SplitFrom(seed, uint64(uint32(epoch))*0x85ebca6b+7)
	valid := make([]int, 0, m.C2)
	freshStart := len(domains) - m.PerDay*(m.Forward+1)
	if freshStart < 0 {
		freshStart = 0
	}
	span := len(domains) - freshStart
	for _, off := range rng.Perm(span) {
		if len(valid) == m.C2 {
			break
		}
		valid = append(valid, freshStart+off)
	}
	return NewPool(domains, valid)
}

// block returns the PerDay domains generated on the given absolute day.
// Negative days are valid (bots that started before the observation epoch).
func (m SlidingWindow) block(seed uint64, day int) []string {
	rng := sim.SplitFrom(seed, uint64(uint32(day))*0xc2b2ae35+3)
	return m.Gen.GenerateUnique(rng, m.PerDay, nil)
}

// MultipleMixture interleaves one useful drain-and-replenish generator with
// one or more noise generators whose domains are never registered (paper
// §III-A; Pykspa: useful pool 200, noise pool 16K).
type MultipleMixture struct {
	UsefulNX   int
	UsefulC2   int
	NoiseSizes []int
	Gen        Generator
}

// Class implements PoolModel.
func (m MultipleMixture) Class() PoolClass { return MultipleMixturePool }

// NXDomains implements PoolModel.
func (m MultipleMixture) NXDomains() int {
	total := m.UsefulNX
	for _, n := range m.NoiseSizes {
		total += n
	}
	return total
}

// C2Domains implements PoolModel.
func (m MultipleMixture) C2Domains() int { return m.UsefulC2 }

// PoolFor implements PoolModel.
func (m MultipleMixture) PoolFor(seed uint64, epoch int) *Pool {
	rng := sim.SplitFrom(seed, uint64(uint32(epoch))*0x27d4eb2f+11)
	useful := m.Gen.GenerateUnique(rng, m.UsefulNX+m.UsefulC2, nil)
	exclude := make(map[string]struct{}, len(useful))
	for _, d := range useful {
		exclude[d] = struct{}{}
	}
	pools := [][]string{useful}
	for i, size := range m.NoiseSizes {
		noiseRNG := sim.SplitFrom(seed, uint64(uint32(epoch))*0x27d4eb2f+uint64(i)*0x165667b1+13)
		noise := m.Gen.GenerateUnique(noiseRNG, size, exclude)
		for _, d := range noise {
			exclude[d] = struct{}{}
		}
		pools = append(pools, noise)
	}
	// Interleave the instances round-robin, as concurrently running DGA
	// instances would emit them.
	domains := make([]string, 0, m.NXDomains()+m.UsefulC2)
	usefulPos := make(map[string]struct{}, len(useful))
	idx := make([]int, len(pools))
	for {
		progressed := false
		for pi := range pools {
			if idx[pi] < len(pools[pi]) {
				d := pools[pi][idx[pi]]
				if pi == 0 {
					usefulPos[d] = struct{}{}
				}
				domains = append(domains, d)
				idx[pi]++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	// Registered domains come from the useful instance only.
	usefulIdx := make([]int, 0, len(useful))
	for i, d := range domains {
		if _, ok := usefulPos[d]; ok {
			usefulIdx = append(usefulIdx, i)
		}
	}
	valid := make([]int, 0, m.UsefulC2)
	for _, off := range rng.Perm(len(usefulIdx)) {
		if len(valid) == m.UsefulC2 {
			break
		}
		valid = append(valid, usefulIdx[off])
	}
	return NewPool(domains, valid)
}

// validatePool is a debug helper ensuring model invariants; exposed via
// tests.
func validatePool(p *Pool, wantC2 int) error {
	if len(p.ValidPositions) != wantC2 {
		return fmt.Errorf("pool has %d valid positions, want %d", len(p.ValidPositions), wantC2)
	}
	seen := make(map[string]struct{}, len(p.Domains))
	for _, d := range p.Domains {
		if _, dup := seen[d]; dup {
			return fmt.Errorf("duplicate domain %q", d)
		}
		seen[d] = struct{}{}
	}
	return nil
}
