// Package dga implements the paper's §III taxonomy of domain generation
// algorithms: query-pool models (drain-and-replenish, sliding-window,
// multiple-mixture) crossed with query-barrel models (uniform, sampling,
// randomcut, permutation), plus pseudo-random domain generation and named
// presets for the malware families the paper discusses (Table I and §III
// text).
//
// All generation is deterministic given a (seed, epoch) pair: the botmaster
// and every bot share the same DGA, so the pool for an epoch is a pure
// function of those inputs, exactly as in real DGA malware where the seed is
// the current date.
package dga

// PoolClass identifies how the query pool evolves across epochs (paper
// §III-A).
type PoolClass int

const (
	// DrainReplenishPool replaces the entire pool every pool period.
	DrainReplenishPool PoolClass = iota + 1
	// SlidingWindowPool retires a day's block and admits a new one daily.
	SlidingWindowPool
	// MultipleMixturePool interleaves one useful generator with noisy ones.
	MultipleMixturePool
)

// String returns the paper's name for the pool class.
func (c PoolClass) String() string {
	switch c {
	case DrainReplenishPool:
		return "drain-and-replenish"
	case SlidingWindowPool:
		return "sliding-window"
	case MultipleMixturePool:
		return "multiple-mixture"
	default:
		return "unknown-pool"
	}
}

// BarrelClass identifies how each bot selects its query barrel from the
// pool (paper §III-B).
type BarrelClass int

const (
	// UniformBarrel queries the pool in generation order (AU).
	UniformBarrel BarrelClass = iota + 1
	// SamplingBarrel queries a random θq-subset of the pool (AS).
	SamplingBarrel
	// RandomCutBarrel queries θq consecutive domains from a random start
	// in the pool's global circular order (AR).
	RandomCutBarrel
	// PermutationBarrel queries the whole pool in a random order (AP).
	PermutationBarrel
)

// String returns the paper's name for the barrel class.
func (c BarrelClass) String() string {
	switch c {
	case UniformBarrel:
		return "uniform"
	case SamplingBarrel:
		return "sampling"
	case RandomCutBarrel:
		return "randomcut"
	case PermutationBarrel:
		return "permutation"
	default:
		return "unknown-barrel"
	}
}

// Model is the paper's shorthand for a drain-and-replenish DGA with a given
// barrel class: AU, AS, AR, AP.
func Model(b BarrelClass) string {
	switch b {
	case UniformBarrel:
		return "AU"
	case SamplingBarrel:
		return "AS"
	case RandomCutBarrel:
		return "AR"
	case PermutationBarrel:
		return "AP"
	default:
		return "A?"
	}
}
