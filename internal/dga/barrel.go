package dga

import "botmeter/internal/sim"

// BarrelModel selects the sequence of pool positions a bot intends to query
// during one activation (paper §III-B). The returned sequence has length at
// most θq; actual execution additionally stops at the first position holding
// a registered domain (see ExecuteBarrel).
type BarrelModel interface {
	// Class reports the taxonomy cell of this model.
	Class() BarrelClass
	// Barrel draws one bot-activation's intended query positions.
	Barrel(pool *Pool, thetaQ int, rng *sim.RNG) []int
}

// Uniform queries the pool in generation order — every bot issues the
// identical sequence (Murofet, Srizbi, Torpig, Ramnit, Qakbot).
type Uniform struct{}

// Class implements BarrelModel.
func (Uniform) Class() BarrelClass { return UniformBarrel }

// Barrel implements BarrelModel.
func (Uniform) Barrel(pool *Pool, thetaQ int, _ *sim.RNG) []int {
	n := min(thetaQ, pool.Size())
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Sampling queries a uniformly random θq-subset of the pool, in random
// order (Conficker.C: 500 of 50K).
type Sampling struct{}

// Class implements BarrelModel.
func (Sampling) Class() BarrelClass { return SamplingBarrel }

// Barrel implements BarrelModel.
func (Sampling) Barrel(pool *Pool, thetaQ int, rng *sim.RNG) []int {
	n := min(thetaQ, pool.Size())
	return rng.Perm(pool.Size())[:n]
}

// RandomCut picks a random starting position on the pool circle and queries
// the next θq positions clockwise (newGoZ: 500 consecutive of 10K).
type RandomCut struct{}

// Class implements BarrelModel.
func (RandomCut) Class() BarrelClass { return RandomCutBarrel }

// Barrel implements BarrelModel.
func (RandomCut) Barrel(pool *Pool, thetaQ int, rng *sim.RNG) []int {
	size := pool.Size()
	if size == 0 {
		return nil
	}
	n := min(thetaQ, size)
	start := rng.IntN(size)
	out := make([]int, n)
	for i := range out {
		out[i] = (start + i) % size
	}
	return out
}

// Permutation queries the entire pool in a fresh random order each
// activation (Necurs).
type Permutation struct{}

// Class implements BarrelModel.
func (Permutation) Class() BarrelClass { return PermutationBarrel }

// Barrel implements BarrelModel.
func (Permutation) Barrel(pool *Pool, thetaQ int, rng *sim.RNG) []int {
	n := min(thetaQ, pool.Size())
	return rng.Perm(pool.Size())[:n]
}

// BarrelWithScratch draws one activation's barrel exactly like m.Barrel —
// same RNG draws, same positions — but routes the pool-sized permutation
// through *scratch and returns only the retained θq-prefix in a fresh,
// exactly-sized slice. Sampling and Permutation's Barrel returns
// Perm(size)[:n], which pins a pool-sized backing array for the whole bot
// activation; with a 50K pool and θq=500 that is a 100× overhead per bot,
// the dominant simulation allocation for AS/AP families. Unknown models
// fall back to m.Barrel unchanged.
func BarrelWithScratch(m BarrelModel, pool *Pool, thetaQ int, rng *sim.RNG, scratch *[]int) []int {
	switch m.(type) {
	case Sampling, Permutation:
		size := pool.Size()
		n := min(thetaQ, size)
		*scratch = rng.PermInto(*scratch, size)
		out := make([]int, n)
		copy(out, *scratch)
		return out
	default:
		return m.Barrel(pool, thetaQ, rng)
	}
}

// ExecuteBarrel truncates an intended barrel at the bot's termination
// condition: the sequence up to and including the first registered domain,
// or the whole barrel if every position is an NXD (the bot aborts after θq
// lookups). This is the sequence of domains actually sent to DNS.
func ExecuteBarrel(pool *Pool, positions []int) []int {
	for i, p := range positions {
		if pool.ValidAt(p) {
			return positions[:i+1]
		}
	}
	return positions
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
