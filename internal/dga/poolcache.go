package dga

import (
	"sync"

	"botmeter/internal/symtab"
)

// PoolCache memoizes PoolFor materialisations for one (model, seed) pair and
// is the single interning choke point of a trial: every pool it hands out is
// symbolized against the trial's symtab.Table, so the runner, the matcher
// and every estimator share one pool object per epoch instead of each
// regenerating (and re-hashing) tens of thousands of domain strings.
//
// RNG streams are untouched — PoolCache calls the model's PoolFor exactly as
// before (same seed, same split sequence, same draws) and interns the
// resulting strings afterwards, so symbolized and unsymbolized runs generate
// byte-identical domain sets.
//
// For is safe for concurrent use (per-server estimation goroutines may fault
// in pools concurrently); the returned *Pool is immutable after construction.
type PoolCache struct {
	model PoolModel
	seed  uint64
	tab   *symtab.Table

	mu      sync.Mutex
	byEpoch map[int]*Pool
}

// NewPoolCache builds a cache over model at seed. tab may be nil, in which
// case pools are memoized but not symbolized (string paths only).
func NewPoolCache(model PoolModel, seed uint64, tab *symtab.Table) *PoolCache {
	return &PoolCache{
		model:   model,
		seed:    seed,
		tab:     tab,
		byEpoch: make(map[int]*Pool),
	}
}

// For returns the (memoized, interned) pool for epoch.
func (c *PoolCache) For(epoch int) *Pool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.byEpoch[epoch]; ok {
		return p
	}
	p := c.model.PoolFor(c.seed, epoch)
	p.Intern(c.tab)
	c.byEpoch[epoch] = p
	return p
}

// Table returns the symtab table pools are interned against (nil if none).
func (c *PoolCache) Table() *symtab.Table { return c.tab }

// Model returns the underlying pool model.
func (c *PoolCache) Model() PoolModel { return c.model }

// Seed returns the generation seed.
func (c *PoolCache) Seed() uint64 { return c.seed }
