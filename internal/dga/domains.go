package dga

import (
	"bytes"

	"botmeter/internal/sim"
)

// Generator describes the lexical profile of a family's domain output:
// alphabet, length range and candidate TLDs. It stands in for the byte-level
// generation logic of real malware; BotMeter's estimators never depend on
// domain content, only on set membership and pool order, so a profile-
// faithful generator preserves all relevant behaviour (see DESIGN.md §6).
type Generator struct {
	Charset string
	MinLen  int
	MaxLen  int
	TLDs    []string
}

// DefaultGenerator is a lowercase-alphanumeric profile resembling the bulk
// of observed DGA output.
var DefaultGenerator = Generator{
	Charset: "abcdefghijklmnopqrstuvwxyz",
	MinLen:  8,
	MaxLen:  20,
	TLDs:    []string{"com", "net", "org", "info", "biz", "ru"},
}

// normalized resolves zero-value fields to the default profile.
func (g Generator) normalized() Generator {
	if g.Charset == "" {
		g.Charset = DefaultGenerator.Charset
	}
	if g.MinLen <= 0 {
		g.MinLen = DefaultGenerator.MinLen
	}
	if g.MaxLen < g.MinLen {
		g.MaxLen = g.MinLen
	}
	if len(g.TLDs) == 0 {
		g.TLDs = DefaultGenerator.TLDs
	}
	return g
}

// Generate draws one pseudo-random domain from the profile.
func (g Generator) Generate(rng *sim.RNG) string {
	n := g.normalized()
	return string(n.generateInto(rng, make([]byte, 0, n.MaxLen+1+4)))
}

// generateInto appends one domain's bytes to buf and returns it. The RNG
// draw sequence (length, per-character, TLD) is the kernel's generation
// contract: it is identical whether the bytes land in a one-off buffer
// (Generate) or in GenerateUnique's reused scratch, so pools are
// byte-identical across both paths. g must already be normalized.
func (g Generator) generateInto(rng *sim.RNG, buf []byte) []byte {
	n := g.MinLen
	if g.MaxLen > g.MinLen {
		n += rng.IntN(g.MaxLen - g.MinLen + 1)
	}
	for i := 0; i < n; i++ {
		buf = append(buf, g.Charset[rng.IntN(len(g.Charset))])
	}
	buf = append(buf, '.')
	buf = append(buf, g.TLDs[rng.IntN(len(g.TLDs))]...)
	return buf
}

// GenerateUnique draws count distinct domains, retrying collisions against
// both the fresh batch and the supplied exclusion set (which may be nil).
//
// The domains of one batch share a single backing allocation: candidates
// are drawn into a reused scratch buffer, deduplicated via an offset-keyed
// open-addressed set over a byte arena (no per-domain map keys), and sliced
// out of one arena-wide string at the end. A Conficker-scale pool therefore
// costs a handful of allocations instead of one heap string per domain —
// generation was ~90% of residual per-trial allocation objects before this
// (see DESIGN.md §14). The RNG draw sequence is byte-for-byte the one
// Generate performs, so pools are unchanged.
func (g Generator) GenerateUnique(rng *sim.RNG, count int, exclude map[string]struct{}) []string {
	g = g.normalized()
	type span struct{ off, len int32 }
	arena := make([]byte, 0, count*(g.MaxLen+1+4))
	spans := make([]span, 0, count)
	// Open-addressed dedup index over arena spans: a slot stores span
	// index+1 (0 = empty). Sized ≥2× count so the load factor stays ≤0.5.
	slots := 1
	for slots < count*2 {
		slots <<= 1
	}
	idx := make([]int32, slots)
	mask := uint32(slots - 1)

	scratch := make([]byte, 0, g.MaxLen+1+4)
	for len(spans) < count {
		scratch = g.generateInto(rng, scratch[:0])

		h := fnv1aBytes(scratch)
		slot := uint32(h) & mask
		dup := false
		for {
			si := idx[slot]
			if si == 0 {
				break
			}
			sp := spans[si-1]
			if bytes.Equal(arena[sp.off:sp.off+sp.len], scratch) {
				dup = true
				break
			}
			slot = (slot + 1) & mask
		}
		if dup {
			continue
		}
		if exclude != nil {
			// string(scratch) in a map lookup does not allocate.
			if _, skip := exclude[string(scratch)]; skip {
				continue
			}
		}
		off := int32(len(arena))
		arena = append(arena, scratch...)
		spans = append(spans, span{off: off, len: int32(len(scratch))})
		idx[slot] = int32(len(spans))
	}

	// One arena-wide string; every domain is an alloc-free slice of it.
	all := string(arena)
	out := make([]string, count)
	for i, sp := range spans {
		out[i] = all[sp.off : sp.off+sp.len]
	}
	return out
}

// fnv1aBytes is the 64-bit FNV-1a hash of b.
func fnv1aBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}
