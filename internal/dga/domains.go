package dga

import (
	"strings"
	"sync"

	"botmeter/internal/sim"
)

// Generator describes the lexical profile of a family's domain output:
// alphabet, length range and candidate TLDs. It stands in for the byte-level
// generation logic of real malware; BotMeter's estimators never depend on
// domain content, only on set membership and pool order, so a profile-
// faithful generator preserves all relevant behaviour (see DESIGN.md §6).
type Generator struct {
	Charset string
	MinLen  int
	MaxLen  int
	TLDs    []string
}

// DefaultGenerator is a lowercase-alphanumeric profile resembling the bulk
// of observed DGA output.
var DefaultGenerator = Generator{
	Charset: "abcdefghijklmnopqrstuvwxyz",
	MinLen:  8,
	MaxLen:  20,
	TLDs:    []string{"com", "net", "org", "info", "biz", "ru"},
}

// Generate draws one pseudo-random domain from the profile.
func (g Generator) Generate(rng *sim.RNG) string {
	charset := g.Charset
	if charset == "" {
		charset = DefaultGenerator.Charset
	}
	minLen, maxLen := g.MinLen, g.MaxLen
	if minLen <= 0 {
		minLen = DefaultGenerator.MinLen
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	tlds := g.TLDs
	if len(tlds) == 0 {
		tlds = DefaultGenerator.TLDs
	}
	n := minLen
	if maxLen > minLen {
		n += rng.IntN(maxLen - minLen + 1)
	}
	var b strings.Builder
	b.Grow(n + 1 + 4)
	for i := 0; i < n; i++ {
		b.WriteByte(charset[rng.IntN(len(charset))])
	}
	b.WriteByte('.')
	b.WriteString(tlds[rng.IntN(len(tlds))])
	return b.String()
}

// seenMaps recycles GenerateUnique's dedup scratch. Pool regeneration runs
// once per (epoch, family) and allocated a fresh count-sized map each time;
// the recycled maps keep their buckets across calls and across the
// concurrent experiment trials that share this package.
var seenMaps = sync.Pool{
	New: func() any { return make(map[string]struct{}, 1024) },
}

// GenerateUnique draws count distinct domains, retrying collisions against
// both the fresh batch and the supplied exclusion set (which may be nil).
func (g Generator) GenerateUnique(rng *sim.RNG, count int, exclude map[string]struct{}) []string {
	out := make([]string, 0, count)
	seen := seenMaps.Get().(map[string]struct{})
	for len(out) < count {
		d := g.Generate(rng)
		if _, dup := seen[d]; dup {
			continue
		}
		if exclude != nil {
			if _, dup := exclude[d]; dup {
				continue
			}
		}
		seen[d] = struct{}{}
		out = append(out, d)
	}
	clear(seen)
	seenMaps.Put(seen)
	return out
}
