package stream_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

// followTrace writes a small synthetic capture to dir and returns its path
// plus the records it contains.
func followTrace(tb testing.TB, dir, name, format string) (string, trace.Observed) {
	tb.Helper()
	spec, _ := testConfig()
	recs := synthTrace(tb, spec, 7, 3, 2, 2)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	if format == "jsonl" {
		err = trace.WriteObservedJSONL(f, recs)
	} else {
		err = trace.WriteObservedCSV(f, recs)
	}
	if err != nil {
		tb.Fatal(err)
	}
	return path, recs
}

// TestFollowFileOneShot: FollowFile over a finished capture must chart it
// exactly as the batch pipeline does, with the empty format defaulting to
// CSV (the cmd convention).
func TestFollowFileOneShot(t *testing.T) {
	_, coreCfg := testConfig()
	path, recs := followTrace(t, t.TempDir(), "obs.csv", "csv")
	eng, err := stream.New(stream.Config{Core: coreCfg})
	if err != nil {
		t.Fatal(err)
	}
	if name := eng.EstimatorName(); name == "" {
		t.Error("EstimatorName is empty")
	}
	res, err := eng.FollowFile(context.Background(), path, stream.FollowOptions{})
	if err != nil {
		t.Fatalf("FollowFile: %v", err)
	}
	if res.Records != len(recs) {
		t.Errorf("followed %d records, trace has %d", res.Records, len(recs))
	}
	got, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualLandscapes(t, runBatch(t, coreCfg, recs), got)
}

// TestFollowFileMissing: a nonexistent path fails up front, in both live
// and one-shot modes.
func TestFollowFileMissing(t *testing.T) {
	_, coreCfg := testConfig()
	eng, err := stream.New(stream.Config{Core: coreCfg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	missing := filepath.Join(t.TempDir(), "nope.csv")
	if _, err := eng.FollowFile(context.Background(), missing, stream.FollowOptions{}); err == nil {
		t.Error("one-shot follow of a missing file should fail")
	}
	if _, err := eng.FollowFile(context.Background(), missing, stream.FollowOptions{Live: true}); err == nil {
		t.Error("live follow of a missing file should fail")
	}
}

// TestFollowSkipAndCheckpoint: SkipRecords discards the replayed prefix
// (the restored checkpoint already holds its effects) while the
// checkpointer cuts on the ABSOLUTE source position, so a later resume
// lands past both.
func TestFollowSkipAndCheckpoint(t *testing.T) {
	_, coreCfg := testConfig()
	dir := t.TempDir()
	path, recs := followTrace(t, dir, "obs.jsonl", "jsonl")
	skip := uint64(len(recs) / 2)

	reference, err := stream.New(stream.Config{Core: coreCfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[skip:] {
		if err := reference.Observe(rec); err != nil {
			t.Fatal(err)
		}
	}
	want, err := reference.Close()
	if err != nil {
		t.Fatal(err)
	}

	eng, err := stream.New(stream.Config{Core: coreCfg})
	if err != nil {
		t.Fatal(err)
	}
	ckDir := filepath.Join(dir, "ckpt")
	ck, err := stream.NewCheckpointer(stream.CheckpointConfig{
		Dir:          ckDir,
		EveryRecords: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.FollowFile(context.Background(), path, stream.FollowOptions{
		Format:      "jsonl",
		SkipRecords: skip,
		Checkpoint:  ck,
	})
	if err != nil {
		t.Fatalf("FollowFile: %v", err)
	}
	if res.Records != len(recs) {
		t.Errorf("followed %d records, trace has %d", res.Records, len(recs))
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualLandscapes(t, want, got)

	// The newest checkpoint cut on the ABSOLUTE source position — past the
	// skipped prefix — so a resume from it would replay nothing twice.
	state, info, err := stream.LoadCheckpoint(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Found {
		t.Fatal("no checkpoint written")
	}
	if state.Source.Records <= skip || state.Source.Records > uint64(len(recs)) {
		t.Errorf("checkpoint cut at record %d, want in (%d, %d]", state.Source.Records, skip, len(recs))
	}
}

// TestFollowLiveTail: in live mode Follow keeps consuming appended records
// until the context is cancelled, then drains cleanly.
func TestFollowLiveTail(t *testing.T) {
	spec, coreCfg := testConfig()
	recs := synthTrace(t, spec, 7, 2, 1, 1)
	half := len(recs) / 2
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteObservedJSONL(f, recs[:half]); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	eng, err := stream.New(stream.Config{Core: coreCfg})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res trace.ReadResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := eng.FollowFile(ctx, path, stream.FollowOptions{
			Format: "jsonl",
			Live:   true,
			Poll:   2 * time.Millisecond,
		})
		done <- outcome{res, err}
	}()

	// Append the second half while the tail is live, then give the poll
	// loop time to pick it up before cancelling.
	if err := trace.WriteObservedJSONL(f, recs[half:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Ingested < uint64(len(recs)) {
		if time.Now().After(deadline) {
			t.Fatalf("tail ingested %d of %d records before the deadline", eng.Stats().Ingested, len(recs))
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	out := <-done
	if out.err != nil {
		t.Fatalf("live follow: %v", out.err)
	}
	if out.res.Records != len(recs) {
		t.Errorf("followed %d records, appended %d", out.res.Records, len(recs))
	}
	got, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualLandscapes(t, runBatch(t, coreCfg, recs), got)
}
