package stream_test

import (
	"strings"
	"testing"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/experiments"
	"botmeter/internal/sim"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

// testConfig is the shared small configuration of the property tests.
func testConfig() (dga.Spec, core.Config) {
	spec := experiments.ScaledSpec(dga.Murofet(), 0.1)
	return spec, core.Config{Family: spec, Seed: 7, EpochLen: testEpochLen}
}

// TestEmptyTrace: an engine that never sees a record must close cleanly
// into an empty landscape — no servers, no window, no retained state.
func TestEmptyTrace(t *testing.T) {
	_, coreCfg := testConfig()
	eng, err := stream.New(stream.Config{Core: coreCfg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := eng.Snapshot(); err != nil {
		t.Fatalf("Snapshot on empty engine: %v", err)
	}
	land, err := eng.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(land.Servers) != 0 || land.Total != 0 || land.MatchedLookups != 0 {
		t.Fatalf("empty engine produced a non-empty landscape: %+v", land)
	}
	stats := eng.Stats()
	if stats != (stream.Stats{Watermark: stats.Watermark}) {
		t.Fatalf("empty engine has non-zero stats: %+v", stats)
	}
}

// TestSingleRecord: one matched record must chart exactly as the batch
// pipeline charts it.
func TestSingleRecord(t *testing.T) {
	spec, coreCfg := testConfig()
	pool := spec.Pool.PoolFor(coreCfg.Seed, 0)
	delivered := trace.Observed{{T: 1234, Server: "local-a", Domain: pool.Domains[0]}}
	want := runBatch(t, coreCfg, delivered)
	got, stats := runStream(t, stream.Config{Core: coreCfg}, delivered)
	requireEqualLandscapes(t, want, got)
	if stats.Matched != 1 || stats.DroppedLate != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if len(got.Servers) != 1 || got.Servers[0].MatchedLookups != 1 {
		t.Fatalf("landscape: %+v", got)
	}
}

// TestEpochBoundaryRecords: records at the exact first and last instants of
// each epoch must land in the same epoch cell as the batch grid puts them
// (epochs are half-open: T = k·δe opens epoch k).
func TestEpochBoundaryRecords(t *testing.T) {
	spec, coreCfg := testConfig()
	var delivered trace.Observed
	for ep := 0; ep < 3; ep++ {
		pool := spec.Pool.PoolFor(coreCfg.Seed, ep)
		start := sim.Time(ep) * testEpochLen
		delivered = append(delivered,
			trace.ObservedRecord{T: start, Server: "local-a", Domain: pool.Domains[0]},
			trace.ObservedRecord{T: start, Server: "local-b", Domain: pool.Domains[1]},
			trace.ObservedRecord{T: start + testEpochLen - 1, Server: "local-a", Domain: pool.Domains[2]},
		)
	}
	delivered.Sort()
	want := runBatch(t, coreCfg, delivered)
	got, stats := runStream(t, stream.Config{Core: coreCfg}, delivered)
	requireEqualLandscapes(t, want, got)
	if stats.Matched != uint64(len(delivered)) {
		t.Fatalf("matched %d of %d boundary records", stats.Matched, len(delivered))
	}
	for _, sv := range got.Servers {
		if len(sv.PerEpoch) != 3 {
			t.Fatalf("%s spans %d epochs, want 3", sv.Server, len(sv.PerEpoch))
		}
	}
}

// TestDuplicateTimestamps: ties are the documented hazard of streaming
// (arrival order breaks them). The contract is that stream emission keeps
// arrival order for equal timestamps — the exact stable sort the batch
// runs — so even a trace that is ALL ties must agree bit-for-bit.
func TestDuplicateTimestamps(t *testing.T) {
	spec, coreCfg := testConfig()
	pool := spec.Pool.PoolFor(coreCfg.Seed, 0)
	var delivered trace.Observed
	for i := 0; i < 200; i++ {
		delivered = append(delivered, trace.ObservedRecord{
			T:      sim.Time(5000 + 100*(i%3)), // three distinct instants, heavily duplicated
			Server: serverName(i % 4),
			Domain: pool.Domains[i%pool.Size()],
		})
	}
	want := runBatch(t, coreCfg, delivered)
	got, stats := runStream(t, stream.Config{Core: coreCfg, Shards: 3}, delivered)
	requireEqualLandscapes(t, want, got)
	if stats.DroppedLate != 0 || stats.ReorderEvictions != 0 {
		t.Fatalf("ties must not be dropped: %+v", stats)
	}
}

// TestReorderOverflow: a buffer stuffed past MaxReorder must degrade
// gracefully — forced emissions are counted, nothing panics, no record is
// silently lost, and the watermark stays monotone.
func TestReorderOverflow(t *testing.T) {
	spec, coreCfg := testConfig()
	pool := spec.Pool.PoolFor(coreCfg.Seed, 0)
	// Identical timestamps never advance the watermark, so every record
	// accumulates in the buffer until it overflows.
	var delivered trace.Observed
	for i := 0; i < 100; i++ {
		delivered = append(delivered, trace.ObservedRecord{
			T: 1000, Server: "local-a", Domain: pool.Domains[i%pool.Size()],
		})
	}
	eng, err := stream.New(stream.Config{Core: coreCfg, Shards: 1, MaxReorder: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, rec := range delivered {
		if err := eng.Observe(rec); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	land, err := eng.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	stats := eng.Stats()
	if stats.ReorderEvictions == 0 {
		t.Fatal("overflow did not evict")
	}
	// Conservation: every accepted matched record reaches the landscape —
	// eviction force-emits, it never discards.
	if got, want := land.MatchedLookups, int(stats.Matched-stats.DroppedLate); got != want {
		t.Fatalf("conservation violated: %d charted, %d accepted", got, want)
	}
	if stats.Retained != 0 {
		t.Fatalf("%d records retained after Close", stats.Retained)
	}
}

// TestLateRecordsDropped: records arriving behind the watermark are counted
// drops, never panics, never regressions. The watermark (single shard, so
// the global view IS the shard view) must be monotone throughout.
func TestLateRecordsDropped(t *testing.T) {
	spec, coreCfg := testConfig()
	pool := spec.Pool.PoolFor(coreCfg.Seed, 0)
	const window = 2 * sim.Second
	eng, err := stream.New(stream.Config{Core: coreCfg, Shards: 1, ReorderWindow: window})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Descending timestamps spaced wider than the reorder window: the
	// first record pins the watermark, everything after is late.
	lastWM := sim.Time(-1 << 62)
	for i := 0; i < 50; i++ {
		rec := trace.ObservedRecord{
			T:      sim.Time(10*sim.Minute) - sim.Time(i)*2*window,
			Server: "local-a",
			Domain: pool.Domains[i%pool.Size()],
		}
		if err := eng.Observe(rec); err != nil {
			t.Fatalf("Observe: %v", err)
		}
		stats := eng.Stats()
		if stats.WatermarkValid {
			if stats.Watermark < lastWM {
				t.Fatalf("watermark regressed: %d → %d", lastWM, stats.Watermark)
			}
			lastWM = stats.Watermark
		}
	}
	land, err := eng.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	stats := eng.Stats()
	if stats.DroppedLate != 49 {
		t.Fatalf("want 49 late drops, got %d", stats.DroppedLate)
	}
	if land.MatchedLookups != 1 {
		t.Fatalf("only the first record should chart, got %d", land.MatchedLookups)
	}
}

// TestEngineLifecycle: Observe after Close fails, double Close fails, and a
// non-epoch-aligned pinned window is rejected at construction.
func TestEngineLifecycle(t *testing.T) {
	_, coreCfg := testConfig()
	eng, err := stream.New(stream.Config{Core: coreCfg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := eng.Observe(trace.ObservedRecord{Server: "x", Domain: "y"}); err == nil {
		t.Fatal("Observe after Close succeeded")
	}
	if _, err := eng.Close(); err == nil {
		t.Fatal("double Close succeeded")
	}
	_, err = stream.New(stream.Config{
		Core:   coreCfg,
		Window: sim.Window{Start: 0, End: testEpochLen + 1},
	})
	if err == nil || !strings.Contains(err.Error(), "epoch-aligned") {
		t.Fatalf("misaligned window accepted: %v", err)
	}
}

// TestLandscapeJSON: the /landscape payload round-trips through the stable
// core schema.
func TestLandscapeJSON(t *testing.T) {
	spec, coreCfg := testConfig()
	pool := spec.Pool.PoolFor(coreCfg.Seed, 0)
	eng, err := stream.New(stream.Config{Core: coreCfg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := eng.Observe(trace.ObservedRecord{T: 42, Server: "local-a", Domain: pool.Domains[0]}); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if _, err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	body, err := eng.LandscapeJSON()
	if err != nil {
		t.Fatalf("LandscapeJSON: %v", err)
	}
	for _, want := range []string{`"family"`, `"servers"`, `"local-a"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("payload missing %s:\n%s", want, body)
		}
	}
}
