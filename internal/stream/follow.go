package stream

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"botmeter/internal/trace"
)

// FollowOptions tunes Follow's tailing behaviour.
type FollowOptions struct {
	// Format is the input encoding: "jsonl" or "csv" (default csv, the
	// cmd convention).
	Format string
	// Lenient skips malformed lines instead of failing — the right choice
	// for live captures, whose final line may be torn mid-append.
	Lenient bool
	// Poll is the tail polling interval once EOF is reached (0 = 200 ms).
	Poll time.Duration
	// Live, when false, stops at the first EOF instead of tailing — the
	// one-shot replay mode.
	Live bool
}

// Follow feeds records from r into the engine until the reader is
// exhausted (Live=false) or the context is cancelled (Live=true). It
// returns the reader's tally; the engine is left open so the caller
// decides when to Close and render the final landscape.
func (e *Engine) Follow(ctx context.Context, r io.Reader, opt FollowOptions) (trace.ReadResult, error) {
	if opt.Live {
		r = trace.NewTailReader(ctx, r, opt.Poll)
	}
	format := opt.Format
	if format == "" {
		format = "csv"
	}
	// Cancellation flows through the TailReader (it surfaces EOF), so
	// records already buffered by the parser still reach the engine and
	// Follow returns nil on a clean shutdown.
	return trace.StreamObserved(r, format, trace.ReadOptions{Lenient: opt.Lenient}, e.Observe)
}

// FollowFile opens path and Follows it. The file is opened at the start
// (not the end): a landscape needs the already-captured epochs too.
func (e *Engine) FollowFile(ctx context.Context, path string, opt FollowOptions) (trace.ReadResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.ReadResult{}, fmt.Errorf("stream: %w", err)
	}
	defer f.Close()
	return e.Follow(ctx, f, opt)
}
