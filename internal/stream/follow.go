package stream

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"botmeter/internal/trace"
)

// FollowOptions tunes Follow's tailing behaviour.
type FollowOptions struct {
	// Format is the input encoding: "jsonl" or "csv" (default csv, the
	// cmd convention).
	Format string
	// Lenient skips malformed lines instead of failing — the right choice
	// for live captures, whose final line may be torn mid-append.
	Lenient bool
	// Poll is the tail polling interval once EOF is reached (0 = 200 ms).
	Poll time.Duration
	// Live, when false, stops at the first EOF instead of tailing — the
	// one-shot replay mode.
	Live bool
	// SkipRecords discards the first N well-formed records without feeding
	// them to the engine — the resume-from-checkpoint replay: the engine
	// already holds their effects, so re-observing them would double-count.
	// Malformed lines don't count (they didn't count when the checkpoint's
	// source position was recorded either).
	SkipRecords uint64
	// Checkpoint, when non-nil, checkpoints the engine on the
	// checkpointer's cadence as records flow, keyed by the absolute source
	// position (records consumed, including skipped ones).
	Checkpoint *Checkpointer
}

// Follow feeds records from r into the engine until the reader is
// exhausted (Live=false) or the context is cancelled (Live=true). It
// returns the reader's tally; the engine is left open so the caller
// decides when to Close and render the final landscape.
func (e *Engine) Follow(ctx context.Context, r io.Reader, opt FollowOptions) (trace.ReadResult, error) {
	if opt.Live {
		r = trace.NewTailReader(ctx, r, opt.Poll)
	}
	format := opt.Format
	if format == "" {
		format = "csv"
	}
	var consumed uint64
	// Cancellation flows through the TailReader (it surfaces EOF), so
	// records already buffered by the parser still reach the engine and
	// Follow returns nil on a clean shutdown.
	return trace.StreamObserved(r, format, trace.ReadOptions{Lenient: opt.Lenient}, func(rec trace.ObservedRecord) error {
		consumed++
		if consumed <= opt.SkipRecords {
			return nil
		}
		if err := e.Observe(rec); err != nil {
			return err
		}
		if opt.Checkpoint != nil {
			return opt.Checkpoint.Maybe(e, consumed)
		}
		return nil
	})
}

// FollowFile opens path and Follows it. The file is opened at the start
// (not the end): a landscape needs the already-captured epochs too. In
// Live mode the file is tailed rotation-aware (trace.TailFile): an
// in-place truncation or a rename-and-recreate is survived by reopening
// and resyncing to a record boundary, counted under
// stream_source_rotations_total.
func (e *Engine) FollowFile(ctx context.Context, path string, opt FollowOptions) (trace.ReadResult, error) {
	if opt.Live {
		tf, err := trace.NewTailFile(ctx, path, opt.Poll)
		if err != nil {
			return trace.ReadResult{}, fmt.Errorf("stream: %w", err)
		}
		defer tf.Close()
		tf.OnRotate = func() { e.m.rotations.Inc() }
		// TailFile already blocks at EOF; don't double-wrap in a TailReader.
		inner := opt
		inner.Live = false
		return e.Follow(ctx, tf, inner)
	}
	f, err := os.Open(path)
	if err != nil {
		return trace.ReadResult{}, fmt.Errorf("stream: %w", err)
	}
	defer f.Close()
	return e.Follow(ctx, f, opt)
}
