package stream_test

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/estimators"
	"botmeter/internal/experiments"
	"botmeter/internal/faults"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

// testEpochLen keeps the synthetic traces small: three one-hour epochs
// instead of three days.
const testEpochLen = sim.Hour

// synthTrace builds a deterministic multi-server observable trace: for
// every epoch each server hosts a few bot activations drawing real barrels
// from the family's rotating pool (so the records genuinely match), plus
// background noise lookups that match nothing. The result is sorted by
// timestamp — the canonical in-order delivery.
func synthTrace(tb testing.TB, spec dga.Spec, seed uint64, servers, epochs, activations int) trace.Observed {
	tb.Helper()
	var out trace.Observed
	for ep := 0; ep < epochs; ep++ {
		pool := spec.Pool.PoolFor(seed, ep)
		if pool.Size() == 0 {
			tb.Fatalf("epoch %d: empty pool", ep)
		}
		epochStart := sim.Time(ep) * testEpochLen
		for sv := 0; sv < servers; sv++ {
			name := serverName(sv)
			rng := sim.SplitFrom(seed, uint64(ep)*1_000_003+uint64(sv))
			for a := 0; a < activations; a++ {
				margin := testEpochLen - spec.MaxDuration()
				if margin <= 0 {
					tb.Fatalf("activation duration %v exceeds epoch %v", spec.MaxDuration(), testEpochLen)
				}
				start := epochStart + sim.Time(rng.Int64N(int64(margin)))
				positions := dga.ExecuteBarrel(pool, spec.Barrel.Barrel(pool, spec.ThetaQ, rng))
				t := start
				for _, pos := range positions {
					out = append(out, trace.ObservedRecord{T: t, Server: name, Domain: pool.Domains[pos]})
					t += spec.Interval(rng)
				}
			}
			// Noise: lookups outside the pool, interleaved with the botnet
			// traffic. They must count as unmatched in the stream and be
			// ignored by the batch matcher alike.
			for n := 0; n < 5; n++ {
				out = append(out, trace.ObservedRecord{
					T:      epochStart + sim.Time(rng.Int64N(int64(testEpochLen))),
					Server: name,
					Domain: "benign-lookup.example.org",
				})
			}
		}
	}
	out.Sort()
	return out
}

func serverName(i int) string {
	return "local-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// chunkShuffle shuffles records within contiguous chunks whose timestamp
// span stays within the reorder window. Any such permutation is guaranteed
// loss-free: when a record r arrives, every already-arrived record has
// T ≤ chunkMax ≤ r.T + window, so the watermark (maxT − window) can never
// strictly exceed r.T.
func chunkShuffle(in trace.Observed, window sim.Time, rng *sim.RNG) trace.Observed {
	out := make(trace.Observed, len(in))
	copy(out, in)
	for i := 0; i < len(out); {
		j := i + 1
		for j < len(out) && out[j].T-out[i].T <= window {
			j++
		}
		chunk := out[i:j]
		rng.Shuffle(len(chunk), func(a, b int) { chunk[a], chunk[b] = chunk[b], chunk[a] })
		i = j
	}
	return out
}

// faultSequence applies mid-stream faults to a sorted trace with a
// deterministic injector: loss drops records, duplication delivers them
// twice, delay perturbs the ARRIVAL order (timestamps are untouched — the
// vantage point stamps at capture). With injected delay ≤ the reorder
// window the delivered sequence is loss-free by the same argument as
// chunkShuffle, so batch analysis of the delivered records must equal the
// streamed landscape exactly.
func faultSequence(in trace.Observed, inj *faults.Injector) trace.Observed {
	type arrival struct {
		at  sim.Time
		seq int
		rec trace.ObservedRecord
	}
	var items []arrival
	for _, rec := range in {
		if inj.Drop() {
			continue
		}
		copies := 1
		if inj.Duplicate() {
			copies = 2
		}
		for c := 0; c < copies; c++ {
			items = append(items, arrival{at: rec.T + inj.Delay(), seq: len(items), rec: rec})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].at != items[j].at {
			return items[i].at < items[j].at
		}
		return items[i].seq < items[j].seq
	})
	out := make(trace.Observed, len(items))
	for i, it := range items {
		out[i] = it.rec
	}
	return out
}

// analysisWindow derives the epoch-aligned window around a delivered
// sequence, exactly as cmd/botmeter does.
func analysisWindow(recs trace.Observed, epochLen sim.Time) sim.Window {
	minT, maxT := recs[0].T, recs[0].T
	for _, r := range recs {
		if r.T < minT {
			minT = r.T
		}
		if r.T > maxT {
			maxT = r.T
		}
	}
	return sim.Window{Start: (minT / epochLen) * epochLen, End: (maxT/epochLen + 1) * epochLen}
}

// runBatch charts the delivered sequence with the reference pipeline.
func runBatch(tb testing.TB, coreCfg core.Config, delivered trace.Observed) *core.Landscape {
	tb.Helper()
	bm, err := core.New(coreCfg)
	if err != nil {
		tb.Fatalf("core.New: %v", err)
	}
	land, err := bm.Analyze(delivered, analysisWindow(delivered, coreCfg.EpochLen))
	if err != nil {
		tb.Fatalf("Analyze: %v", err)
	}
	return land
}

// runStream feeds the delivered sequence through the engine from a single
// producer (delivery order is part of the contract) while a second
// goroutine concurrently polls Stats and Snapshot — the -race coverage of
// the read paths. Returns the final landscape and the closing stats.
func runStream(tb testing.TB, cfg stream.Config, delivered trace.Observed) (*core.Landscape, stream.Stats) {
	tb.Helper()
	eng, err := stream.New(cfg)
	if err != nil {
		tb.Fatalf("stream.New: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			eng.Stats()
			if _, err := eng.Snapshot(); err != nil {
				tb.Errorf("concurrent Snapshot: %v", err)
				return
			}
		}
	}()
	for _, rec := range delivered {
		if err := eng.Observe(rec); err != nil {
			tb.Fatalf("Observe: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	stats := eng.Stats()
	land, err := eng.Close()
	if err != nil {
		tb.Fatalf("Close: %v", err)
	}
	_ = stats
	final := eng.Stats()
	return land, final
}

// requireEqualLandscapes asserts the batch↔stream contract: identical
// server ranking and bit-identical per-server figures (the same code paths
// run on the same sorted observations). Total is summed in a different
// order by the two pipelines, so it gets an epsilon.
func requireEqualLandscapes(tb testing.TB, want, got *core.Landscape) {
	tb.Helper()
	if want.Estimator != got.Estimator {
		tb.Fatalf("estimator: batch %q stream %q", want.Estimator, got.Estimator)
	}
	if want.Window != got.Window {
		tb.Fatalf("window: batch %v stream %v", want.Window, got.Window)
	}
	if want.MatchedLookups != got.MatchedLookups {
		tb.Fatalf("matched lookups: batch %d stream %d", want.MatchedLookups, got.MatchedLookups)
	}
	if len(want.Servers) != len(got.Servers) {
		tb.Fatalf("server count: batch %d stream %d", len(want.Servers), len(got.Servers))
	}
	for i := range want.Servers {
		w, g := want.Servers[i], got.Servers[i]
		if w.Server != g.Server {
			tb.Fatalf("rank %d: batch %q stream %q", i, w.Server, g.Server)
		}
		if w.Population != g.Population {
			tb.Fatalf("%s population: batch %v stream %v", w.Server, w.Population, g.Population)
		}
		if w.SecondOpinion != g.SecondOpinion {
			tb.Fatalf("%s second opinion: batch %v stream %v", w.Server, w.SecondOpinion, g.SecondOpinion)
		}
		if w.MatchedLookups != g.MatchedLookups || w.DistinctDomains != g.DistinctDomains {
			tb.Fatalf("%s tallies: batch (%d,%d) stream (%d,%d)",
				w.Server, w.MatchedLookups, w.DistinctDomains, g.MatchedLookups, g.DistinctDomains)
		}
		if len(w.PerEpoch) != len(g.PerEpoch) {
			tb.Fatalf("%s per-epoch length: batch %d stream %d", w.Server, len(w.PerEpoch), len(g.PerEpoch))
		}
		for ep := range w.PerEpoch {
			if w.PerEpoch[ep] != g.PerEpoch[ep] {
				tb.Fatalf("%s epoch %d: batch %v stream %v", w.Server, ep, w.PerEpoch[ep], g.PerEpoch[ep])
			}
		}
	}
	if math.Abs(want.Total-got.Total) > 1e-9*math.Max(1, math.Abs(want.Total)) {
		tb.Fatalf("total: batch %v stream %v", want.Total, got.Total)
	}
}

// diffCase is one estimator configuration of the differential test.
type diffCase struct {
	name          string
	spec          dga.Spec
	estimator     func() estimators.Estimator // nil = taxonomy selection
	secondOpinion bool
	activations   int
}

func diffCases() []diffCase {
	return []diffCase{
		{
			// Poisson (MP): micro-batch on epoch close, order-insensitive.
			// Second opinion ON, so the incremental MT path runs alongside.
			name:          "MP-murofet",
			spec:          experiments.ScaledSpec(dga.Murofet(), 0.1),
			secondOpinion: true,
			activations:   3,
		},
		{
			// Bernoulli (MB): micro-batch, position/set based.
			name:        "MB-newgoz",
			spec:        experiments.ScaledSpec(dga.NewGoZ(), 0.1),
			activations: 3,
		},
		{
			// Timing (MT) as the primary estimator: fully incremental, no
			// records retained beyond the reorder buffer.
			name:        "MT-murofet",
			spec:        experiments.ScaledSpec(dga.Murofet(), 0.1),
			estimator:   func() estimators.Estimator { return estimators.NewTiming() },
			activations: 3,
		},
	}
}

// TestBatchStreamEquivalence is the engine's defining contract (DESIGN.md
// §13): streaming a trace — in order, shuffled within the reorder window,
// or subjected to mid-stream loss/duplication/delay faults — yields the
// same landscape core.Analyze computes over the delivered records. The
// comparison is exact (bit-identical per-server estimates): the stream
// emits records sorted by (timestamp, arrival), which is precisely the
// stable sort the batch estimators perform, and MP/MB are insensitive to
// tie order altogether. Memory must stay bounded: the engine's peak
// retention (reorder buffers + open-epoch records) is asserted well below
// the trace size.
func TestBatchStreamEquivalence(t *testing.T) {
	const (
		seed          = uint64(0xB07)
		servers       = 20
		epochs        = 3
		reorderWindow = 5 * sim.Second
	)
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			base := synthTrace(t, tc.spec, seed, servers, epochs, tc.activations)
			if len(base) < 1000 {
				t.Fatalf("trace too small for a meaningful differential: %d records", len(base))
			}
			variants := []struct {
				name      string
				delivered trace.Observed
			}{
				{"in-order", base},
				{"shuffled", chunkShuffle(base, reorderWindow, sim.NewRNG(seed+1))},
				{"faulted", faultSequence(base, faults.New(seed+2, faults.Rates{
					Loss:      0.05,
					Duplicate: 0.03,
					Delay:     reorderWindow, // ≤ reorder window ⇒ loss-free
				}))},
			}
			for _, v := range variants {
				// Shard count must be invisible in the estimates: a single
				// shard exercises the purely sequential incremental kernels,
				// four shards the same kernels under server-hash fan-out.
				for _, shards := range []int{1, 4} {
					shards := shards
					t.Run(fmt.Sprintf("%s/shards=%d", v.name, shards), func(t *testing.T) {
						coreCfg := core.Config{
							Family:        tc.spec,
							Seed:          seed,
							EpochLen:      testEpochLen,
							SecondOpinion: tc.secondOpinion,
						}
						streamCfg := stream.Config{
							Core:          coreCfg,
							Shards:        shards,
							ReorderWindow: reorderWindow,
							Registry:      obs.NewRegistry(),
						}
						if tc.estimator != nil {
							coreCfg.Estimator = tc.estimator()
							streamCfg.Core.Estimator = tc.estimator()
						}
						want := runBatch(t, coreCfg, v.delivered)
						got, stats := runStream(t, streamCfg, v.delivered)
						if stats.DroppedLate != 0 || stats.ReorderEvictions != 0 {
							t.Fatalf("delivery was supposed to be loss-free: %d late drops, %d evictions",
								stats.DroppedLate, stats.ReorderEvictions)
						}
						if stats.Ingested != uint64(len(v.delivered)) {
							t.Fatalf("ingested %d of %d records", stats.Ingested, len(v.delivered))
						}
						if stats.Matched == 0 || stats.Unmatched == 0 {
							t.Fatalf("degenerate trace: matched=%d unmatched=%d", stats.Matched, stats.Unmatched)
						}
						requireEqualLandscapes(t, want, got)

						// Bounded memory: retention peaks far below the trace.
						matched := int(stats.Matched)
						if tc.estimator != nil {
							// Incremental MT retains only the reorder buffer.
							if stats.PeakRetained*10 > matched {
								t.Fatalf("MT peak retention %d vs %d matched records — engine is buffering epochs",
									stats.PeakRetained, matched)
							}
						} else if stats.PeakRetained*10 > matched*7 {
							t.Fatalf("peak retention %d vs %d matched records — epochs are not being freed",
								stats.PeakRetained, matched)
						}
						if stats.Retained != 0 {
							t.Fatalf("%d records still retained after Close", stats.Retained)
						}
						if stats.EpochsClosed == 0 {
							t.Fatal("no epochs were closed")
						}
					})
				}
			}
		})
	}
}
