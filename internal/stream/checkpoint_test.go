package stream_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"botmeter/internal/core"
	"botmeter/internal/faults"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

// landscapeBytes renders a landscape with the stable JSON schema — the
// byte-identical half of the kill–resume contract.
func landscapeBytes(tb testing.TB, land *core.Landscape) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := land.WriteJSON(&buf); err != nil {
		tb.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// runUninterrupted is the reference: one engine, fed start to finish.
func runUninterrupted(tb testing.TB, cfg stream.Config, delivered trace.Observed) (*core.Landscape, stream.Stats) {
	tb.Helper()
	eng, err := stream.New(cfg)
	if err != nil {
		tb.Fatalf("stream.New: %v", err)
	}
	for _, rec := range delivered {
		if err := eng.Observe(rec); err != nil {
			tb.Fatalf("Observe: %v", err)
		}
	}
	land, err := eng.Close()
	if err != nil {
		tb.Fatalf("Close: %v", err)
	}
	return land, eng.Stats()
}

// runKilledAndResumed feeds delivered while checkpointing every
// checkpointEvery records, kills the engine (no flush, no final
// checkpoint) right after record killAt, then recovers: load the newest
// good checkpoint, restore an engine from it (shard count adopted from the
// snapshot), and replay the input from the checkpoint's record offset —
// checkpointing along the way too, so the second leg writes further
// generations into the same directory.
func runKilledAndResumed(tb testing.TB, cfg stream.Config, delivered trace.Observed, dir string, killAt int, checkpointEvery uint64) (*core.Landscape, stream.Stats) {
	tb.Helper()
	eng, err := stream.New(cfg)
	if err != nil {
		tb.Fatalf("stream.New: %v", err)
	}
	ck, err := stream.NewCheckpointer(stream.CheckpointConfig{Dir: dir, EveryRecords: checkpointEvery})
	if err != nil {
		tb.Fatalf("NewCheckpointer: %v", err)
	}
	for i := 0; i < killAt; i++ {
		if err := eng.Observe(delivered[i]); err != nil {
			tb.Fatalf("Observe: %v", err)
		}
		if err := ck.Maybe(eng, uint64(i+1)); err != nil {
			tb.Fatalf("Maybe: %v", err)
		}
	}
	eng.Kill()
	// A real SIGKILL would also interrupt an in-flight background write —
	// the torn-file cases are covered by the crash-point and corruption
	// tests; here we let it land so the recovery point is deterministic.
	ck.Close() //nolint:errcheck // in-flight write only

	state, info, err := stream.LoadCheckpoint(dir)
	if err != nil {
		tb.Fatalf("LoadCheckpoint: %v", err)
	}
	var resumed *stream.Engine
	var skip uint64
	if info.Found {
		resumedCfg := cfg
		resumedCfg.Shards = 0 // adopt the checkpoint's shard count
		resumed, err = stream.Restore(resumedCfg, state)
		if err != nil {
			tb.Fatalf("Restore: %v", err)
		}
		skip = state.Source.Records
		if skip > uint64(killAt) {
			tb.Fatalf("checkpoint claims %d records consumed, only %d were fed", skip, killAt)
		}
	} else {
		// Killed before the first checkpoint landed: fresh start.
		resumed, err = stream.New(cfg)
		if err != nil {
			tb.Fatalf("stream.New (fresh resume): %v", err)
		}
	}
	ck2, err := stream.NewCheckpointer(stream.CheckpointConfig{Dir: dir, EveryRecords: checkpointEvery})
	if err != nil {
		tb.Fatalf("NewCheckpointer (resume): %v", err)
	}
	for i := int(skip); i < len(delivered); i++ {
		if err := resumed.Observe(delivered[i]); err != nil {
			tb.Fatalf("Observe (resume): %v", err)
		}
		if err := ck2.Maybe(resumed, uint64(i+1)); err != nil {
			tb.Fatalf("Maybe (resume): %v", err)
		}
	}
	if err := ck2.Close(); err != nil {
		tb.Fatalf("checkpointer close: %v", err)
	}
	land, err := resumed.Close()
	if err != nil {
		tb.Fatalf("Close (resume): %v", err)
	}
	return land, resumed.Stats()
}

// TestKillResumeDifferential is the headline robustness contract (ISSUE 6,
// DESIGN.md §15): a run killed at an arbitrary record — losing everything
// since the last checkpoint — and resumed from the newest checkpoint must
// produce a landscape byte-identical to the uninterrupted run, for every
// estimator configuration and at any shard count. Runs under -race in CI.
func TestKillResumeDifferential(t *testing.T) {
	const (
		seed            = uint64(0xC4A5)
		servers         = 12
		epochs          = 3
		reorderWindow   = 5 * sim.Second
		checkpointEvery = 97 // prime: cuts land mid-epoch, mid-buffer
	)
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			base := synthTrace(t, tc.spec, seed, servers, epochs, tc.activations)
			delivered := chunkShuffle(base, reorderWindow, sim.NewRNG(seed+1))
			if len(delivered) < 500 {
				t.Fatalf("trace too small for a meaningful differential: %d records", len(delivered))
			}
			for _, shards := range []int{1, 4} {
				coreCfg := core.Config{
					Family:        tc.spec,
					Seed:          seed,
					EpochLen:      testEpochLen,
					SecondOpinion: tc.secondOpinion,
				}
				streamCfg := stream.Config{
					Core:          coreCfg,
					Shards:        shards,
					ReorderWindow: reorderWindow,
					Registry:      obs.NewRegistry(),
				}
				if tc.estimator != nil {
					streamCfg.Core.Estimator = tc.estimator()
				}
				want, wantStats := runUninterrupted(t, streamCfg, delivered)
				wantBytes := landscapeBytes(t, want)

				// Randomized kill points: early (likely before the first
				// checkpoint), middle, late.
				rng := sim.NewRNG(seed + uint64(shards))
				kills := []int{
					1 + int(rng.Int64N(checkpointEvery)),
					len(delivered)/2 + int(rng.Int64N(int64(len(delivered)/4))),
					len(delivered) - 1 - int(rng.Int64N(checkpointEvery)),
				}
				for _, killAt := range kills {
					t.Run(fmt.Sprintf("shards=%d/kill=%d", shards, killAt), func(t *testing.T) {
						cfg := streamCfg
						cfg.Registry = obs.NewRegistry()
						if tc.estimator != nil {
							cfg.Core.Estimator = tc.estimator()
						}
						got, gotStats := runKilledAndResumed(t, cfg, delivered, t.TempDir(), killAt, checkpointEvery)
						requireEqualLandscapes(t, want, got)
						if gotBytes := landscapeBytes(t, got); !bytes.Equal(wantBytes, gotBytes) {
							t.Fatalf("landscape JSON differs after kill-resume:\nwant %s\ngot  %s", wantBytes, gotBytes)
						}
						if wantStats != gotStats {
							t.Fatalf("stats differ after kill-resume:\nwant %+v\ngot  %+v", wantStats, gotStats)
						}
					})
				}
			}
		})
	}
}

// TestKillMidCheckpoint crashes INSIDE the checkpoint write (deterministic
// crash point, half the file written) and resumes. The torn temp file must
// be ignored, recovery must restore the newest completed generation, and
// the result must still be byte-identical.
func TestKillMidCheckpoint(t *testing.T) {
	const (
		seed            = uint64(0xDEAD)
		reorderWindow   = 5 * sim.Second
		checkpointEvery = 83
	)
	tc := diffCases()[0] // MP + second opinion: exercises records AND both MT streams
	delivered := chunkShuffle(synthTrace(t, tc.spec, seed, 10, 3, tc.activations), reorderWindow, sim.NewRNG(seed))
	streamCfg := stream.Config{
		Core:          core.Config{Family: tc.spec, Seed: seed, EpochLen: testEpochLen, SecondOpinion: tc.secondOpinion},
		Shards:        3,
		ReorderWindow: reorderWindow,
	}
	want, _ := runUninterrupted(t, streamCfg, delivered)
	wantBytes := landscapeBytes(t, want)

	for _, nth := range []uint64{1, 3} { // die writing the 1st / the 3rd checkpoint
		t.Run(fmt.Sprintf("occurrence=%d", nth), func(t *testing.T) {
			dir := t.TempDir()
			crash := faults.NewCrasher(faults.CrashSpec{Point: "checkpoint-write", PointNth: nth})
			type crashed struct{ reason string }
			crash.Die = func(reason string) { panic(crashed{reason}) }

			eng, err := stream.New(streamCfg)
			if err != nil {
				t.Fatalf("stream.New: %v", err)
			}
			ck, err := stream.NewCheckpointer(stream.CheckpointConfig{
				Dir: dir, EveryRecords: checkpointEvery, Crash: crash,
			})
			if err != nil {
				t.Fatalf("NewCheckpointer: %v", err)
			}
			died := func() (died bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(crashed); !ok {
							panic(r)
						}
						died = true
					}
				}()
				for i, rec := range delivered {
					if err := eng.Observe(rec); err != nil {
						t.Fatalf("Observe: %v", err)
					}
					if err := ck.Maybe(eng, uint64(i+1)); err != nil {
						t.Fatalf("Maybe: %v", err)
					}
				}
				return false
			}()
			if !died {
				t.Fatalf("crash point never fired (fewer than %d checkpoints?)", nth)
			}
			eng.Kill()

			// The torn temp must exist (proof the crash landed mid-write)
			// and must not be visible to recovery.
			if !hasTmpCheckpoint(t, dir) {
				t.Fatal("expected a torn .tmp- checkpoint file after the mid-write crash")
			}
			state, info, err := stream.LoadCheckpoint(dir)
			if err != nil {
				t.Fatalf("LoadCheckpoint: %v", err)
			}
			if nth == 1 {
				if info.Found {
					t.Fatalf("no checkpoint ever completed, yet recovery found generation %d", info.Gen)
				}
			} else if !info.Found {
				t.Fatal("expected a completed earlier generation to recover from")
			}

			var resumed *stream.Engine
			var skip uint64
			if info.Found {
				cfg := streamCfg
				cfg.Shards = 0
				resumed, err = stream.Restore(cfg, state)
				if err != nil {
					t.Fatalf("Restore: %v", err)
				}
				skip = state.Source.Records
			} else if resumed, err = stream.New(streamCfg); err != nil {
				t.Fatalf("stream.New: %v", err)
			}
			for i := int(skip); i < len(delivered); i++ {
				if err := resumed.Observe(delivered[i]); err != nil {
					t.Fatalf("Observe (resume): %v", err)
				}
			}
			land, err := resumed.Close()
			if err != nil {
				t.Fatalf("Close (resume): %v", err)
			}
			if gotBytes := landscapeBytes(t, land); !bytes.Equal(wantBytes, gotBytes) {
				t.Fatalf("landscape differs after mid-checkpoint crash:\nwant %s\ngot  %s", wantBytes, gotBytes)
			}
		})
	}
}

func hasTmpCheckpoint(tb testing.TB, dir string) bool {
	tb.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatalf("ReadDir: %v", err)
	}
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), ".tmp-") {
			return true
		}
	}
	return false
}

// TestCorruptCheckpointFallback corrupts the newest generation on disk
// (bit flip, truncation) and verifies recovery falls back to the previous
// good generation — and still reproduces the uninterrupted landscape. With
// every generation corrupted, recovery reports "nothing to restore"
// rather than failing.
func TestCorruptCheckpointFallback(t *testing.T) {
	const (
		seed            = uint64(0xFA11)
		reorderWindow   = 5 * sim.Second
		checkpointEvery = 61
	)
	tc := diffCases()[2] // incremental MT
	delivered := chunkShuffle(synthTrace(t, tc.spec, seed, 10, 3, tc.activations), reorderWindow, sim.NewRNG(seed))
	streamCfg := stream.Config{
		Core:          core.Config{Family: tc.spec, Seed: seed, EpochLen: testEpochLen, Estimator: tc.estimator()},
		Shards:        2,
		ReorderWindow: reorderWindow,
	}
	want, _ := runUninterrupted(t, streamCfg, delivered)
	wantBytes := landscapeBytes(t, want)

	corruptions := []struct {
		name    string
		corrupt func(tb testing.TB, path string)
	}{
		{"bit-flip", func(tb testing.TB, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				tb.Fatalf("ReadFile: %v", err)
			}
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				tb.Fatalf("WriteFile: %v", err)
			}
		}},
		{"truncated", func(tb testing.TB, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				tb.Fatalf("Stat: %v", err)
			}
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				tb.Fatalf("Truncate: %v", err)
			}
		}},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := streamCfg
			cfg.Core.Estimator = tc.estimator()
			eng, err := stream.New(cfg)
			if err != nil {
				t.Fatalf("stream.New: %v", err)
			}
			ck, err := stream.NewCheckpointer(stream.CheckpointConfig{Dir: dir, EveryRecords: checkpointEvery})
			if err != nil {
				t.Fatalf("NewCheckpointer: %v", err)
			}
			killAt := len(delivered) * 3 / 4
			for i := 0; i < killAt; i++ {
				if err := eng.Observe(delivered[i]); err != nil {
					t.Fatalf("Observe: %v", err)
				}
				if err := ck.Maybe(eng, uint64(i+1)); err != nil {
					t.Fatalf("Maybe: %v", err)
				}
			}
			eng.Kill()
			if err := ck.Close(); err != nil {
				t.Fatalf("checkpointer close: %v", err)
			}
			st := ck.Stats()
			if st.Written < 2 {
				t.Fatalf("need at least 2 generations to test fallback, wrote %d", st.Written)
			}
			latest := stream.CheckpointPath(dir, st.Gen)
			c.corrupt(t, latest)

			state, info, err := stream.LoadCheckpoint(dir)
			if err != nil {
				t.Fatalf("LoadCheckpoint: %v", err)
			}
			if !info.Found {
				t.Fatal("expected fallback to the previous generation")
			}
			if info.Gen != st.Gen-1 {
				t.Fatalf("recovered generation %d, want fallback generation %d", info.Gen, st.Gen-1)
			}
			if info.CorruptSkipped != 1 {
				t.Fatalf("CorruptSkipped = %d, want 1", info.CorruptSkipped)
			}
			cfg2 := streamCfg
			cfg2.Shards = 0
			cfg2.Core.Estimator = tc.estimator()
			resumed, err := stream.Restore(cfg2, state)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			for i := int(state.Source.Records); i < len(delivered); i++ {
				if err := resumed.Observe(delivered[i]); err != nil {
					t.Fatalf("Observe (resume): %v", err)
				}
			}
			land, err := resumed.Close()
			if err != nil {
				t.Fatalf("Close (resume): %v", err)
			}
			if gotBytes := landscapeBytes(t, land); !bytes.Equal(wantBytes, gotBytes) {
				t.Fatalf("landscape differs after corrupt-fallback recovery:\nwant %s\ngot  %s", wantBytes, gotBytes)
			}

			// Corrupt the fallback too: recovery must degrade to "start
			// fresh", never to an error or a half-loaded state.
			c.corrupt(t, stream.CheckpointPath(dir, info.Gen))
			_, info2, err := stream.LoadCheckpoint(dir)
			if err != nil {
				t.Fatalf("LoadCheckpoint (all corrupt): %v", err)
			}
			if info2.Found {
				t.Fatal("every generation is corrupt, yet recovery found one")
			}
			if info2.CorruptSkipped != 2 {
				t.Fatalf("CorruptSkipped = %d, want 2", info2.CorruptSkipped)
			}
		})
	}
}

// TestRestoreFingerprintMismatch: estimator state under one configuration
// must not silently seed an engine with another.
func TestRestoreFingerprintMismatch(t *testing.T) {
	tc := diffCases()[1]
	delivered := synthTrace(t, tc.spec, 7, 4, 2, tc.activations)
	cfg := stream.Config{
		Core:          core.Config{Family: tc.spec, Seed: 7, EpochLen: testEpochLen},
		Shards:        2,
		ReorderWindow: 5 * sim.Second,
	}
	eng, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	for _, rec := range delivered[:200] {
		if err := eng.Observe(rec); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	state, err := eng.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	eng.Kill()
	for name, mutate := range map[string]func(*stream.Config){
		"seed":           func(c *stream.Config) { c.Core.Seed = 8 },
		"shards":         func(c *stream.Config) { c.Shards = 3 },
		"reorder-window": func(c *stream.Config) { c.ReorderWindow = 9 * sim.Second },
		"second-opinion": func(c *stream.Config) { c.Core.SecondOpinion = true },
	} {
		bad := cfg
		mutate(&bad)
		if _, err := stream.Restore(bad, state); err == nil {
			t.Errorf("%s: Restore accepted a state from a different configuration", name)
		}
	}
	if resumed, err := stream.Restore(cfg, state); err != nil {
		t.Errorf("identical config: Restore failed: %v", err)
	} else {
		resumed.Kill()
	}
}

// TestExportStateStableBytes: the same engine state must always serialize
// to the same bytes (maps are exported sorted), so checkpoint generations
// diff cleanly and the byte-identical guarantee is testable at all.
func TestExportStateStableBytes(t *testing.T) {
	tc := diffCases()[0]
	delivered := synthTrace(t, tc.spec, 11, 6, 2, tc.activations)
	eng, err := stream.New(stream.Config{
		Core:          core.Config{Family: tc.spec, Seed: 11, EpochLen: testEpochLen, SecondOpinion: true},
		Shards:        2,
		ReorderWindow: 5 * sim.Second,
	})
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	for _, rec := range delivered[:300] {
		if err := eng.Observe(rec); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	first, err := eng.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	second, err := eng.ExportState()
	if err != nil {
		t.Fatalf("ExportState (again): %v", err)
	}
	a, err := stream.EncodeCheckpoint(first)
	if err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	b, err := stream.EncodeCheckpoint(second)
	if err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two exports of an idle engine produced different bytes")
	}
	// And a restored engine must re-export the same state it was built
	// from (round-trip stability).
	eng.Kill()
	restored, err := stream.Restore(stream.Config{
		Core:          core.Config{Family: tc.spec, Seed: 11, EpochLen: testEpochLen, SecondOpinion: true},
		ReorderWindow: 5 * sim.Second,
	}, first)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer restored.Kill()
	third, err := restored.ExportState()
	if err != nil {
		t.Fatalf("ExportState (restored): %v", err)
	}
	c, err := stream.EncodeCheckpoint(third)
	if err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("restore→export round trip changed the state bytes")
	}
}

// TestQuiesceMatchesBatch: after feeding a whole in-order trace and
// quiescing, the live Snapshot must equal the batch landscape — the
// property the vantage crash-recovery smoke relies on when it compares
// /landscape (post-replay) against `botmeter` over the same file.
func TestQuiesceMatchesBatch(t *testing.T) {
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			delivered := synthTrace(t, tc.spec, 13, 8, 3, tc.activations)
			coreCfg := core.Config{
				Family:        tc.spec,
				Seed:          13,
				EpochLen:      testEpochLen,
				SecondOpinion: tc.secondOpinion,
			}
			streamCfg := stream.Config{Core: coreCfg, Shards: 3, ReorderWindow: 5 * sim.Second}
			if tc.estimator != nil {
				coreCfg.Estimator = tc.estimator()
				streamCfg.Core.Estimator = tc.estimator()
			}
			want := runBatch(t, coreCfg, delivered)
			eng, err := stream.New(streamCfg)
			if err != nil {
				t.Fatalf("stream.New: %v", err)
			}
			defer eng.Kill()
			for _, rec := range delivered {
				if err := eng.Observe(rec); err != nil {
					t.Fatalf("Observe: %v", err)
				}
			}
			if err := eng.Quiesce(); err != nil {
				t.Fatalf("Quiesce: %v", err)
			}
			got, err := eng.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			requireEqualLandscapes(t, want, got)
		})
	}
}

// TestCheckpointDecodeRejects covers the framing validations one by one.
func TestCheckpointDecodeRejects(t *testing.T) {
	st := &stream.EngineState{Shards: []stream.ShardState{{Seq: 1}}}
	good, err := stream.EncodeCheckpoint(st)
	if err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	if _, err := stream.DecodeCheckpoint(good); err != nil {
		t.Fatalf("DecodeCheckpoint rejected a good frame: %v", err)
	}
	cases := map[string]func([]byte) []byte{
		"short":       func(b []byte) []byte { return b[:20] },
		"bad-magic":   func(b []byte) []byte { b[0] = 'X'; return b },
		"bad-version": func(b []byte) []byte { b[7] = 99; return b },
		// Version 1 frames predate the per-family intern-aware cell layout
		// (checkpointVersion 2); they must be rejected — not misparsed —
		// so recovery falls back to a clean cold start.
		"old-version-1":   func(b []byte) []byte { b[7] = 1; return b },
		"length-mismatch": func(b []byte) []byte { return b[:len(b)-1] },
		"payload-flip":    func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"checksum-flip":   func(b []byte) []byte { b[20] ^= 1; return b },
	}
	for name, mutate := range cases {
		data := mutate(append([]byte(nil), good...))
		if _, err := stream.DecodeCheckpoint(data); err == nil {
			t.Errorf("%s: DecodeCheckpoint accepted a corrupt frame", name)
		}
	}
}

// TestCheckpointerGenerations: retention keeps Keep generations, numbering
// continues across restarts, and LoadCheckpoint tolerates a missing dir.
func TestCheckpointerGenerations(t *testing.T) {
	if _, info, err := stream.LoadCheckpoint(filepath.Join(t.TempDir(), "never-created")); err != nil || info.Found {
		t.Fatalf("missing dir: err=%v found=%v, want clean fresh start", err, info.Found)
	}
	tc := diffCases()[1]
	delivered := synthTrace(t, tc.spec, 3, 4, 2, tc.activations)
	dir := t.TempDir()
	cfg := stream.Config{
		Core:          core.Config{Family: tc.spec, Seed: 3, EpochLen: testEpochLen},
		Shards:        2,
		ReorderWindow: 5 * sim.Second,
	}
	eng, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	ck, err := stream.NewCheckpointer(stream.CheckpointConfig{Dir: dir, EveryRecords: 50, Keep: 2})
	if err != nil {
		t.Fatalf("NewCheckpointer: %v", err)
	}
	// Synchronous checkpoints so each call deterministically writes one
	// generation (Maybe may skip triggers while a background write is in
	// flight — that path is covered by the differential tests).
	for i, rec := range delivered[:400] {
		if err := eng.Observe(rec); err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if n := uint64(i + 1); n%100 == 0 {
			if err := ck.Checkpoint(eng, n); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	eng.Kill()
	st := ck.Stats()
	if st.Written != 4 {
		t.Fatalf("expected 4 generations, wrote %d", st.Written)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var files []string
	for _, ent := range entries {
		files = append(files, ent.Name())
	}
	if len(files) != 2 {
		t.Fatalf("retention kept %d files (%v), want 2", len(files), files)
	}
	// A new checkpointer over the same dir numbers past the survivors.
	ck2, err := stream.NewCheckpointer(stream.CheckpointConfig{Dir: dir, EveryRecords: 50})
	if err != nil {
		t.Fatalf("NewCheckpointer (restart): %v", err)
	}
	eng2, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	defer eng2.Kill()
	if err := ck2.Checkpoint(eng2, 0); err != nil {
		t.Fatalf("Checkpoint (restart): %v", err)
	}
	if got := ck2.Stats().Gen; got != st.Gen+1 {
		t.Fatalf("restarted checkpointer wrote generation %d, want %d", got, st.Gen+1)
	}
}
