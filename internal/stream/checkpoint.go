package stream

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"botmeter/internal/faults"
	"botmeter/internal/obs"
)

// Checkpoint metric families (see CheckpointConfig.Registry).
const (
	MetricCheckpoints        = "stream_checkpoints_total"
	MetricCheckpointErrors   = "stream_checkpoint_errors_total"
	MetricCheckpointSkipped  = "stream_checkpoint_skipped_total"
	MetricCheckpointGen      = "stream_checkpoint_generation"
	MetricCheckpointBytes    = "stream_checkpoint_bytes"
	MetricCheckpointDuration = "stream_checkpoint_duration_ms"
	MetricCheckpointAge      = "stream_checkpoint_last_unix_ms"
	// MetricCheckpointAgeSeconds is a callback gauge: seconds since the last
	// successful checkpoint completed (since the Checkpointer was created,
	// before the first) — the recovery-point-objective signal, evaluated at
	// scrape time so it ages even when checkpoints stall.
	MetricCheckpointAgeSeconds = "stream_checkpoint_age_seconds"
)

// Checkpoint file format (DESIGN.md §15): a fixed 48-byte header followed
// by a JSON-encoded EngineState.
//
//	offset  size  field
//	     0     4  magic "BMCP"
//	     4     4  format version (big-endian uint32)
//	     8     8  payload length (big-endian uint64)
//	    16    32  SHA-256 of the payload
//	    48     …  payload (JSON EngineState)
//
// The checksum plus length makes torn or bit-flipped files detectable
// without trusting the JSON parser; the version makes format evolution an
// explicit migration instead of a decode surprise. Files are written to a
// temp name, fsynced, then renamed into place (with a directory fsync), so
// a final-name checkpoint is complete on any POSIX filesystem — a crash
// mid-write leaves only a .tmp- file, which recovery ignores and the next
// successful checkpoint sweeps away.
const (
	checkpointMagic = "BMCP"
	// checkpointVersion 2 (PR 8): EpochCellState grew the per-family
	// streaming states (clusters, bernoulli) and MP/NC/MB became streaming
	// estimators — a v1 file restored into a v2 engine would misroute their
	// cells through the micro-batch path, so old checkpoints are rejected
	// and recovery falls back to a fresh replay.
	checkpointVersion = 2
	checkpointHeader  = 48
	checkpointPrefix  = "checkpoint-"
	checkpointExt     = ".ckpt"
	checkpointTmpPre  = ".tmp-"
)

// EncodeCheckpoint frames st in the checkpoint file format.
func EncodeCheckpoint(st *EngineState) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("stream: encoding checkpoint: %w", err)
	}
	buf := make([]byte, checkpointHeader+len(payload))
	copy(buf[0:4], checkpointMagic)
	binary.BigEndian.PutUint32(buf[4:8], checkpointVersion)
	binary.BigEndian.PutUint64(buf[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[16:48], sum[:])
	copy(buf[checkpointHeader:], payload)
	return buf, nil
}

// DecodeCheckpoint verifies the framing and checksum and unmarshals the
// state. Any deviation — short file, bad magic, unknown version, length
// mismatch, checksum mismatch — is an error, which LoadCheckpoint treats
// as "this generation is torn or corrupt, fall back".
func DecodeCheckpoint(data []byte) (*EngineState, error) {
	if len(data) < checkpointHeader {
		return nil, fmt.Errorf("stream: checkpoint truncated: %d bytes < %d-byte header", len(data), checkpointHeader)
	}
	if string(data[0:4]) != checkpointMagic {
		return nil, fmt.Errorf("stream: bad checkpoint magic %q", data[0:4])
	}
	if v := binary.BigEndian.Uint32(data[4:8]); v != checkpointVersion {
		return nil, fmt.Errorf("stream: unsupported checkpoint version %d (want %d)", v, checkpointVersion)
	}
	n := binary.BigEndian.Uint64(data[8:16])
	if uint64(len(data)-checkpointHeader) != n {
		return nil, fmt.Errorf("stream: checkpoint payload is %d bytes, header says %d", len(data)-checkpointHeader, n)
	}
	sum := sha256.Sum256(data[checkpointHeader:])
	if string(sum[:]) != string(data[16:48]) {
		return nil, fmt.Errorf("stream: checkpoint checksum mismatch")
	}
	var st EngineState
	if err := json.Unmarshal(data[checkpointHeader:], &st); err != nil {
		return nil, fmt.Errorf("stream: decoding checkpoint: %w", err)
	}
	return &st, nil
}

// CheckpointPath names generation gen inside dir.
func CheckpointPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", checkpointPrefix, gen, checkpointExt))
}

// parseGen extracts the generation from a checkpoint file name.
func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointExt) {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[len(checkpointPrefix):len(name)-len(checkpointExt)], 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// RecoveryInfo reports what LoadCheckpoint found.
type RecoveryInfo struct {
	// Found reports whether any loadable checkpoint existed.
	Found bool
	// Gen and Path identify the generation loaded (when Found).
	Gen  uint64
	Path string
	// CorruptSkipped counts newer generations that were skipped as torn or
	// corrupt before a good one decoded.
	CorruptSkipped int
}

// String renders the info for logs and /healthz.
func (r RecoveryInfo) String() string {
	if !r.Found {
		return "no checkpoint"
	}
	s := fmt.Sprintf("recovered from checkpoint generation %d", r.Gen)
	if r.CorruptSkipped > 0 {
		s += fmt.Sprintf(" (%d corrupt generation(s) skipped)", r.CorruptSkipped)
	}
	return s
}

// LoadCheckpoint returns the newest decodable checkpoint in dir, falling
// back generation by generation past torn or corrupt files. A missing or
// empty directory is not an error — it means "start fresh" (Found false).
// An error is only returned for environmental failures (unreadable
// directory) so callers can distinguish "nothing to recover" from "cannot
// tell".
func LoadCheckpoint(dir string) (*EngineState, RecoveryInfo, error) {
	var info RecoveryInfo
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, info, nil
		}
		return nil, info, fmt.Errorf("stream: reading checkpoint dir: %w", err)
	}
	gens := make([]uint64, 0, len(entries))
	for _, ent := range entries {
		if gen, ok := parseGen(ent.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, gen := range gens {
		path := CheckpointPath(dir, gen)
		data, err := os.ReadFile(path)
		if err != nil {
			info.CorruptSkipped++
			continue
		}
		st, err := DecodeCheckpoint(data)
		if err != nil {
			info.CorruptSkipped++
			continue
		}
		info.Found = true
		info.Gen = gen
		info.Path = path
		return st, info, nil
	}
	return nil, info, nil
}

// CheckpointConfig configures a Checkpointer.
type CheckpointConfig struct {
	// Dir is where checkpoint generations live. Created if missing.
	Dir string
	// Interval triggers a checkpoint when this much wall time has passed
	// since the last one (0 = no time trigger).
	Interval time.Duration
	// EveryRecords triggers a checkpoint every N consumed records
	// (0 = no count trigger). At least one trigger must be set for Maybe
	// to ever fire; Checkpoint always fires.
	EveryRecords uint64
	// Keep is how many generations to retain (0 = 2: the latest plus the
	// fallback the corrupt-recovery path needs).
	Keep int
	// PreSync, when non-nil, runs before the state is exported — the hook
	// cmd/vantage uses to flush its SafeWriter so the durable trace prefix
	// covers the cut, keeping replay-from-offset exactly-once.
	PreSync func() error
	// SourceMeta, when non-nil, describes the input file at cut time
	// (called after PreSync); stored in SourcePos for staleness detection.
	SourceMeta func() (path string, bytes int64)
	// Registry exports stream_checkpoint_* metrics when non-nil.
	Registry *obs.Registry
	// Clock overrides the wall-clock source behind the checkpoint-age gauge
	// (tests inject a fake). Nil = time.Now. Cadence triggers keep using the
	// real clock.
	Clock func() time.Time
	// Crash wires deterministic crash-point injection ("checkpoint-write",
	// "checkpoint-rename") for the kill–resume tests and the CI crash
	// smoke. When set, checkpoints are written synchronously so the crash
	// fires on the triggering record's call stack.
	Crash *faults.Crasher
}

// CheckpointStats is a point-in-time tally of checkpointing activity.
type CheckpointStats struct {
	// Written counts completed checkpoints.
	Written uint64
	// Errors counts failed attempts (export, encode or write).
	Errors uint64
	// Skipped counts due checkpoints dropped because the previous write
	// was still in flight — ingest is never blocked on checkpoint I/O.
	Skipped uint64
	// Gen is the last generation written; LastBytes/LastDuration describe
	// it; LastRecords is the source position it cut at.
	Gen          uint64
	LastBytes    int
	LastDuration time.Duration
	LastRecords  uint64
}

// Checkpointer writes generation-numbered checkpoints of one engine on a
// record-count and/or wall-clock cadence. Maybe is called by the feeding
// goroutine after each record; the state export is a brief synchronous
// barrier (microseconds — it copies in-memory state), while file encoding
// and I/O happen on a background goroutine so ingest never waits on disk.
// A checkpoint that comes due while the previous write is still in flight
// is skipped and counted, not queued.
type Checkpointer struct {
	cfg CheckpointConfig

	mu          sync.Mutex
	nextGen     uint64
	lastAt      time.Time
	lastRecords uint64
	writing     bool
	lastErr     error
	stats       CheckpointStats
	wg          sync.WaitGroup
	// created/lastDone feed AgeSeconds: lastDone is the completion time of
	// the last successful checkpoint (zero before the first).
	created  time.Time
	lastDone time.Time

	m struct {
		written  *obs.Counter
		errors   *obs.Counter
		skipped  *obs.Counter
		gen      *obs.Gauge
		bytes    *obs.Gauge
		duration *obs.Gauge
		lastUnix *obs.Gauge
	}
}

// NewCheckpointer prepares dir (creating it if needed) and numbers the
// next generation after the newest existing file, so a restarted process
// never overwrites the checkpoint it just recovered from.
func NewCheckpointer(cfg CheckpointConfig) (*Checkpointer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("stream: checkpoint dir not set")
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 2
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: creating checkpoint dir: %w", err)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	c := &Checkpointer{cfg: cfg, lastAt: time.Now(), created: cfg.Clock()}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("stream: reading checkpoint dir: %w", err)
	}
	for _, ent := range entries {
		if gen, ok := parseGen(ent.Name()); ok && gen >= c.nextGen {
			c.nextGen = gen + 1
		}
	}
	if reg := cfg.Registry; reg != nil {
		reg.Help(MetricCheckpoints, "Checkpoints written.")
		reg.Help(MetricCheckpointErrors, "Checkpoint attempts that failed.")
		reg.Help(MetricCheckpointSkipped, "Due checkpoints skipped because a write was in flight.")
		reg.Help(MetricCheckpointGen, "Last checkpoint generation written.")
		reg.Help(MetricCheckpointBytes, "Size of the last checkpoint (bytes).")
		reg.Help(MetricCheckpointDuration, "Wall time of the last checkpoint write (ms).")
		reg.Help(MetricCheckpointAge, "Completion time of the last checkpoint (Unix ms).")
		reg.Help(MetricCheckpointAgeSeconds, "Seconds since the last successful checkpoint (since start before the first).")
		reg.GaugeFunc(MetricCheckpointAgeSeconds, c.AgeSeconds)
		c.m.written = reg.Counter(MetricCheckpoints)
		c.m.errors = reg.Counter(MetricCheckpointErrors)
		c.m.skipped = reg.Counter(MetricCheckpointSkipped)
		c.m.gen = reg.Gauge(MetricCheckpointGen)
		c.m.bytes = reg.Gauge(MetricCheckpointBytes)
		c.m.duration = reg.Gauge(MetricCheckpointDuration)
		c.m.lastUnix = reg.Gauge(MetricCheckpointAge)
	}
	return c, nil
}

// Maybe checkpoints e if a trigger is due. records is the absolute source
// position (well-formed records consumed, including any skipped during
// resume replay) — it becomes SourcePos.Records, the offset a later resume
// replays from. Call it from the feeding goroutine after each record; it
// returns nil when nothing is due.
func (c *Checkpointer) Maybe(e *Engine, records uint64) error {
	c.mu.Lock()
	due := (c.cfg.EveryRecords > 0 && records-c.lastRecords >= c.cfg.EveryRecords) ||
		(c.cfg.Interval > 0 && time.Since(c.lastAt) >= c.cfg.Interval)
	if !due {
		c.mu.Unlock()
		return nil
	}
	if c.writing {
		// One skip per missed opportunity, not per record: re-arm the
		// cadence so the counter reads "checkpoints not taken", and the
		// next attempt waits a full period instead of busy-polling the
		// in-flight write.
		c.stats.Skipped++
		c.m.skipped.Inc()
		c.lastAt = time.Now()
		c.lastRecords = records
		c.mu.Unlock()
		return nil
	}
	c.writing = true
	// Re-arm the triggers at attempt time, not completion time, so a
	// failing checkpoint retries on the configured cadence instead of on
	// every record.
	c.lastAt = time.Now()
	c.lastRecords = records
	c.mu.Unlock()
	return c.run(e, records)
}

// Checkpoint writes a checkpoint now, synchronously, regardless of
// triggers — the shutdown and test entry point. It waits out any write in
// flight first so generations stay ordered.
func (c *Checkpointer) Checkpoint(e *Engine, records uint64) error {
	c.wg.Wait()
	c.mu.Lock()
	c.writing = true
	c.mu.Unlock()
	if err := c.run(e, records); err != nil {
		return err
	}
	c.wg.Wait()
	return c.Err()
}

// run exports the state on the caller's goroutine (the consistent cut),
// then hands the write to a background goroutine — unless crash injection
// is active, in which case the write is synchronous so the crash fires
// deterministically on this call stack.
func (c *Checkpointer) run(e *Engine, records uint64) error {
	start := time.Now()
	fail := func(err error) error {
		c.mu.Lock()
		c.writing = false
		c.lastErr = err
		c.stats.Errors++
		c.mu.Unlock()
		c.m.errors.Inc()
		return err
	}
	if c.cfg.PreSync != nil {
		if err := c.cfg.PreSync(); err != nil {
			return fail(fmt.Errorf("stream: checkpoint pre-sync: %w", err))
		}
	}
	st, err := e.ExportState()
	if err != nil {
		return fail(err)
	}
	st.Source.Records = records
	if c.cfg.SourceMeta != nil {
		st.Source.Path, st.Source.Bytes = c.cfg.SourceMeta()
	}
	c.mu.Lock()
	gen := c.nextGen
	c.nextGen++
	c.mu.Unlock()
	if c.cfg.Crash != nil {
		c.write(gen, st, records, start)
		return c.Err()
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.write(gen, st, records, start)
	}()
	return nil
}

// write encodes and durably writes one generation, then prunes old ones.
func (c *Checkpointer) write(gen uint64, st *EngineState, records uint64, start time.Time) {
	err := c.writeFile(gen, st)
	c.mu.Lock()
	c.writing = false
	if err != nil {
		c.lastErr = err
		c.stats.Errors++
		c.mu.Unlock()
		c.m.errors.Inc()
		return
	}
	c.lastErr = nil
	c.lastAt = time.Now()
	c.lastDone = c.cfg.Clock()
	c.lastRecords = records
	c.stats.Written++
	c.stats.Gen = gen
	c.stats.LastRecords = records
	c.stats.LastDuration = time.Since(start)
	c.mu.Unlock()
	c.m.written.Inc()
	c.m.gen.Set(float64(gen))
	c.m.duration.Set(float64(time.Since(start).Milliseconds()))
	c.m.lastUnix.Set(float64(time.Now().UnixMilli()))
}

func (c *Checkpointer) writeFile(gen uint64, st *EngineState) error {
	data, err := EncodeCheckpoint(st)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.LastBytes = len(data)
	c.mu.Unlock()
	c.m.bytes.Set(float64(len(data)))
	tmp := filepath.Join(c.cfg.Dir, fmt.Sprintf("%scheckpoint-%08d", checkpointTmpPre, gen))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("stream: creating checkpoint temp: %w", err)
	}
	// Write in two halves with a crash point between them, so crash
	// injection can leave a genuinely torn temp file on disk.
	half := len(data) / 2
	if _, err := f.Write(data[:half]); err != nil {
		f.Close()
		return fmt.Errorf("stream: writing checkpoint: %w", err)
	}
	c.cfg.Crash.Point("checkpoint-write")
	if _, err := f.Write(data[half:]); err != nil {
		f.Close()
		return fmt.Errorf("stream: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("stream: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("stream: closing checkpoint: %w", err)
	}
	c.cfg.Crash.Point("checkpoint-rename")
	final := CheckpointPath(c.cfg.Dir, gen)
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("stream: publishing checkpoint: %w", err)
	}
	syncDir(c.cfg.Dir)
	c.prune(gen)
	return nil
}

// prune removes generations older than the Keep newest, plus any leftover
// temp files from crashed writes (only one write is ever in flight, so
// every .tmp- file other than the one just renamed is an orphan).
func (c *Checkpointer) prune(latest uint64) {
	entries, err := os.ReadDir(c.cfg.Dir)
	if err != nil {
		return
	}
	var gens []uint64
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasPrefix(name, checkpointTmpPre) {
			os.Remove(filepath.Join(c.cfg.Dir, name))
			continue
		}
		if gen, ok := parseGen(name); ok && gen <= latest {
			gens = append(gens, gen)
		}
	}
	if len(gens) <= c.cfg.Keep {
		return
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, gen := range gens[c.cfg.Keep:] {
		os.Remove(CheckpointPath(c.cfg.Dir, gen))
	}
}

// syncDir fsyncs a directory so a rename is durable. Best-effort: some
// filesystems refuse directory fsync, and the rename is still atomic.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close waits for any in-flight write. It does NOT take a final
// checkpoint — callers that want one call Checkpoint first.
func (c *Checkpointer) Close() error {
	c.wg.Wait()
	return c.Err()
}

// Err returns the most recent checkpoint failure, nil after a success.
func (c *Checkpointer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// AgeSeconds reports seconds since the last successful checkpoint
// completed — the recovery-point objective. Before the first success it
// ages from the Checkpointer's creation, so a deployment whose very first
// checkpoint never lands still trips an age-based alert. Nil-safe (0).
func (c *Checkpointer) AgeSeconds() float64 {
	if c == nil {
		return 0
	}
	now := c.cfg.Clock()
	c.mu.Lock()
	last := c.lastDone
	if last.IsZero() {
		last = c.created
	}
	c.mu.Unlock()
	age := now.Sub(last).Seconds()
	if age < 0 {
		return 0
	}
	return age
}

// Stats returns a point-in-time tally.
func (c *Checkpointer) Stats() CheckpointStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
