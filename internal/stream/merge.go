package stream

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"botmeter/internal/core"
	"botmeter/internal/d3"
	"botmeter/internal/dga"
	"botmeter/internal/estimators"
	"botmeter/internal/sim"
)

// This file lifts the estimator merge algebra (internal/estimators/merge.go)
// to whole engines (DESIGN.md §18, ROADMAP item 1): MergeStates folds N
// vantage engines' exported EngineStates into one state that Restore turns
// into a coordinator engine whose landscape — under server-disjoint vantage
// partitions, the paper's Figure-2 deployment shape — is byte-identical to
// a single engine that saw the union of all records. cmd/landscape-server
// is the daemon around it; Merger is its copy-on-write snapshot table.
//
// The construction is CANONICAL: every order-insensitive collection is
// sorted, every map union is deterministic, so MergeStates(MergeStates(x))
// is byte-identical to MergeStates(x) and the N-way differential can
// compare serialized landscapes directly.

// FingerprintMismatchError reports a checkpoint or merge input whose
// analysis configuration differs from its counterpart — with the exact
// differing fields, so an operator (or the landscape-server's /healthz)
// can see WHICH knob diverged instead of a bare "fingerprint mismatch".
type FingerprintMismatchError struct {
	// Checkpoint is the fingerprint carried by the state being restored or
	// merged; Engine is the one it was checked against (the restoring
	// engine's, or the first merge input's).
	Checkpoint Fingerprint
	Engine     Fingerprint
}

// Diff lists the differing fields as "name: checkpoint v₁, engine v₂"
// strings, in fingerprint field order.
func (e *FingerprintMismatchError) Diff() []string {
	a, b := e.Checkpoint, e.Engine
	var out []string
	add := func(name string, av, bv any) {
		if av != bv {
			out = append(out, fmt.Sprintf("%s: checkpoint %v, engine %v", name, av, bv))
		}
	}
	add("family", a.Family, b.Family)
	add("model", a.Model, b.Model)
	add("estimator", a.Estimator, b.Estimator)
	add("seed", a.Seed, b.Seed)
	add("epoch_len", a.EpochLen, b.EpochLen)
	add("negative_ttl", a.NegativeTTL, b.NegativeTTL)
	add("granularity", a.Granularity, b.Granularity)
	add("second_opinion", a.SecondOpinion, b.SecondOpinion)
	add("detection", a.Detection, b.Detection)
	add("detect_miss", a.DetectMiss, b.DetectMiss)
	add("detect_collisions", a.DetectCollisions, b.DetectCollisions)
	add("detect_seed", a.DetectSeed, b.DetectSeed)
	add("shards", a.Shards, b.Shards)
	add("reorder_window", a.ReorderWindow, b.ReorderWindow)
	add("max_reorder", a.MaxReorder, b.MaxReorder)
	add("window_start", a.WindowStart, b.WindowStart)
	add("window_end", a.WindowEnd, b.WindowEnd)
	return out
}

func (e *FingerprintMismatchError) Error() string {
	diff := e.Diff()
	if len(diff) == 0 {
		return "stream: checkpoint fingerprint mismatch"
	}
	return "stream: checkpoint fingerprint mismatch: " + strings.Join(diff, "; ")
}

// DuplicateVantageError reports a merge whose inputs claim the same
// vantage twice. Re-merging the same snapshot is rejected rather than
// tolerated because MP/NC/MT state is a multiset — a self-merge would
// double every activation cluster and timing candidate. Idempotent
// re-merge of a REFRESHED snapshot goes through Merger, which replaces
// the vantage's previous snapshot instead of adding to it.
type DuplicateVantageError struct {
	Vantage string
}

func (e *DuplicateVantageError) Error() string {
	return fmt.Sprintf("stream: merge: vantage %q appears in more than one snapshot (re-merging the same vantage would double-count multiset estimator state)", e.Vantage)
}

// MergeConflictError reports two inputs carrying irreconcilable state for
// the same (server, epoch) cell — differing closed-epoch values, or
// estimator state of different kinds. Under a server-disjoint vantage
// partition this cannot happen; it means two vantages saw the same
// forwarding server, or a corrupted state.
type MergeConflictError struct {
	Server string
	Epoch  int
	Detail string
}

func (e *MergeConflictError) Error() string {
	return fmt.Sprintf("stream: merge conflict at server %q epoch %d: %s", e.Server, e.Epoch, e.Detail)
}

// analysisFingerprintsEqual reports whether two fingerprints agree on
// everything except the shard count — the one knob vantages may legally
// differ on, since sharding is a process-local parallelism choice, not an
// analysis parameter.
func analysisFingerprintsEqual(a, b Fingerprint) bool {
	a.Shards = 0
	b.Shards = 0
	return a == b
}

// mergeServer accumulates one forwarding server's state across inputs.
type mergeServer struct {
	matched  int
	domains  map[string]struct{}
	closed   map[int]float64
	closedMT map[int]float64
	hasMT    bool
	open     map[int]*EpochCellState
}

// mergeShardAccum accumulates one output shard.
type mergeShardAccum struct {
	watermark       int64
	minT            int64
	maxT            int64
	hasData         bool
	maxEmittedEpoch int
	peakRetained    int
	stats           ShardStats
	buffer          []RecordEntry
	servers         map[string]*mergeServer
}

func newMergeShardAccum() *mergeShardAccum {
	return &mergeShardAccum{
		watermark:       math.MinInt64,
		minT:            math.MaxInt64,
		maxT:            math.MinInt64,
		maxEmittedEpoch: math.MinInt64,
		servers:         make(map[string]*mergeServer),
	}
}

// foldScalars folds one input shard's scalar plane into the accumulator:
// watermark takes the minimum (no input would have dropped a record newer
// than its own watermark, so the merged engine may only be MORE permissive),
// minT/maxT span the union, maxEmittedEpoch the maximum, stats sum.
func (acc *mergeShardAccum) foldScalars(in ShardState) {
	if in.Watermark < acc.watermark {
		acc.watermark = in.Watermark
	}
	if in.MinT < acc.minT {
		acc.minT = in.MinT
	}
	if in.MaxT > acc.maxT {
		acc.maxT = in.MaxT
	}
	acc.hasData = acc.hasData || in.HasData
	if in.MaxEmittedEpoch > acc.maxEmittedEpoch {
		acc.maxEmittedEpoch = in.MaxEmittedEpoch
	}
	acc.peakRetained += in.PeakRetained
	acc.stats.Ingested += in.Stats.Ingested
	acc.stats.Matched += in.Stats.Matched
	acc.stats.Unmatched += in.Stats.Unmatched
	acc.stats.DroppedLate += in.Stats.DroppedLate
	acc.stats.ReorderEvictions += in.Stats.ReorderEvictions
	acc.stats.EpochsClosed += in.Stats.EpochsClosed
}

// cellKind validates one open cell and names its estimator state kind.
func cellKind(cs EpochCellState) (string, error) {
	kinds := 0
	kind := "records"
	if cs.Timing != nil {
		kinds++
		kind = "timing"
	}
	if cs.Clusters != nil {
		kinds++
		kind = "clusters"
	}
	if cs.Bernoulli != nil {
		kinds++
		kind = "bernoulli"
	}
	if kinds > 1 {
		return "", fmt.Errorf("cell carries %d estimator states, want at most one", kinds)
	}
	if kinds == 1 && len(cs.Records) > 0 {
		return "", fmt.Errorf("cell carries both streaming state and micro-batch records")
	}
	return kind, nil
}

// copyCell deep-copies one open cell.
func copyCell(cs EpochCellState) *EpochCellState {
	out := &EpochCellState{Epoch: cs.Epoch}
	if len(cs.Records) > 0 {
		out.Records = append([]RecordEntry(nil), cs.Records...)
	}
	if cs.Timing != nil {
		v := estimators.TimingState{}.Merge(*cs.Timing)
		out.Timing = &v
	}
	if cs.Clusters != nil {
		v := estimators.ClusterStreamState{}.Merge(*cs.Clusters)
		out.Clusters = &v
	}
	if cs.Bernoulli != nil {
		v := estimators.BernoulliState{}.Merge(*cs.Bernoulli)
		out.Bernoulli = &v
	}
	if cs.Second != nil {
		v := estimators.TimingState{}.Merge(*cs.Second)
		out.Second = &v
	}
	return out
}

// mergeCell folds cell cs into dst (both already validated by cellKind).
func mergeCell(server string, dst *EpochCellState, cs EpochCellState) error {
	conflict := func(detail string) error {
		return &MergeConflictError{Server: server, Epoch: cs.Epoch, Detail: detail}
	}
	switch {
	case dst.Timing != nil && cs.Timing != nil:
		v := dst.Timing.Merge(*cs.Timing)
		dst.Timing = &v
	case dst.Clusters != nil && cs.Clusters != nil:
		v := dst.Clusters.Merge(*cs.Clusters)
		dst.Clusters = &v
	case dst.Bernoulli != nil && cs.Bernoulli != nil:
		v := dst.Bernoulli.Merge(*cs.Bernoulli)
		dst.Bernoulli = &v
	case !dst.hasStreamState() && !cs.hasStreamState():
		dst.Records = append(dst.Records, cs.Records...)
	default:
		return conflict("estimator state kinds differ")
	}
	switch {
	case dst.Second != nil && cs.Second != nil:
		v := dst.Second.Merge(*cs.Second)
		dst.Second = &v
	case dst.Second == nil && cs.Second == nil:
	default:
		return conflict("second-opinion state present in one input only")
	}
	return nil
}

// MergeStates folds N exported engine states into one canonical state, the
// inverse-direction half of the batch↔(N-way merged stream) differential:
//
//   - All inputs must share the analysis fingerprint; only the shard count
//     may differ (it is a process-local choice). The output adopts the
//     LARGEST input shard count.
//   - Vantage names must be pairwise disjoint — merging the same vantage's
//     snapshot twice is a DuplicateVantageError, because MP/NC/MT state is
//     a multiset (see estimators/merge.go). Refreshing a vantage goes
//     through Merger, which replaces rather than re-merges.
//   - Forwarding servers and buffered records are routed onto output
//     shards by the same FNV-1a server hash the engine uses, so when every
//     input already runs the output shard count the placement — and hence
//     the per-shard float accumulation order of Snapshot — reproduces a
//     single engine's exactly. Per-server state merges via the estimator
//     algebra; closed epochs must agree where they overlap.
//   - Shard scalars (watermark, time span, ingest tallies) merge per index
//     when every input has the output shard count — exact, because then
//     input shard i holds precisely the servers output shard i holds.
//     Inputs with differing shard counts fold their scalars into output
//     shard 0 instead: totals (and therefore the landscape's ingest block)
//     stay exact, per-shard attribution turns coarse, and the result is
//     meant for snapshot serving rather than continued ingest.
//   - Reorder buffers merge sorted by (T, Server, Domain) with fresh
//     arrival sequence numbers 0..n−1 (shard seq counter n). Equal-
//     timestamp tie order across vantages is unknowable, so the canonical
//     order stands in — the same documented MT tie tolerance as the
//     batch↔stream contract.
//
// The output is canonical: MergeStates of its own output is byte-identical
// (the Merger re-merge path and the fuzz round-trip rely on this). Source
// is zeroed — the coordinator, not the engine, knows where N feeds stand.
func MergeStates(states ...*EngineState) (*EngineState, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("stream: merge of zero states")
	}
	for i, st := range states {
		if st == nil {
			return nil, fmt.Errorf("stream: merge input %d is nil", i)
		}
		if len(st.Shards) == 0 {
			return nil, fmt.Errorf("stream: merge input %d has no shard states", i)
		}
		if st.Fingerprint.Shards != len(st.Shards) {
			return nil, fmt.Errorf("stream: merge input %d carries %d shard states but fingerprints %d shards",
				i, len(st.Shards), st.Fingerprint.Shards)
		}
	}
	fp0 := states[0].Fingerprint
	outShards := 0
	uniform := true
	for _, st := range states {
		if !analysisFingerprintsEqual(fp0, st.Fingerprint) {
			return nil, &FingerprintMismatchError{Checkpoint: st.Fingerprint, Engine: fp0}
		}
		if len(st.Shards) > outShards {
			outShards = len(st.Shards)
		}
	}
	for _, st := range states {
		if len(st.Shards) != outShards {
			uniform = false
		}
	}

	seenVantage := make(map[string]struct{})
	var vantages []string
	symtab := make(map[string]struct{})
	for _, st := range states {
		for _, v := range st.Vantages {
			if _, dup := seenVantage[v]; dup {
				return nil, &DuplicateVantageError{Vantage: v}
			}
			seenVantage[v] = struct{}{}
			vantages = append(vantages, v)
		}
		for _, s := range st.Symtab {
			symtab[s] = struct{}{}
		}
	}
	sort.Strings(vantages)

	accs := make([]*mergeShardAccum, outShards)
	for i := range accs {
		accs[i] = newMergeShardAccum()
	}
	for _, st := range states {
		for idx, sh := range st.Shards {
			// Scalar plane: exact per-index when shard counts line up,
			// else folded coarsely into shard 0 (totals stay exact).
			if uniform {
				accs[idx].foldScalars(sh)
			} else {
				accs[0].foldScalars(sh)
			}
			for _, en := range sh.Buffer {
				out := accs[shardIndex(en.Server, outShards)]
				out.buffer = append(out.buffer, RecordEntry{T: en.T, Server: en.Server, Domain: en.Domain})
			}
			for _, ss := range sh.Servers {
				acc := accs[shardIndex(ss.Name, outShards)]
				sv := acc.servers[ss.Name]
				if sv == nil {
					sv = &mergeServer{
						domains:  make(map[string]struct{}, len(ss.Domains)),
						closed:   make(map[int]float64, len(ss.Closed)),
						closedMT: make(map[int]float64, len(ss.ClosedMT)),
						open:     make(map[int]*EpochCellState, len(ss.Open)),
					}
					acc.servers[ss.Name] = sv
				}
				sv.matched += ss.Matched
				for _, d := range ss.Domains {
					sv.domains[d] = struct{}{}
				}
				for _, ev := range ss.Closed {
					if prev, ok := sv.closed[ev.Epoch]; ok && prev != ev.Value {
						return nil, &MergeConflictError{Server: ss.Name, Epoch: ev.Epoch,
							Detail: fmt.Sprintf("closed estimates differ (%v vs %v)", prev, ev.Value)}
					}
					sv.closed[ev.Epoch] = ev.Value
				}
				if len(ss.ClosedMT) > 0 {
					sv.hasMT = true
				}
				for _, ev := range ss.ClosedMT {
					if prev, ok := sv.closedMT[ev.Epoch]; ok && prev != ev.Value {
						return nil, &MergeConflictError{Server: ss.Name, Epoch: ev.Epoch,
							Detail: fmt.Sprintf("closed second-opinion estimates differ (%v vs %v)", prev, ev.Value)}
					}
					sv.closedMT[ev.Epoch] = ev.Value
				}
				for _, cs := range ss.Open {
					if _, err := cellKind(cs); err != nil {
						return nil, &MergeConflictError{Server: ss.Name, Epoch: cs.Epoch, Detail: err.Error()}
					}
					if dst, ok := sv.open[cs.Epoch]; ok {
						if err := mergeCell(ss.Name, dst, cs); err != nil {
							return nil, err
						}
					} else {
						sv.open[cs.Epoch] = copyCell(cs)
					}
				}
			}
		}
	}

	out := &EngineState{Fingerprint: fp0, Vantages: vantages}
	out.Fingerprint.Shards = outShards
	if len(symtab) > 0 {
		out.Symtab = make([]string, 0, len(symtab))
		for s := range symtab {
			out.Symtab = append(out.Symtab, s)
		}
		sort.Strings(out.Symtab)
	}
	out.Shards = make([]ShardState, outShards)
	for idx, acc := range accs {
		sh := ShardState{
			Watermark:       acc.watermark,
			MinT:            acc.minT,
			MaxT:            acc.maxT,
			HasData:         acc.hasData,
			MaxEmittedEpoch: acc.maxEmittedEpoch,
			PeakRetained:    acc.peakRetained,
			Stats:           acc.stats,
		}
		if n := len(acc.buffer); n > 0 {
			sort.Slice(acc.buffer, func(i, j int) bool {
				a, b := acc.buffer[i], acc.buffer[j]
				if a.T != b.T {
					return a.T < b.T
				}
				if a.Server != b.Server {
					return a.Server < b.Server
				}
				return a.Domain < b.Domain
			})
			for i := range acc.buffer {
				acc.buffer[i].Seq = uint64(i)
			}
			sh.Buffer = acc.buffer
			sh.Seq = uint64(n)
		}
		names := make([]string, 0, len(acc.servers))
		for name := range acc.servers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			sv := acc.servers[name]
			ss := ServerState{
				Name:    name,
				Matched: sv.matched,
				Domains: sortedKeys(sv.domains),
				Closed:  sortedEpochValues(sv.closed),
			}
			if sv.hasMT {
				ss.ClosedMT = sortedEpochValues(sv.closedMT)
			}
			epochs := make([]int, 0, len(sv.open))
			for ep := range sv.open {
				epochs = append(epochs, ep)
			}
			sort.Ints(epochs)
			for _, ep := range epochs {
				cell := sv.open[ep]
				if len(cell.Records) > 1 {
					// Micro-batch records merge canonically sorted; the
					// batch estimator re-sorts anyway, so order is free.
					sort.Slice(cell.Records, func(i, j int) bool {
						if cell.Records[i].T != cell.Records[j].T {
							return cell.Records[i].T < cell.Records[j].T
						}
						return cell.Records[i].Domain < cell.Records[j].Domain
					})
				}
				ss.Open = append(ss.Open, *cell)
			}
			sh.Servers = append(sh.Servers, ss)
		}
		out.Shards[idx] = sh
	}
	return out, nil
}

// ConfigForState reconstructs the engine configuration a state was taken
// under, purely from its fingerprint — what lets a coordinator Restore a
// merged state without out-of-band configuration. The family must be in
// the registry (dga.Lookup) and the estimator must be one of the standard
// constructions; bespoke estimator instances are not reconstructible and
// are reported as errors.
func ConfigForState(st *EngineState) (Config, error) {
	if st == nil {
		return Config{}, fmt.Errorf("stream: nil state")
	}
	fp := st.Fingerprint
	spec, err := dga.Lookup(fp.Family)
	if err != nil {
		return Config{}, fmt.Errorf("stream: state's family is not in the registry: %w", err)
	}
	if got := spec.ModelName(); got != fp.Model {
		return Config{}, fmt.Errorf("stream: family %q is model %s in this build, state fingerprints %s", fp.Family, got, fp.Model)
	}
	cfg := Config{
		Core: core.Config{
			Family:        spec,
			Seed:          fp.Seed,
			EpochLen:      fp.EpochLen,
			NegativeTTL:   fp.NegativeTTL,
			Granularity:   fp.Granularity,
			SecondOpinion: fp.SecondOpinion,
		},
		Shards:        fp.Shards,
		ReorderWindow: fp.ReorderWindow,
		MaxReorder:    fp.MaxReorder,
		Window:        sim.Window{Start: fp.WindowStart, End: fp.WindowEnd},
	}
	if fp.Detection {
		cfg.Core.Detection = &d3.Window{MissRate: fp.DetectMiss, Collisions: fp.DetectCollisions, Seed: fp.DetectSeed}
	}
	if def := estimators.ForModel(spec); def.Name() != fp.Estimator {
		switch fp.Estimator {
		case "MT":
			cfg.Core.Estimator = estimators.NewTiming()
		case "MP":
			cfg.Core.Estimator = estimators.NewPoisson()
		case "NC":
			cfg.Core.Estimator = estimators.NewNaive()
		case "MB":
			cfg.Core.Estimator = estimators.NewBernoulli()
		case "MB-C":
			cfg.Core.Estimator = estimators.NewCoverage()
		default:
			return Config{}, fmt.Errorf("stream: estimator %q is not reconstructible from a fingerprint", fp.Estimator)
		}
	}
	return cfg, nil
}

// Merger is the landscape-server's snapshot table: the latest EngineState
// per vantage (or per fixed vantage group), replaced copy-on-write on every
// Update and folded fresh by Merged. Replacing-then-remerging is what makes
// repeated pulls of the same vantage idempotent even though the underlying
// state algebra rejects self-merge.
type Merger struct {
	mu    sync.Mutex
	fp    *Fingerprint            // analysis fingerprint pinned by the first accepted snapshot
	snaps map[string]*EngineState // latest snapshot keyed by its vantage set
	byVan map[string]string       // vantage name → owning snapshot key
}

// NewMerger returns an empty snapshot table.
func NewMerger() *Merger {
	return &Merger{snaps: make(map[string]*EngineState), byVan: make(map[string]string)}
}

// Update installs a vantage's latest snapshot, replacing any previous
// snapshot covering the same vantage set. The snapshot must name at least
// one vantage (anonymous states cannot be replaced safely), must not
// partially overlap another vantage group, and must match the analysis
// fingerprint pinned by the first accepted snapshot — fingerprint failures
// are *FingerprintMismatchError, surfaced per-vantage by /healthz.
func (m *Merger) Update(st *EngineState) error {
	if st == nil {
		return fmt.Errorf("stream: nil snapshot")
	}
	if len(st.Vantages) == 0 {
		return fmt.Errorf("stream: snapshot names no vantage (run the engine with Config.Vantage set)")
	}
	if len(st.Shards) == 0 {
		return fmt.Errorf("stream: snapshot has no shard states")
	}
	key := strings.Join(st.Vantages, "\x00")
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fp != nil && !analysisFingerprintsEqual(*m.fp, st.Fingerprint) {
		return &FingerprintMismatchError{Checkpoint: st.Fingerprint, Engine: *m.fp}
	}
	for _, v := range st.Vantages {
		if owner, ok := m.byVan[v]; ok && owner != key {
			return fmt.Errorf("stream: vantage %q already belongs to snapshot group %q", v, strings.ReplaceAll(owner, "\x00", "+"))
		}
	}
	if m.fp == nil {
		fp := st.Fingerprint
		m.fp = &fp
	}
	m.snaps[key] = st
	for _, v := range st.Vantages {
		m.byVan[v] = key
	}
	return nil
}

// Merged folds the latest snapshot of every vantage into one canonical
// state. The fold order is deterministic (sorted group keys) and the
// result shares no memory with the stored snapshots.
func (m *Merger) Merged() (*EngineState, error) {
	m.mu.Lock()
	keys := make([]string, 0, len(m.snaps))
	for k := range m.snaps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	states := make([]*EngineState, 0, len(keys))
	for _, k := range keys {
		states = append(states, m.snaps[k])
	}
	m.mu.Unlock()
	return MergeStates(states...)
}

// Vantages lists every vantage with an installed snapshot, sorted.
func (m *Merger) Vantages() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.byVan))
	for v := range m.byVan {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of installed snapshot groups.
func (m *Merger) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.snaps)
}
