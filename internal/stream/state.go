package stream

import (
	"fmt"
	"math"
	"sort"

	"botmeter/internal/estimators"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// This file is the serialization half of checkpoint/recovery (DESIGN.md
// §15): EngineState captures everything the engine holds in memory —
// per-shard reorder heaps, watermarks, sequence counters, per-(server,
// epoch) estimator state, closed-epoch results and ingest tallies — in a
// form that Restore turns back into a running engine byte-identical to the
// original. The same shape is what ROADMAP item 1's multi-vantage merge
// coordinator consumes.
//
// Determinism rules the format obeys, so a kill–resume run reproduces the
// uninterrupted run exactly:
//
//   - Order-significant state stays ordered: TimingStream candidates (scan
//     order), open-epoch micro-batch records (emission order), the reorder
//     heap (exported in heap-array order; re-pushing a valid heap array in
//     order rebuilds the identical array) and the per-shard seq counter
//     (tie order for equal timestamps).
//   - Order-insensitive state (domain sets, per-epoch maps, server maps) is
//     exported sorted, so the same engine state always serializes to the
//     same bytes and checkpoints diff cleanly.
//   - symtab IDs are process-local and never serialized: buffered records
//     are stored as strings and restored with ID symtab.None, which routes
//     through the string paths with identical results (the PR 5 contract).

// Fingerprint pins the configuration a checkpoint was taken under. Restore
// refuses a state whose fingerprint differs from the restoring engine's:
// estimator state is only meaningful under the exact analysis parameters
// that produced it (a different seed means different pools, a different
// reorder window a different drop pattern, a different shard count a
// different record partition and tie order).
type Fingerprint struct {
	Family           string   `json:"family"`
	Model            string   `json:"model"`
	Estimator        string   `json:"estimator"`
	Seed             uint64   `json:"seed"`
	EpochLen         sim.Time `json:"epoch_len"`
	NegativeTTL      sim.Time `json:"negative_ttl"`
	Granularity      sim.Time `json:"granularity,omitempty"`
	SecondOpinion    bool     `json:"second_opinion,omitempty"`
	Detection        bool     `json:"detection,omitempty"`
	DetectMiss       float64  `json:"detect_miss,omitempty"`
	DetectCollisions int      `json:"detect_collisions,omitempty"`
	DetectSeed       uint64   `json:"detect_seed,omitempty"`
	Shards           int      `json:"shards"`
	ReorderWindow    sim.Time `json:"reorder_window"`
	MaxReorder       int      `json:"max_reorder"`
	WindowStart      sim.Time `json:"window_start,omitempty"`
	WindowEnd        sim.Time `json:"window_end,omitempty"`
}

// fingerprint derives the engine's fingerprint from its (defaulted) config.
func (e *Engine) fingerprint() Fingerprint {
	c := e.cfg
	fp := Fingerprint{
		Family:        c.Core.Family.Name,
		Model:         c.Core.Family.ModelName(),
		Estimator:     e.estimator.Name(),
		Seed:          c.Core.Seed,
		EpochLen:      c.Core.EpochLen,
		NegativeTTL:   c.Core.NegativeTTL,
		Granularity:   c.Core.Granularity,
		SecondOpinion: c.Core.SecondOpinion,
		Shards:        c.Shards,
		ReorderWindow: c.ReorderWindow,
		MaxReorder:    c.MaxReorder,
		WindowStart:   c.Window.Start,
		WindowEnd:     c.Window.End,
	}
	if d := c.Core.Detection; d != nil {
		fp.Detection = true
		fp.DetectMiss = d.MissRate
		fp.DetectCollisions = d.Collisions
		fp.DetectSeed = d.Seed
	}
	return fp
}

// SourcePos locates the checkpoint cut in the input stream: how many
// well-formed records the feeder had consumed (skipped or observed) when
// the state was exported. Resume replays the source, discarding the first
// Records records, so every record is applied exactly once across the
// crash — including its effect on epoch close.
type SourcePos struct {
	// Records is the number of well-formed records consumed from the
	// source. Malformed lines skipped by lenient parsing are not counted,
	// so the count is stable across re-parses.
	Records uint64 `json:"records"`
	// Path and Bytes describe the source file at checkpoint time when
	// known. A current file smaller than Bytes means the source was
	// truncated or replaced since the checkpoint — the state is stale and
	// recovery must fall back to a fresh start.
	Path  string `json:"path,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
}

// EngineState is the complete serializable state of a streaming engine.
type EngineState struct {
	Fingerprint Fingerprint `json:"fingerprint"`
	Source      SourcePos   `json:"source"`
	// Vantages names the observation points whose records this state
	// covers: the engine's own Config.Vantage for a live export, the sorted
	// union of the inputs' after MergeStates. Vantage identity is NOT part
	// of the fingerprint — states from different vantages under one
	// analysis config are exactly what a coordinator merges — but
	// MergeStates refuses to fold two states claiming the same vantage:
	// a re-merge of the same snapshot would double MP/NC/MT atoms.
	Vantages []string `json:"vantages,omitempty"`
	// Symtab is the pool cache's intern table (Config.Core.Pools), exported
	// so a restored process reproduces the exact domain-ID assignment.
	Symtab []string     `json:"symtab,omitempty"`
	Shards []ShardState `json:"shards"`
}

// ShardState is one ingest shard's state.
type ShardState struct {
	Seq             uint64        `json:"seq"`
	Watermark       int64         `json:"watermark"`
	MinT            int64         `json:"min_t"`
	MaxT            int64         `json:"max_t"`
	HasData         bool          `json:"has_data,omitempty"`
	MaxEmittedEpoch int           `json:"max_emitted_epoch"`
	PeakRetained    int           `json:"peak_retained,omitempty"`
	Stats           ShardStats    `json:"stats"`
	Buffer          []RecordEntry `json:"buffer,omitempty"`
	Servers         []ServerState `json:"servers,omitempty"`
}

// ShardStats is the shard's ingest tally (the counter fields of Stats).
type ShardStats struct {
	Ingested         uint64 `json:"ingested"`
	Matched          uint64 `json:"matched"`
	Unmatched        uint64 `json:"unmatched"`
	DroppedLate      uint64 `json:"dropped_late,omitempty"`
	ReorderEvictions uint64 `json:"reorder_evictions,omitempty"`
	EpochsClosed     uint64 `json:"epochs_closed,omitempty"`
}

// RecordEntry is one retained record. Reorder-buffer entries carry their
// arrival sequence (tie order) and server; open-epoch micro-batch records
// omit both — order is positional and the server is the enclosing
// ServerState's.
type RecordEntry struct {
	T      sim.Time `json:"t"`
	Seq    uint64   `json:"seq,omitempty"`
	Server string   `json:"server,omitempty"`
	Domain string   `json:"domain"`
}

// ServerState is one forwarding server's accumulated landscape state.
type ServerState struct {
	Name     string           `json:"name"`
	Matched  int              `json:"matched"`
	Domains  []string         `json:"domains,omitempty"`
	Closed   []EpochValue     `json:"closed,omitempty"`
	ClosedMT []EpochValue     `json:"closed_mt,omitempty"`
	Open     []EpochCellState `json:"open,omitempty"`
}

// EpochValue is one closed epoch's finalised estimate.
type EpochValue struct {
	Epoch int     `json:"epoch"`
	Value float64 `json:"value"`
}

// EpochCellState is one open (server, epoch) cell: the streaming
// estimator's incremental state (exactly one of Timing, Clusters or
// Bernoulli, matching the estimator family) or the retained micro-batch
// records, plus the second-opinion MT state when enabled.
type EpochCellState struct {
	Epoch     int                            `json:"epoch"`
	Records   []RecordEntry                  `json:"records,omitempty"`
	Timing    *estimators.TimingState        `json:"timing,omitempty"`
	Clusters  *estimators.ClusterStreamState `json:"clusters,omitempty"`
	Bernoulli *estimators.BernoulliState     `json:"bernoulli,omitempty"`
	Second    *estimators.TimingState        `json:"second,omitempty"`
}

// timingStateCodec is the serialization hook of the second-opinion MT
// stream, which is always a TimingStream.
type timingStateCodec interface {
	ExportState() estimators.TimingState
	RestoreState(estimators.TimingState)
}

// exportEpochStream serialises one primary estimator stream into the cell,
// dispatching on the stream's state type: MT exports candidate state,
// MP/NC their activation clusters, MB its distinct (bucket, position) set.
func exportEpochStream(es estimators.EpochStream, cs *EpochCellState) error {
	switch st := es.(type) {
	case timingStateCodec:
		ts := st.ExportState()
		cs.Timing = &ts
	case interface {
		ExportState() estimators.ClusterStreamState
	}:
		v := st.ExportState()
		cs.Clusters = &v
	case interface {
		ExportState() estimators.BernoulliState
	}:
		v := st.ExportState()
		cs.Bernoulli = &v
	default:
		return fmt.Errorf("stream: estimator stream %T is not checkpointable", es)
	}
	return nil
}

// restoreEpochStream loads the cell's serialized state into a freshly
// opened stream, requiring the state field to match the stream's family.
func restoreEpochStream(es estimators.EpochStream, cs EpochCellState) error {
	switch st := es.(type) {
	case timingStateCodec:
		if cs.Timing == nil {
			return fmt.Errorf("missing timing state for stream %T", es)
		}
		st.RestoreState(*cs.Timing)
	case interface {
		RestoreState(estimators.ClusterStreamState)
	}:
		if cs.Clusters == nil {
			return fmt.Errorf("missing cluster state for stream %T", es)
		}
		st.RestoreState(*cs.Clusters)
	case interface {
		RestoreState(estimators.BernoulliState)
	}:
		if cs.Bernoulli == nil {
			return fmt.Errorf("missing Bernoulli state for stream %T", es)
		}
		st.RestoreState(*cs.Bernoulli)
	default:
		return fmt.Errorf("estimator stream %T is not checkpointable", es)
	}
	return nil
}

// hasStreamState reports whether the cell carries any primary streaming
// estimator state.
func (cs EpochCellState) hasStreamState() bool {
	return cs.Timing != nil || cs.Clusters != nil || cs.Bernoulli != nil
}

// ExportState captures the engine's complete serializable state through a
// per-shard barrier: each shard drains its already-delivered records, then
// exports under its own mutex, all while the engine is guaranteed open.
// Called from the feeding goroutine (the single-feeder pattern of Follow
// and cmd/vantage) the cut is exact — precisely the records fed so far.
// The engine keeps running; the returned state shares nothing with it.
//
// Source is left zero: the caller (Checkpointer, federation coordinator)
// knows where the feed stands, the engine does not.
func (e *Engine) ExportState() (*EngineState, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("stream: engine closed")
	}
	reqs := make([]*shardCtl, len(e.shards))
	for i, s := range e.shards {
		req := &shardCtl{done: make(chan struct{})}
		reqs[i] = req
		s.ctl <- req
	}
	st := &EngineState{
		Fingerprint: e.fingerprint(),
		Shards:      make([]ShardState, len(e.shards)),
	}
	for i, req := range reqs {
		<-req.done
		if req.err != nil {
			return nil, req.err
		}
		st.Shards[i] = req.state
	}
	if pools := e.cfg.Core.Pools; pools != nil {
		if tab := pools.Table(); tab != nil {
			st.Symtab = tab.Export()
		}
	}
	if v := e.cfg.Vantage; v != "" {
		st.Vantages = []string{v}
	}
	return st, nil
}

// Quiesce forces every buffered record out of the reorder buffers in
// timestamp order and advances each shard's watermark to its newest
// emitted record, without closing the current epochs. It is only correct
// when no record older than the buffered maximum can still arrive —
// e.g. after replaying a historical file, before switching to live traffic
// stamped with the current time. cmd/vantage calls it after crash-recovery
// replay so /landscape immediately reflects every replayed record instead
// of lagging one reorder window behind.
func (e *Engine) Quiesce() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return fmt.Errorf("stream: engine closed")
	}
	reqs := make([]*shardCtl, len(e.shards))
	for i, s := range e.shards {
		req := &shardCtl{quiesce: true, done: make(chan struct{})}
		reqs[i] = req
		s.ctl <- req
	}
	for _, req := range reqs {
		<-req.done
	}
	return nil
}

// Restore builds and starts an engine from a previously exported state.
// cfg must describe the same deployment that produced the state (enforced
// via the fingerprint); cfg.Shards may be left 0 to adopt the checkpoint's
// shard count — the only safe choice, since the shard count determines the
// record partition. The caller then replays the source from
// st.Source.Records to catch up.
func Restore(cfg Config, st *EngineState) (*Engine, error) {
	if st == nil {
		return nil, fmt.Errorf("stream: nil checkpoint state")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = st.Fingerprint.Shards
	}
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	if fp := e.fingerprint(); fp != st.Fingerprint {
		return nil, &FingerprintMismatchError{Checkpoint: st.Fingerprint, Engine: fp}
	}
	if len(st.Shards) != len(e.shards) {
		return nil, fmt.Errorf("stream: checkpoint has %d shard states for %d shards", len(st.Shards), len(e.shards))
	}
	if len(st.Symtab) > 0 && cfg.Core.Pools != nil {
		if tab := cfg.Core.Pools.Table(); tab != nil {
			if err := tab.Import(st.Symtab); err != nil {
				return nil, fmt.Errorf("stream: restoring intern table: %w", err)
			}
		}
	}
	for i, s := range e.shards {
		if err := s.importState(st.Shards[i]); err != nil {
			return nil, fmt.Errorf("stream: shard %d: %w", i, err)
		}
	}
	e.start()
	return e, nil
}

// exportLocked serialises the shard. Holding mu inside the shard goroutine,
// nothing can mutate concurrently; everything is deep-copied.
func (s *shard) exportLocked() (ShardState, error) {
	if s.err != nil {
		return ShardState{}, fmt.Errorf("stream: shard %d carries an estimator error, refusing to checkpoint: %w", s.idx, s.err)
	}
	st := ShardState{
		Seq:             s.seq,
		Watermark:       int64(s.watermark),
		MinT:            int64(s.minT),
		MaxT:            int64(s.maxT),
		HasData:         s.hasData,
		MaxEmittedEpoch: s.maxEmittedEpoch,
		PeakRetained:    s.peakRetained,
		Stats: ShardStats{
			Ingested:         s.stats.Ingested,
			Matched:          s.stats.Matched,
			Unmatched:        s.stats.Unmatched,
			DroppedLate:      s.stats.DroppedLate,
			ReorderEvictions: s.stats.ReorderEvictions,
			EpochsClosed:     s.stats.EpochsClosed,
		},
	}
	if n := s.buf.len(); n > 0 {
		st.Buffer = make([]RecordEntry, n)
		for i, en := range s.buf.entries {
			st.Buffer[i] = RecordEntry{T: en.t, Seq: en.seq, Server: en.rec.Server, Domain: en.rec.Domain}
		}
	}
	names := make([]string, 0, len(s.servers))
	for name := range s.servers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sv := s.servers[name]
		ss := ServerState{
			Name:     name,
			Matched:  sv.matched,
			Domains:  sortedKeys(sv.domains),
			Closed:   sortedEpochValues(sv.perEpoch),
			ClosedMT: sortedEpochValues(sv.perEpochMT),
		}
		epochs := make([]int, 0, len(sv.open))
		for ep := range sv.open {
			epochs = append(epochs, ep)
		}
		sort.Ints(epochs)
		for _, ep := range epochs {
			cell := sv.open[ep]
			cs := EpochCellState{Epoch: ep}
			if cell.prim != nil {
				if err := exportEpochStream(cell.prim, &cs); err != nil {
					return ShardState{}, err
				}
			} else {
				cs.Records = make([]RecordEntry, len(cell.recs))
				for i, rec := range cell.recs {
					cs.Records[i] = RecordEntry{T: rec.T, Domain: rec.Domain}
				}
			}
			if cell.second != nil {
				codec, ok := cell.second.(timingStateCodec)
				if !ok {
					return ShardState{}, fmt.Errorf("stream: second-opinion stream %T is not checkpointable", cell.second)
				}
				ts := codec.ExportState()
				cs.Second = &ts
			}
			ss.Open = append(ss.Open, cs)
		}
		st.Servers = append(st.Servers, ss)
	}
	return st, nil
}

// importState loads one shard's state. Called before the shard goroutine
// starts; the mutex is held for form (Stats/Snapshot are already callable).
func (s *shard) importState(st ShardState) error {
	e := s.eng
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq = st.Seq
	s.watermark = sim.Time(st.Watermark)
	s.minT = sim.Time(st.MinT)
	s.maxT = sim.Time(st.MaxT)
	s.hasData = st.HasData
	s.maxEmittedEpoch = st.MaxEmittedEpoch
	s.stats = Stats{
		Ingested:         st.Stats.Ingested,
		Matched:          st.Stats.Matched,
		Unmatched:        st.Stats.Unmatched,
		DroppedLate:      st.Stats.DroppedLate,
		ReorderEvictions: st.Stats.ReorderEvictions,
		EpochsClosed:     st.Stats.EpochsClosed,
	}
	for _, en := range st.Buffer {
		s.buf.push(reorderEntry{t: en.T, seq: en.Seq, rec: trace.ObservedRecord{
			T: en.T, Server: en.Server, Domain: en.Domain,
		}})
	}
	retained := s.buf.len()
	for _, ss := range st.Servers {
		sv := &serverState{
			matched:  ss.Matched,
			domains:  make(map[string]struct{}, len(ss.Domains)),
			perEpoch: make(map[int]float64, len(ss.Closed)),
			open:     make(map[int]*epochCell, len(ss.Open)),
		}
		for _, d := range ss.Domains {
			sv.domains[d] = struct{}{}
		}
		for _, ev := range ss.Closed {
			sv.perEpoch[ev.Epoch] = ev.Value
		}
		if e.secondSrc != nil {
			sv.perEpochMT = make(map[int]float64, len(ss.ClosedMT))
			for _, ev := range ss.ClosedMT {
				sv.perEpochMT[ev.Epoch] = ev.Value
			}
		} else if len(ss.ClosedMT) > 0 {
			return fmt.Errorf("server %s carries second-opinion state but the engine has none", ss.Name)
		}
		for _, cs := range ss.Open {
			cell := &epochCell{}
			if e.streaming != nil {
				if !cs.hasStreamState() {
					return fmt.Errorf("server %s epoch %d: missing streaming estimator state", ss.Name, cs.Epoch)
				}
				prim := e.streaming.OpenEpoch(cs.Epoch, e.estCfg)
				if err := restoreEpochStream(prim, cs); err != nil {
					return fmt.Errorf("server %s epoch %d: %w", ss.Name, cs.Epoch, err)
				}
				cell.prim = prim
			} else {
				if cs.hasStreamState() {
					return fmt.Errorf("server %s epoch %d: streaming state for a micro-batch estimator", ss.Name, cs.Epoch)
				}
				cell.recs = make(trace.Observed, len(cs.Records))
				for i, en := range cs.Records {
					cell.recs[i] = trace.ObservedRecord{T: en.T, Server: ss.Name, Domain: en.Domain}
				}
				retained += len(cell.recs)
			}
			if e.secondSrc != nil {
				if cs.Second == nil {
					return fmt.Errorf("server %s epoch %d: missing second-opinion state", ss.Name, cs.Epoch)
				}
				second := e.secondSrc.OpenEpoch(cs.Epoch, e.estCfg)
				codec, ok := second.(timingStateCodec)
				if !ok {
					return fmt.Errorf("second-opinion stream %T is not checkpointable", second)
				}
				codec.RestoreState(*cs.Second)
				cell.second = second
			}
			sv.open[cs.Epoch] = cell
		}
		s.servers[ss.Name] = sv
	}
	s.retained = retained
	s.peakRetained = st.PeakRetained
	if retained > s.peakRetained {
		s.peakRetained = retained
	}
	// The retained gauge tracks this process's holdings; counters
	// (ingested, matched, …) are NOT replayed into the registry — metrics
	// count this process's work, Stats() stays cumulative across restores.
	e.m.retained.Add(float64(retained))
	if s.wmGauge != nil && s.watermark != math.MinInt64 {
		s.wmGauge.Set(float64(s.watermark))
	}
	return nil
}

func sortedKeys(m map[string]struct{}) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedEpochValues(m map[int]float64) []EpochValue {
	if len(m) == 0 {
		return nil
	}
	out := make([]EpochValue, 0, len(m))
	for ep, v := range m {
		out = append(out, EpochValue{Epoch: ep, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}
