package stream_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"botmeter/internal/obs"
	"botmeter/internal/obs/rules"
	"botmeter/internal/obs/series"
	"botmeter/internal/sim"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

// fakeClock is a hand-advanced wall clock shared by the engine, the
// observatory and the series store, making freshness deterministic.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock(at time.Time) *fakeClock { return &fakeClock{now: at} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// fnvShard mirrors the engine's documented FNV-1a server→shard hash, so
// the test can pick server names that land on chosen shards.
func fnvShard(server string, shards int) int {
	h := uint32(2166136261)
	for i := 0; i < len(server); i++ {
		h ^= uint32(server[i])
		h *= 16777619
	}
	return int(h % uint32(shards))
}

// serverOnShard finds a server name hashing to the wanted shard.
func serverOnShard(t *testing.T, want, shards int) string {
	t.Helper()
	for i := 0; i < 1024; i++ {
		name := "vantage-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if fnvShard(name, shards) == want {
			return name
		}
	}
	t.Fatal("no server name found for shard")
	return ""
}

// waitStats polls the engine until cond holds (delivery through the shard
// channels is asynchronous).
func waitStats(t *testing.T, eng *stream.Engine, cond func(stream.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(eng.Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("engine never reached expected state: %+v", eng.Stats())
}

// TestFreshnessSLOStalledShard is the deterministic freshness test the
// issue demands: two shards, live-mode timestamps, one shard's feed
// stalls, the wall clock advances past the SLO — the freshness rule must
// fire, Health must degrade and /healthz must flip to 503. Un-stalling
// the shard must clear it again (hysteresis: lag has to drop below half
// the SLO, which a fresh watermark achieves at once).
func TestFreshnessSLOStalledShard(t *testing.T) {
	spec, coreCfg := testConfig()
	// Live mode: record timestamps are Unix ms on the fake clock's epoch.
	base := time.UnixMilli(1_700_000_000_000)
	clock := newFakeClock(base)
	reg := obs.NewRegistry()
	eng, err := stream.New(stream.Config{
		Core:          coreCfg,
		Shards:        2,
		ReorderWindow: sim.Second,
		Registry:      reg,
		Clock:         clock.Now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer eng.Kill()
	obsy, err := stream.NewObservatory(stream.ObservatoryConfig{
		Engine:       eng,
		Registry:     reg,
		FreshnessSLO: 5 * time.Second,
		Clock:        clock.Now,
	})
	if err != nil {
		t.Fatalf("NewObservatory: %v", err)
	}
	mux := obs.NewMux(obs.MuxConfig{Registry: reg, Health: obsy.Health, Series: obsy.Store()})

	healthCode := func() int {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code
	}

	live := serverOnShard(t, 0, 2)
	stalled := serverOnShard(t, 1, 2)
	epoch := int(sim.Time(base.UnixMilli()) / coreCfg.EpochLen)
	pool := spec.Pool.PoolFor(coreCfg.Seed, epoch)
	observe := func(server string, at time.Time) {
		rec := trace.ObservedRecord{T: sim.Time(at.UnixMilli()), Server: server, Domain: pool.Domains[0]}
		if err := eng.Observe(rec); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}

	// Both shards see fresh matched traffic: lags are tiny, health is ok.
	observe(live, clock.Now())
	observe(stalled, clock.Now())
	waitStats(t, eng, func(s stream.Stats) bool { return s.Matched >= 2 })
	obsy.SampleIngest()
	if err := obsy.Health(); err != nil {
		t.Fatalf("healthy engine reported %v", err)
	}
	if code := healthCode(); code != 200 {
		t.Fatalf("/healthz = %d, want 200", code)
	}

	// The stalled shard's feed stops; the live shard keeps up with the
	// clock. Ten seconds later its watermark lag exceeds the 5 s SLO.
	clock.Advance(10 * time.Second)
	observe(live, clock.Now())
	waitStats(t, eng, func(s stream.Stats) bool { return s.Matched >= 3 })
	obsy.SampleIngest()
	if st := obsy.Rules().State(stream.RuleFreshness); st != rules.Firing {
		t.Fatalf("freshness rule = %v, want firing (shard stats: %+v)", st, eng.ShardStats())
	}
	err = obsy.Health()
	if err == nil || !strings.Contains(err.Error(), "freshness") {
		t.Fatalf("Health = %v, want freshness violation", err)
	}
	if code := healthCode(); code != 503 {
		t.Fatalf("/healthz = %d, want 503", code)
	}
	// The scrape-time gauge must agree with the rule's view.
	if lag := reg.GaugeValue(stream.MetricWatermarkLag, "shard", "1"); lag < 5 {
		t.Fatalf("stalled shard lag gauge = %v, want ≥ 5", lag)
	}

	// The stalled shard catches up: its watermark jumps to now − window,
	// dropping the lag below the clear level, and health recovers.
	observe(stalled, clock.Now())
	waitStats(t, eng, func(s stream.Stats) bool { return s.Matched >= 4 })
	obsy.SampleIngest()
	if err := obsy.Health(); err != nil {
		t.Fatalf("recovered engine reported %v", err)
	}
	if code := healthCode(); code != 200 {
		t.Fatalf("/healthz after recovery = %d, want 200", code)
	}

	// The store kept the lag series: its snapshot must contain per-shard
	// watermark-lag points.
	dumps := obsy.Store().Snapshot(stream.MetricWatermarkLag, 0)
	if len(dumps) != 2 {
		t.Fatalf("lag series count = %d, want 2 (one per shard)", len(dumps))
	}
	for _, d := range dumps {
		if len(d.Points) == 0 {
			t.Fatalf("lag series %s has no points", d.Name)
		}
	}
}

// TestObservatoryLandscapeSampling drives the landscape plane: totals,
// deltas, estimator disagreement and the /landscape/history payload.
func TestObservatoryLandscapeSampling(t *testing.T) {
	spec, coreCfg := testConfig()
	coreCfg.SecondOpinion = true
	clock := newFakeClock(time.UnixMilli(1_700_000_000_000))
	eng, err := stream.New(stream.Config{Core: coreCfg, Shards: 2, Clock: clock.Now})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	recs := synthTrace(t, spec, coreCfg.Seed, 4, 2, 3)
	for _, rec := range recs {
		if err := eng.Observe(rec); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	waitStats(t, eng, func(s stream.Stats) bool { return s.Ingested == uint64(len(recs)) })
	obsy, err := stream.NewObservatory(stream.ObservatoryConfig{
		Engine:          eng,
		HistoryInterval: 10 * time.Second,
		DisagreementSLO: 100, // present but effectively unreachable
		Clock:           clock.Now,
	})
	if err != nil {
		t.Fatalf("NewObservatory: %v", err)
	}
	obsy.SampleLandscape()
	clock.Advance(10 * time.Second)
	obsy.SampleLandscape()
	if _, err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	body, err := obsy.HistoryJSON()
	if err != nil {
		t.Fatalf("HistoryJSON: %v", err)
	}
	var hist struct {
		IntervalMS int64  `json:"interval_ms"`
		Family     string `json:"family"`
		Estimator  string `json:"estimator"`
		Points     []struct {
			T            int64              `json:"t"`
			Total        float64            `json:"total"`
			Servers      int                `json:"servers"`
			Delta        float64            `json:"delta"`
			Estimates    map[string]float64 `json:"estimates"`
			Disagreement float64            `json:"disagreement"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body, &hist); err != nil {
		t.Fatalf("history JSON: %v\n%s", err, body)
	}
	if hist.Family != coreCfg.Family.Name || hist.Estimator == "" {
		t.Fatalf("history header = %q/%q", hist.Family, hist.Estimator)
	}
	if len(hist.Points) != 2 {
		t.Fatalf("history points = %d, want 2", len(hist.Points))
	}
	p0, p1 := hist.Points[0], hist.Points[1]
	if p0.Total <= 0 || p0.Servers != 4 {
		t.Fatalf("first sample: total %v servers %d", p0.Total, p0.Servers)
	}
	if p0.Delta != 0 {
		t.Fatalf("first sample delta = %v, want 0", p0.Delta)
	}
	if got := p1.Total - p0.Total; p1.Delta != got {
		t.Fatalf("second sample delta = %v, want %v", p1.Delta, got)
	}
	if len(p1.Estimates) < 2 {
		t.Fatalf("estimates = %v, want primary + MT second opinion", p1.Estimates)
	}
	if p1.Disagreement < 0 {
		t.Fatalf("disagreement = %v, want ≥ 0", p1.Disagreement)
	}
	// The same signals must be in the series store.
	for _, name := range []string{stream.MetricLandscapeTotal, stream.MetricDisagreement} {
		se := obsy.Store().Series(name)
		if _, ok := se.Last(); !ok {
			t.Fatalf("series %s not recorded", name)
		}
	}
	if line := obsy.StatusLine(); !strings.Contains(line, "lag") || !strings.Contains(line, "rec/s") {
		t.Fatalf("status line %q missing fields", line)
	}
}

// TestConcurrentScrape hammers /metrics, /debug/series and
// /landscape/history while records are ingested and the observatory
// samples on real tickers — the -race proof that exposition, sampling and
// ingest never trample each other, and that every /metrics body stays
// parseable by the strict validator.
func TestConcurrentScrape(t *testing.T) {
	spec, coreCfg := testConfig()
	coreCfg.SecondOpinion = true
	reg := obs.NewRegistry()
	eng, err := stream.New(stream.Config{Core: coreCfg, Shards: 4, Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	store := series.NewStore(series.Config{Capacity: 64, Step: time.Millisecond})
	obsy, err := stream.NewObservatory(stream.ObservatoryConfig{
		Engine:          eng,
		Store:           store,
		Registry:        reg,
		Interval:        2 * time.Millisecond,
		HistoryInterval: 5 * time.Millisecond,
		FreshnessSLO:    time.Hour, // present, not expected to fire
		LossRateSLO:     1,
	})
	if err != nil {
		t.Fatalf("NewObservatory: %v", err)
	}
	obsy.Start()
	mux := obs.NewMux(obs.MuxConfig{
		Registry:  reg,
		Health:    obsy.Health,
		Series:    store,
		Landscape: eng.LandscapeJSON,
		History:   obsy.HistoryJSON,
	})

	recs := synthTrace(t, spec, coreCfg.Seed, 6, 2, 3)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, rec := range recs {
			if err := eng.Observe(rec); err != nil {
				return
			}
		}
	}()
	const scrapers = 4
	errs := make(chan error, scrapers*64)
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 16; j++ {
				for _, path := range []string{"/metrics", "/debug/series", "/landscape/history", "/healthz"} {
					rec := httptest.NewRecorder()
					mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
					if path == "/metrics" {
						if err := obs.ValidatePrometheusText(rec.Body); err != nil {
							errs <- err
							return
						}
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	obsy.Stop()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent scrape: %v", err)
	}
	if _, err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// One final full validation after everything settled.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if err := obs.ValidatePrometheusText(rec.Body); err != nil {
		t.Fatalf("final /metrics invalid: %v", err)
	}
	var dump struct {
		Series []struct {
			Name string `json:"name"`
		} `json:"series"`
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series?prefix=stream_", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("/debug/series: %v", err)
	}
	if len(dump.Series) == 0 {
		t.Fatal("/debug/series returned no stream_ series")
	}
}

// TestCheckpointAge pins the age semantics: before any checkpoint the age
// runs from creation; after one it runs from completion.
func TestCheckpointAge(t *testing.T) {
	_, coreCfg := testConfig()
	clock := newFakeClock(time.UnixMilli(1_700_000_000_000))
	eng, err := stream.New(stream.Config{Core: coreCfg, Shards: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer eng.Kill()
	ck, err := stream.NewCheckpointer(stream.CheckpointConfig{
		Dir:   t.TempDir(),
		Clock: clock.Now,
	})
	if err != nil {
		t.Fatalf("NewCheckpointer: %v", err)
	}
	clock.Advance(30 * time.Second)
	if age := ck.AgeSeconds(); age != 30 {
		t.Fatalf("age before first checkpoint = %v, want 30", age)
	}
	if err := ck.Checkpoint(eng, 0); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if age := ck.AgeSeconds(); age != 0 {
		t.Fatalf("age right after checkpoint = %v, want 0", age)
	}
	clock.Advance(7 * time.Second)
	if age := ck.AgeSeconds(); age != 7 {
		t.Fatalf("age after 7s = %v, want 7", age)
	}
}
