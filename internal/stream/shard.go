package stream

import (
	"fmt"
	"math"
	"sync"
	"time"

	"botmeter/internal/core"
	"botmeter/internal/estimators"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// shard owns the servers that hash to it: reorder buffer, watermark and
// per-(server, epoch) estimator state. All mutable state is guarded by mu
// so Snapshot/Stats can read consistently while the shard goroutine runs.
type shard struct {
	eng *Engine
	idx int
	ch  chan trace.ObservedRecord
	// ctl carries barrier requests (state export, quiesce) into the shard
	// goroutine, so they serialise with ingest instead of racing it.
	ctl chan *shardCtl

	mu  sync.Mutex
	buf reorderHeap
	seq uint64
	// watermark is the low-water mark: no record with T < watermark will
	// ever be emitted again. Monotone by construction.
	watermark sim.Time
	// maxT/minT span every ingested record (matched or not) — the source
	// of the derived analysis window, mirroring cmd/botmeter.
	maxT, minT sim.Time
	hasData    bool
	// maxEmittedEpoch is the highest epoch that has received an emission;
	// epochs below it are closed as soon as it advances.
	maxEmittedEpoch int

	// lastMatcher memoises the last epoch's matcher: records arrive in
	// near-epoch-order, so the common case skips EpochMatchers.For's mutex
	// on every ingest.
	lastMatcher      *core.EpochMatcher
	lastMatcherEpoch int

	servers map[string]*serverState

	retained     int // buffered + open-epoch records currently held
	peakRetained int
	stats        Stats
	err          error

	// wmGauge is the shard's exported watermark (nil-safe when metrics
	// are disabled).
	wmGauge *obs.Gauge
}

func newShard(e *Engine, idx int) *shard {
	s := &shard{
		eng:             e,
		idx:             idx,
		ch:              make(chan trace.ObservedRecord, e.cfg.ShardBuffer),
		ctl:             make(chan *shardCtl, 1),
		watermark:       math.MinInt64,
		maxT:            math.MinInt64,
		minT:            math.MaxInt64,
		maxEmittedEpoch: math.MinInt64,
		servers:         make(map[string]*serverState),
	}
	if reg := e.cfg.Registry; reg != nil {
		s.wmGauge = reg.Gauge(MetricWatermark, "shard", fmt.Sprint(idx))
		// Callback gauges: watermark lag and reorder depth age between
		// samples, so they are computed at scrape time instead of written on
		// the ingest path.
		reg.GaugeFunc(MetricWatermarkLag, func() float64 {
			now := e.cfg.Clock()
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.lagSecondsLocked(now)
		}, "shard", fmt.Sprint(idx))
		reg.GaugeFunc(MetricReorderDepth, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.buf.len())
		}, "shard", fmt.Sprint(idx))
	}
	return s
}

// lagSecondsLocked is the wall-clock staleness of the shard's watermark:
// now − watermark in seconds, clamped at 0 (a watermark ahead of the
// clock, as in virtual-time replays, reads as fresh). 0 while no
// watermark has been emitted.
func (s *shard) lagSecondsLocked(now time.Time) float64 {
	if s.watermark == math.MinInt64 {
		return 0
	}
	lag := float64(now.UnixMilli()-int64(s.watermark)) / 1000
	if lag < 0 {
		return 0
	}
	return lag
}

// loop drains the shard channel until Close, servicing barrier requests
// between records.
func (s *shard) loop() {
	for {
		select {
		case rec, ok := <-s.ch:
			if !ok {
				return
			}
			s.mu.Lock()
			s.ingestLocked(rec)
			s.mu.Unlock()
		case req := <-s.ctl:
			s.handleCtl(req)
		}
	}
}

// shardCtl is one barrier request: export the shard's serializable state,
// or quiesce (force-drain the reorder buffer).
type shardCtl struct {
	quiesce bool
	state   ShardState
	err     error
	done    chan struct{}
}

// handleCtl services one barrier request inside the shard goroutine. The
// requesting producer is paused inside the Engine barrier call, so the data
// channel drains to empty and stays empty: the cut is exactly the records
// delivered before the barrier. (With multiple concurrent producers the cut
// is still consistent — everything delivered is included — just not at a
// caller-chosen record count; exact cuts require the single-feeder pattern
// both daemons use.)
func (s *shard) handleCtl(req *shardCtl) {
drain:
	for {
		select {
		case rec, ok := <-s.ch:
			if !ok {
				break drain
			}
			s.mu.Lock()
			s.ingestLocked(rec)
			s.mu.Unlock()
		default:
			break drain
		}
	}
	s.mu.Lock()
	if req.quiesce {
		s.quiesceLocked()
	} else {
		req.state, req.err = s.exportLocked()
	}
	s.mu.Unlock()
	close(req.done)
}

// ingestLocked processes one record: span tracking, matching, reorder
// buffering, watermark advance, emission and epoch closing.
func (s *shard) ingestLocked(rec trace.ObservedRecord) {
	e := s.eng
	s.stats.Ingested++
	e.m.ingested.Inc()
	// minT/maxT track the span of EVERY ingested record (matched or not) —
	// the derived analysis window mirrors cmd/botmeter, which epoch-aligns
	// around the whole trace. The watermark, by contrast, only advances on
	// matched records (below), so unmatched stragglers cannot force late
	// drops of matched traffic.
	if !s.hasData {
		s.minT, s.maxT = rec.T, rec.T
		s.hasData = true
	} else {
		if rec.T < s.minT {
			s.minT = rec.T
		}
		if rec.T > s.maxT {
			s.maxT = rec.T
		}
	}

	epoch := int(rec.T / e.cfg.Core.EpochLen)
	if s.lastMatcher == nil || epoch != s.lastMatcherEpoch {
		s.lastMatcher = e.matchers.For(epoch)
		s.lastMatcherEpoch = epoch
	}
	if !s.lastMatcher.MatchRecord(rec) {
		s.stats.Unmatched++
		e.m.unmatched.Inc()
		return
	}
	s.stats.Matched++
	e.m.matched.Inc()

	if s.watermark != math.MinInt64 && rec.T < s.watermark {
		s.stats.DroppedLate++
		e.m.late.Inc()
		return
	}
	s.buf.push(reorderEntry{t: rec.T, seq: s.seq, rec: rec})
	s.seq++
	s.retainInc(1)
	if wm := rec.T - e.cfg.ReorderWindow; wm > s.watermark {
		s.watermark = wm
	}

	// Overflow: force-emit the oldest buffered record, advancing the
	// watermark to it so ordering stays monotone (later arrivals older
	// than it become late drops).
	for s.buf.len() > e.cfg.MaxReorder {
		entry := s.buf.pop()
		s.retainInc(-1)
		if entry.t > s.watermark {
			s.watermark = entry.t
		}
		s.stats.ReorderEvictions++
		e.m.evictions.Inc()
		s.emitLocked(entry.rec)
	}
	// Normal drain: everything strictly below the watermark is safe to
	// emit (a new arrival at exactly the watermark is still accepted, so
	// equal-T entries must wait).
	for s.buf.len() > 0 && s.buf.min().t < s.watermark {
		entry := s.buf.pop()
		s.retainInc(-1)
		s.emitLocked(entry.rec)
	}
	// Watermark-driven epoch closing: epochs wholly below the watermark
	// can never receive another record, even for idle servers.
	if s.watermark != math.MinInt64 && s.watermark >= 0 {
		s.closeThroughLocked(int(s.watermark/e.cfg.Core.EpochLen) - 1)
		s.advanceOpenLocked(s.watermark)
	}
	if s.wmGauge != nil && s.watermark != math.MinInt64 {
		s.wmGauge.Set(float64(s.watermark))
	}
}

// emitLocked hands one matched record, in non-decreasing timestamp order,
// to its (server, epoch) cell.
func (s *shard) emitLocked(rec trace.ObservedRecord) {
	e := s.eng
	epoch := int(rec.T / e.cfg.Core.EpochLen)
	if epoch > s.maxEmittedEpoch {
		if s.maxEmittedEpoch != math.MinInt64 {
			s.closeThroughLocked(epoch - 1)
		}
		s.maxEmittedEpoch = epoch
	}
	sv, ok := s.servers[rec.Server]
	if !ok {
		sv = &serverState{
			domains:  make(map[string]struct{}),
			perEpoch: make(map[int]float64),
			open:     make(map[int]*epochCell),
		}
		if e.secondSrc != nil {
			sv.perEpochMT = make(map[int]float64)
		}
		s.servers[rec.Server] = sv
	}
	sv.matched++
	sv.domains[rec.Domain] = struct{}{}
	cell, ok := sv.open[epoch]
	if !ok {
		cell = &epochCell{}
		if e.streaming != nil {
			cell.prim = e.streaming.OpenEpoch(epoch, e.estCfg)
		}
		if e.secondSrc != nil {
			cell.second = e.secondSrc.OpenEpoch(epoch, e.estCfg)
		}
		sv.open[epoch] = cell
	}
	if cell.prim != nil {
		cell.prim.Observe(rec)
	} else {
		cell.recs = append(cell.recs, rec)
		s.retainInc(1)
	}
	if cell.second != nil {
		cell.second.Observe(rec)
	}
}

// closeThroughLocked finalises every open epoch ≤ ep across the shard's
// servers: micro-batch estimators run over the retained records, streaming
// estimators report their running count, and the cell is freed.
func (s *shard) closeThroughLocked(ep int) {
	for _, sv := range s.servers {
		for e := range sv.open {
			if e <= ep {
				s.closeCellLocked(sv, e)
			}
		}
	}
}

// closeCellLocked finalises one (server, epoch) cell.
func (s *shard) closeCellLocked(sv *serverState, epoch int) {
	cell := sv.open[epoch]
	if cell == nil {
		return
	}
	// The latency histogram is nil when metrics are off; guard the clock
	// reads so disabled deployments (and the ns/record benchmarks) pay only
	// the branch.
	var t0 time.Time
	if s.eng.m.epochClose != nil {
		t0 = s.eng.cfg.Clock()
	}
	v, err := s.estimateCellLocked(cell, epoch)
	if s.eng.m.epochClose != nil {
		s.eng.m.epochClose.Observe(s.eng.cfg.Clock().Sub(t0).Seconds())
	}
	if err != nil {
		s.eng.m.estErrors.Inc()
		if s.err == nil {
			s.err = err
		}
	}
	sv.perEpoch[epoch] = v
	if cell.second != nil {
		sv.perEpochMT[epoch] = cell.second.Estimate()
	}
	// Pooled-state streams (MB's pair set) recycle their scratch now that
	// the cell can never be estimated again.
	if r, ok := cell.prim.(estimators.Releasable); ok {
		r.Release()
	}
	if r, ok := cell.second.(estimators.Releasable); ok {
		r.Release()
	}
	s.retainInc(-len(cell.recs))
	delete(sv.open, epoch)
	s.stats.EpochsClosed++
	s.eng.m.epochs.Inc()
}

// estimateCellLocked evaluates one cell (final or provisional).
func (s *shard) estimateCellLocked(cell *epochCell, epoch int) (float64, error) {
	if cell.prim != nil {
		return cell.prim.Estimate(), nil
	}
	v, err := s.eng.estimator.EstimateEpoch(cell.recs, epoch, s.eng.estCfg)
	if err != nil {
		return 0, fmt.Errorf("stream: epoch %d: %w", epoch, err)
	}
	return v, nil
}

// advanceOpenLocked lets streaming estimators expire candidate state up to
// the watermark (bounded memory for idle-but-open epochs).
func (s *shard) advanceOpenLocked(watermark sim.Time) {
	for _, sv := range s.servers {
		for _, cell := range sv.open {
			if cell.prim != nil {
				cell.prim.Advance(watermark)
			}
			if cell.second != nil {
				cell.second.Advance(watermark)
			}
		}
	}
}

// flushLocked drains the reorder buffer entirely and closes every open
// epoch — the end-of-stream path of Close.
func (s *shard) flushLocked() {
	for s.buf.len() > 0 {
		entry := s.buf.pop()
		s.retainInc(-1)
		if entry.t > s.watermark {
			s.watermark = entry.t
		}
		s.emitLocked(entry.rec)
	}
	s.closeThroughLocked(math.MaxInt64)
}

// quiesceLocked force-emits every buffered record in timestamp order,
// advancing the watermark to the newest emitted record, then applies the
// normal watermark-driven epoch closing. Unlike flushLocked it leaves the
// current epochs open, so the shard keeps accepting live traffic — but any
// later arrival older than the new watermark becomes a late drop, which is
// why Engine.Quiesce documents the "no older record can still arrive"
// precondition.
func (s *shard) quiesceLocked() {
	e := s.eng
	for s.buf.len() > 0 {
		entry := s.buf.pop()
		s.retainInc(-1)
		if entry.t > s.watermark {
			s.watermark = entry.t
		}
		s.emitLocked(entry.rec)
	}
	if s.watermark != math.MinInt64 && s.watermark >= 0 {
		s.closeThroughLocked(int(s.watermark/e.cfg.Core.EpochLen) - 1)
		s.advanceOpenLocked(s.watermark)
	}
	if s.wmGauge != nil && s.watermark != math.MinInt64 {
		s.wmGauge.Set(float64(s.watermark))
	}
}

// retainInc adjusts the retained-record gauge and its peak.
func (s *shard) retainInc(d int) {
	s.retained += d
	if s.retained > s.peakRetained {
		s.peakRetained = s.retained
	}
	s.eng.m.retained.Add(float64(d))
}

// estimateServer assembles one server's ServerEstimate over the epoch
// range [first, last], exactly as core.Analyze does: closed epochs use
// their finalised value, open epochs a provisional estimate, absent
// epochs the estimator's value on an empty observation set.
func (s *shard) estimateServer(name string, sv *serverState, first, last int) (core.ServerEstimate, error) {
	est := core.ServerEstimate{
		Server:          name,
		MatchedLookups:  sv.matched,
		DistinctDomains: len(sv.domains),
	}
	var firstErr error
	var total, totalMT float64
	epochs := 0
	for ep := first; ep <= last; ep++ {
		var v float64
		switch {
		case hasKey(sv.perEpoch, ep):
			v = sv.perEpoch[ep]
		case sv.open[ep] != nil:
			pv, err := s.estimateCellLocked(sv.open[ep], ep)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			v = pv
			if sv.open[ep].second != nil {
				totalMT += sv.open[ep].second.Estimate()
			}
		default:
			pv, err := s.eng.estimator.EstimateEpoch(nil, ep, s.eng.estCfg)
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("stream: epoch %d: %w", ep, err)
			}
			v = pv
		}
		if hasKey(sv.perEpochMT, ep) {
			totalMT += sv.perEpochMT[ep]
		}
		est.PerEpoch = append(est.PerEpoch, v)
		total += v
		epochs++
	}
	if epochs > 0 {
		est.Population = total / float64(epochs)
		if s.eng.secondSrc != nil {
			est.SecondOpinion = totalMT / float64(epochs)
		}
	}
	return est, firstErr
}

func hasKey(m map[int]float64, k int) bool {
	if m == nil {
		return false
	}
	_, ok := m[k]
	return ok
}

// serverState is one forwarding server's accumulated landscape state.
type serverState struct {
	matched    int
	domains    map[string]struct{}
	perEpoch   map[int]float64 // closed epochs → finalised estimate
	perEpochMT map[int]float64 // closed epochs → MT second opinion
	open       map[int]*epochCell
}

// epochCell is one open (server, epoch): either a streaming estimator fed
// incrementally or the retained records for a micro-batch on close.
type epochCell struct {
	recs   trace.Observed
	prim   estimators.EpochStream
	second estimators.EpochStream
}

// reorderEntry orders buffered records by (timestamp, arrival sequence) so
// equal timestamps keep arrival order — the stability that makes in-order
// input reproduce batch MT exactly.
type reorderEntry struct {
	t   sim.Time
	seq uint64
	rec trace.ObservedRecord
}

func (a reorderEntry) less(b reorderEntry) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// reorderHeap is a value-based binary min-heap (no container/heap boxing —
// same idiom as internal/sim's event queue).
type reorderHeap struct {
	entries []reorderEntry
}

func (h *reorderHeap) len() int { return len(h.entries) }

func (h *reorderHeap) min() reorderEntry { return h.entries[0] }

func (h *reorderHeap) push(e reorderEntry) {
	h.entries = append(h.entries, e)
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.entries[i].less(h.entries[parent]) {
			break
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

func (h *reorderHeap) pop() reorderEntry {
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries[last] = reorderEntry{} // release the record string refs
	h.entries = h.entries[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.entries) && h.entries[l].less(h.entries[smallest]) {
			smallest = l
		}
		if r < len(h.entries) && h.entries[r].less(h.entries[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.entries[i], h.entries[smallest] = h.entries[smallest], h.entries[i]
		i = smallest
	}
}
