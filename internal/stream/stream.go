// Package stream is the online landscape engine: the batch pipeline of
// internal/core (match → group by server → per-epoch estimate → rank)
// re-expressed over an unbounded record stream in bounded memory. It is
// what turns the paper's Figure-2 deployment from "collect a trace, then
// analyse it" into continuous monitoring at a border vantage point.
//
// Architecture (DESIGN.md §13):
//
//   - Observe hashes each record by forwarding server onto one of a fixed
//     set of ingest shards; each shard is a goroutine fed by a bounded
//     channel (backpressure, never unbounded queuing). A server's records
//     are always handled by the same shard, so per-server state needs no
//     cross-shard coordination.
//   - Inside a shard, matched records pass through a small reorder buffer:
//     a min-heap by (timestamp, arrival), drained up to the watermark
//     maxT − ReorderWindow. Emission is therefore in non-decreasing
//     timestamp order (stable for ties). Records older than the watermark
//     are dropped and counted; buffer overflow evicts the oldest entry and
//     advances the watermark — graceful degradation, never a panic, never
//     a watermark regression.
//   - Estimation is per (server, epoch). StreamCapable estimators (MT) are
//     fed record-by-record with candidate expiry; everything else (MP, MB,
//     …) keeps the open epoch's records and re-estimates them as a
//     windowed micro-batch when the watermark closes the epoch, after
//     which the records are freed. Memory is bounded by the reorder buffer
//     plus the open epochs' matched records — never the full trace.
//
// The defining contract (enforced by TestBatchStreamEquivalence under
// -race): for any trace, streaming the records yields the same landscape
// as core.Analyze over the full trace — exactly for epoch-closed MP/MB
// (set/multiset-based, insensitive to tie order) and exactly for MT on
// in-order input; after shuffling within the reorder window MT may differ
// only through the ordering of equal-timestamp records, the documented
// tolerance.
package stream

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"botmeter/internal/core"
	"botmeter/internal/estimators"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// Metric families exported by the engine (see Config.Registry).
const (
	MetricIngested   = "stream_ingested_records_total"
	MetricMatched    = "stream_matched_records_total"
	MetricUnmatched  = "stream_unmatched_records_total"
	MetricLate       = "stream_dropped_late_total"
	MetricEvictions  = "stream_reorder_evictions_total"
	MetricEpochs     = "stream_epochs_closed_total"
	MetricRetained   = "stream_retained_records"
	MetricWatermark  = "stream_watermark_ms"
	MetricSnapshots  = "stream_snapshots_total"
	MetricEstimators = "stream_estimator_errors_total"
	MetricRotations  = "stream_source_rotations_total"
	// MetricWatermarkLag is a per-shard callback gauge: seconds between the
	// wall clock and the shard's watermark, evaluated at scrape time. Only
	// meaningful in live deployments, where record timestamps are Unix ms.
	MetricWatermarkLag = "stream_watermark_lag_seconds"
	// MetricReorderDepth is a per-shard callback gauge: records currently
	// held in the shard's reorder heap.
	MetricReorderDepth = "stream_reorder_depth"
	// MetricEpochClose is a histogram of the wall time spent finalising one
	// (server, epoch) cell — the estimation cost paid at each epoch close.
	MetricEpochClose = "stream_epoch_close_seconds"
)

// Config configures one streaming deployment for one target DGA family.
type Config struct {
	// Core carries the analysis configuration (family, seed, epoch length,
	// TTL, granularity, estimator override, detection, second opinion).
	// Core.Workers and Core.Stages are ignored: parallelism comes from the
	// ingest shards.
	Core core.Config
	// Shards is the number of ingest shards (0 = one per CPU, capped at 8).
	Shards int
	// ShardBuffer is the per-shard channel capacity (0 = 256). A full
	// channel blocks Observe — backpressure, not unbounded queuing.
	ShardBuffer int
	// ReorderWindow bounds how far out of order timestamps may arrive and
	// still be re-sequenced (0 = 2 s). Records older than
	// maxT − ReorderWindow are dropped and counted.
	ReorderWindow sim.Time
	// MaxReorder bounds the reorder buffer per shard (0 = 4096). Overflow
	// evicts the oldest buffered record, advancing the watermark.
	MaxReorder int
	// Window, when non-zero, pins the analysis window (must be epoch-
	// aligned for the batch↔stream contract). Zero derives the window from
	// the observed data, epoch-aligned, exactly like cmd/botmeter.
	Window sim.Window
	// Vantage, when non-empty, names this engine's observation point in a
	// multi-vantage federation (DESIGN.md §18). It is stamped into exported
	// EngineState.Vantages so MergeStates can refuse to fold two snapshots
	// claiming the same vantage, and a coordinator can track per-vantage
	// freshness. It is deliberately NOT part of the config fingerprint:
	// states from different vantages under one analysis config must remain
	// mergeable, and a vantage rename must not invalidate its checkpoints.
	Vantage string
	// Registry exports stream_* metrics when non-nil.
	Registry *obs.Registry
	// Clock overrides the wall-clock source behind the watermark-lag and
	// epoch-close-latency instruments (tests inject a fake). Nil = time.Now.
	// Virtual record timestamps are never read from it.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.ShardBuffer <= 0 {
		c.ShardBuffer = 256
	}
	if c.ReorderWindow <= 0 {
		c.ReorderWindow = 2 * sim.Second
	}
	if c.MaxReorder <= 0 {
		c.MaxReorder = 4096
	}
	if c.Core.EpochLen <= 0 {
		c.Core.EpochLen = sim.Day
	}
	if c.Core.NegativeTTL <= 0 {
		c.Core.NegativeTTL = 2 * sim.Hour
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Stats is a point-in-time tally of the engine's ingest plane.
type Stats struct {
	// Ingested counts every record handed to Observe and processed.
	Ingested uint64
	// Matched counts records attributed to the target DGA and emitted to
	// estimation (excludes late drops).
	Matched uint64
	// Unmatched counts records outside the family's (detected) pool.
	Unmatched uint64
	// DroppedLate counts matched records older than the watermark.
	DroppedLate uint64
	// ReorderEvictions counts forced emissions from a full reorder buffer.
	ReorderEvictions uint64
	// EpochsClosed counts (server, epoch) cells finalised.
	EpochsClosed uint64
	// Retained is the number of records currently held (reorder buffers +
	// open-epoch micro-batch state).
	Retained int
	// PeakRetained sums the per-shard retention peaks — an upper bound on
	// the true engine-wide peak (shard peaks need not coincide in time).
	// This is the heap gauge behind the bounded-memory assertion of the
	// equivalence test: it must stay well below the trace size.
	PeakRetained int
	// Watermark is the minimum watermark across shards that have seen
	// data; WatermarkValid reports whether any shard has.
	Watermark      sim.Time
	WatermarkValid bool
}

// Engine is the online landscape engine. Observe may be called from any
// number of goroutines; Snapshot is safe at any time; Close is terminal.
type Engine struct {
	cfg       Config
	estCfg    estimators.Config
	estimator estimators.Estimator
	streaming estimators.StreamCapable // non-nil when estimator is incremental
	secondSrc *estimators.Timing       // second-opinion source when enabled
	matchers  *core.EpochMatchers

	shards []*shard

	mu     sync.RWMutex // guards closed against concurrent Observe
	closed bool
	wg     sync.WaitGroup

	m engineMetrics
}

// engineMetrics carries pre-resolved instruments; zero value = disabled
// (obs instruments are nil-safe).
type engineMetrics struct {
	ingested   *obs.Counter
	matched    *obs.Counter
	unmatched  *obs.Counter
	late       *obs.Counter
	evictions  *obs.Counter
	epochs     *obs.Counter
	snapshots  *obs.Counter
	estErrors  *obs.Counter
	rotations  *obs.Counter
	retained   *obs.Gauge
	epochClose *obs.Histogram
}

// New builds and starts the engine: shards spin up immediately and wait
// for records.
func New(cfg Config) (*Engine, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	e.start()
	return e, nil
}

// newEngine builds the engine without starting the shard goroutines —
// shared by New and by checkpoint Restore, which must import shard state
// before any record can race it.
func newEngine(cfg Config) (*Engine, error) {
	if err := cfg.Core.Validate(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	cfg = cfg.withDefaults()
	if cfg.Window.Len() < 0 {
		return nil, fmt.Errorf("stream: negative analysis window")
	}
	if cfg.Window.Len() > 0 {
		if cfg.Window.Start%cfg.Core.EpochLen != 0 || cfg.Window.End%cfg.Core.EpochLen != 0 {
			return nil, fmt.Errorf("stream: window %v…%v is not epoch-aligned (δe=%v)",
				cfg.Window.Start, cfg.Window.End, cfg.Core.EpochLen)
		}
	}
	est := cfg.Core.Estimator
	if est == nil {
		est = estimators.ForModel(cfg.Core.Family)
	}
	e := &Engine{
		cfg:       cfg,
		estimator: est,
		matchers:  core.NewEpochMatchers(cfg.Core.Family, cfg.Core.Seed, cfg.Core.Detection, cfg.Core.Pools),
		estCfg: estimators.Config{
			Spec:        cfg.Core.Family,
			Seed:        cfg.Core.Seed,
			EpochLen:    cfg.Core.EpochLen,
			NegativeTTL: cfg.Core.NegativeTTL,
			Granularity: cfg.Core.Granularity,
			Detection:   cfg.Core.Detection,
			Pools:       cfg.Core.Pools,
		},
	}
	// Normalise the estimator config once: every per-(server, epoch) cell —
	// OpenEpoch, epoch close, provisional snapshot estimates — then takes
	// EstimateEpoch's fast path instead of re-running defaults + validation.
	var err error
	if e.estCfg, err = e.estCfg.Normalized(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if sc, ok := est.(estimators.StreamCapable); ok {
		e.streaming = sc
	}
	if cfg.Core.SecondOpinion {
		e.secondSrc = estimators.NewTiming()
	}
	if reg := cfg.Registry; reg != nil {
		reg.Help(MetricIngested, "Records handed to the streaming engine.")
		reg.Help(MetricMatched, "Records attributed to the target DGA and emitted to estimation.")
		reg.Help(MetricUnmatched, "Records outside the family's detected pool.")
		reg.Help(MetricLate, "Matched records dropped for arriving older than the watermark.")
		reg.Help(MetricEvictions, "Forced emissions from a full reorder buffer.")
		reg.Help(MetricEpochs, "Per-server epochs finalised.")
		reg.Help(MetricRetained, "Records currently retained (reorder buffers + open epochs).")
		reg.Help(MetricWatermark, "Per-shard watermark (virtual ms).")
		reg.Help(MetricSnapshots, "Landscape snapshots served.")
		reg.Help(MetricEstimators, "Estimator failures during epoch close or snapshot.")
		reg.Help(MetricRotations, "Source-file rotations/truncations survived while tailing.")
		reg.Help(MetricWatermarkLag, "Seconds between the wall clock and the shard watermark (live mode).")
		reg.Help(MetricReorderDepth, "Records held in the shard's reorder heap.")
		reg.Help(MetricEpochClose, "Wall seconds spent finalising one (server, epoch) cell.")
		e.m = engineMetrics{
			ingested:   reg.Counter(MetricIngested),
			matched:    reg.Counter(MetricMatched),
			unmatched:  reg.Counter(MetricUnmatched),
			late:       reg.Counter(MetricLate),
			evictions:  reg.Counter(MetricEvictions),
			epochs:     reg.Counter(MetricEpochs),
			snapshots:  reg.Counter(MetricSnapshots),
			estErrors:  reg.Counter(MetricEstimators),
			rotations:  reg.Counter(MetricRotations),
			retained:   reg.Gauge(MetricRetained),
			epochClose: reg.Histogram(MetricEpochClose, obs.LatencyBuckets),
		}
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = newShard(e, i)
	}
	return e, nil
}

// start spins up the shard goroutines.
func (e *Engine) start() {
	for _, s := range e.shards {
		s := s
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			s.loop()
		}()
	}
}

// EstimatorName reports the selected analytical model.
func (e *Engine) EstimatorName() string { return e.estimator.Name() }

// Observe routes one observed record to its server's shard. It blocks when
// the shard's channel is full (backpressure) and fails after Close.
func (e *Engine) Observe(rec trace.ObservedRecord) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return fmt.Errorf("stream: engine closed")
	}
	e.shards[shardIndex(rec.Server, len(e.shards))].ch <- rec
	return nil
}

// shardIndex hashes a server name onto a shard (FNV-1a).
func shardIndex(server string, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(server); i++ {
		h ^= uint32(server[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}

// Stats merges the per-shard tallies.
func (e *Engine) Stats() Stats {
	var out Stats
	out.Watermark = math.MaxInt64
	for _, s := range e.shards {
		s.mu.Lock()
		out.Ingested += s.stats.Ingested
		out.Matched += s.stats.Matched
		out.Unmatched += s.stats.Unmatched
		out.DroppedLate += s.stats.DroppedLate
		out.ReorderEvictions += s.stats.ReorderEvictions
		out.EpochsClosed += s.stats.EpochsClosed
		out.Retained += s.retained
		out.PeakRetained += s.peakRetained
		if s.hasData && s.watermark < out.Watermark {
			out.Watermark = s.watermark
			out.WatermarkValid = true
		}
		s.mu.Unlock()
	}
	if !out.WatermarkValid {
		out.Watermark = math.MinInt64
	}
	return out
}

// ShardStat is one ingest shard's point-in-time state — the per-shard
// view behind the stream_watermark_lag_seconds / stream_reorder_depth
// gauges and the Observatory's freshness sampling.
type ShardStat struct {
	// Shard is the shard index (the "shard" metric label).
	Shard int
	// Watermark is the shard's low-water mark; WatermarkValid reports
	// whether the shard has emitted one (i.e. has seen matched data).
	Watermark      sim.Time
	WatermarkValid bool
	// LagSeconds is the wall-clock freshness of the watermark: now −
	// watermark in seconds, clamped at 0, and 0 while the watermark is
	// invalid. Meaningful in live mode, where record timestamps are Unix ms.
	LagSeconds float64
	// ReorderDepth is the number of records in the reorder heap.
	ReorderDepth int
	// Retained is the shard's current retained-record count (reorder heap +
	// open-epoch micro-batch state).
	Retained int
	// Ingested/Matched/DroppedLate/EpochsClosed are the shard's share of the
	// engine tallies.
	Ingested     uint64
	Matched      uint64
	DroppedLate  uint64
	EpochsClosed uint64
}

// ShardStats reports every shard's state at the engine clock's current
// time, in shard order.
func (e *Engine) ShardStats() []ShardStat {
	now := e.cfg.Clock()
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		s.mu.Lock()
		out[i] = ShardStat{
			Shard:          i,
			Watermark:      s.watermark,
			WatermarkValid: s.watermark != math.MinInt64,
			LagSeconds:     s.lagSecondsLocked(now),
			ReorderDepth:   s.buf.len(),
			Retained:       s.retained,
			Ingested:       s.stats.Ingested,
			Matched:        s.stats.Matched,
			DroppedLate:    s.stats.DroppedLate,
			EpochsClosed:   s.stats.EpochsClosed,
		}
		s.mu.Unlock()
	}
	return out
}

// WatermarkLagSeconds reports the engine's worst-case freshness: the
// largest watermark lag across shards that have emitted a watermark (0
// when none has). This is the signal the freshness SLO rule watches — a
// single stalled shard degrades the whole engine, because the landscape
// is only as fresh as its stalest shard.
func (e *Engine) WatermarkLagSeconds() float64 {
	now := e.cfg.Clock()
	var worst float64
	for _, s := range e.shards {
		s.mu.Lock()
		lag := s.lagSecondsLocked(now)
		s.mu.Unlock()
		if lag > worst {
			worst = lag
		}
	}
	return worst
}

// Snapshot assembles the current landscape: closed epochs contribute their
// finalised estimates, open epochs a provisional estimate over what has
// been observed so far. The returned landscape is an independent copy.
func (e *Engine) Snapshot() (*core.Landscape, error) {
	e.m.snapshots.Inc()
	first, last, ok := e.epochSpan()
	land := &core.Landscape{
		Family:    e.cfg.Core.Family.Name,
		Model:     e.cfg.Core.Family.ModelName(),
		Estimator: e.estimator.Name(),
	}
	if !ok {
		return land, nil
	}
	land.Window = sim.Window{
		Start: sim.Time(first) * e.cfg.Core.EpochLen,
		End:   sim.Time(last+1) * e.cfg.Core.EpochLen,
	}
	var firstErr error
	for _, s := range e.shards {
		s.mu.Lock()
		servers := make([]string, 0, len(s.servers))
		for name := range s.servers {
			servers = append(servers, name)
		}
		sort.Strings(servers)
		for _, name := range servers {
			est, err := s.estimateServer(name, s.servers[name], first, last)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			land.Servers = append(land.Servers, est)
			land.Total += est.Population
			land.MatchedLookups += est.MatchedLookups
		}
		s.mu.Unlock()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(land.Servers, func(i, j int) bool {
		if land.Servers[i].Population != land.Servers[j].Population {
			return land.Servers[i].Population > land.Servers[j].Population
		}
		return land.Servers[i].Server < land.Servers[j].Server
	})
	return land, nil
}

// LandscapeJSON renders the current snapshot with core.Landscape's stable
// JSON schema — the payload behind the obs mux's /landscape endpoint. The
// snapshot is annotated with the engine's ingest tallies ("ingest" block)
// so operators can see late drops and reorder evictions — silent data loss
// — next to the chart they degraded.
func (e *Engine) LandscapeJSON() ([]byte, error) {
	land, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	stats := e.Stats()
	land.Ingest = &core.IngestStats{
		Ingested:         stats.Ingested,
		Matched:          stats.Matched,
		DroppedLate:      stats.DroppedLate,
		ReorderEvictions: stats.ReorderEvictions,
	}
	var buf bytes.Buffer
	if err := land.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// epochSpan resolves the analysis window to an inclusive epoch range.
func (e *Engine) epochSpan() (first, last int, ok bool) {
	if e.cfg.Window.Len() > 0 {
		return int(e.cfg.Window.Start / e.cfg.Core.EpochLen),
			int((e.cfg.Window.End - 1) / e.cfg.Core.EpochLen), true
	}
	minT, maxT := sim.Time(math.MaxInt64), sim.Time(math.MinInt64)
	for _, s := range e.shards {
		s.mu.Lock()
		if s.hasData {
			if s.minT < minT {
				minT = s.minT
			}
			if s.maxT > maxT {
				maxT = s.maxT
			}
		}
		s.mu.Unlock()
	}
	if minT > maxT {
		return 0, 0, false
	}
	return int(minT / e.cfg.Core.EpochLen), int(maxT / e.cfg.Core.EpochLen), true
}

// Close drains the shards — every buffered record is emitted in timestamp
// order, every open epoch is finalised — and returns the final landscape.
// Observe fails after Close; Close is idempotent on failure but must be
// called once.
func (e *Engine) Close() (*core.Landscape, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("stream: engine already closed")
	}
	e.closed = true
	e.mu.Unlock()
	for _, s := range e.shards {
		close(s.ch)
	}
	e.wg.Wait()
	for _, s := range e.shards {
		s.mu.Lock()
		s.flushLocked()
		s.mu.Unlock()
	}
	if err := e.firstShardErr(); err != nil {
		return nil, err
	}
	return e.Snapshot()
}

// Kill abandons the engine without flushing: shard goroutines stop where
// they are, buffered records and open epochs are discarded, no landscape is
// produced — the in-process analogue of `kill -9` for crash tests. The
// engine is unusable afterwards; recovery goes through Restore.
func (e *Engine) Kill() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	for _, s := range e.shards {
		close(s.ch)
	}
	e.wg.Wait()
}

// firstShardErr returns the first estimator error recorded by any shard
// (lowest shard index — deterministic).
func (e *Engine) firstShardErr() error {
	for _, s := range e.shards {
		s.mu.Lock()
		err := s.err
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
