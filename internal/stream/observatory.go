package stream

// The Landscape Observatory (DESIGN.md §16) watches a running Engine for
// the failure modes that silently corrupt a landscape rather than crash
// it: a stalled shard whose watermark stops advancing (stale estimates
// presented as current), lossy ingest (late drops and reorder evictions
// biasing populations down), estimator drift (the MT second opinion
// diverging from the primary model), and a checkpointer falling behind its
// recovery-point objective.
//
// It samples two planes on independent cadences:
//
//   - the ingest plane (Interval, default 1 s): per-shard watermark lag
//     and reorder depth, retained records, ingest rate, lossy-ingest
//     rate, checkpoint age — all recorded into the series store;
//   - the landscape plane (HistoryInterval, default 10 s): a full
//     Snapshot reduced to total population, server count, delta vs the
//     previous sample and the estimator-disagreement ratio, recorded
//     into the store and kept as a bounded history ring behind
//     /landscape/history.
//
// Each sample also feeds the threshold rules (freshness, loss,
// disagreement); rule transitions become structured log events, and the
// aggregate state backs /healthz via Health.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"botmeter/internal/obs"
	"botmeter/internal/obs/rules"
	"botmeter/internal/obs/series"
)

// Observatory metric/series families and rule names.
const (
	MetricRecordsPerSecond = "stream_records_per_second"
	MetricLossRate         = "stream_loss_rate"
	MetricLandscapeTotal   = "landscape_total"
	MetricLandscapeServers = "landscape_servers"
	MetricLandscapeDelta   = "landscape_total_delta"
	MetricEstimateTotal    = "landscape_estimate_total"
	MetricDisagreement     = "landscape_disagreement"

	// RuleFreshness fires when the worst shard watermark lag exceeds the
	// freshness SLO; RuleLoss when the lossy-ingest ratio exceeds its bound;
	// RuleDisagreement when the estimators' relative spread does.
	RuleFreshness    = "freshness"
	RuleLoss         = "loss"
	RuleDisagreement = "disagreement"
)

// ObservatoryConfig wires an Observatory to a running engine.
type ObservatoryConfig struct {
	// Engine is the engine under observation (required).
	Engine *Engine
	// Checkpoints, when non-nil, contributes the checkpoint-age signal.
	Checkpoints *Checkpointer
	// Store receives the sampled series (nil = a fresh default store).
	Store *series.Store
	// Registry receives the landscape gauges (ingest-plane gauges are
	// already exported by the engine); nil disables them.
	Registry *obs.Registry
	// Logger receives rule-transition events; nil silences them.
	Logger *obs.Logger
	// Interval is the ingest-plane sampling cadence (0 = 1 s).
	Interval time.Duration
	// HistoryInterval is the landscape sampling cadence (0 = 10 s).
	HistoryInterval time.Duration
	// HistoryPoints bounds the /landscape/history ring (0 = 360).
	HistoryPoints int
	// FreshnessSLO arms the freshness rule: degraded when the worst shard
	// watermark lag exceeds it. 0 disables the rule.
	FreshnessSLO time.Duration
	// LossRateSLO arms the loss rule: degraded when the lossy-ingest ratio
	// (late drops + reorder evictions over ingested, per interval) exceeds
	// it. 0 disables the rule.
	LossRateSLO float64
	// DisagreementSLO arms the drift rule: degraded when the estimators'
	// relative spread exceeds it. 0 disables the rule.
	DisagreementSLO float64
	// Clock overrides the sampling clock (tests). Nil = time.Now.
	Clock func() time.Time
}

func (c ObservatoryConfig) withDefaults() ObservatoryConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.HistoryInterval <= 0 {
		c.HistoryInterval = 10 * time.Second
	}
	if c.HistoryPoints <= 0 {
		c.HistoryPoints = 360
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// HistoryPoint is one landscape sample in the /landscape/history ring.
type HistoryPoint struct {
	// T is the sample time (Unix ms).
	T int64 `json:"t"`
	// Total is the landscape's total estimated population; Servers the
	// number of forwarding servers contributing to it.
	Total   float64 `json:"total"`
	Servers int     `json:"servers"`
	// Delta is Total minus the previous sample's Total (0 on the first).
	Delta float64 `json:"delta"`
	// Estimates maps estimator name → total population: the primary model
	// plus the MT second opinion when enabled.
	Estimates map[string]float64 `json:"estimates"`
	// Disagreement is the relative spread of the estimates: (max − min) /
	// mean, 0 with fewer than two opinions. The drift-alarm signal.
	Disagreement float64 `json:"disagreement"`
}

// historyJSON is the /landscape/history response schema.
type historyJSON struct {
	IntervalMS int64          `json:"interval_ms"`
	Family     string         `json:"family"`
	Estimator  string         `json:"estimator"`
	Points     []HistoryPoint `json:"points"`
}

// Observatory samples one engine into a series store, a history ring and
// a rule engine. Start/Stop run the sampling loop; SampleIngest and
// SampleLandscape are also callable directly (tests, one-shot tools).
type Observatory struct {
	cfg   ObservatoryConfig
	rules *rules.Engine

	mu      sync.Mutex
	history []HistoryPoint
	// prev* feed the ingest-plane rates.
	prevAt       time.Time
	prevIngested uint64
	prevLost     uint64
	prevTotal    float64
	hasPrevTotal bool

	lsTotal    *obs.Gauge
	lsServers  *obs.Gauge
	lsDelta    *obs.Gauge
	lsDisagree *obs.Gauge
	rps        *obs.Gauge
	lossRate   *obs.Gauge

	done chan struct{}
	wg   sync.WaitGroup
}

// NewObservatory builds an observatory over cfg.Engine. The rule set is
// derived from the SLO fields: each non-zero SLO installs its rule with a
// clear level at half the threshold (hysteresis) so a signal oscillating
// at the SLO cannot flap /healthz.
func NewObservatory(cfg ObservatoryConfig) (*Observatory, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("stream: observatory needs an engine")
	}
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		cfg.Store = series.NewStore(series.Config{Clock: cfg.Clock})
	}
	o := &Observatory{cfg: cfg, rules: rules.New(), done: make(chan struct{})}
	if cfg.FreshnessSLO > 0 {
		sec := cfg.FreshnessSLO.Seconds()
		if err := o.rules.Add(rules.Rule{Name: RuleFreshness, Threshold: sec, Clear: sec / 2, Unit: "s"}); err != nil {
			return nil, err
		}
	}
	if cfg.LossRateSLO > 0 {
		if err := o.rules.Add(rules.Rule{Name: RuleLoss, Threshold: cfg.LossRateSLO, Clear: cfg.LossRateSLO / 2}); err != nil {
			return nil, err
		}
	}
	if cfg.DisagreementSLO > 0 {
		if err := o.rules.Add(rules.Rule{Name: RuleDisagreement, Threshold: cfg.DisagreementSLO, Clear: cfg.DisagreementSLO / 2}); err != nil {
			return nil, err
		}
	}
	o.rules.OnTransition(func(tr rules.Transition) {
		log := cfg.Logger.Warn
		if tr.To == rules.OK {
			log = cfg.Logger.Info
		}
		log("slo transition", "rule", tr.Rule, "from", tr.From.String(), "to", tr.To.String(), "value", tr.Value)
	})
	if reg := cfg.Registry; reg != nil {
		reg.Help(MetricLandscapeTotal, "Total estimated population in the last landscape sample.")
		reg.Help(MetricLandscapeServers, "Forwarding servers in the last landscape sample.")
		reg.Help(MetricLandscapeDelta, "Population change since the previous landscape sample.")
		reg.Help(MetricDisagreement, "Relative spread (max-min)/mean of per-estimator population totals.")
		reg.Help(MetricRecordsPerSecond, "Ingest rate over the last observatory interval.")
		reg.Help(MetricLossRate, "Lossy-ingest ratio (late drops + evictions over ingested) over the last interval.")
		o.lsTotal = reg.Gauge(MetricLandscapeTotal)
		o.lsServers = reg.Gauge(MetricLandscapeServers)
		o.lsDelta = reg.Gauge(MetricLandscapeDelta)
		o.lsDisagree = reg.Gauge(MetricDisagreement)
		o.rps = reg.Gauge(MetricRecordsPerSecond)
		o.lossRate = reg.Gauge(MetricLossRate)
	}
	return o, nil
}

// Store exposes the backing series store (the /debug/series handler).
func (o *Observatory) Store() *series.Store { return o.cfg.Store }

// Rules exposes the rule engine (tests, status lines).
func (o *Observatory) Rules() *rules.Engine { return o.rules }

// Start runs the sampling loop until Stop.
func (o *Observatory) Start() {
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		ingest := time.NewTicker(o.cfg.Interval)
		landscape := time.NewTicker(o.cfg.HistoryInterval)
		defer ingest.Stop()
		defer landscape.Stop()
		for {
			select {
			case <-o.done:
				return
			case <-ingest.C:
				o.SampleIngest()
			case <-landscape.C:
				o.SampleLandscape()
			}
		}
	}()
}

// Stop halts the sampling loop. Idempotent is NOT guaranteed; call once.
func (o *Observatory) Stop() {
	close(o.done)
	o.wg.Wait()
}

// Health aggregates the firing rules into the /healthz error (nil when
// every rule is clear).
func (o *Observatory) Health() error { return o.rules.Err() }

// SampleIngest takes one ingest-plane sample: per-shard lag and depth,
// engine tallies, rates, checkpoint age — recorded into the store — then
// evaluates the freshness and loss rules.
func (o *Observatory) SampleIngest() {
	now := o.cfg.Clock()
	st := o.cfg.Store
	shards := o.cfg.Engine.ShardStats()
	var worstLag float64
	for _, ss := range shards {
		label := strconv.Itoa(ss.Shard)
		st.Series(series.Name(MetricWatermarkLag, "shard", label)).RecordAt(now, ss.LagSeconds)
		st.Series(series.Name(MetricReorderDepth, "shard", label)).RecordAt(now, float64(ss.ReorderDepth))
		if ss.LagSeconds > worstLag {
			worstLag = ss.LagSeconds
		}
	}
	stats := o.cfg.Engine.Stats()
	st.Series(MetricRetained).RecordAt(now, float64(stats.Retained))
	lost := stats.DroppedLate + stats.ReorderEvictions

	o.mu.Lock()
	var rate, loss float64
	if !o.prevAt.IsZero() {
		dt := now.Sub(o.prevAt).Seconds()
		dIn := stats.Ingested - o.prevIngested
		if dt > 0 {
			rate = float64(dIn) / dt
		}
		if dIn > 0 {
			loss = float64(lost-o.prevLost) / float64(dIn)
		}
	}
	o.prevAt = now
	o.prevIngested = stats.Ingested
	o.prevLost = lost
	o.mu.Unlock()

	st.Series(MetricRecordsPerSecond).RecordAt(now, rate)
	st.Series(MetricLossRate).RecordAt(now, loss)
	o.rps.Set(rate)
	o.lossRate.Set(loss)
	if ck := o.cfg.Checkpoints; ck != nil {
		st.Series(MetricCheckpointAgeSeconds).RecordAt(now, ck.AgeSeconds())
	}
	o.rules.Eval(RuleFreshness, worstLag)
	o.rules.Eval(RuleLoss, loss)
}

// SampleLandscape takes one landscape-plane sample: a full Snapshot
// reduced to totals, delta and estimator disagreement, recorded into the
// store and the history ring, then evaluates the disagreement rule. A
// snapshot error is logged and skipped — observation must not kill the
// observed.
func (o *Observatory) SampleLandscape() {
	now := o.cfg.Clock()
	land, err := o.cfg.Engine.Snapshot()
	if err != nil {
		o.cfg.Logger.Error("landscape sample failed", "err", err)
		return
	}
	estimates := map[string]float64{land.Estimator: land.Total}
	var mtTotal float64
	var haveMT bool
	for _, sv := range land.Servers {
		if sv.SecondOpinion != 0 {
			haveMT = true
		}
		mtTotal += sv.SecondOpinion
	}
	if haveMT && land.Estimator != "MT" {
		estimates["MT"] = mtTotal
	}
	disagreement := relativeSpread(estimates)

	st := o.cfg.Store
	st.Series(MetricLandscapeTotal).RecordAt(now, land.Total)
	st.Series(MetricLandscapeServers).RecordAt(now, float64(len(land.Servers)))
	st.Series(MetricDisagreement).RecordAt(now, disagreement)
	for name, total := range estimates {
		st.Series(series.Name(MetricEstimateTotal, "estimator", name)).RecordAt(now, total)
	}

	o.mu.Lock()
	var delta float64
	if o.hasPrevTotal {
		delta = land.Total - o.prevTotal
	}
	o.prevTotal = land.Total
	o.hasPrevTotal = true
	pt := HistoryPoint{
		T:            now.UnixMilli(),
		Total:        land.Total,
		Servers:      len(land.Servers),
		Delta:        delta,
		Estimates:    estimates,
		Disagreement: disagreement,
	}
	o.history = append(o.history, pt)
	if len(o.history) > o.cfg.HistoryPoints {
		o.history = o.history[len(o.history)-o.cfg.HistoryPoints:]
	}
	o.mu.Unlock()

	st.Series(MetricLandscapeDelta).RecordAt(now, delta)
	o.lsTotal.Set(land.Total)
	o.lsServers.Set(float64(len(land.Servers)))
	o.lsDelta.Set(delta)
	o.lsDisagree.Set(disagreement)
	o.rules.Eval(RuleDisagreement, disagreement)
}

// relativeSpread is the disagreement metric: (max − min) / mean over the
// estimator totals, 0 with fewer than two opinions or a non-positive
// mean. Dimensionless, so one threshold works across families of very
// different population scales.
func relativeSpread(estimates map[string]float64) float64 {
	if len(estimates) < 2 {
		return 0
	}
	var min, max, sum float64
	first := true
	for _, v := range estimates {
		if first {
			min, max = v, v
			first = false
		} else {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		sum += v
	}
	mean := sum / float64(len(estimates))
	if mean <= 0 {
		return 0
	}
	return (max - min) / mean
}

// HistoryJSON renders the history ring — the /landscape/history payload.
func (o *Observatory) HistoryJSON() ([]byte, error) {
	o.mu.Lock()
	pts := make([]HistoryPoint, len(o.history))
	copy(pts, o.history)
	o.mu.Unlock()
	return json.MarshalIndent(historyJSON{
		IntervalMS: o.cfg.HistoryInterval.Milliseconds(),
		Family:     o.cfg.Engine.cfg.Core.Family.Name,
		Estimator:  o.cfg.Engine.EstimatorName(),
		Points:     pts,
	}, "", "  ")
}

// StatusLine renders a one-line terminal status for botmeter -follow
// -watch: watermark lag, ingest rate and the rule states.
func (o *Observatory) StatusLine() string {
	stats := o.cfg.Engine.Stats()
	lag := o.cfg.Engine.WatermarkLagSeconds()
	o.mu.Lock()
	var rate float64
	if st := o.cfg.Store.Series(MetricRecordsPerSecond); st != nil {
		if pt, ok := st.Last(); ok {
			rate = pt.V
		}
	}
	o.mu.Unlock()
	drift := "n/a"
	if o.rules.Len() > 0 {
		drift = "ok"
		if firing := o.rules.Firing(); len(firing) > 0 {
			parts := make([]string, len(firing))
			for i, v := range firing {
				parts[i] = v.Rule
			}
			drift = "DEGRADED(" + joinComma(parts) + ")"
		}
	}
	return fmt.Sprintf("lag %.1fs | %.0f rec/s | %d matched | %d epochs | %s",
		lag, rate, stats.Matched, stats.EpochsClosed, drift)
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}
