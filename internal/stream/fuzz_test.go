package stream_test

import (
	"bytes"
	"testing"

	"botmeter/internal/core"
	"botmeter/internal/stream"
)

// FuzzDecodeEngineState hardens the federation's wire boundary: a
// landscape-server decodes checkpoint frames pulled from remote vantage
// daemons, so DecodeCheckpoint must never panic on hostile bytes, and
// any frame it accepts must survive the coordinator's merge→encode path
// and re-merge to a byte-stable state.
func FuzzDecodeEngineState(f *testing.F) {
	// Seed the corpus with real exported states — one per differential
	// case so every estimator family's cell shape is represented.
	for _, tc := range diffCases() {
		trc := synthTrace(f, tc.spec, 0x5EED, 6, 2, tc.activations)
		cfg := stream.Config{
			Core:    core.Config{Family: tc.spec, Seed: 0x5EED, EpochLen: testEpochLen, SecondOpinion: tc.secondOpinion},
			Shards:  2,
			Vantage: "fuzz-seed",
		}
		if tc.estimator != nil {
			cfg.Core.Estimator = tc.estimator()
		}
		eng, err := stream.New(cfg)
		if err != nil {
			f.Fatalf("stream.New(%s): %v", tc.name, err)
		}
		for _, rec := range trc {
			if err := eng.Observe(rec); err != nil {
				f.Fatalf("Observe(%s): %v", tc.name, err)
			}
		}
		st, err := eng.ExportState()
		if err != nil {
			f.Fatalf("ExportState(%s): %v", tc.name, err)
		}
		eng.Kill()
		frame, err := stream.EncodeCheckpoint(st)
		if err != nil {
			f.Fatalf("EncodeCheckpoint(%s): %v", tc.name, err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte("BMCP"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := stream.DecodeCheckpoint(data)
		if err != nil {
			return
		}
		// An accepted frame feeds the coordinator's merge path. Mutated
		// frames that clear the checksum (corpus mutations of real seeds
		// re-frame the payload) may still be semantically invalid — merge
		// is allowed to reject them, never to panic.
		merged, err := stream.MergeStates(st)
		if err != nil {
			return
		}
		frame, err := stream.EncodeCheckpoint(merged)
		if err != nil {
			t.Fatalf("merged state failed to encode: %v", err)
		}
		// Merge output is canonical: decode→merge must be a fixed point.
		again, err := stream.DecodeCheckpoint(frame)
		if err != nil {
			t.Fatalf("re-decode of encoded merge output: %v", err)
		}
		stable, err := stream.MergeStates(again)
		if err != nil {
			t.Fatalf("re-merge of canonical state: %v", err)
		}
		frame2, err := stream.EncodeCheckpoint(stable)
		if err != nil {
			t.Fatalf("re-encode of canonical state: %v", err)
		}
		if !bytes.Equal(frame, frame2) {
			t.Fatal("decode→merge→encode is not byte-stable on its own output")
		}
	})
}
