package stream_test

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"testing"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/estimators"
	"botmeter/internal/faults"
	"botmeter/internal/sim"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

// The N-way merge differential (DESIGN.md §18): partition a trace across N
// vantage engines by forwarding server, merge their exported states, and
// the coordinator's landscape must be byte-identical to a single engine
// that saw every record — for every estimator family, vantage count and
// shard count, under -race.

// vantageOf assigns a forwarding server to one of n vantages (FNV-1a) —
// a server-disjoint partition, the paper's deployment shape where each
// border server forwards to exactly one collection point.
func vantageOf(server string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(server))
	return int(h.Sum32() % uint32(n))
}

// partitionByServer splits delivered into n server-disjoint subsequences,
// each preserving the original delivery order.
func partitionByServer(delivered trace.Observed, n int) []trace.Observed {
	parts := make([]trace.Observed, n)
	for _, rec := range delivered {
		i := vantageOf(rec.Server, n)
		parts[i] = append(parts[i], rec)
	}
	return parts
}

// runVantage feeds one vantage's records into its own engine and exports
// its state without closing epochs — the live-snapshot path a federation
// pulls. The engine is killed afterwards; only the state survives.
func runVantage(tb testing.TB, cfg stream.Config, part trace.Observed) (*stream.EngineState, stream.Stats) {
	tb.Helper()
	eng, err := stream.New(cfg)
	if err != nil {
		tb.Fatalf("stream.New(%s): %v", cfg.Vantage, err)
	}
	defer eng.Kill()
	for _, rec := range part {
		if err := eng.Observe(rec); err != nil {
			tb.Fatalf("Observe(%s): %v", cfg.Vantage, err)
		}
	}
	st, err := eng.ExportState()
	if err != nil {
		tb.Fatalf("ExportState(%s): %v", cfg.Vantage, err)
	}
	return st, eng.Stats()
}

// quiescedLandscape restores a merged state into a coordinator engine,
// quiesces it (every buffered record emitted, watermarks caught up) and
// returns both the typed snapshot and the serialized /landscape payload.
func quiescedLandscape(tb testing.TB, cfg stream.Config, st *stream.EngineState) (*core.Landscape, []byte, stream.Stats) {
	tb.Helper()
	cfg.Shards = 0 // adopt the merged state's shard count
	eng, err := stream.Restore(cfg, st)
	if err != nil {
		tb.Fatalf("Restore(merged): %v", err)
	}
	defer eng.Kill()
	if err := eng.Quiesce(); err != nil {
		tb.Fatalf("Quiesce: %v", err)
	}
	land, err := eng.Snapshot()
	if err != nil {
		tb.Fatalf("Snapshot: %v", err)
	}
	payload, err := eng.LandscapeJSON()
	if err != nil {
		tb.Fatalf("LandscapeJSON: %v", err)
	}
	return land, payload, eng.Stats()
}

// TestNWayMergeDifferential: for vantage counts {1, 2, 5} × shards {1, 4}
// × every estimator family, the merged snapshot must match the batch
// landscape and be byte-identical — /landscape payload included, ingest
// block and all — to a single engine that ingested the union, treated
// through the identical export-free Quiesce path. Vantage engines are fed
// concurrently, so -race covers the federation's real parallelism.
func TestNWayMergeDifferential(t *testing.T) {
	const (
		seed          = uint64(0x9E7)
		servers       = 20
		epochs        = 3
		reorderWindow = 5 * sim.Second
	)
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			base := synthTrace(t, tc.spec, seed, servers, epochs, tc.activations)
			delivered := chunkShuffle(base, reorderWindow, sim.NewRNG(seed+1))
			for _, vantages := range []int{1, 2, 5} {
				for _, shards := range []int{1, 4} {
					vantages, shards := vantages, shards
					t.Run(fmt.Sprintf("vantages=%d/shards=%d", vantages, shards), func(t *testing.T) {
						coreCfg := core.Config{
							Family:        tc.spec,
							Seed:          seed,
							EpochLen:      testEpochLen,
							SecondOpinion: tc.secondOpinion,
						}
						if tc.estimator != nil {
							coreCfg.Estimator = tc.estimator()
						}
						mkCfg := func(vantage string) stream.Config {
							cfg := stream.Config{
								Core:          coreCfg,
								Shards:        shards,
								ReorderWindow: reorderWindow,
								Vantage:       vantage,
							}
							if tc.estimator != nil {
								cfg.Core.Estimator = tc.estimator()
							}
							return cfg
						}

						// N vantage engines ingest their server-disjoint
						// partitions concurrently.
						parts := partitionByServer(delivered, vantages)
						states := make([]*stream.EngineState, vantages)
						stats := make([]stream.Stats, vantages)
						var wg sync.WaitGroup
						for v := 0; v < vantages; v++ {
							v := v
							wg.Add(1)
							go func() {
								defer wg.Done()
								states[v], stats[v] = runVantage(t, mkCfg(fmt.Sprintf("vantage-%d", v)), parts[v])
							}()
						}
						wg.Wait()
						if t.Failed() {
							t.FailNow()
						}

						merged, err := stream.MergeStates(states...)
						if err != nil {
							t.Fatalf("MergeStates: %v", err)
						}
						if got := len(merged.Vantages); got != vantages {
							t.Fatalf("merged state names %d vantages, want %d", got, vantages)
						}
						mergedLand, mergedJSON, mergedStats := quiescedLandscape(t, mkCfg(""), merged)

						// Reference: one engine over the union, same shard
						// count, same Quiesce treatment.
						ref, err := stream.New(mkCfg(""))
						if err != nil {
							t.Fatalf("stream.New(reference): %v", err)
						}
						for _, rec := range delivered {
							if err := ref.Observe(rec); err != nil {
								t.Fatalf("Observe(reference): %v", err)
							}
						}
						if err := ref.Quiesce(); err != nil {
							t.Fatalf("Quiesce(reference): %v", err)
						}
						refJSON, err := ref.LandscapeJSON()
						if err != nil {
							t.Fatalf("LandscapeJSON(reference): %v", err)
						}
						refStats := ref.Stats()
						ref.Kill()

						if !bytes.Equal(mergedJSON, refJSON) {
							t.Fatalf("merged /landscape differs from single-engine:\nsingle %s\nmerged %s", refJSON, mergedJSON)
						}

						// The merged snapshot must also match the batch
						// reference over the delivered records.
						requireEqualLandscapes(t, runBatch(t, coreCfg, delivered), mergedLand)

						// Ingest tallies must sum exactly across vantages
						// and agree with the single engine (the partition
						// was loss-free by construction).
						var sum stream.Stats
						for _, s := range stats {
							sum.Ingested += s.Ingested
							sum.Matched += s.Matched
							sum.Unmatched += s.Unmatched
							sum.DroppedLate += s.DroppedLate
							sum.ReorderEvictions += s.ReorderEvictions
						}
						if sum.DroppedLate != 0 || sum.ReorderEvictions != 0 {
							t.Fatalf("vantage delivery was supposed to be loss-free: %d late, %d evicted",
								sum.DroppedLate, sum.ReorderEvictions)
						}
						if sum.Ingested != uint64(len(delivered)) {
							t.Fatalf("vantages ingested %d of %d records", sum.Ingested, len(delivered))
						}
						for _, cmp := range []struct {
							name       string
							merged, at uint64
						}{
							{"ingested", mergedStats.Ingested, sum.Ingested},
							{"matched", mergedStats.Matched, sum.Matched},
							{"unmatched", mergedStats.Unmatched, sum.Unmatched},
							{"dropped_late", mergedStats.DroppedLate, sum.DroppedLate},
							{"reorder_evictions", mergedStats.ReorderEvictions, sum.ReorderEvictions},
						} {
							if cmp.merged != cmp.at {
								t.Fatalf("merged %s = %d, vantage sum %d", cmp.name, cmp.merged, cmp.at)
							}
							_ = refStats
						}
						if mergedStats.Matched != refStats.Matched || mergedStats.Unmatched != refStats.Unmatched {
							t.Fatalf("merged match split (%d/%d) differs from single engine (%d/%d)",
								mergedStats.Matched, mergedStats.Unmatched, refStats.Matched, refStats.Unmatched)
						}

						// Canonical idempotence: re-merging the merged state
						// must be byte-identical (the Merger re-merge path).
						again, err := stream.MergeStates(merged)
						if err != nil {
							t.Fatalf("MergeStates(merged): %v", err)
						}
						ab, err := stream.EncodeCheckpoint(merged)
						if err != nil {
							t.Fatalf("EncodeCheckpoint(merged): %v", err)
						}
						bb, err := stream.EncodeCheckpoint(again)
						if err != nil {
							t.Fatalf("EncodeCheckpoint(again): %v", err)
						}
						if !bytes.Equal(ab, bb) {
							t.Fatal("MergeStates is not idempotent on its own output")
						}
					})
				}
			}
		})
	}
}

// TestNWayMergeKillResume: one vantage dies mid-checkpoint-write
// (faults.Crasher at the same injection point the single-engine crash
// tests use), recovers from its newest good checkpoint, replays its own
// partition — and the subsequent N-way merge must still be byte-identical
// to the uninterrupted single engine.
func TestNWayMergeKillResume(t *testing.T) {
	const (
		seed            = uint64(0xFEED)
		reorderWindow   = 5 * sim.Second
		checkpointEvery = 97
		vantages        = 2
	)
	tc := diffCases()[0] // MP + second opinion: records AND both MT streams
	delivered := chunkShuffle(synthTrace(t, tc.spec, seed, 12, 3, tc.activations), reorderWindow, sim.NewRNG(seed))
	mkCfg := func(vantage string) stream.Config {
		return stream.Config{
			Core:          core.Config{Family: tc.spec, Seed: seed, EpochLen: testEpochLen, SecondOpinion: tc.secondOpinion},
			Shards:        2,
			ReorderWindow: reorderWindow,
			Vantage:       vantage,
		}
	}

	// Reference: one engine over the union, quiesced like the coordinator.
	ref, err := stream.New(mkCfg(""))
	if err != nil {
		t.Fatalf("stream.New(reference): %v", err)
	}
	for _, rec := range delivered {
		if err := ref.Observe(rec); err != nil {
			t.Fatalf("Observe(reference): %v", err)
		}
	}
	if err := ref.Quiesce(); err != nil {
		t.Fatalf("Quiesce(reference): %v", err)
	}
	refJSON, err := ref.LandscapeJSON()
	if err != nil {
		t.Fatalf("LandscapeJSON(reference): %v", err)
	}
	ref.Kill()

	parts := partitionByServer(delivered, vantages)

	// Vantage 0 runs clean.
	cleanState, _ := runVantage(t, mkCfg("vantage-0"), parts[0])

	// Vantage 1 crashes while WRITING a checkpoint, recovers from the
	// newest good generation, and replays the rest of its partition.
	dir := t.TempDir()
	crash := faults.NewCrasher(faults.CrashSpec{Point: "checkpoint-write", PointNth: 2})
	type crashed struct{ reason string }
	crash.Die = func(reason string) { panic(crashed{reason}) }
	cfg1 := mkCfg("vantage-1")
	eng, err := stream.New(cfg1)
	if err != nil {
		t.Fatalf("stream.New(vantage-1): %v", err)
	}
	ck, err := stream.NewCheckpointer(stream.CheckpointConfig{Dir: dir, EveryRecords: checkpointEvery, Crash: crash})
	if err != nil {
		t.Fatalf("NewCheckpointer: %v", err)
	}
	died := func() (died bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashed); !ok {
					panic(r)
				}
				died = true
			}
		}()
		for i, rec := range parts[1] {
			if err := eng.Observe(rec); err != nil {
				t.Fatalf("Observe(vantage-1): %v", err)
			}
			if err := ck.Maybe(eng, uint64(i+1)); err != nil {
				t.Fatalf("Maybe: %v", err)
			}
		}
		return false
	}()
	if !died {
		t.Fatalf("crash point never fired (partition shorter than %d records?)", 2*checkpointEvery)
	}
	eng.Kill()

	state, info, err := stream.LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if !info.Found {
		t.Fatal("expected a completed checkpoint generation to recover from")
	}
	resumeCfg := cfg1
	resumeCfg.Shards = 0
	resumed, err := stream.Restore(resumeCfg, state)
	if err != nil {
		t.Fatalf("Restore(vantage-1): %v", err)
	}
	for i := state.Source.Records; i < uint64(len(parts[1])); i++ {
		if err := resumed.Observe(parts[1][i]); err != nil {
			t.Fatalf("Observe(vantage-1 resume): %v", err)
		}
	}
	resumedState, err := resumed.ExportState()
	if err != nil {
		t.Fatalf("ExportState(vantage-1 resume): %v", err)
	}
	resumed.Kill()
	if got := resumedState.Vantages; len(got) != 1 || got[0] != "vantage-1" {
		t.Fatalf("resumed vantage identity = %v, want [vantage-1]", got)
	}

	merged, err := stream.MergeStates(cleanState, resumedState)
	if err != nil {
		t.Fatalf("MergeStates: %v", err)
	}
	_, mergedJSON, _ := quiescedLandscape(t, mkCfg(""), merged)
	if !bytes.Equal(mergedJSON, refJSON) {
		t.Fatalf("merged /landscape differs after kill–resume:\nsingle %s\nmerged %s", refJSON, mergedJSON)
	}
}

// TestMergeSameServerOpenCellsMB: MB's sufficient statistic is a SET of
// (bucket, position) pairs, so its merge is exact under ANY record
// partition — not just the server-disjoint one. Deal one epoch of records
// round-robin across two vantages (every server split across both), so
// the merge must fold the same server's open cells through the estimator
// Merge, and the quiesced landscape must still match a single engine.
func TestMergeSameServerOpenCellsMB(t *testing.T) {
	tc := diffCases()[1] // MB-newgoz: set semantics, no second opinion
	const seed = uint64(0x5E7)
	delivered := chunkShuffle(synthTrace(t, tc.spec, seed, 8, 1, tc.activations), 5*sim.Second, sim.NewRNG(seed))
	mkCfg := func(vantage string) stream.Config {
		return stream.Config{
			Core:          core.Config{Family: tc.spec, Seed: seed, EpochLen: testEpochLen},
			Shards:        2,
			ReorderWindow: 5 * sim.Second,
			Vantage:       vantage,
		}
	}
	parts := make([]trace.Observed, 2)
	for i, rec := range delivered {
		parts[i%2] = append(parts[i%2], rec)
	}
	stA, _ := runVantage(t, mkCfg("split-a"), parts[0])
	stB, _ := runVantage(t, mkCfg("split-b"), parts[1])
	merged, err := stream.MergeStates(stA, stB)
	if err != nil {
		t.Fatalf("MergeStates: %v", err)
	}
	_, mergedJSON, _ := quiescedLandscape(t, mkCfg(""), merged)

	ref, err := stream.New(mkCfg(""))
	if err != nil {
		t.Fatalf("stream.New(reference): %v", err)
	}
	defer ref.Kill()
	for _, rec := range delivered {
		if err := ref.Observe(rec); err != nil {
			t.Fatalf("Observe(reference): %v", err)
		}
	}
	if err := ref.Quiesce(); err != nil {
		t.Fatalf("Quiesce(reference): %v", err)
	}
	refJSON, err := ref.LandscapeJSON()
	if err != nil {
		t.Fatalf("LandscapeJSON(reference): %v", err)
	}
	if !bytes.Equal(mergedJSON, refJSON) {
		t.Fatalf("record-partitioned MB merge differs from single engine:\nsingle %s\nmerged %s", refJSON, mergedJSON)
	}
}

// TestMergeRejectsDuplicateVantage: folding two snapshots that claim the
// same vantage is a typed error, not a silent double-count.
func TestMergeRejectsDuplicateVantage(t *testing.T) {
	tc := diffCases()[1]
	trc := synthTrace(t, tc.spec, 11, 4, 2, tc.activations)
	cfg := stream.Config{
		Core:    core.Config{Family: tc.spec, Seed: 11, EpochLen: testEpochLen},
		Shards:  1,
		Vantage: "border-a",
	}
	eng, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	defer eng.Kill()
	for _, rec := range trc {
		if err := eng.Observe(rec); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	a, err := eng.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	b, err := eng.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	_, err = stream.MergeStates(a, b)
	var dup *stream.DuplicateVantageError
	if !errors.As(err, &dup) {
		t.Fatalf("MergeStates(same vantage twice) = %v, want DuplicateVantageError", err)
	}
	if dup.Vantage != "border-a" {
		t.Fatalf("duplicate vantage = %q, want border-a", dup.Vantage)
	}
}

// TestMergerIdempotentRefresh: Merger replaces a vantage's snapshot on
// Update, so pulling the same (unchanged) vantage snapshot again and
// re-merging yields byte-identical state — the coordinator's pull loop
// needs no change detection to stay correct.
func TestMergerIdempotentRefresh(t *testing.T) {
	tc := diffCases()[0]
	delivered := synthTrace(t, tc.spec, 23, 8, 2, tc.activations)
	parts := partitionByServer(delivered, 2)
	mkCfg := func(vantage string) stream.Config {
		return stream.Config{
			Core:    core.Config{Family: tc.spec, Seed: 23, EpochLen: testEpochLen, SecondOpinion: tc.secondOpinion},
			Shards:  1,
			Vantage: vantage,
		}
	}
	st0, _ := runVantage(t, mkCfg("v0"), parts[0])
	st1, _ := runVantage(t, mkCfg("v1"), parts[1])

	m := stream.NewMerger()
	for _, st := range []*stream.EngineState{st0, st1} {
		if err := m.Update(st); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	if got := m.Vantages(); len(got) != 2 || got[0] != "v0" || got[1] != "v1" {
		t.Fatalf("Vantages() = %v", got)
	}
	if got := m.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	first, err := m.Merged()
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	// The same vantage snapshot arrives again (an unchanged pull).
	if err := m.Update(st0); err != nil {
		t.Fatalf("Update (refresh): %v", err)
	}
	second, err := m.Merged()
	if err != nil {
		t.Fatalf("Merged (after refresh): %v", err)
	}
	fb, err := stream.EncodeCheckpoint(first)
	if err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	sb, err := stream.EncodeCheckpoint(second)
	if err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	if !bytes.Equal(fb, sb) {
		t.Fatal("re-merge after an idempotent refresh changed the merged state")
	}

	// A snapshot with a different analysis fingerprint is refused with the
	// typed error /healthz surfaces.
	otherCfg := mkCfg("v2")
	otherCfg.Core.Seed = 99
	stBad, _ := runVantage(t, otherCfg, nil)
	err = m.Update(stBad)
	var mismatch *stream.FingerprintMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("Update(different seed) = %v, want FingerprintMismatchError", err)
	}

	// Anonymous snapshots (no Config.Vantage) cannot be tracked.
	stAnon, _ := runVantage(t, stream.Config{
		Core: core.Config{Family: tc.spec, Seed: 23, EpochLen: testEpochLen, SecondOpinion: tc.secondOpinion}, Shards: 1,
	}, nil)
	if err := m.Update(stAnon); err == nil {
		t.Fatal("Update accepted a snapshot with no vantage name")
	}
}

// TestRestoreFingerprintMismatchTyped is the satellite-fix regression:
// Restore must return *FingerprintMismatchError naming the differing
// config fields, so the landscape-server can surface per-vantage WHICH
// knob diverged instead of a bare "fingerprint mismatch".
func TestRestoreFingerprintMismatchTyped(t *testing.T) {
	tc := diffCases()[1]
	cfg := stream.Config{
		Core:   core.Config{Family: tc.spec, Seed: 5, EpochLen: testEpochLen},
		Shards: 2,
	}
	eng, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	st, err := eng.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	eng.Kill()

	bad := cfg
	bad.Core.Seed = 6
	bad.ReorderWindow = 9 * sim.Second
	bad.Shards = 0
	_, err = stream.Restore(bad, st)
	var mismatch *stream.FingerprintMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("Restore = %v, want *FingerprintMismatchError", err)
	}
	diff := mismatch.Diff()
	if len(diff) != 2 {
		t.Fatalf("Diff() = %v, want exactly the two mutated fields", diff)
	}
	for _, want := range []string{"seed: checkpoint 5, engine 6", "reorder_window"} {
		found := false
		for _, d := range diff {
			if bytes.Contains([]byte(d), []byte(want)) {
				found = true
			}
		}
		if !found {
			t.Fatalf("Diff() = %v, missing %q", diff, want)
		}
	}
	for _, want := range []string{"seed", "reorder_window"} {
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("Error() = %q does not name field %q", err, want)
		}
	}
}

// TestMergeStatesErrors pins the validation surface: nil and empty
// inputs, malformed shard counts, and diverging analysis fingerprints
// are refused with errors a caller can show per-vantage.
func TestMergeStatesErrors(t *testing.T) {
	tc := diffCases()[1]
	mkState := func(mut func(*stream.Config)) *stream.EngineState {
		cfg := stream.Config{
			Core:    core.Config{Family: tc.spec, Seed: 3, EpochLen: testEpochLen},
			Shards:  1,
			Vantage: "a",
		}
		if mut != nil {
			mut(&cfg)
		}
		st, _ := runVantage(t, cfg, nil)
		return st
	}
	if _, err := stream.MergeStates(); err == nil {
		t.Fatal("MergeStates() with no inputs succeeded")
	}
	if _, err := stream.MergeStates(mkState(nil), nil); err == nil {
		t.Fatal("MergeStates with a nil input succeeded")
	}
	torn := mkState(nil)
	torn.Shards = torn.Shards[:0]
	if _, err := stream.MergeStates(torn); err == nil {
		t.Fatal("MergeStates accepted a state whose shard slice contradicts its fingerprint")
	}
	other := mkState(func(cfg *stream.Config) { cfg.Core.Seed = 4; cfg.Vantage = "b" })
	_, err := stream.MergeStates(mkState(nil), other)
	var mismatch *stream.FingerprintMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("MergeStates across seeds = %v, want FingerprintMismatchError", err)
	}

	// The typed errors render actionable messages.
	for _, check := range []struct{ msg, want string }{
		{(&stream.DuplicateVantageError{Vantage: "edge-9"}).Error(), "edge-9"},
		{(&stream.MergeConflictError{Server: "s1", Epoch: 4, Detail: "values differ"}).Error(), "s1"},
	} {
		if !strings.Contains(check.msg, check.want) {
			t.Fatalf("error %q does not mention %q", check.msg, check.want)
		}
	}
}

// TestConfigForStateEstimatorOverrides: every estimator name a fingerprint
// can carry reconstructs to an engine whose estimator matches — the
// coordinator must rebuild non-default choices faithfully.
func TestConfigForStateEstimatorOverrides(t *testing.T) {
	cases := []struct {
		name string
		spec dga.Spec // registry family whose DEFAULT differs from name
		est  func() estimators.Estimator
	}{
		{"MP", dga.NewGoZ(), func() estimators.Estimator { return estimators.NewPoisson() }},
		{"NC", dga.NewGoZ(), func() estimators.Estimator { return estimators.NewNaive() }},
		{"MB", dga.Murofet(), func() estimators.Estimator { return estimators.NewBernoulli() }},
		{"MB-C", dga.Murofet(), func() estimators.Estimator { return estimators.NewCoverage() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := stream.Config{
				Core:   core.Config{Family: tc.spec, Seed: 9, EpochLen: testEpochLen, Estimator: tc.est()},
				Shards: 1,
			}
			eng, err := stream.New(cfg)
			if err != nil {
				t.Fatalf("stream.New: %v", err)
			}
			st, err := eng.ExportState()
			if err != nil {
				t.Fatalf("ExportState: %v", err)
			}
			eng.Kill()
			got, err := stream.ConfigForState(st)
			if err != nil {
				t.Fatalf("ConfigForState: %v", err)
			}
			restored, err := stream.Restore(got, st)
			if err != nil {
				t.Fatalf("Restore(reconstructed): %v", err)
			}
			if name := restored.EstimatorName(); name != tc.name {
				t.Fatalf("reconstructed estimator = %q, want %q", name, tc.name)
			}
			restored.Kill()

			unknown := *st
			unknown.Fingerprint.Estimator = "XX"
			if _, err := stream.ConfigForState(&unknown); err == nil {
				t.Fatal("ConfigForState accepted an unknown estimator name")
			}
			wrongModel := *st
			wrongModel.Fingerprint.Model = "bogus"
			if _, err := stream.ConfigForState(&wrongModel); err == nil {
				t.Fatal("ConfigForState accepted a model mismatch")
			}
		})
	}
	if _, err := stream.ConfigForState(nil); err == nil {
		t.Fatal("ConfigForState(nil) succeeded")
	}
}

// TestConfigForState: a fingerprint from a registry family round-trips to
// a working engine configuration — the coordinator's bootstrap path.
func TestConfigForState(t *testing.T) {
	spec := dga.Murofet()
	cfg := stream.Config{
		Core: core.Config{
			Family:    spec,
			Seed:      77,
			EpochLen:  sim.Day,
			Estimator: estimators.NewTiming(), // non-default for a uniform barrel
		},
		Shards:  2,
		Vantage: "edge-1",
	}
	eng, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	st, err := eng.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	eng.Kill()

	got, err := stream.ConfigForState(st)
	if err != nil {
		t.Fatalf("ConfigForState: %v", err)
	}
	// The reconstructed config must restore cleanly — i.e. reproduce the
	// exact fingerprint, estimator choice included.
	restored, err := stream.Restore(got, st)
	if err != nil {
		t.Fatalf("Restore(reconstructed config): %v", err)
	}
	if name := restored.EstimatorName(); name != "MT" {
		t.Fatalf("reconstructed estimator = %q, want MT", name)
	}
	restored.Kill()

	unknown := *st
	unknown.Fingerprint.Family = "no-such-family"
	if _, err := stream.ConfigForState(&unknown); err == nil {
		t.Fatal("ConfigForState accepted an unregistered family")
	}
}
