// Package enterprise synthesises the paper's §V-B real-world dataset: a
// year-scale DNS trace of a large enterprise sub-network (22.5K IPs, ≈15K
// active per day) served by one local caching DNS server that forwards
// misses to a border server, with second-granularity timestamps. Benign
// load follows a Zipf popularity law over a fixed benign zone; infected
// sub-populations of configurable DGA families are overlaid with
// day-to-day-varying active counts. The generator produces the observable
// dataset (what BotMeter sees) and the per-day ground-truth active-bot
// counts per family (what the paper derives from the raw dataset).
//
// This is the documented substitution for the proprietary IBM trace — see
// DESIGN.md §6: the estimators consume only the cache-filtered DGA-matched
// sub-stream, so what must be faithful is the activation process, cache
// interaction, timestamp coarseness and background noise, all of which are
// reproduced here.
package enterprise

import (
	"fmt"
	"math"
	"sort"

	"botmeter/internal/botnet"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
	"botmeter/internal/symtab"
	"botmeter/internal/trace"
)

// Infection describes one DGA family present in the network.
type Infection struct {
	// Spec is the DGA family.
	Spec dga.Spec
	// Seed drives the family's pools and barrels.
	Seed uint64
	// MeanActive is the average number of active bots per day.
	MeanActive float64
	// Volatility is the standard deviation of the day-to-day log-population
	// random walk (0 = constant mean).
	Volatility float64
	// ReactivateEvery, when positive, makes bots that failed to reach a C2
	// server loop: they retry the same barrel after this back-off, as real
	// crimeware does. Inflates lookup volume without changing the daily
	// ground truth (distinct bots).
	ReactivateEvery sim.Time
}

// Config sizes the synthetic enterprise.
type Config struct {
	// Days is the trace length in epochs.
	Days int
	// Seed drives all benign and scheduling randomness.
	Seed uint64
	// BenignClients is the number of distinct benign client IPs active per
	// day (the paper's network has ≈15K; tests use far fewer).
	BenignClients int
	// BenignLookupsPerClient is the mean number of benign lookups each
	// active client issues per day.
	BenignLookupsPerClient float64
	// BenignZoneSize is the number of distinct benign domains, ranked by
	// Zipf popularity.
	BenignZoneSize int
	// PositiveTTL, NegativeTTL configure the local server cache.
	PositiveTTL, NegativeTTL sim.Time
	// Granularity coarsens vantage-point timestamps (paper: 1 s).
	Granularity sim.Time
	// DHCPChurn re-assigns benign client IPs daily, as wireless DHCP leases
	// do in the paper's enterprise (its footnote notes IP–MAC bindings are
	// only valid within a one-day window — the reason all ground truth is
	// counted per day).
	DHCPChurn bool
	// Infections lists the DGA families present.
	Infections []Infection
}

// WithDefaults fills unset fields with the paper's §V-B setting scaled to
// a tractable size.
func (c Config) WithDefaults() Config {
	if c.Days <= 0 {
		c.Days = 30
	}
	if c.BenignClients <= 0 {
		c.BenignClients = 300
	}
	if c.BenignLookupsPerClient <= 0 {
		c.BenignLookupsPerClient = 20
	}
	if c.BenignZoneSize <= 0 {
		c.BenignZoneSize = 2000
	}
	if c.PositiveTTL <= 0 {
		c.PositiveTTL = sim.Day
	}
	if c.NegativeTTL <= 0 {
		c.NegativeTTL = 2 * sim.Hour
	}
	if c.Granularity <= 0 {
		c.Granularity = sim.Second
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for i, inf := range c.Infections {
		if err := inf.Spec.Validate(); err != nil {
			return fmt.Errorf("enterprise: infection %d: %w", i, err)
		}
		if inf.MeanActive < 0 || inf.Volatility < 0 {
			return fmt.Errorf("enterprise: infection %d: negative parameters", i)
		}
	}
	return nil
}

// Trace is the generated dataset bundle.
type Trace struct {
	// Observed is the border-server dataset: benign cache misses plus
	// DGA-triggered lookups, sorted by (truncated) timestamp.
	Observed trace.Observed
	// GroundTruth maps family name to the daily active-bot counts.
	GroundTruth map[string][]int
	// Days is the number of epochs generated.
	Days int
	// LocalServer is the single forwarding server's identifier.
	LocalServer string
	// Pools maps family name to the symbolized pool cache its runners used
	// while generating the trace. Analysis passes the same cache to
	// core.Config.Pools so matched records take the domain-ID fast paths;
	// nil-safe (analysing without it just falls back to string matching).
	Pools map[string]*dga.PoolCache

	tab *symtab.Table
}

// Close recycles the trace's intern table. Call after all analysis over
// the trace (and its Pools) has finished; safe to call more than once.
func (t *Trace) Close() {
	if t.tab != nil {
		t.tab.Release()
		t.tab = nil
	}
}

// Generate builds the trace.
func Generate(cfg Config) (*Trace, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  cfg.PositiveTTL,
		NegativeTTL:  cfg.NegativeTTL,
		Granularity:  cfg.Granularity,
	})
	const local = "local-00"

	// Benign zone: all registered, popularity Zipf-ranked.
	benignRNG := sim.SplitFrom(cfg.Seed, 0xbe9)
	benign := benignDomains(cfg.BenignZoneSize)
	net.Registry.Register(benign...)

	// Benign lookups. Zipf s=1.1, v=1 over the zone.
	zipf := newZipf(benignRNG, 1.1, uint64(cfg.BenignZoneSize))
	for day := 0; day < cfg.Days; day++ {
		dayStart := sim.Time(day) * sim.Day
		for c := 0; c < cfg.BenignClients; c++ {
			lease := c
			if cfg.DHCPChurn {
				// Daily lease rotation: a deterministic per-day shuffle of
				// the address pool (twice the client count, so addresses
				// also go unused some days).
				lease = int(sim.SplitFrom(cfg.Seed, uint64(day)*0xdc9+uint64(c)).Uint64() % uint64(cfg.BenignClients*2))
			}
			client := fmt.Sprintf("10.0.%d.%d", lease/250, lease%250)
			n := poissonCount(benignRNG, cfg.BenignLookupsPerClient)
			for q := 0; q < n; q++ {
				at := dayStart + sim.Time(benignRNG.Int64N(int64(sim.Day)))
				domain := benign[zipf.Uint64()]
				if _, err := net.ClientQuery(at, client, domain); err != nil {
					return nil, fmt.Errorf("enterprise: benign query: %w", err)
				}
			}
		}
	}
	// NOTE: benign lookups are issued day-by-day but not globally sorted;
	// per-domain cache behaviour only depends on per-domain ordering, and
	// within a domain queries are near-sorted. The merged observable
	// dataset is sorted before return.

	// Infections: one botnet runner per family over the full window, with
	// per-day populations following a log-normal random walk around the
	// mean. All families intern their pool domains into one trace-wide
	// table (cross-family string collisions then share one ID, keeping the
	// per-family matchers exact), and every family's per-day runners share
	// one pool cache, so each epoch's pool is generated once per family
	// rather than once per day.
	tab := symtab.Get()
	pools := make(map[string]*dga.PoolCache, len(cfg.Infections))
	truth := make(map[string][]int, len(cfg.Infections))
	w := sim.Window{Start: 0, End: sim.Time(cfg.Days) * sim.Day}
	for i, inf := range cfg.Infections {
		walkRNG := sim.SplitFrom(cfg.Seed, 0x1f0+uint64(i))
		daily := make([]int, 0, cfg.Days)
		level := 0.0
		for day := 0; day < cfg.Days; day++ {
			if inf.Volatility > 0 {
				level += walkRNG.Normal(0, inf.Volatility)
				// Mean-revert so the series stays near the configured mean.
				level *= 0.8
			}
			n := int(math.Round(inf.MeanActive * math.Exp(level)))
			if n < 0 {
				n = 0
			}
			daily = append(daily, n)
		}
		cache := dga.NewPoolCache(inf.Spec.Pool, inf.Seed, tab)
		pools[inf.Spec.Name] = cache
		got, err := runInfection(net, inf, cache, daily, w)
		if err != nil {
			tab.Release()
			return nil, err
		}
		truth[inf.Spec.Name] = got
	}

	obs := net.Border.Observed()
	net.ReleaseCaches()
	obs.Sort()
	return &Trace{
		Observed:    obs,
		GroundTruth: truth,
		Days:        cfg.Days,
		LocalServer: local,
		Pools:       pools,
		tab:         tab,
	}, nil
}

// runInfection simulates a family day by day (populations vary daily) and
// returns the realised daily active counts.
func runInfection(net *dnssim.Network, inf Infection, pools *dga.PoolCache, daily []int, w sim.Window) ([]int, error) {
	const local = "local-00"
	out := make([]int, len(daily))
	for day, n := range daily {
		if n == 0 {
			continue
		}
		r, err := botnet.NewRunner(botnet.Config{
			Spec:            inf.Spec,
			Seed:            inf.Seed,
			BotsPerServer:   map[string]int{local: n},
			ReactivateEvery: inf.ReactivateEvery,
			Pools:           pools,
		}, net)
		if err != nil {
			return nil, fmt.Errorf("enterprise: %s day %d: %w", inf.Spec.Name, day, err)
		}
		dw := sim.Window{Start: sim.Time(day) * sim.Day, End: sim.Time(day+1) * sim.Day}
		if dw.End > w.End {
			dw.End = w.End
		}
		res, err := r.Run(dw)
		if err != nil {
			return nil, fmt.Errorf("enterprise: %s day %d: %w", inf.Spec.Name, day, err)
		}
		out[day] = res.ActiveBots[local][0]
	}
	return out, nil
}

// benignDomains produces a deterministic benign zone.
func benignDomains(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("site-%05d.example.com", i)
	}
	return out
}

// poissonCount draws a Poisson-distributed count via inversion (small
// means) or a normal approximation (large means).
func poissonCount(rng *sim.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(rng.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// zipfAdapter wraps the stdlib Zipf generator.
type zipfAdapter struct {
	z *zipfState
}

// newZipf builds a Zipf sampler over [0, imax) with exponent s.
func newZipf(rng *sim.RNG, s float64, imax uint64) *zipfAdapter {
	return &zipfAdapter{z: newZipfState(rng, s, imax)}
}

func (z *zipfAdapter) Uint64() uint64 { return z.z.next() }

// zipfState implements a simple Zipf sampler by inverse-CDF over a
// precomputed table (exact, deterministic, and independent of stdlib
// generator internals).
type zipfState struct {
	rng *sim.RNG
	cdf []float64
}

func newZipfState(rng *sim.RNG, s float64, imax uint64) *zipfState {
	n := int(imax)
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &zipfState{rng: rng, cdf: cdf}
}

func (z *zipfState) next() uint64 {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return uint64(i)
}
