package enterprise

import (
	"math"
	"strings"
	"testing"

	"botmeter/internal/dga"
	"botmeter/internal/sim"
)

func tinyConfig() Config {
	return Config{
		Days:                   3,
		Seed:                   1,
		BenignClients:          50,
		BenignLookupsPerClient: 5,
		BenignZoneSize:         200,
		Infections: []Infection{
			{
				Spec: dga.Spec{
					Name:          "mini-AR",
					Pool:          dga.DrainReplenish{NX: 495, C2: 5, Gen: dga.DefaultGenerator},
					Barrel:        dga.RandomCut{},
					ThetaQ:        50,
					QueryInterval: sim.Second,
				},
				Seed:       7,
				MeanActive: 12,
				Volatility: 0.3,
			},
		},
	}
}

func TestGenerateBasics(t *testing.T) {
	tr, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Days != 3 {
		t.Errorf("days = %d", tr.Days)
	}
	if len(tr.Observed) == 0 {
		t.Fatal("no observations")
	}
	// Sorted by timestamp.
	for i := 1; i < len(tr.Observed); i++ {
		if tr.Observed[i].T < tr.Observed[i-1].T {
			t.Fatal("observed dataset not sorted")
		}
	}
	// Second-granularity timestamps.
	for _, rec := range tr.Observed[:100] {
		if rec.T%sim.Second != 0 {
			t.Fatalf("timestamp %v not truncated to 1 s", rec.T)
		}
	}
	// Ground truth per family per day.
	gt := tr.GroundTruth["mini-AR"]
	if len(gt) != 3 {
		t.Fatalf("ground truth = %v", gt)
	}
	for day, n := range gt {
		if n <= 0 {
			t.Errorf("day %d: no active bots (mean 12, volatility 0.3)", day)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Observed) != len(b.Observed) {
		t.Fatalf("nondeterministic sizes: %d vs %d", len(a.Observed), len(b.Observed))
	}
	for i := range a.GroundTruth["mini-AR"] {
		if a.GroundTruth["mini-AR"][i] != b.GroundTruth["mini-AR"][i] {
			t.Fatal("nondeterministic ground truth")
		}
	}
}

func TestGenerateContainsBenignAndDGA(t *testing.T) {
	tr, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	benign, dgaCount := 0, 0
	for _, rec := range tr.Observed {
		if strings.HasSuffix(rec.Domain, ".example.com") {
			benign++
		} else {
			dgaCount++
		}
	}
	if benign == 0 {
		t.Error("no benign lookups at the vantage point")
	}
	if dgaCount == 0 {
		t.Error("no DGA lookups at the vantage point")
	}
	// Caching should have absorbed many benign repeats: forwarded benign
	// lookups are far fewer than issued (50 clients × 5 × 3 days = 750).
	if benign >= 750 {
		t.Errorf("benign forwards %d, expected cache-filtered (< 750)", benign)
	}
}

func TestVolatilityZeroGivesStablePopulations(t *testing.T) {
	cfg := tinyConfig()
	cfg.Infections[0].Volatility = 0
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gt := tr.GroundTruth["mini-AR"]
	for _, n := range gt {
		// Constant daily target of 12; realised active bots fluctuate only
		// through activation-spill randomness.
		if math.Abs(float64(n)-12) > 6 {
			t.Errorf("daily population %d too far from mean 12", n)
		}
	}
}

func TestDHCPChurnChangesNothingObservable(t *testing.T) {
	// Client IP churn is invisible at the vantage point (client identity
	// never reaches the border) and must not disturb ground truth.
	base := tinyConfig()
	churn := tinyConfig()
	churn.DHCPChurn = true
	a, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(churn)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range a.GroundTruth["mini-AR"] {
		if b.GroundTruth["mini-AR"][i] != n {
			t.Fatal("churn changed ground truth")
		}
	}
	// DGA-matched observations are identical; benign cache behaviour may
	// differ slightly (different per-client caching), but volumes stay in
	// the same ballpark.
	if len(b.Observed) == 0 {
		t.Fatal("churn produced empty trace")
	}
	ratio := float64(len(b.Observed)) / float64(len(a.Observed))
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("churn changed trace volume drastically: %d vs %d", len(b.Observed), len(a.Observed))
	}
}

func TestValidateRejectsBadInfection(t *testing.T) {
	cfg := tinyConfig()
	cfg.Infections[0].MeanActive = -5
	if _, err := Generate(cfg); err == nil {
		t.Error("negative mean should fail")
	}
	cfg = tinyConfig()
	cfg.Infections[0].Spec = dga.Spec{}
	if _, err := Generate(cfg); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Days <= 0 || c.BenignClients <= 0 || c.Granularity != sim.Second {
		t.Errorf("defaults incomplete: %+v", c)
	}
}

func TestPoissonCount(t *testing.T) {
	rng := sim.NewRNG(4)
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += float64(poissonCount(rng, 7))
	}
	if mean := sum / n; math.Abs(mean-7) > 0.3 {
		t.Errorf("Poisson(7) sample mean %v", mean)
	}
	// Large-mean branch.
	sum = 0
	for i := 0; i < n; i++ {
		sum += float64(poissonCount(rng, 100))
	}
	if mean := sum / n; math.Abs(mean-100) > 2 {
		t.Errorf("Poisson(100) sample mean %v", mean)
	}
	if poissonCount(rng, 0) != 0 {
		t.Error("zero mean should give zero")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := sim.NewRNG(5)
	z := newZipf(rng, 1.1, 1000)
	counts := make(map[uint64]int)
	for i := 0; i < 20000; i++ {
		counts[z.Uint64()]++
	}
	// Rank 0 must dominate deep ranks.
	if counts[0] < 20*counts[500]+1 {
		t.Errorf("Zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
}
