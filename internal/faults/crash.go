package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Crasher extends the fault substrate from packet-level chaos to
// process-level crash chaos: it kills the process (or, in tests, fires a
// caller-supplied Die hook) at deterministic points — after the Nth record,
// or at the Nth occurrence of a named code point such as mid-checkpoint.
// Combined with checkpoint/recovery (internal/stream, DESIGN.md §15) this
// is what lets the kill–resume differential and the CI crash smoke place
// crashes exactly where they hurt instead of hoping a random SIGKILL lands
// there.
//
// Like the Injector, a Crasher's behaviour is fully determined by its spec:
// the same traffic hits the same crash point on every run.
type Crasher struct {
	spec CrashSpec

	// Die is invoked exactly once when a crash point fires. The default
	// exits with status 137 — the status a SIGKILLed process reports — so
	// supervisors and the shell smoke treat it like a real kill. Tests
	// substitute a panic (recovered by the harness) to simulate the crash
	// in-process.
	Die func(reason string)

	mu      sync.Mutex
	records uint64
	points  map[string]uint64
	fired   bool
}

// CrashSpec says where to crash. The zero value never crashes.
type CrashSpec struct {
	// AfterRecords, when > 0, crashes immediately after the Nth call to
	// Record — "die after N records".
	AfterRecords uint64
	// Point, when non-empty, crashes at the Nth (PointNth, default 1st)
	// call to Point with this name — e.g. "checkpoint-write" to die with a
	// half-written checkpoint on disk.
	Point    string
	PointNth uint64
}

// Enabled reports whether any crash can fire.
func (s CrashSpec) Enabled() bool { return s.AfterRecords > 0 || s.Point != "" }

// String renders the spec in ParseCrashSpec's format.
func (s CrashSpec) String() string {
	var parts []string
	if s.AfterRecords > 0 {
		parts = append(parts, fmt.Sprintf("records=%d", s.AfterRecords))
	}
	if s.Point != "" {
		nth := s.PointNth
		if nth == 0 {
			nth = 1
		}
		parts = append(parts, fmt.Sprintf("point=%s:%d", s.Point, nth))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseCrashSpec parses a compact crash specification of the form
//
//	records=500              # die right after the 500th record
//	point=checkpoint-write:2 # die at the 2nd hit of that crash point
//	records=500,point=checkpoint-write:1
//
// An empty spec or "none" yields a zero spec (never crashes).
func ParseCrashSpec(spec string) (CrashSpec, error) {
	var s CrashSpec
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return s, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return CrashSpec{}, fmt.Errorf("faults: bad crash spec field %q (want key=value)", field)
		}
		switch key {
		case "records":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return CrashSpec{}, fmt.Errorf("faults: records=%q is not a positive count", val)
			}
			s.AfterRecords = n
		case "point":
			name, nthStr, hasNth := strings.Cut(val, ":")
			if name == "" {
				return CrashSpec{}, fmt.Errorf("faults: point=%q has no name", val)
			}
			s.Point = name
			s.PointNth = 1
			if hasNth {
				nth, err := strconv.ParseUint(nthStr, 10, 64)
				if err != nil || nth == 0 {
					return CrashSpec{}, fmt.Errorf("faults: point occurrence %q is not a positive count", nthStr)
				}
				s.PointNth = nth
			}
		default:
			return CrashSpec{}, fmt.Errorf("faults: unknown crash spec key %q", key)
		}
	}
	return s, nil
}

// NewCrasher builds a crasher for spec. A nil result means the spec never
// crashes, and is safe to call Record/Point on.
func NewCrasher(spec CrashSpec) *Crasher {
	if !spec.Enabled() {
		return nil
	}
	if spec.Point != "" && spec.PointNth == 0 {
		spec.PointNth = 1
	}
	return &Crasher{
		spec:   spec,
		Die:    func(reason string) { fmt.Fprintln(os.Stderr, "crash injected:", reason); os.Exit(137) },
		points: make(map[string]uint64),
	}
}

// Spec returns the configured crash spec (zero for a nil crasher).
func (c *Crasher) Spec() CrashSpec {
	if c == nil {
		return CrashSpec{}
	}
	return c.spec
}

// Record counts one processed record and crashes when the count reaches the
// configured AfterRecords. Nil-safe.
func (c *Crasher) Record() {
	if c == nil || c.spec.AfterRecords == 0 {
		return
	}
	c.mu.Lock()
	c.records++
	due := !c.fired && c.records == c.spec.AfterRecords
	if due {
		c.fired = true
	}
	c.mu.Unlock()
	if due {
		c.Die(fmt.Sprintf("after %d records", c.spec.AfterRecords))
	}
}

// Point counts one occurrence of a named crash point and crashes at the
// configured occurrence of the configured point. Nil-safe, so instrumented
// code can call it unconditionally.
func (c *Crasher) Point(name string) {
	if c == nil || c.spec.Point != name {
		return
	}
	c.mu.Lock()
	c.points[name]++
	due := !c.fired && c.points[name] == c.spec.PointNth
	if due {
		c.fired = true
	}
	c.mu.Unlock()
	if due {
		c.Die(fmt.Sprintf("at point %s (occurrence %d)", name, c.spec.PointNth))
	}
}
