// Package faults is a deterministic fault-injection substrate for both the
// simulated DNS hierarchy (internal/dnssim) and the live UDP pipeline
// (cmd/resolver, cmd/vantage). A seeded Injector makes every per-datagram
// decision — loss, duplication, added latency, SERVFAIL bursts, full
// upstream blackout windows — from a single sim.RNG stream, so a fixed
// (seed, rates, traffic) triple replays bit-for-bit. That is what lets the
// chaos experiments (internal/experiments.ChaosSweep) and the resolver's
// chaos integration test assert byte-identical outcomes across runs: the
// paper's robustness claim (§V, Figure 7 — "resilient against noisy and
// missing observations") is only checkable if the noise itself is
// reproducible.
//
// The same Injector backs two decorators:
//
//   - FaultyUpstream wraps a dnssim.Upstream, degrading the simulated
//     local→border link (virtual time, single-threaded, fully
//     deterministic).
//   - PacketConn wraps a net.PacketConn, degrading a live UDP socket
//     (wall-clock blackout windows measured from Injector creation).
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"botmeter/internal/obs"
	"botmeter/internal/sim"
)

// Rates configures per-fault-type probabilities and windows. The zero value
// injects nothing.
type Rates struct {
	// Loss is the probability a datagram is dropped in transit. In the
	// simulator a loss manifests as a SERVFAIL-after-timeout at the
	// downstream server; whether the query or the response was the lost
	// half (i.e. whether the vantage point still records the lookup) is a
	// second deterministic coin flip.
	Loss float64
	// Duplicate is the probability a datagram is delivered twice —
	// UDP retransmission glitches and middlebox duplication.
	Duplicate float64
	// ServFail is the probability the upstream answers SERVFAIL despite
	// being reachable (lame delegation, overloaded authoritative).
	ServFail float64
	// Delay is the maximum injected extra latency; each delayed datagram
	// draws uniformly from [0, Delay]. In the simulator this perturbs the
	// observed timestamp (reordering at the vantage point); on a live
	// socket it sleeps before delivery.
	Delay sim.Time
	// Blackouts are windows on the fault clock (virtual time in the
	// simulator, time-since-Injector-creation on live sockets) during
	// which the upstream is entirely unreachable: every datagram is
	// swallowed.
	Blackouts []sim.Window
}

// Enabled reports whether any fault can fire.
func (r Rates) Enabled() bool {
	return r.Loss > 0 || r.Duplicate > 0 || r.ServFail > 0 || r.Delay > 0 || len(r.Blackouts) > 0
}

// String renders the rates in ParseSpec's format.
func (r Rates) String() string {
	var parts []string
	if r.Loss > 0 {
		parts = append(parts, fmt.Sprintf("loss=%g", r.Loss))
	}
	if r.Duplicate > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", r.Duplicate))
	}
	if r.ServFail > 0 {
		parts = append(parts, fmt.Sprintf("servfail=%g", r.ServFail))
	}
	if r.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%s", r.Delay.Duration()))
	}
	for _, w := range r.Blackouts {
		parts = append(parts, fmt.Sprintf("blackout=%s+%s", w.Start.Duration(), (w.End-w.Start).Duration()))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a compact fault specification of the form
//
//	loss=0.2,dup=0.01,servfail=0.05,delay=200ms,blackout=10s+2s
//
// Keys may appear in any order; blackout may repeat (each entry is
// start+duration). An empty spec or "none" yields zero Rates.
func ParseSpec(spec string) (Rates, error) {
	var r Rates
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return r, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Rates{}, fmt.Errorf("faults: bad spec field %q (want key=value)", field)
		}
		switch key {
		case "loss", "dup", "servfail":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || !(p >= 0 && p <= 1) { // the negated form also rejects NaN
				return Rates{}, fmt.Errorf("faults: %s=%q is not a probability in [0,1]", key, val)
			}
			switch key {
			case "loss":
				r.Loss = p
			case "dup":
				r.Duplicate = p
			case "servfail":
				r.ServFail = p
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Rates{}, fmt.Errorf("faults: delay=%q is not a duration", val)
			}
			r.Delay = sim.FromDuration(d)
		case "blackout":
			startStr, durStr, ok := strings.Cut(val, "+")
			if !ok {
				return Rates{}, fmt.Errorf("faults: blackout=%q (want start+duration, e.g. 10s+2s)", val)
			}
			start, err := time.ParseDuration(startStr)
			if err != nil || start < 0 {
				return Rates{}, fmt.Errorf("faults: blackout start %q is not a duration", startStr)
			}
			dur, err := time.ParseDuration(durStr)
			if err != nil || dur <= 0 {
				return Rates{}, fmt.Errorf("faults: blackout duration %q is not a positive duration", durStr)
			}
			r.Blackouts = append(r.Blackouts, sim.Window{
				Start: sim.FromDuration(start),
				End:   sim.FromDuration(start + dur),
			})
		default:
			return Rates{}, fmt.Errorf("faults: unknown spec key %q", key)
		}
	}
	return r, nil
}

// Counters tallies injected faults, for observability and for asserting
// deterministic replay in tests.
type Counters struct {
	// Passed counts datagrams that traversed unharmed.
	Passed uint64
	// Lost counts dropped datagrams.
	Lost uint64
	// Duplicated counts duplicated datagrams.
	Duplicated uint64
	// ServFails counts injected SERVFAIL answers.
	ServFails uint64
	// Delayed counts datagrams that drew a nonzero delay.
	Delayed uint64
	// Blackholed counts datagrams swallowed inside a blackout window.
	Blackholed uint64
}

// String renders the counters compactly for logs.
func (c Counters) String() string {
	return fmt.Sprintf("passed=%d lost=%d dup=%d servfail=%d delayed=%d blackholed=%d",
		c.Passed, c.Lost, c.Duplicated, c.ServFails, c.Delayed, c.Blackholed)
}

// Injector makes seeded fault decisions. All methods are safe for
// concurrent use; under concurrency the decision stream is serialised by a
// mutex, so determinism additionally requires that callers present
// datagrams in a deterministic order (true for the single-threaded
// simulator and for sequential request/response tests).
type Injector struct {
	mu      sync.Mutex
	rates   Rates
	rng     *sim.RNG
	seed    uint64
	started time.Time
	c       Counters
	m       injectorMetrics
}

// Metric families exported by the injector (see Injector.Instrument). The
// injected counter is labelled kind=loss|duplicate|servfail|delay|blackout
// so chaos sweeps can correlate fault dose with estimator accuracy.
const (
	MetricInjected = "faults_injected_total"
	MetricPassed   = "faults_passed_total"
)

// injectorMetrics carries the optional obs counters; zero value = disabled
// (obs instruments are nil-safe).
type injectorMetrics struct {
	passed     *obs.Counter
	lost       *obs.Counter
	duplicated *obs.Counter
	servfails  *obs.Counter
	delayed    *obs.Counter
	blackholed *obs.Counter
}

// Instrument registers per-kind injected-fault counters on reg. A nil
// registry disables instrumentation. Call before serving traffic; the
// instruments themselves are atomic. Instrumentation never touches the
// RNG, so the deterministic decision stream is unchanged.
func (i *Injector) Instrument(reg *obs.Registry) {
	reg.Help(MetricInjected, "Injected fault events, by kind.")
	reg.Help(MetricPassed, "Datagrams that traversed the injector unharmed.")
	i.mu.Lock()
	i.m = injectorMetrics{
		passed:     reg.Counter(MetricPassed),
		lost:       reg.Counter(MetricInjected, "kind", "loss"),
		duplicated: reg.Counter(MetricInjected, "kind", "duplicate"),
		servfails:  reg.Counter(MetricInjected, "kind", "servfail"),
		delayed:    reg.Counter(MetricInjected, "kind", "delay"),
		blackholed: reg.Counter(MetricInjected, "kind", "blackout"),
	}
	i.mu.Unlock()
}

// New builds an injector whose decision stream is fully determined by seed
// and rates. The wall clock for live blackout windows starts now.
func New(seed uint64, rates Rates) *Injector {
	return &Injector{
		rates:   rates,
		rng:     sim.NewRNG(seed),
		seed:    seed,
		started: time.Now(),
	}
}

// Seed returns the injector's seed.
func (i *Injector) Seed() uint64 { return i.seed }

// Rates returns the configured rates.
func (i *Injector) Rates() Rates { return i.rates }

// Counters returns a snapshot of the fault tally.
func (i *Injector) Counters() Counters {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.c
}

// coin draws one Bernoulli decision. Caller holds i.mu.
func (i *Injector) coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		// Still consume a draw so rate changes don't shift unrelated
		// decision streams mid-experiment.
		i.rng.Float64()
		return true
	}
	return i.rng.Float64() < p
}

// Drop decides whether to lose one datagram.
func (i *Injector) Drop() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.coin(i.rates.Loss) {
		i.c.Lost++
		i.m.lost.Inc()
		return true
	}
	return false
}

// LossIsResponse decides, for a datagram already declared lost, whether the
// response (rather than the query) was the lost half — i.e. whether the
// upstream still saw and recorded the lookup. Deterministic 50/50.
func (i *Injector) LossIsResponse() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Float64() < 0.5
}

// Duplicate decides whether to deliver one datagram twice.
func (i *Injector) Duplicate() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.coin(i.rates.Duplicate) {
		i.c.Duplicated++
		i.m.duplicated.Inc()
		return true
	}
	return false
}

// ServFail decides whether the upstream answers SERVFAIL.
func (i *Injector) ServFail() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.coin(i.rates.ServFail) {
		i.c.ServFails++
		i.m.servfails.Inc()
		return true
	}
	return false
}

// Delay draws the extra latency for one datagram (0 when delay injection is
// disabled or the draw lands on zero).
func (i *Injector) Delay() sim.Time {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.rates.Delay <= 0 {
		return 0
	}
	d := sim.Time(i.rng.Int64N(int64(i.rates.Delay) + 1))
	if d > 0 {
		i.c.Delayed++
		i.m.delayed.Inc()
	}
	return d
}

// Blackout reports whether the fault clock instant at falls inside a
// configured blackout window. Uses no randomness.
func (i *Injector) Blackout(at sim.Time) bool {
	for _, w := range i.rates.Blackouts {
		if w.Contains(at) {
			i.mu.Lock()
			i.c.Blackholed++
			i.m.blackholed.Inc()
			i.mu.Unlock()
			return true
		}
	}
	return false
}

// BlackoutNow maps the wall clock onto the fault clock (time since New) and
// reports whether a blackout window is active.
func (i *Injector) BlackoutNow() bool {
	return i.Blackout(sim.FromDuration(time.Since(i.started)))
}

// countPassed tallies an unharmed datagram.
func (i *Injector) countPassed() {
	i.mu.Lock()
	i.c.Passed++
	i.m.passed.Inc()
	i.mu.Unlock()
}
