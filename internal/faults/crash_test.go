package faults

import "testing"

func TestParseCrashSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    CrashSpec
		wantErr bool
	}{
		{"", CrashSpec{}, false},
		{"none", CrashSpec{}, false},
		{"  none  ", CrashSpec{}, false},
		{"records=500", CrashSpec{AfterRecords: 500}, false},
		{"point=checkpoint-write", CrashSpec{Point: "checkpoint-write", PointNth: 1}, false},
		{"point=checkpoint-write:2", CrashSpec{Point: "checkpoint-write", PointNth: 2}, false},
		{"records=500,point=checkpoint-rename:1", CrashSpec{AfterRecords: 500, Point: "checkpoint-rename", PointNth: 1}, false},
		{"records=0", CrashSpec{}, true},
		{"records=abc", CrashSpec{}, true},
		{"point=", CrashSpec{}, true},
		{"point=x:0", CrashSpec{}, true},
		{"point=x:y", CrashSpec{}, true},
		{"bogus", CrashSpec{}, true},
		{"what=ever", CrashSpec{}, true},
	}
	for _, c := range cases {
		got, err := ParseCrashSpec(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseCrashSpec(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseCrashSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestCrashSpecRoundTrip(t *testing.T) {
	for _, in := range []string{"none", "records=500", "point=checkpoint-write:2", "records=500,point=checkpoint-rename:1"} {
		spec, err := ParseCrashSpec(in)
		if err != nil {
			t.Fatalf("ParseCrashSpec(%q): %v", in, err)
		}
		if got := spec.String(); got != in {
			t.Errorf("ParseCrashSpec(%q).String() = %q", in, got)
		}
	}
}

func TestCrasherRecord(t *testing.T) {
	c := NewCrasher(CrashSpec{AfterRecords: 3})
	var died []string
	c.Die = func(reason string) { died = append(died, reason) }
	for i := 0; i < 10; i++ {
		c.Record()
	}
	if len(died) != 1 {
		t.Fatalf("Die fired %d times, want exactly once", len(died))
	}
	if died[0] != "after 3 records" {
		t.Errorf("reason = %q", died[0])
	}
}

func TestCrasherPoint(t *testing.T) {
	c := NewCrasher(CrashSpec{Point: "checkpoint-write", PointNth: 2})
	var fired int
	c.Die = func(string) { fired++ }
	c.Point("checkpoint-rename") // different point: never fires
	c.Point("checkpoint-write")  // 1st occurrence: not yet
	if fired != 0 {
		t.Fatalf("fired early (%d)", fired)
	}
	c.Point("checkpoint-write") // 2nd occurrence: fires
	c.Point("checkpoint-write") // fired-once semantics
	if fired != 1 {
		t.Fatalf("Die fired %d times, want exactly once", fired)
	}
}

func TestCrasherFiresOnceAcrossTriggers(t *testing.T) {
	c := NewCrasher(CrashSpec{AfterRecords: 1, Point: "p", PointNth: 1})
	var fired int
	c.Die = func(string) { fired++ }
	c.Record()
	c.Point("p")
	if fired != 1 {
		t.Fatalf("Die fired %d times across triggers, want once", fired)
	}
}

func TestCrasherNilSafe(t *testing.T) {
	var c *Crasher
	c.Record()
	c.Point("anything")
	if got := c.Spec(); got.Enabled() {
		t.Errorf("nil crasher spec = %+v, want disabled", got)
	}
	if NewCrasher(CrashSpec{}) != nil {
		t.Error("NewCrasher(zero spec) should be nil")
	}
}
