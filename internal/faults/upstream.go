package faults

import (
	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
)

// FaultyUpstream decorates a dnssim.Upstream with injected faults — the
// simulated analogue of a degraded local→border link. Fault semantics map
// onto the simulator's request/response model:
//
//   - Blackout: the upstream is unreachable; the resolve fails (ServFail)
//     and the vantage point records nothing.
//   - Loss: a deterministic coin decides whether the query (nothing
//     recorded) or the response (recorded, but the downstream still times
//     out) was lost; either way the resolve fails.
//   - ServFail: the upstream answers SERVFAIL after recording the lookup.
//   - Delay: the observed timestamp is shifted by the injected latency,
//     modelling reordering/late arrival at the vantage point.
//   - Duplicate: the vantage point records the lookup twice.
//
// Wrap a network's border with NewFaultyUpstream via
// dnssim.NetworkConfig.WrapUpstream.
type FaultyUpstream struct {
	inner dnssim.Upstream
	inj   *Injector
}

// NewFaultyUpstream wraps inner with the injector's faults. A nil injector
// or all-zero rates returns inner unchanged.
func NewFaultyUpstream(inner dnssim.Upstream, inj *Injector) dnssim.Upstream {
	if inj == nil || !inj.rates.Enabled() {
		return inner
	}
	return &FaultyUpstream{inner: inner, inj: inj}
}

// Injector exposes the wrapped injector (for counters).
func (f *FaultyUpstream) Injector() *Injector { return f.inj }

// Resolve implements dnssim.Upstream.
func (f *FaultyUpstream) Resolve(now sim.Time, forwarder, domain string) dnssim.Answer {
	if f.inj.Blackout(now) {
		return dnssim.Answer{ServFail: true}
	}
	if f.inj.Drop() {
		if f.inj.LossIsResponse() {
			// Query reached the border (recorded) but the answer was lost:
			// the downstream server times out all the same.
			f.inner.Resolve(now, forwarder, domain)
		}
		return dnssim.Answer{ServFail: true}
	}
	if f.inj.ServFail() {
		// The upstream processed (and its vantage point recorded) the
		// query but failed to resolve it.
		f.inner.Resolve(now, forwarder, domain)
		return dnssim.Answer{ServFail: true}
	}
	at := now + f.inj.Delay()
	ans := f.inner.Resolve(at, forwarder, domain)
	if f.inj.Duplicate() {
		f.inner.Resolve(at, forwarder, domain)
	}
	f.inj.countPassed()
	return ans
}
