package faults

import (
	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
	"botmeter/internal/symtab"
)

// FaultyUpstream decorates a dnssim.Upstream with injected faults — the
// simulated analogue of a degraded local→border link. Fault semantics map
// onto the simulator's request/response model:
//
//   - Blackout: the upstream is unreachable; the resolve fails (ServFail)
//     and the vantage point records nothing.
//   - Loss: a deterministic coin decides whether the query (nothing
//     recorded) or the response (recorded, but the downstream still times
//     out) was lost; either way the resolve fails.
//   - ServFail: the upstream answers SERVFAIL after recording the lookup.
//   - Delay: the observed timestamp is shifted by the injected latency,
//     modelling reordering/late arrival at the vantage point.
//   - Duplicate: the vantage point records the lookup twice.
//
// Wrap a network's border with NewFaultyUpstream via
// dnssim.NetworkConfig.WrapUpstream.
type FaultyUpstream struct {
	inner dnssim.Upstream
	// innerID is inner's ID fast path when it offers one (cached type
	// assertion; nil otherwise).
	innerID dnssim.UpstreamID
	inj     *Injector
}

// NewFaultyUpstream wraps inner with the injector's faults. A nil injector
// or all-zero rates returns inner unchanged. The wrapper preserves inner's
// ID fast path: it implements dnssim.UpstreamID, forwarding the (domain, id)
// pair when inner does too.
func NewFaultyUpstream(inner dnssim.Upstream, inj *Injector) dnssim.Upstream {
	if inj == nil || !inj.rates.Enabled() {
		return inner
	}
	f := &FaultyUpstream{inner: inner, inj: inj}
	f.innerID, _ = inner.(dnssim.UpstreamID)
	return f
}

// Injector exposes the wrapped injector (for counters).
func (f *FaultyUpstream) Injector() *Injector { return f.inj }

// Resolve implements dnssim.Upstream.
func (f *FaultyUpstream) Resolve(now sim.Time, forwarder, domain string) dnssim.Answer {
	return f.ResolveID(now, forwarder, domain, symtab.None)
}

// ResolveID implements dnssim.UpstreamID. The injector draw sequence is
// shared with Resolve (single implementation), so fault decisions — and
// hence chaos artifacts — are identical whether or not queries carry IDs.
func (f *FaultyUpstream) ResolveID(now sim.Time, forwarder, domain string, id symtab.ID) dnssim.Answer {
	if f.inj.Blackout(now) {
		return dnssim.Answer{ServFail: true}
	}
	if f.inj.Drop() {
		if f.inj.LossIsResponse() {
			// Query reached the border (recorded) but the answer was lost:
			// the downstream server times out all the same.
			f.resolveInner(now, forwarder, domain, id)
		}
		return dnssim.Answer{ServFail: true}
	}
	if f.inj.ServFail() {
		// The upstream processed (and its vantage point recorded) the
		// query but failed to resolve it.
		f.resolveInner(now, forwarder, domain, id)
		return dnssim.Answer{ServFail: true}
	}
	at := now + f.inj.Delay()
	ans := f.resolveInner(at, forwarder, domain, id)
	if f.inj.Duplicate() {
		f.resolveInner(at, forwarder, domain, id)
	}
	f.inj.countPassed()
	return ans
}

// resolveInner forwards one attempt to the wrapped upstream, keeping the ID
// on the fast path when both sides support it.
func (f *FaultyUpstream) resolveInner(now sim.Time, forwarder, domain string, id symtab.ID) dnssim.Answer {
	if id != symtab.None && f.innerID != nil {
		return f.innerID.ResolveID(now, forwarder, domain, id)
	}
	return f.inner.Resolve(now, forwarder, domain)
}
