package faults

import (
	"net"
	"time"

	"botmeter/internal/sim"
)

// PacketConn wraps a net.PacketConn with injected faults on the live UDP
// path — the wire-level counterpart of FaultyUpstream, shared by
// cmd/resolver and cmd/vantage behind their -chaos flags. Rates apply per
// datagram per direction:
//
//   - Blackout (relative to Injector creation): both directions swallowed.
//   - Loss: inbound datagrams are silently re-read; outbound datagrams are
//     reported written but never sent.
//   - Duplicate: outbound datagrams are sent twice.
//   - Delay: outbound datagrams sleep before sending (serialised on the
//     caller, which also reorders relative to other sockets).
//
// SERVFAIL injection is an application-layer fault and is handled by the
// daemons themselves (they consult the same Injector), not by the socket.
type PacketConn struct {
	net.PacketConn
	inj *Injector
}

// WrapPacketConn decorates c with the injector's faults. A nil injector or
// all-zero rates returns c unchanged.
func WrapPacketConn(c net.PacketConn, inj *Injector) net.PacketConn {
	if inj == nil || !inj.rates.Enabled() {
		return c
	}
	return &PacketConn{PacketConn: c, inj: inj}
}

// Injector exposes the wrapped injector (for counters).
func (p *PacketConn) Injector() *Injector { return p.inj }

// ReadFrom reads the next surviving datagram.
func (p *PacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	for {
		n, addr, err := p.PacketConn.ReadFrom(b)
		if err != nil {
			return n, addr, err
		}
		if p.inj.BlackoutNow() || p.inj.Drop() {
			continue // swallowed in transit
		}
		p.inj.countPassed()
		return n, addr, nil
	}
}

// WriteTo sends b unless the injector swallows it; duplication sends it
// twice and delay sleeps first.
func (p *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	if p.inj.BlackoutNow() || p.inj.Drop() {
		return len(b), nil // lost in transit, invisible to the sender
	}
	if d := p.inj.Delay(); d > 0 {
		sleep(d)
	}
	n, err := p.PacketConn.WriteTo(b, addr)
	if err != nil {
		return n, err
	}
	if p.inj.Duplicate() {
		if _, err := p.PacketConn.WriteTo(b, addr); err != nil {
			return n, err
		}
	}
	p.inj.countPassed()
	return n, err
}

// sleep is a test seam for the injected latency.
var sleep = func(d sim.Time) { time.Sleep(d.Duration()) }
