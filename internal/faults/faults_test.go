package faults

import (
	"net"
	"testing"
	"time"

	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
)

func TestParseSpec(t *testing.T) {
	r, err := ParseSpec("loss=0.2,dup=0.01,servfail=0.05,delay=200ms,blackout=10s+2s,blackout=1m+30s")
	if err != nil {
		t.Fatal(err)
	}
	if r.Loss != 0.2 || r.Duplicate != 0.01 || r.ServFail != 0.05 {
		t.Errorf("probabilities = %+v", r)
	}
	if r.Delay != sim.FromDuration(200*time.Millisecond) {
		t.Errorf("delay = %v", r.Delay)
	}
	want := []sim.Window{
		{Start: 10 * sim.Second, End: 12 * sim.Second},
		{Start: sim.Minute, End: sim.Minute + 30*sim.Second},
	}
	if len(r.Blackouts) != 2 || r.Blackouts[0] != want[0] || r.Blackouts[1] != want[1] {
		t.Errorf("blackouts = %v, want %v", r.Blackouts, want)
	}
	if !r.Enabled() {
		t.Error("spec should be enabled")
	}

	// Round-trip through String.
	r2, err := ParseSpec(r.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", r.String(), err)
	}
	if r2.Loss != r.Loss || r2.Delay != r.Delay || len(r2.Blackouts) != len(r.Blackouts) {
		t.Errorf("round-trip: %+v vs %+v", r2, r)
	}

	for _, empty := range []string{"", "  ", "none"} {
		r, err := ParseSpec(empty)
		if err != nil || r.Enabled() {
			t.Errorf("ParseSpec(%q) = %+v, %v", empty, r, err)
		}
	}
	for _, bad := range []string{
		"loss", "loss=2", "loss=-0.1", "loss=x", "dup=1.5", "servfail=nan",
		"delay=fast", "delay=-1s", "blackout=10s", "blackout=x+2s",
		"blackout=10s+0s", "blackout=10s+-2s", "jitter=0.5",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

// TestInjectorDeterminism: same seed and rates replay the identical decision
// stream and counters; a different seed diverges.
func TestInjectorDeterminism(t *testing.T) {
	rates := Rates{Loss: 0.3, Duplicate: 0.1, ServFail: 0.2, Delay: 50 * sim.Millisecond}
	run := func(seed uint64) (string, Counters) {
		inj := New(seed, rates)
		s := ""
		for i := 0; i < 200; i++ {
			switch i % 4 {
			case 0:
				if inj.Drop() {
					s += "L"
					if inj.LossIsResponse() {
						s += "r"
					}
				}
			case 1:
				if inj.Duplicate() {
					s += "D"
				}
			case 2:
				if inj.ServFail() {
					s += "S"
				}
			case 3:
				if d := inj.Delay(); d > 0 {
					s += "d"
				}
			}
		}
		return s, inj.Counters()
	}
	s1, c1 := run(42)
	s2, c2 := run(42)
	if s1 != s2 {
		t.Errorf("decision stream diverged:\n%q\n%q", s1, s2)
	}
	if c1 != c2 {
		t.Errorf("counters diverged: %s vs %s", c1, c2)
	}
	if c1.Lost == 0 || c1.Duplicated == 0 || c1.ServFails == 0 || c1.Delayed == 0 {
		t.Errorf("faults never fired: %s", c1)
	}
	if s3, _ := run(43); s3 == s1 {
		t.Error("different seed produced identical stream")
	}
}

func TestInjectorBlackoutWindows(t *testing.T) {
	inj := New(1, Rates{Blackouts: []sim.Window{{Start: 10 * sim.Second, End: 20 * sim.Second}}})
	for _, tc := range []struct {
		at   sim.Time
		want bool
	}{
		{0, false}, {10 * sim.Second, true}, {19*sim.Second + 999, true},
		{20 * sim.Second, false}, {sim.Minute, false},
	} {
		if got := inj.Blackout(tc.at); got != tc.want {
			t.Errorf("Blackout(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	if c := inj.Counters(); c.Blackholed != 2 {
		t.Errorf("blackholed = %d, want 2", c.Blackholed)
	}
}

// recordingUpstream counts resolves and answers NX for everything — a
// minimal stand-in for the simulator's border.
type recordingUpstream struct {
	resolves  int
	lastT     sim.Time
	lastQuery string
}

func (u *recordingUpstream) Resolve(now sim.Time, forwarder, domain string) dnssim.Answer {
	u.resolves++
	u.lastT = now
	u.lastQuery = domain
	return dnssim.Answer{NX: true}
}

func TestFaultyUpstreamPassThrough(t *testing.T) {
	inner := &recordingUpstream{}
	if u := NewFaultyUpstream(inner, nil); u != dnssim.Upstream(inner) {
		t.Error("nil injector should return inner unchanged")
	}
	if u := NewFaultyUpstream(inner, New(1, Rates{})); u != dnssim.Upstream(inner) {
		t.Error("zero rates should return inner unchanged")
	}
}

// TestFaultyUpstreamLossSemantics: with loss=1 every resolve fails, and the
// 50/50 response-loss coin means the inner upstream records roughly half
// the queries — deterministically for a fixed seed.
func TestFaultyUpstreamLossSemantics(t *testing.T) {
	run := func(seed uint64) (int, Counters) {
		inner := &recordingUpstream{}
		inj := New(seed, Rates{Loss: 1})
		u := NewFaultyUpstream(inner, inj)
		for i := 0; i < 100; i++ {
			if ans := u.Resolve(sim.Time(i), "local0", "x.example"); !ans.ServFail {
				t.Fatal("loss=1 must ServFail every resolve")
			}
		}
		return inner.resolves, inj.Counters()
	}
	n1, c1 := run(7)
	if c1.Lost != 100 {
		t.Errorf("lost = %d, want 100", c1.Lost)
	}
	if n1 == 0 || n1 == 100 {
		t.Errorf("inner resolves = %d, want strictly between 0 and 100 (response-loss coin)", n1)
	}
	n2, c2 := run(7)
	if n1 != n2 || c1 != c2 {
		t.Errorf("replay diverged: %d/%s vs %d/%s", n1, c1, n2, c2)
	}
}

func TestFaultyUpstreamServFailRecords(t *testing.T) {
	inner := &recordingUpstream{}
	u := NewFaultyUpstream(inner, New(1, Rates{ServFail: 1}))
	if ans := u.Resolve(5, "local0", "y.example"); !ans.ServFail {
		t.Error("servfail=1 must ServFail")
	}
	// Unlike loss-of-query, an injected SERVFAIL means the border saw the
	// lookup: the observation exists even though resolution failed.
	if inner.resolves != 1 {
		t.Errorf("inner resolves = %d, want 1", inner.resolves)
	}
}

func TestFaultyUpstreamBlackout(t *testing.T) {
	inner := &recordingUpstream{}
	u := NewFaultyUpstream(inner, New(1, Rates{Blackouts: []sim.Window{{Start: 0, End: sim.Minute}}}))
	if ans := u.Resolve(30*sim.Second, "local0", "z.example"); !ans.ServFail {
		t.Error("blackout must ServFail")
	}
	if inner.resolves != 0 {
		t.Error("blackout must record nothing at the vantage point")
	}
	if ans := u.Resolve(2*sim.Minute, "local0", "z.example"); ans.ServFail {
		t.Error("after the window the upstream must answer")
	}
}

func TestFaultyUpstreamDelayAndDuplicate(t *testing.T) {
	inner := &recordingUpstream{}
	inj := New(3, Rates{Delay: sim.Second, Duplicate: 1})
	u := NewFaultyUpstream(inner, inj)
	ans := u.Resolve(1000, "local0", "d.example")
	if ans.ServFail || !ans.NX {
		t.Errorf("answer = %+v", ans)
	}
	if inner.resolves != 2 {
		t.Errorf("duplicate=1: inner resolves = %d, want 2", inner.resolves)
	}
	if inner.lastT < 1000 || inner.lastT > 1000+sim.Second {
		t.Errorf("observed timestamp %d outside [1000, %d]", inner.lastT, 1000+sim.Second)
	}
}

// TestPacketConnLoopback exercises the wire-level wrapper: with loss=1 on
// the receiver every datagram is swallowed; with zero rates the wrapper is
// elided entirely.
func TestPacketConnLoopback(t *testing.T) {
	if c := WrapPacketConn(nil, nil); c != nil {
		t.Error("nil injector should return conn unchanged")
	}

	recv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer recv.Close()
	send, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer send.Close()

	// Outbound loss: WriteTo claims success but nothing arrives.
	lossy := WrapPacketConn(send, New(1, Rates{Loss: 1}))
	if n, err := lossy.WriteTo([]byte("doomed"), recv.LocalAddr()); err != nil || n != 6 {
		t.Fatalf("WriteTo = %d, %v (loss must be invisible to the sender)", n, err)
	}
	recv.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	if n, _, err := recv.ReadFrom(buf); err == nil {
		t.Fatalf("swallowed datagram arrived: %q", buf[:n])
	}

	// Duplication: one WriteTo, two arrivals.
	dup := WrapPacketConn(send, New(1, Rates{Duplicate: 1}))
	if _, err := dup.WriteTo([]byte("twice"), recv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		recv.SetReadDeadline(time.Now().Add(time.Second))
		n, _, err := recv.ReadFrom(buf)
		if err != nil {
			t.Fatalf("copy %d never arrived: %v", i+1, err)
		}
		if string(buf[:n]) != "twice" {
			t.Errorf("copy %d = %q", i+1, buf[:n])
		}
	}

	// Inbound loss: the reader's wrapper swallows the datagram and keeps
	// reading until the deadline.
	deaf := WrapPacketConn(recv, New(1, Rates{Loss: 1}))
	if _, err := send.WriteTo([]byte("unheard"), recv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	recv.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if n, _, err := deaf.ReadFrom(buf); err == nil {
		t.Fatalf("dropped inbound datagram surfaced: %q", buf[:n])
	}
}

// TestPacketConnDelaySleeps verifies injected latency goes through the
// sleep seam rather than blocking the test for real.
func TestPacketConnDelaySleeps(t *testing.T) {
	var slept sim.Time
	orig := sleep
	sleep = func(d sim.Time) { slept += d }
	defer func() { sleep = orig }()

	recv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer recv.Close()
	send, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer send.Close()

	slow := WrapPacketConn(send, New(9, Rates{Delay: sim.Hour}))
	for i := 0; i < 8 && slept == 0; i++ {
		if _, err := slow.WriteTo([]byte("late"), recv.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	if slept == 0 {
		t.Error("delay never drew nonzero latency in 8 datagrams")
	}
	if slept > 8*sim.Hour {
		t.Errorf("slept %v, exceeds the configured maximum", slept)
	}
}
