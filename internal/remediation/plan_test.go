package remediation

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"botmeter/internal/core"
	"botmeter/internal/sim"
)

func TestBuildOrdersByDensity(t *testing.T) {
	sites := []Site{
		{Server: "big-slow", EstimatedBots: 100, Hosts: 10000}, // 0.01/host
		{Server: "small-hot", EstimatedBots: 50, Hosts: 100},   // 0.5/host
		{Server: "medium", EstimatedBots: 80, Hosts: 1000},     // 0.08/host
		{Server: "clean", EstimatedBots: 0, Hosts: 500},        // dropped
	}
	plan, err := Build(sites, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 3 {
		t.Fatalf("steps = %d, want 3 (clean site dropped)", len(plan.Steps))
	}
	wantOrder := []string{"small-hot", "medium", "big-slow"}
	for i, w := range wantOrder {
		if plan.Steps[i].Site.Server != w {
			t.Errorf("step %d = %s, want %s", i, plan.Steps[i].Site.Server, w)
		}
	}
	// Hand-check the objective: durations 0.2, 2, 20 days.
	want := 50*0.2 + 80*2.2 + 100*22.2
	if math.Abs(plan.TotalBotDays-want) > 1e-9 {
		t.Errorf("objective = %v, want %v", plan.TotalBotDays, want)
	}
	// Timeline is contiguous.
	for i := 1; i < len(plan.Steps); i++ {
		if plan.Steps[i].StartDay != plan.Steps[i-1].EndDay {
			t.Error("timeline has gaps")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := Build([]Site{{Server: "x", EstimatedBots: 1, Hosts: 0}}, 10); err == nil {
		t.Error("zero hosts should fail")
	}
}

// TestWSPTOptimalProperty: the density order never loses to a random
// permutation of the same sites.
func TestWSPTOptimalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 2 + rng.IntN(8)
		sites := make([]Site, n)
		for i := range sites {
			sites[i] = Site{
				Server:        string(rune('a' + i)),
				EstimatedBots: 1 + float64(rng.IntN(100)),
				Hosts:         1 + rng.IntN(5000),
			}
		}
		plan, err := Build(sites, 100)
		if err != nil {
			return false
		}
		// Compare against a few random permutations.
		for trial := 0; trial < 5; trial++ {
			perm := make([]Site, n)
			copy(perm, sites)
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			if Evaluate(perm, 100) < plan.TotalBotDays-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateMatchesBuildForPlanOrder(t *testing.T) {
	sites := []Site{
		{Server: "a", EstimatedBots: 10, Hosts: 100},
		{Server: "b", EstimatedBots: 5, Hosts: 300},
	}
	plan, err := Build(sites, 100)
	if err != nil {
		t.Fatal(err)
	}
	order := make([]Site, len(plan.Steps))
	for i, st := range plan.Steps {
		order[i] = st.Site
	}
	if got := Evaluate(order, 100); math.Abs(got-plan.TotalBotDays) > 1e-9 {
		t.Errorf("Evaluate = %v, plan objective = %v", got, plan.TotalBotDays)
	}
}

func TestFromLandscape(t *testing.T) {
	land := &core.Landscape{
		Servers: []core.ServerEstimate{
			{Server: "local-00", Population: 12},
			{Server: "local-01", Population: 3},
		},
	}
	sites, err := FromLandscape(land, map[string]int{"local-00": 800}, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 2 {
		t.Fatalf("sites = %d", len(sites))
	}
	if sites[0].Hosts != 800 || sites[1].Hosts != 250 {
		t.Errorf("host counts = %d, %d", sites[0].Hosts, sites[1].Hosts)
	}
	if _, err := FromLandscape(nil, nil, 1); err == nil {
		t.Error("nil landscape should fail")
	}
}

func TestPlanString(t *testing.T) {
	plan, err := Build([]Site{{Server: "s1", EstimatedBots: 9, Hosts: 90}}, 30)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.String()
	for _, want := range []string{"s1", "bot-days", "9.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan render missing %q:\n%s", want, out)
		}
	}
}
