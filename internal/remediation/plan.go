// Package remediation turns a BotMeter landscape into an actionable
// clean-up schedule — the "prioritize the remediation efforts" step the
// paper's introduction motivates. Given per-site infection estimates and a
// response team's vetting capacity, it orders sites to minimise cumulative
// bot-exposure (bot-days: the integral of remaining infections over time).
//
// The optimal order is the classic weighted-shortest-processing-time rule:
// descending estimated-bots per vetting-hour. An exchange argument shows
// any other order can be improved by swapping an adjacent out-of-order
// pair, and the package's property tests verify the rule beats random
// permutations on generated instances.
package remediation

import (
	"fmt"
	"sort"
	"strings"

	"botmeter/internal/core"
)

// Site is one remediation unit: the network behind one local DNS server.
type Site struct {
	// Server identifies the site (the forwarding DNS server).
	Server string
	// EstimatedBots is BotMeter's population estimate for the site.
	EstimatedBots float64
	// Hosts is the number of machines that must be vetted to clean the
	// site (the paper's cost of "vetting the DNS behavior of each
	// individual device").
	Hosts int
}

// Step is one scheduled site visit.
type Step struct {
	Site Site
	// StartDay and EndDay bound the visit on the plan's timeline.
	StartDay, EndDay float64
	// BotDaysIncurred is this site's infections × its wait-plus-clean time.
	BotDaysIncurred float64
}

// Plan is a complete remediation schedule.
type Plan struct {
	Steps []Step
	// TotalBotDays is the objective value: Σ site bots × completion day.
	TotalBotDays float64
	// HostsPerDay is the capacity the plan was built for.
	HostsPerDay float64
}

// Build produces the bot-day-optimal schedule for the given vetting
// capacity (hosts per day). Sites with no estimated infection are dropped.
func Build(sites []Site, hostsPerDay float64) (*Plan, error) {
	if hostsPerDay <= 0 {
		return nil, fmt.Errorf("remediation: capacity must be positive, got %v", hostsPerDay)
	}
	work := make([]Site, 0, len(sites))
	for _, s := range sites {
		if s.Hosts <= 0 {
			return nil, fmt.Errorf("remediation: site %q has %d hosts", s.Server, s.Hosts)
		}
		if s.EstimatedBots > 0 {
			work = append(work, s)
		}
	}
	// Weighted-shortest-processing-time: bots/hosts descending; ties broken
	// by name for determinism.
	sort.SliceStable(work, func(i, j int) bool {
		di := work[i].EstimatedBots / float64(work[i].Hosts)
		dj := work[j].EstimatedBots / float64(work[j].Hosts)
		if di != dj {
			return di > dj
		}
		return work[i].Server < work[j].Server
	})
	plan := &Plan{HostsPerDay: hostsPerDay}
	now := 0.0
	for _, s := range work {
		duration := float64(s.Hosts) / hostsPerDay
		step := Step{
			Site:            s,
			StartDay:        now,
			EndDay:          now + duration,
			BotDaysIncurred: s.EstimatedBots * (now + duration),
		}
		now = step.EndDay
		plan.Steps = append(plan.Steps, step)
		plan.TotalBotDays += step.BotDaysIncurred
	}
	return plan, nil
}

// Evaluate computes the bot-day objective of an arbitrary site order under
// the given capacity (used by tests and what-if comparisons).
func Evaluate(order []Site, hostsPerDay float64) float64 {
	now := 0.0
	total := 0.0
	for _, s := range order {
		now += float64(s.Hosts) / hostsPerDay
		total += s.EstimatedBots * now
	}
	return total
}

// FromLandscape derives sites from a landscape plus per-server host
// counts; servers missing from hostCounts use defaultHosts.
func FromLandscape(l *core.Landscape, hostCounts map[string]int, defaultHosts int) ([]Site, error) {
	if l == nil {
		return nil, fmt.Errorf("remediation: nil landscape")
	}
	if defaultHosts <= 0 {
		defaultHosts = 1
	}
	sites := make([]Site, 0, len(l.Servers))
	for _, s := range l.Servers {
		hosts := hostCounts[s.Server]
		if hosts <= 0 {
			hosts = defaultHosts
		}
		sites = append(sites, Site{
			Server:        s.Server,
			EstimatedBots: s.Population,
			Hosts:         hosts,
		})
	}
	return sites, nil
}

// String renders the schedule.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Remediation plan — %.0f hosts/day, objective %.1f bot-days\n",
		p.HostsPerDay, p.TotalBotDays)
	fmt.Fprintf(&b, "%-4s %-12s %10s %8s %12s %12s\n",
		"seq", "server", "est. bots", "hosts", "day window", "bot-days")
	for i, st := range p.Steps {
		fmt.Fprintf(&b, "%-4d %-12s %10.1f %8d %5.1f – %5.1f %12.1f\n",
			i+1, st.Site.Server, st.Site.EstimatedBots, st.Site.Hosts,
			st.StartDay, st.EndDay, st.BotDaysIncurred)
	}
	return b.String()
}
