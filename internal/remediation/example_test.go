package remediation_test

import (
	"fmt"

	"botmeter/internal/remediation"
)

// ExampleBuild schedules three infected sites for a team that can vet 500
// hosts per day: the densest infection (bots per vetting effort) goes
// first, minimising cumulative bot-exposure.
func ExampleBuild() {
	sites := []remediation.Site{
		{Server: "datacenter", EstimatedBots: 100, Hosts: 10000},
		{Server: "branch-7", EstimatedBots: 50, Hosts: 100},
		{Server: "campus", EstimatedBots: 80, Hosts: 1000},
	}
	plan, _ := remediation.Build(sites, 500)
	for i, step := range plan.Steps {
		fmt.Printf("%d. %-10s days %4.1f–%4.1f\n",
			i+1, step.Site.Server, step.StartDay, step.EndDay)
	}
	fmt.Printf("objective: %.0f bot-days\n", plan.TotalBotDays)
	// Output:
	// 1. branch-7   days  0.0– 0.2
	// 2. campus     days  0.2– 2.2
	// 3. datacenter days  2.2–22.2
	// objective: 2406 bot-days
}
