package trace

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"
)

// TailFile is TailReader with file-lifecycle awareness: it survives the
// two things that happen to long-lived capture files in production —
// truncation in place (an operator zeroing the file to reclaim space) and
// rotation (the file renamed away and a fresh one created at the same
// path). A plain TailReader holds a file descriptor whose offset points
// past the new end, so it blocks forever on the old inode; TailFile
// detects both cases at its EOF poll, reopens, and resumes from the top of
// the new content. This is `tail -F` as a composable reader.
//
// Resynchronisation: a rotation can land mid-line — TailFile may have
// already delivered the head of a record whose tail vanished with the old
// file. It injects a single synthetic newline before the new content, so
// the line framing above it sees the orphaned head as its own (malformed)
// line — skipped and counted under lenient parsing — instead of gluing it
// to the first line of the new file and silently corrupting one record.
//
// Records from before a truncation are gone: TailFile restores liveness,
// not history. The landscape keeps the state it already built from them;
// the reread starts at the new beginning of the file.
type TailFile struct {
	ctx  context.Context
	path string
	poll time.Duration

	// OnRotate, when non-nil, is invoked once per detected truncation or
	// replacement (metrics hook). Set before the first Read.
	OnRotate func()

	f         *os.File
	offset    int64
	pendingNL bool
	rotations uint64
}

// NewTailFile opens path for tailing from the start. poll <= 0 defaults to
// 200ms; a nil ctx means tail forever.
func NewTailFile(ctx context.Context, path string, poll time.Duration) (*TailFile, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	if ctx == nil {
		ctx = context.Background()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &TailFile{ctx: ctx, path: path, poll: poll, f: f}, nil
}

// Rotations reports how many truncations/replacements have been survived.
func (t *TailFile) Rotations() uint64 { return t.rotations }

// Close releases the current file descriptor.
func (t *TailFile) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}

// Read implements io.Reader with EOF-as-wait semantics and rotation
// recovery. Cancellation surfaces EOF, terminating the parser cleanly.
func (t *TailFile) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		if t.pendingNL {
			t.pendingNL = false
			p[0] = '\n'
			return 1, nil
		}
		if t.f != nil {
			n, err := t.f.Read(p)
			if n > 0 {
				t.offset += int64(n)
				return n, nil
			}
			if err != nil && err != io.EOF {
				return 0, err
			}
		}
		if err := t.check(); err != nil {
			return 0, err
		}
		if t.pendingNL {
			continue // rotation detected: deliver the resync newline now
		}
		select {
		case <-t.ctx.Done():
			return 0, io.EOF
		case <-time.After(t.poll):
		}
	}
}

// check runs at each EOF: detect in-place truncation (current size below
// our offset), replacement (path now names a different inode) or removal
// (wait for the path to reappear), and reopen as needed.
func (t *TailFile) check() error {
	if t.f == nil {
		f, err := os.Open(t.path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil // still rotating; keep polling
			}
			return fmt.Errorf("trace: reopening %s: %w", t.path, err)
		}
		t.f = f
		t.offset = 0
		return nil
	}
	if fi, err := t.f.Stat(); err == nil && fi.Size() < t.offset {
		// Truncated in place: rewind to the top of the new content.
		if _, err := t.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("trace: rewinding %s: %w", t.path, err)
		}
		t.offset = 0
		t.rotated()
		return nil
	}
	di, err := os.Stat(t.path)
	if err != nil {
		if os.IsNotExist(err) {
			// Renamed away with no replacement yet: drop the old inode
			// (it can only shrink our world) and wait for the new file.
			t.f.Close()
			t.f = nil
			t.rotated()
			return nil
		}
		return fmt.Errorf("trace: stat %s: %w", t.path, err)
	}
	if fi, err2 := t.f.Stat(); err2 == nil && !os.SameFile(fi, di) {
		// Replaced: reopen the new inode from the start.
		t.f.Close()
		f, err := os.Open(t.path)
		if err != nil {
			t.f = nil
			if os.IsNotExist(err) {
				t.rotated()
				return nil
			}
			return fmt.Errorf("trace: reopening %s: %w", t.path, err)
		}
		t.f = f
		t.offset = 0
		t.rotated()
	}
	return nil
}

// rotated records one survived rotation and arms the resync newline.
func (t *TailFile) rotated() {
	t.rotations++
	t.pendingNL = true
	if t.OnRotate != nil {
		t.OnRotate()
	}
}
