package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"botmeter/internal/sim"
)

func sampleObserved() Observed {
	return Observed{
		{T: 300, Server: "local-01", Domain: "b.com"},
		{T: 100, Server: "local-00", Domain: "a.com"},
		{T: 200, Server: "local-00", Domain: "a.com"},
		{T: 400, Server: "local-01", Domain: "c.com"},
	}
}

func TestObservedSortStable(t *testing.T) {
	o := sampleObserved()
	o.Sort()
	for i := 1; i < len(o); i++ {
		if o[i].T < o[i-1].T {
			t.Fatalf("not sorted at %d: %v", i, o)
		}
	}
}

func TestObservedWindow(t *testing.T) {
	o := sampleObserved()
	got := o.Window(sim.Window{Start: 150, End: 400})
	if len(got) != 2 {
		t.Fatalf("window kept %d records, want 2 (end is exclusive)", len(got))
	}
}

func TestObservedByServerAndServers(t *testing.T) {
	o := sampleObserved()
	groups := o.ByServer()
	if len(groups["local-00"]) != 2 || len(groups["local-01"]) != 2 {
		t.Errorf("groups: %v", groups)
	}
	servers := o.Servers()
	if len(servers) != 2 || servers[0] != "local-00" || servers[1] != "local-01" {
		t.Errorf("servers = %v", servers)
	}
}

func TestObservedDomains(t *testing.T) {
	d := sampleObserved().Domains()
	want := []string{"a.com", "b.com", "c.com"}
	if len(d) != len(want) {
		t.Fatalf("domains = %v", d)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("domains[%d] = %q, want %q", i, d[i], want[i])
		}
	}
}

func TestObservedFilterTruncate(t *testing.T) {
	o := Observed{{T: 1234, Server: "s", Domain: "keep.com"}, {T: 2345, Server: "s", Domain: "drop.com"}}
	kept := o.FilterDomains(func(d string) bool { return d == "keep.com" })
	if len(kept) != 1 || kept[0].Domain != "keep.com" {
		t.Errorf("filter = %v", kept)
	}
	tr := o.Truncate(1000)
	if tr[0].T != 1000 || tr[1].T != 2000 {
		t.Errorf("truncate = %v", tr)
	}
	// Original untouched.
	if o[0].T != 1234 {
		t.Error("Truncate must not mutate the input")
	}
}

func TestRawDistinctClients(t *testing.T) {
	r := Raw{
		{T: 1, Client: "10.0.0.1", Domain: "x.com"},
		{T: 2, Client: "10.0.0.2", Domain: "x.com"},
		{T: 3, Client: "10.0.0.1", Domain: "y.com"},
	}
	if got := r.DistinctClients(); got != 2 {
		t.Errorf("DistinctClients = %d, want 2", got)
	}
}

func TestRawWindowFilterSort(t *testing.T) {
	r := Raw{
		{T: 30, Client: "c", Domain: "b.com", NX: true},
		{T: 10, Client: "c", Domain: "a.com"},
	}
	r.Sort()
	if r[0].T != 10 {
		t.Error("raw sort failed")
	}
	if got := r.Window(sim.Window{Start: 0, End: 20}); len(got) != 1 {
		t.Errorf("window = %v", got)
	}
	if got := r.FilterDomains(func(d string) bool { return d == "b.com" }); len(got) != 1 || !got[0].NX {
		t.Errorf("filter = %v", got)
	}
}

func TestObservedCSVRoundTrip(t *testing.T) {
	o := sampleObserved()
	var buf bytes.Buffer
	if err := WriteObservedCSV(&buf, o); err != nil {
		t.Fatal(err)
	}
	back, err := ReadObservedCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(o) {
		t.Fatalf("round trip length %d, want %d", len(back), len(o))
	}
	for i := range o {
		if back[i] != o[i] {
			t.Errorf("record %d: got %+v, want %+v", i, back[i], o[i])
		}
	}
}

func TestRawCSVRoundTrip(t *testing.T) {
	r := Raw{
		{T: 5, Client: "10.1.2.3", Server: "local-00", Domain: "evil.com", NX: true},
		{T: 7, Client: "10.1.2.4", Server: "local-01", Domain: "good.com", NX: false},
	}
	var buf bytes.Buffer
	if err := WriteRawCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRawCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != r[0] || back[1] != r[1] {
		t.Errorf("round trip = %+v", back)
	}
}

func TestObservedJSONLRoundTrip(t *testing.T) {
	o := sampleObserved()
	var buf bytes.Buffer
	if err := WriteObservedJSONL(&buf, o); err != nil {
		t.Fatal(err)
	}
	back, err := ReadObservedJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(o) {
		t.Fatalf("length %d, want %d", len(back), len(o))
	}
	for i := range o {
		if back[i] != o[i] {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestRawJSONLRoundTrip(t *testing.T) {
	r := Raw{{T: 5, Client: "c", Server: "s", Domain: "d.com", NX: true}}
	var buf bytes.Buffer
	if err := WriteRawJSONL(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRawJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != r[0] {
		t.Errorf("round trip = %+v", back)
	}
}

func TestReadObservedCSVErrors(t *testing.T) {
	if _, err := ReadObservedCSV(bytes.NewBufferString("t_ms,server,domain\nnot-a-number,s,d\n")); err == nil {
		t.Error("bad timestamp should error")
	}
	if got, err := ReadObservedCSV(bytes.NewBufferString("")); err != nil || got != nil {
		t.Errorf("empty input: %v, %v", got, err)
	}
}

func TestReadRawCSVErrors(t *testing.T) {
	if _, err := ReadRawCSV(bytes.NewBufferString("h\nbad-row\n")); err == nil {
		t.Error("short row should error")
	}
	if _, err := ReadRawCSV(bytes.NewBufferString("t_ms,client,server,domain,nx\n1,c,s,d,maybe\n")); err == nil {
		t.Error("bad bool should error")
	}
}

func TestObservedCSVRoundTripProperty(t *testing.T) {
	f := func(ts []uint32, which []bool) bool {
		var o Observed
		for i, tv := range ts {
			srv := "local-00"
			if i < len(which) && which[i] {
				srv = "local-01"
			}
			o = append(o, ObservedRecord{T: sim.Time(tv), Server: srv, Domain: "dom.com"})
		}
		var buf bytes.Buffer
		if err := WriteObservedCSV(&buf, o); err != nil {
			return false
		}
		back, err := ReadObservedCSV(&buf)
		if err != nil || len(back) != len(o) {
			return false
		}
		for i := range o {
			if back[i] != o[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
