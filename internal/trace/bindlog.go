package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"botmeter/internal/sim"
)

// BIND query-log ingestion. Enterprises that cannot deploy a wire tap
// usually already have resolver query logs; BIND's `querylog` category is
// the de-facto format:
//
//	01-Jul-2026 12:00:01.123 client 10.0.0.1#53124 (evil.example): query: evil.example IN A +E(0)K (192.0.2.53)
//
// Older BIND 9 versions omit the parenthesised qname after the client
// field; both forms are accepted. The client host becomes the forwarding-
// server identity (at a border resolver, clients ARE the downstream
// forwarders), and timestamps are converted to milliseconds since
// ReferenceTime so the rest of the pipeline can treat them as virtual
// time.

// BINDLogOptions controls parsing.
type BINDLogOptions struct {
	// ReferenceTime is the zero point of the virtual clock. If zero, the
	// timestamp of the first parsed record is used (so traces start near
	// t=0 and epoch boundaries align to the reference's midnight).
	ReferenceTime time.Time
	// Location resolves the log's local timestamps (BIND logs have no
	// zone); nil means UTC.
	Location *time.Location
	// Strict makes unparseable lines an error instead of being skipped.
	Strict bool
}

// bindTimeLayout is BIND's default query-log timestamp layout.
const bindTimeLayout = "02-Jan-2006 15:04:05.000"

// ReadBINDLog parses a BIND query log into an observable dataset.
func ReadBINDLog(r io.Reader, opts BINDLogOptions) (Observed, error) {
	loc := opts.Location
	if loc == nil {
		loc = time.UTC
	}
	var out Observed
	ref := opts.ReferenceTime
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		rec, ts, err := parseBINDLine(line, loc)
		if err != nil {
			if opts.Strict {
				return nil, fmt.Errorf("trace: bind log line %d: %w", lineNo, err)
			}
			continue
		}
		if ref.IsZero() {
			// Align the reference to the first record's midnight so epoch
			// arithmetic (t / Day) matches calendar days.
			ref = time.Date(ts.Year(), ts.Month(), ts.Day(), 0, 0, 0, 0, loc)
		}
		rec.T = simTimeSince(ref, ts)
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: bind log: %w", err)
	}
	return out, nil
}

// parseBINDLine extracts (server, domain, timestamp) from one query-log
// line.
func parseBINDLine(line string, loc *time.Location) (ObservedRecord, time.Time, error) {
	// Timestamp: first two space-separated fields.
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return ObservedRecord{}, time.Time{}, fmt.Errorf("too few fields")
	}
	ts, err := time.ParseInLocation(bindTimeLayout, fields[0]+" "+fields[1], loc)
	if err != nil {
		return ObservedRecord{}, time.Time{}, fmt.Errorf("timestamp: %w", err)
	}
	// Locate "client <addr>#<port>".
	clientIdx := -1
	for i, f := range fields {
		if f == "client" && i+1 < len(fields) {
			clientIdx = i + 1
			break
		}
	}
	if clientIdx < 0 {
		return ObservedRecord{}, time.Time{}, fmt.Errorf("no client field")
	}
	addr := fields[clientIdx]
	if h := strings.IndexByte(addr, '#'); h >= 0 {
		addr = addr[:h]
	}
	// Locate "query:" then the qname.
	queryIdx := -1
	for i, f := range fields {
		if f == "query:" && i+1 < len(fields) {
			queryIdx = i + 1
			break
		}
	}
	if queryIdx < 0 {
		return ObservedRecord{}, time.Time{}, fmt.Errorf("no query field")
	}
	domain := strings.ToLower(strings.TrimSuffix(fields[queryIdx], "."))
	if domain == "" {
		return ObservedRecord{}, time.Time{}, fmt.Errorf("empty qname")
	}
	return ObservedRecord{Server: addr, Domain: domain}, ts, nil
}

// simTimeSince converts a wall timestamp to virtual milliseconds.
func simTimeSince(ref, ts time.Time) sim.Time {
	return sim.FromDuration(ts.Sub(ref))
}
