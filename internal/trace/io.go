package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"botmeter/internal/sim"
)

// ReadOptions selects how readers treat malformed input. The zero value is
// strict: the first malformed line aborts the read with a positional error,
// the safe default for curated experiment artifacts. Lenient mode is for
// operational data — live captures with torn final lines after a crash,
// log rotation glue, or the odd corrupt record — where losing one line must
// not poison the other millions.
type ReadOptions struct {
	// Lenient skips malformed lines instead of failing, counting them in
	// ReadResult.Skipped.
	Lenient bool
}

// ReadResult reports what a reader consumed.
type ReadResult struct {
	// Records is the number of well-formed records returned.
	Records int
	// Skipped is the number of malformed lines dropped (always 0 in
	// strict mode, which errors instead).
	Skipped int
}

// maxLineBytes bounds a single JSONL/CSV line; DNS names are ≤255 bytes so
// even generous framing stays far below this.
const maxLineBytes = 1 << 20

// WriteRawCSV serialises a raw dataset as CSV with a header row.
func WriteRawCSV(w io.Writer, recs Raw) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_ms", "client", "server", "domain", "nx"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, r := range recs {
		row := []string{
			strconv.FormatInt(int64(r.T), 10), r.Client, r.Server, r.Domain,
			strconv.FormatBool(r.NX),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRawCSV parses a raw dataset written by WriteRawCSV (strict).
func ReadRawCSV(r io.Reader) (Raw, error) {
	out, _, err := ReadRawCSVOpts(r, ReadOptions{})
	return out, err
}

// ReadRawCSVOpts parses a raw dataset with the given malformed-line policy.
func ReadRawCSVOpts(r io.Reader, opt ReadOptions) (Raw, ReadResult, error) {
	var out Raw
	res, err := readCSV(r, 5, opt, func(row []string, line int) error {
		rec, err := parseRawRow(row, line)
		if err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, res, err
	}
	res.Records = len(out)
	return out, res, nil
}

func parseRawRow(row []string, line int) (RawRecord, error) {
	t, err := strconv.ParseInt(row[0], 10, 64)
	if err != nil {
		return RawRecord{}, fmt.Errorf("trace: row %d timestamp: %w", line, err)
	}
	nx, err := strconv.ParseBool(row[4])
	if err != nil {
		return RawRecord{}, fmt.Errorf("trace: row %d nx flag: %w", line, err)
	}
	return RawRecord{T: sim.Time(t), Client: row[1], Server: row[2], Domain: row[3], NX: nx}, nil
}

// WriteObservedCSV serialises an observable dataset as CSV with a header.
func WriteObservedCSV(w io.Writer, recs Observed) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_ms", "server", "domain"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, r := range recs {
		if err := cw.Write([]string{strconv.FormatInt(int64(r.T), 10), r.Server, r.Domain}); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadObservedCSV parses an observable dataset written by WriteObservedCSV
// (strict).
func ReadObservedCSV(r io.Reader) (Observed, error) {
	out, _, err := ReadObservedCSVOpts(r, ReadOptions{})
	return out, err
}

// ReadObservedCSVOpts parses an observable dataset with the given
// malformed-line policy. It is the materialising form of StreamObservedCSV.
func ReadObservedCSVOpts(r io.Reader, opt ReadOptions) (Observed, ReadResult, error) {
	var out Observed
	res, err := StreamObservedCSV(r, opt, func(rec ObservedRecord) error {
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, res, err
	}
	res.Records = len(out)
	return out, res, nil
}

// readCSV drives per-row parsing with shared strict/lenient handling. The
// header row is consumed (and not validated — files written by older
// versions keep working); each subsequent row must have wantFields fields
// and satisfy parse.
func readCSV(r io.Reader, wantFields int, opt ReadOptions, parse func(row []string, line int) error) (ReadResult, error) {
	var res ReadResult
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // field-count errors are ours to classify
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return res, nil
		}
		line++
		if err != nil {
			if opt.Lenient {
				res.Skipped++
				continue
			}
			return res, fmt.Errorf("trace: read csv: %w", err)
		}
		if line == 1 {
			continue // header
		}
		if len(row) != wantFields {
			if opt.Lenient {
				res.Skipped++
				continue
			}
			return res, fmt.Errorf("trace: row %d has %d fields, want %d", line, len(row), wantFields)
		}
		if err := parse(row, line); err != nil {
			if opt.Lenient {
				res.Skipped++
				continue
			}
			return res, err
		}
		res.Records++
	}
}

// WriteObservedJSONL serialises the dataset as JSON lines.
func WriteObservedJSONL(w io.Writer, recs Observed) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return bw.Flush()
}

// ReadObservedJSONL parses a JSON-lines observable dataset (strict).
func ReadObservedJSONL(r io.Reader) (Observed, error) {
	out, _, err := ReadObservedJSONLOpts(r, ReadOptions{})
	return out, err
}

// ReadObservedJSONLOpts parses a JSON-lines observable dataset with the
// given malformed-line policy. In lenient mode a torn final line (crash
// mid-append, no trailing newline, invalid JSON) and garbage lines are
// skipped and counted; records lacking a domain are treated as malformed
// too, since truncation can leave syntactically valid but incomplete JSON.
func ReadObservedJSONLOpts(r io.Reader, opt ReadOptions) (Observed, ReadResult, error) {
	var out Observed
	res, err := StreamObservedJSONL(r, opt, func(rec ObservedRecord) error {
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, res, err
	}
	res.Records = len(out)
	return out, res, nil
}

// WriteRawJSONL serialises the raw dataset as JSON lines.
func WriteRawJSONL(w io.Writer, recs Raw) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return bw.Flush()
}

// ReadRawJSONL parses a JSON-lines raw dataset (strict).
func ReadRawJSONL(r io.Reader) (Raw, error) {
	out, _, err := ReadRawJSONLOpts(r, ReadOptions{})
	return out, err
}

// ReadRawJSONLOpts parses a JSON-lines raw dataset with the given
// malformed-line policy.
func ReadRawJSONLOpts(r io.Reader, opt ReadOptions) (Raw, ReadResult, error) {
	var out Raw
	res, err := readJSONL(r, opt, func(data []byte, line int) error {
		var rec RawRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("trace: line %d: %w", line, err)
		}
		if rec.Domain == "" {
			return fmt.Errorf("trace: line %d: record has no domain", line)
		}
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, res, err
	}
	res.Records = len(out)
	return out, res, nil
}

// readJSONL scans line by line (so lenient mode can resynchronise after
// garbage, which json.Decoder cannot) and applies the strict/lenient
// policy around parse. Blank lines are ignored without counting.
func readJSONL(r io.Reader, opt ReadOptions, parse func(data []byte, line int) error) (ReadResult, error) {
	var res ReadResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	line := 0
	for sc.Scan() {
		line++
		data := sc.Bytes()
		if len(strings.TrimSpace(string(data))) == 0 {
			continue
		}
		if err := parse(data, line); err != nil {
			if opt.Lenient {
				res.Skipped++
				continue
			}
			return res, err
		}
		res.Records++
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("trace: scan: %w", err)
	}
	return res, nil
}
