package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"botmeter/internal/sim"
)

// WriteRawCSV serialises a raw dataset as CSV with a header row.
func WriteRawCSV(w io.Writer, recs Raw) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_ms", "client", "server", "domain", "nx"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, r := range recs {
		row := []string{
			strconv.FormatInt(int64(r.T), 10), r.Client, r.Server, r.Domain,
			strconv.FormatBool(r.NX),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRawCSV parses a raw dataset written by WriteRawCSV.
func ReadRawCSV(r io.Reader) (Raw, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	out := make(Raw, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 5", i+2, len(row))
		}
		t, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d timestamp: %w", i+2, err)
		}
		nx, err := strconv.ParseBool(row[4])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d nx flag: %w", i+2, err)
		}
		out = append(out, RawRecord{T: sim.Time(t), Client: row[1], Server: row[2], Domain: row[3], NX: nx})
	}
	return out, nil
}

// WriteObservedCSV serialises an observable dataset as CSV with a header.
func WriteObservedCSV(w io.Writer, recs Observed) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_ms", "server", "domain"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, r := range recs {
		if err := cw.Write([]string{strconv.FormatInt(int64(r.T), 10), r.Server, r.Domain}); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadObservedCSV parses an observable dataset written by WriteObservedCSV.
func ReadObservedCSV(r io.Reader) (Observed, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	out := make(Observed, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 3", i+2, len(row))
		}
		t, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d timestamp: %w", i+2, err)
		}
		out = append(out, ObservedRecord{T: sim.Time(t), Server: row[1], Domain: row[2]})
	}
	return out, nil
}

// WriteObservedJSONL serialises the dataset as JSON lines.
func WriteObservedJSONL(w io.Writer, recs Observed) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return bw.Flush()
}

// ReadObservedJSONL parses a JSON-lines observable dataset.
func ReadObservedJSONL(r io.Reader) (Observed, error) {
	var out Observed
	dec := json.NewDecoder(r)
	for {
		var rec ObservedRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		out = append(out, rec)
	}
}

// WriteRawJSONL serialises the raw dataset as JSON lines.
func WriteRawJSONL(w io.Writer, recs Raw) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return bw.Flush()
}

// ReadRawJSONL parses a JSON-lines raw dataset.
func ReadRawJSONL(r io.Reader) (Raw, error) {
	var out Raw
	dec := json.NewDecoder(r)
	for {
		var rec RawRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		out = append(out, rec)
	}
}
