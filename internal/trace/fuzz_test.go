package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzReadObservedCSV hardens the CSV reader against malformed files.
func FuzzReadObservedCSV(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteObservedCSV(&buf, Observed{{T: 1, Server: "s", Domain: "d.com"}})
	f.Add(buf.String())
	f.Add("t_ms,server,domain\n")
	f.Add("")
	f.Add("\"unclosed")
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ReadObservedCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must round-trip.
		var out bytes.Buffer
		if err := WriteObservedCSV(&out, recs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// FuzzReadBINDLog hardens the query-log parser: arbitrary text must never
// panic, and every accepted record must carry a server and a domain.
func FuzzReadBINDLog(f *testing.F) {
	f.Add("01-Jul-2026 00:00:01.500 client 10.0.0.1#53124: query: a.com IN A +\n")
	f.Add("garbage\n\n\x00")
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ReadBINDLog(strings.NewReader(data), BINDLogOptions{Location: time.UTC})
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.Server == "" || r.Domain == "" {
				t.Fatalf("accepted empty fields: %+v", r)
			}
		}
	})
}
