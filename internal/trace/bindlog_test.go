package trace

import (
	"strings"
	"testing"
	"time"

	"botmeter/internal/sim"
)

const sampleBINDLog = `01-Jul-2026 00:00:01.500 client 10.0.0.1#53124 (evil.example): query: evil.example IN A +E(0)K (192.0.2.53)
01-Jul-2026 00:00:02.250 client 10.0.0.2#40001: query: another.test IN AAAA + (192.0.2.53)
01-Jul-2026 12:30:00.000 client 10.0.0.1#53125 (Mixed.CASE.Org.): query: Mixed.CASE.Org. IN A + (192.0.2.53)

this line is garbage
02-Jul-2026 00:00:00.000 client 10.0.0.3#1: query: nextday.example IN A + (192.0.2.53)
`

func TestReadBINDLog(t *testing.T) {
	obs, err := ReadBINDLog(strings.NewReader(sampleBINDLog), BINDLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 4 {
		t.Fatalf("records = %d, want 4 (garbage skipped)", len(obs))
	}
	// Reference aligns to the first record's midnight: 00:00:01.500 → 1500 ms.
	if obs[0].T != 1500 {
		t.Errorf("T[0] = %d, want 1500", obs[0].T)
	}
	if obs[0].Server != "10.0.0.1" || obs[0].Domain != "evil.example" {
		t.Errorf("rec[0] = %+v", obs[0])
	}
	// Second form (no parenthesised qname).
	if obs[1].Server != "10.0.0.2" || obs[1].Domain != "another.test" {
		t.Errorf("rec[1] = %+v", obs[1])
	}
	// Case and trailing-dot normalisation.
	if obs[2].Domain != "mixed.case.org" {
		t.Errorf("rec[2].Domain = %q", obs[2].Domain)
	}
	if obs[2].T != sim.Time(12*sim.Hour+30*sim.Minute) {
		t.Errorf("rec[2].T = %v", obs[2].T)
	}
	// Next calendar day lands in epoch 1.
	if obs[3].T != sim.Day {
		t.Errorf("rec[3].T = %v, want one day", obs[3].T)
	}
}

func TestReadBINDLogStrict(t *testing.T) {
	if _, err := ReadBINDLog(strings.NewReader("garbage line\n"), BINDLogOptions{Strict: true}); err == nil {
		t.Error("strict mode should fail on garbage")
	}
	// Non-strict skips it.
	obs, err := ReadBINDLog(strings.NewReader("garbage line\n"), BINDLogOptions{})
	if err != nil || len(obs) != 0 {
		t.Errorf("non-strict = %v, %v", obs, err)
	}
}

func TestReadBINDLogExplicitReference(t *testing.T) {
	ref := time.Date(2026, 6, 30, 0, 0, 0, 0, time.UTC)
	obs, err := ReadBINDLog(strings.NewReader(sampleBINDLog), BINDLogOptions{ReferenceTime: ref})
	if err != nil {
		t.Fatal(err)
	}
	// 01-Jul 00:00:01.5 is one day past the reference.
	if obs[0].T != sim.Day+1500 {
		t.Errorf("T[0] = %v, want day+1500ms", obs[0].T)
	}
}

func TestParseBINDLineErrors(t *testing.T) {
	cases := []string{
		"01-Jul-2026 00:00:01.500 client",                                   // too few fields
		"bad-date 00:00:01.500 client 10.0.0.1#1: query: a.com IN A +",      // bad timestamp
		"01-Jul-2026 00:00:01.500 resolver 10.0.0.1#1: query: a.com IN A +", // no client token
		"01-Jul-2026 00:00:01.500 client 10.0.0.1#1: update: a.com IN A +",  // not a query
	}
	for _, line := range cases {
		if _, _, err := parseBINDLine(line, time.UTC); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}
