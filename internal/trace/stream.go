package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"botmeter/internal/sim"
)

// ObservedFunc consumes one observed record during incremental reads. A
// non-nil error aborts the stream and is returned to the caller.
type ObservedFunc func(ObservedRecord) error

// StreamObservedJSONL incrementally parses a JSON-lines observable
// dataset, invoking fn for every well-formed record as soon as its line is
// read — the bounded-memory counterpart of ReadObservedJSONLOpts, which
// materialises the whole slice. Combined with a TailReader this turns a
// live vantage capture into an online record source for the streaming
// landscape engine.
func StreamObservedJSONL(r io.Reader, opt ReadOptions, fn ObservedFunc) (ReadResult, error) {
	return readJSONL(r, opt, func(data []byte, line int) error {
		var rec ObservedRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("trace: line %d: %w", line, err)
		}
		if rec.Domain == "" {
			return fmt.Errorf("trace: line %d: record has no domain", line)
		}
		return fn(rec)
	})
}

// StreamObservedCSV incrementally parses a CSV observable dataset written
// by WriteObservedCSV, invoking fn per record.
func StreamObservedCSV(r io.Reader, opt ReadOptions, fn ObservedFunc) (ReadResult, error) {
	return readCSV(r, 3, opt, func(row []string, line int) error {
		t, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return fmt.Errorf("trace: row %d timestamp: %w", line, err)
		}
		return fn(ObservedRecord{T: sim.Time(t), Server: row[1], Domain: row[2]})
	})
}

// StreamObserved dispatches on the format names used across the cmd
// binaries ("jsonl" or "csv").
func StreamObserved(r io.Reader, format string, opt ReadOptions, fn ObservedFunc) (ReadResult, error) {
	switch format {
	case "jsonl":
		return StreamObservedJSONL(r, opt, fn)
	case "csv", "":
		return StreamObservedCSV(r, opt, fn)
	default:
		return ReadResult{}, fmt.Errorf("trace: unsupported streaming format %q", format)
	}
}

// TailReader adapts a growing file to io.Reader semantics suitable for the
// incremental parsers above: a read that hits EOF blocks, polling for new
// data, until the context is cancelled — at which point EOF is finally
// surfaced and the parser terminates cleanly on whatever was read. This is
// `tail -f` as a composable reader: the line framing above it guarantees a
// torn final line (appender crashed mid-record) is only ever seen at
// shutdown, where lenient mode skips and counts it.
type TailReader struct {
	ctx  context.Context
	r    io.Reader
	poll time.Duration
}

// NewTailReader wraps r. poll <= 0 defaults to 200ms.
func NewTailReader(ctx context.Context, r io.Reader, poll time.Duration) *TailReader {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &TailReader{ctx: ctx, r: r, poll: poll}
}

// Read implements io.Reader with EOF-as-wait semantics.
func (t *TailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.r.Read(p)
		if n > 0 || err == nil {
			// Pass data (and a possible io.EOF alongside it) through; the
			// EOF will be re-seen on the next call with n == 0.
			if err == io.EOF {
				err = nil
			}
			return n, err
		}
		if err != io.EOF {
			return 0, err
		}
		select {
		case <-t.ctx.Done():
			return 0, io.EOF
		case <-time.After(t.poll):
		}
	}
}
