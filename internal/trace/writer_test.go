package trace

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"botmeter/internal/sim"
)

func rec(i int) ObservedRecord {
	return ObservedRecord{T: sim.Time(i), Server: "local0", Domain: fmt.Sprintf("d%03d.example", i)}
}

// manual returns a SafeWriter with every automatic flush disabled, so tests
// control exactly when bytes reach the underlying writer.
func manual(w *bytes.Buffer) *SafeWriter {
	return NewSafeWriter(w, SafeWriterConfig{FlushInterval: -1, FlushEvery: -1})
}

func TestSafeWriterFlushEvery(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSafeWriter(&buf, SafeWriterConfig{FlushInterval: -1, FlushEvery: 3})
	defer sw.Close()
	for i := 0; i < 2; i++ {
		if err := sw.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("flushed before the threshold: %q", buf.String())
	}
	if err := sw.Append(rec(2)); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Errorf("after threshold: %d lines flushed, want 3", got)
	}
	if records, flushes, _ := sw.Stats(); records != 3 || flushes != 1 {
		t.Errorf("stats = %d records, %d flushes; want 3, 1", records, flushes)
	}
}

func TestSafeWriterFlushInterval(t *testing.T) {
	var buf safeBuffer
	sw := NewSafeWriter(&buf, SafeWriterConfig{FlushInterval: 10 * time.Millisecond, FlushEvery: -1})
	defer sw.Close()
	if err := sw.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for buf.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(buf.String(), "d001.example") {
		t.Errorf("flushed bytes = %q", buf.String())
	}
}

// safeBuffer is a mutex-guarded bytes.Buffer: the background flusher writes
// from its own goroutine, so the test must not race it.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}
func (b *safeBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}
func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// failingWriter fails every write after the first n bytes worth of calls.
type failingWriter struct{ calls, failAfter int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.calls++
	if w.calls > w.failAfter {
		return 0, errors.New("disk on fire")
	}
	return len(p), nil
}

// TestSafeWriterStickyError: the first failing flush poisons the writer —
// every subsequent Append surfaces the error immediately rather than
// deferring to Close.
func TestSafeWriterStickyError(t *testing.T) {
	w := &failingWriter{failAfter: 1}
	sw := NewSafeWriter(w, SafeWriterConfig{FlushInterval: -1, FlushEvery: 1})
	if err := sw.Append(rec(0)); err != nil {
		t.Fatalf("first append: %v", err)
	}
	err := sw.Append(rec(1))
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("second append err = %v, want the write error", err)
	}
	if err2 := sw.Append(rec(2)); err2 == nil {
		t.Error("sticky error cleared itself")
	}
	if sw.Err() == nil {
		t.Error("Err() lost the sticky error")
	}
	if cerr := sw.Close(); cerr == nil {
		t.Error("Close() lost the sticky error")
	}
}

// TestSafeWriterAtomicFraming: every underlying Write call must be a whole
// number of complete JSONL lines, even when the buffer fills mid-record.
func TestSafeWriterAtomicFraming(t *testing.T) {
	var writes [][]byte
	w := writeFunc(func(p []byte) (int, error) {
		writes = append(writes, append([]byte(nil), p...))
		return len(p), nil
	})
	// Tiny buffer forces pre-flushes when the next line would not fit.
	sw := NewSafeWriter(w, SafeWriterConfig{FlushInterval: -1, FlushEvery: -1, BufferSize: 128})
	for i := 0; i < 50; i++ {
		if err := sw.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if len(writes) < 2 {
		t.Fatalf("buffer never pre-flushed (%d writes)", len(writes))
	}
	total := 0
	for i, p := range writes {
		if len(p) == 0 || p[len(p)-1] != '\n' {
			t.Errorf("write %d does not end on a line boundary: %q", i, p)
		}
		total += strings.Count(string(p), "\n")
	}
	if total != 50 {
		t.Errorf("lines written = %d, want 50", total)
	}
}

type writeFunc func(p []byte) (int, error)

func (f writeFunc) Write(p []byte) (int, error) { return f(p) }

func TestSafeWriterFsync(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "obs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sw := NewSafeWriter(f, SafeWriterConfig{FlushInterval: -1, FlushEvery: 1, FsyncInterval: time.Nanosecond})
	if err := sw.Append(rec(7)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, syncs := sw.Stats(); syncs == 0 {
		t.Error("fsync interval elapsed but no sync happened")
	}
}

func TestTruncateTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obs.jsonl")

	// Missing file: nothing to repair.
	if n, err := TruncateTornTail(path); err != nil || n != 0 {
		t.Fatalf("missing file: %d, %v", n, err)
	}

	intact := `{"t":1,"server":"s0","domain":"a.example"}` + "\n" +
		`{"t":2,"server":"s0","domain":"b.example"}` + "\n"
	torn := intact + `{"t":3,"server":"s0","doma`
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := TruncateTornTail(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(torn) - len(intact)); n != want {
		t.Errorf("removed %d bytes, want %d", n, want)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != intact {
		t.Errorf("repaired file = %q", got)
	}

	// Already clean: idempotent.
	if n, err := TruncateTornTail(path); err != nil || n != 0 {
		t.Errorf("clean file: %d, %v", n, err)
	}

	// A file that is one giant torn line (no newline at all) empties out.
	if err := os.WriteFile(path, []byte(strings.Repeat("x", 100_000)), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := TruncateTornTail(path); err != nil || n != 100_000 {
		t.Errorf("newline-free file: %d, %v", n, err)
	}
	if st, _ := os.Stat(path); st.Size() != 0 {
		t.Errorf("file not emptied: %d bytes", st.Size())
	}

	// Empty file: no-op.
	if n, err := TruncateTornTail(path); err != nil || n != 0 {
		t.Errorf("empty file: %d, %v", n, err)
	}
}

// TestTornWriteRecovery is the end-to-end crash story: a capture whose
// final line is truncated mid-record and that contains one interior garbage
// line. The lenient reader returns every intact record and counts exactly
// the two bad lines; the strict reader refuses the file.
func TestTornWriteRecovery(t *testing.T) {
	var buf bytes.Buffer
	sw := manual(&buf)
	for i := 0; i < 5; i++ {
		if err := sw.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("capture = %d lines", len(lines))
	}
	// Corrupt line 3 and tear the final line mid-JSON.
	lines[2] = "!!corrupt log-rotation glue!!\n"
	last := lines[4]
	capture := strings.Join(lines[:4], "") + last[:len(last)/2]

	obs, res, err := ReadObservedJSONLOpts(strings.NewReader(capture), ReadOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient read: %v", err)
	}
	if res.Skipped != 2 {
		t.Errorf("skipped = %d, want 2 (garbage line + torn tail)", res.Skipped)
	}
	if len(obs) != 3 || res.Records != 3 {
		t.Fatalf("records = %d/%d, want 3", len(obs), res.Records)
	}
	for i, want := range []int{0, 1, 3} {
		if obs[i].Domain != rec(want).Domain {
			t.Errorf("record %d = %+v, want domain %s", i, obs[i], rec(want).Domain)
		}
	}

	// Strict mode must refuse the same file.
	if _, _, err := ReadObservedJSONLOpts(strings.NewReader(capture), ReadOptions{}); err == nil {
		t.Error("strict reader accepted a corrupt capture")
	}
}

// TestLenientCSV mirrors the JSONL story for the CSV reader.
func TestLenientCSV(t *testing.T) {
	var buf bytes.Buffer
	recs := Observed{rec(1), rec(2), rec(3)}
	if err := WriteObservedCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n") // final element is ""
	lines[2] = "not-a-timestamp,local0,bad.example\n"
	corrupt := strings.Join(lines, "") + "torn,tr" // extra torn tail

	obs, res, err := ReadObservedCSVOpts(strings.NewReader(corrupt), ReadOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient read: %v", err)
	}
	if res.Skipped != 2 || len(obs) != 2 {
		t.Errorf("records=%d skipped=%d, want 2/2", len(obs), res.Skipped)
	}
	if _, err := ReadObservedCSV(strings.NewReader(corrupt)); err == nil {
		t.Error("strict reader accepted a corrupt capture")
	}
}

// TestLenientRawJSONL covers the raw-dataset variant.
func TestLenientRawJSONL(t *testing.T) {
	var buf bytes.Buffer
	raws := Raw{{T: 1, Client: "c1", Server: "s0", Domain: "a.example"}, {T: 2, Client: "c2", Server: "s0", Domain: "b.example"}}
	if err := WriteRawJSONL(&buf, raws); err != nil {
		t.Fatal(err)
	}
	corrupt := buf.String() + "\n{\"t\":9}\ngarbage\n"
	out, res, err := ReadRawJSONLOpts(strings.NewReader(corrupt), ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	// Blank line uncounted; domain-less record and garbage each skipped.
	if len(out) != 2 || res.Skipped != 2 {
		t.Errorf("records=%d skipped=%d, want 2/2", len(out), res.Skipped)
	}
	if _, err := ReadRawJSONL(strings.NewReader(corrupt)); err == nil {
		t.Error("strict reader accepted a corrupt capture")
	}
}

// TestSafeWriterTruncateRoundTrip: write through a SafeWriter to a real
// file, simulate a crash by appending half a record, recover, and confirm
// appends resume on a clean boundary.
func TestSafeWriterTruncateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obs.jsonl")

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSafeWriter(f, SafeWriterConfig{FlushInterval: -1, FlushEvery: 1})
	for i := 0; i < 3; i++ {
		if err := sw.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Crash mid-append.
	g, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte(`{"t":99,"ser`)); err != nil {
		t.Fatal(err)
	}
	g.Close()

	if n, err := TruncateTornTail(path); err != nil || n == 0 {
		t.Fatalf("recovery: %d, %v", n, err)
	}
	// Resume appending.
	h, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	sw2 := NewSafeWriter(h, SafeWriterConfig{FlushInterval: -1, FlushEvery: 1})
	if err := sw2.Append(rec(3)); err != nil {
		t.Fatal(err)
	}
	if err := sw2.Close(); err != nil {
		t.Fatal(err)
	}
	h.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ReadObservedJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("strict read after recovery: %v\n%q", err, data)
	}
	if len(obs) != 4 {
		t.Errorf("records = %d, want 4", len(obs))
	}
}

// TestSafeWriterStickyErrorStopsWrites: once the sticky error is set, the
// underlying writer must never see another byte — even via Flush or Close.
// cmd/vantage's checkpoint gate (PreSync = Flush + Err) relies on this: a
// poisoned writer cannot let a checkpoint record progress the durable file
// never made.
func TestSafeWriterStickyErrorStopsWrites(t *testing.T) {
	w := &failingWriter{failAfter: 1}
	sw := NewSafeWriter(w, SafeWriterConfig{FlushInterval: -1, FlushEvery: 1})
	if err := sw.Append(rec(0)); err != nil {
		t.Fatalf("first append: %v", err)
	}
	sw.Append(rec(1)) //nolint:errcheck // poisons the writer
	callsAtPoison := w.calls
	sw.Append(rec(2)) //nolint:errcheck // rejected, must not retry the write
	sw.Flush()        //nolint:errcheck
	sw.Close()        //nolint:errcheck
	if w.calls != callsAtPoison {
		t.Fatalf("underlying writer saw %d calls after poisoning, want none (was %d, now %d)",
			w.calls-callsAtPoison, callsAtPoison, w.calls)
	}
	// Stats counts appended records (record 1 was accepted before its
	// flush failed); record 2 was rejected outright.
	if records, _, _ := sw.Stats(); records != 2 {
		t.Errorf("records = %d, want 2 appended", records)
	}
}

// TestTruncateTornTailChunkBoundaries: the backward newline scan works in
// 32 KiB chunks; exercise torn tails that span chunks and land exactly on
// chunk edges.
func TestTruncateTornTailChunkBoundaries(t *testing.T) {
	const chunk = 32 * 1024
	dir := t.TempDir()
	cases := []struct {
		name string
		keep int // bytes of intact, newline-terminated prefix
		torn int // bytes of torn tail after the last newline
	}{
		{"tail-spans-two-chunks", 100, chunk + 17},
		{"tail-exactly-one-chunk", 100, chunk},
		{"newline-at-chunk-edge", chunk, chunk},
		{"one-byte-tail", chunk + 1, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, c.name+".jsonl")
			prefix := bytes.Repeat([]byte("x"), c.keep-1)
			prefix = append(prefix, '\n')
			data := append(prefix, bytes.Repeat([]byte("y"), c.torn)...)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			n, err := TruncateTornTail(path)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(c.torn) {
				t.Errorf("removed %d bytes, want %d", n, c.torn)
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != int64(c.keep) {
				t.Errorf("size after repair = %d, want %d", st.Size(), c.keep)
			}
		})
	}
}

// TestTruncateTornTailTwice: crash, repair, append, crash again — the
// second repair must only drop the second torn tail.
func TestTruncateTornTailTwice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	line1 := `{"t":1,"server":"s0","domain":"a.example"}` + "\n"
	if err := os.WriteFile(path, []byte(line1+`{"t":2,"ser`), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := TruncateTornTail(path); err != nil || n != 11 {
		t.Fatalf("first repair: %d, %v", n, err)
	}
	line2 := `{"t":2,"server":"s0","domain":"b.example"}` + "\n"
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(line2 + `{"t":3`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if n, err := TruncateTornTail(path); err != nil || n != 6 {
		t.Fatalf("second repair: %d, %v", n, err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != line1+line2 {
		t.Errorf("after double repair = %q", got)
	}
}

// TestAppendObservedByteIdentical drives both entry points over a corpus
// spanning the fast path and every escape class that forces the Marshal
// fallback, asserting the output bytes cannot reveal which one ran.
func TestAppendObservedByteIdentical(t *testing.T) {
	cases := []ObservedRecord{
		{T: 0, Server: "local0", Domain: "abc.example"},
		{T: 123456789012, Server: "10.0.0.7", Domain: "x7f3k9.newgoz.biz"},
		{T: -5, Server: "s", Domain: ""},
		{T: 42, Server: "with\"quote", Domain: "plain.example"},
		{T: 42, Server: "back\\slash", Domain: "plain.example"},
		{T: 42, Server: "local0", Domain: "tab\there"},
		{T: 42, Server: "local0", Domain: "a<b"},
		{T: 42, Server: "a>b", Domain: "plain"},
		{T: 42, Server: "a&b", Domain: "plain"},
		{T: 42, Server: "local0", Domain: "ünïcode.example"},
		{T: 42, Server: "local0", Domain: "high\x80byte"},
		{T: 42, Server: "local0", Domain: "nul\x00byte"},
	}
	var viaAppend, viaFast bytes.Buffer
	a := manual(&viaAppend)
	f := manual(&viaFast)
	for _, c := range cases {
		if err := a.Append(c); err != nil {
			t.Fatal(err)
		}
		if err := f.AppendObserved(c.T, c.Server, c.Domain); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaAppend.Bytes(), viaFast.Bytes()) {
		t.Fatalf("encodings diverge:\nAppend:         %q\nAppendObserved: %q",
			viaAppend.String(), viaFast.String())
	}
}

func TestAppendObservedZeroAllocs(t *testing.T) {
	var buf bytes.Buffer
	buf.Grow(1 << 20)
	sw := manual(&buf)
	defer sw.Close()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := sw.AppendObserved(1754500000000, "192.168.7.31", "k3j9x0ab2.newgoz.biz"); err != nil {
			t.Fatal(err)
		}
	})
	// bytes.Buffer growth inside Flush is amortised noise; the append path
	// itself must not allocate.
	if allocs > 0.05 {
		t.Fatalf("AppendObserved allocates %.2f/op, want 0", allocs)
	}
}

func TestAppendObservedCountsAndFlushes(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSafeWriter(&buf, SafeWriterConfig{FlushInterval: -1, FlushEvery: 2})
	defer sw.Close()
	sw.AppendObserved(1, "s", "a.example")
	if buf.Len() != 0 {
		t.Fatalf("flushed before the threshold: %q", buf.String())
	}
	sw.AppendObserved(2, "s", "b.example")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("after threshold: %d lines flushed, want 2", got)
	}
	if records, flushes, _ := sw.Stats(); records != 2 || flushes != 1 {
		t.Fatalf("stats = %d records, %d flushes; want 2, 1", records, flushes)
	}
}

func TestAppendObservedSticky(t *testing.T) {
	sw := NewSafeWriter(&failingWriter{failAfter: 0}, SafeWriterConfig{FlushInterval: -1, FlushEvery: 1})
	defer sw.Close()
	if err := sw.AppendObserved(1, "s", "a.example"); err == nil {
		t.Fatal("first append: flush against a failing writer must error")
	}
	if err := sw.AppendObserved(2, "s", "b.example"); err == nil {
		t.Fatal("sticky error must surface on subsequent appends")
	}
}
