package trace

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"botmeter/internal/sim"
)

func TestStreamObservedJSONL(t *testing.T) {
	in := `{"t":100,"server":"s1","domain":"a.com"}
{"t":200,"server":"s2","domain":"b.com"}
`
	var got []ObservedRecord
	res, err := StreamObserved(strings.NewReader(in), "jsonl", ReadOptions{}, func(rec ObservedRecord) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || res.Skipped != 0 {
		t.Errorf("result = %+v", res)
	}
	if len(got) != 2 || got[0].Domain != "a.com" || got[1].T != 200 || got[1].Server != "s2" {
		t.Errorf("records = %+v", got)
	}
}

func TestStreamObservedJSONLRejects(t *testing.T) {
	cases := map[string]string{
		"torn line": `{"t":100,"server":"s1","domain":"a.com"}` + "\n" + `{"t":2`,
		"no domain": `{"t":100,"server":"s1"}` + "\n",
	}
	for name, in := range cases {
		if _, err := StreamObserved(strings.NewReader(in), "jsonl", ReadOptions{}, func(ObservedRecord) error {
			return nil
		}); err == nil {
			t.Errorf("%s: strict mode should fail", name)
		}
		// Lenient mode skips and counts instead.
		res, err := StreamObserved(strings.NewReader(in), "jsonl", ReadOptions{Lenient: true}, func(ObservedRecord) error {
			return nil
		})
		if err != nil || res.Skipped != 1 {
			t.Errorf("%s: lenient result = %+v, %v", name, res, err)
		}
	}
}

func TestStreamObservedCSV(t *testing.T) {
	in := "t_ms,server,domain\n100,s1,a.com\n200,s2,b.com\n"
	var got []ObservedRecord
	// "" defaults to CSV, the cmd convention.
	res, err := StreamObserved(strings.NewReader(in), "", ReadOptions{}, func(rec ObservedRecord) error {
		got = append(got, rec)
		return nil
	})
	if err != nil || res.Records != 2 {
		t.Fatalf("result = %+v, %v", res, err)
	}
	if got[0].T != sim.Time(100) || got[1].Domain != "b.com" {
		t.Errorf("records = %+v", got)
	}
	if _, err := StreamObserved(strings.NewReader("t_ms,server,domain\nNaN,s1,a.com\n"), "csv", ReadOptions{}, func(ObservedRecord) error {
		return nil
	}); err == nil {
		t.Error("bad timestamp should fail")
	}
}

func TestStreamObservedCallbackErrorAborts(t *testing.T) {
	in := "t_ms,server,domain\n100,s1,a.com\n200,s2,b.com\n"
	boom := errors.New("stop here")
	calls := 0
	_, err := StreamObserved(strings.NewReader(in), "csv", ReadOptions{}, func(ObservedRecord) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the callback error", err)
	}
	if calls != 1 {
		t.Errorf("callback ran %d times after aborting", calls)
	}
}

func TestStreamObservedUnsupportedFormat(t *testing.T) {
	if _, err := StreamObserved(strings.NewReader(""), "xml", ReadOptions{}, nil); err == nil {
		t.Error("unsupported format should fail")
	}
}

// growingReader yields its chunks one Read at a time, then returns EOF
// forever — a file that stopped growing.
type growingReader struct {
	chunks []string
}

func (g *growingReader) Read(p []byte) (int, error) {
	if len(g.chunks) == 0 {
		return 0, io.EOF
	}
	n := copy(p, g.chunks[0])
	g.chunks[0] = g.chunks[0][n:]
	if g.chunks[0] == "" {
		g.chunks = g.chunks[1:]
	}
	return n, nil
}

func TestTailReaderPassesDataThrough(t *testing.T) {
	tr := NewTailReader(context.Background(), strings.NewReader("hello"), time.Millisecond)
	buf := make([]byte, 16)
	n, err := tr.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
}

func TestTailReaderWaitsAtEOFUntilCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tr := NewTailReader(ctx, &growingReader{chunks: []string{"a"}}, time.Millisecond)
	buf := make([]byte, 4)
	if n, err := tr.Read(buf); err != nil || string(buf[:n]) != "a" {
		t.Fatalf("first read = %q, %v", buf[:n], err)
	}
	// The next read hits EOF and must block until the context ends, then
	// surface EOF so the parser above terminates cleanly.
	time.AfterFunc(10*time.Millisecond, cancel)
	start := time.Now()
	n, err := tr.Read(buf)
	if n != 0 || err != io.EOF {
		t.Errorf("post-cancel read = %d, %v, want 0, EOF", n, err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("read returned before cancellation")
	}
}

// failingReader returns a non-EOF error, which must pass through untouched
// (only EOF means "wait for more").
type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("disk gone") }

func TestTailReaderPropagatesRealErrors(t *testing.T) {
	tr := NewTailReader(nil, failingReader{}, 0) // nil ctx + 0 poll take the defaults
	if _, err := tr.Read(make([]byte, 4)); err == nil || err == io.EOF {
		t.Errorf("err = %v, want the underlying error", err)
	}
}
