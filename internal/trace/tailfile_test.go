package trace

import (
	"bufio"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

const tailPoll = 5 * time.Millisecond

// tailLines starts a background line reader over a TailFile and returns a
// function that waits for the next line (without its newline) and one that
// waits for the reader to finish. TailFile is single-reader: tests must not
// touch tf again until stop returns.
func tailLines(t *testing.T, tf *TailFile) (next func() string, stop func()) {
	t.Helper()
	lines := make(chan string, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(tf)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	next = func() string {
		t.Helper()
		for {
			select {
			case l := <-lines:
				// A rotation landing exactly on a line boundary makes the
				// resync newline an empty line; the lenient parser skips
				// those, and so do we.
				if l == "" {
					continue
				}
				return l
			case <-time.After(5 * time.Second):
				t.Fatal("timed out waiting for a tailed line")
				return ""
			}
		}
	}
	stop = func() { <-done }
	return next, stop
}

func appendLine(t *testing.T, path, line string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(line + "\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTailFileFollowsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	appendLine(t, path, "one")
	ctx, cancel := context.WithCancel(context.Background())
	tf, err := NewTailFile(ctx, path, tailPoll)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	next, stop := tailLines(t, tf)
	if got := next(); got != "one" {
		t.Fatalf("first line = %q", got)
	}
	appendLine(t, path, "two")
	if got := next(); got != "two" {
		t.Fatalf("appended line = %q", got)
	}
	cancel()
	stop() // cancellation must surface EOF and end the scanner
	if tf.Rotations() != 0 {
		t.Errorf("rotations = %d for a plain append stream", tf.Rotations())
	}
}

func TestTailFileSurvivesTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	appendLine(t, path, "old-1")
	appendLine(t, path, "old-2")
	ctx, cancel := context.WithCancel(context.Background())
	tf, err := NewTailFile(ctx, path, tailPoll)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	next, stop := tailLines(t, tf)
	if next() != "old-1" || next() != "old-2" {
		t.Fatal("did not read the pre-truncation lines")
	}
	// Operator zeroes the file in place to reclaim space.
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	appendLine(t, path, "new-1")
	if got := next(); got != "new-1" {
		t.Fatalf("post-truncation line = %q", got)
	}
	cancel()
	stop()
	if tf.Rotations() != 1 {
		t.Errorf("rotations = %d, want 1", tf.Rotations())
	}
}

func TestTailFileSurvivesRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obs.jsonl")
	appendLine(t, path, "old")
	ctx, cancel := context.WithCancel(context.Background())
	tf, err := NewTailFile(ctx, path, tailPoll)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	rotates := make(chan struct{}, 8)
	tf.OnRotate = func() { rotates <- struct{}{} }
	next, stop := tailLines(t, tf)
	if next() != "old" {
		t.Fatal("did not read the pre-rotation line")
	}
	// logrotate style: rename away, recreate at the same path.
	if err := os.Rename(path, filepath.Join(dir, "obs.jsonl.1")); err != nil {
		t.Fatal(err)
	}
	appendLine(t, path, "fresh")
	if got := next(); got != "fresh" {
		t.Fatalf("post-rotation line = %q", got)
	}
	select {
	case <-rotates:
	case <-time.After(5 * time.Second):
		t.Error("OnRotate hook not invoked")
	}
	cancel()
	stop()
	if tf.Rotations() == 0 {
		t.Error("rotation not counted")
	}
}

// readFull drives tf.Read from the calling goroutine until want bytes have
// arrived, so tests control exactly where in the byte stream a rotation
// lands.
func readFull(t *testing.T, tf *TailFile, want int) string {
	t.Helper()
	buf := make([]byte, want)
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %d/%d bytes: %q", got, want, buf[:got])
		}
		n, err := tf.Read(buf[got:])
		if err != nil && err != io.EOF {
			t.Fatalf("Read: %v", err)
		}
		got += n
	}
	return string(buf)
}

// TestTailFileResyncsMidLineRotation: the head of a record delivered before
// its file vanished must become its own (malformed, skippable) line — never
// glued to the first line of the replacement file.
func TestTailFileResyncsMidLineRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obs.jsonl")
	// A complete line plus a torn head with no trailing newline.
	if err := os.WriteFile(path, []byte("complete\ntorn-head"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tf, err := NewTailFile(ctx, path, tailPoll)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if got := readFull(t, tf, len("complete\ntorn-head")); got != "complete\ntorn-head" {
		t.Fatalf("pre-rotation bytes = %q", got)
	}
	// The torn head is consumed; now the file vanishes and a fresh one
	// appears. The tailer must inject a newline before the new content.
	if err := os.Rename(path, filepath.Join(dir, "obs.jsonl.1")); err != nil {
		t.Fatal(err)
	}
	appendLine(t, path, "first-new-line")
	if got := readFull(t, tf, len("\nfirst-new-line\n")); got != "\nfirst-new-line\n" {
		t.Fatalf("post-rotation bytes = %q, want the resync newline first", got)
	}
	if tf.Rotations() == 0 {
		t.Error("rotation not counted")
	}
}

func TestTailFileWaitsOutRemoval(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obs.jsonl")
	appendLine(t, path, "before")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tf, err := NewTailFile(ctx, path, tailPoll)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if got := readFull(t, tf, len("before\n")); got != "before\n" {
		t.Fatalf("initial bytes = %q", got)
	}
	// Removed with no replacement: the tailer must keep polling, not error.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * tailPoll)
	appendLine(t, path, "after")
	// The removal counts as a rotation, so a resync newline precedes the
	// reappeared content.
	if got := readFull(t, tf, len("\nafter\n")); got != "\nafter\n" {
		t.Fatalf("bytes after reappearance = %q", got)
	}
}

func TestTailFileMissingAtOpen(t *testing.T) {
	if _, err := NewTailFile(context.Background(), filepath.Join(t.TempDir(), "absent.jsonl"), tailPoll); err == nil {
		t.Fatal("NewTailFile succeeded on a missing file")
	}
}
