package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"botmeter/internal/sim"
)

// SafeWriterConfig tunes the crash-safety/throughput trade-off of a
// SafeWriter.
type SafeWriterConfig struct {
	// FlushInterval is how often the background flusher pushes buffered
	// records to the underlying writer so a crash loses at most an
	// interval's worth (default 1s; negative disables the background
	// flusher entirely — callers then control flushing).
	FlushInterval time.Duration
	// FlushEvery flushes after this many buffered records regardless of
	// the interval (default 64; negative disables count-based flushing).
	FlushEvery int
	// FsyncInterval, when positive, fsyncs the underlying file at most
	// this often (piggybacked on flushes) for durability across machine
	// crashes, not just process crashes. Ignored when the writer has no
	// Sync method.
	FsyncInterval time.Duration
	// BufferSize is the in-memory buffer capacity (default 64 KiB).
	BufferSize int
}

func (c SafeWriterConfig) withDefaults() SafeWriterConfig {
	if c.FlushInterval == 0 {
		c.FlushInterval = time.Second
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 64
	}
	if c.BufferSize <= 0 {
		c.BufferSize = 64 * 1024
	}
	return c
}

// SafeWriter appends ObservedRecords as JSON lines with atomic line
// framing: every write to the underlying writer is a whole number of
// complete lines, so a crash can tear at most the line the kernel was
// mid-way through persisting — which startup recovery (TruncateTornTail)
// then drops — and never interleaves partial lines. Records are flushed on
// a configurable interval and record count, so a tailing consumer
// (botmeter -lenient on a live capture) sees data promptly; write errors
// are sticky and surface on the next Append rather than only at Close.
// All methods are safe for concurrent use.
type SafeWriter struct {
	cfg SafeWriterConfig

	mu       sync.Mutex
	w        io.Writer
	buf      []byte
	pending  int // records buffered since the last flush
	lastSync time.Time
	err      error // first write error, sticky

	records uint64
	flushes uint64
	syncs   uint64

	stop chan struct{}
	done chan struct{}
}

// syncer is the optional fsync capability of the underlying writer
// (satisfied by *os.File).
type syncer interface{ Sync() error }

// NewSafeWriter wraps w. If cfg.FlushInterval is positive (or defaulted) a
// background goroutine flushes on that cadence until Close.
func NewSafeWriter(w io.Writer, cfg SafeWriterConfig) *SafeWriter {
	cfg = cfg.withDefaults()
	sw := &SafeWriter{
		cfg:      cfg,
		w:        w,
		buf:      make([]byte, 0, cfg.BufferSize),
		lastSync: time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if cfg.FlushInterval > 0 {
		go sw.flushLoop()
	} else {
		close(sw.done)
	}
	return sw
}

func (s *SafeWriter) flushLoop() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Flush() // best-effort; errors stick and surface on Append
		}
	}
}

// Append buffers one record. It returns the writer's sticky error, so a
// failing disk is noticed at the next observation, not at shutdown.
func (s *SafeWriter) Append(rec ObservedRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("trace: encode observed record: %w", err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if len(s.buf)+len(line) > cap(s.buf) && len(s.buf) > 0 {
		s.flushLocked()
	}
	s.buf = append(s.buf, line...)
	s.pending++
	s.records++
	if s.cfg.FlushEvery > 0 && s.pending >= s.cfg.FlushEvery {
		s.flushLocked()
	}
	return s.err
}

// AppendObserved is the alloc-free twin of Append for the ingest hot path:
// it formats the record straight into the writer's buffer, byte-identical to
// json.Marshal of the equivalent ObservedRecord. Strings that would need any
// JSON escaping (quotes, backslashes, control bytes, non-ASCII, or <>& which
// encoding/json HTML-escapes) take the Append fallback, so output bytes never
// depend on which entry point appended them.
func (s *SafeWriter) AppendObserved(t sim.Time, server, domain string) error {
	if !plainJSONString(server) || !plainJSONString(domain) {
		return s.Append(ObservedRecord{T: t, Server: server, Domain: domain})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	// Field order must mirror the ObservedRecord struct: t, server, domain.
	need := len(server) + len(domain) + 64
	if len(s.buf)+need > cap(s.buf) && len(s.buf) > 0 {
		s.flushLocked()
	}
	s.buf = append(s.buf, `{"t":`...)
	s.buf = strconv.AppendInt(s.buf, int64(t), 10)
	s.buf = append(s.buf, `,"server":"`...)
	s.buf = append(s.buf, server...)
	s.buf = append(s.buf, `","domain":"`...)
	s.buf = append(s.buf, domain...)
	s.buf = append(s.buf, '"', '}', '\n')
	s.pending++
	s.records++
	if s.cfg.FlushEvery > 0 && s.pending >= s.cfg.FlushEvery {
		s.flushLocked()
	}
	return s.err
}

// plainJSONString reports whether s encodes to JSON as itself: printable
// ASCII with no escapes. encoding/json additionally escapes <, > and & (HTML
// safety), so those force the fallback too.
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// Flush pushes buffered complete lines to the underlying writer.
func (s *SafeWriter) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return s.err
}

// flushLocked writes the buffer (always whole lines) in one call and
// applies the fsync policy. Caller holds s.mu.
func (s *SafeWriter) flushLocked() {
	if s.err != nil || len(s.buf) == 0 {
		return
	}
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = fmt.Errorf("trace: write observed dataset: %w", err)
		return
	}
	s.buf = s.buf[:0]
	s.pending = 0
	s.flushes++
	if s.cfg.FsyncInterval > 0 && time.Since(s.lastSync) >= s.cfg.FsyncInterval {
		s.syncLocked()
	}
}

// syncLocked fsyncs if the underlying writer supports it. Caller holds s.mu.
func (s *SafeWriter) syncLocked() {
	f, ok := s.w.(syncer)
	if !ok {
		return
	}
	if err := f.Sync(); err != nil {
		s.err = fmt.Errorf("trace: fsync observed dataset: %w", err)
		return
	}
	s.syncs++
	s.lastSync = time.Now()
}

// Err returns the sticky write error, if any.
func (s *SafeWriter) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats reports records appended, flushes and fsyncs performed.
func (s *SafeWriter) Stats() (records, flushes, syncs uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records, s.flushes, s.syncs
}

// Close stops the background flusher, flushes remaining records and, when
// fsync is configured, syncs one final time. Safe to call once.
func (s *SafeWriter) Close() error {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	if s.err == nil && s.cfg.FsyncInterval > 0 {
		s.syncLocked()
	}
	return s.err
}

// TruncateTornTail repairs a JSONL file whose final line was torn by a
// crash mid-append: if the file does not end in a newline, everything after
// the last newline is truncated away (the whole file, if it contains no
// newline at all). It returns the number of bytes removed. Complete lines
// are never touched — corrupt *interior* lines are the lenient reader's
// problem, torn *tails* are repaired here so appending resumes on a clean
// line boundary.
func TruncateTornTail(path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := st.Size()
	if size == 0 {
		return 0, nil
	}
	// Scan backwards in chunks for the last newline.
	const chunk = 32 * 1024
	buf := make([]byte, chunk)
	end := size // one past the last byte examined
	for end > 0 {
		n := int64(chunk)
		if n > end {
			n = end
		}
		if _, err := f.ReadAt(buf[:n], end-n); err != nil {
			return 0, err
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				keep := end - n + i + 1
				if keep == size {
					return 0, nil // file already ends on a line boundary
				}
				if err := f.Truncate(keep); err != nil {
					return 0, err
				}
				return size - keep, f.Sync()
			}
		}
		end -= n
	}
	// No newline anywhere: the single torn line is the whole file.
	if err := f.Truncate(0); err != nil {
		return 0, err
	}
	return size, f.Sync()
}
