// Package trace defines the two datasets of the paper's §V: the raw
// dataset of client-level DNS lookups ⟨timestamp, client, server, domain,
// rcode⟩ (ground truth, visible only inside the network) and the observable
// dataset of cache-filtered lookups ⟨timestamp, forwarding server, domain⟩
// (what the border vantage point — and hence BotMeter — sees). It also
// provides CSV and JSON-lines serialisation so traces can be generated,
// stored and analysed by separate tools.
package trace

import (
	"sort"

	"botmeter/internal/sim"
	"botmeter/internal/symtab"
)

// RawRecord is one client-level DNS lookup with its resolution outcome.
type RawRecord struct {
	T      sim.Time `json:"t"`
	Client string   `json:"client"`
	Server string   `json:"server"`
	Domain string   `json:"domain"`
	NX     bool     `json:"nx"`
}

// ObservedRecord is one lookup forwarded by a local server to the border
// vantage point. Client identity is invisible at this level (paper §II-B).
type ObservedRecord struct {
	T      sim.Time `json:"t"`
	Server string   `json:"server"`
	Domain string   `json:"domain"`

	// ID is the interned symtab ID of Domain for records that originated
	// in-process (the border sets it when the query carried one). It is an
	// in-memory fast-path hint only: never serialised (traces on disk are
	// strings; readers leave it symtab.None) and never required — ID ==
	// symtab.None simply routes matching/estimation through the string
	// paths.
	ID symtab.ID `json:"-"`
}

// Raw is an ordered raw dataset.
type Raw []RawRecord

// Observed is an ordered observable dataset.
type Observed []ObservedRecord

// Sort orders the dataset by timestamp (stable, preserving insertion order
// of simultaneous records).
func (r Raw) Sort() {
	sort.SliceStable(r, func(i, j int) bool { return r[i].T < r[j].T })
}

// Sort orders the dataset by timestamp.
func (o Observed) Sort() {
	sort.SliceStable(o, func(i, j int) bool { return o[i].T < o[j].T })
}

// Window filters records to the half-open interval w.
func (r Raw) Window(w sim.Window) Raw {
	out := make(Raw, 0, len(r))
	for _, rec := range r {
		if w.Contains(rec.T) {
			out = append(out, rec)
		}
	}
	return out
}

// Window filters records to the half-open interval w.
//
// Time-sorted datasets — every in-process trace (the simulation engine
// emits in virtual-time order) and anything normalized with Sort — take a
// zero-copy fast path: the interval's bounds are found by binary search and
// the result is a subslice of o. Unsorted datasets fall back to a filtering
// copy. Callers must treat the result as read-only either way; the analysis
// pipeline only ever reads windowed views. Window was the top allocation
// site of the per-day analysis loop (one epoch-sized copy per estimator
// call) before the fast path.
func (o Observed) Window(w sim.Window) Observed {
	sorted := true
	for i := 1; i < len(o); i++ {
		if o[i].T < o[i-1].T {
			sorted = false
			break
		}
	}
	if sorted {
		lo := sort.Search(len(o), func(i int) bool { return o[i].T >= w.Start })
		hi := lo + sort.Search(len(o)-lo, func(i int) bool { return o[lo+i].T >= w.End })
		return o[lo:hi:hi]
	}
	out := make(Observed, 0, len(o))
	for _, rec := range o {
		if w.Contains(rec.T) {
			out = append(out, rec)
		}
	}
	return out
}

// ByServer groups observed records by forwarding server, preserving order.
func (o Observed) ByServer() map[string]Observed {
	out := make(map[string]Observed)
	for _, rec := range o {
		out[rec.Server] = append(out[rec.Server], rec)
	}
	return out
}

// Servers returns the distinct forwarding servers, sorted.
func (o Observed) Servers() []string {
	set := make(map[string]struct{})
	for _, rec := range o {
		set[rec.Server] = struct{}{}
	}
	names := make([]string, 0, len(set))
	for s := range set {
		names = append(names, s)
	}
	sort.Strings(names)
	return names
}

// Domains returns the distinct domains in the dataset, sorted.
func (o Observed) Domains() []string {
	set := make(map[string]struct{})
	for _, rec := range o {
		set[rec.Domain] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// DistinctClients counts the unique clients in a raw dataset — the paper's
// ground-truth bot count when the dataset is pre-filtered to DGA lookups.
func (r Raw) DistinctClients() int {
	set := make(map[string]struct{})
	for _, rec := range r {
		set[rec.Client] = struct{}{}
	}
	return len(set)
}

// FilterDomains keeps records whose domain satisfies keep.
func (r Raw) FilterDomains(keep func(string) bool) Raw {
	out := make(Raw, 0, len(r))
	for _, rec := range r {
		if keep(rec.Domain) {
			out = append(out, rec)
		}
	}
	return out
}

// FilterDomains keeps records whose domain satisfies keep.
func (o Observed) FilterDomains(keep func(string) bool) Observed {
	out := make(Observed, 0, len(o))
	for _, rec := range o {
		if keep(rec.Domain) {
			out = append(out, rec)
		}
	}
	return out
}

// Truncate coarsens timestamps to the given granularity, modelling vantage
// points that log at second resolution (paper §V-B).
func (o Observed) Truncate(granularity sim.Time) Observed {
	out := make(Observed, len(o))
	for i, rec := range o {
		rec.T = rec.T.Truncate(granularity)
		out[i] = rec
	}
	return out
}
