// Package trace defines the two datasets of the paper's §V: the raw
// dataset of client-level DNS lookups ⟨timestamp, client, server, domain,
// rcode⟩ (ground truth, visible only inside the network) and the observable
// dataset of cache-filtered lookups ⟨timestamp, forwarding server, domain⟩
// (what the border vantage point — and hence BotMeter — sees). It also
// provides CSV and JSON-lines serialisation so traces can be generated,
// stored and analysed by separate tools.
package trace

import (
	"slices"
	"sort"

	"botmeter/internal/sim"
	"botmeter/internal/symtab"
)

// RawRecord is one client-level DNS lookup with its resolution outcome.
type RawRecord struct {
	T      sim.Time `json:"t"`
	Client string   `json:"client"`
	Server string   `json:"server"`
	Domain string   `json:"domain"`
	NX     bool     `json:"nx"`
}

// ObservedRecord is one lookup forwarded by a local server to the border
// vantage point. Client identity is invisible at this level (paper §II-B).
type ObservedRecord struct {
	T      sim.Time `json:"t"`
	Server string   `json:"server"`
	Domain string   `json:"domain"`

	// ID is the interned symtab ID of Domain for records that originated
	// in-process (the border sets it when the query carried one). It is an
	// in-memory fast-path hint only: never serialised (traces on disk are
	// strings; readers leave it symtab.None) and never required — ID ==
	// symtab.None simply routes matching/estimation through the string
	// paths.
	ID symtab.ID `json:"-"`
}

// Raw is an ordered raw dataset.
type Raw []RawRecord

// Observed is an ordered observable dataset.
type Observed []ObservedRecord

// Sort orders the dataset by timestamp (stable, preserving insertion order
// of simultaneous records). A stable sort's output is uniquely determined by
// the input, so the generic slices.SortStableFunc here produces the exact
// record order the earlier reflect-based sort.SliceStable did — just without
// reflect's per-swap overhead, which dominated multi-million-record trace
// normalisation.
func (r Raw) Sort() {
	slices.SortStableFunc(r, func(a, b RawRecord) int {
		switch {
		case a.T < b.T:
			return -1
		case a.T > b.T:
			return 1
		}
		return 0
	})
}

// Sort orders the dataset by timestamp (stable; see Raw.Sort on why the
// generic sort is order-identical to the reflect-based one it replaced).
func (o Observed) Sort() {
	slices.SortStableFunc(o, func(a, b ObservedRecord) int {
		switch {
		case a.T < b.T:
			return -1
		case a.T > b.T:
			return 1
		}
		return 0
	})
}

// IsSorted reports whether the dataset is in non-decreasing timestamp order
// — the precondition for the zero-copy WindowSorted fast path.
func (o Observed) IsSorted() bool {
	for i := 1; i < len(o); i++ {
		if o[i].T < o[i-1].T {
			return false
		}
	}
	return true
}

// Window filters records to the half-open interval w.
func (r Raw) Window(w sim.Window) Raw {
	out := make(Raw, 0, len(r))
	for _, rec := range r {
		if w.Contains(rec.T) {
			out = append(out, rec)
		}
	}
	return out
}

// Window filters records to the half-open interval w.
//
// Time-sorted datasets — every in-process trace (the simulation engine
// emits in virtual-time order) and anything normalized with Sort — take a
// zero-copy fast path: the interval's bounds are found by binary search and
// the result is a subslice of o. Unsorted datasets fall back to a filtering
// copy. Callers must treat the result as read-only either way; the analysis
// pipeline only ever reads windowed views. Window was the top allocation
// site of the per-day analysis loop (one epoch-sized copy per estimator
// call) before the fast path.
func (o Observed) Window(w sim.Window) Observed {
	sorted := true
	for i := 1; i < len(o); i++ {
		if o[i].T < o[i-1].T {
			sorted = false
			break
		}
	}
	if sorted {
		return o.WindowSorted(w)
	}
	out := make(Observed, 0, len(o))
	for _, rec := range o {
		if w.Contains(rec.T) {
			out = append(out, rec)
		}
	}
	return out
}

// WindowSorted filters a KNOWN time-sorted dataset to the half-open
// interval w in O(log n): the interval's bounds are found by binary search
// and the result is a read-only subslice of o. It is Window's fast path
// without Window's O(n) sortedness re-scan — for callers that window the
// same dataset many times (the per-day analysis loops window a season-long
// trace hundreds of times), checking sortedness once via IsSorted and then
// slicing with WindowSorted turns a quadratic scan bill into one pass.
// Calling it on unsorted data returns an arbitrary subslice; callers own
// the precondition.
func (o Observed) WindowSorted(w sim.Window) Observed {
	lo := sort.Search(len(o), func(i int) bool { return o[i].T >= w.Start })
	hi := lo + sort.Search(len(o)-lo, func(i int) bool { return o[lo+i].T >= w.End })
	return o[lo:hi:hi]
}

// ByServer groups observed records by forwarding server, preserving order.
// A dataset from a single server — the common shape in per-server analysis
// pipelines and single-vantage experiments — is returned as one aliased
// group with no copying (detected with cheap string compares, no hashing).
// Otherwise two passes: the first sizes each server's group so the second
// fills exact-capacity slices — no append regrowth, which dominated the
// grouping cost on multi-million-record traces.
func (o Observed) ByServer() map[string]Observed {
	single := true
	for i := 1; i < len(o); i++ {
		if o[i].Server != o[0].Server {
			single = false
			break
		}
	}
	if single {
		if len(o) == 0 {
			return map[string]Observed{}
		}
		return map[string]Observed{o[0].Server: o}
	}
	counts := make(map[string]int)
	for _, rec := range o {
		counts[rec.Server]++
	}
	out := make(map[string]Observed, len(counts))
	for _, rec := range o {
		s, ok := out[rec.Server]
		if !ok {
			s = make(Observed, 0, counts[rec.Server])
		}
		out[rec.Server] = append(s, rec)
	}
	return out
}

// Servers returns the distinct forwarding servers, sorted.
func (o Observed) Servers() []string {
	set := make(map[string]struct{})
	for _, rec := range o {
		set[rec.Server] = struct{}{}
	}
	names := make([]string, 0, len(set))
	for s := range set {
		names = append(names, s)
	}
	sort.Strings(names)
	return names
}

// Domains returns the distinct domains in the dataset, sorted.
func (o Observed) Domains() []string {
	set := make(map[string]struct{})
	for _, rec := range o {
		set[rec.Domain] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// DistinctDomainCount counts the distinct domains without materialising the
// sorted name list Domains builds. When every record carries an interned ID
// the count deduplicates through a bitset indexed by ID — IDs are dense
// (interned sequentially from 1), so the bitset spans at most the intern
// table and each record costs one masked load instead of a map probe —
// which is valid because ID ↔ domain is a bijection within one intern
// table; any string-only record routes the whole count through strings.
func (o Observed) DistinctDomainCount() int {
	if len(o) == 0 {
		return 0
	}
	maxID := symtab.None
	for _, rec := range o {
		if rec.ID == symtab.None {
			// Distinct domains are typically orders of magnitude fewer than
			// records (bots re-query the same pool), so the set hint is
			// capped — a hint of len(o) would allocate and zero a
			// records-sized bucket array per call.
			hint := len(o)
			if hint > 1024 {
				hint = 1024
			}
			set := make(map[string]struct{}, hint)
			for _, r := range o {
				set[r.Domain] = struct{}{}
			}
			return len(set)
		}
		if rec.ID > maxID {
			maxID = rec.ID
		}
	}
	words := make([]uint64, int(maxID)/64+1)
	n := 0
	for _, rec := range o {
		w, bit := int(rec.ID)>>6, uint64(1)<<(uint(rec.ID)&63)
		if words[w]&bit == 0 {
			words[w] |= bit
			n++
		}
	}
	return n
}

// Builder accumulates an Observed dataset in fixed-size chunks. Appending
// to one grown slice re-copies the whole prefix repeatedly (Go's large-slice
// growth factor makes cumulative allocation ~5× the final size) and
// presizing to an upper bound allocates and zeroes memory that filtered
// appends never use; chunks allocate exactly once each and Build flattens
// them once into an exact-size slice. The zero value is ready to use.
type Builder struct {
	done  []Observed // filled chunks, in append order
	cur   Observed   // chunk being filled
	total int
}

// builderChunk is the Builder chunk capacity (~3.5 MiB of records).
const builderChunk = 1 << 16

// Append adds one record.
func (b *Builder) Append(rec ObservedRecord) {
	if len(b.cur) == cap(b.cur) {
		if cap(b.cur) > 0 {
			b.done = append(b.done, b.cur)
		}
		b.cur = make(Observed, 0, builderChunk)
	}
	b.cur = append(b.cur, rec)
	b.total++
}

// Len reports the number of records appended so far.
func (b *Builder) Len() int { return b.total }

// Build flattens the chunks into one contiguous exact-size dataset,
// preserving append order. The builder remains valid and keeps its records;
// Build may be called repeatedly (each call allocates a fresh slice).
func (b *Builder) Build() Observed {
	if b.total == 0 {
		return nil
	}
	if len(b.done) == 0 {
		// Single partially-filled chunk: hand it out directly. Appends keep
		// filling the spare capacity but never move records the caller can
		// see, and Builder users discard the builder after Build anyway.
		return b.cur
	}
	flat := make(Observed, 0, b.total)
	for _, c := range b.done {
		flat = append(flat, c...)
	}
	return append(flat, b.cur...)
}

// DistinctClients counts the unique clients in a raw dataset — the paper's
// ground-truth bot count when the dataset is pre-filtered to DGA lookups.
func (r Raw) DistinctClients() int {
	set := make(map[string]struct{})
	for _, rec := range r {
		set[rec.Client] = struct{}{}
	}
	return len(set)
}

// FilterDomains keeps records whose domain satisfies keep.
func (r Raw) FilterDomains(keep func(string) bool) Raw {
	out := make(Raw, 0, len(r))
	for _, rec := range r {
		if keep(rec.Domain) {
			out = append(out, rec)
		}
	}
	return out
}

// FilterDomains keeps records whose domain satisfies keep.
func (o Observed) FilterDomains(keep func(string) bool) Observed {
	out := make(Observed, 0, len(o))
	for _, rec := range o {
		if keep(rec.Domain) {
			out = append(out, rec)
		}
	}
	return out
}

// Truncate coarsens timestamps to the given granularity, modelling vantage
// points that log at second resolution (paper §V-B).
func (o Observed) Truncate(granularity sim.Time) Observed {
	out := make(Observed, len(o))
	for i, rec := range o {
		rec.T = rec.T.Truncate(granularity)
		out[i] = rec
	}
	return out
}
