package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. All methods are nil-safe
// no-ops, so disabled instrumentation costs one predictable branch.
type Counter struct {
	v      atomic.Uint64
	name   string
	labels []string
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) sortKey() string { return seriesName(c.name, c.labels) }

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits   atomic.Uint64
	name   string
	labels []string
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (CAS loop — gauges are not hot-path instruments).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) sortKey() string { return seriesName(g.name, g.labels) }

// GaugeFunc is a callback gauge: its value is computed by a function at
// exposition time (see Registry.GaugeFunc). The function is evaluated
// outside the registry lock.
type GaugeFunc struct {
	fn     func() float64
	name   string
	labels []string
}

// Value evaluates the callback. Nil-safe (0).
func (g *GaugeFunc) Value() float64 {
	if g == nil || g.fn == nil {
		return 0
	}
	return g.fn()
}

func (g *GaugeFunc) sortKey() string { return seriesName(g.name, g.labels) }

// Default bucket bounds. LatencyBuckets are seconds (Prometheus
// convention); SizeBuckets are powers of four, suiting both byte sizes and
// cardinalities.
var (
	LatencyBuckets = []float64{0.000005, 0.00005, 0.0005, 0.005, 0.025, 0.1, 0.5, 1, 5}
	SizeBuckets    = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}
)

// Histogram is a fixed-bucket histogram: per-bucket atomic counts plus an
// atomic sum. Bucket bounds are upper bounds (le); an implicit +Inf bucket
// catches the rest. Observe is lock-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
	name    string
	labels  []string
}

func newHistogram(name string, bounds []float64, labels []string) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{
		bounds:  b,
		buckets: make([]atomic.Uint64, len(b)+1),
		name:    name,
		labels:  append([]string(nil), labels...),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the upper bounds and the per-bucket (non-cumulative)
// counts, the final count being the +Inf bucket. Nil-safe (nil, nil).
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return bounds, counts
}

func (h *Histogram) sortKey() string { return seriesName(h.name, h.labels) }
