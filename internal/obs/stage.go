package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// StageSet accumulates coarse per-stage wall-clock and allocation totals —
// the timers behind `botmeter -verbose` and `benchgen -timings`. Stages are
// keyed by name; repeated stages accumulate. All methods are safe for
// concurrent use and nil-safe (a nil *StageSet records nothing), so
// instrumented pipelines pay nothing when timing is off.
//
// Concurrency: per-stage totals are plain atomics, so the steady state of
// Observe (stage name already known) takes a read-lock for the map lookup
// and three atomic adds — no per-stage mutex is held while trial workers
// from the parallel experiment engine (internal/parallel) report into the
// same stage concurrently. The write-lock is taken only the first time a
// stage name appears.
//
// Allocation deltas are read from runtime.MemStats.TotalAlloc, which is a
// process-wide monotonic total: concurrent stages attribute each other's
// allocations to themselves, so treat Bytes as indicative, not exact —
// under workers>1 the per-stage split blurs while the total stays right.
type StageSet struct {
	mu     sync.RWMutex
	order  []string
	stages map[string]*stageCounters
	now    func() time.Time
}

// stageCounters is the lock-free accumulation cell of one stage.
type stageCounters struct {
	count atomic.Int64
	wall  atomic.Int64 // nanoseconds
	bytes atomic.Uint64
}

// StageStat is the accumulated cost of one named stage.
type StageStat struct {
	// Name is the stage label.
	Name string
	// Count is how many times the stage ran.
	Count int
	// Wall is the total wall-clock time.
	Wall time.Duration
	// Bytes is the total allocated bytes (TotalAlloc delta).
	Bytes uint64
}

// NewStageSet builds an empty, enabled stage set.
func NewStageSet() *StageSet {
	return &StageSet{stages: make(map[string]*stageCounters), now: time.Now}
}

// Observe merges one completed stage run. Nil-safe.
func (s *StageSet) Observe(name string, wall time.Duration, bytes uint64) {
	if s == nil {
		return
	}
	s.mu.RLock()
	st, ok := s.stages[name]
	s.mu.RUnlock()
	if !ok {
		s.mu.Lock()
		if st, ok = s.stages[name]; !ok { // lost the insert race?
			st = &stageCounters{}
			s.stages[name] = st
			s.order = append(s.order, name)
		}
		s.mu.Unlock()
	}
	st.count.Add(1)
	st.wall.Add(int64(wall))
	st.bytes.Add(bytes)
}

// StageSpan is one running stage measurement.
type StageSpan struct {
	set    *StageSet
	name   string
	t0     time.Time
	alloc0 uint64
}

// Start begins timing a named stage; call End on the returned span.
// Nil-safe: a nil set returns a nil span whose End no-ops.
func (s *StageSet) Start(name string) *StageSpan {
	if s == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &StageSpan{set: s, name: name, t0: s.now(), alloc0: ms.TotalAlloc}
}

// End completes the measurement and merges it into the set. Nil-safe.
func (sp *StageSpan) End() {
	if sp == nil {
		return
	}
	wall := sp.set.now().Sub(sp.t0)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var bytes uint64
	if ms.TotalAlloc > sp.alloc0 {
		bytes = ms.TotalAlloc - sp.alloc0
	}
	sp.set.Observe(sp.name, wall, bytes)
}

// Time runs fn as a named stage. Nil-safe: fn still runs, untimed.
func (s *StageSet) Time(name string, fn func() error) error {
	sp := s.Start(name)
	err := fn()
	sp.End()
	return err
}

// Stats returns the accumulated stages in first-seen order. Nil-safe.
func (s *StageSet) Stats() []StageStat {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]StageStat, 0, len(s.order))
	for _, name := range s.order {
		st := s.stages[name]
		out = append(out, StageStat{
			Name:  name,
			Count: int(st.count.Load()),
			Wall:  time.Duration(st.wall.Load()),
			Bytes: st.bytes.Load(),
		})
	}
	return out
}

// SortedStats returns the stages sorted by descending wall time.
func (s *StageSet) SortedStats() []StageStat {
	out := s.Stats()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
	return out
}

// Table renders an aligned per-stage timing table ("" when empty), e.g.
//
//	stage                       runs        wall     wall/run       alloc
//	read-trace                     1     12.3ms       12.3ms      1.2MiB
func (s *StageSet) Table() string {
	stats := s.Stats()
	if len(stats) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s %12s %12s %10s\n", "stage", "runs", "wall", "wall/run", "alloc")
	var totalWall time.Duration
	var totalBytes uint64
	for _, st := range stats {
		per := st.Wall
		if st.Count > 0 {
			per = st.Wall / time.Duration(st.Count)
		}
		fmt.Fprintf(&b, "%-28s %6d %12s %12s %10s\n",
			st.Name, st.Count, roundDuration(st.Wall), roundDuration(per), humanBytes(st.Bytes))
		totalWall += st.Wall
		totalBytes += st.Bytes
	}
	fmt.Fprintf(&b, "%-28s %6s %12s %12s %10s\n", "total", "", roundDuration(totalWall), "", humanBytes(totalBytes))
	return b.String()
}

// roundDuration trims durations to a readable precision.
func roundDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(10 * time.Nanosecond).String()
	}
}

// humanBytes renders byte counts in binary units.
func humanBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := uint64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
