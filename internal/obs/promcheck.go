package obs

// promcheck is a strict validator for the Prometheus text exposition
// format (version 0.0.4), used by CI and the concurrent-scrape tests to
// prove that /metrics output — including adversarial label values routed
// through escapeLabelValue — is parseable by a real scraper. It checks:
//
//   - metric and label name character sets;
//   - label value escaping (only \\, \", \n are legal escapes; no raw
//     newline or unescaped quote inside a value);
//   - comment lines: HELP/TYPE shape, known TYPE values, at most one
//     HELP and one TYPE per family, TYPE before the family's samples;
//   - sample values (Go float syntax plus +Inf/-Inf/NaN) and optional
//     integer timestamps;
//   - duplicate series (same name + same canonical label set);
//   - histogram families: _bucket samples need an le label, cumulative
//     bucket counts must be non-decreasing, and a +Inf bucket must close
//     every histogram that emitted buckets.
//
// It is deliberately stricter than most real parsers: the point is to
// catch malformed output at CI time, not to maximally accept input.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// histState accumulates per-family histogram checks.
type histState struct {
	lastCum   float64 // last cumulative bucket count seen per label-set
	lastKey   string  // label-set key of lastCum
	sawBucket bool
	sawInf    map[string]bool // label-set key (minus le) → +Inf bucket seen
}

// ValidatePrometheusText reads an exposition and returns the first
// format violation found, or nil when the input is well-formed.
func ValidatePrometheusText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	seen := make(map[string]bool)    // full series key → dup detection
	typed := make(map[string]string) // family → declared TYPE
	helped := make(map[string]bool)  // family → HELP seen
	sampled := make(map[string]bool) // family → samples seen
	hists := make(map[string]*histState)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, typed, helped, sampled); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, seen, typed, sampled, hists); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("promcheck: read: %w", err)
	}
	for fam, hs := range hists {
		if !hs.sawBucket {
			continue
		}
		for key, sawInf := range hs.sawInf {
			if !sawInf {
				return fmt.Errorf("promcheck: histogram %s%s has buckets but no le=\"+Inf\" bucket", fam, key)
			}
		}
	}
	return nil
}

// validateComment checks a "# HELP ..." / "# TYPE ..." line. Other
// comments are legal and ignored.
func validateComment(line string, typed map[string]string, helped, sampled map[string]bool) error {
	rest := strings.TrimPrefix(line, "#")
	if !strings.HasPrefix(rest, " ") {
		return fmt.Errorf("promcheck: comment missing space after #: %q", line)
	}
	fields := strings.SplitN(rest[1:], " ", 3)
	switch fields[0] {
	case "HELP":
		if len(fields) < 2 {
			return fmt.Errorf("promcheck: HELP without metric name: %q", line)
		}
		name := fields[1]
		if !validMetricName(name) {
			return fmt.Errorf("promcheck: HELP for invalid metric name %q", name)
		}
		if helped[name] {
			return fmt.Errorf("promcheck: duplicate HELP for %q", name)
		}
		helped[name] = true
	case "TYPE":
		if len(fields) != 3 {
			return fmt.Errorf("promcheck: TYPE needs name and type: %q", line)
		}
		name, typ := fields[1], fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("promcheck: TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("promcheck: unknown TYPE %q for %q", typ, name)
		}
		if _, dup := typed[name]; dup {
			return fmt.Errorf("promcheck: duplicate TYPE for %q", name)
		}
		if sampled[name] {
			return fmt.Errorf("promcheck: TYPE for %q after its samples", name)
		}
		typed[name] = typ
	}
	return nil
}

// validateSample checks one sample line: name, label block, value,
// optional timestamp.
func validateSample(line string, seen map[string]bool, typed map[string]string, sampled map[string]bool, hists map[string]*histState) error {
	name, rest, err := splitName(line)
	if err != nil {
		return err
	}
	labels, rest, err := parseLabels(rest)
	if err != nil {
		return fmt.Errorf("promcheck: %s: %w", name, err)
	}
	rest = strings.TrimLeft(rest, " ")
	if rest == "" {
		return fmt.Errorf("promcheck: %s: missing value", name)
	}
	parts := strings.Fields(rest)
	if len(parts) > 2 {
		return fmt.Errorf("promcheck: %s: trailing garbage after value: %q", name, rest)
	}
	val, err := parseValue(parts[0])
	if err != nil {
		return fmt.Errorf("promcheck: %s: %w", name, err)
	}
	if len(parts) == 2 {
		if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
			return fmt.Errorf("promcheck: %s: bad timestamp %q", name, parts[1])
		}
	}
	key := name + canonicalLabelKey(labels, "")
	if seen[key] {
		return fmt.Errorf("promcheck: duplicate series %s", key)
	}
	seen[key] = true

	// Family bookkeeping: a _bucket/_sum/_count sample belongs to its
	// histogram family when one is declared.
	fam := name
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && typed[base] == "histogram" {
			fam = base
			break
		}
	}
	sampled[fam] = true
	if typed[fam] == "histogram" && strings.HasSuffix(name, "_bucket") {
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("promcheck: histogram bucket %s missing le label", name)
		}
		if _, err := parseValue(le); err != nil {
			return fmt.Errorf("promcheck: histogram %s: bad le %q", fam, le)
		}
		hs := hists[fam]
		if hs == nil {
			hs = &histState{sawInf: make(map[string]bool)}
			hists[fam] = hs
		}
		hs.sawBucket = true
		lkey := canonicalLabelKey(labels, "le")
		if hs.lastKey == lkey && val < hs.lastCum {
			return fmt.Errorf("promcheck: histogram %s%s: bucket counts not cumulative (%g after %g)", fam, lkey, val, hs.lastCum)
		}
		hs.lastKey, hs.lastCum = lkey, val
		if le == "+Inf" {
			hs.sawInf[lkey] = true
		} else if !hs.sawInf[lkey] {
			hs.sawInf[lkey] = false
		}
	}
	return nil
}

// splitName splits "name{...} value" / "name value" at the name boundary.
func splitName(line string) (name, rest string, err error) {
	end := strings.IndexAny(line, "{ ")
	if end < 0 {
		return "", "", fmt.Errorf("promcheck: sample without value: %q", line)
	}
	name = line[:end]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("promcheck: invalid metric name %q", name)
	}
	return name, line[end:], nil
}

// parseLabels consumes an optional {k="v",...} block, validating names
// and escape sequences, and returns the labels plus the remaining text.
func parseLabels(rest string) (map[string]string, string, error) {
	labels := make(map[string]string)
	if !strings.HasPrefix(rest, "{") {
		return labels, rest, nil
	}
	i := 1
	for {
		if i >= len(rest) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[i] == '}' {
			return labels, rest[i+1:], nil
		}
		if rest[i] == ',' {
			i++
			continue
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' near %q", rest[i:])
		}
		lname := rest[i : i+eq]
		if !validLabelName(lname) {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return nil, "", fmt.Errorf("label %s: value not quoted", lname)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("label %s: unterminated value", lname)
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\n' {
				return nil, "", fmt.Errorf("label %s: raw newline in value", lname)
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, "", fmt.Errorf("label %s: dangling backslash", lname)
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: illegal escape \\%c", lname, rest[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[lname]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", lname)
		}
		labels[lname] = val.String()
	}
}

// parseValue accepts Go float syntax plus the Prometheus specials.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// canonicalLabelKey renders labels sorted by name, excluding one name
// (used to group histogram buckets across le).
func canonicalLabelKey(labels map[string]string, exclude string) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for k := range labels {
		if k != exclude {
			names = append(names, k)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
