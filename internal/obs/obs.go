// Package obs is the stdlib-only observability layer shared by the
// simulator, the live UDP daemons (cmd/resolver, cmd/vantage) and the
// analysis pipeline (cmd/botmeter, cmd/benchgen). It provides:
//
//   - a lock-cheap metrics Registry — atomic Counters, Gauges and
//     fixed-bucket Histograms — exposed in Prometheus text format
//     (WritePrometheus) and over HTTP (NewMux);
//   - leveled, structured logging (Logger) in logfmt or JSON, replacing the
//     daemons' ad-hoc log.Printf calls;
//   - span-style query-lifecycle tracing (Tracer/Span): a sampled lookup is
//     followed from client through cache (hit/miss/stale) to the upstream
//     (attempts, retries, injected faults), and completed spans land in a
//     bounded ring buffer dumpable as JSONL (/debug/spans);
//   - coarse per-stage wall/alloc timers (StageSet) behind botmeter
//     -verbose and benchgen -timings.
//
// Every handle is nil-safe: a nil *Registry hands out nil instruments, and
// nil *Counter/*Gauge/*Histogram/*Logger/*Tracer/*Span/*StageSet methods
// are single-branch no-ops. Instrumented hot paths therefore pay only a
// predictable nil check when observability is disabled — the overhead is
// bounded by BenchmarkObs* in bench_test.go and the dnssim benchmarks.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry holds named metrics. The registry itself is mutex-protected (it
// is touched only at instrument-creation and exposition time); the
// instruments it hands out are atomic and safe for concurrent use on hot
// paths. A nil *Registry is a valid, disabled registry: every lookup
// returns a nil instrument whose methods no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]*GaugeFunc
	histograms map[string]*Histogram
	help       map[string]string // metric family name → HELP text
}

// NewRegistry builds an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]*GaugeFunc),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Help attaches a HELP string to a metric family name. No-op on nil.
func (r *Registry) Help(name, text string) *Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
	return r
}

// metricKey renders the identity of one series: family name plus a
// canonical (sorted) label block.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + renderLabels(labels)
}

// renderLabels renders alternating key/value pairs as a Prometheus label
// block with keys sorted for a canonical identity. An odd trailing key is
// paired with an empty value rather than dropped, so the mistake is
// visible in the exposition.
func renderLabels(kv []string) string {
	type pair struct{ k, v string }
	pairs := make([]pair, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		p := pair{k: kv[i]}
		if i+1 < len(kv) {
			p.v = kv[i+1]
		}
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Counter returns (creating on first use) the counter for name plus
// alternating label key/value pairs. Nil registry → nil counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{name: name, labels: append([]string(nil), labels...)}
	r.counters[key] = c
	return c
}

// Gauge returns (creating on first use) the gauge for name plus labels.
// Nil registry → nil gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{name: name, labels: append([]string(nil), labels...)}
	r.gauges[key] = g
	return g
}

// GaugeFunc registers a callback gauge: fn is evaluated at exposition
// time, so values that age between samples — watermark lag vs. wall clock,
// checkpoint age — are always fresh at scrape instead of as stale as the
// last Set. fn runs outside the registry lock and must be safe for
// concurrent calls. Registration is first-wins: a name+labels key already
// held by a callback or plain gauge keeps its first registration. Nil
// registry or nil fn is a no-op.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) *GaugeFunc {
	if r == nil || fn == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gaugeFuncs[key]; ok {
		return g
	}
	if _, ok := r.gauges[key]; ok {
		return nil
	}
	g := &GaugeFunc{fn: fn, name: name, labels: append([]string(nil), labels...)}
	r.gaugeFuncs[key] = g
	return g
}

// Histogram returns (creating on first use) the histogram for name plus
// labels, with the given upper bucket bounds (strictly increasing; a +Inf
// bucket is implicit). Bounds are fixed at first creation; later calls with
// different bounds return the existing histogram. Nil registry → nil
// histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[key]; ok {
		return h
	}
	h := newHistogram(name, bounds, labels)
	r.histograms[key] = h
	return h
}

// CounterValue reports the current value of the named counter series (0
// when absent) — a test and health-check convenience, not a hot-path API.
func (r *Registry) CounterValue(name string, labels ...string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[metricKey(name, labels)]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue reports the current value of the named gauge series — plain
// or callback — (0 when absent). Callback gauges are evaluated outside the
// registry lock.
func (r *Registry) GaugeValue(name string, labels ...string) float64 {
	if r == nil {
		return 0
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	g := r.gauges[key]
	gf := r.gaugeFuncs[key]
	r.mu.Unlock()
	if g != nil {
		return g.Value()
	}
	return gf.Value()
}

// snapshot returns the instruments sorted by (family, label block) for
// deterministic exposition. Callback gauges are returned unevaluated —
// the caller evaluates them outside the registry lock.
func (r *Registry) snapshot() (counters []*Counter, gauges []*Gauge, gaugeFuncs []*GaugeFunc, histograms []*Histogram, help map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	for _, g := range r.gaugeFuncs {
		gaugeFuncs = append(gaugeFuncs, g)
	}
	for _, h := range r.histograms {
		histograms = append(histograms, h)
	}
	help = make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].sortKey() < counters[j].sortKey() })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].sortKey() < gauges[j].sortKey() })
	sort.Slice(gaugeFuncs, func(i, j int) bool { return gaugeFuncs[i].sortKey() < gaugeFuncs[j].sortKey() })
	sort.Slice(histograms, func(i, j int) bool { return histograms[i].sortKey() < histograms[j].sortKey() })
	return counters, gauges, gaugeFuncs, histograms, help
}

// seriesName renders "name{labels}" for exposition.
func seriesName(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + renderLabels(labels)
}

// seriesNameExtra renders "name{labels,extraK="extraV"}" — used for
// histogram le buckets.
func seriesNameExtra(name string, labels []string, extraK, extraV string) string {
	kv := make([]string, 0, len(labels)+2)
	kv = append(kv, labels...)
	kv = append(kv, extraK, extraV)
	return name + renderLabels(kv)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(f float64) string {
	if f == float64(int64(f)) && f < 1e15 && f > -1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
