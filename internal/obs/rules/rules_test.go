package rules

import (
	"strings"
	"testing"
)

// TestRuleLifecycle is the table test for the state machine, with
// particular attention to the threshold and clear boundaries: a sample
// exactly at the threshold breaches; a sample exactly at the clear level
// does NOT clear (clearing needs a strict crossing); the band between
// Clear and Threshold keeps a firing rule firing but never arms an OK one.
func TestRuleLifecycle(t *testing.T) {
	cases := []struct {
		name    string
		rule    Rule
		samples []float64
		want    []State
	}{
		{
			name:    "fires at exact threshold",
			rule:    Rule{Name: "r", Threshold: 5},
			samples: []float64{4.999, 5.0, 4.999},
			want:    []State{OK, Firing, OK},
		},
		{
			name: "clear boundary is exclusive",
			rule: Rule{Name: "r", Threshold: 5, Clear: 3},
			// 5.0 fires; 3.0 (== Clear) keeps firing; 2.999 clears.
			samples: []float64{5.0, 3.0, 2.999},
			want:    []State{Firing, Firing, OK},
		},
		{
			name: "hysteresis band holds but never arms",
			rule: Rule{Name: "r", Threshold: 5, Clear: 3},
			// 4 (inside the band) from OK: stays OK. 6 fires. 4 inside the
			// band while firing: holds. 2 clears. 4 again from OK: stays OK.
			samples: []float64{4, 6, 4, 2, 4},
			want:    []State{OK, Firing, Firing, OK, OK},
		},
		{
			name: "for=3 needs consecutive breaches",
			rule: Rule{Name: "r", Threshold: 1, For: 3},
			// Two breaches, a dip (resets), then three in a row.
			samples: []float64{1, 1, 0, 1, 1, 1},
			want:    []State{Pending, Pending, OK, Pending, Pending, Firing},
		},
		{
			name: "for with hysteresis: no re-arming while firing",
			rule: Rule{Name: "r", Threshold: 10, Clear: 5, For: 2},
			// 10,10 fires; 7 (band) holds; 4.999 clears; 10 is pending again.
			samples: []float64{10, 10, 7, 4.999, 10},
			want:    []State{Pending, Firing, Firing, OK, Pending},
		},
		{
			name:    "below op fires at exact threshold",
			rule:    Rule{Name: "r", Op: Below, Threshold: 2, Clear: 4},
			samples: []float64{2.001, 2.0, 4.0, 4.001},
			want:    []State{OK, Firing, Firing, OK},
		},
		{
			name: "zero threshold above rule",
			rule: Rule{Name: "r", Threshold: 0, Clear: 0},
			// Loss-rate rule with threshold 0 would fire on every sample ≥ 0;
			// the engine must honour that literally (callers pick thresholds).
			samples: []float64{0, -1},
			want:    []State{Firing, OK},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New()
			if err := e.Add(tc.rule); err != nil {
				t.Fatalf("Add: %v", err)
			}
			for i, v := range tc.samples {
				got := e.Eval(tc.rule.Name, v)
				if got != tc.want[i] {
					t.Fatalf("sample %d (%v): state %v, want %v", i, v, got, tc.want[i])
				}
				if st := e.State(tc.rule.Name); st != got {
					t.Fatalf("State() = %v disagrees with Eval() = %v", st, got)
				}
			}
		})
	}
}

func TestAddValidation(t *testing.T) {
	e := New()
	if err := e.Add(Rule{Threshold: 1}); err == nil {
		t.Fatal("nameless rule must be rejected")
	}
	if err := e.Add(Rule{Name: "bad", Threshold: 5, Clear: 6}); err == nil {
		t.Fatal("Above rule with Clear above Threshold must be rejected")
	}
	if err := e.Add(Rule{Name: "bad2", Op: Below, Threshold: 5, Clear: 4}); err == nil {
		t.Fatal("Below rule with Clear below Threshold must be rejected")
	}
	if err := e.Add(Rule{Name: "ok", Threshold: 5}); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	if err := e.Add(Rule{Name: "ok", Threshold: 7}); err == nil {
		t.Fatal("duplicate rule name must be rejected")
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1", e.Len())
	}
}

func TestFiringAndErr(t *testing.T) {
	e := New()
	for _, r := range []Rule{
		{Name: "freshness", Threshold: 5, Unit: "s"},
		{Name: "loss", Threshold: 0.01},
		{Name: "disagreement", Threshold: 0.5},
	} {
		if err := e.Add(r); err != nil {
			t.Fatalf("Add(%s): %v", r.Name, err)
		}
	}
	if err := e.Err(); err != nil {
		t.Fatalf("empty engine must be healthy, got %v", err)
	}
	e.Eval("freshness", 12.5)
	e.Eval("loss", 0.005)
	e.Eval("disagreement", 0.75)
	firing := e.Firing()
	if len(firing) != 2 || firing[0].Rule != "freshness" || firing[1].Rule != "disagreement" {
		t.Fatalf("Firing = %+v, want freshness+disagreement in registration order", firing)
	}
	err := e.Err()
	if err == nil {
		t.Fatal("firing rules must degrade Err")
	}
	for _, want := range []string{"degraded:", "freshness: 12.5s >= 5s", "disagreement: 0.75 >= 0.5"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Err %q missing %q", err, want)
		}
	}
	e.Eval("freshness", 1)
	e.Eval("disagreement", 0.1)
	if err := e.Err(); err != nil {
		t.Fatalf("cleared engine must be healthy, got %v", err)
	}
}

func TestTransitionsAndUnknownRules(t *testing.T) {
	e := New()
	if err := e.Add(Rule{Name: "r", Threshold: 5, Clear: 3, For: 2}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	var seen []Transition
	e.OnTransition(func(tr Transition) { seen = append(seen, tr) })
	for _, v := range []float64{6, 6, 6, 4, 2, 1} {
		e.Eval("r", v)
	}
	// OK→Pending, Pending→Firing, Firing→OK. No event for the held states.
	want := []Transition{
		{Rule: "r", From: OK, To: Pending, Value: 6},
		{Rule: "r", From: Pending, To: Firing, Value: 6},
		{Rule: "r", From: Firing, To: OK, Value: 2},
	}
	if len(seen) != len(want) {
		t.Fatalf("transitions: %+v, want %+v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d: %+v, want %+v", i, seen[i], want[i])
		}
	}
	if st := e.Eval("no-such-rule", 99); st != OK {
		t.Fatalf("unknown rule must evaluate OK, got %v", st)
	}
	if st := e.State("no-such-rule"); st != OK {
		t.Fatalf("unknown rule state must be OK, got %v", st)
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	if err := e.Add(Rule{Name: "r"}); err == nil {
		t.Fatal("nil engine must refuse Add")
	}
	e.OnTransition(nil)
	if e.Eval("r", 1) != OK || e.State("r") != OK || e.Firing() != nil || e.Err() != nil || e.Len() != 0 {
		t.Fatal("nil engine must be inert and healthy")
	}
}
