// Package rules is the Landscape Observatory's threshold rule engine
// (DESIGN.md §16): a small set of named rules — freshness SLO, estimator
// disagreement, lossy-ingest rate — evaluated against periodic samples,
// with Prometheus-alert-style semantics: a rule must breach its threshold
// for N consecutive evaluations before it fires ("for"), and once firing
// it clears only when the signal crosses a separate clear level
// (hysteresis), so a value oscillating at the threshold cannot flap the
// /healthz state.
//
// The engine is deliberately tiny: it holds no history (the series store
// does), evaluates synchronously on the sampler's goroutine, and exposes
// the aggregate as an error for /healthz plus per-transition callbacks for
// structured log events.
package rules

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Op orients a rule's comparison.
type Op int

// Orientations.
const (
	// Above breaches when value >= Threshold (lag, loss, disagreement).
	Above Op = iota
	// Below breaches when value <= Threshold (rates that must stay up).
	Below
)

// String returns the comparison glyph ("≥" / "≤").
func (o Op) String() string {
	if o == Below {
		return "<="
	}
	return ">="
}

// Rule is one threshold rule.
type Rule struct {
	// Name identifies the rule ("freshness", "disagreement", "loss").
	Name string
	// Op orients the comparison (default Above).
	Op Op
	// Threshold is the breach level: Above fires at value >= Threshold,
	// Below at value <= Threshold — the boundary sample itself breaches.
	Threshold float64
	// Clear is the hysteresis level a firing rule must cross to return to
	// OK: Above clears at value < Clear, Below at value > Clear. Zero means
	// Clear = Threshold (no hysteresis band). Must not sit on the breaching
	// side of Threshold.
	Clear float64
	// For is how many consecutive breaching evaluations arm the rule
	// before it fires (0 or 1 = the first breach fires). A non-breaching
	// sample while pending resets the count — transient spikes shorter
	// than For samples never fire.
	For int
	// Unit annotates values in messages ("s", "ratio"); optional.
	Unit string
}

// withDefaults normalises zero fields.
func (r Rule) withDefaults() Rule {
	if r.Clear == 0 {
		r.Clear = r.Threshold
	}
	if r.For <= 0 {
		r.For = 1
	}
	return r
}

// State is a rule's lifecycle position.
type State int

// States, healthiest first.
const (
	// OK: not breaching.
	OK State = iota
	// Pending: breaching, but for fewer than For consecutive samples.
	Pending
	// Firing: breached For consecutive samples and not yet cleared.
	Firing
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Firing:
		return "firing"
	default:
		return "ok"
	}
}

// Transition is one state change, delivered to the OnTransition callback.
type Transition struct {
	Rule  string
	From  State
	To    State
	Value float64
}

// Violation is one firing rule, for /healthz bodies and status lines.
type Violation struct {
	Rule      string
	Op        Op
	Value     float64
	Threshold float64
	Unit      string
}

// String renders "freshness: 12.3s >= 5s".
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s%s %s %s%s",
		v.Rule, trimFloat(v.Value), v.Unit, v.Op.String(), trimFloat(v.Threshold), v.Unit)
}

func trimFloat(f float64) string {
	return fmt.Sprintf("%.3g", f)
}

type ruleState struct {
	rule     Rule
	state    State
	breaches int
	value    float64
}

// Engine evaluates rules against samples. Safe for concurrent use; the
// sampler evaluates, /healthz reads.
type Engine struct {
	mu           sync.Mutex
	rules        map[string]*ruleState
	names        []string // insertion order for deterministic iteration
	onTransition func(Transition)
}

// New builds an empty engine.
func New() *Engine {
	return &Engine{rules: make(map[string]*ruleState)}
}

// OnTransition installs a callback invoked (synchronously, outside the
// engine lock) on every state change — the hook for structured log events.
func (e *Engine) OnTransition(fn func(Transition)) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.onTransition = fn
	e.mu.Unlock()
}

// Add registers a rule. Duplicate names and hysteresis levels on the
// breaching side of the threshold are errors.
func (e *Engine) Add(r Rule) error {
	if e == nil {
		return fmt.Errorf("rules: nil engine")
	}
	if r.Name == "" {
		return fmt.Errorf("rules: rule needs a name")
	}
	r = r.withDefaults()
	switch r.Op {
	case Above:
		if r.Clear > r.Threshold {
			return fmt.Errorf("rules: %s: clear %v above threshold %v would never clear", r.Name, r.Clear, r.Threshold)
		}
	case Below:
		if r.Clear < r.Threshold {
			return fmt.Errorf("rules: %s: clear %v below threshold %v would never clear", r.Name, r.Clear, r.Threshold)
		}
	default:
		return fmt.Errorf("rules: %s: unknown op %d", r.Name, r.Op)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.rules[r.Name]; dup {
		return fmt.Errorf("rules: duplicate rule %q", r.Name)
	}
	e.rules[r.Name] = &ruleState{rule: r}
	e.names = append(e.names, r.Name)
	return nil
}

// Len reports the number of registered rules (0 for nil).
func (e *Engine) Len() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.rules)
}

// Eval feeds one sample to the named rule and returns its new state.
// Unknown rules are OK (the sampler may observe signals no rule watches).
// Nil-safe.
func (e *Engine) Eval(name string, value float64) State {
	if e == nil {
		return OK
	}
	e.mu.Lock()
	rs, ok := e.rules[name]
	if !ok {
		e.mu.Unlock()
		return OK
	}
	from := rs.state
	rs.value = value
	r := rs.rule
	breach := value >= r.Threshold
	cleared := value < r.Clear
	if r.Op == Below {
		breach = value <= r.Threshold
		cleared = value > r.Clear
	}
	switch rs.state {
	case Firing:
		// Hysteresis: only a crossing of Clear releases a firing rule; the
		// band between Clear and Threshold keeps it firing.
		if cleared {
			rs.state = OK
			rs.breaches = 0
		}
	default:
		if breach {
			rs.breaches++
			if rs.breaches >= r.For {
				rs.state = Firing
			} else {
				rs.state = Pending
			}
		} else {
			rs.state = OK
			rs.breaches = 0
		}
	}
	to := rs.state
	fn := e.onTransition
	e.mu.Unlock()
	if fn != nil && from != to {
		fn(Transition{Rule: name, From: from, To: to, Value: value})
	}
	return to
}

// State reports a rule's current state (OK for unknown names and nil).
func (e *Engine) State(name string) State {
	if e == nil {
		return OK
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if rs, ok := e.rules[name]; ok {
		return rs.state
	}
	return OK
}

// Firing returns the firing rules in registration order.
func (e *Engine) Firing() []Violation {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Violation
	for _, name := range e.names {
		rs := e.rules[name]
		if rs.state == Firing {
			out = append(out, Violation{
				Rule:      name,
				Op:        rs.rule.Op,
				Value:     rs.value,
				Threshold: rs.rule.Threshold,
				Unit:      rs.rule.Unit,
			})
		}
	}
	return out
}

// Err aggregates the firing rules into one error for /healthz: nil when
// nothing is firing, otherwise "degraded: rule: value >= threshold; …".
func (e *Engine) Err() error {
	firing := e.Firing()
	if len(firing) == 0 {
		return nil
	}
	parts := make([]string, len(firing))
	for i, v := range firing {
		parts[i] = v.String()
	}
	sort.Strings(parts)
	return fmt.Errorf("degraded: %s", strings.Join(parts, "; "))
}
