package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int8

// Severities, lowest to highest.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel parses a level name ("debug", "info", "warn"/"warning",
// "error"), case-insensitively.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// Format selects the structured log encoding.
type Format int8

// Encodings.
const (
	FormatLogfmt Format = iota
	FormatJSON
)

// ParseFormat parses "logfmt" or "json", case-insensitively.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "logfmt", "":
		return FormatLogfmt, nil
	case "json":
		return FormatJSON, nil
	default:
		return FormatLogfmt, fmt.Errorf("obs: unknown log format %q (want logfmt or json)", s)
	}
}

// LogConfig configures a Logger.
type LogConfig struct {
	// Level is the minimum severity emitted.
	Level Level
	// Format selects logfmt (default) or JSON encoding.
	Format Format
	// Component tags every line with component=<name>.
	Component string
	// Now overrides the timestamp source (tests). Nil means time.Now.
	Now func() time.Time
}

// Logger is a leveled, structured logger. Lines carry a UTC RFC 3339
// timestamp, the level, the component and alternating key/value fields.
// Writes are serialised by an internal mutex (shared across derived
// loggers) so concurrent components interleave whole lines. A nil *Logger
// discards everything.
type Logger struct {
	mu        *sync.Mutex
	w         io.Writer
	level     Level
	format    Format
	component string
	now       func() time.Time
	base      []any // bound key/value pairs from With
}

// NewLogger builds a logger writing to w.
func NewLogger(w io.Writer, cfg LogConfig) *Logger {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Logger{
		mu:        &sync.Mutex{},
		w:         w,
		level:     cfg.Level,
		format:    cfg.Format,
		component: cfg.Component,
		now:       now,
	}
}

// Component returns a derived logger tagged with a different component,
// sharing the writer, mutex, level and format. Nil-safe.
func (l *Logger) Component(name string) *Logger {
	if l == nil {
		return nil
	}
	dup := *l
	dup.component = name
	return &dup
}

// With returns a derived logger with extra key/value pairs bound to every
// line. Nil-safe.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	dup := *l
	dup.base = append(append([]any(nil), l.base...), kv...)
	return &dup
}

// Enabled reports whether a line at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	ts := l.now().UTC().Format(time.RFC3339Nano)
	var b strings.Builder
	switch l.format {
	case FormatJSON:
		b.WriteString(`{"ts":`)
		b.WriteString(strconv.Quote(ts))
		b.WriteString(`,"level":`)
		b.WriteString(strconv.Quote(lv.String()))
		if l.component != "" {
			b.WriteString(`,"component":`)
			b.WriteString(strconv.Quote(l.component))
		}
		b.WriteString(`,"msg":`)
		b.WriteString(strconv.Quote(msg))
		writePairs(&b, l.base, jsonPair)
		writePairs(&b, kv, jsonPair)
		b.WriteString("}\n")
	default: // logfmt
		b.WriteString("ts=")
		b.WriteString(ts)
		b.WriteString(" level=")
		b.WriteString(lv.String())
		if l.component != "" {
			b.WriteString(" component=")
			b.WriteString(logfmtValue(l.component))
		}
		b.WriteString(" msg=")
		b.WriteString(logfmtValue(msg))
		writePairs(&b, l.base, logfmtPair)
		writePairs(&b, kv, logfmtPair)
		b.WriteByte('\n')
	}
	l.mu.Lock()
	io.WriteString(l.w, b.String()) //nolint:errcheck // logging is best-effort
	l.mu.Unlock()
}

// writePairs encodes alternating key/value fields; an odd trailing key gets
// a null/empty value so the mistake is visible rather than silent.
func writePairs(b *strings.Builder, kv []any, enc func(b *strings.Builder, k string, v any)) {
	for i := 0; i < len(kv); i += 2 {
		k := fmt.Sprint(kv[i])
		var v any
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		enc(b, k, v)
	}
}

func jsonPair(b *strings.Builder, k string, v any) {
	b.WriteByte(',')
	b.WriteString(strconv.Quote(k))
	b.WriteByte(':')
	switch x := v.(type) {
	case nil:
		b.WriteString("null")
	case bool:
		b.WriteString(strconv.FormatBool(x))
	case int:
		b.WriteString(strconv.Itoa(x))
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case uint64:
		b.WriteString(strconv.FormatUint(x, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case error:
		b.WriteString(strconv.Quote(x.Error()))
	case string:
		b.WriteString(strconv.Quote(x))
	default:
		b.WriteString(strconv.Quote(fmt.Sprint(x)))
	}
}

func logfmtPair(b *strings.Builder, k string, v any) {
	b.WriteByte(' ')
	b.WriteString(k)
	b.WriteByte('=')
	switch x := v.(type) {
	case nil:
		// leave empty
	case error:
		b.WriteString(logfmtValue(x.Error()))
	case string:
		b.WriteString(logfmtValue(x))
	default:
		b.WriteString(logfmtValue(fmt.Sprint(x)))
	}
}

// logfmtValue quotes a value when it contains spaces, quotes or equals
// signs; bare tokens stay bare for readability.
func logfmtValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
