package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock hands out strictly increasing instants.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 3, Capacity: 16})
	var sampled int
	for i := 0; i < 9; i++ {
		if sp := tr.Start("q"); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 with SampleEvery=3, want 3", sampled)
	}
	if tr.Started() != 9 {
		t.Fatalf("Started = %d, want 9", tr.Started())
	}
	if len(tr.Snapshot()) != 3 {
		t.Fatalf("snapshot = %d spans, want 3", len(tr.Snapshot()))
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4})
	for i := 0; i < 7; i++ {
		sp := tr.Start("q")
		sp.SetAttr("i", string(rune('a'+i)))
		sp.End()
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot = %d spans, want capacity 4", len(snap))
	}
	// Oldest-first: spans 4..7 survive (ids are 1-based).
	for i, rec := range snap {
		if want := uint64(4 + i); rec.ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, rec.ID, want)
		}
	}
	// Wrap again past a full cycle: only the newest 4 remain, in order.
	for i := 0; i < 5; i++ {
		tr.Start("q").End()
	}
	snap = tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("after rewrap snapshot = %d, want 4", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].ID != snap[i-1].ID+1 {
			t.Fatalf("snapshot ids not consecutive oldest-first: %v", snap)
		}
	}
}

func TestSpanEventsAndAttrs(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	tr := NewTracer(TracerConfig{Now: clk.now})
	sp := tr.Start("resolver.query", "domain", "example.test")
	sp.SetAttr("outcome", "cache_hit")
	sp.Event("cache_hit", "level", "local")
	sp.Event("done")
	sp.End()
	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %d spans, want 1", len(snap))
	}
	rec := snap[0]
	if rec.Name != "resolver.query" {
		t.Errorf("name = %q", rec.Name)
	}
	if rec.Attrs["domain"] != "example.test" || rec.Attrs["outcome"] != "cache_hit" {
		t.Errorf("attrs = %v", rec.Attrs)
	}
	if len(rec.Event) != 2 {
		t.Fatalf("events = %v", rec.Event)
	}
	if rec.Event[0].Name != "cache_hit" || rec.Event[0].Attrs["level"] != "local" {
		t.Errorf("event[0] = %+v", rec.Event[0])
	}
	// The fake clock ticks 1ms per reading: event offsets and the span
	// duration must be positive and increasing.
	if rec.Event[0].OffsetUS <= 0 || rec.Event[1].OffsetUS <= rec.Event[0].OffsetUS {
		t.Errorf("event offsets not increasing: %+v", rec.Event)
	}
	if rec.DurUS <= rec.Event[1].OffsetUS {
		t.Errorf("span duration %d not after last event %d", rec.DurUS, rec.Event[1].OffsetUS)
	}
}

func TestDumpJSONL(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 8})
	for i := 0; i < 3; i++ {
		sp := tr.Start("q")
		sp.Event("step")
		sp.End()
	}
	var b strings.Builder
	if err := tr.DumpJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines int
	var lastID uint64
	for sc.Scan() {
		lines++
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if rec.ID <= lastID {
			t.Fatalf("ids not increasing oldest-first: %d after %d", rec.ID, lastID)
		}
		lastID = rec.ID
	}
	if lines != 3 {
		t.Fatalf("dumped %d lines, want 3", lines)
	}
}
