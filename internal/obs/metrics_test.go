package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.CounterValue("test_total"); got != goroutines*perG {
		t.Fatalf("CounterValue = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterIdentity(t *testing.T) {
	reg := NewRegistry()
	// Same family, same labels in a different order → same series.
	a := reg.Counter("x_total", "level", "local", "zone", "a")
	b := reg.Counter("x_total", "zone", "a", "level", "local")
	if a != b {
		t.Fatal("label order should not create a new series")
	}
	// Different label value → different series.
	c := reg.Counter("x_total", "level", "mid", "zone", "a")
	if a == c {
		t.Fatal("distinct label values must yield distinct series")
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_gauge")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	g.Add(-1.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 802 {
		t.Fatalf("gauge after concurrent adds = %v, want 802", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_seconds", []float64{1, 2, 4})
	// Upper bounds are inclusive (Prometheus "le" semantics): a sample equal
	// to a bound lands in that bound's bucket, epsilon above falls through.
	for _, v := range []float64{0.5, 1} { // bucket le=1
		h.Observe(v)
	}
	for _, v := range []float64{1.0001, 2} { // bucket le=2
		h.Observe(v)
	}
	h.Observe(3)   // bucket le=4
	h.Observe(4)   // bucket le=4
	h.Observe(4.1) // +Inf
	h.Observe(100) // +Inf

	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bounds/counts = %v/%v, want 3 bounds + 4 buckets", bounds, counts)
	}
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if got := h.Count(); got != 8 {
		t.Errorf("count = %d, want 8", got)
	}
	if got, want := h.Sum(), 0.5+1+1.0001+2+3+4+4.1+100; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramDefaultsAndDuration(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", nil) // nil bounds → LatencyBuckets
	bounds, _ := h.Buckets()
	if len(bounds) != len(LatencyBuckets) {
		t.Fatalf("default bounds = %v, want LatencyBuckets", bounds)
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 1 || h.Sum() != 0.05 {
		t.Fatalf("after ObserveDuration: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("conc_seconds", []float64{1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
	if got := h.Sum(); got != 2000 {
		t.Fatalf("sum = %v, want 2000", got)
	}
}

// TestNilSafety exercises every instrument through a nil registry: the whole
// point of the design is that disabled pipelines need no guards.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	if reg.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	reg.Help("x", "y")
	c := reg.Counter("c_total", "k", "v")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := reg.Gauge("g")
	g.Set(1)
	g.Add(1)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := reg.Histogram("h_seconds", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	if b, cs := h.Buckets(); b != nil || cs != nil {
		t.Fatal("nil histogram returned buckets")
	}
	if reg.CounterValue("c_total") != 0 || reg.GaugeValue("g") != 0 {
		t.Fatal("nil registry reported values")
	}
	if err := reg.WritePrometheus(nil); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}

	var tr *Tracer
	sp := tr.Start("x")
	sp.SetAttr("k", "v")
	sp.Event("e")
	sp.End()
	if tr.Started() != 0 || tr.Dropped() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer recorded")
	}

	var set *StageSet
	stSp := set.Start("stage")
	stSp.End()
	set.Observe("stage", time.Second, 1)
	if set.Stats() != nil {
		t.Fatal("nil stage set recorded")
	}
	if err := set.Time("stage", func() error { return nil }); err != nil {
		t.Fatalf("nil StageSet.Time: %v", err)
	}

	var lg *Logger
	lg.Debug("a")
	lg.Info("b", "k", "v")
	lg.Warn("c")
	lg.Error("d")
	if lg.Component("x") != nil || lg.With("k", "v") != nil {
		t.Fatal("nil logger derived a non-nil logger")
	}
	if lg.Enabled(LevelError) {
		t.Fatal("nil logger enabled")
	}
}
