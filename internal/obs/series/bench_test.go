package series

import (
	"testing"
	"time"
)

// BenchmarkSeriesRecord is the hot-path overhead proof the Landscape
// Observatory rides on: one Record on a live handle — clock read, step
// truncation, ring write — must stay under 100 ns/sample, so per-shard
// sampling at any realistic cadence is invisible next to record ingest.
// CI runs it as a smoke; the threshold is asserted by the numbers recorded
// in BENCH_fig.json reviews, not by a flaky in-test timer.
func BenchmarkSeriesRecord(b *testing.B) {
	st := NewStore(Config{Capacity: 512, Step: time.Second})
	se := st.Series("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se.Record(float64(i))
	}
}

// BenchmarkSeriesRecordDisabled is the nil-handle branch — the cost when
// observability is off.
func BenchmarkSeriesRecordDisabled(b *testing.B) {
	var se *Series
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se.Record(float64(i))
	}
}

// BenchmarkStoreRecord includes the name lookup — the convenience path.
func BenchmarkStoreRecord(b *testing.B) {
	st := NewStore(Config{Capacity: 512, Step: time.Second})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Record("bench", float64(i))
	}
}
