// Package series is a bounded in-memory time-series store for the
// Landscape Observatory (DESIGN.md §16): each named series is a
// fixed-capacity ring of (timestamp, value) points with step-aligned
// downsampling — samples landing in the same step bucket overwrite the
// bucket (last value wins), so a series covers capacity × step of history
// regardless of how fast it is fed. The store is the backing of the
// /debug/series and /landscape/history endpoints and of the freshness/
// drift rule evaluation; it is NOT a general TSDB — no persistence, no
// aggregation functions, no out-of-order inserts.
//
// Handles follow the internal/obs idiom: a nil *Store hands out nil
// *Series, and nil handles no-op, so disabled instrumentation costs one
// predictable branch. Record on a live handle is a mutex plus a clock read
// — bounded by BenchmarkSeriesRecord (< 100 ns/sample).
package series

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes a Store.
type Config struct {
	// Capacity is the number of points each series ring holds (0 = 512).
	Capacity int
	// Step is the downsampling bucket width (0 = 1 s). Timestamps are
	// truncated to the step; a sample whose bucket equals the newest point's
	// overwrites it instead of appending.
	Step time.Duration
	// MaxSeries bounds the number of distinct series (0 = 256). Creations
	// past the bound return a nil (no-op) handle and are counted.
	MaxSeries int
	// Clock overrides the sample timestamp source (tests). Nil = time.Now.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 512
	}
	if c.Step <= 0 {
		c.Step = time.Second
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 256
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Store holds named series. The store mutex is touched only at handle
// creation and query time; Record contends only on the one series' mutex.
// A nil *Store is a valid, disabled store.
type Store struct {
	cfg Config

	mu      sync.RWMutex
	series  map[string]*Series
	dropped uint64 // series creations rejected past MaxSeries
}

// NewStore builds an empty store.
func NewStore(cfg Config) *Store {
	return &Store{cfg: cfg.withDefaults(), series: make(map[string]*Series)}
}

// Name renders "family{k="v",…}" — the naming convention shared with the
// Prometheus exposition, so a series and its gauge twin line up in
// dashboards. Pairs are rendered in the order given (callers pass them
// consistently); values are escaped like Prometheus label values.
func Name(family string, labelKV ...string) string {
	if len(labelKV) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(labelKV); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labelKV[i])
		b.WriteString(`="`)
		v := labelKV[i+1]
		if strings.ContainsAny(v, "\\\"\n") {
			v = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
		}
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Series returns (creating on first use) the handle for name. Nil store —
// or a store already holding MaxSeries distinct names — returns nil, whose
// Record is a no-op.
func (s *Store) Series(name string) *Series {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	se := s.series[name]
	s.mu.RUnlock()
	if se != nil {
		return se
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if se = s.series[name]; se != nil {
		return se
	}
	if len(s.series) >= s.cfg.MaxSeries {
		s.dropped++
		return nil
	}
	// The ring holds Capacity−1 sealed points; the open bucket is the
	// Capacity-th, so a series never exceeds Capacity points total.
	se = &Series{
		name:   name,
		stepMS: s.cfg.Step.Milliseconds(),
		clock:  s.cfg.Clock,
		t:      make([]int64, s.cfg.Capacity-1),
		v:      make([]float64, s.cfg.Capacity-1),
	}
	s.series[name] = se
	return se
}

// Record appends one sample to the named series at the store clock's
// current time — the convenience path; hot callers keep the *Series handle.
func (s *Store) Record(name string, v float64) {
	s.Series(name).Record(v)
}

// Dropped reports how many series creations were rejected by MaxSeries.
func (s *Store) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dropped
}

// Step reports the store's downsampling step (0 for nil).
func (s *Store) Step() time.Duration {
	if s == nil {
		return 0
	}
	return s.cfg.Step
}

// Point is one sample.
type Point struct {
	// T is the step-aligned sample time in Unix milliseconds.
	T int64 `json:"t"`
	// V is the sample value (the last value recorded in the step).
	V float64 `json:"v"`
}

// Series is one bounded ring of points plus an open "current bucket"
// cell. Samples landing in the current bucket take a lock-free fast path
// (two atomics); only a bucket advance — once per step, however fast the
// series is fed — takes the ring mutex. All methods are nil-safe.
type Series struct {
	name   string
	stepMS int64
	clock  func() time.Time

	// curT/curV are the open bucket: curT is its step-aligned timestamp
	// (0 = no sample yet), curV the last value's bits. Same-bucket writers
	// race last-write-wins — exactly the downsampling contract.
	curT atomic.Int64
	curV atomic.Uint64

	mu   sync.Mutex
	t    []int64
	v    []float64
	head int // index of the next write
	n    int // points held (≤ capacity)
}

// Record appends v at the store clock's current time.
func (se *Series) Record(v float64) {
	if se == nil {
		return
	}
	se.RecordAt(se.clock(), v)
}

// RecordAt appends v at time at, truncated to the step. A sample in the
// current bucket overwrites it (last value wins — the downsampling
// contract); a sample older than the current bucket is clamped to it, so
// the ring stays time-ordered under clock skew.
func (se *Series) RecordAt(at time.Time, v float64) {
	if se == nil {
		return
	}
	bucket := at.UnixMilli()
	bucket -= bucket % se.stepMS
	if cur := se.curT.Load(); cur != 0 && bucket <= cur {
		se.curV.Store(math.Float64bits(v))
		return
	}
	se.advance(bucket, v)
}

// advance seals the open bucket into the ring and opens a new one.
func (se *Series) advance(bucket int64, v float64) {
	se.mu.Lock()
	cur := se.curT.Load()
	switch {
	case cur != 0 && bucket <= cur:
		// Another writer advanced past us while we waited for the lock.
		se.curV.Store(math.Float64bits(v))
	case cur != 0:
		se.pushLocked(cur, math.Float64frombits(se.curV.Load()))
		fallthrough
	default:
		se.curV.Store(math.Float64bits(v))
		se.curT.Store(bucket)
	}
	se.mu.Unlock()
}

// pushLocked appends one sealed point to the ring, evicting the oldest at
// capacity.
func (se *Series) pushLocked(t int64, v float64) {
	if len(se.t) == 0 { // Capacity 1: only the open bucket is retained
		return
	}
	se.t[se.head] = t
	se.v[se.head] = v
	se.head++
	if se.head == len(se.t) {
		se.head = 0
	}
	if se.n < len(se.t) {
		se.n++
	}
}

// Points returns the retained points — the sealed ring plus the open
// bucket — oldest first, newer than sinceMS (0 = everything).
func (se *Series) Points(sinceMS int64) []Point {
	if se == nil {
		return nil
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	out := make([]Point, 0, se.n+1)
	start := se.head - se.n
	if start < 0 {
		start += len(se.t)
	}
	for i := 0; i < se.n; i++ {
		idx := start + i
		if idx >= len(se.t) {
			idx -= len(se.t)
		}
		if se.t[idx] > sinceMS {
			out = append(out, Point{T: se.t[idx], V: se.v[idx]})
		}
	}
	if cur := se.curT.Load(); cur != 0 && cur > sinceMS {
		out = append(out, Point{T: cur, V: math.Float64frombits(se.curV.Load())})
	}
	return out
}

// Last returns the newest point (ok false when empty or nil).
func (se *Series) Last() (Point, bool) {
	if se == nil {
		return Point{}, false
	}
	if cur := se.curT.Load(); cur != 0 {
		return Point{T: cur, V: math.Float64frombits(se.curV.Load())}, true
	}
	return Point{}, false
}

// Dump is one series rendered for the JSON query endpoint.
type Dump struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Snapshot returns every series whose name starts with prefix ("" = all),
// sorted by name, with points newer than sinceMS. Empty series (every
// point older than sinceMS) are included with an empty points list, so a
// query can distinguish "series exists, idle" from "no such series".
func (s *Store) Snapshot(prefix string, sinceMS int64) []Dump {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	handles := make([]*Series, 0, len(s.series))
	for name, se := range s.series {
		if strings.HasPrefix(name, prefix) {
			handles = append(handles, se)
		}
	}
	s.mu.RUnlock()
	sort.Slice(handles, func(i, j int) bool { return handles[i].name < handles[j].name })
	out := make([]Dump, len(handles))
	for i, se := range handles {
		pts := se.Points(sinceMS)
		if pts == nil {
			pts = []Point{}
		}
		out[i] = Dump{Name: se.name, Points: pts}
	}
	return out
}

// storeJSON is the /debug/series response schema.
type storeJSON struct {
	StepMS   int64  `json:"step_ms"`
	Capacity int    `json:"capacity"`
	Dropped  uint64 `json:"dropped_series,omitempty"`
	Series   []Dump `json:"series"`
}

// ServeHTTP answers the /debug/series query endpoint:
//
//	GET /debug/series                     → every series
//	GET /debug/series?prefix=stream_      → name-prefix filter
//	GET /debug/series?name=<exact>        → one series
//	GET /debug/series?since=<unix ms>     → only newer points
func (s *Store) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s == nil {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query()
	var sinceMS int64
	if raw := q.Get("since"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad since %q: %v", raw, err), http.StatusBadRequest)
			return
		}
		sinceMS = v
	}
	dumps := s.Snapshot(q.Get("prefix"), sinceMS)
	if name := q.Get("name"); name != "" {
		filtered := dumps[:0]
		for _, d := range dumps {
			if d.Name == name {
				filtered = append(filtered, d)
			}
		}
		dumps = filtered
	}
	if dumps == nil {
		dumps = []Dump{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(storeJSON{ //nolint:errcheck // client gone
		StepMS:   s.cfg.Step.Milliseconds(),
		Capacity: s.cfg.Capacity,
		Dropped:  s.Dropped(),
		Series:   dumps,
	})
}
