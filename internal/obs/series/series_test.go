package series

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic sampling tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.UnixMilli(1_700_000_000_000)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestStepAlignedDownsampling(t *testing.T) {
	clock := newFakeClock()
	st := NewStore(Config{Capacity: 8, Step: time.Second, Clock: clock.Now})
	se := st.Series("x")
	// Three samples inside one step: last value wins, one point.
	se.Record(1)
	clock.Advance(100 * time.Millisecond)
	se.Record(2)
	clock.Advance(100 * time.Millisecond)
	se.Record(3)
	if pts := se.Points(0); len(pts) != 1 || pts[0].V != 3 {
		t.Fatalf("same-step samples must collapse to the last value, got %+v", pts)
	}
	// Next step appends.
	clock.Advance(time.Second)
	se.Record(4)
	pts := se.Points(0)
	if len(pts) != 2 || pts[1].V != 4 {
		t.Fatalf("next-step sample must append, got %+v", pts)
	}
	if pts[0].T%1000 != 0 || pts[1].T-pts[0].T != 1000 {
		t.Fatalf("timestamps must be step-aligned, got %+v", pts)
	}
}

func TestRingWraparound(t *testing.T) {
	clock := newFakeClock()
	st := NewStore(Config{Capacity: 4, Step: time.Second, Clock: clock.Now})
	se := st.Series("x")
	for i := 0; i < 10; i++ {
		se.Record(float64(i))
		clock.Advance(time.Second)
	}
	pts := se.Points(0)
	if len(pts) != 4 {
		t.Fatalf("capacity 4 ring holds %d points", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.V != want {
			t.Fatalf("point %d: value %v, want %v (oldest evicted first)", i, p.V, want)
		}
		if i > 0 && pts[i].T <= pts[i-1].T {
			t.Fatalf("points must be time-ordered after wraparound: %+v", pts)
		}
	}
	if last, ok := se.Last(); !ok || last.V != 9 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
}

func TestClockSkewClampsToNewestBucket(t *testing.T) {
	clock := newFakeClock()
	st := NewStore(Config{Capacity: 8, Step: time.Second, Clock: clock.Now})
	se := st.Series("x")
	se.Record(1)
	clock.Advance(2 * time.Second)
	se.Record(2)
	// A sample stamped before the newest bucket must not reorder the ring.
	se.RecordAt(clock.Now().Add(-5*time.Second), 99)
	pts := se.Points(0)
	if len(pts) != 2 || pts[1].V != 99 {
		t.Fatalf("older-than-newest sample must clamp onto the newest bucket, got %+v", pts)
	}
}

func TestSinceFilter(t *testing.T) {
	clock := newFakeClock()
	st := NewStore(Config{Capacity: 8, Step: time.Second, Clock: clock.Now})
	se := st.Series("x")
	var cut int64
	for i := 0; i < 6; i++ {
		se.Record(float64(i))
		if i == 2 {
			cut = clock.Now().UnixMilli() - clock.Now().UnixMilli()%1000
		}
		clock.Advance(time.Second)
	}
	pts := se.Points(cut)
	if len(pts) != 3 || pts[0].V != 3 {
		t.Fatalf("since filter: got %+v, want values 3..5", pts)
	}
}

func TestMaxSeriesBound(t *testing.T) {
	st := NewStore(Config{MaxSeries: 2})
	if st.Series("a") == nil || st.Series("b") == nil {
		t.Fatal("series under the bound must allocate")
	}
	if st.Series("c") != nil {
		t.Fatal("series past MaxSeries must return a nil handle")
	}
	st.Series("c").Record(1) // nil handle must no-op, not panic
	if st.Series("a") == nil {
		t.Fatal("existing series must stay reachable at the bound")
	}
	if st.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2 (one per rejected creation)", st.Dropped())
	}
}

func TestNilSafety(t *testing.T) {
	var st *Store
	st.Record("x", 1)
	if st.Series("x") != nil || st.Snapshot("", 0) != nil || st.Dropped() != 0 || st.Step() != 0 {
		t.Fatal("nil store must hand out nils and zeros")
	}
	var se *Series
	se.Record(1)
	se.RecordAt(time.Now(), 1)
	if se.Points(0) != nil {
		t.Fatal("nil series must return nil points")
	}
	if _, ok := se.Last(); ok {
		t.Fatal("nil series has no last point")
	}
	rec := httptest.NewRecorder()
	st.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series", nil))
	if rec.Code != 404 {
		t.Fatalf("nil store must 404, got %d", rec.Code)
	}
}

func TestName(t *testing.T) {
	if got := Name("stream_watermark_lag_seconds"); got != "stream_watermark_lag_seconds" {
		t.Fatalf("bare name mangled: %q", got)
	}
	if got, want := Name("x", "shard", "3"), `x{shard="3"}`; got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
	if got, want := Name("x", "a", `q"o\te`+"\n"), `x{a="q\"o\\te\n"}`; got != want {
		t.Fatalf("Name escape = %q, want %q", got, want)
	}
}

func TestSnapshotAndHTTP(t *testing.T) {
	clock := newFakeClock()
	st := NewStore(Config{Capacity: 8, Step: time.Second, Clock: clock.Now})
	st.Record("stream_lag", 1.5)
	st.Record("landscape_total", 42)
	clock.Advance(time.Second)
	st.Record("stream_lag", 2.5)

	dumps := st.Snapshot("stream_", 0)
	if len(dumps) != 1 || dumps[0].Name != "stream_lag" || len(dumps[0].Points) != 2 {
		t.Fatalf("prefix snapshot: %+v", dumps)
	}
	all := st.Snapshot("", 0)
	if len(all) != 2 || all[0].Name != "landscape_total" {
		t.Fatalf("full snapshot must be name-sorted: %+v", all)
	}

	rec := httptest.NewRecorder()
	st.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series?name=stream_lag", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		StepMS int64  `json:"step_ms"`
		Series []Dump `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, rec.Body)
	}
	if body.StepMS != 1000 || len(body.Series) != 1 || body.Series[0].Points[1].V != 2.5 {
		t.Fatalf("response: %+v", body)
	}

	rec = httptest.NewRecorder()
	st.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series?since=notanumber", nil))
	if rec.Code != 400 {
		t.Fatalf("bad since must 400, got %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	st.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series?name=absent", nil))
	if rec.Code != 200 {
		t.Fatalf("absent name is an empty result, not an error: %d", rec.Code)
	}
}

func TestConcurrentRecord(t *testing.T) {
	st := NewStore(Config{Capacity: 64, Step: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			se := st.Series("shared")
			own := st.Series(Name("per", "g", string(rune('a'+g))))
			for i := 0; i < 1000; i++ {
				se.Record(float64(i))
				own.Record(float64(i))
			}
		}(g)
	}
	wg.Wait()
	if len(st.Snapshot("", 0)) != 9 {
		t.Fatalf("want 9 series, got %d", len(st.Snapshot("", 0)))
	}
}
