package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format: deterministic family
// ordering, one HELP/TYPE header per family, sorted series, cumulative le
// buckets with _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Help("app_requests_total", "Requests handled.")
	reg.Help("app_latency_seconds", "Request latency.")
	reg.Counter("app_requests_total", "code", "500").Inc()
	reg.Counter("app_requests_total", "code", "200").Add(3)
	reg.Gauge("app_queue_depth").Set(7)
	reg.Gauge("app_temperature").Set(36.5)
	h := reg.Histogram("app_latency_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests handled.
# TYPE app_requests_total counter
app_requests_total{code="200"} 3
app_requests_total{code="500"} 1
# TYPE app_queue_depth gauge
app_queue_depth 7
# TYPE app_temperature gauge
app_temperature 36.5
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="1"} 1
app_latency_seconds_bucket{le="2"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 5
app_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "path", `a"b\c`+"\n").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition %q does not contain %q", b.String(), want)
	}
}
