package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Families are emitted in sorted order
// with at most one HELP/TYPE header each; series within a family are sorted
// by label block, so the output is deterministic and golden-testable.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, gauges, gaugeFuncs, histograms, help := r.snapshot()
	bw := bufio.NewWriter(w)

	// Evaluate callback gauges outside the registry lock and merge them
	// with the plain gauges into one sorted sample list, so a family can mix
	// both kinds and still get a single TYPE header.
	type gaugeSample struct {
		name   string
		labels []string
		value  float64
	}
	samples := make([]gaugeSample, 0, len(gauges)+len(gaugeFuncs))
	for _, g := range gauges {
		samples = append(samples, gaugeSample{g.name, g.labels, g.Value()})
	}
	for _, g := range gaugeFuncs {
		samples = append(samples, gaugeSample{g.name, g.labels, g.Value()})
	}
	sort.Slice(samples, func(i, j int) bool {
		return seriesName(samples[i].name, samples[i].labels) < seriesName(samples[j].name, samples[j].labels)
	})

	lastFamily := ""
	header := func(name, typ string) {
		if name == lastFamily {
			return
		}
		lastFamily = name
		if h, ok := help[name]; ok {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
	}

	for _, c := range counters {
		header(c.name, "counter")
		fmt.Fprintf(bw, "%s %d\n", seriesName(c.name, c.labels), c.Value())
	}
	lastFamily = ""
	for _, g := range samples {
		header(g.name, "gauge")
		fmt.Fprintf(bw, "%s %s\n", seriesName(g.name, g.labels), formatFloat(g.value))
	}
	lastFamily = ""
	for _, h := range histograms {
		header(h.name, "histogram")
		bounds, counts := h.Buckets()
		var cum uint64
		for i, ub := range bounds {
			cum += counts[i]
			fmt.Fprintf(bw, "%s %d\n", seriesNameExtra(h.name+"_bucket", h.labels, "le", formatBound(ub)), cum)
		}
		cum += counts[len(counts)-1]
		fmt.Fprintf(bw, "%s %d\n", seriesNameExtra(h.name+"_bucket", h.labels, "le", "+Inf"), cum)
		fmt.Fprintf(bw, "%s %s\n", seriesName(h.name+"_sum", h.labels), formatFloat(h.Sum()))
		fmt.Fprintf(bw, "%s %d\n", seriesName(h.name+"_count", h.labels), h.Count())
	}
	return bw.Flush()
}

// formatBound renders a bucket upper bound ("0.005", "1", "+Inf").
func formatBound(ub float64) string {
	if math.IsInf(ub, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(ub, 'g', -1, 64)
}
