package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Families are emitted in sorted order
// with at most one HELP/TYPE header each; series within a family are sorted
// by label block, so the output is deterministic and golden-testable.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, gauges, histograms, help := r.snapshot()
	bw := bufio.NewWriter(w)

	lastFamily := ""
	header := func(name, typ string) {
		if name == lastFamily {
			return
		}
		lastFamily = name
		if h, ok := help[name]; ok {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
	}

	for _, c := range counters {
		header(c.name, "counter")
		fmt.Fprintf(bw, "%s %d\n", seriesName(c.name, c.labels), c.Value())
	}
	lastFamily = ""
	for _, g := range gauges {
		header(g.name, "gauge")
		fmt.Fprintf(bw, "%s %s\n", seriesName(g.name, g.labels), formatFloat(g.Value()))
	}
	lastFamily = ""
	for _, h := range histograms {
		header(h.name, "histogram")
		bounds, counts := h.Buckets()
		var cum uint64
		for i, ub := range bounds {
			cum += counts[i]
			fmt.Fprintf(bw, "%s %d\n", seriesNameExtra(h.name+"_bucket", h.labels, "le", formatBound(ub)), cum)
		}
		cum += counts[len(counts)-1]
		fmt.Fprintf(bw, "%s %d\n", seriesNameExtra(h.name+"_bucket", h.labels, "le", "+Inf"), cum)
		fmt.Fprintf(bw, "%s %s\n", seriesName(h.name+"_sum", h.labels), formatFloat(h.Sum()))
		fmt.Fprintf(bw, "%s %d\n", seriesName(h.name+"_count", h.labels), h.Count())
	}
	return bw.Flush()
}

// formatBound renders a bucket upper bound ("0.005", "1", "+Inf").
func formatBound(ub float64) string {
	if math.IsInf(ub, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(ub, 'g', -1, 64)
}
