package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageSetAccumulates(t *testing.T) {
	s := NewStageSet()
	s.Observe("match", 10*time.Millisecond, 1024)
	s.Observe("match", 20*time.Millisecond, 1024)
	s.Observe("estimate", 5*time.Millisecond, 0)
	stats := s.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	if stats[0].Name != "match" || stats[0].Count != 2 ||
		stats[0].Wall != 30*time.Millisecond || stats[0].Bytes != 2048 {
		t.Errorf("match stat = %+v", stats[0])
	}
	sorted := s.SortedStats()
	if sorted[0].Name != "match" || sorted[1].Name != "estimate" {
		t.Errorf("SortedStats order = %v", sorted)
	}
	table := s.Table()
	for _, frag := range []string{"stage", "match", "estimate", "total", "30ms", "2.0KiB"} {
		if !strings.Contains(table, frag) {
			t.Errorf("table missing %q:\n%s", frag, table)
		}
	}
	if empty := NewStageSet().Table(); empty != "" {
		t.Errorf("empty table = %q", empty)
	}
}

func TestStageSpanAndTime(t *testing.T) {
	s := NewStageSet()
	sp := s.Start("work")
	_ = make([]byte, 1<<16) // force some allocation inside the span
	sp.End()
	wantErr := errors.New("boom")
	if err := s.Time("timed", func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Time returned %v", err)
	}
	stats := s.Stats()
	if len(stats) != 2 || stats[0].Name != "work" || stats[1].Name != "timed" {
		t.Fatalf("stats = %v", stats)
	}
	if stats[0].Count != 1 || stats[1].Count != 1 {
		t.Errorf("counts = %+v", stats)
	}
}

func TestStageSetConcurrent(t *testing.T) {
	s := NewStageSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Observe("estimate:MT", time.Microsecond, 1)
			}
		}()
	}
	wg.Wait()
	stats := s.Stats()
	if len(stats) != 1 || stats[0].Count != 800 || stats[0].Bytes != 800 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestHumanBytes(t *testing.T) {
	for in, want := range map[uint64]string{
		512:     "512B",
		2048:    "2.0KiB",
		1 << 20: "1.0MiB",
		3 << 30: "3.0GiB",
	} {
		if got := humanBytes(in); got != want {
			t.Errorf("humanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
