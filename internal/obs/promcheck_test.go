package obs

import (
	"strings"
	"testing"
)

// TestValidateRegistryOutput round-trips a registry loaded with
// adversarial label values — backslashes, quotes, newlines, commas,
// braces — through WritePrometheus and the strict validator: whatever the
// exposition emits must parse.
func TestValidateRegistryOutput(t *testing.T) {
	r := NewRegistry()
	r.Help("evil_counter", "counter with hostile labels")
	evil := []string{
		`back\slash`,
		`qu"ote`,
		"new\nline",
		`comma,brace}equals=`,
		`trailing\`,
		"",
	}
	for i, v := range evil {
		r.Counter("evil_counter", "v", v).Add(uint64(i + 1))
	}
	r.Gauge("plain_gauge", "shard", "3").Set(1.5)
	r.GaugeFunc("callback_gauge", func() float64 { return 42 }, "shard", "0")
	r.Histogram("lat_seconds", LatencyBuckets, "path", `a"b\c`).Observe(0.003)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := ValidatePrometheusText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("exposition failed validation: %v\n---\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "callback_gauge{shard=\"0\"} 42") {
		t.Fatalf("callback gauge missing from exposition:\n%s", b.String())
	}
}

// TestValidateRejectsMalformed feeds the validator hand-broken inputs;
// each must be rejected with a message naming the problem.
func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string // substring of the error
	}{
		{
			name:  "bad metric name",
			input: "9bad_name 1\n",
			want:  "invalid metric name",
		},
		{
			name:  "bad label name",
			input: `m{9l="v"} 1` + "\n",
			want:  "invalid label name",
		},
		{
			name:  "illegal escape",
			input: `m{l="a\tb"} 1` + "\n",
			want:  "illegal escape",
		},
		{
			name:  "dangling backslash",
			input: `m{l="a\` + "\n",
			want:  "dangling backslash",
		},
		{
			name:  "unterminated label block",
			input: `m{l="v"` + "\n",
			want:  "unterminated label block",
		},
		{
			name:  "unquoted label value",
			input: `m{l=v} 1` + "\n",
			want:  "not quoted",
		},
		{
			name:  "duplicate label",
			input: `m{l="a",l="b"} 1` + "\n",
			want:  "duplicate label",
		},
		{
			name:  "missing value",
			input: `m{l="v"}` + "\n",
			want:  "missing value",
		},
		{
			name:  "bad value",
			input: "m notanumber\n",
			want:  "bad value",
		},
		{
			name:  "bad timestamp",
			input: "m 1 soon\n",
			want:  "bad timestamp",
		},
		{
			name:  "duplicate series",
			input: `m{a="1",b="2"} 1` + "\n" + `m{b="2",a="1"} 2` + "\n",
			want:  "duplicate series",
		},
		{
			name:  "unknown TYPE",
			input: "# TYPE m speedometer\n",
			want:  "unknown TYPE",
		},
		{
			name:  "duplicate TYPE",
			input: "# TYPE m gauge\n# TYPE m gauge\n",
			want:  "duplicate TYPE",
		},
		{
			name:  "duplicate HELP",
			input: "# HELP m a\n# HELP m b\n",
			want:  "duplicate HELP",
		},
		{
			name:  "TYPE after samples",
			input: "m 1\n# TYPE m gauge\n",
			want:  "after its samples",
		},
		{
			name:  "bucket without le",
			input: "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
			want:  "missing le",
		},
		{
			name:  "non-cumulative buckets",
			input: "# TYPE h histogram\n" + `h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n",
			want:  "not cumulative",
		},
		{
			name:  "histogram without +Inf",
			input: "# TYPE h histogram\n" + `h_bucket{le="1"} 5` + "\n",
			want:  "no le=\"+Inf\"",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidatePrometheusText(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("input accepted, want error containing %q:\n%s", tc.want, tc.input)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
}

// TestValidateAcceptsWellFormed covers legal shapes the strict checks
// must not reject.
func TestValidateAcceptsWellFormed(t *testing.T) {
	const input = `# HELP up whether the target is up
# TYPE up gauge
up 1
# TYPE lat histogram
lat_bucket{le="0.1"} 3
lat_bucket{le="+Inf"} 5
lat_sum 0.7
lat_count 5
# a free-form comment
special{v="+Inf"} +Inf
negative -2.5e-3
stamped 4 1700000000000
`
	if err := ValidatePrometheusText(strings.NewReader(input)); err != nil {
		t.Fatalf("well-formed input rejected: %v", err)
	}
}

// TestGaugeFuncRegistry pins the GaugeFunc registry contract: first-wins
// registration, conflict with a plain gauge, nil safety, and GaugeValue
// consulting callbacks.
func TestGaugeFuncRegistry(t *testing.T) {
	r := NewRegistry()
	calls := 0
	g := r.GaugeFunc("cb", func() float64 { calls++; return 7 })
	if g2 := r.GaugeFunc("cb", func() float64 { return 99 }); g2 != g {
		t.Fatal("second registration must return the first GaugeFunc")
	}
	if v := r.GaugeValue("cb"); v != 7 {
		t.Fatalf("GaugeValue(cb) = %v, want 7", v)
	}
	if calls == 0 {
		t.Fatal("callback never evaluated")
	}
	r.Gauge("plain").Set(3)
	if got := r.GaugeFunc("plain", func() float64 { return 1 }); got != nil {
		t.Fatal("GaugeFunc over an existing plain gauge must be refused")
	}
	if v := r.GaugeValue("plain"); v != 3 {
		t.Fatalf("plain gauge shadowed: %v", v)
	}
	if r.GaugeFunc("nilfn", nil) != nil {
		t.Fatal("nil fn must be refused")
	}
	var nilReg *Registry
	if nilReg.GaugeFunc("x", func() float64 { return 1 }) != nil {
		t.Fatal("nil registry must hand out nil")
	}
	var nilGF *GaugeFunc
	if nilGF.Value() != 0 {
		t.Fatal("nil GaugeFunc must read 0")
	}
}
