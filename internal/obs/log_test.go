package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func fixedNow() time.Time {
	return time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC)
}

func TestLoggerLogfmt(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(&b, LogConfig{Component: "resolver", Now: fixedNow})
	lg.Info("serving", "listen", "127.0.0.1:5354", "retries", 3)
	want := "ts=2016-04-01T12:00:00Z level=info component=resolver msg=serving listen=127.0.0.1:5354 retries=3\n"
	if got := b.String(); got != want {
		t.Errorf("logfmt line:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerLogfmtQuoting(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(&b, LogConfig{Now: fixedNow})
	lg.Warn("chaos enabled", "rates", "loss=0.2 dup=0.01", "err", errors.New(`bad "thing"`))
	got := b.String()
	for _, frag := range []string{
		`msg="chaos enabled"`,
		`rates="loss=0.2 dup=0.01"`,
		`err="bad \"thing\""`,
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("line %q missing %q", got, frag)
		}
	}
}

func TestLoggerJSON(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(&b, LogConfig{Format: FormatJSON, Component: "vantage", Now: fixedNow})
	lg.Error("write failed", "count", 2, "ok", false, "err", errors.New("disk full"))
	want := `{"ts":"2016-04-01T12:00:00Z","level":"error","component":"vantage","msg":"write failed","count":2,"ok":false,"err":"disk full"}` + "\n"
	if got := b.String(); got != want {
		t.Errorf("json line:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(&b, LogConfig{Level: LevelWarn, Now: fixedNow})
	lg.Debug("d")
	lg.Info("i")
	lg.Warn("w")
	lg.Error("e")
	got := b.String()
	if strings.Contains(got, "msg=d") || strings.Contains(got, "msg=i") {
		t.Errorf("below-threshold lines emitted: %q", got)
	}
	if !strings.Contains(got, "msg=w") || !strings.Contains(got, "msg=e") {
		t.Errorf("threshold lines missing: %q", got)
	}
	if !lg.Enabled(LevelWarn) || lg.Enabled(LevelInfo) {
		t.Error("Enabled thresholds wrong")
	}
}

func TestLoggerDerived(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(&b, LogConfig{Component: "parent", Now: fixedNow})
	child := lg.Component("child").With("shard", 7)
	child.Info("hello", "extra", "x")
	got := b.String()
	for _, frag := range []string{"component=child", "shard=7", "extra=x"} {
		if !strings.Contains(got, frag) {
			t.Errorf("derived line %q missing %q", got, frag)
		}
	}
	if strings.Contains(got, "component=parent") {
		t.Errorf("derived line kept parent component: %q", got)
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn,
		"Error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
	if f, err := ParseFormat("JSON"); err != nil || f != FormatJSON {
		t.Errorf("ParseFormat(JSON) = %v, %v", f, err)
	}
	if f, err := ParseFormat(""); err != nil || f != FormatLogfmt {
		t.Errorf("ParseFormat(\"\") = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted garbage")
	}
}
