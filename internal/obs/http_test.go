package obs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestMuxMetricsAndHealth(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total").Add(2)
	tr := NewTracer(TracerConfig{Capacity: 4})
	tr.Start("q").End()

	var mu sync.Mutex
	var healthErr error
	mux := NewMux(MuxConfig{
		Registry: reg,
		Tracer:   tr,
		Health: func() error {
			mu.Lock()
			defer mu.Unlock()
			return healthErr
		},
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, "demo_total 2") {
		t.Errorf("/metrics body missing counter: %q", body)
	}

	code, body, _ = get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz healthy = %d %q", code, body)
	}
	mu.Lock()
	healthErr = errors.New("observed dataset writer: disk full")
	mu.Unlock()
	code, body, _ = get("/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "disk full") {
		t.Fatalf("/healthz degraded = %d %q", code, body)
	}

	code, body, ctype = get("/debug/spans")
	if code != http.StatusOK || ctype != "application/x-ndjson" {
		t.Fatalf("/debug/spans = %d %q", code, ctype)
	}
	if !strings.Contains(body, `"name":"q"`) {
		t.Errorf("/debug/spans body = %q", body)
	}

	if code, _, _ = get("/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars = %d", code)
	}
	if code, _, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

// TestMuxNilBackends: the mux must serve sanely with nothing wired in —
// always-on endpoints answer 200, optional backends answer 404.
func TestMuxNilBackends(t *testing.T) {
	srv := httptest.NewServer(NewMux(MuxConfig{}))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/healthz", "/debug/spans"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d with nil backends", path, resp.StatusCode)
		}
	}
	for _, path := range []string{"/landscape", "/landscape/history", "/state", "/debug/series"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s = %d with nil backends, want 404", path, resp.StatusCode)
		}
	}
}

// TestMuxBytesBackends: the byte-producing backends (/landscape,
// /landscape/history, /state) serve their payloads with the right
// content type and surface backend errors as 500s.
func TestMuxBytesBackends(t *testing.T) {
	var mu sync.Mutex
	fail := false
	payload := func(body string) func() ([]byte, error) {
		return func() ([]byte, error) {
			mu.Lock()
			defer mu.Unlock()
			if fail {
				return nil, errors.New("export broke")
			}
			return []byte(body), nil
		}
	}
	srv := httptest.NewServer(NewMux(MuxConfig{
		Landscape: payload(`{"total":1}`),
		History:   payload(`{"points":[]}`),
		State:     payload("BMCP-frame-bytes"),
	}))
	defer srv.Close()
	cases := []struct{ path, body, ctype string }{
		{"/landscape", `{"total":1}`, "application/json"},
		{"/landscape/history", `{"points":[]}`, "application/json"},
		{"/state", "BMCP-frame-bytes", "application/octet-stream"},
	}
	for _, tc := range cases {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != tc.body {
			t.Fatalf("%s = %d %q", tc.path, resp.StatusCode, body)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.ctype {
			t.Errorf("%s content-type = %q, want %q", tc.path, got, tc.ctype)
		}
	}
	mu.Lock()
	fail = true
	mu.Unlock()
	for _, tc := range cases {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(body), "export broke") {
			t.Fatalf("%s while failing = %d %q, want 500 with the error", tc.path, resp.StatusCode, body)
		}
	}
}

func TestStartHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("up").Set(1)
	srv, err := StartHTTP("127.0.0.1:0", NewMux(MuxConfig{Registry: reg}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up 1") {
		t.Errorf("metrics body = %q", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var nilSrv *HTTPServer
	if nilSrv.Addr() != "" || nilSrv.Close() != nil {
		t.Error("nil HTTPServer not nil-safe")
	}
}
