package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MuxConfig wires the diagnostic HTTP endpoint.
type MuxConfig struct {
	// Registry backs /metrics (nil serves an empty exposition).
	Registry *Registry
	// Health backs /healthz: nil or a nil-returning func is healthy (200);
	// an error yields 503 with the error text.
	Health func() error
	// Status, when non-nil, contributes extra lines to a healthy /healthz
	// body after the "ok" — e.g. cmd/vantage's crash-recovery status
	// ("recovered from checkpoint generation 4, replayed 1200 records").
	// An empty return adds nothing.
	Status func() string
	// Tracer backs /debug/spans (nil serves nothing).
	Tracer *Tracer
	// Landscape backs /landscape: a function returning the current
	// landscape snapshot as JSON bytes (e.g. stream.Engine.LandscapeJSON).
	// Nil yields 404; an error yields 500 with the error text.
	Landscape func() ([]byte, error)
	// Series backs /debug/series: the Landscape Observatory's time-series
	// store (a *series.Store — passed as a plain handler so obs does not
	// import its own subpackage). Nil yields 404.
	Series http.Handler
	// History backs /landscape/history: the observatory's landscape history
	// (per-family totals, deltas, estimator disagreement) as JSON bytes.
	// Nil yields 404; an error yields 500.
	History func() ([]byte, error)
	// State backs /state: the engine's exported sufficient statistics as a
	// checkpoint frame (stream.EncodeCheckpoint bytes), pulled by a
	// landscape-server federating this vantage. Nil yields 404; an error
	// yields 500.
	State func() ([]byte, error)
}

// NewMux builds the diagnostic mux: /metrics (Prometheus text), /healthz,
// /debug/vars (expvar), /debug/spans (sampled span JSONL) and
// /debug/pprof/*.
func NewMux(cfg MuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WritePrometheus(w) //nolint:errcheck // client gone
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		if cfg.Status != nil {
			if s := cfg.Status(); s != "" {
				fmt.Fprintln(w, s)
			}
		}
	})
	mux.HandleFunc("/landscape", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Landscape == nil {
			http.NotFound(w, r)
			return
		}
		body, err := cfg.Landscape()
		if err != nil {
			http.Error(w, fmt.Sprintf("landscape: %v", err), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body) //nolint:errcheck // client gone
	})
	mux.HandleFunc("/landscape/history", func(w http.ResponseWriter, r *http.Request) {
		if cfg.History == nil {
			http.NotFound(w, r)
			return
		}
		body, err := cfg.History()
		if err != nil {
			http.Error(w, fmt.Sprintf("history: %v", err), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body) //nolint:errcheck // client gone
	})
	mux.HandleFunc("/state", func(w http.ResponseWriter, r *http.Request) {
		if cfg.State == nil {
			http.NotFound(w, r)
			return
		}
		body, err := cfg.State()
		if err != nil {
			http.Error(w, fmt.Sprintf("state: %v", err), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(body) //nolint:errcheck // client gone
	})
	mux.HandleFunc("/debug/series", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Series == nil {
			http.NotFound(w, r)
			return
		}
		cfg.Series.ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		cfg.Tracer.DumpJSONL(w) //nolint:errcheck // client gone
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPServer is a running diagnostic endpoint.
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartHTTP listens on addr and serves the mux in a background goroutine.
// Pass the returned server's Addr to clients (useful with ":0") and Close
// it on shutdown.
func StartHTTP(addr string, handler http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return &HTTPServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound listen address. Nil-safe ("").
func (s *HTTPServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the endpoint down, waiting briefly for in-flight requests.
// Nil-safe.
func (s *HTTPServer) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
