package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// SampleEvery keeps 1 span in every SampleEvery starts (1 = every
	// query, the default). Spans not sampled cost one atomic add.
	SampleEvery int
	// Capacity bounds the completed-span ring buffer (default 1024): the
	// newest Capacity spans are retained, older ones are overwritten.
	Capacity int
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// Tracer produces sampled query-lifecycle spans and retains the most
// recent completed ones in a bounded ring buffer. A nil *Tracer never
// samples; all methods are nil-safe.
type Tracer struct {
	sampleEvery uint64
	seq         atomic.Uint64 // start attempts (for sampling)
	ids         atomic.Uint64 // sampled span ids
	dropped     atomic.Uint64 // completed spans overwritten in the ring
	now         func() time.Time

	mu   sync.Mutex
	ring []SpanRecord
	next int // ring insert position
	size int // filled entries (≤ cap)
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Tracer{
		sampleEvery: uint64(cfg.SampleEvery),
		now:         now,
		ring:        make([]SpanRecord, cfg.Capacity),
	}
}

// SpanEvent is one timestamped step inside a span.
type SpanEvent struct {
	// OffsetUS is microseconds since the span started.
	OffsetUS int64 `json:"off_us"`
	// Name is the step ("cache_hit", "upstream_attempt", "retry", …).
	Name string `json:"name"`
	// Attrs holds optional key/value detail.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// SpanRecord is a completed span as stored in the ring and dumped as JSONL.
type SpanRecord struct {
	ID    uint64            `json:"id"`
	Name  string            `json:"name"`
	Start time.Time         `json:"start"`
	DurUS int64             `json:"dur_us"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Event []SpanEvent       `json:"events,omitempty"`
}

// Span is one in-flight traced operation. A nil *Span (not sampled, or
// tracing disabled) no-ops everywhere, so call sites need no guards. A Span
// is owned by one goroutine; it is not safe for concurrent use.
type Span struct {
	t     *Tracer
	start time.Time
	rec   SpanRecord
}

// Start begins a span when the sampling policy selects this call;
// otherwise (and on a nil tracer) it returns nil.
func (t *Tracer) Start(name string, kv ...string) *Span {
	if t == nil {
		return nil
	}
	n := t.seq.Add(1)
	if (n-1)%t.sampleEvery != 0 {
		return nil
	}
	s := &Span{
		t:     t,
		start: t.now(),
		rec:   SpanRecord{ID: t.ids.Add(1), Name: name},
	}
	s.rec.Start = s.start
	for i := 0; i+1 < len(kv); i += 2 {
		s.setAttr(kv[i], kv[i+1])
	}
	return s
}

// Started reports the total number of Start calls (sampled or not).
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Dropped reports how many completed spans have been overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

func (s *Span) setAttr(k, v string) {
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[k] = v
}

// SetAttr attaches a key/value attribute to the span. Nil-safe.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.setAttr(k, v)
}

// Event records a timestamped step with optional alternating key/value
// attributes. Nil-safe.
func (s *Span) Event(name string, kv ...string) {
	if s == nil {
		return
	}
	ev := SpanEvent{
		OffsetUS: s.t.now().Sub(s.start).Microseconds(),
		Name:     name,
	}
	if len(kv) >= 2 {
		ev.Attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			ev.Attrs[kv[i]] = kv[i+1]
		}
	}
	s.rec.Event = append(s.rec.Event, ev)
}

// End completes the span and pushes it into the tracer's ring buffer,
// overwriting the oldest entry when full. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.DurUS = s.t.now().Sub(s.start).Microseconds()
	t := s.t
	t.mu.Lock()
	if t.size == len(t.ring) {
		t.dropped.Add(1)
	} else {
		t.size++
	}
	t.ring[t.next] = s.rec
	t.next = (t.next + 1) % len(t.ring)
	t.mu.Unlock()
}

// Snapshot returns the retained spans oldest-first. Nil-safe (nil slice).
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.size)
	start := t.next - t.size
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.size; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// DumpJSONL writes the retained spans as one JSON object per line,
// oldest-first. Nil-safe no-op.
func (t *Tracer) DumpJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range t.Snapshot() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
