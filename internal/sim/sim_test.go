package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	tests := []struct {
		name string
		d    time.Duration
		want Time
	}{
		{"millisecond", time.Millisecond, Millisecond},
		{"second", time.Second, Second},
		{"minute", time.Minute, Minute},
		{"hour", time.Hour, Hour},
		{"day", 24 * time.Hour, Day},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := FromDuration(tt.d); got != tt.want {
				t.Errorf("FromDuration(%v) = %v, want %v", tt.d, got, tt.want)
			}
			if got := tt.want.Duration(); got != tt.d {
				t.Errorf("Duration() = %v, want %v", got, tt.d)
			}
		})
	}
}

func TestTimeTruncate(t *testing.T) {
	tests := []struct {
		t, g, want Time
	}{
		{1234, 100, 1200},
		{1234, 1000, 1000},
		{1234, 0, 1234},
		{1234, -5, 1234},
		{999, 1000, 0},
	}
	for _, tt := range tests {
		if got := tt.t.Truncate(tt.g); got != tt.want {
			t.Errorf("%d.Truncate(%d) = %d, want %d", tt.t, tt.g, got, tt.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	got := (2*Day + 3*Hour + 4*Minute + 5*Second + 6*Millisecond).String()
	if got != "2:03:04:05.006" {
		t.Errorf("String() = %q", got)
	}
	if got := (-Second).String(); got != "-0:00:00:01.000" {
		t.Errorf("negative String() = %q", got)
	}
}

func TestWindowSplit(t *testing.T) {
	w := Window{Start: 0, End: 10 * Day}
	parts := w.Split(4)
	if len(parts) != 4 {
		t.Fatalf("got %d parts", len(parts))
	}
	if parts[0].Start != 0 || parts[3].End != 10*Day {
		t.Errorf("split does not tile window: %+v", parts)
	}
	for i := 1; i < len(parts); i++ {
		if parts[i].Start != parts[i-1].End {
			t.Errorf("gap between sub-windows %d and %d", i-1, i)
		}
	}
	if (Window{}).Split(0) != nil {
		t.Error("Split(0) should be nil")
	}
}

func TestWindowSplitTilesProperty(t *testing.T) {
	f := func(lenRaw uint32, nRaw uint8) bool {
		w := Window{Start: 0, End: Time(lenRaw%1000000) + 1}
		n := int(nRaw%20) + 1
		parts := w.Split(n)
		if len(parts) != n {
			return false
		}
		var total Time
		for _, p := range parts {
			total += p.Len()
		}
		return total == w.Len() && parts[0].Start == w.Start && parts[n-1].End == w.End
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func(*Engine) { order = append(order, 3) })
	e.Schedule(10, func(*Engine) { order = append(order, 1) })
	e.Schedule(20, func(*Engine) { order = append(order, 2) })
	n := e.Run(100)
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Errorf("order[%d] = %d, want %d", i, order[i], want)
		}
	}
	if e.Now() != 100 {
		t.Errorf("clock = %v, want horizon 100", e.Now())
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(*Engine) { order = append(order, i) })
	}
	e.Run(10)
	for i := range order {
		if order[i] != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", order)
		}
	}
}

func TestEngineHorizonStopsExecution(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(50, func(*Engine) { fired = true })
	if n := e.Run(50); n != 0 {
		t.Errorf("executed %d events, want 0 (event at horizon)", n)
	}
	if fired {
		t.Error("event at horizon should not fire")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	// A later Run picks it up.
	e.Run(51)
	if !fired {
		t.Error("event should fire once horizon passes it")
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	var times []Time
	var chain func(*Engine)
	chain = func(en *Engine) {
		times = append(times, en.Now())
		if len(times) < 5 {
			en.ScheduleAfter(10, chain)
		}
	}
	e.Schedule(0, chain)
	e.Run(1000)
	want := []Time{0, 10, 20, 30, 40}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
}

func TestEnginePastEventClampedToNow(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.Schedule(100, func(en *Engine) {
		en.Schedule(5, func(en2 *Engine) { at = en2.Now() })
	})
	e.Run(1000)
	if at != 100 {
		t.Errorf("past-scheduled event ran at %v, want 100", at)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func(en *Engine) {
			count++
			if count == 3 {
				en.Stop()
			}
		})
	}
	e.Run(100)
	if count != 3 {
		t.Errorf("executed %d events after Stop, want 3", count)
	}
}

func TestEngineExecutesInTimeOrderProperty(t *testing.T) {
	// Whatever order events are scheduled in, they execute sorted by time
	// (ties by scheduling order).
	f := func(times []uint16) bool {
		e := NewEngine()
		var executed []Time
		for _, tv := range times {
			at := Time(tv)
			e.Schedule(at, func(en *Engine) { executed = append(executed, en.Now()) })
		}
		e.Run(1 << 30)
		if len(executed) != len(times) {
			return false
		}
		for i := 1; i < len(executed); i++ {
			if executed[i] < executed[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should give identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	s1 := parent.Split(1)
	s2 := parent.Split(2)
	s1Again := NewRNG(7).Split(1)
	for i := 0; i < 50; i++ {
		if s1.Uint64() != s1Again.Uint64() {
			t.Fatal("Split must be deterministic per label")
		}
	}
	diverged := false
	s1 = NewRNG(7).Split(1)
	for i := 0; i < 10; i++ {
		if s1.Uint64() != s2.Uint64() {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different labels should diverge")
	}
}

func TestRNGSplitDependsOnParentSeed(t *testing.T) {
	// Regression: Split must mix the parent's seed, or two botnets with
	// different seeds would generate identical domain pools.
	a := NewRNG(101).Split(42)
	b := NewRNG(202).Split(42)
	same := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("same label under different parent seeds must diverge")
	}
	// Nested splits inherit the mixed lineage.
	c := NewRNG(101).Split(1).Split(2)
	d := NewRNG(202).Split(1).Split(2)
	same = true
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("nested splits must also depend on the root seed")
	}
}

func TestRNGExp(t *testing.T) {
	rng := NewRNG(1)
	// Mean of Exp(rate) is 1/rate; with 20k samples the sample mean should
	// land within a few percent.
	const rate = 1.0 / 5000 // events per ms, mean 5000 ms
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(rng.Exp(rate))
	}
	mean := sum / n
	if mean < 4500 || mean > 5500 {
		t.Errorf("sample mean %v, want ≈5000", mean)
	}
	if NewRNG(1).Exp(0) < Time(1)<<61 {
		t.Error("zero rate should give effectively infinite gap")
	}
}

func TestActivationConstantRateCount(t *testing.T) {
	m := ActivationModel{}
	rng := NewRNG(99)
	// With λ0 = N/δe, the expected number of arrivals inside the epoch is
	// slightly under N (sum of N exponential gaps ≈ δe). Check that a large
	// run lands in a plausible band.
	var total int
	const trials = 50
	const n = 128
	for i := 0; i < trials; i++ {
		times := m.EpochActivations(rng.Split(uint64(i)), n, 0, Day)
		total += len(times)
		if !sort.SliceIsSorted(times, func(a, b int) bool { return times[a] < times[b] }) {
			t.Fatal("activation times must be sorted")
		}
		for _, at := range times {
			if at < 0 || at >= Day {
				t.Fatalf("activation %v outside epoch", at)
			}
		}
	}
	avg := float64(total) / trials
	if avg < n*0.5 || avg > n*1.0 {
		t.Errorf("average activations per epoch = %v, want within [%d, %d]", avg, n/2, n)
	}
}

func TestActivationStrictlyIncreasing(t *testing.T) {
	m := ActivationModel{Sigma: 2.5}
	times := m.EpochActivations(NewRNG(5), 500, 0, Day)
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("times not strictly increasing at %d: %v <= %v", i, times[i], times[i-1])
		}
	}
}

func TestActivationZeroPopulation(t *testing.T) {
	m := ActivationModel{}
	if got := m.EpochActivations(NewRNG(1), 0, 0, Day); got != nil {
		t.Errorf("zero population should give nil, got %v", got)
	}
	if got := m.EpochActivations(NewRNG(1), 5, 0, 0); got != nil {
		t.Errorf("zero epoch should give nil, got %v", got)
	}
}

func TestActivationDynamicRateIncreasesVariance(t *testing.T) {
	constant := ActivationModel{}
	dynamic := ActivationModel{Sigma: 2.5}
	varOf := func(m ActivationModel, seedBase uint64) float64 {
		var counts []float64
		for i := 0; i < 60; i++ {
			times := m.EpochActivations(NewRNG(seedBase+uint64(i)), 64, 0, Day)
			counts = append(counts, float64(len(times)))
		}
		mean := 0.0
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		v := 0.0
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		return v / float64(len(counts)-1)
	}
	vc := varOf(constant, 1000)
	vd := varOf(dynamic, 2000)
	if vd <= vc {
		t.Errorf("dynamic-rate variance (%v) should exceed constant-rate variance (%v)", vd, vc)
	}
}

func TestWindowActivationsMultiEpoch(t *testing.T) {
	m := ActivationModel{}
	w := Window{Start: 0, End: 4 * Day}
	times, actives := m.WindowActivations(NewRNG(11), 32, Day, w)
	if len(actives) != 4 {
		t.Fatalf("got %d epochs, want 4", len(actives))
	}
	var sum int
	for _, a := range actives {
		sum += a
	}
	if sum != len(times) {
		t.Errorf("per-epoch actives (%d) disagree with total times (%d)", sum, len(times))
	}
	for _, at := range times {
		if !w.Contains(at) {
			t.Errorf("activation %v outside window", at)
		}
	}
}

func TestNormal(t *testing.T) {
	rng := NewRNG(3)
	var sum, sumsq float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := rng.Normal(10, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %v, want ≈10", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Errorf("std = %v, want ≈2", std)
	}
}
