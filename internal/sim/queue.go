package sim

import "container/heap"

// Event is a scheduled callback in the discrete-event engine.
type Event struct {
	At Time
	Fn func(*Engine)

	seq uint64 // tie-breaker preserving scheduling order at equal times
}

// eventHeap orders events by time, then by insertion sequence so that
// simultaneous events fire deterministically in the order scheduled.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulation loop. The zero value
// is ready to use; events scheduled in the past are executed at the current
// virtual time.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	stopped bool
}

// NewEngine returns an engine whose clock starts at 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule enqueues fn to run at virtual time at. Times before Now are
// clamped to Now (the event still runs, immediately next).
func (e *Engine) Schedule(at Time, fn func(*Engine)) {
	if at < e.now {
		at = e.now
	}
	ev := &Event{At: at, Fn: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
}

// ScheduleAfter enqueues fn to run delay units after the current time.
func (e *Engine) ScheduleAfter(delay Time, fn func(*Engine)) {
	e.Schedule(e.now+delay, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue empties, Stop is
// called, or the next event is at or beyond horizon. It returns the number
// of events executed. The clock is left at the time of the last executed
// event (or at horizon when the run drains up to it).
func (e *Engine) Run(horizon Time) int {
	e.stopped = false
	executed := 0
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.At >= horizon {
			e.now = horizon
			return executed
		}
		heap.Pop(&e.queue)
		e.now = next.At
		next.Fn(e)
		executed++
	}
	if !e.stopped && e.now < horizon {
		e.now = horizon
	}
	return executed
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
