package sim

// Event is a scheduled callback in the discrete-event engine.
type Event struct {
	At Time
	Fn func(*Engine)

	seq uint64 // tie-breaker preserving scheduling order at equal times
}

// eventHeap is a binary min-heap of events ordered by time, then by
// insertion sequence so that simultaneous events fire deterministically in
// the order scheduled. Events are stored by value and the sift loops are
// hand-rolled instead of going through container/heap: the interface-based
// heap API boxes every Push/Pop, and the per-event allocation was the
// single largest entry in the experiment allocation profile (~35% of
// objects). A value heap keeps the queue a single flat slice that grows
// amortised and is reused for the whole simulation.
type eventHeap []Event

func (h eventHeap) less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

// push appends ev and restores the heap invariant (sift-up).
func (h *eventHeap) push(ev Event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

// pop removes and returns the minimum event (sift-down).
func (h *eventHeap) pop() Event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = Event{} // release the Fn closure for GC
	q = q[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	*h = q
	return top
}

// Engine is a deterministic discrete-event simulation loop. The zero value
// is ready to use; events scheduled in the past are executed at the current
// virtual time.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	stopped bool
}

// NewEngine returns an engine whose clock starts at 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule enqueues fn to run at virtual time at. Times before Now are
// clamped to Now (the event still runs, immediately next).
func (e *Engine) Schedule(at Time, fn func(*Engine)) {
	if at < e.now {
		at = e.now
	}
	e.queue.push(Event{At: at, Fn: fn, seq: e.nextSeq})
	e.nextSeq++
}

// ScheduleAfter enqueues fn to run delay units after the current time.
func (e *Engine) ScheduleAfter(delay Time, fn func(*Engine)) {
	e.Schedule(e.now+delay, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue empties, Stop is
// called, or the next event is at or beyond horizon. It returns the number
// of events executed. The clock is left at the time of the last executed
// event (or at horizon when the run drains up to it).
func (e *Engine) Run(horizon Time) int {
	e.stopped = false
	executed := 0
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].At >= horizon {
			e.now = horizon
			return executed
		}
		next := e.queue.pop()
		e.now = next.At
		next.Fn(e)
		executed++
	}
	if !e.stopped && e.now < horizon {
		e.now = horizon
	}
	return executed
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
