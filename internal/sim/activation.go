package sim

import "math"

// ActivationModel generates the per-epoch activation times of a bot
// population, following the paper's §V-A workload: activations form a
// Poisson-style arrival process with base rate λ₀ = N/δe. With Sigma == 0
// the rate is constant; with Sigma > 0 the rate preceding the i-th
// activation is λᵢ = λ₀·e^κᵢ with κᵢ ~ N(0, σ²), modelling fluctuating
// network dynamics (Figure 6(d)).
type ActivationModel struct {
	// Sigma is the standard deviation σ of the log-rate perturbation.
	// Zero selects the constant-rate process.
	Sigma float64
}

// EpochActivations returns the activation times of n bots inside the epoch
// [epochStart, epochStart+epochLen). Exactly one activation per bot is
// attempted; arrivals whose cumulative waiting time spills past the epoch
// end are dropped (those bots are simply not active this epoch, mirroring
// the "active bots appearing in the observation window" semantics of the
// paper). The returned times are strictly increasing.
func (m ActivationModel) EpochActivations(rng *RNG, n int, epochStart, epochLen Time) []Time {
	if n <= 0 || epochLen <= 0 {
		return nil
	}
	lambda0 := float64(n) / float64(epochLen) // activations per ms
	out := make([]Time, 0, n)
	t := epochStart
	end := epochStart + epochLen
	for i := 0; i < n; i++ {
		rate := lambda0
		if m.Sigma > 0 {
			rate = lambda0 * math.Exp(rng.Normal(0, m.Sigma))
		}
		gap := rng.Exp(rate)
		if gap < 1 {
			gap = 1 // enforce strictly increasing millisecond timestamps
		}
		t += gap
		if t >= end {
			break
		}
		out = append(out, t)
	}
	return out
}

// WindowActivations concatenates per-epoch activations across every epoch
// overlapping the window w, returning (times, actives) where actives is the
// per-epoch count of activations that fell inside the window. Each epoch
// draws fresh rate perturbations, as in the paper's multi-epoch runs
// (Figure 6(b)).
func (m ActivationModel) WindowActivations(rng *RNG, n int, epochLen Time, w Window) ([]Time, []int) {
	if epochLen <= 0 {
		return nil, nil
	}
	var times []Time
	var actives []int
	firstEpoch := w.Start / epochLen
	for es := firstEpoch * epochLen; es < w.End; es += epochLen {
		epochTimes := m.EpochActivations(rng, n, es, epochLen)
		count := 0
		for _, t := range epochTimes {
			if w.Contains(t) {
				times = append(times, t)
				count++
			}
		}
		actives = append(actives, count)
	}
	return times, actives
}
