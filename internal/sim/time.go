// Package sim provides the deterministic discrete-event simulation kernel
// underlying every synthetic experiment in this repository: a millisecond
// virtual clock, a binary-heap event queue, seeded random-number streams,
// and the bot-activation point processes of the paper's §V-A (constant-rate
// Poisson and the log-normal-modulated variant λᵢ = λ₀·e^κᵢ).
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp measured in milliseconds since the start of a
// simulation. The paper's finest timestamp granularity is 100 ms (synthetic
// traces) and 1 s (the enterprise trace), so millisecond resolution is
// lossless for every experiment.
type Time int64

// Common durations expressed in virtual-clock units.
const (
	Millisecond Time = 1
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
	Day              = 24 * Hour
)

// FromDuration converts a wall-clock duration to virtual time.
func FromDuration(d time.Duration) Time {
	return Time(d.Milliseconds())
}

// Duration converts virtual time to a time.Duration.
func (t Time) Duration() time.Duration {
	return time.Duration(int64(t)) * time.Millisecond
}

// Truncate rounds t down to a multiple of granularity (used to model coarse
// timestamping at vantage points). A non-positive granularity is an
// identity.
func (t Time) Truncate(granularity Time) Time {
	if granularity <= 0 {
		return t
	}
	return t - t%granularity
}

// String renders the virtual time as d:hh:mm:ss.mmm for logs and traces.
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	d := t / Day
	t %= Day
	h := t / Hour
	t %= Hour
	m := t / Minute
	t %= Minute
	s := t / Second
	ms := t % Second
	return fmt.Sprintf("%s%d:%02d:%02d:%02d.%03d", neg, d, h, m, s, ms)
}

// Window is a half-open virtual time interval [Start, End).
type Window struct {
	Start, End Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t Time) bool { return t >= w.Start && t < w.End }

// Len returns the window length.
func (w Window) Len() Time { return w.End - w.Start }

// Split divides the window into n equal consecutive sub-windows (the
// per-epoch averaging of Figure 6(b)). Remainder milliseconds accrue to the
// final sub-window.
func (w Window) Split(n int) []Window {
	if n <= 0 {
		return nil
	}
	out := make([]Window, 0, n)
	step := w.Len() / Time(n)
	for i := 0; i < n; i++ {
		sub := Window{Start: w.Start + Time(i)*step, End: w.Start + Time(i+1)*step}
		if i == n-1 {
			sub.End = w.End
		}
		out = append(out, sub)
	}
	return out
}
