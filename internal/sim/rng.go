package sim

import (
	"math/rand/v2"
)

// RNG wraps a seeded PCG generator. Every stochastic component in the
// simulator draws from an RNG derived from a single experiment seed, making
// whole experiment runs reproducible bit-for-bit.
type RNG struct {
	*rand.Rand

	seed uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{Rand: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)), seed: seed}
}

// splitmix64 is the SplitMix64 finaliser, used to decorrelate seeds.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child stream identified by label. The child
// depends on BOTH the parent's seed and the label: equal labels under
// different parents give different streams, equal (parent, label) pairs are
// reproducible, and Split does not perturb the parent stream.
func (r *RNG) Split(label uint64) *RNG {
	z := splitmix64(r.seed ^ splitmix64(label))
	return &RNG{Rand: rand.New(rand.NewPCG(z, z^0xda942042e4dd58b5)), seed: z}
}

// SplitFrom derives a child stream from a parent seed plus label without
// constructing the parent. Useful for per-bot and per-epoch streams.
func SplitFrom(seed, label uint64) *RNG {
	return NewRNG(seed).Split(label)
}

// PermInto writes a pseudo-random permutation of [0, n) into buf (grown as
// needed) and returns it. The draw sequence is exactly Perm's — identity
// fill, then Shuffle, whose draws depend only on n — so swapping Perm for
// PermInto leaves the RNG stream and the produced permutation bit-identical
// while reusing one buffer across calls.
func (r *RNG) PermInto(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = i
	}
	r.Shuffle(n, func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
	return buf
}

// Exp returns an exponentially distributed duration with the given rate
// (events per virtual-time unit). A non-positive rate yields an effectively
// infinite duration.
func (r *RNG) Exp(rate float64) Time {
	if rate <= 0 {
		return Time(1) << 62
	}
	return Time(r.ExpFloat64() / rate)
}

// Normal returns a normally distributed float with the given mean and
// standard deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}
