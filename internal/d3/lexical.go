package d3

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LexicalClassifier is a working D³ algorithm in the spirit of the
// character-distribution detectors the paper cites (Yadav et al. [25]):
// it scores a domain's name by the log-likelihood of its character bigrams
// under a benign language model, normalised per transition, and flags
// names that look too unlike benign vocabulary. Where the Window type
// *models* a detector's coverage, LexicalClassifier *is* one — it lets the
// whole pipeline run end-to-end with detection genuinely computed from
// strings rather than oracle pool knowledge.
type LexicalClassifier struct {
	// logProb[a][b] = log P(next char = b | current = a), Laplace-smoothed
	// over a 38-symbol alphabet (a-z, 0-9, '-', boundary).
	logProb [alphabetSize][alphabetSize]float64
	// Threshold is the per-transition average log-likelihood below which a
	// name is classified as DGA-generated. Set by Train from the requested
	// benign false-positive budget.
	Threshold float64
}

const alphabetSize = 38 // 26 letters + 10 digits + '-' + boundary marker

func symbolIndex(c byte) int {
	switch {
	case c >= 'a' && c <= 'z':
		return int(c - 'a')
	case c >= 'A' && c <= 'Z':
		return int(c - 'A')
	case c >= '0' && c <= '9':
		return 26 + int(c-'0')
	case c == '-':
		return 36
	default:
		return 37 // treated as a boundary/unknown symbol
	}
}

const boundarySymbol = 37

// TrainLexical fits the bigram model on benign domain names and sets the
// detection threshold so that at most fpBudget of the benign TRAINING
// names are misclassified (fpBudget in (0,1), e.g. 0.01).
func TrainLexical(benign []string, fpBudget float64) (*LexicalClassifier, error) {
	if len(benign) == 0 {
		return nil, fmt.Errorf("d3: no benign training data")
	}
	if fpBudget <= 0 || fpBudget >= 1 {
		return nil, fmt.Errorf("d3: false-positive budget %v outside (0,1)", fpBudget)
	}
	var counts [alphabetSize][alphabetSize]float64
	for _, d := range benign {
		name := nameOf(d)
		prev := boundarySymbol
		for i := 0; i < len(name); i++ {
			cur := symbolIndex(name[i])
			counts[prev][cur]++
			prev = cur
		}
		counts[prev][boundarySymbol]++
	}
	c := &LexicalClassifier{}
	for a := 0; a < alphabetSize; a++ {
		var rowTotal float64
		for b := 0; b < alphabetSize; b++ {
			rowTotal += counts[a][b]
		}
		for b := 0; b < alphabetSize; b++ {
			// Laplace smoothing keeps unseen transitions finite.
			c.logProb[a][b] = math.Log((counts[a][b] + 1) / (rowTotal + alphabetSize))
		}
	}
	// Threshold at the fpBudget-quantile of benign scores.
	scores := make([]float64, 0, len(benign))
	for _, d := range benign {
		scores = append(scores, c.Score(d))
	}
	sort.Float64s(scores)
	idx := int(fpBudget * float64(len(scores)))
	if idx >= len(scores) {
		idx = len(scores) - 1
	}
	c.Threshold = scores[idx]
	return c, nil
}

// Score returns the average per-transition log-likelihood of the domain's
// first label under the benign model (higher = more benign-looking).
func (c *LexicalClassifier) Score(domain string) float64 {
	name := nameOf(domain)
	if name == "" {
		return 0
	}
	var total float64
	transitions := 0
	prev := boundarySymbol
	for i := 0; i < len(name); i++ {
		cur := symbolIndex(name[i])
		total += c.logProb[prev][cur]
		transitions++
		prev = cur
	}
	total += c.logProb[prev][boundarySymbol]
	transitions++
	return total / float64(transitions)
}

// IsDGA classifies one domain.
func (c *LexicalClassifier) IsDGA(domain string) bool {
	return c.Score(domain) < c.Threshold
}

// DetectList filters a candidate list down to names classified as
// DGA-generated — the Report-producing path for real deployments where the
// pool is not known a priori.
func (c *LexicalClassifier) DetectList(domains []string) []string {
	out := make([]string, 0, len(domains))
	for _, d := range domains {
		if c.IsDGA(d) {
			out = append(out, d)
		}
	}
	return out
}

// nameOf extracts the lowercase first label of a domain.
func nameOf(domain string) string {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	if i := strings.IndexByte(domain, '.'); i >= 0 {
		domain = domain[:i]
	}
	return domain
}
