// Package d3 models the DGA-domain detection (D³) front end that feeds
// BotMeter (paper §II-B). A real D³ algorithm — lexical classification,
// reverse engineering, NXD clustering — reports only part of each query
// pool (its detection window) and may include collision domains that
// coincide with valid benign names. The Window type reproduces exactly the
// model the paper evaluates in Figure 6(e): a uniformly random fraction of
// the pool is missed.
package d3

import (
	"fmt"

	"botmeter/internal/dga"
	"botmeter/internal/sim"
)

// Window simulates a D³ algorithm's coverage of DGA pools.
type Window struct {
	// MissRate is the fraction of pool domains the detector fails to
	// report, sampled uniformly at random per epoch (Figure 6(e) sweeps
	// 0.10–0.50).
	MissRate float64
	// Collisions is the number of unrelated (benign) domains erroneously
	// attributed to the DGA per epoch — the paper's "collision cases".
	Collisions int
	// Seed drives the random misses and collisions.
	Seed uint64
}

// Validate checks the configuration.
func (w Window) Validate() error {
	if w.MissRate < 0 || w.MissRate >= 1 {
		return fmt.Errorf("d3: miss rate %v outside [0,1)", w.MissRate)
	}
	if w.Collisions < 0 {
		return fmt.Errorf("d3: negative collision count")
	}
	return nil
}

// Report is the detector's output for one epoch.
type Report struct {
	// Detected is the subset of the epoch's pool the detector reports, in
	// pool order.
	Detected []string
	// DetectedPositions are the pool positions of Detected (parallel
	// slice), needed by position-aware estimators (Bernoulli).
	DetectedPositions []int
	// Collisions are spurious domains attributed to the DGA.
	Collisions []string
	// Missed counts pool domains the detector failed to report.
	Missed int
}

// All returns detected plus collision domains (what an analyst would load
// into the matcher).
func (r Report) All() []string {
	out := make([]string, 0, len(r.Detected)+len(r.Collisions))
	out = append(out, r.Detected...)
	out = append(out, r.Collisions...)
	return out
}

// Detect produces the epoch report for a pool. The same (Window, epoch,
// pool) always yields the same report.
func (w Window) Detect(epoch int, pool *dga.Pool) Report {
	rng := sim.SplitFrom(w.Seed, uint64(uint32(epoch))*0x9e3779b1+0xd3)
	var rep Report
	rep.Detected = make([]string, 0, pool.Size())
	rep.DetectedPositions = make([]int, 0, pool.Size())
	for i, d := range pool.Domains {
		if w.MissRate > 0 && rng.Float64() < w.MissRate {
			rep.Missed++
			continue
		}
		rep.Detected = append(rep.Detected, d)
		rep.DetectedPositions = append(rep.DetectedPositions, i)
	}
	for i := 0; i < w.Collisions; i++ {
		rep.Collisions = append(rep.Collisions,
			fmt.Sprintf("benign-collision-%d-%d.com", epoch, i))
	}
	return rep
}

// Coverage returns the realised detection coverage of a report.
func (r Report) Coverage() float64 {
	total := len(r.Detected) + r.Missed
	if total == 0 {
		return 0
	}
	return float64(len(r.Detected)) / float64(total)
}
