package d3

import (
	"math"
	"testing"

	"botmeter/internal/dga"
)

func pool() *dga.Pool {
	m := dga.DrainReplenish{NX: 995, C2: 5, Gen: dga.DefaultGenerator}
	return m.PoolFor(42, 0)
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		w    Window
		ok   bool
	}{
		{"zero", Window{}, true},
		{"typical", Window{MissRate: 0.3, Collisions: 2}, true},
		{"negative miss", Window{MissRate: -0.1}, false},
		{"full miss", Window{MissRate: 1}, false},
		{"negative collisions", Window{Collisions: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.w.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() err = %v, ok = %v", err, tt.ok)
			}
		})
	}
}

func TestDetectFullCoverage(t *testing.T) {
	p := pool()
	rep := Window{}.Detect(0, p)
	if len(rep.Detected) != p.Size() || rep.Missed != 0 {
		t.Errorf("perfect detector: %d detected, %d missed", len(rep.Detected), rep.Missed)
	}
	if rep.Coverage() != 1 {
		t.Errorf("coverage = %v", rep.Coverage())
	}
	for i, pos := range rep.DetectedPositions {
		if p.Domains[pos] != rep.Detected[i] {
			t.Fatal("positions not parallel to domains")
		}
	}
}

func TestDetectMissRate(t *testing.T) {
	p := pool()
	w := Window{MissRate: 0.3, Seed: 1}
	rep := w.Detect(0, p)
	got := rep.Coverage()
	if math.Abs(got-0.7) > 0.05 {
		t.Errorf("coverage = %v, want ≈0.7", got)
	}
	if len(rep.Detected)+rep.Missed != p.Size() {
		t.Error("detected + missed must equal pool size")
	}
}

func TestDetectDeterministic(t *testing.T) {
	p := pool()
	w := Window{MissRate: 0.5, Seed: 9}
	a := w.Detect(3, p)
	b := w.Detect(3, p)
	if len(a.Detected) != len(b.Detected) {
		t.Fatal("nondeterministic detection")
	}
	for i := range a.Detected {
		if a.Detected[i] != b.Detected[i] {
			t.Fatal("nondeterministic detection content")
		}
	}
	c := w.Detect(4, p)
	if len(a.Detected) == len(c.Detected) {
		same := true
		for i := range a.Detected {
			if a.Detected[i] != c.Detected[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different epochs should miss different domains")
		}
	}
}

func TestDetectCollisions(t *testing.T) {
	p := pool()
	w := Window{Collisions: 3, Seed: 2}
	rep := w.Detect(0, p)
	if len(rep.Collisions) != 3 {
		t.Fatalf("collisions = %d, want 3", len(rep.Collisions))
	}
	all := rep.All()
	if len(all) != len(rep.Detected)+3 {
		t.Errorf("All() = %d entries", len(all))
	}
	// Collision domains are distinct from pool domains.
	for _, c := range rep.Collisions {
		if p.Contains(c) {
			t.Errorf("collision %q is a real pool domain", c)
		}
	}
}

func TestCoverageEmptyReport(t *testing.T) {
	if (Report{}).Coverage() != 0 {
		t.Error("empty report coverage should be 0")
	}
}
