package d3

import (
	"fmt"
	"testing"

	"botmeter/internal/dga"
	"botmeter/internal/sim"
)

// benignCorpus builds pronounceable, English-like names — the vocabulary a
// benign zone is drawn from.
func benignCorpus(n int) []string {
	syllables := []string{
		"ad", "ana", "ber", "cloud", "con", "cor", "data", "dev", "doc",
		"ed", "fast", "file", "go", "home", "info", "lab", "line", "mail",
		"map", "media", "net", "news", "on", "page", "photo", "play",
		"port", "pro", "search", "secure", "server", "shop", "site",
		"smart", "soft", "store", "stream", "tech", "test", "time",
		"top", "track", "video", "view", "web", "wiki", "work", "world",
	}
	rng := sim.NewRNG(12345)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		parts := 2 + rng.IntN(2)
		name := ""
		for p := 0; p < parts; p++ {
			name += syllables[rng.IntN(len(syllables))]
		}
		out = append(out, name+".com")
	}
	return out
}

func TestTrainLexicalValidation(t *testing.T) {
	if _, err := TrainLexical(nil, 0.01); err == nil {
		t.Error("empty corpus should fail")
	}
	if _, err := TrainLexical([]string{"a.com"}, 0); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := TrainLexical([]string{"a.com"}, 1); err == nil {
		t.Error("unit budget should fail")
	}
}

func TestLexicalSeparatesDGAFromBenign(t *testing.T) {
	benign := benignCorpus(3000)
	clf, err := TrainLexical(benign, 0.02)
	if err != nil {
		t.Fatal(err)
	}

	// Held-out benign names: false-positive rate should stay near budget.
	heldOut := benignCorpus(1000)[500:]
	fp := 0
	for _, d := range heldOut {
		if clf.IsDGA(d) {
			fp++
		}
	}
	if rate := float64(fp) / float64(len(heldOut)); rate > 0.10 {
		t.Errorf("benign false-positive rate %v too high", rate)
	}

	// Random DGA output: detection rate should be high.
	pool := dga.ConfickerC().Pool.PoolFor(9, 0)
	detected := clf.DetectList(pool.Domains[:2000])
	if rate := float64(len(detected)) / 2000; rate < 0.6 {
		t.Errorf("DGA detection rate %v too low", rate)
	}
}

func TestLexicalScoreOrdering(t *testing.T) {
	clf, err := TrainLexical(benignCorpus(2000), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// A vocabulary-like name should outscore uniform-random gibberish.
	if clf.Score("webmailserver.com") <= clf.Score("xq7zk9vjw2hq.com") {
		t.Errorf("score ordering broken: benign %v vs gibberish %v",
			clf.Score("webmailserver.com"), clf.Score("xq7zk9vjw2hq.com"))
	}
}

func TestLexicalHandlesOddInput(t *testing.T) {
	clf, err := TrainLexical(benignCorpus(500), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"", ".", "UPPER.CASE.COM", "with-dash.net", "ünïcode.com", "no-tld"} {
		// Must not panic, must return a finite score.
		s := clf.Score(d)
		if s != s { // NaN check
			t.Errorf("NaN score for %q", d)
		}
		_ = clf.IsDGA(d)
	}
}

func TestLexicalFeedsMatcherPipeline(t *testing.T) {
	// End-to-end detector use: classify a mixed stream, keep DGA-looking
	// names, and verify most of the kept set is genuinely DGA.
	clf, err := TrainLexical(benignCorpus(2000), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	pool := dga.NewGoZ().Pool.PoolFor(4, 0)
	mixed := make([]string, 0, 1000)
	mixed = append(mixed, pool.Domains[:500]...)
	mixed = append(mixed, benignCorpus(1000)[:500]...)
	kept := clf.DetectList(mixed)
	dgaKept := 0
	for _, d := range kept {
		if pool.Contains(d) {
			dgaKept++
		}
	}
	if len(kept) == 0 || float64(dgaKept)/float64(len(kept)) < 0.8 {
		t.Errorf("precision too low: %d/%d kept names are DGA", dgaKept, len(kept))
	}
}

func BenchmarkLexicalScore(b *testing.B) {
	clf, err := TrainLexical(benignCorpus(2000), 0.02)
	if err != nil {
		b.Fatal(err)
	}
	domains := make([]string, 64)
	for i := range domains {
		domains[i] = fmt.Sprintf("score-target-%04d.com", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Score(domains[i%len(domains)])
	}
}
