package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

// Small known values of S(n, m).
var stirlingKnown = map[[2]int]float64{
	{0, 0}:  1,
	{1, 1}:  1,
	{2, 1}:  1,
	{2, 2}:  1,
	{3, 1}:  1,
	{3, 2}:  3,
	{3, 3}:  1,
	{4, 2}:  7,
	{4, 3}:  6,
	{5, 2}:  15,
	{5, 3}:  25,
	{6, 3}:  90,
	{7, 4}:  350,
	{9, 3}:  3025,
	{10, 3}: 9330,
	{10, 5}: 42525,
}

func TestStirlingKnownValues(t *testing.T) {
	st := NewStirlingTable()
	for nm, want := range stirlingKnown {
		got := math.Exp(st.Log(nm[0], nm[1]))
		if !almostEqual(got, want, 1e-9) {
			t.Errorf("S(%d,%d) = %v, want %v", nm[0], nm[1], got, want)
		}
	}
}

func TestStirlingBoundary(t *testing.T) {
	st := NewStirlingTable()
	tests := []struct {
		n, m int
		want float64
	}{
		{5, 0, LogZero},
		{5, 6, LogZero},
		{-1, 0, LogZero},
		{3, -1, LogZero},
		{0, 0, 0},
		{7, 7, 0}, // S(n,n)=1
	}
	for _, tt := range tests {
		if got := st.Log(tt.n, tt.m); got != tt.want {
			t.Errorf("log S(%d,%d) = %v, want %v", tt.n, tt.m, got, tt.want)
		}
	}
}

func TestStirlingRowSumIsBellNumber(t *testing.T) {
	// Σ_m S(n,m) = Bell(n). Bell numbers: 1,1,2,5,15,52,203,877,4140.
	bell := []float64{1, 1, 2, 5, 15, 52, 203, 877, 4140}
	st := NewStirlingTable()
	for n, want := range bell {
		sum := LogZero
		for m := 0; m <= n; m++ {
			sum = LogAdd(sum, st.Log(n, m))
		}
		if got := math.Exp(sum); !almostEqual(got, want, 1e-9) {
			t.Errorf("Bell(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestStirlingSurjectionIdentityProperty(t *testing.T) {
	// m! · S(n, m) counts surjections from [n] onto [m]; by inclusion-
	// exclusion it equals Σ_k (-1)^k C(m,k) (m-k)^n.
	st := NewStirlingTable()
	// The identity involves an alternating sum whose terms exceed the
	// result by exp(n·log m − log(m!·S(n,m))); beyond n ≈ 20 the implied
	// cancellation outruns float64 precision, so the property is checked
	// on the numerically meaningful domain.
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%18) + 1
		m := int(mRaw)%n + 1
		lhs := SignedFromLog(LogFactorial(m) + st.Log(n, m))
		rhs := SignedZero
		for k := 0; k <= m; k++ {
			term := SignedFromLog(LogBinomial(m, k) + float64(n)*math.Log(float64(m-k)))
			if m-k == 0 {
				term = SignedZero
				if n == 0 {
					term = NewSigned(1)
				}
			}
			if k%2 == 1 {
				term = term.Neg()
			}
			rhs = rhs.Add(term)
		}
		if lhs.IsZero() && rhs.IsZero() {
			return true
		}
		return lhs.Sign == rhs.Sign && almostEqual(lhs.Log, rhs.Log, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStirlingConcurrentAccess(t *testing.T) {
	st := NewStirlingTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 1; n <= 100; n++ {
				m := (g*13+n)%n + 1
				if v := st.Log(n, m); math.IsNaN(v) {
					t.Errorf("NaN for S(%d,%d)", n, m)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStirlingLargeArguments(t *testing.T) {
	st := NewStirlingTable()
	v := st.Log(400, 150)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("log S(400,150) = %v, want finite", v)
	}
	// Monotone in n for fixed m (within the triangle).
	if st.Log(401, 150) <= v {
		t.Error("S(n,m) should grow with n for fixed m")
	}
}
