package stats

import (
	"math"
	"sync"
	"testing"
)

// TestLogCombTableBitIdentical pins the bit-identity contract: every table
// lookup must return the exact float64 the scalar functions produce, over
// the full (n, m) range the estimators exercise (segment lengths up to the
// MB kernel's maxN of 4096, binomial arguments from the gap-probability
// alternating sums, Stirling rows from the occupancy DP).
func TestLogCombTableBitIdentical(t *testing.T) {
	tbl := NewLogCombTable()

	for _, n := range []int{-3, -1, 0, 1, 2, 7, 63, 64, 1023, 1024, 1025, 4096, 5000} {
		got := tbl.LogFactorial(n)
		want := LogFactorial(n)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("LogFactorial(%d): table %v != scalar %v", n, got, want)
		}
	}

	// Full dense sweep over the range the MB gap kernel uses.
	const maxN = 600
	for n := -1; n <= maxN; n++ {
		for k := -1; k <= n+1; k++ {
			got := tbl.LogBinomial(n, k)
			want := LogBinomial(n, k)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("LogBinomial(%d,%d): table %v != scalar %v", n, k, got, want)
			}
		}
	}

	// Spot-check large arguments past several growth boundaries.
	for _, n := range []int{1024, 2048, 4096, 4500} {
		for _, k := range []int{0, 1, n / 3, n / 2, n - 1, n} {
			got := tbl.LogBinomial(n, k)
			want := LogBinomial(n, k)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("LogBinomial(%d,%d): table %v != scalar %v", n, k, got, want)
			}
		}
	}

	// Stirling rows route through the shared StirlingTable recurrence.
	var st StirlingTable
	for n := 0; n <= 64; n++ {
		for m := 0; m <= n+1; m++ {
			got := tbl.LogStirling(n, m)
			want := st.Log(n, m)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("LogStirling(%d,%d): table %v != scalar %v", n, m, got, want)
			}
		}
	}
}

// TestLogCombTableGlobal exercises the shared process-global table.
func TestLogCombTableGlobal(t *testing.T) {
	if got, want := Comb.LogBinomial(100, 40), LogBinomial(100, 40); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("Comb.LogBinomial(100,40) = %v, want %v", got, want)
	}
	if Comb.Len() == 0 {
		t.Fatal("global table did not materialise any entries")
	}
}

// TestLogCombTableConcurrentGrowth hammers growth from many goroutines;
// run under -race this verifies the snapshot publication protocol.
func TestLogCombTableConcurrentGrowth(t *testing.T) {
	tbl := NewLogCombTable()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 1; n < 3000; n += 37 + g {
				got := tbl.LogFactorial(n)
				want := LogFactorial(n)
				if math.Float64bits(got) != math.Float64bits(want) {
					select {
					case errs <- "mismatch":
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

func BenchmarkLogCombTable(b *testing.B) {
	tbl := NewLogCombTable()
	tbl.LogFactorial(4096) // pre-grow so we measure steady-state lookups
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tbl.LogBinomial(2000+i%100, 700+i%50)
	}
	_ = sink
}

func BenchmarkLogCombScalar(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += LogBinomial(2000+i%100, 700+i%50)
	}
	_ = sink
}
