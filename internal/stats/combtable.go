package stats

import (
	"math"
	"sync"
	"sync/atomic"
)

// LogCombTable precomputes the log-factorial ladder the estimators'
// combinatorial kernels are built from, so their inner loops replace
// per-call math.Lgamma with one array read. The table also owns a shared
// StirlingTable, giving callers every log-domain combinatorial quantity —
// log n!, log C(n, k), log S(n, m) — from one object.
//
// Bit-identity contract: entry n stores exactly what the scalar
// LogFactorial(n) computes (math.Lgamma(n+1)), and LogBinomial composes the
// same three values with the same subtraction order as the scalar form, so
// swapping the scalar calls for table lookups cannot move a golden artifact
// by even an ulp. TestLogCombTableBitIdentical pins this over the full
// argument range the estimators use.
//
// Concurrency: reads are lock-free — the factorial ladder is an immutable
// snapshot behind an atomic pointer, republished on growth under a mutex
// (the symtab intern-table idiom). Rows only ever grow and values never
// change, which is what makes one process-global table (Comb) safe to share
// across servers, trials and stream shards: a hit computed for one trial is
// a hit for every later one.
type LogCombTable struct {
	mu   sync.Mutex
	snap atomic.Pointer[[]float64] // snap[n] = log n!
	st   StirlingTable
}

// Comb is the process-global table shared by every estimator instance.
// Sharing is sound because every entry is a pure function of its index.
var Comb = NewLogCombTable()

// NewLogCombTable returns an empty table; entries are computed on demand.
func NewLogCombTable() *LogCombTable {
	return &LogCombTable{}
}

// Len reports how many factorial entries are currently materialised.
func (t *LogCombTable) Len() int {
	if p := t.snap.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// LogFactorial returns log(n!), bit-identical to the scalar LogFactorial.
func (t *LogCombTable) LogFactorial(n int) float64 {
	if n < 0 {
		return LogZero
	}
	if p := t.snap.Load(); p != nil && n < len(*p) {
		return (*p)[n]
	}
	return t.grow(n)
}

// grow extends the ladder through at least index n and returns entry n.
// The new snapshot is a fresh slice: readers holding the old pointer keep
// seeing a consistent (shorter) table.
func (t *LogCombTable) grow(n int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var cur []float64
	if p := t.snap.Load(); p != nil {
		cur = *p
	}
	if n < len(cur) { // another goroutine grew it while we waited
		return cur[n]
	}
	size := 1024
	for size <= n {
		size *= 2
	}
	next := make([]float64, size)
	copy(next, cur)
	for i := len(cur); i < size; i++ {
		// Each entry is computed independently via Lgamma — NOT by adding
		// log(i) to the previous entry — so it is the exact float64 the
		// scalar path produces.
		lg, _ := math.Lgamma(float64(i) + 1)
		next[i] = lg
	}
	t.snap.Store(&next)
	return next[n]
}

// LogBinomial returns log C(n, k), bit-identical to the scalar LogBinomial:
// the same special-case branches and the same lf(n) − lf(k) − lf(n−k)
// evaluation order.
func (t *LogCombTable) LogBinomial(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		return LogZero
	}
	if k == 0 || k == n {
		return 0
	}
	p := t.snap.Load()
	if p == nil || n >= len(*p) {
		t.grow(n)
		p = t.snap.Load()
	}
	lf := *p
	return lf[n] - lf[k] - lf[n-k]
}

// LogStirling returns log S(n, m) from the table's shared StirlingTable.
func (t *LogCombTable) LogStirling(n, m int) float64 {
	return t.st.Log(n, m)
}
