package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic set is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := StdDev(xs), math.Sqrt(32.0/7.0); !almostEqual(got, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("variance of single element should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
		{-5, 15},
		{105, 50},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty slice should be 0")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{10, 20}
	if got := Percentile(xs, 50); !almostEqual(got, 15, 1e-12) {
		t.Errorf("interpolated median = %v, want 15", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestComputeQuartiles(t *testing.T) {
	q := ComputeQuartiles([]float64{1, 2, 3, 4, 5})
	if q.P25 != 2 || q.P50 != 3 || q.P75 != 4 {
		t.Errorf("quartiles = %+v", q)
	}
	if q := ComputeQuartiles(nil); q != (Quartiles{}) {
		t.Errorf("empty quartiles = %+v", q)
	}
}

func TestQuartileOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				r = 0
			}
			xs = append(xs, r)
		}
		q := ComputeQuartiles(xs)
		return q.P25 <= q.P50 && q.P50 <= q.P75
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				r = 0
			}
			xs = append(xs, r)
			lo = math.Min(lo, r)
			hi = math.Max(hi, r)
		}
		p := float64(pRaw % 101)
		v := Percentile(xs, p)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestARE(t *testing.T) {
	tests := []struct {
		name              string
		estimated, actual float64
		want              float64
	}{
		{"exact", 100, 100, 0},
		{"over", 120, 100, 0.2},
		{"under", 80, 100, 0.2},
		{"zero actual zero est", 0, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ARE(tt.estimated, tt.actual); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("ARE = %v, want %v", got, tt.want)
			}
		})
	}
	if !math.IsInf(ARE(5, 0), 1) {
		t.Error("ARE with zero actual and non-zero estimate should be +Inf")
	}
}

func TestARENonNegativeProperty(t *testing.T) {
	f := func(e, a float64) bool {
		if math.IsNaN(e) || math.IsNaN(a) || math.IsInf(e, 0) || math.IsInf(a, 0) {
			return true
		}
		return ARE(e, a) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	// A tight sample: the CI must bracket the mean narrowly.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + float64(i%5)*0.01
	}
	ci := BootstrapMeanCI(xs, 0.95, 500, 7)
	m := Mean(xs)
	if ci.Lo > m || ci.Hi < m {
		t.Errorf("CI [%v, %v] does not bracket mean %v", ci.Lo, ci.Hi, m)
	}
	if ci.Hi-ci.Lo > 0.02 {
		t.Errorf("CI too wide for tight data: [%v, %v]", ci.Lo, ci.Hi)
	}
	// Wider-spread data gives a wider interval.
	spread := []float64{1, 5, 20, 80, 300, 2, 9, 60}
	wide := BootstrapMeanCI(spread, 0.95, 500, 7)
	if wide.Hi-wide.Lo <= ci.Hi-ci.Lo {
		t.Error("spread data should give a wider CI")
	}
	// Determinism.
	again := BootstrapMeanCI(spread, 0.95, 500, 7)
	if wide != again {
		t.Error("bootstrap not deterministic for fixed seed")
	}
	// Degenerate cases.
	if ci := BootstrapMeanCI([]float64{5}, 0.95, 500, 1); ci.Lo != 5 || ci.Hi != 5 {
		t.Errorf("single sample CI = %+v", ci)
	}
	if ci := BootstrapMeanCI(nil, 0.95, 500, 1); ci.Lo != 0 || ci.Hi != 0 {
		t.Errorf("empty CI = %+v", ci)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, math.Inf(1), math.NaN()})
	if s.N != 3 {
		t.Errorf("N = %d, want 3 (non-finite dropped)", s.N)
	}
	if !almostEqual(s.Mean, 2, 1e-12) {
		t.Errorf("Mean = %v, want 2", s.Mean)
	}
	if !almostEqual(s.Std, 1, 1e-12) {
		t.Errorf("Std = %v, want 1", s.Std)
	}
}
