package stats

import (
	"math"
	"sync"
)

// StirlingTable caches log-domain Stirling numbers of the second kind
// S(n, m): the number of ways to partition a set of n labelled elements
// into m non-empty unlabelled blocks. The Bernoulli estimator (paper
// §IV-D, Theorem 1) evaluates S(n, m) for n up to the candidate bot count
// and m up to n.
//
// The table grows on demand using the recurrence
//
//	S(n, m) = m·S(n-1, m) + S(n-1, m-1)
//
// computed entirely in the log domain (all terms are non-negative, so no
// signed arithmetic is needed). A StirlingTable is safe for concurrent use.
type StirlingTable struct {
	mu   sync.Mutex
	rows [][]float64 // rows[n][m] = log S(n, m), len(rows[n]) == n+1
}

// NewStirlingTable returns an empty table; rows are computed lazily.
func NewStirlingTable() *StirlingTable {
	return &StirlingTable{}
}

// Log returns log S(n, m). Invalid arguments (m < 0, m > n, n < 0) return
// LogZero, matching the convention S(n, m) = 0 outside the triangle, with
// the single exception S(0, 0) = 1.
func (st *StirlingTable) Log(n, m int) float64 {
	if n < 0 || m < 0 || m > n {
		return LogZero
	}
	if n == 0 {
		return 0 // S(0,0) = 1
	}
	if m == 0 {
		return LogZero // S(n,0) = 0 for n > 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.extend(n)
	return st.rows[n][m]
}

// extend grows the table to include row n. Caller holds st.mu.
func (st *StirlingTable) extend(n int) {
	if len(st.rows) == 0 {
		st.rows = append(st.rows, []float64{0}) // row 0: S(0,0)=1
	}
	for len(st.rows) <= n {
		k := len(st.rows)
		prev := st.rows[k-1]
		row := make([]float64, k+1)
		row[0] = LogZero // S(k,0)=0 for k>0
		for m := 1; m <= k; m++ {
			var a float64 = LogZero // m*S(k-1,m)
			if m < len(prev) {
				a = logMulInt(prev[m], m)
			}
			b := LogZero // S(k-1,m-1)
			if m-1 < len(prev) {
				b = prev[m-1]
			}
			row[m] = LogAdd(a, b)
		}
		st.rows = append(st.rows, row)
	}
}

// logMulInt returns log(k · exp(x)).
func logMulInt(x float64, k int) float64 {
	if k <= 0 {
		return LogZero
	}
	return x + logInt(k)
}

// logInt returns log(k) for k >= 1.
func logInt(k int) float64 {
	return math.Log(float64(k))
}
