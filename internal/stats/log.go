// Package stats provides the numerical substrate for BotMeter's analytical
// models: log-space combinatorics (binomial coefficients, Stirling numbers
// of the second kind), signed log-domain arithmetic for alternating sums,
// and descriptive statistics used by the evaluation harness.
//
// All combinatorial quantities are computed in the log domain because the
// Bernoulli estimator (paper §IV-D) multiplies binomials such as C(49995,
// 500) with Stirling numbers that overflow float64 by thousands of orders of
// magnitude.
package stats

import "math"

// LogZero is the log-domain representation of zero.
var LogZero = math.Inf(-1)

// LogAdd returns log(exp(a) + exp(b)) without overflow.
func LogAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogSub returns log(exp(a) - exp(b)). It requires a >= b; if the difference
// underflows (a ≈ b), it returns LogZero rather than NaN, which is the
// correct limiting behaviour for the probability computations in this
// package.
func LogSub(a, b float64) float64 {
	if math.IsInf(b, -1) {
		return a
	}
	if b >= a {
		return LogZero
	}
	return a + math.Log1p(-math.Exp(b-a))
}

// LogSumExp returns log(Σ exp(xs[i])) computed stably.
func LogSumExp(xs []float64) float64 {
	max := LogZero
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return LogZero
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// LogFactorial returns log(n!) via the log-gamma function.
func LogFactorial(n int) float64 {
	if n < 0 {
		return LogZero
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// LogBinomial returns log C(n, k). Out-of-range arguments (k < 0 or k > n)
// yield LogZero, matching the combinatorial convention C(n,k) = 0.
func LogBinomial(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		return LogZero
	}
	if k == 0 || k == n {
		return 0
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Binomial returns C(n, k) as a float64; it saturates to +Inf if the value
// exceeds the float64 range.
func Binomial(n, k int) float64 {
	return math.Exp(LogBinomial(n, k))
}

// Signed is a real number represented as sign · exp(Log). It supports the
// alternating binomial sums in the Bernoulli estimator where intermediate
// terms overflow float64.
type Signed struct {
	Sign int8    // -1, 0, or +1
	Log  float64 // log of the absolute value; ignored when Sign == 0
}

// SignedZero is the Signed representation of 0.
var SignedZero = Signed{Sign: 0, Log: LogZero}

// NewSigned builds a Signed from an ordinary float64.
func NewSigned(x float64) Signed {
	switch {
	case x > 0:
		return Signed{Sign: 1, Log: math.Log(x)}
	case x < 0:
		return Signed{Sign: -1, Log: math.Log(-x)}
	default:
		return SignedZero
	}
}

// SignedFromLog builds a positive Signed with the given log-magnitude.
func SignedFromLog(logAbs float64) Signed {
	if math.IsInf(logAbs, -1) {
		return SignedZero
	}
	return Signed{Sign: 1, Log: logAbs}
}

// Float returns the value as a float64 (may overflow to ±Inf or underflow
// to 0).
func (s Signed) Float() float64 {
	if s.Sign == 0 {
		return 0
	}
	return float64(s.Sign) * math.Exp(s.Log)
}

// IsZero reports whether the value is exactly zero.
func (s Signed) IsZero() bool { return s.Sign == 0 }

// Neg returns -s.
func (s Signed) Neg() Signed {
	s.Sign = -s.Sign
	return s
}

// Mul returns s * t.
func (s Signed) Mul(t Signed) Signed {
	if s.Sign == 0 || t.Sign == 0 {
		return SignedZero
	}
	return Signed{Sign: s.Sign * t.Sign, Log: s.Log + t.Log}
}

// Div returns s / t; dividing by zero yields SignedZero (the callers treat
// degenerate ratios as vanishing probability mass and fall back to Monte
// Carlo estimation).
func (s Signed) Div(t Signed) Signed {
	if s.Sign == 0 || t.Sign == 0 {
		return SignedZero
	}
	return Signed{Sign: s.Sign * t.Sign, Log: s.Log - t.Log}
}

// Add returns s + t.
func (s Signed) Add(t Signed) Signed {
	if s.Sign == 0 {
		return t
	}
	if t.Sign == 0 {
		return s
	}
	if s.Sign == t.Sign {
		return Signed{Sign: s.Sign, Log: LogAdd(s.Log, t.Log)}
	}
	// Opposite signs: subtract magnitudes.
	switch {
	case s.Log > t.Log:
		return Signed{Sign: s.Sign, Log: LogSub(s.Log, t.Log)}
	case t.Log > s.Log:
		return Signed{Sign: t.Sign, Log: LogSub(t.Log, s.Log)}
	default:
		return SignedZero
	}
}

// Sub returns s - t.
func (s Signed) Sub(t Signed) Signed { return s.Add(t.Neg()) }
