package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for n < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quartiles summarises a sample by its 25th, 50th and 75th percentiles —
// the error-bar convention used throughout the paper's Figure 6.
type Quartiles struct {
	P25, P50, P75 float64
}

// ComputeQuartiles returns the quartile summary of xs.
func ComputeQuartiles(xs []float64) Quartiles {
	if len(xs) == 0 {
		return Quartiles{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Quartiles{
		P25: percentileSorted(sorted, 25),
		P50: percentileSorted(sorted, 50),
		P75: percentileSorted(sorted, 75),
	}
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// ARE returns the absolute relative error |estimated-actual| / actual
// (paper Eq. 4). A zero actual population with a zero estimate is a perfect
// answer (0); a zero actual with a non-zero estimate returns +Inf.
func ARE(estimated, actual float64) float64 {
	if actual == 0 {
		if estimated == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimated-actual) / math.Abs(actual)
}

// Summary bundles mean and standard deviation, the format of the paper's
// Table II ("mean ± std").
type Summary struct {
	Mean, Std float64
	N         int
}

// Summarize computes a Summary of xs, ignoring non-finite values (which can
// arise from ARE on zero ground truth).
func Summarize(xs []float64) Summary {
	finite := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsInf(x, 0) && !math.IsNaN(x) {
			finite = append(finite, x)
		}
	}
	return Summary{Mean: Mean(finite), Std: StdDev(finite), N: len(finite)}
}

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
	// Level is the nominal coverage, e.g. 0.95.
	Level float64
}

// BootstrapMeanCI estimates a confidence interval for the mean of xs by
// the percentile bootstrap with the given number of resamples, driven by a
// deterministic seed so reports are reproducible. Non-finite inputs are
// ignored; fewer than two finite samples yield a degenerate interval at
// the mean.
func BootstrapMeanCI(xs []float64, level float64, resamples int, seed uint64) CI {
	finite := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsInf(x, 0) && !math.IsNaN(x) {
			finite = append(finite, x)
		}
	}
	m := Mean(finite)
	if len(finite) < 2 || level <= 0 || level >= 1 || resamples < 2 {
		return CI{Lo: m, Hi: m, Level: level}
	}
	// A tiny deterministic PCG-free generator (splitmix64) keeps this
	// package dependency-free.
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		var sum float64
		for i := 0; i < len(finite); i++ {
			sum += finite[next()%uint64(len(finite))]
		}
		means[r] = sum / float64(len(finite))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return CI{
		Lo:    percentileSorted(means, alpha*100),
		Hi:    percentileSorted(means, (1-alpha)*100),
		Level: level,
	}
}
