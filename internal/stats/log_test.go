package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestLogAdd(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		want float64
	}{
		{"both finite", math.Log(3), math.Log(4), math.Log(7)},
		{"a zero", LogZero, math.Log(5), math.Log(5)},
		{"b zero", math.Log(5), LogZero, math.Log(5)},
		{"both zero", LogZero, LogZero, LogZero},
		{"large magnitudes", 1000, 1000, 1000 + math.Log(2)},
		{"asymmetric", 1000, -1000, 1000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LogAdd(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("LogAdd(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestLogSub(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		want float64
	}{
		{"simple", math.Log(7), math.Log(3), math.Log(4)},
		{"b zero", math.Log(7), LogZero, math.Log(7)},
		{"equal", math.Log(7), math.Log(7), LogZero},
		{"b greater clamps", math.Log(3), math.Log(7), LogZero},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LogSub(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("LogSub(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestLogAddCommutativeProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 700)
		b = math.Mod(b, 700)
		return almostEqual(LogAdd(a, b), LogAdd(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSumExpMatchesSequentialAdds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, math.Mod(r, 500))
		}
		seq := LogZero
		for _, x := range xs {
			seq = LogAdd(seq, x)
		}
		return almostEqual(LogSumExp(xs), seq, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogBinomial(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1},
		{5, 0, 1},
		{5, 5, 1},
		{5, 2, 10},
		{10, 3, 120},
		{52, 5, 2598960},
		{5, 6, 0},
		{5, -1, 0},
		{-1, 0, 0},
	}
	for _, tt := range tests {
		got := math.Exp(LogBinomial(tt.n, tt.k))
		if !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("C(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestLogBinomialPascalProperty(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) in log space.
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%300) + 1
		k := int(kRaw) % (n + 1)
		lhs := LogBinomial(n, k)
		rhs := LogAdd(LogBinomial(n-1, k-1), LogBinomial(n-1, k))
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogBinomialSymmetryProperty(t *testing.T) {
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw % 2000)
		k := int(kRaw) % (n + 1)
		return almostEqual(LogBinomial(n, k), LogBinomial(n, n-k), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogBinomialHugeArguments(t *testing.T) {
	// Conficker-scale: C(49995, 500) must be finite and positive in log space.
	lb := LogBinomial(49995, 500)
	if math.IsInf(lb, 0) || math.IsNaN(lb) || lb <= 0 {
		t.Fatalf("LogBinomial(49995,500) = %v, want finite positive", lb)
	}
}

func TestSignedArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Signed
		want float64
	}{
		{"add same sign", NewSigned(3).Add(NewSigned(4)), 7},
		{"add opposite", NewSigned(3).Add(NewSigned(-4)), -1},
		{"add cancel", NewSigned(3).Add(NewSigned(-3)), 0},
		{"sub", NewSigned(3).Sub(NewSigned(5)), -2},
		{"mul", NewSigned(-3).Mul(NewSigned(4)), -12},
		{"mul zero", NewSigned(0).Mul(NewSigned(4)), 0},
		{"div", NewSigned(-12).Div(NewSigned(4)), -3},
		{"div by zero", NewSigned(12).Div(SignedZero), 0},
		{"neg", NewSigned(5).Neg(), -5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.got.Float(); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSignedRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 1e100)
		return almostEqual(NewSigned(x).Float(), x, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedAddMatchesFloatProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 1e50)
		b = math.Mod(b, 1e50)
		got := NewSigned(a).Add(NewSigned(b)).Float()
		return almostEqual(got, a+b, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedMulMatchesFloatProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 1e50)
		b = math.Mod(b, 1e50)
		got := NewSigned(a).Mul(NewSigned(b)).Float()
		return almostEqual(got, a*b, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedFromLog(t *testing.T) {
	if got := SignedFromLog(math.Log(42)).Float(); !almostEqual(got, 42, 1e-12) {
		t.Errorf("SignedFromLog(log 42) = %v, want 42", got)
	}
	if !SignedFromLog(LogZero).IsZero() {
		t.Error("SignedFromLog(LogZero) should be zero")
	}
}
