package experiments

import (
	"fmt"
	"strings"

	"botmeter/internal/botnet"
	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/estimators"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
	"botmeter/internal/trace"
)

// MissingObsConfig tunes the missing-observations robustness experiment —
// the abstract's "resilient against noisy and missing observations" claim
// along the axis Figure 6 does NOT sweep: records lost at the vantage
// point itself (collector drops, log rotation, packet loss on the tap)
// rather than domains missed by D³.
type MissingObsConfig struct {
	// Trials per point (default 5).
	Trials int
	// Population per trial (default 64).
	Population int
	// Seed drives the runs.
	Seed uint64
	// Scale shrinks pools (1 = Table I).
	Scale float64
	// Workers bounds trial-level parallelism (0 = one worker per CPU,
	// 1 = sequential); results are identical for any value.
	Workers int
	// Obs, when non-nil, exports the parallel-engine metrics.
	Obs *obs.Registry
}

func (c MissingObsConfig) withDefaults() MissingObsConfig {
	if c.Trials <= 0 {
		c.Trials = 5
	}
	if c.Population <= 0 {
		c.Population = 64
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// MissingObsPoint is one (model, estimator, drop-rate) cell.
type MissingObsPoint struct {
	Model     string
	Estimator string
	DropRate  float64
	ARE       stats.Quartiles
}

// MissingObservations sweeps uniform record loss ∈ {0, 10 … 50}% on AU
// (MT, MP) and AR (MT, MB).
func MissingObservations(cfg MissingObsConfig) ([]MissingObsPoint, error) {
	cfg = cfg.withDefaults()
	var out []MissingObsPoint
	for _, model := range []string{"AU", "AR"} {
		spec, err := modelSpec(model, cfg.Scale)
		if err != nil {
			return nil, err
		}
		ests := estimatorsFor(model, "")
		if model == "AR" {
			tolerant := estimators.NewBernoulli()
			tolerant.GapTolerance = 2
			adaptive := estimators.NewBernoulli()
			adaptive.AdaptiveGapTolerance = true
			ests = append(ests, tolerant, adaptive)
		}
		for _, drop := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
			trials, err := runTrials(cfg.Workers, cfg.Obs, "missing", cfg.Trials, func(trial int) (map[string]float64, error) {
				seed := cfg.Seed ^ hash64(model) ^ (uint64(trial)+1)*0x9e3779b97f4a7c15
				res, err := missingObsTrial(spec, ests, cfg.Population, drop, seed)
				if err != nil {
					return nil, fmt.Errorf("experiments: missing-obs %s drop %v trial %d: %w", model, drop, trial, err)
				}
				return res, nil
			})
			if err != nil {
				return nil, err
			}
			errsByEst := make(map[string][]float64, len(ests))
			for _, est := range ests {
				errsByEst[est.Name()] = make([]float64, 0, cfg.Trials)
			}
			for _, res := range trials {
				for name, are := range res {
					errsByEst[name] = append(errsByEst[name], are)
				}
			}
			for _, est := range ests {
				out = append(out, MissingObsPoint{
					Model:     model,
					Estimator: est.Name(),
					DropRate:  drop,
					ARE:       stats.ComputeQuartiles(errsByEst[est.Name()]),
				})
			}
		}
	}
	return out, nil
}

func missingObsTrial(spec dga.Spec, ests []estimators.Estimator, population int, drop float64, seed uint64) (map[string]float64, error) {
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		Granularity:  100 * sim.Millisecond,
	})
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          spec,
		Seed:          seed,
		BotsPerServer: map[string]int{"local-00": population},
	}, net)
	if err != nil {
		return nil, err
	}
	w := sim.Window{Start: 0, End: sim.Day}
	res, err := runner.Run(w)
	if err != nil {
		return nil, err
	}
	truth := float64(res.ActiveBots["local-00"][0])

	obs := dropRecords(net.Border.Observed(), drop, seed^0xbad)
	net.ReleaseCaches()
	out := make(map[string]float64, len(ests))
	for _, est := range ests {
		bm, err := core.New(core.Config{
			Family:      spec,
			Seed:        seed,
			Granularity: 100 * sim.Millisecond,
			Estimator:   est,
		})
		if err != nil {
			return nil, err
		}
		land, err := bm.Analyze(obs, w)
		if err != nil {
			return nil, err
		}
		out[est.Name()] = stats.ARE(land.Estimate("local-00"), truth)
	}
	return out, nil
}

// dropRecords removes each record independently with probability rate.
func dropRecords(obs trace.Observed, rate float64, seed uint64) trace.Observed {
	if rate <= 0 {
		return obs
	}
	rng := sim.NewRNG(seed)
	kept := make(trace.Observed, 0, len(obs))
	for _, rec := range obs {
		if rng.Float64() < rate {
			continue
		}
		kept = append(kept, rec)
	}
	return kept
}

// RenderMissingObs prints the sweep.
func RenderMissingObs(points []MissingObsPoint) string {
	var b strings.Builder
	b.WriteString("Extension — vantage-point record loss (uniform drops of observed lookups)\n")
	fmt.Fprintf(&b, "%-6s %-5s %8s %8s %8s %8s\n", "model", "est", "drop", "p25", "p50", "p75")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6s %-5s %7.0f%% %8.3f %8.3f %8.3f\n",
			p.Model, p.Estimator, p.DropRate*100, p.ARE.P25, p.ARE.P50, p.ARE.P75)
	}
	return b.String()
}
