package experiments

import (
	"fmt"
	"strings"

	"botmeter/internal/botnet"
	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/estimators"
	"botmeter/internal/faults"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
)

// ChaosConfig tunes the chaos sweep — the in-process counterpart of the
// live -chaos pipeline. Where the missing-observations experiment deletes
// records after a clean simulation, this one degrades the local→border link
// itself (faults.FaultyUpstream wrapped around the simulated border via
// dnssim.NetworkConfig.WrapUpstream), so losses, SERVFAIL bursts and
// duplicated datagrams distort both what the bots experience and what the
// vantage point records. Every point is measured twice: with the hierarchy
// hardened (retries + serve-stale) and bare, quantifying how much of the
// paper's accuracy survives an unreliable network and how much the
// resilience machinery buys back.
type ChaosConfig struct {
	// Trials per point (default 5).
	Trials int
	// Population per trial (default 64).
	Population int
	// Seed drives the runs; fault decisions derive from it, so a fixed
	// Seed replays the sweep bit-for-bit.
	Seed uint64
	// Scale shrinks pools (1 = Table I).
	Scale float64
	// Retries is the hardened hierarchy's MaxRetries (default 3).
	Retries int
	// Workers bounds trial-level parallelism (0 = one worker per CPU,
	// 1 = sequential); the rendered sweep is identical for any value
	// because per-trial seeds depend only on the trial index and the
	// fault counters are tallied in trial order.
	Workers int
	// Stages, when non-nil, accumulates per-stage wall/alloc timings
	// (simulate vs estimate) for `benchgen -timings`.
	Stages *obs.StageSet
	// Obs, when non-nil, exports experiments_parallel_workers,
	// experiments_trials_total and per-trial latency histograms.
	Obs *obs.Registry
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Trials <= 0 {
		c.Trials = 5
	}
	if c.Population <= 0 {
		c.Population = 64
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	return c
}

// ChaosPoint is one (model, estimator, fault-rate, hardened?) cell.
type ChaosPoint struct {
	Model     string
	Estimator string
	// FaultRate is the per-datagram loss probability; SERVFAIL bursts and
	// duplication ride along at FaultRate/4 each.
	FaultRate float64
	// Hardened reports whether the hierarchy ran with retries and
	// serve-stale enabled.
	Hardened bool
	ARE      stats.Quartiles
	// Faults aggregates the injector counters across trials.
	Faults faults.Counters
}

// chaosRates maps a scalar fault rate onto a Rates mix: loss dominates,
// with SERVFAIL bursts and duplication at a quarter of the rate each.
func chaosRates(rate float64) faults.Rates {
	return faults.Rates{Loss: rate, ServFail: rate / 4, Duplicate: rate / 4}
}

// ChaosSweep sweeps the fault rate ∈ {0, 10, 20, 30}% on AU (MT, MP) and
// AR (MT, MB), hardened and bare.
func ChaosSweep(cfg ChaosConfig) ([]ChaosPoint, error) {
	cfg = cfg.withDefaults()
	var out []ChaosPoint
	for _, model := range []string{"AU", "AR"} {
		spec, err := modelSpec(model, cfg.Scale)
		if err != nil {
			return nil, err
		}
		ests := estimatorsFor(model, "")
		for _, rate := range []float64{0, 0.1, 0.2, 0.3} {
			for _, hardened := range []bool{false, true} {
				hardened := hardened
				trials, err := runTrials(cfg.Workers, cfg.Obs, "chaos", cfg.Trials, func(trial int) (chaosTrialResult, error) {
					seed := cfg.Seed ^ hash64("chaos"+model) ^ (uint64(trial)+1)*0x9e3779b97f4a7c15
					res, c, err := chaosTrial(cfg, spec, ests, rate, hardened, seed)
					if err != nil {
						return chaosTrialResult{}, fmt.Errorf("experiments: chaos %s rate %v hardened=%v trial %d: %w", model, rate, hardened, trial, err)
					}
					return chaosTrialResult{errs: res, counters: c}, nil
				})
				if err != nil {
					return nil, err
				}
				errsByEst := make(map[string][]float64, len(ests))
				for _, est := range ests {
					errsByEst[est.Name()] = make([]float64, 0, cfg.Trials)
				}
				var tally faults.Counters
				for _, tr := range trials {
					for name, are := range tr.errs {
						errsByEst[name] = append(errsByEst[name], are)
					}
					c := tr.counters
					tally.Passed += c.Passed
					tally.Lost += c.Lost
					tally.Duplicated += c.Duplicated
					tally.ServFails += c.ServFails
					tally.Delayed += c.Delayed
					tally.Blackholed += c.Blackholed
				}
				for _, est := range ests {
					out = append(out, ChaosPoint{
						Model:     model,
						Estimator: est.Name(),
						FaultRate: rate,
						Hardened:  hardened,
						ARE:       stats.ComputeQuartiles(errsByEst[est.Name()]),
						Faults:    tally,
					})
				}
			}
		}
	}
	return out, nil
}

// chaosTrialResult carries one trial's per-estimator errors plus the
// injector counters, so parallel trials aggregate in canonical order.
type chaosTrialResult struct {
	errs     map[string]float64
	counters faults.Counters
}

// chaosTrial runs one simulation behind a faulty local→border link and
// returns each estimator's ARE against the realised ground truth plus the
// injector's final counters.
func chaosTrial(cfg ChaosConfig, spec dga.Spec, ests []estimators.Estimator, rate float64, hardened bool, seed uint64) (map[string]float64, faults.Counters, error) {
	simStage := cfg.Stages.Start("chaos:simulate")
	inj := faults.New(seed^0xfa01, chaosRates(rate))
	netCfg := dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		Granularity:  100 * sim.Millisecond,
		WrapUpstream: func(u dnssim.Upstream) dnssim.Upstream {
			return faults.NewFaultyUpstream(u, inj)
		},
	}
	if hardened {
		netCfg.MaxRetries = cfg.Retries
		netCfg.ServeStale = true
		netCfg.StaleTTL = sim.Day
	}
	net := dnssim.NewNetwork(netCfg)
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          spec,
		Seed:          seed,
		BotsPerServer: map[string]int{"local-00": cfg.Population},
	}, net)
	if err != nil {
		simStage.End()
		return nil, faults.Counters{}, err
	}
	w := sim.Window{Start: 0, End: sim.Day}
	res, err := runner.Run(w)
	simStage.End()
	if err != nil {
		return nil, faults.Counters{}, err
	}
	truth := float64(res.ActiveBots["local-00"][0])

	observed := net.Border.Observed()
	net.ReleaseCaches()
	estStage := cfg.Stages.Start("chaos:estimate")
	defer estStage.End()
	out := make(map[string]float64, len(ests))
	for _, est := range ests {
		bm, err := core.New(core.Config{
			Family:      spec,
			Seed:        seed,
			Granularity: 100 * sim.Millisecond,
			Estimator:   est,
		})
		if err != nil {
			return nil, faults.Counters{}, err
		}
		land, err := bm.Analyze(observed, w)
		if err != nil {
			return nil, faults.Counters{}, err
		}
		out[est.Name()] = stats.ARE(land.Estimate("local-00"), truth)
	}
	return out, inj.Counters(), nil
}

// RenderChaos prints the sweep.
func RenderChaos(points []ChaosPoint) string {
	var b strings.Builder
	b.WriteString("Extension — estimator accuracy under injected network faults (loss + servfail/4 + dup/4)\n")
	fmt.Fprintf(&b, "%-6s %-5s %6s %-8s %8s %8s %8s   %s\n",
		"model", "est", "fault", "mode", "p25", "p50", "p75", "injected")
	for _, p := range points {
		mode := "bare"
		if p.Hardened {
			mode = "hardened"
		}
		fmt.Fprintf(&b, "%-6s %-5s %5.0f%% %-8s %8.3f %8.3f %8.3f   lost=%d servfail=%d dup=%d\n",
			p.Model, p.Estimator, p.FaultRate*100, mode,
			p.ARE.P25, p.ARE.P50, p.ARE.P75,
			p.Faults.Lost, p.Faults.ServFails, p.Faults.Duplicated)
	}
	return b.String()
}
