package experiments

import (
	"bytes"
	"strings"
	"testing"

	"botmeter/internal/dga"
	"botmeter/internal/stats"
)

// quickCfg keeps test runtime low: small pools, few trials.
func quickCfg() Fig6Config {
	return Fig6Config{Trials: 2, Population: 24, Seed: 9, Scale: 0.08}
}

func TestScaledSpec(t *testing.T) {
	s := ScaledSpec(dga.ConfickerC(), 0.1)
	dr := s.Pool.(dga.DrainReplenish)
	if dr.NX != 4999 || s.ThetaQ != 50 {
		t.Errorf("scaled: NX=%d θq=%d", dr.NX, s.ThetaQ)
	}
	if dr.C2 != 5 {
		t.Errorf("θ∃ must be preserved, got %d", dr.C2)
	}
	same := ScaledSpec(dga.ConfickerC(), 1)
	if same.ThetaQ != 500 {
		t.Error("scale 1 must be identity")
	}
	// Sliding-window pools scale their per-day volume and barrel budget.
	sw := ScaledSpec(dga.Ranbyus(), 0.5)
	swPool := sw.Pool.(dga.SlidingWindow)
	if swPool.PerDay != 20 || sw.ThetaQ != 620 {
		t.Errorf("sliding-window scaled: PerDay=%d θq=%d", swPool.PerDay, sw.ThetaQ)
	}
	if swPool.C2 != dga.Ranbyus().Pool.(dga.SlidingWindow).C2 {
		t.Errorf("sliding-window θ∃ must be preserved, got %d", swPool.C2)
	}
	// PerDay never shrinks below the registered count + 1.
	tiny := ScaledSpec(dga.Ranbyus(), 0.01)
	if got := tiny.Pool.(dga.SlidingWindow).PerDay; got != 4 {
		t.Errorf("sliding-window PerDay floor: got %d, want 4", got)
	}
	// Multiple-mixture pools scale useful and noise pools alike.
	mm := ScaledSpec(dga.Pykspa(), 0.1)
	mmPool := mm.Pool.(dga.MultipleMixture)
	if mmPool.UsefulNX != 19 || mmPool.NoiseSizes[0] != 1600 || mm.ThetaQ != 100 {
		t.Errorf("mixture scaled: UsefulNX=%d noise=%v θq=%d",
			mmPool.UsefulNX, mmPool.NoiseSizes, mm.ThetaQ)
	}
	if mmPool.UsefulC2 != 2 {
		t.Errorf("mixture θ∃ must be preserved, got %d", mmPool.UsefulC2)
	}
	// The original specs are never mutated in place.
	if dga.Pykspa().Pool.(dga.MultipleMixture).NoiseSizes[0] != 16000 {
		t.Error("ScaledSpec must not mutate the source spec's noise sizes")
	}
}

func TestModelSpec(t *testing.T) {
	for _, m := range []string{"AU", "AS", "AR", "AP"} {
		s, err := modelSpec(m, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s.ModelName() != m {
			t.Errorf("modelSpec(%s) produced %s", m, s.ModelName())
		}
	}
	if _, err := modelSpec("XX", 1); err == nil {
		t.Error("unknown model should error")
	}
}

func TestEstimatorsFor(t *testing.T) {
	names := func(model, panel string) []string {
		var out []string
		for _, e := range estimatorsFor(model, panel) {
			out = append(out, e.Name())
		}
		return out
	}
	if got := names("AU", "a"); len(got) != 2 || got[1] != "MP" {
		t.Errorf("AU estimators = %v", got)
	}
	if got := names("AR", "a"); len(got) != 2 || got[1] != "MB" {
		t.Errorf("AR estimators = %v", got)
	}
	if got := names("AS", "a"); len(got) != 1 || got[0] != "MT" {
		t.Errorf("AS estimators = %v", got)
	}
	// Panel (e) adds the paper-faithful MB* on AR.
	if got := names("AR", "e"); len(got) != 3 || got[2] != "MB*" {
		t.Errorf("AR panel-e estimators = %v", got)
	}
}

func TestFigure6aQuick(t *testing.T) {
	cfg := quickCfg()
	cfg.Models = []string{"AR"}
	pts, err := Figure6a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 x-values × 2 estimators (MT + MB).
	if len(pts) != 10 {
		t.Fatalf("points = %d, want 10", len(pts))
	}
	sawMB := false
	for _, p := range pts {
		if p.Panel != "a" || p.Model != "AR" {
			t.Errorf("bad point metadata: %+v", p)
		}
		if p.ARE.P25 > p.ARE.P75 {
			t.Errorf("quartile ordering broken: %+v", p)
		}
		if p.Estimator == "MB" {
			sawMB = true
			if p.ARE.P50 > 1.0 {
				t.Errorf("MB median ARE implausibly high: %+v", p)
			}
		}
	}
	if !sawMB {
		t.Error("MB missing from AR panel")
	}
}

func TestFigure6eMissRateDegradesMB(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 3
	cfg.Models = []string{"AR"}
	pts, err := Figure6e(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Median MB ARE at 50% misses should exceed that at 10% (shape check).
	var at10, at50 float64
	for _, p := range pts {
		if p.Estimator != "MB" {
			continue
		}
		switch p.X {
		case 10:
			at10 = p.ARE.P50
		case 50:
			at50 = p.ARE.P50
		}
	}
	if at50 < at10 {
		t.Logf("warning: MB did not degrade with misses in quick config (%.3f vs %.3f)", at10, at50)
	}
}

func TestFigure6PanelsAUQuick(t *testing.T) {
	cfg := quickCfg()
	cfg.Models = []string{"AU"}
	for name, f := range map[string]func(Fig6Config) ([]Fig6Point, error){
		"b": Figure6b, "c": Figure6c, "d": Figure6d,
	} {
		pts, err := f(cfg)
		if err != nil {
			t.Fatalf("panel %s: %v", name, err)
		}
		if len(pts) != 10 { // 5 x-values × (MT, MP)
			t.Errorf("panel %s: %d points", name, len(pts))
		}
	}
}

func TestRenderTableI(t *testing.T) {
	out := RenderTableI()
	for _, want := range []string{"Murofet", "Conficker.C", "newGoZ", "Necurs", "49995", "500ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestRenderAndCSVFig6(t *testing.T) {
	pts := []Fig6Point{
		{Panel: "a", Sweep: "population", Model: "AU", Estimator: "MP", X: 16,
			ARE: stats.Quartiles{P25: 0.01, P50: 0.05, P75: 0.1}, Trials: 3},
	}
	text := RenderFig6(pts)
	if !strings.Contains(text, "Figure 6(a)") || !strings.Contains(text, "MP") {
		t.Errorf("render:\n%s", text)
	}
	var buf bytes.Buffer
	if err := WriteFig6CSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a,population,AU,MP,16") {
		t.Errorf("csv:\n%s", buf.String())
	}
}

func TestFigure7QuickAndTableII(t *testing.T) {
	series, err := Figure7(Fig7Config{
		Days:                   4,
		Seed:                   3,
		Scale:                  0.05,
		BenignClients:          30,
		BenignLookupsPerClient: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 families × 2 estimators.
	if len(series) != 6 {
		t.Fatalf("series = %d, want 6", len(series))
	}
	for _, s := range series {
		if len(s.Truth) != 4 || len(s.Estimates) != 4 {
			t.Errorf("series %s/%s has wrong length", s.Family, s.Estimator)
		}
	}
	rows := TableII(series)
	if len(rows) != 6 {
		t.Fatalf("table II rows = %d", len(rows))
	}
	text := RenderTableII(rows)
	for _, fam := range []string{"newGoZ", "Ramnit", "Qakbot"} {
		if !strings.Contains(text, fam) {
			t.Errorf("Table II missing %s:\n%s", fam, text)
		}
	}
	fig7Text := RenderFig7(series)
	if !strings.Contains(fig7Text, "Figure 7") {
		t.Error("fig7 render broken")
	}
	var buf bytes.Buffer
	if err := WriteFig7CSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "newGoZ") {
		t.Error("fig7 csv broken")
	}
	chart := ASCIIChart(series[0], 40)
	if !strings.Contains(chart, "#") {
		t.Error("ascii chart has no truth marks")
	}
}

func TestTaxonomyGridRunsAllCells(t *testing.T) {
	cells, err := TaxonomyGrid(TaxonomyGridConfig{Trials: 1, Population: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("cells = %d, want 12", len(cells))
	}
	wild := 0
	for _, c := range cells {
		if c.Wild != "?" {
			wild++
		}
		if c.Estimator == "" {
			t.Errorf("cell %s/%s has no estimator", c.Pool, c.Barrel)
		}
	}
	if wild != 7 {
		t.Errorf("wild cells = %d, want 7 (Figure 3)", wild)
	}
	text := RenderTaxonomyGrid(cells)
	for _, want := range []string{"Murofet", "Pykspa", "?", "drain-and-replenish"} {
		if !strings.Contains(text, want) {
			t.Errorf("grid render missing %q", want)
		}
	}
}

func TestReactivationExperiment(t *testing.T) {
	rows, err := Reactivation(ReactivationConfig{Days: 3, Seed: 5, MeanActive: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byName := map[string]ReactivationRow{}
	for _, r := range rows {
		byName[r.Estimator+r.Mode] = r
	}
	text := RenderReactivation(rows)
	for _, want := range []string{"MB", "MT", "Algorithm 1", "whole-epoch"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// The headline claim: MT overcounts under loops (positive bias).
	for _, r := range rows {
		if r.Estimator == "MT" && r.MeanBias <= 0 {
			t.Errorf("MT bias = %v, expected positive (overcounting replays)", r.MeanBias)
		}
	}
}
