package experiments

import (
	"fmt"
	"strings"

	"botmeter/internal/botnet"
	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/estimators"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
)

// TaxonomyGridConfig tunes the full-grid experiment.
type TaxonomyGridConfig struct {
	// Trials per cell (default 5).
	Trials int
	// Population per trial (default 32).
	Population int
	// Seed drives the runs.
	Seed uint64
	// Workers bounds trial-level parallelism (0 = one worker per CPU,
	// 1 = sequential); results are identical for any value.
	Workers int
	// Obs, when non-nil, exports the parallel-engine metrics.
	Obs *obs.Registry
}

func (c TaxonomyGridConfig) withDefaults() TaxonomyGridConfig {
	if c.Trials <= 0 {
		c.Trials = 5
	}
	if c.Population <= 0 {
		c.Population = 32
	}
	return c
}

// TaxonomyCell is one pool×barrel combination's result.
type TaxonomyCell struct {
	Pool      string
	Barrel    string
	Estimator string
	Wild      string // representative family, or "?" (unseen in the wild)
	ARE       stats.Quartiles
}

// gridSpec builds a runnable spec for any pool×barrel combination, using
// the wild representative's parameters where one exists (paper Figure 3)
// and θ-matched synthetic parameters for the "?" cells.
func gridSpec(pool dga.PoolClass, barrel dga.BarrelClass) (dga.Spec, string) {
	var barrelModel dga.BarrelModel
	switch barrel {
	case dga.UniformBarrel:
		barrelModel = dga.Uniform{}
	case dga.SamplingBarrel:
		barrelModel = dga.Sampling{}
	case dga.RandomCutBarrel:
		barrelModel = dga.RandomCut{}
	default:
		barrelModel = dga.Permutation{}
	}

	// Wild representatives per Figure 3.
	wild := map[[2]int]dga.Spec{
		{int(dga.DrainReplenishPool), int(dga.UniformBarrel)}:     dga.Murofet(),
		{int(dga.DrainReplenishPool), int(dga.SamplingBarrel)}:    dga.ConfickerC(),
		{int(dga.DrainReplenishPool), int(dga.RandomCutBarrel)}:   dga.NewGoZ(),
		{int(dga.DrainReplenishPool), int(dga.PermutationBarrel)}: dga.Necurs(),
		{int(dga.SlidingWindowPool), int(dga.UniformBarrel)}:      dga.PushDo(),
		{int(dga.SlidingWindowPool), int(dga.PermutationBarrel)}:  dga.Ranbyus(),
		{int(dga.MultipleMixturePool), int(dga.UniformBarrel)}:    dga.Pykspa(),
	}
	if s, ok := wild[[2]int{int(pool), int(barrel)}]; ok {
		// Shrink the two heaviest wild cells so a full-grid sweep stays
		// interactive; shapes are insensitive to the 10× reduction.
		if s.Name == "Conficker.C" || s.Name == "newGoZ" {
			s = ScaledSpec(s, 0.2)
		}
		return s, s.Name
	}

	// Synthetic "?" cells: θ-matched to the pool class's wild siblings.
	var poolModel dga.PoolModel
	switch pool {
	case dga.SlidingWindowPool:
		poolModel = dga.SlidingWindow{PerDay: 40, Back: 30, C2: 3, Gen: dga.DefaultGenerator}
	case dga.MultipleMixturePool:
		poolModel = dga.MultipleMixture{UsefulNX: 198, UsefulC2: 2, NoiseSizes: []int{2000}, Gen: dga.DefaultGenerator}
	default:
		poolModel = dga.DrainReplenish{NX: 1995, C2: 5, Gen: dga.DefaultGenerator}
	}
	spec := dga.Spec{
		Name:          fmt.Sprintf("synthetic-%s-%s", pool, barrel),
		Pool:          poolModel,
		Barrel:        barrelModel,
		ThetaQ:        200,
		QueryInterval: sim.Second,
	}
	return spec, "?"
}

// TaxonomyGrid runs every pool×barrel combination through the simulator
// and its taxonomy-selected estimator — executing the paper's Figure 3 as
// code, "?" cells included.
func TaxonomyGrid(cfg TaxonomyGridConfig) ([]TaxonomyCell, error) {
	cfg = cfg.withDefaults()
	pools := []dga.PoolClass{dga.DrainReplenishPool, dga.SlidingWindowPool, dga.MultipleMixturePool}
	barrels := []dga.BarrelClass{dga.UniformBarrel, dga.SamplingBarrel, dga.RandomCutBarrel, dga.PermutationBarrel}
	var cells []TaxonomyCell
	for _, p := range pools {
		for _, b := range barrels {
			spec, wildName := gridSpec(p, b)
			est := estimators.ForModel(spec)
			errs, err := runTrials(cfg.Workers, cfg.Obs, "taxonomy", cfg.Trials, func(trial int) (float64, error) {
				seed := cfg.Seed ^ hash64(spec.Name) ^ (uint64(trial)+1)*0x9e3779b97f4a7c15
				are, err := taxonomyTrial(spec, est, cfg.Population, seed)
				if err != nil {
					return 0, fmt.Errorf("experiments: grid cell %s/%s trial %d: %w", p, b, trial, err)
				}
				return are, nil
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, TaxonomyCell{
				Pool:      p.String(),
				Barrel:    b.String(),
				Estimator: est.Name(),
				Wild:      wildName,
				ARE:       stats.ComputeQuartiles(errs),
			})
		}
	}
	return cells, nil
}

func taxonomyTrial(spec dga.Spec, est estimators.Estimator, population int, seed uint64) (float64, error) {
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		Granularity:  100 * sim.Millisecond,
	})
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          spec,
		Seed:          seed,
		BotsPerServer: map[string]int{"local-00": population},
	}, net)
	if err != nil {
		return 0, err
	}
	w := sim.Window{Start: 0, End: sim.Day}
	res, err := runner.Run(w)
	if err != nil {
		return 0, err
	}
	observed := net.Border.Observed()
	net.ReleaseCaches()
	bm, err := core.New(core.Config{
		Family:      spec,
		Seed:        seed,
		Granularity: 100 * sim.Millisecond,
		Estimator:   est,
	})
	if err != nil {
		return 0, err
	}
	land, err := bm.Analyze(observed, w)
	if err != nil {
		return 0, err
	}
	return stats.ARE(land.Estimate("local-00"), float64(res.ActiveBots["local-00"][0])), nil
}

// RenderTaxonomyGrid prints the grid.
func RenderTaxonomyGrid(cells []TaxonomyCell) string {
	var b strings.Builder
	b.WriteString("Extension — the full Figure 3 taxonomy, executed (median ARE per cell)\n")
	fmt.Fprintf(&b, "%-20s %-12s %-12s %-5s %8s %8s %8s\n",
		"pool", "barrel", "wild family", "est", "p25", "p50", "p75")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-20s %-12s %-12s %-5s %8.3f %8.3f %8.3f\n",
			c.Pool, c.Barrel, c.Wild, c.Estimator, c.ARE.P25, c.ARE.P50, c.ARE.P75)
	}
	b.WriteString("\n\"?\" rows are combinations unseen in the wild (paper Figure 3);\n")
	b.WriteString("the library simulates and estimates them all the same.\n")
	return b.String()
}
