// Package experiments regenerates every table and figure of the paper's
// §V evaluation: the five Figure 6 accuracy sweeps over synthetic traffic,
// the Figure 7 daily-population series over the synthetic enterprise
// trace, Table I (DGA parameters) and Table II (real-trace estimator
// accuracy). Each artifact has a Go API (used by the benchmarks in
// bench_test.go) and a text/CSV rendering (used by cmd/benchgen).
package experiments

import (
	"fmt"

	"botmeter/internal/botnet"
	"botmeter/internal/core"
	"botmeter/internal/d3"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/estimators"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
	"botmeter/internal/symtab"
)

// Fig6Config tunes the synthetic evaluation.
type Fig6Config struct {
	// Trials is the number of independent runs per point (default 10).
	Trials int
	// Population is the default bot count N when not swept (default 64).
	Population int
	// Seed derives all per-trial seeds.
	Seed uint64
	// Scale shrinks DGA pool sizes and barrel sizes for quick runs
	// (1 = the paper's Table I parameters; tests use ≈0.1).
	Scale float64
	// Models restricts the evaluated DGA models (nil = AU, AS, AR, AP).
	Models []string
	// Workers bounds the trial-level parallelism: trials of one grid point
	// run concurrently on a bounded worker pool (0 = one worker per CPU,
	// 1 = sequential). Per-trial seeds are derived from the trial index
	// alone, and aggregation is canonical (trial order), so any worker
	// count renders byte-identical artifacts.
	Workers int
	// Stages, when non-nil, accumulates per-stage wall/alloc timings
	// (simulate vs estimate) for `benchgen -timings`.
	Stages *obs.StageSet
	// Obs, when non-nil, exports experiments_parallel_workers,
	// experiments_trials_total and per-trial latency histograms.
	Obs *obs.Registry
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Trials <= 0 {
		c.Trials = 10
	}
	if c.Population <= 0 {
		c.Population = 64
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Models) == 0 {
		c.Models = []string{"AU", "AS", "AR", "AP"}
	}
	return c
}

// Fig6Point is one cell of a Figure 6 panel: the ARE quartiles of one
// estimator on one DGA model at one swept parameter value.
type Fig6Point struct {
	Panel     string // "a".."e"
	Sweep     string // human-readable sweep label
	Model     string // AU/AS/AR/AP
	Estimator string
	X         float64
	ARE       stats.Quartiles
	Trials    int
}

// modelSpec returns the Table I prototype for a model shorthand, scaled.
func modelSpec(model string, scale float64) (dga.Spec, error) {
	var s dga.Spec
	switch model {
	case "AU":
		s = dga.Murofet()
	case "AS":
		s = dga.ConfickerC()
	case "AR":
		s = dga.NewGoZ()
	case "AP":
		s = dga.Necurs()
	default:
		return dga.Spec{}, fmt.Errorf("experiments: unknown model %q", model)
	}
	return ScaledSpec(s, scale), nil
}

// scaledFloor scales n by the factor and clamps to a minimum.
func scaledFloor(n int, scale float64, floor int) int {
	v := int(float64(n) * scale)
	if v < floor {
		v = floor
	}
	return v
}

// ScaledSpec shrinks a spec's pool and barrel by the given factor
// (1 = unchanged), preserving the θ∃ / registered-domain counts and the
// query pacing. All three pool classes scale: drain-and-replenish shrinks
// its NXD pool, sliding-window its per-day generation volume, and the
// multiple-mixture its useful and noise pools; the barrel's ThetaQ always
// scales with them so the per-bot query budget stays proportional to the
// pool. Used to keep CI runtimes bounded; the benchmark harness runs
// Scale 1.
func ScaledSpec(s dga.Spec, scale float64) dga.Spec {
	if scale == 1 {
		return s
	}
	switch pool := s.Pool.(type) {
	case dga.DrainReplenish:
		pool.NX = scaledFloor(pool.NX, scale, 10)
		s.Pool = pool
	case dga.SlidingWindow:
		// Keep at least one fresh domain per day beyond the registered
		// ones so the window still slides.
		pool.PerDay = scaledFloor(pool.PerDay, scale, pool.C2+1)
		s.Pool = pool
	case dga.MultipleMixture:
		pool.UsefulNX = scaledFloor(pool.UsefulNX, scale, 10)
		if len(pool.NoiseSizes) > 0 {
			sizes := make([]int, len(pool.NoiseSizes))
			for i, n := range pool.NoiseSizes {
				sizes[i] = scaledFloor(n, scale, 10)
			}
			pool.NoiseSizes = sizes
		}
		s.Pool = pool
	default:
		// Unknown pool class: leave the pool alone but still scale the
		// barrel below so the query budget tracks the caller's intent.
	}
	s.ThetaQ = scaledFloor(s.ThetaQ, scale, 5)
	return s
}

// estimatorsFor returns the estimators the paper applies to a model: MT
// for every model, plus MP for AU and MB for AR. On the detection-window
// panel (e), AR additionally runs MB* — the paper-faithful MB variant that
// does not exploit knowledge of the detected set — so the output shows both
// the paper's original degradation and the detection-aware improvement.
func estimatorsFor(model, panel string) []estimators.Estimator {
	ests := []estimators.Estimator{estimators.NewTiming()}
	switch model {
	case "AU":
		ests = append(ests, estimators.NewPoisson())
	case "AR":
		ests = append(ests, estimators.NewBernoulli())
		if panel == "e" {
			unaware := estimators.NewBernoulli()
			unaware.DisableDetectionAwareness = true
			ests = append(ests, unaware)
		}
	}
	return ests
}

// trialParams is the full parameter set for one synthetic run.
type trialParams struct {
	spec         dga.Spec
	population   int
	windowEpochs int
	negTTL       sim.Time
	sigma        float64
	missRate     float64
	granularity  sim.Time
	seed         uint64
	stages       *obs.StageSet
	// pools, when non-nil, is the shared symbolized pool cache for this
	// (model, trial) — sweep points of one trial draw identical pools (the
	// per-trial seed does not depend on the swept x), so the panel driver
	// generates them once per trial instead of once per grid point. Nil
	// makes runTrial own a private cache.
	pools *dga.PoolCache
}

func defaultTrialParams(spec dga.Spec, population int, seed uint64) trialParams {
	return trialParams{
		spec:         spec,
		population:   population,
		windowEpochs: 1,
		negTTL:       2 * sim.Hour,
		granularity:  100 * sim.Millisecond,
		seed:         seed,
	}
}

// runTrial simulates one configuration and returns each estimator's ARE
// against the realised ground truth.
func runTrial(p trialParams, ests []estimators.Estimator) (map[string]float64, error) {
	// One intern table + pool cache per trial: the simulator, the matcher
	// and every estimator below share the same symbolized pool objects, so
	// the ID fast paths apply end-to-end and each epoch's pool is generated
	// exactly once instead of once per estimator (and, when the panel
	// driver supplies p.pools, once per trial instead of once per point).
	pools := p.pools
	if pools == nil {
		tab := symtab.Get()
		defer tab.Release()
		pools = dga.NewPoolCache(p.spec.Pool, p.seed, tab)
	}

	simStage := p.stages.Start("fig6:simulate")
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  p.negTTL,
		Granularity:  p.granularity,
	})
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          p.spec,
		Seed:          p.seed,
		Activation:    sim.ActivationModel{Sigma: p.sigma},
		BotsPerServer: map[string]int{"local-00": p.population},
		Pools:         pools,
	}, net)
	if err != nil {
		return nil, err
	}
	w := sim.Window{Start: 0, End: sim.Time(p.windowEpochs) * sim.Day}
	res, err := runner.Run(w)
	simStage.End()
	if err != nil {
		return nil, err
	}
	var truthSum float64
	for _, n := range res.ActiveBots["local-00"] {
		truthSum += float64(n)
	}
	truth := truthSum / float64(len(res.ActiveBots["local-00"]))

	var detection *d3.Window
	if p.missRate > 0 {
		detection = &d3.Window{MissRate: p.missRate, Seed: p.seed ^ 0xd3}
	}
	observed := net.Border.Observed()
	net.ReleaseCaches()
	estStage := p.stages.Start("fig6:estimate")
	defer estStage.End()
	// MT rides the first model-specific estimator's Analyze through the
	// SecondOpinion path instead of re-matching and re-grouping the trial's
	// records in a dedicated run: SecondOpinion evaluates MT per epoch over
	// the same windowed records in the same order, so its series is
	// byte-identical to a standalone MT Analyze. When MT is the model's only
	// estimator (AS/AP), it runs as the primary as before.
	var primaries []estimators.Estimator
	var timingEst estimators.Estimator
	for _, est := range ests {
		if est.Name() == "MT" && timingEst == nil {
			timingEst = est
			continue
		}
		primaries = append(primaries, est)
	}
	wantTiming := timingEst != nil
	if len(primaries) == 0 && wantTiming {
		primaries = []estimators.Estimator{timingEst}
		wantTiming = false
	}
	out := make(map[string]float64, len(ests))
	for i, est := range primaries {
		second := wantTiming && i == 0
		bm, err := core.New(core.Config{
			Family:        p.spec,
			Seed:          p.seed,
			Pools:         pools,
			NegativeTTL:   p.negTTL,
			Granularity:   p.granularity,
			Estimator:     est,
			Detection:     detection,
			SecondOpinion: second,
			Stages:        p.stages,
		})
		if err != nil {
			return nil, err
		}
		land, err := bm.Analyze(observed, w)
		if err != nil {
			return nil, err
		}
		out[est.Name()] = stats.ARE(land.Estimate("local-00"), truth)
		if second {
			var mt float64
			for _, s := range land.Servers {
				if s.Server == "local-00" {
					mt = s.SecondOpinion
					break
				}
			}
			out["MT"] = stats.ARE(mt, truth)
		}
	}
	return out, nil
}

// sweepPoint evaluates one (model, x) grid point across trials. Trials run
// on the bounded worker pool; every per-trial seed is a function of the
// trial index only, and the per-estimator error series are rebuilt in trial
// order afterwards, so the rendered artifact is identical for any Workers.
func sweepPoint(cfg Fig6Config, panel, sweep, model string, x float64, pools []*dga.PoolCache, mutate func(*trialParams)) ([]Fig6Point, error) {
	spec, err := modelSpec(model, cfg.Scale)
	if err != nil {
		return nil, err
	}
	ests := estimatorsFor(model, panel)
	trials, err := runTrials(cfg.Workers, cfg.Obs, "fig6"+panel, cfg.Trials, func(trial int) (map[string]float64, error) {
		p := defaultTrialParams(spec, cfg.Population, trialSeed(cfg, panel, model, trial))
		p.stages = cfg.Stages
		if pools != nil {
			p.pools = pools[trial]
		}
		mutate(&p)
		res, err := runTrial(p, ests)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6%s %s trial %d: %w", panel, model, trial, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	errsByEst := make(map[string][]float64, len(ests))
	for _, est := range ests {
		errsByEst[est.Name()] = make([]float64, 0, cfg.Trials)
	}
	for _, res := range trials {
		for name, are := range res {
			errsByEst[name] = append(errsByEst[name], are)
		}
	}
	points := make([]Fig6Point, 0, len(ests))
	for _, est := range ests {
		points = append(points, Fig6Point{
			Panel:     panel,
			Sweep:     sweep,
			Model:     model,
			Estimator: est.Name(),
			X:         x,
			ARE:       stats.ComputeQuartiles(errsByEst[est.Name()]),
			Trials:    cfg.Trials,
		})
	}
	return points, nil
}

// trialSeed derives the per-trial seed. It depends on the trial index (and
// the grid cell's panel+model) but NOT on the swept x — the property that
// lets one trial's pool cache serve every sweep point.
func trialSeed(cfg Fig6Config, panel, model string, trial int) uint64 {
	return cfg.Seed ^ (uint64(trial)+1)*0x9e3779b97f4a7c15 ^ hash64(panel+model)
}

func runPanel(cfg Fig6Config, panel, sweep string, xs []float64, mutate func(*trialParams, float64)) ([]Fig6Point, error) {
	cfg = cfg.withDefaults()
	var out []Fig6Point
	for _, model := range cfg.Models {
		pts, err := runPanelModel(cfg, panel, sweep, model, xs, mutate)
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}

// runPanelModel evaluates one model's row of a panel. It builds one
// symbolized pool cache per trial up front and shares it across the sweep:
// pool generation is a function of (pool model, seed, epoch) only, and the
// per-trial seed is x-independent, so every grid point of a trial would
// regenerate byte-identical pools — at Table I scale that regeneration was
// ~10% of a panel's wall time. Intern-table IDs now accumulate across sweep
// points instead of restarting per point, which changes no artifact: IDs are
// an in-memory fast-path hint, never serialized, and every estimate keys on
// pool positions or domain strings.
func runPanelModel(cfg Fig6Config, panel, sweep, model string, xs []float64, mutate func(*trialParams, float64)) ([]Fig6Point, error) {
	spec, err := modelSpec(model, cfg.Scale)
	if err != nil {
		return nil, err
	}
	tabs := make([]*symtab.Table, cfg.Trials)
	pools := make([]*dga.PoolCache, cfg.Trials)
	for t := range pools {
		tabs[t] = symtab.Get()
		pools[t] = dga.NewPoolCache(spec.Pool, trialSeed(cfg, panel, model, t), tabs[t])
	}
	defer func() {
		for _, tab := range tabs {
			tab.Release()
		}
	}()
	var out []Fig6Point
	for _, x := range xs {
		pts, err := sweepPoint(cfg, panel, sweep, model, x, pools, func(p *trialParams) { mutate(p, x) })
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}

// Figure6a sweeps the bot population N ∈ {16, 32, 64, 128, 256}.
func Figure6a(cfg Fig6Config) ([]Fig6Point, error) {
	return runPanel(cfg, "a", "DGA-bot population (N)",
		[]float64{16, 32, 64, 128, 256},
		func(p *trialParams, x float64) { p.population = int(x) })
}

// Figure6b sweeps the observation window length ∈ {1, 2, 4, 8, 16} epochs.
func Figure6b(cfg Fig6Config) ([]Fig6Point, error) {
	return runPanel(cfg, "b", "Length of observation window (# epoch)",
		[]float64{1, 2, 4, 8, 16},
		func(p *trialParams, x float64) { p.windowEpochs = int(x) })
}

// Figure6c sweeps the negative cache TTL ∈ {20, 40, 80, 160, 320} minutes.
func Figure6c(cfg Fig6Config) ([]Fig6Point, error) {
	return runPanel(cfg, "c", "Negative cache TTL (min)",
		[]float64{20, 40, 80, 160, 320},
		func(p *trialParams, x float64) { p.negTTL = sim.Time(x) * sim.Minute })
}

// Figure6d sweeps the activation-rate dynamics σ ∈ {0.5 … 2.5}.
func Figure6d(cfg Fig6Config) ([]Fig6Point, error) {
	return runPanel(cfg, "d", "Dynamics of bot activation rate (σ)",
		[]float64{0.5, 1, 1.5, 2, 2.5},
		func(p *trialParams, x float64) { p.sigma = x })
}

// Figure6e sweeps the D³ miss rate ∈ {10 … 50}%.
func Figure6e(cfg Fig6Config) ([]Fig6Point, error) {
	return runPanel(cfg, "e", "Missing rate of D3 algorithm (%)",
		[]float64{10, 20, 30, 40, 50},
		func(p *trialParams, x float64) { p.missRate = x / 100 })
}

// Figure6 runs all five panels.
func Figure6(cfg Fig6Config) ([]Fig6Point, error) {
	var out []Fig6Point
	for _, f := range []func(Fig6Config) ([]Fig6Point, error){
		Figure6a, Figure6b, Figure6c, Figure6d, Figure6e,
	} {
		pts, err := f(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}

func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
