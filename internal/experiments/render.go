package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"botmeter/internal/dga"
)

// RenderTableI prints the paper's Table I: the DGA-specific parameter
// settings of the four evaluated prototypes.
func RenderTableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I. DGA-specific parameter setting.\n")
	fmt.Fprintf(&b, "%-6s %-12s %8s %6s %6s %8s\n", "Model", "Prototype", "θ∅", "θ∃", "θq", "δi")
	for _, row := range []struct {
		model string
		spec  dga.Spec
	}{
		{"AU", dga.Murofet()},
		{"AS", dga.ConfickerC()},
		{"AR", dga.NewGoZ()},
		{"AP", dga.Necurs()},
	} {
		di := "none"
		if row.spec.QueryInterval > 0 {
			di = row.spec.QueryInterval.Duration().String()
		}
		fmt.Fprintf(&b, "%-6s %-12s %8d %6d %6d %8s\n",
			row.model, row.spec.Name,
			row.spec.Pool.NXDomains(), row.spec.Pool.C2Domains(),
			row.spec.ThetaQ, di)
	}
	return b.String()
}

// RenderFig6 prints Figure 6 points as grouped fixed-width series.
func RenderFig6(points []Fig6Point) string {
	var b strings.Builder
	byPanel := make(map[string][]Fig6Point)
	var panels []string
	for _, p := range points {
		if _, ok := byPanel[p.Panel]; !ok {
			panels = append(panels, p.Panel)
		}
		byPanel[p.Panel] = append(byPanel[p.Panel], p)
	}
	sort.Strings(panels)
	for _, panel := range panels {
		pts := byPanel[panel]
		fmt.Fprintf(&b, "Figure 6(%s) — %s (absolute relative error, %d trials/point)\n",
			panel, pts[0].Sweep, pts[0].Trials)
		fmt.Fprintf(&b, "%-6s %-4s %10s %8s %8s %8s\n",
			"model", "est", "x", "p25", "p50", "p75")
		sort.SliceStable(pts, func(i, j int) bool {
			if pts[i].Model != pts[j].Model {
				return pts[i].Model < pts[j].Model
			}
			if pts[i].Estimator != pts[j].Estimator {
				return pts[i].Estimator < pts[j].Estimator
			}
			return pts[i].X < pts[j].X
		})
		for _, p := range pts {
			fmt.Fprintf(&b, "%-6s %-4s %10.4g %8.3f %8.3f %8.3f\n",
				p.Model, p.Estimator, p.X, p.ARE.P25, p.ARE.P50, p.ARE.P75)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteFig6CSV emits Figure 6 points as CSV.
func WriteFig6CSV(w io.Writer, points []Fig6Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"panel", "sweep", "model", "estimator", "x", "are_p25", "are_p50", "are_p75", "trials"}); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, p := range points {
		row := []string{
			p.Panel, p.Sweep, p.Model, p.Estimator,
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.ARE.P25, 'f', 6, 64),
			strconv.FormatFloat(p.ARE.P50, 'f', 6, 64),
			strconv.FormatFloat(p.ARE.P75, 'f', 6, 64),
			strconv.Itoa(p.Trials),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderFig7 prints the daily series (truth vs estimate) per family.
func RenderFig7(series []Fig7Series) string {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "Figure 7 — %s (%s), estimator %s\n", s.Family, s.Model, s.Estimator)
		fmt.Fprintf(&b, "%-5s %8s %10s %8s\n", "day", "truth", "estimate", "ARE")
		for day, truth := range s.Truth {
			if truth == 0 {
				continue
			}
			are := fmt.Sprintf("%.3f", absRel(s.Estimates[day], float64(truth)))
			fmt.Fprintf(&b, "%-5d %8d %10.1f %8s\n", day, truth, s.Estimates[day], are)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteFig7CSV emits the daily series as CSV.
func WriteFig7CSV(w io.Writer, series []Fig7Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"family", "model", "estimator", "day", "truth", "estimate"}); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, s := range series {
		for day, truth := range s.Truth {
			row := []string{
				s.Family, s.Model, s.Estimator, strconv.Itoa(day),
				strconv.Itoa(truth),
				strconv.FormatFloat(s.Estimates[day], 'f', 3, 64),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("experiments: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderTableII prints the paper's Table II: mean ± std ARE per family and
// estimator.
func RenderTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II. Average estimation errors (mean ± std ARE, days with activity;\n")
	fmt.Fprintf(&b, "          95%% bootstrap CI on the mean).\n")
	fmt.Fprintf(&b, "%-10s %-6s %-4s %18s %19s %6s\n", "DGA", "model", "est", "ARE", "95% CI", "days")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s %-4s %8.3f ± %6.3f [%7.3f, %7.3f] %6d\n",
			r.Family, r.Model, r.Estimator, r.Summary.Mean, r.Summary.Std,
			r.MeanCI.Lo, r.MeanCI.Hi, r.Summary.N)
	}
	return b.String()
}

func absRel(est, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	d := est - truth
	if d < 0 {
		d = -d
	}
	return d / truth
}

// ASCIIChart renders a small text chart of one Fig7 series (truth vs
// estimate), the "visual analytical component" of the paper's future-work
// list in terminal form.
func ASCIIChart(s Fig7Series, width int) string {
	if width <= 0 {
		width = 60
	}
	maxV := 1.0
	for i, tr := range s.Truth {
		if float64(tr) > maxV {
			maxV = float64(tr)
		}
		if s.Estimates[i] > maxV {
			maxV = s.Estimates[i]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s) — '#': truth, 'o': %s estimate, scale 0..%.0f\n",
		s.Family, s.Model, s.Estimator, maxV)
	for day, tr := range s.Truth {
		tPos := int(float64(tr) / maxV * float64(width-1))
		ePos := int(s.Estimates[day] / maxV * float64(width-1))
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		line[tPos] = '#'
		if ePos == tPos {
			line[ePos] = '*' // overlap
		} else {
			line[ePos] = 'o'
		}
		fmt.Fprintf(&b, "%3d |%s|\n", day, string(line))
	}
	return b.String()
}
