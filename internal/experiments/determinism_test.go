package experiments

import (
	"testing"

	"botmeter/internal/obs"
)

// The parallel-execution contract (DESIGN.md §12): for every experiment,
// Workers=N must render the byte-identical artifact as Workers=1, because
// per-trial seeds are pure functions of the trial index and aggregation is
// canonical. These tests are the regression gate for that contract; CI runs
// them under -race, which also exercises the worker pool for data races on
// the shared estimator caches and StageSet.

func TestWorkersDeterminismFig6a(t *testing.T) {
	render := func(workers int) string {
		cfg := quickCfg()
		cfg.Workers = workers
		cfg.Obs = obs.NewRegistry()
		cfg.Stages = obs.NewStageSet()
		pts, err := Figure6a(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return RenderFig6(pts)
	}
	seq := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != seq {
			t.Errorf("fig6a render differs between workers=1 and workers=%d:\n--- workers=1\n%s\n--- workers=%d\n%s", w, seq, w, got)
		}
	}
}

func TestWorkersDeterminismChaos(t *testing.T) {
	render := func(workers int) string {
		pts, err := ChaosSweep(ChaosConfig{
			Trials:     2,
			Population: 16,
			Seed:       7,
			Scale:      0.08,
			Workers:    workers,
			Obs:        obs.NewRegistry(),
			Stages:     obs.NewStageSet(),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return RenderChaos(pts)
	}
	seq := render(1)
	if got := render(8); got != seq {
		t.Errorf("chaos render differs between workers=1 and workers=8:\n--- workers=1\n%s\n--- workers=8\n%s", seq, got)
	}
}

func TestWorkersDeterminismFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("enterprise trace generation is seconds-scale")
	}
	render := func(workers int) string {
		series, err := Figure7(Fig7Config{
			Days:                   4,
			Seed:                   11,
			Scale:                  0.05,
			BenignClients:          20,
			BenignLookupsPerClient: 2,
			Workers:                workers,
			Obs:                    obs.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return RenderFig7(series)
	}
	seq := render(1)
	if got := render(8); got != seq {
		t.Errorf("fig7 render differs between workers=1 and workers=8:\n--- workers=1\n%s\n--- workers=8\n%s", seq, got)
	}
}

// TestWorkersDeterminismTaxonomyAndMissing covers the remaining parallel
// loops (case-level fan-out in Reactivation is exercised by its own test).
func TestWorkersDeterminismTaxonomyAndMissing(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep is seconds-scale")
	}
	grid := func(workers int) string {
		cells, err := TaxonomyGrid(TaxonomyGridConfig{Trials: 1, Population: 8, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatalf("taxonomy workers=%d: %v", workers, err)
		}
		return RenderTaxonomyGrid(cells)
	}
	if a, b := grid(1), grid(8); a != b {
		t.Errorf("taxonomy render differs between workers=1 and workers=8")
	}
	miss := func(workers int) string {
		pts, err := MissingObservations(MissingObsConfig{Trials: 2, Population: 12, Seed: 5, Scale: 0.08, Workers: workers})
		if err != nil {
			t.Fatalf("missing workers=%d: %v", workers, err)
		}
		return RenderMissingObs(pts)
	}
	if a, b := miss(1), miss(8); a != b {
		t.Errorf("missing-obs render differs between workers=1 and workers=8")
	}
}
