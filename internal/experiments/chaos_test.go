package experiments

import (
	"strings"
	"testing"
)

func smallChaosConfig() ChaosConfig {
	return ChaosConfig{Trials: 2, Population: 16, Seed: 9, Scale: 0.08}
}

// TestChaosSweepDeterministic: the whole point of seeded fault injection is
// that a chaos run replays bit-for-bit — two sweeps with the same config
// must render byte-identically, including the injected-fault counters.
func TestChaosSweepDeterministic(t *testing.T) {
	pts1, err := ChaosSweep(smallChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts2, err := ChaosSweep(smallChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := RenderChaos(pts1), RenderChaos(pts2)
	if r1 != r2 {
		t.Errorf("chaos sweep not deterministic:\n%s\nvs\n%s", r1, r2)
	}
	if pts3, err := ChaosSweep(ChaosConfig{Trials: 2, Population: 16, Seed: 10, Scale: 0.08}); err != nil {
		t.Fatal(err)
	} else if RenderChaos(pts3) == r1 {
		t.Error("different seed produced an identical sweep")
	}
}

func TestChaosSweepShape(t *testing.T) {
	pts, err := ChaosSweep(smallChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 models; AU has 2 estimators, AR has 2; 4 rates; bare+hardened.
	if want := (2 + 2) * 4 * 2; len(pts) != want {
		t.Fatalf("points = %d, want %d", len(pts), want)
	}
	var sawFault, sawClean bool
	for _, p := range pts {
		if p.Model != "AU" && p.Model != "AR" {
			t.Errorf("unexpected model %q", p.Model)
		}
		if p.FaultRate == 0 {
			if p.Faults.Lost+p.Faults.ServFails+p.Faults.Duplicated != 0 {
				t.Errorf("rate 0 injected faults: %s", p.Faults)
			}
			sawClean = true
		} else if p.Faults.Lost > 0 {
			sawFault = true
		}
		if p.ARE.P50 < 0 {
			t.Errorf("negative ARE at %+v", p)
		}
	}
	if !sawClean || !sawFault {
		t.Errorf("sweep coverage: clean=%v faulty=%v", sawClean, sawFault)
	}

	r := RenderChaos(pts)
	for _, want := range []string{"hardened", "bare", "MT", "injected"} {
		if !strings.Contains(r, want) {
			t.Errorf("rendering missing %q:\n%s", want, r)
		}
	}
}

// TestChaosHardeningReducesLoss: with retries on, the border sees strictly
// more of the bots' lookups than bare under the same fault rate — the
// mechanism by which hardening buys estimator accuracy back.
func TestChaosHardeningReducesLoss(t *testing.T) {
	cfg := smallChaosConfig()
	pts, err := ChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare total surviving (passed) datagrams at the highest fault rate.
	var bare, hard *ChaosPoint
	for i := range pts {
		p := &pts[i]
		if p.Model == "AU" && p.Estimator == "MT" && p.FaultRate == 0.3 {
			if p.Hardened {
				hard = p
			} else {
				bare = p
			}
		}
	}
	if bare == nil || hard == nil {
		t.Fatal("missing AU/MT points at rate 0.3")
	}
	if hard.Faults.Passed <= bare.Faults.Passed {
		t.Errorf("hardened passed=%d <= bare passed=%d; retries should push more lookups through",
			hard.Faults.Passed, bare.Faults.Passed)
	}
}
